package autonetkit

import (
	"net/netip"
	"os"

	"autonetkit/internal/compile"
	"autonetkit/internal/services/dns"
)

// Small helpers keeping the facade tests terse.

func osCreate(path string) (*os.File, error) { return os.Create(path) }

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func compileOptions() compile.Options { return compile.Options{} }

func dnsConfig() dns.Config { return dns.Config{} }
