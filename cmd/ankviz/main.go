// Command ankviz exports overlay topologies as D3-style JSON or a
// self-contained HTML viewer (§5.6), optionally serving them over HTTP for
// the paper's real-time feedback loop.
//
//	ankviz -in lab.graphml -overlay ebgp -out ebgp.html
//	ankviz -in lab.graphml -serve :8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"autonetkit"
	"autonetkit/internal/viz"
)

func main() {
	in := flag.String("in", "", "input topology file")
	overlay := flag.String("overlay", "input", "overlay to export (input/phy/ospf/ebgp/ibgp/ipv4)")
	out := flag.String("out", "", "output file (.json or .html); default stdout JSON")
	serve := flag.String("serve", "", "serve all overlays over HTTP at this address instead")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ankviz: -in is required")
		os.Exit(2)
	}
	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}

	if *serve != "" {
		mux := http.NewServeMux()
		for _, name := range net.ANM.OverlayNames() {
			name := name
			mux.HandleFunc("/"+name, func(w http.ResponseWriter, r *http.Request) {
				doc, err := net.ExportOverlay(name, viz.Options{})
				if err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				html, err := doc.HTML()
				if err != nil {
					http.Error(w, err.Error(), 500)
					return
				}
				w.Header().Set("Content-Type", "text/html")
				fmt.Fprint(w, html)
			})
		}
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			for _, name := range net.ANM.OverlayNames() {
				fmt.Fprintf(w, "<a href=\"/%s\">%s</a><br>\n", name, name)
			}
		})
		fmt.Printf("serving overlays on %s\n", *serve)
		fatal(http.ListenAndServe(*serve, mux))
	}

	doc, err := net.ExportOverlay(*overlay, viz.Options{})
	if err != nil {
		fatal(err)
	}
	var payload string
	if strings.HasSuffix(*out, ".html") {
		payload, err = doc.HTML()
	} else {
		var b []byte
		b, err = doc.JSON()
		payload = string(b)
	}
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(payload)
		return
	}
	if err := os.WriteFile(*out, []byte(payload), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(payload))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankviz:", err)
	os.Exit(1)
}
