// Command ankchaos builds and deploys a topology, then runs a scripted
// fault-injection scenario against the running lab and prints the per-step
// resilience report (§8 what-if experimentation).
//
//	ankchaos -in lab.graphml -scenario outage.chaos
//	ankchaos -in lab.graphml -scenario outage.chaos -budget 40 -trace
//	ankchaos -in lab.graphml -scenario outage.chaos -lenient
//
// The scenario file is line-oriented: fail-link/fail-node/restore-link/
// restore-node/flap/partition/perturb steps interleaved with check
// assertions; see internal/chaos.ParseScenario for the full grammar. A
// scenario that sets `seed <n>` runs its control-plane perturbations
// deterministically and is supervised by the convergence watchdog
// (escalation ladder: bigger budget → soft reset → quarantine); -supervise
// forces supervision for unseeded scenarios too. A malformed scenario
// is reported with one `file:line: error: message` line per problem (the
// parser recovers and reports them all in one pass). With -lenient,
// devices whose configurations carry error diagnostics are quarantined at
// boot; the quarantine report goes to stderr and the exit status is 3.
// Otherwise exit status is 0 when the report has no error findings, 1 on
// failure or error findings.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"autonetkit"
	"autonetkit/internal/chaos"
	"autonetkit/internal/deploy"
	"autonetkit/internal/emul"
	"autonetkit/internal/routing"
)

func main() {
	in := flag.String("in", "", "input topology file")
	scenarioPath := flag.String("scenario", "", "scenario script file")
	platform := flag.String("platform", "netkit", "emulation platform")
	budget := flag.Int("budget", 0, "default per-step BGP convergence budget in rounds (0 = engine default)")
	lenient := flag.Bool("lenient", false, "quarantine devices with config errors and run against the survivors (exit 3 on partial boot)")
	supervise := flag.Bool("supervise", false, "run the convergence watchdog on every step, even for unseeded scenarios")
	trace := flag.Bool("trace", false, "print the pipeline + chaos span trace after the report")
	incremental := flag.Bool("incremental", false, "enable incremental reconvergence between scenario steps (delta SPF, BGP trajectory replay, FIB node reuse); reports stay byte-identical to full recompute")
	shards := flag.Int("shards", runtime.NumCPU(), "worker count for sharded BGP convergence (per-AS shards evaluate concurrently; 1 = sequential sweep; reports are byte-identical at any value)")
	flag.Parse()
	if *in == "" || *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "ankchaos: -in and -scenario are required")
		os.Exit(2)
	}

	f, err := os.Open(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	scenario, sdiags := chaos.ParseScenarioFile(f, filepath.Base(*scenarioPath))
	f.Close()
	if sdiags.HasErrors() {
		reportDiagnostics(sdiags)
		fmt.Fprintf(os.Stderr, "ankchaos: %d error(s) in scenario %s\n", len(sdiags.Errors()), *scenarioPath)
		os.Exit(1)
	}

	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Platform: *platform, Lenient: *lenient, Incremental: *incremental, Shards: *shards})
	partial := err != nil && errors.Is(err, emul.ErrPartialBoot)
	if err != nil && !partial {
		var derr *emul.DiagnosticError
		if errors.As(err, &derr) {
			reportDiagnostics(derr.Diags)
			fmt.Fprintln(os.Stderr, "ankchaos: boot failed: config errors (re-run with -lenient to quarantine and boot the survivors)")
			os.Exit(1)
		}
		fatal(err)
	}
	if partial {
		q := dep.Lab().Quarantined()
		fmt.Fprintf(os.Stderr, "ankchaos: PARTIAL BOOT: %d machine(s) quarantined: %s\n", len(q), strings.Join(q, ", "))
		reportDiagnostics(dep.Lab().Diagnostics())
	}
	engine, err := net.Chaos(dep.Lab(), chaos.Options{
		Budget:    routing.ConvergenceBudget{MaxBGPRounds: *budget},
		Supervise: *supervise,
	})
	if err != nil {
		fatal(err)
	}
	report, err := engine.Run(scenario)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if *trace {
		fmt.Println()
		if err := net.WriteTrace(os.Stdout); err != nil {
			fatal(err)
		}
	}
	switch {
	case partial:
		os.Exit(3)
	case !report.OK():
		os.Exit(1)
	}
}

// reportDiagnostics prints the sorted diagnostic report, one
// `device:file:line: severity: message` line per diagnostic.
func reportDiagnostics(diags emul.Diagnostics) {
	for _, d := range diags.Sorted() {
		fmt.Fprintln(os.Stderr, d.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankchaos:", err)
	os.Exit(1)
}
