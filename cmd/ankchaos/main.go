// Command ankchaos builds and deploys a topology, then runs a scripted
// fault-injection scenario against the running lab and prints the per-step
// resilience report (§8 what-if experimentation).
//
//	ankchaos -in lab.graphml -scenario outage.chaos
//	ankchaos -in lab.graphml -scenario outage.chaos -budget 40 -trace
//
// The scenario file is line-oriented: fail-link/fail-node/restore-link/
// restore-node/flap/partition steps interleaved with check assertions; see
// internal/chaos.ParseScenario for the full grammar. Exit status is 0 when
// the report has no error findings, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"autonetkit"
	"autonetkit/internal/chaos"
	"autonetkit/internal/deploy"
	"autonetkit/internal/routing"
)

func main() {
	in := flag.String("in", "", "input topology file")
	scenarioPath := flag.String("scenario", "", "scenario script file")
	platform := flag.String("platform", "netkit", "emulation platform")
	budget := flag.Int("budget", 0, "default per-step BGP convergence budget in rounds (0 = engine default)")
	trace := flag.Bool("trace", false, "print the pipeline + chaos span trace after the report")
	flag.Parse()
	if *in == "" || *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "ankchaos: -in and -scenario are required")
		os.Exit(2)
	}

	f, err := os.Open(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	scenario, err := chaos.ParseScenario(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Platform: *platform})
	if err != nil {
		fatal(err)
	}
	engine, err := net.Chaos(dep.Lab(), chaos.Options{
		Budget: routing.ConvergenceBudget{MaxBGPRounds: *budget},
	})
	if err != nil {
		fatal(err)
	}
	report, err := engine.Run(scenario)
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)
	if *trace {
		fmt.Println()
		if err := net.WriteTrace(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !report.OK() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankchaos:", err)
	os.Exit(1)
}
