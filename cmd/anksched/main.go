// Command anksched drives the reservation-based cluster scheduler from a
// line-oriented drill script: build a substrate host pool, place named
// reservations onto it, then cordon, drain, and fail hosts while the
// scheduler live re-places their VMs (§3.3 multi-host deployments).
//
//	anksched -hosts 4 -cap 8 -script drill.sched
//	anksched -script drill.sched -seed 7 -json
//	anksched -hosts 32 -cap 40 -eval "reserve web vms=12 policy=spread"
//	anksched -hosts 4 -cap 8 -state-dir /var/lib/ank -script drill.sched
//	anksched -hosts 4 -cap 8 -lease -preempt -script hostile.sched
//
// With -state-dir the scheduler is durable: every mutation is journaled
// (write-ahead log + snapshot compaction, see internal/journal) and a
// later run against the same directory recovers the exact pre-crash state
// before executing its script — recovery details go to stderr, keeping
// stdout byte-deterministic for goldens. The directory's journal must
// match the run's -seed and host set.
//
// The script grammar, one command per line (# starts a comment):
//
//	host H CAP          add substrate host H with CAP VM slots (before any
//	                    other command; overrides -hosts/-cap)
//	reserve SPEC        place a reservation; SPEC is the one-line spec
//	                    format: <name> vms=<count|v1,v2,...> [tenant=T]
//	                    [policy=pack|spread] [spread=N] [weight=W]
//	release NAME        free a reservation's slots (queued work admits)
//	cordon H            stop new placements onto H
//	uncordon H          make H schedulable again
//	drain H             cordon H and live re-place its VMs
//	fail H              mark H dead; its VMs strand until capacity frees
//	probe               run one health-probe round over all hosts
//	status              print the cluster snapshot (table, or JSON with
//	                    -json)
//	events              print the scheduler's event log
//
// With -lease the scheduler runs heartbeat leases against a logical clock
// (starting at the epoch — no wall time, so output stays deterministic)
// and the backend is wrapped in a seeded fault decorator
// (sched.FlakyBackend keyed by -seed). That unlocks:
//
//	tick [D]            advance the logical clock by D (default 1s) and
//	                    evaluate every host's lease; prints transitions
//	heartbeat           run one heartbeat round; silenced hosts do not
//	                    renew
//	silence H           make H stop answering heartbeats
//	unsilence H         restore H's heartbeats
//	flaky H RATE        make migrations onto H fail with probability
//	                    RATE (deterministic per -seed)
//	expire H            force H's lease through suspected -> dead now
//
// With -preempt a reservation whose tenant has strictly higher weight may
// evict lower-weight reservations when it cannot otherwise fit; victims
// re-queue and show as "preempted" in status output.
//
// Every placement decision is byte-deterministic given (script, -seed), so
// a drill's output can be kept as a golden file. Degraded operations
// (drain/fail that strands VMs, reservations queued behind capacity) are
// reported inline and the drill continues; the exit status is 3 if the
// final state is degraded, 1 on a hard error, 0 otherwise.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"autonetkit/internal/sched"
)

func main() {
	hosts := flag.Int("hosts", 0, "number of uniform substrate hosts (ignored when the script declares host lines)")
	capacity := flag.Int("cap", 8, "VM slots per uniform host")
	seed := flag.Uint64("seed", 1, "placement seed (same script + same seed = byte-identical output)")
	script := flag.String("script", "", "drill script file (- for stdin)")
	eval := flag.String("eval", "", "run a single command instead of a script")
	jsonOut := flag.Bool("json", false, "print status snapshots as JSON instead of tables")
	stateDir := flag.String("state-dir", "", "durable state directory: journal every mutation and recover prior state on start")
	snapEvery := flag.Int("snapshot-every", 0, "compact the journal after this many records (0 = default)")
	lease := flag.Bool("lease", false, "enable heartbeat leases over a logical clock and wrap the backend in a seeded fault decorator")
	preempt := flag.Bool("preempt", false, "let higher-weight reservations evict lower-weight ones when they cannot fit")
	flag.Parse()

	var lines []string
	var source string
	switch {
	case *eval != "":
		lines = []string{*eval, "status"}
		source = "eval"
	case *script == "-":
		lines = readLines(os.Stdin)
		source = "stdin"
	case *script != "":
		f, err := os.Open(*script)
		if err != nil {
			fatal(err)
		}
		lines = readLines(f)
		f.Close()
		source = filepath.Base(*script)
	default:
		fmt.Fprintln(os.Stderr, "anksched: -script or -eval is required")
		os.Exit(2)
	}

	d := &drill{
		jsonOut: *jsonOut, source: source, stateDir: *stateDir, snapEvery: *snapEvery,
		lease: *lease, preempt: *preempt,
	}
	err := d.run(lines, *hosts, *capacity, *seed)
	if d.cluster != nil {
		if cerr := d.cluster.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing journal: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "anksched: %v\n", err)
		os.Exit(1)
	}
	if d.degraded() {
		os.Exit(3)
	}
}

type drill struct {
	cluster   *sched.Cluster
	jsonOut   bool
	source    string
	stateDir  string
	snapEvery int
	lease     bool
	preempt   bool
	// clock is the logical lease clock: it starts at the epoch and only
	// advances on tick commands, so drill output never depends on wall
	// time.
	clock time.Time
	flaky *sched.FlakyBackend
}

// degraded reports whether the final cluster state still carries queued or
// degraded reservations — the drill ran, but demand is not fully placed.
func (d *drill) degraded() bool {
	if d.cluster == nil {
		return false
	}
	for _, r := range d.cluster.Status().Reservations {
		if r.State != sched.ResActive {
			return true
		}
	}
	return false
}

func (d *drill) run(lines []string, hosts, capacity int, seed uint64) error {
	var declared []sched.HostInfo
	rest := 0
	for i, line := range lines {
		fields := strings.Fields(stripComment(line))
		if len(fields) == 0 {
			rest = i + 1
			continue
		}
		if fields[0] != "host" {
			break
		}
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: host needs <name> <capacity>, got %q", d.source, i+1, line)
		}
		slots, err := strconv.Atoi(fields[2])
		if err != nil || slots <= 0 {
			return fmt.Errorf("%s:%d: bad host capacity %q", d.source, i+1, fields[2])
		}
		declared = append(declared, sched.HostInfo{Name: fields[1], Capacity: slots})
		rest = i + 1
	}

	var static *sched.StaticBackend
	switch {
	case len(declared) > 0:
		static = sched.NewStaticBackend(declared...)
	case hosts > 0:
		static = sched.Uniform(hosts, capacity)
	default:
		return errors.New("no hosts: pass -hosts N or start the script with host lines")
	}
	var backend sched.Backend = static
	opts := sched.Options{Seed: seed, SnapshotEvery: d.snapEvery, Preempt: d.preempt}
	if d.lease {
		d.clock = time.Unix(0, 0).UTC()
		d.flaky = sched.NewFlakyBackend(static, seed)
		backend = d.flaky
		opts.Lease = sched.LeasePolicy{Enabled: true}
		opts.Now = func() time.Time { return d.clock }
	}
	var cluster *sched.Cluster
	var err error
	if d.stateDir != "" {
		var info sched.RecoveryInfo
		cluster, info, err = sched.Open(d.stateDir, backend, opts)
		if err == nil {
			// stderr, so recovery does not perturb golden stdout.
			fmt.Fprintf(os.Stderr, "anksched: %s\n", info)
		}
	} else {
		cluster, err = sched.New(backend, opts)
	}
	if err != nil {
		return err
	}
	d.cluster = cluster

	for i, line := range lines[rest:] {
		lineNo := rest + i + 1
		fields := strings.Fields(stripComment(line))
		if len(fields) == 0 {
			continue
		}
		if err := d.exec(fields, stripComment(line)); err != nil {
			if errors.Is(err, sched.ErrDegraded) {
				fmt.Printf("%s: DEGRADED: %v\n", fields[0], err)
				continue
			}
			return fmt.Errorf("%s:%d: %w", d.source, lineNo, err)
		}
	}
	return nil
}

func (d *drill) exec(fields []string, line string) error {
	cmd, args := fields[0], fields[1:]
	one := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("%s needs one host name", cmd)
		}
		return args[0], nil
	}
	switch cmd {
	case "host":
		return errors.New("host lines must precede all other commands")
	case "reserve":
		spec, err := sched.ParseSpec(strings.TrimSpace(strings.TrimPrefix(line, "reserve")))
		if err != nil {
			return err
		}
		st, err := d.cluster.Reserve(spec)
		if err != nil {
			return err
		}
		if st.State == sched.ResQueued {
			fmt.Printf("reserve %s: %d VMs queued (tenant %s)\n", st.Name, st.VMs, st.Tenant)
		} else {
			fmt.Printf("reserve %s: %d VMs active on %s\n", st.Name, st.VMs, strings.Join(st.Hosts, ", "))
		}
		return nil
	case "release":
		name, err := one()
		if err != nil {
			return err
		}
		if err := d.cluster.Release(name); err != nil {
			return err
		}
		fmt.Printf("release %s\n", name)
		return nil
	case "cordon", "uncordon":
		host, err := one()
		if err != nil {
			return err
		}
		if cmd == "cordon" {
			err = d.cluster.Cordon(host)
		} else {
			err = d.cluster.Uncordon(host)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s %s\n", cmd, host)
		return nil
	case "drain", "fail":
		host, err := one()
		if err != nil {
			return err
		}
		var res sched.DrainResult
		if cmd == "drain" {
			res, err = d.cluster.Drain(host)
		} else {
			res, err = d.cluster.FailHost(host)
		}
		if err != nil && !errors.Is(err, sched.ErrDegraded) {
			return err
		}
		fmt.Printf("%s %s: %d VMs re-placed, %d stranded\n", cmd, host, len(res.Moves), len(res.Stranded))
		for _, m := range res.Moves {
			fmt.Printf("  %s: %s -> %s\n", m.VM, m.From, m.To)
		}
		if len(res.Stranded) > 0 {
			fmt.Printf("  stranded: %s\n", strings.Join(res.Stranded, ", "))
		}
		return nil
	case "tick":
		if !d.lease {
			return errors.New("tick needs -lease")
		}
		dur := time.Second
		if len(args) > 1 {
			return errors.New("tick takes at most one duration")
		}
		if len(args) == 1 {
			parsed, err := time.ParseDuration(args[0])
			if err != nil || parsed <= 0 {
				return fmt.Errorf("bad tick duration %q", args[0])
			}
			dur = parsed
		}
		d.clock = d.clock.Add(dur)
		transitions := d.cluster.CheckLeases()
		fmt.Printf("tick %s -> t=%s\n", dur, d.clock.Sub(time.Unix(0, 0).UTC()))
		for _, tr := range transitions {
			fmt.Printf("  lease %s\n", tr)
		}
		return nil
	case "heartbeat":
		if !d.lease {
			return errors.New("heartbeat needs -lease")
		}
		renewed := d.cluster.HeartbeatAll()
		fmt.Printf("heartbeat: %d renewed (%s)\n", len(renewed), strings.Join(renewed, ", "))
		return nil
	case "silence", "unsilence":
		if !d.lease {
			return fmt.Errorf("%s needs -lease", cmd)
		}
		host, err := one()
		if err != nil {
			return err
		}
		if cmd == "silence" {
			d.flaky.Silence(host)
		} else {
			d.flaky.Unsilence(host)
		}
		fmt.Printf("%s %s\n", cmd, host)
		return nil
	case "flaky":
		if !d.lease {
			return errors.New("flaky needs -lease")
		}
		if len(args) != 2 {
			return errors.New("flaky needs <host> <rate>")
		}
		rate, err := strconv.ParseFloat(args[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("bad flaky rate %q (want 0..1)", args[1])
		}
		d.flaky.SetMigrateFailRate(args[0], rate)
		fmt.Printf("flaky %s %.2f\n", args[0], rate)
		return nil
	case "expire":
		if !d.lease {
			return errors.New("expire needs -lease")
		}
		host, err := one()
		if err != nil {
			return err
		}
		res, err := d.cluster.ExpireLease(host)
		if err != nil && !errors.Is(err, sched.ErrDegraded) {
			return err
		}
		fmt.Printf("expire %s: %d VMs re-placed, %d stranded\n", host, len(res.Moves), len(res.Stranded))
		for _, m := range res.Moves {
			fmt.Printf("  %s: %s -> %s\n", m.VM, m.From, m.To)
		}
		if len(res.Stranded) > 0 {
			fmt.Printf("  stranded: %s\n", strings.Join(res.Stranded, ", "))
		}
		return nil
	case "probe":
		for _, pr := range d.cluster.ProbeAll() {
			state := "ok"
			if !pr.Healthy {
				state = "FAIL"
			}
			fmt.Printf("probe %s: %s (%s)\n", pr.Host, state, pr.State)
		}
		return nil
	case "status":
		st := d.cluster.Status()
		if d.jsonOut {
			fmt.Print(st.JSON())
		} else {
			fmt.Print(st.Table())
		}
		return nil
	case "events":
		for _, ev := range d.cluster.Events() {
			fmt.Printf("[%03d] %-10s %s\n", ev.Seq, ev.Kind, ev.Detail)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func readLines(f *os.File) []string {
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anksched:", err)
	os.Exit(1)
}
