// Command ankdeploy builds a topology and deploys it onto the emulation
// platform, streaming the launch progress (§5.7).
//
//	ankdeploy -in lab.graphml [-platform netkit] [-host localhost]
package main

import (
	"flag"
	"fmt"
	"os"

	"autonetkit"
	"autonetkit/internal/deploy"
)

func main() {
	in := flag.String("in", "", "input topology file")
	platform := flag.String("platform", "netkit", "emulation platform (netkit/dynagen/junosphere/cbgp)")
	host := flag.String("host", "localhost", "emulation host")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ankdeploy: -in is required")
		os.Exit(2)
	}
	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	// Route every device onto the requested platform.
	for _, n := range net.ANM.Overlay("input").Nodes() {
		n.MustSet("platform", *platform)
		n.MustSet("syntax", syntaxFor(*platform))
		n.MustSet("host", *host)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{
		Host: *host, Platform: *platform,
		OnEvent: func(e deploy.Event) { fmt.Printf("[%s] %s\n", e.Stage, e.Detail) },
	})
	if err != nil {
		fatal(err)
	}
	lab := dep.Lab()
	res := lab.BGPResult()
	switch {
	case res.Converged:
		fmt.Printf("lab running: %d machines, BGP converged in %d rounds\n", len(lab.VMNames()), res.Rounds)
	case res.Oscillating:
		fmt.Printf("lab running: %d machines, BGP OSCILLATING (cycle length %d)\n", len(lab.VMNames()), res.CycleLen)
	}
}

func syntaxFor(platform string) string {
	switch platform {
	case "dynagen":
		return "ios"
	case "junosphere":
		return "junos"
	case "cbgp":
		return "cbgp"
	default:
		return "quagga"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankdeploy:", err)
	os.Exit(1)
}
