// Command ankdeploy builds a topology and deploys it onto the emulation
// platform, streaming the launch progress (§5.7).
//
//	ankdeploy -in lab.graphml [-platform netkit] [-host localhost]
//	ankdeploy -in lab.graphml -lenient
//	ankdeploy -in lab.graphml -supervise -converge-timeout 30s
//
// With -lenient, devices whose generated configurations carry error
// diagnostics are quarantined instead of failing the whole launch: the
// surviving topology boots, the quarantine report (one `device:file:line:
// severity: message` line per diagnostic, sorted) is printed to stderr,
// and the exit status is 3 to distinguish a partial boot from a full one
// (0) or a failed one (1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/emul"
)

func main() {
	in := flag.String("in", "", "input topology file")
	platform := flag.String("platform", "netkit", "emulation platform (netkit/dynagen/junosphere/cbgp)")
	host := flag.String("host", "localhost", "emulation host")
	lenient := flag.Bool("lenient", false, "quarantine devices with config errors and boot the survivors (exit 3 on partial boot)")
	supervise := flag.Bool("supervise", false, "run the convergence watchdog after boot (escalate budget, soft-reset, quarantine on non-convergence)")
	convergeTimeout := flag.Duration("converge-timeout", 0, "wall-clock bound per control-plane convergence run (0 = unbounded)")
	incremental := flag.Bool("incremental", false, "enable incremental reconvergence (delta SPF, BGP trajectory replay, FIB node reuse); results stay byte-identical to full recompute")
	shards := flag.Int("shards", runtime.NumCPU(), "worker count for sharded BGP convergence (per-AS shards evaluate concurrently; 1 = sequential sweep; results are byte-identical at any value)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ankdeploy: -in is required")
		os.Exit(2)
	}
	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	// Route every device onto the requested platform.
	for _, n := range net.ANM.Overlay("input").Nodes() {
		n.MustSet("platform", *platform)
		n.MustSet("syntax", syntaxFor(*platform))
		n.MustSet("host", *host)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{
		Host: *host, Platform: *platform, Lenient: *lenient,
		Supervise: *supervise, ConvergeTimeout: *convergeTimeout,
		Incremental: *incremental, Shards: *shards,
		OnEvent: func(e deploy.Event) { fmt.Printf("[%s] %s\n", e.Stage, e.Detail) },
	})
	partial := err != nil && errors.Is(err, emul.ErrPartialBoot)
	if err != nil && !partial {
		var derr *emul.DiagnosticError
		if errors.As(err, &derr) {
			reportDiagnostics(derr.Diags)
			fmt.Fprintln(os.Stderr, "ankdeploy: boot failed: config errors (re-run with -lenient to quarantine and boot the survivors)")
			os.Exit(1)
		}
		fatal(err)
	}
	lab := dep.Lab()
	res := lab.BGPResult()
	switch {
	case res.Cancelled:
		fmt.Printf("lab running: %d machines, BGP run CANCELLED after %d rounds (timeout %v)\n", len(lab.VMNames()), res.Rounds, *convergeTimeout)
	case res.Converged:
		fmt.Printf("lab running: %d machines, BGP converged in %d rounds\n", len(lab.VMNames()), res.Rounds)
	case res.Oscillating:
		fmt.Printf("lab running: %d machines, BGP OSCILLATING (cycle length %d)\n", len(lab.VMNames()), res.CycleLen)
	}
	if partial {
		q := lab.Quarantined()
		fmt.Fprintf(os.Stderr, "ankdeploy: PARTIAL BOOT: %d machine(s) quarantined: %s\n", len(q), strings.Join(q, ", "))
		reportDiagnostics(lab.Diagnostics())
		os.Exit(3)
	}
}

// reportDiagnostics prints the sorted quarantine/diagnostic report, one
// `device:file:line: severity: message` line per diagnostic.
func reportDiagnostics(diags emul.Diagnostics) {
	for _, d := range diags.Sorted() {
		fmt.Fprintln(os.Stderr, d.String())
	}
}

func syntaxFor(platform string) string {
	switch platform {
	case "dynagen":
		return "ios"
	case "junosphere":
		return "junos"
	case "cbgp":
		return "cbgp"
	default:
		return "quagga"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankdeploy:", err)
	os.Exit(1)
}
