// Command ankbuild runs the configuration pipeline: topology file in,
// configuration tree out — the paper's console workflow (§6.1).
//
//	ankbuild -in lab.graphml -out ./rendered [-rr] [-isis]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autonetkit"
	"autonetkit/internal/cache"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/obs"
)

func main() {
	in := flag.String("in", "", "input topology (graphml/gml/json/cch/adj)")
	out := flag.String("out", "rendered", "output directory for configuration files")
	rr := flag.Bool("rr", false, "build hierarchical iBGP with route reflectors (§7.1)")
	rrPerAS := flag.Int("rr-per-as", 2, "route reflectors auto-selected per AS")
	isis := flag.Bool("isis", false, "additionally build IS-IS (§7)")
	doVerify := flag.Bool("verify", false, "run pre-deployment static verification (§8)")
	dumpNIDB := flag.String("dump-nidb", "", "write one device's Resource-Database tree as JSON (the paper's §5.4 listing); device id or 'all'")
	workers := flag.Int("workers", 0, "compile/render worker count (0 = GOMAXPROCS, 1 = serial)")
	useCache := flag.Bool("cache", false, "enable the incremental content-addressed build cache")
	cacheDir := flag.String("cache-dir", ".ankcache", "cache directory for -cache (always safe to delete)")
	trace := flag.Bool("trace", false, "print the pipeline trace (per-stage timings and work counters) to stderr")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ankbuild: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	loadDone := time.Now()
	opts := autonetkit.BuildOptions{Design: design.Options{
		RouteReflectors: *rr,
		RROptions:       design.RROptions{PerAS: *rrPerAS},
		ISIS:            *isis,
	}}
	opts.Compile.Workers = *workers
	opts.Render.Workers = *workers
	var store *cache.Store
	if *useCache {
		store, err = cache.Open(*cacheDir, cache.Options{})
		if err != nil {
			fatal(err)
		}
		opts.Compile.Cache = store
		opts.Render.Cache = store
	}
	if err := net.Design(opts.Design); err != nil {
		fatal(err)
	}
	if err := net.Allocate(opts.IP); err != nil {
		fatal(err)
	}
	designDone := time.Now()
	if err := net.Compile(opts.Compile); err != nil {
		fatal(err)
	}
	compileDone := time.Now()
	if err := net.RenderWith(opts.Render); err != nil {
		fatal(err)
	}
	renderDone := time.Now()
	if *dumpNIDB != "" {
		if *dumpNIDB == "all" {
			b, err := net.DB.MarshalJSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(b))
		} else {
			s, err := net.DB.DumpDevice(graph.ID(*dumpNIDB))
			if err != nil {
				fatal(err)
			}
			fmt.Println(s)
		}
	}
	if *doVerify {
		report, err := net.Verify()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report)
		if !report.OK() {
			os.Exit(1)
		}
	}
	if err := net.SaveConfigs(*out); err != nil {
		fatal(err)
	}

	inOv := net.ANM.Overlay("input")
	fmt.Printf("loaded %d devices, %d links from %s\n", inOv.NumNodes(), inOv.NumEdges(), *in)
	fmt.Printf("overlays: %v\n", net.ANM.OverlayNames())
	fmt.Printf("rendered %d files (%d bytes) under %s\n", net.Files.Len(), net.Files.TotalBytes(), *out)
	if store != nil {
		counters := net.Stats().Counters
		fmt.Printf("cache: %d hits, %d misses, %d bytes reused (%s)\n",
			counters[obs.CounterCacheHits], counters[obs.CounterCacheMisses],
			counters[obs.CounterCacheBytes], store.Dir())
	}
	fmt.Printf("timings: load %v, design+allocate %v, compile %v, render %v (total %v)\n",
		loadDone.Sub(start).Round(time.Millisecond),
		designDone.Sub(loadDone).Round(time.Millisecond),
		compileDone.Sub(designDone).Round(time.Millisecond),
		renderDone.Sub(compileDone).Round(time.Millisecond),
		renderDone.Sub(start).Round(time.Millisecond))
	if *trace {
		if err := net.WriteTrace(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankbuild:", err)
	os.Exit(1)
}
