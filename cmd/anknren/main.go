// Command anknren regenerates the paper's §3.2 scale experiment: build the
// European-NREN-scale model (42 ASes, 1158 routers, 1470 links by default),
// run it through the pipeline, and report per-stage timings plus the size
// of the generated configuration set — the row the paper states as "15
// seconds to load and build, 27 seconds to compile, 2 minutes to render;
// 20MB with 16,144 items".
//
//	anknren [-ases 42] [-routers 1158] [-links 1470] [-sweep]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autonetkit"
	"autonetkit/internal/topogen"
)

func main() {
	ases := flag.Int("ases", 42, "autonomous systems")
	routers := flag.Int("routers", 1158, "routers")
	links := flag.Int("links", 1470, "links")
	sweep := flag.Bool("sweep", false, "additionally sweep smaller sizes for the scaling series")
	flag.Parse()

	fmt.Printf("%8s %8s %8s | %10s %10s %10s | %8s %10s\n",
		"ases", "routers", "links", "load+build", "compile", "render", "files", "bytes")
	if *sweep {
		for _, scale := range []int{10, 25, 50, 100} {
			cfg := topogen.NRENConfig{
				ASes:    max(2, *ases*scale/100),
				Routers: max(4, *routers*scale/100),
				Links:   max(4, *links*scale/100),
			}
			if err := run(cfg); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := run(topogen.NRENConfig{ASes: *ases, Routers: *routers, Links: *links}); err != nil {
		fatal(err)
	}
}

func run(cfg topogen.NRENConfig) error {
	t0 := time.Now()
	g, err := topogen.NREN(cfg)
	if err != nil {
		return err
	}
	net, err := autonetkit.LoadGraph(g)
	if err != nil {
		return err
	}
	if err := net.Design(autonetkit.BuildOptions{}.Design); err != nil {
		return err
	}
	if err := net.Allocate(autonetkit.BuildOptions{}.IP); err != nil {
		return err
	}
	t1 := time.Now() // load + build overlays (the paper's "load and build")
	if err := net.Compile(autonetkit.BuildOptions{}.Compile); err != nil {
		return err
	}
	t2 := time.Now()
	if err := net.Render(); err != nil {
		return err
	}
	t3 := time.Now()
	fmt.Printf("%8d %8d %8d | %10v %10v %10v | %8d %10d\n",
		cfg.ASes, cfg.Routers, cfg.Links,
		t1.Sub(t0).Round(time.Millisecond),
		t2.Sub(t1).Round(time.Millisecond),
		t3.Sub(t2).Round(time.Millisecond),
		net.Files.Len(), net.Files.TotalBytes())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "anknren:", err)
	os.Exit(1)
}
