// Command ankmeasure builds, deploys and measures a topology: traceroutes
// with reverse name mapping, OSPF adjacency collection, and design-vs-
// measured validation (§5.7, §6.1).
//
//	ankmeasure -in lab.graphml -src as300r2 -dst as100r2
//	ankmeasure -in lab.graphml -validate
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"

	"autonetkit"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/measure"
)

func main() {
	in := flag.String("in", "", "input topology file")
	src := flag.String("src", "", "traceroute source device")
	dst := flag.String("dst", "", "traceroute destination device (first interface) or address")
	validate := flag.Bool("validate", false, "compare measured OSPF topology against the design")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ankmeasure: -in is required")
		os.Exit(2)
	}
	net, err := autonetkit.Load(*in)
	if err != nil {
		fatal(err)
	}
	if err := net.Build(autonetkit.BuildOptions{}); err != nil {
		fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		fatal(err)
	}
	lab := dep.Lab()
	client := net.Measure(lab)

	if *validate {
		measured, err := client.MeasuredOSPFGraph(lab.VMNames())
		if err != nil {
			fatal(err)
		}
		diff := measure.Compare(net.ANM.Overlay(design.OverlayOSPF).Graph(), measured)
		fmt.Println(diff)
		if !diff.OK() {
			for _, e := range diff.MissingEdges {
				fmt.Printf("  missing adjacency: %s -- %s\n", e[0], e[1])
			}
			for _, e := range diff.ExtraEdges {
				fmt.Printf("  unexpected adjacency: %s -- %s\n", e[0], e[1])
			}
			os.Exit(1)
		}
		return
	}

	if *src == "" || *dst == "" {
		fmt.Fprintln(os.Stderr, "ankmeasure: need -src and -dst (or -validate)")
		os.Exit(2)
	}
	dstAddr, err := netip.ParseAddr(*dst)
	if err != nil {
		// Destination by device name: its first interface address (§6.1).
		found := false
		for _, e := range net.Alloc.Table.Entries() {
			if string(e.Node) == *dst && !e.Loopback {
				dstAddr, found = e.Addr, true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("no interface address for device %q", *dst))
		}
	}
	tr, err := client.RunTraceroute(*src, dstAddr)
	if err != nil {
		fatal(err)
	}
	raw, _ := client.Run(*src, "traceroute -naU "+dstAddr.String())
	fmt.Print(raw)
	fmt.Printf("[%s]\n", strings.Join(tr.Path(), ", "))
	if !tr.Reached {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ankmeasure:", err)
	os.Exit(1)
}
