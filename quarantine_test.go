package autonetkit

import (
	"errors"
	"net/netip"
	"os"
	"strings"
	"testing"

	"autonetkit/internal/deploy"
	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
)

// Golden partial-boot drill: one device of the Small-Internet lab ships a
// bgpd.conf with three independent errors; a lenient deployment
// quarantines exactly that device, boots the other 13, and the quarantine
// report is byte-identical to testdata/quarantine/report.golden
// (regenerate deliberately with UPDATE_QUARANTINE_GOLDEN=1 go test -run
// TestGoldenQuarantineDrill).
func TestGoldenQuarantineDrill(t *testing.T) {
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	const victim = "as100r2"
	confPath := "localhost/netkit/" + victim + "/etc/quagga/bgpd.conf"
	if _, ok := net.Files.Read(confPath); !ok {
		t.Fatalf("fixture renders no %s", confPath)
	}
	net.Files.Write(confPath, "router bgp 100\n"+
		"  bgp router-id junk\n"+
		"  network nonsense\n"+
		"  neighbor bad-addr remote-as 20\n")

	dep, err := net.Deploy(deploy.Options{Lenient: true})
	if !errors.Is(err, emul.ErrPartialBoot) {
		t.Fatalf("lenient deploy error = %v, want emul.ErrPartialBoot", err)
	}
	lab := dep.Lab()
	if q := lab.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantined = %v, want [%s]", q, victim)
	}
	if got := net.Stats().Counters[obs.CounterDevicesQuarantined]; got != 1 {
		t.Errorf("%s counter = %d, want 1", obs.CounterDevicesQuarantined, got)
	}

	// The quarantine report: the machine list plus every diagnostic in
	// canonical sorted form — exactly what ankdeploy -lenient prints.
	var sb strings.Builder
	sb.WriteString("quarantined: " + strings.Join(lab.Quarantined(), ", ") + "\n")
	for _, d := range lab.Diagnostics().Sorted() {
		sb.WriteString(d.String() + "\n")
	}
	report := sb.String()
	goldenPath := "testdata/quarantine/report.golden"
	if os.Getenv("UPDATE_QUARANTINE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("quarantine report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}

	// The degraded lab is measurable: a reachability matrix over the 13
	// survivors runs to completion, and routers away from the quarantined
	// stub still reach each other.
	survivors := make([]string, 0, len(lab.VMNames()))
	for _, name := range lab.VMNames() {
		if name != victim {
			survivors = append(survivors, name)
		}
	}
	loopbacks := map[string]netip.Addr{}
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks[string(e.Node)] = e.Addr
		}
	}
	client := net.Measure(lab)
	matrix, err := client.ReachabilityMatrix(survivors, func(n string) netip.Addr { return loopbacks[n] })
	if err != nil {
		t.Fatalf("reachability over survivors: %v", err)
	}
	if len(matrix.Nodes) != len(survivors) {
		t.Errorf("matrix covers %d nodes, want %d", len(matrix.Nodes), len(survivors))
	}
	if !matrix.Reach[[2]string{"as300r2", "as1r1"}] {
		t.Error("survivor as300r2 cannot reach as1r1 in the degraded lab")
	}
}
