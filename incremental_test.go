package autonetkit

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
)

// End-to-end determinism harness for incremental reconvergence: the PR 5
// byte-oracle (scenario reports and lab event logs) must be identical
// whether the lab reconverges with full recompute or with the incremental
// paths (delta SPF, BGP trajectory replay, FIB node reuse), at any build
// worker count and under any perturbation seed.

// incrementalParityScenario mixes incidents (replay-eligible reconverges)
// with seeded perturbation storms (replay-ineligible, watchdog-supervised)
// so the parity check covers both regimes and the transitions between them.
func incrementalParityScenario(seed uint64) string {
	return fmt.Sprintf(`name incremental parity
seed %d

fail-link as20r2 as20r3
check
restore-link as20r2 as20r3
check baseline

perturb delay 2 on as1r1:as20r3
check converged
perturb clear

fail-node as300r1
check
restore-node as300r1
check baseline

perturb flap as1r1:as20r3 every 1 recover
perturb clear
check baseline
`, seed)
}

// runIncrementalScenario builds the Small-Internet fixture, deploys it
// with or without incremental reconvergence, runs the scenario text, and
// returns the rendered report, the lab's full event log, and the
// network's counters.
func runIncrementalScenario(t *testing.T, workers int, incremental bool, scenario string) (string, string, obs.Stats) {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Incremental: incremental})
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(strings.NewReader(scenario), "parity.chaos")
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scenario produced error findings:\n%s", rep)
	}
	return rep.String() + "\n", strings.Join(dep.Lab().Events(), "\n"), net.Stats()
}

// The tentpole's correctness bar: incremental ≡ full, byte for byte, on
// reports and event logs, across Workers∈{1,8} and three perturbation
// seeds.
func TestIncrementalConvergenceParity(t *testing.T) {
	for _, seed := range []uint64{1337, 2024, 777} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			scenario := incrementalParityScenario(seed)
			wantReport, wantEvents, _ := runIncrementalScenario(t, 1, false, scenario)
			for _, workers := range []int{1, 8} {
				for _, incremental := range []bool{false, true} {
					if workers == 1 && !incremental {
						continue // the baseline itself
					}
					report, events, stats := runIncrementalScenario(t, workers, incremental, scenario)
					label := fmt.Sprintf("workers=%d incremental=%v", workers, incremental)
					if report != wantReport {
						t.Errorf("%s: report differs from full baseline:\n--- got ---\n%s--- want ---\n%s",
							label, report, wantReport)
					}
					if events != wantEvents {
						t.Errorf("%s: lab events differ from full baseline:\n--- got ---\n%s\n--- want ---\n%s",
							label, events, wantEvents)
					}
					// The incremental paths must actually engage (the parity
					// would hold vacuously if replay never armed).
					if incremental {
						if stats.Counters[obs.CounterBGPSpeakersRestored] == 0 {
							t.Errorf("%s: bgp_speakers_restored = 0, replay never engaged", label)
						}
						if stats.Counters[obs.CounterSPFSourcesSkipped] == 0 {
							t.Errorf("%s: spf_sources_skipped = 0, delta SPF never engaged", label)
						}
					} else if stats.Counters[obs.CounterBGPSpeakersRestored] != 0 {
						t.Errorf("%s: full mode restored %d speaker-rounds", label,
							stats.Counters[obs.CounterBGPSpeakersRestored])
					}
				}
			}
		})
	}
}

// runIncrementalDrill runs testdata/incremental/drill.chaos end-to-end and
// returns the rendered report.
func runIncrementalDrill(t *testing.T, workers int, incremental bool) string {
	t.Helper()
	data, err := os.ReadFile("testdata/incremental/drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	report, _, _ := runIncrementalScenario(t, workers, incremental, string(data))
	return report
}

// Golden incremental drill: the supervised incident sequence's report is
// byte-reproducible across runs, worker counts and convergence modes, and
// matches testdata/incremental/drill.report (regenerate deliberately with
// UPDATE_INCREMENTAL_GOLDEN=1 go test -run TestGoldenIncrementalDrill).
func TestGoldenIncrementalDrill(t *testing.T) {
	report := runIncrementalDrill(t, 1, true)
	if full := runIncrementalDrill(t, 1, false); full != report {
		t.Fatalf("incremental report differs from full recompute:\n--- incremental ---\n%s--- full ---\n%s", report, full)
	}
	if wide := runIncrementalDrill(t, 8, true); wide != report {
		t.Fatalf("report differs between Workers=1 and Workers=8:\n--- 1 ---\n%s--- 8 ---\n%s", report, wide)
	}

	// Structural assertions first, so a stale golden cannot mask a broken
	// drill: the incidents converge under supervision, the flap storm climbs
	// the ladder, and every watchdog rung cites the triggering incident.
	for _, want := range []string{
		"watchdog observe [incident #4]: oscillating",
		"watchdog soft-reset [incident #4]",
		"recovered after 2 escalations",
		"(incident #4)",
		"182/182 pairs reachable",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/incremental/drill.report"
	if os.Getenv("UPDATE_INCREMENTAL_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}
