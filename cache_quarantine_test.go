package autonetkit

import (
	"errors"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
	"autonetkit/internal/topogen"
)

// TestLenientBootDoesNotPoisonCache drives the resilient-boot path against
// a warm build cache: a device whose rendered config is corrupted after
// rendering gets quarantined by a lenient deployment, but neither the
// corruption nor the boot diagnostics may leak into the cache — a rebuild
// from the same store must serve the healthy artifacts, all hits. Fixing
// the quarantined device's model afterwards must rebuild it as a miss.
func TestLenientBootDoesNotPoisonCache(t *testing.T) {
	store := cache.NewMemory()
	net := buildCached(t, topogen.SmallInternet(), store, 1)
	refHash := fileSetHash(t, net.Files)
	n := int64(net.DB.Len())

	const victim = "as100r2"
	confPath := "localhost/netkit/" + victim + "/etc/quagga/bgpd.conf"
	healthy, ok := net.Files.Read(confPath)
	if !ok {
		t.Fatalf("no %s in rendered tree", confPath)
	}

	// Corrupt the rendered artifact (post-render, as an operator editing the
	// tree would) and boot leniently: the victim is quarantined with
	// diagnostics, the other 13 devices come up.
	net.Files.Write(confPath, "router bgp 100\n  bgp router-id junk\n  network nonsense\n")
	dep, err := net.Deploy(deploy.Options{Lenient: true})
	if !errors.Is(err, emul.ErrPartialBoot) {
		t.Fatalf("lenient deploy error = %v, want emul.ErrPartialBoot", err)
	}
	lab := dep.Lab()
	if q := lab.Quarantined(); len(q) != 1 || q[0] != victim {
		t.Fatalf("quarantined = %v, want [%s]", q, victim)
	}
	if len(lab.Diagnostics().Sorted()) == 0 {
		t.Fatal("quarantine produced no diagnostics")
	}

	// Rebuild the same model from the same store: every device hits both
	// caches and the tree is the healthy one — the corruption and the
	// diagnostics never entered the content-addressed store.
	rebuilt := buildCached(t, topogen.SmallInternet(), store, 1)
	c := rebuilt.Stats().Counters
	if c[obs.CounterCompileCacheHits] != n || c[obs.CounterCompileCacheMisses] != 0 {
		t.Errorf("rebuild compile hits/misses = %d/%d, want %d/0",
			c[obs.CounterCompileCacheHits], c[obs.CounterCompileCacheMisses], n)
	}
	if c[obs.CounterRenderCacheHits] != n || c[obs.CounterRenderCacheMisses] != 0 {
		t.Errorf("rebuild render hits/misses = %d/%d, want %d/0",
			c[obs.CounterRenderCacheHits], c[obs.CounterRenderCacheMisses], n)
	}
	if got, _ := rebuilt.Files.Read(confPath); got != healthy {
		t.Errorf("rebuild served a poisoned %s:\n%s", confPath, got)
	}
	if fileSetHash(t, rebuilt.Files) != refHash {
		t.Error("rebuild from warm store differs from the original healthy tree")
	}

	// "Fixing" the quarantined device — any model change on it — must
	// invalidate exactly the victim, never be papered over by a stale hit.
	ospf := rebuilt.ANM.Overlay(design.OverlayOSPF)
	nd := ospf.Node(victim)
	before := compileDigests(rebuilt)
	if err := nd.Set(design.AttrBackbone, !nd.GetBool(design.AttrBackbone)); err != nil {
		t.Fatal(err)
	}
	if moved := movedDevices(before, compileDigests(rebuilt)); len(moved) != 1 || moved[0] != victim {
		t.Fatalf("victim fix moved digests of %v, want exactly [%s]", moved, victim)
	}
	col := obs.NewCollector()
	if _, err := compile.Compile(rebuilt.ANM, rebuilt.Alloc, compile.Options{Cache: store, Obs: col}); err != nil {
		t.Fatal(err)
	}
	fc := col.Snapshot().Counters
	if fc[obs.CounterCompileCacheMisses] != 1 || fc[obs.CounterCompileCacheHits] != n-1 {
		t.Errorf("post-fix compile hits/misses = %d/%d, want %d/1",
			fc[obs.CounterCompileCacheHits], fc[obs.CounterCompileCacheMisses], n-1)
	}
	if fc[obs.CounterDevicesCompiled] != 1 {
		t.Errorf("post-fix compiled %d devices, want exactly the fixed one", fc[obs.CounterDevicesCompiled])
	}
}
