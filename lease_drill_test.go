package autonetkit

import (
	"os"
	"strings"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/render"
	"autonetkit/internal/sched"
)

// runLeaseDrill builds the Small-Internet fixture with the given worker
// count and deploys it through a lease-enabled, preemption-enabled
// scheduler whose backend is a seeded fault decorator. The lab (weight 5)
// shares the cluster with a low-weight batch reservation that fills every
// spare slot and a mid-weight probe reservation that must preempt it.
// Then testdata/lease/lease_drill.chaos injects scheduled migration
// faults and silences a host, and the report is returned.
func runLeaseDrill(t *testing.T, workers int) string {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	}); err != nil {
		t.Fatal(err)
	}
	backend := sched.NewFlakyBackend(sched.Uniform(4, 8), 2013)
	dep, err := net.DeployCluster(backend, deploy.ClusterOptions{
		Seed:    2013,
		Weight:  5,
		Preempt: true,
		Lease:   sched.LeasePolicy{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill the spare capacity with weight-1 batch work, then admit a
	// weight-3 probe that can only fit by evicting it. Sizes derive from
	// the lab's own footprint, so the drill holds the invariant that the
	// silenced host's VMs exactly fit surviving capacity (3 hosts x 8
	// slots): nothing strands, everything moves.
	labVMs := len(dep.Lab().VMNames())
	free := dep.Cluster.Capacity().FreeSlots
	if _, err := dep.Cluster.Reserve(sched.Spec{Name: "batch", Tenant: "batch", Count: free, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Cluster.Reserve(sched.Spec{Name: "probe", Tenant: "probe", Count: 24 - labVMs, Weight: 3}); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open("testdata/lease/lease_drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(f, "lease_drill.chaos")
	f.Close()
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{Hosts: dep})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("drill produced error findings:\n%s", rep)
	}
	return rep.String() + "\n"
}

// Golden lease drill: silencing a substrate host under a running lab
// collapses its heartbeat lease, re-places its VMs through scheduled
// migration faults, and leaves the preemption ordering intact —
// byte-reproducibly across runs and across build worker counts, matching
// testdata/lease/lease_drill.report (regenerate deliberately with
// UPDATE_LEASE_GOLDEN=1 go test -run TestGoldenLeaseDrill).
func TestGoldenLeaseDrill(t *testing.T) {
	report := runLeaseDrill(t, 1)
	if wide := runLeaseDrill(t, 8); wide != report {
		t.Fatalf("report differs between Workers=1 and Workers=8:\n--- 1 ---\n%s--- 8 ---\n%s", report, wide)
	}

	// Structural assertions first, so a stale golden cannot mask a broken
	// drill: the silenced host's VMs must all move, the faults must be
	// scheduled, and every reservation check must come back ok.
	for _, want := range []string{
		"migration failure rate onto h03 set to 0.30",
		"VMs moved, 0 stranded",
		"ok (reservation lab active)",
		"ok (reservation probe active)",
		"ok (reservation batch preempted)",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/lease/lease_drill.report"
	if os.Getenv("UPDATE_LEASE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}
