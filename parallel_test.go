package autonetkit

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/topogen"
)

// fileSetHash digests a rendered tree including its iteration order, so two
// runs hash equal only when they are byte-identical files in an identical
// order.
func fileSetHash(t *testing.T, fs *render.FileSet) string {
	t.Helper()
	h := sha256.New()
	for _, p := range fs.Paths() {
		c, _ := fs.Read(p)
		fmt.Fprintf(h, "%s\x00%s\x00", p, c)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func buildWithWorkers(t *testing.T, workers int) *Network {
	t.Helper()
	g, err := topogen.NREN(topogen.NRENConfig{ASes: 8, Routers: 96, Links: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	err = net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// The worker pool must not change a single output byte: serial (Workers=1)
// and fanned-out (Workers=8) builds of the same topology produce identical
// file trees in identical order. CI runs this under -race, which also
// exercises the pool for data races.
func TestParallelBuildDeterminism(t *testing.T) {
	serial := buildWithWorkers(t, 1)
	parallel := buildWithWorkers(t, 8)
	if serial.Files.Len() == 0 {
		t.Fatal("nothing rendered")
	}
	hs, hp := fileSetHash(t, serial.Files), fileSetHash(t, parallel.Files)
	if hs != hp {
		t.Fatalf("Workers=1 and Workers=8 trees differ: %s vs %s", hs, hp)
	}
}

// Every stage refuses to run before its predecessor, with the uniform
// "X before Y" error shape.
func TestStageOrderGuards(t *testing.T) {
	fresh := func() *Network {
		net, err := LoadGraph(topogen.Fig5())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	steps := []struct {
		want string
		run  func(n *Network) error
	}{
		{"autonetkit: Design before Allocate", func(n *Network) error { return n.Allocate(ipalloc.Config{}) }},
		{"autonetkit: Allocate before Compile", func(n *Network) error { return n.Compile(compile.Options{}) }},
		{"autonetkit: Compile before Render", func(n *Network) error { return n.Render() }},
		{"autonetkit: Render before Deploy", func(n *Network) error { _, err := n.Deploy(deploy.Options{}); return err }},
		{"autonetkit: Render before SaveConfigs", func(n *Network) error { return n.SaveConfigs(t.TempDir()) }},
		{"autonetkit: Compile before Verify", func(n *Network) error { _, err := n.Verify(); return err }},
	}
	for _, s := range steps {
		err := s.run(fresh())
		if err == nil || err.Error() != s.want {
			t.Errorf("got %v, want %q", err, s.want)
		}
	}
	// Design itself guards on a loaded input overlay.
	empty := &Network{ANM: core.NewANM(), obs: obs.NewCollector()}
	if err := empty.Design(design.Options{}); err == nil || err.Error() != "autonetkit: Load before Design" {
		t.Errorf("Design guard: got %v", err)
	}
}

// A full build populates the stats snapshot: one span per stage, sub-spans
// under Compile and Render, and non-zero work counters.
func TestNetworkStats(t *testing.T) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	for _, stage := range []string{"Design", "Allocate", "Compile", "Render"} {
		s, ok := st.Span(stage)
		if !ok {
			t.Fatalf("no %s span in %v", stage, st.Spans)
		}
		if s.Running {
			t.Errorf("%s span still running", stage)
		}
	}
	compileSpan, _ := st.Span("Compile")
	if len(compileSpan.Children) == 0 {
		t.Error("Compile span has no sub-spans")
	}
	if n := st.Counters[obs.CounterDevicesCompiled]; n != 14 {
		t.Errorf("devices_compiled = %d, want 14", n)
	}
	if st.Counters[obs.CounterFilesRendered] != int64(net.Files.Len()) {
		t.Errorf("files_rendered = %d, want %d", st.Counters[obs.CounterFilesRendered], net.Files.Len())
	}
	if st.Counters[obs.CounterBytesWritten] != int64(net.Files.TotalBytes()) {
		t.Errorf("bytes_written = %d, want %d", st.Counters[obs.CounterBytesWritten], net.Files.TotalBytes())
	}
	if st.Counters[obs.CounterTemplatesExecuted] == 0 {
		t.Error("templates_executed is zero")
	}
	var sb strings.Builder
	if err := net.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "devices_compiled") {
		t.Errorf("trace missing counters:\n%s", sb.String())
	}
}

// A compile error on one device cancels the fan-out and surfaces the error.
func TestParallelCompileErrorWins(t *testing.T) {
	g := topogen.SmallInternet()
	// An unknown syntax makes exactly one device fail to compile.
	g.Node("as100r2").Set("syntax", "no-such-syntax")
	net, err := LoadGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	err = net.Build(BuildOptions{Compile: compile.Options{Workers: 8}})
	if err == nil || !strings.Contains(err.Error(), "no-such-syntax") {
		t.Fatalf("got %v, want syntax error", err)
	}
}
