package autonetkit

// The benchmark harness regenerates every quantitative artifact of the
// paper's evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers). One benchmark per experiment:
//
//	E1  Fig. 5 overlay rules            BenchmarkE1_Fig5Rules
//	E2  Small-Internet pipeline (§3.1)  BenchmarkE2_SmallInternetPipeline
//	E3  NREN scale table (§3.2)         BenchmarkE3_NREN{Design,Compile,Render}
//	E5  eBGP visualization (Fig. 6)     BenchmarkE5_VizExport
//	E6  traceroute measurement (§6.1)   BenchmarkE6_Traceroute
//	E8  iBGP mesh vs RR (§7.1)          BenchmarkE8_IBGP{FullMesh,RouteReflectors}
//	E9  oscillation gadget (§7.2)       BenchmarkE9_BadGadget{Quagga,IOS}
//	E10 RPKI deployment (§3.3)          BenchmarkE10_RPKIDeploy
//	E11 DNS zone generation (§3.3)      BenchmarkE11_ZoneGen
//	E12 design-vs-measured validation   BenchmarkE12_Validate
//	A1  logic in templates vs compiler  BenchmarkA1_{CompilerCondensed,FatTemplate}
//	A3  deterministic render            BenchmarkA3_RenderDeterminism

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"strings"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/dataplane"
	"autonetkit/internal/deploy"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/journal"
	"autonetkit/internal/measure"
	"autonetkit/internal/netaddr"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
	"autonetkit/internal/sched"
	"autonetkit/internal/services/dns"
	"autonetkit/internal/services/rpki"
	"autonetkit/internal/tmpl"
	"autonetkit/internal/topogen"
	"autonetkit/internal/topoio"
	"autonetkit/internal/verify"
	"autonetkit/internal/viz"
)

// --- E1: the Fig. 5 design rules (eqs. 1-3) ---

func BenchmarkE1_Fig5Rules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := LoadGraph(topogen.Fig5())
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Design(design.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: the Small-Internet lab, GraphML-equivalent input to configs
// (§3.1: "took under a second"; manual configuration took days) ---

func BenchmarkE2_SmallInternetPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := LoadGraph(topogen.SmallInternet())
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Build(BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_SmallInternetDeploy(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Run(net.Files, deploy.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: the §3.2 scale table, per stage, at full NREN scale ---

func nrenInput(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkE3_NRENDesign(b *testing.B) {
	g := nrenInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := LoadGraph(g.Copy())
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Design(design.Options{}); err != nil {
			b.Fatal(err)
		}
		if err := net.Allocate(ipalloc.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_NRENCompile(b *testing.B) {
	net, err := LoadGraph(nrenInput(b))
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Design(design.Options{}); err != nil {
		b.Fatal(err)
	}
	if err := net.Allocate(ipalloc.Config{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Compile(compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_NRENRender(b *testing.B) {
	net, err := LoadGraph(nrenInput(b))
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Design(design.Options{}); err != nil {
		b.Fatal(err)
	}
	if err := net.Allocate(ipalloc.Config{}); err != nil {
		b.Fatal(err)
	}
	if err := net.Compile(compile.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := render.Render(net.DB)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(fs.Len()), "files")
			b.ReportMetric(float64(fs.TotalBytes()), "bytes")
		}
	}
}

// Scaling series for the crossover shape: pipeline time vs network size.
func BenchmarkE3_ScaleSweep(b *testing.B) {
	for _, scale := range []struct {
		name                 string
		ases, routers, links int
	}{
		{"small", 4, 50, 65},
		{"medium", 12, 300, 380},
		{"full", 42, 1158, 1470},
	} {
		b.Run(scale.name, func(b *testing.B) {
			g, err := topogen.NREN(topogen.NRENConfig{ASes: scale.ases, Routers: scale.routers, Links: scale.links})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := LoadGraph(g.Copy())
				if err != nil {
					b.Fatal(err)
				}
				if err := net.Build(BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: Fig. 6 eBGP visualization export ---

func BenchmarkE5_VizExport(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Design(design.Options{}); err != nil {
		b.Fatal(err)
	}
	ebgp := net.ANM.Overlay(design.OverlayEBGP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := viz.ExportOverlay(ebgp, viz.Options{})
		if _, err := doc.JSON(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: the §6.1 traceroute measurement over the deployed lab ---

func deployedSmallInternet(b *testing.B) (*Network, *emul.Lab) {
	b.Helper()
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return net, dep.Lab()
}

func BenchmarkE6_Traceroute(b *testing.B) {
	net, lab := deployedSmallInternet(b)
	client := net.Measure(lab)
	var dst netip.Addr
	for _, e := range net.Alloc.Table.Entries() {
		if e.Node == "as100r2" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := client.RunTraceroute("as300r2", dst)
		if err != nil || !tr.Reached {
			b.Fatalf("traceroute failed: %v %v", err, tr)
		}
	}
}

// --- E8: iBGP full mesh vs route reflectors (§7.1), session scaling ---

func chainInput(n int) *graph.Graph {
	g := graph.New()
	var prev graph.ID
	for i := 0; i < n; i++ {
		id := graph.ID(fmt.Sprintf("r%03d", i))
		g.AddNode(id, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
		if prev != "" {
			g.AddEdge(prev, id, graph.Attrs{"type": "physical"})
		}
		prev = id
	}
	return g
}

func BenchmarkE8_IBGPFullMesh(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g := chainInput(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := LoadGraph(g.Copy())
				if err != nil {
					b.Fatal(err)
				}
				if err := net.Design(design.Options{}); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(net.ANM.Overlay(design.OverlayIBGP).NumEdges()), "sessions")
				}
			}
		})
	}
}

func BenchmarkE8_IBGPRouteReflectors(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g := chainInput(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := LoadGraph(g.Copy())
				if err != nil {
					b.Fatal(err)
				}
				if err := net.Design(design.Options{RouteReflectors: true}); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(net.ANM.Overlay(design.OverlayIBGP).NumEdges()), "sessions")
				}
			}
		})
	}
}

// --- E9: the §7.2 oscillation gadget on two decision processes ---

func benchGadget(b *testing.B, platform, syntax string, wantOscillation bool) {
	b.Helper()
	g := topogen.OscillationGadget()
	for _, n := range g.Nodes() {
		n.Set(core.AttrPlatform, platform)
		n.Set(core.AttrSyntax, syntax)
	}
	net, err := LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{Design: design.Options{RouteReflectors: true}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep, err := deploy.Run(net.Files, deploy.Options{Platform: platform, MaxBGPRounds: 60})
		if err != nil {
			b.Fatal(err)
		}
		if got := dep.Lab().BGPResult().Oscillating; got != wantOscillation {
			b.Fatalf("%s oscillating = %v, want %v", platform, got, wantOscillation)
		}
	}
}

func BenchmarkE9_BadGadgetQuagga(b *testing.B) { benchGadget(b, "netkit", "quagga", false) }
func BenchmarkE9_BadGadgetIOS(b *testing.B)    { benchGadget(b, "dynagen", "ios", true) }

// --- E10: RPKI hierarchy, placement and propagation at StarBed scale ---

func BenchmarkE10_RPKIDeploy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := rpki.NewHierarchy("rir", netaddr.MustPrefix("10.0.0.0/8"))
		dist := rpki.NewDistribution(h)
		var points []string
		for asn := 1; asn <= 42; asn++ {
			name := fmt.Sprintf("ca%d", asn)
			block, err := netaddr.NthSubnet(netaddr.MustPrefix("10.0.0.0/8"), 16, asn)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.AddCA(name, "rir", block); err != nil {
				b.Fatal(err)
			}
			roa, err := h.SignROA(name, block, 24, asn)
			if err != nil {
				b.Fatal(err)
			}
			pp, err := dist.AddPublicationPoint("pp" + name)
			if err != nil {
				b.Fatal(err)
			}
			pp.Publish(roa)
			points = append(points, "pp"+name)
		}
		if _, err := dist.AddCache("top", "", points...); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			if _, err := dist.AddCache(fmt.Sprintf("leaf%d", j), "top"); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := dist.Propagate(0); err != nil {
			b.Fatal(err)
		}
		// 800+ VM placement.
		vms := make([]string, 820)
		for j := range vms {
			vms[j] = fmt.Sprintf("vm%03d", j)
		}
		pool, err := deploy.NewHostPool(
			&deploy.Host{Name: "a", Capacity: 300},
			&deploy.Host{Name: "b", Capacity: 300},
			&deploy.Host{Name: "c", Capacity: 300},
		)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pool.Place(vms); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: DNS zone generation consistent with the allocation ---

func BenchmarkE11_ZoneGen(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Design(design.Options{}); err != nil {
		b.Fatal(err)
	}
	if err := net.Allocate(ipalloc.Config{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zones, err := dns.Generate(net.ANM, net.Alloc, dns.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, z := range zones.All() {
			_ = z.Render()
		}
	}
}

// --- E12: measured-vs-designed validation over the running lab ---

func BenchmarkE12_Validate(b *testing.B) {
	net, lab := deployedSmallInternet(b)
	client := net.Measure(lab)
	designed := net.ANM.Overlay(design.OverlayOSPF).Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measured, err := client.MeasuredOSPFGraph(lab.VMNames())
		if err != nil {
			b.Fatal(err)
		}
		if diff := measure.Compare(designed, measured); !diff.OK() {
			b.Fatalf("validation failed: %v", diff)
		}
	}
}

// --- A1: the §4.2 design choice — network logic condensed by the compiler
// versus evaluated inside a "fat" template. Both render identical neighbor
// stanzas; the fat variant filters the whole router list with template
// conditionals on every execution. ---

var a1Fat = tmpl.MustParse("fat", `% for peer in routers:
% if peer.asn == node.asn and peer.name != node.name:
  neighbor ${peer.loopback} remote-as ${peer.asn}
% endif
% endfor
`)

var a1Thin = tmpl.MustParse("thin", `% for nbr in node.neighbors:
  neighbor ${nbr.loopback} remote-as ${nbr.asn}
% endfor
`)

func a1Context(n int) (fat, thin map[string]any) {
	var routers []any
	var neighbors []any
	for i := 0; i < n; i++ {
		r := map[string]any{"name": fmt.Sprintf("r%d", i), "asn": 1 + i%4, "loopback": fmt.Sprintf("10.0.0.%d", i+1)}
		routers = append(routers, r)
		if i%4 == 0 && i != 0 {
			neighbors = append(neighbors, r)
		}
	}
	self := map[string]any{"name": "r0", "asn": 1}
	fat = map[string]any{"routers": routers, "node": self}
	thin = map[string]any{"node": map[string]any{"neighbors": neighbors}}
	return fat, thin
}

func BenchmarkA1_FatTemplate(b *testing.B) {
	fat, _ := a1Context(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a1Fat.Execute(fat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1_CompilerCondensed(b *testing.B) {
	_, thin := a1Context(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a1Thin.Execute(thin); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A3: byte-stable rendering (determinism the experiments rely on) ---

func BenchmarkA3_RenderDeterminism(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	ref := map[string]string{}
	for _, p := range net.Files.Paths() {
		c, _ := net.Files.Read(p)
		ref[p] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := render.Render(net.DB)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range fs.Paths() {
			c, _ := fs.Read(p)
			if ref[p] != c {
				b.Fatalf("render of %s not deterministic", p)
			}
		}
	}
}

// --- E15: incident injection + re-convergence ---

func BenchmarkE15_IncidentReconvergence(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dep, err := deploy.Run(net.Files, deploy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lab := dep.Lab()
		b.StartTimer()
		if err := lab.FailLink("as40r1", "as300r2"); err != nil {
			b.Fatal(err)
		}
		if !lab.BGPResult().Converged {
			b.Fatal("did not re-converge")
		}
	}
}

// --- E16: pre-deployment verification ---

func BenchmarkE16_VerifyStatic(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := net.Verify()
		if err != nil || !report.OK() {
			b.Fatalf("%v %v", err, report)
		}
	}
}

func BenchmarkE16_StabilityWhatIf(b *testing.B) {
	g := topogen.OscillationGadget()
	net, err := LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{Design: design.Options{RouteReflectors: true}}); err != nil {
		b.Fatal(err)
	}
	lab, err := emul.Load(net.Files, "localhost", "netkit")
	if err != nil {
		b.Fatal(err)
	}
	if err := lab.Start(60); err != nil {
		b.Fatal(err)
	}
	var devices []*routing.DeviceConfig
	for _, name := range lab.VMNames() {
		vm, _ := lab.VM(name)
		devices = append(devices, vm.Config)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := verify.Stability(devices, routing.ProfileIOS, 60)
		if !res.Oscillating {
			b.Fatal("what-if missed the oscillation")
		}
	}
}

// --- substrate micro-benchmarks (ns/op scale, for profiling the pipeline
// hot paths the §6 performance discussion identifies) ---

func BenchmarkSubstrate_DijkstraNREN(b *testing.B) {
	g := nrenInput(b)
	ids := g.NodeIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ids[i%len(ids)]
		dist, _ := g.Dijkstra(src, graph.UnitWeight)
		if len(dist) == 0 {
			b.Fatal("no distances")
		}
	}
}

func BenchmarkSubstrate_FIBLookup(b *testing.B) {
	f := dataplane.NewFIB()
	for i := 0; i < 1000; i++ {
		p, err := netaddr.NthSubnet(netaddr.MustPrefix("10.0.0.0/8"), 22, i)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Insert(dataplane.FIBEntry{Prefix: p, OutIf: "eth0"}); err != nil {
			b.Fatal(err)
		}
	}
	dst := netip.MustParseAddr("10.1.2.3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Lookup(dst); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSubstrate_TemplateRender(b *testing.B) {
	// The paper's §4.1 template over a realistic context.
	tpl := tmpl.MustParse("ospfd", `hostname ${node.zebra.hostname}
password ${node.zebra.password}
% for interface in node.interfaces:
interface ${interface.id}
  ip ospf cost ${interface.ospf_cost}
% endfor
router ospf
% for link in node.ospf.ospf_links:
  network ${link.network.cidr} area ${link.area}
% endfor
`)
	var ifaces, links []any
	for i := 0; i < 8; i++ {
		ifaces = append(ifaces, map[string]any{"id": fmt.Sprintf("eth%d", i), "ospf_cost": 1})
		p, _ := netaddr.NthSubnet(netaddr.MustPrefix("192.168.0.0/16"), 30, i)
		links = append(links, map[string]any{"network": p, "area": 0})
	}
	ctx := map[string]any{"node": map[string]any{
		"zebra":      map[string]any{"hostname": "as100r1", "password": "1234"},
		"interfaces": ifaces,
		"ospf":       map[string]any{"ospf_links": links},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Execute(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_TextFSMParse(b *testing.B) {
	net, lab := deployedSmallInternet(b)
	client := net.Measure(lab)
	raw, err := client.Run("as1r1", "show ip ospf neighbor")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.OSPFAdjacencies("as1r1"); err != nil {
			b.Fatal(err)
		}
	}
	_ = raw
}

func BenchmarkSubstrate_GraphMLLoad(b *testing.B) {
	data, err := os.ReadFile("testdata/small_internet.graphml")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := topoio.ReadGraphML(bytes.NewReader(data))
		if err != nil || g.NumNodes() != 14 {
			b.Fatalf("%v %v", err, g)
		}
	}
}

// --- P1: parallel compile/render scale-out (this repo's worker pool; the
// paper's Fig. 9 argues artifact generation must stay tractable at
// thousands of routers). Sub-benchmarks compare Workers=1 (serial) against
// Workers=GOMAXPROCS on a 240-router topology. ---

// p1Input builds a 240-router NREN-shaped model through Allocate, ready for
// repeated Compile/Render runs.
func p1Input(b *testing.B) *Network {
	b.Helper()
	g, err := topogen.NREN(topogen.NRENConfig{ASes: 12, Routers: 240, Links: 300, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Design(design.Options{}); err != nil {
		b.Fatal(err)
	}
	if err := net.Allocate(ipalloc.Config{}); err != nil {
		b.Fatal(err)
	}
	return net
}

func BenchmarkP1_Compile(b *testing.B) {
	net := p1Input(b)
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := net.Compile(compile.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkP1_Render(b *testing.B) {
	net := p1Input(b)
	if err := net.Compile(compile.Options{}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := net.RenderWith(render.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkP1_CompileRender(b *testing.B) {
	net := p1Input(b)
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := net.Compile(compile.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
				if err := net.RenderWith(render.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- P4: incremental content-addressed rebuild. Cold runs compile and
// render every device into a fresh store; warm reuses a fully warmed store,
// paying only digest computation and artifact decoding. The gap is the
// speedup an unchanged rebuild gets from `ankbuild -cache`. ---

func BenchmarkP4_IncrementalRebuild(b *testing.B) {
	net := p1Input(b)
	runOnce := func(b *testing.B, store *cache.Store) {
		b.Helper()
		if err := net.Compile(compile.Options{Cache: store}); err != nil {
			b.Fatal(err)
		}
		if err := net.RenderWith(render.Options{Cache: store}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, cache.NewMemory())
		}
	})
	b.Run("warm", func(b *testing.B) {
		store := cache.NewMemory()
		runOnce(b, store)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(b, store)
		}
	})
}

// --- P2: chaos scenario engine (fail -> check -> restore -> check) ---

// BenchmarkP2_ChaosScenario measures one full resilience drill against the
// deployed Small-Internet lab: an inter-AS link failure, a reachability
// sweep, the repair, and the closing baseline check. The scenario ends
// fully restored, so the same lab is reused across iterations.
func BenchmarkP2_ChaosScenario(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := net.Chaos(dep.Lab(), chaos.Options{})
	if err != nil {
		b.Fatal(err)
	}
	scenario, diags := chaos.ParseScenario(strings.NewReader(`
name bench drill
fail-link as1r1 as20r3
check
restore-link as1r1 as20r3
check baseline
`))
	if diags.HasErrors() {
		b.Fatalf("scenario diagnostics:\n%s", diags)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := engine.Run(scenario)
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() {
			b.Fatalf("drill not clean:\n%s", report)
		}
	}
}

// --- P5: convergence under scheduled control-plane loss. One NREN-shaped
// lab is deployed once; each sub-benchmark installs a seeded perturber
// dropping the given percentage of route advertisements on every session
// and re-converges from scratch. Reported metrics are the rounds to
// quiescence and the total best-route churn — the convergence-degradation
// curve EXPERIMENTS.md plots against loss rate. ---

func BenchmarkP5_ConvergenceUnderLoss(b *testing.B) {
	g, err := topogen.NREN(topogen.NRENConfig{ASes: 4, Routers: 50, Links: 65, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lab := dep.Lab()
	defer func() {
		lab.SetPerturber(nil)
		if _, err := lab.Reconverge(); err != nil {
			b.Fatal(err)
		}
	}()
	for _, pct := range []int{0, 5, 10, 20} {
		b.Run(fmt.Sprintf("loss%d", pct), func(b *testing.B) {
			if pct == 0 {
				lab.SetPerturber(nil)
			} else {
				lab.SetPerturber(routing.NewScheduledPerturber(42, []routing.PerturbRule{
					{Kind: routing.PerturbLoss, Pct: pct},
				}))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var rounds, churn int
			for i := 0; i < b.N; i++ {
				res, err := lab.Reconverge()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("loss %d%%: %+v", pct, res)
				}
				rounds, churn = res.Rounds, lab.TotalChurn()
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(churn), "churn")
		})
	}

	// Post-incident reconvergence at 240 routers, full recompute versus the
	// incremental paths (delta SPF + BGP trajectory replay + data-plane node
	// reuse) — the headline case of the P6 performance model.
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"full", false}, {"incremental", true}} {
		b.Run("postincident240/"+mode.name, func(b *testing.B) {
			benchPostIncident(b, benchDeployedLab(b, 240, mode.incremental, 1))
		})
	}
}

// --- P6: incremental reconvergence (delta SPF + BGP trajectory replay +
// data-plane node reuse). Each iteration injects and repairs one link
// failure on a deployed NREN-shaped lab, so every pass pays two
// reconvergences whose outcome is overwhelmingly unchanged state.
// Sub-benchmarks compare full recompute against incremental mode at three
// scales; the two modes are byte-equivalent by construction (see
// TestIncrementalConvergenceParity), so the gap is purely the cost of
// re-deriving state the incident provably did not touch. ---

// benchDeployedLab builds and deploys an NREN-shaped lab of the given size
// in the requested convergence mode — the one topology-build helper shared
// by the P6 (incremental) and P9 (sharded) convergence benchmarks, so both
// measure the same lab shape. shards is the sharded-convergence worker
// count (1 = sequential sweep).
func benchDeployedLab(b *testing.B, routers int, incremental bool, shards int) *emul.Lab {
	b.Helper()
	g, err := topogen.NREN(topogen.NRENConfig{ASes: routers / 20, Routers: routers, Links: routers * 5 / 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	net, err := LoadGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{Incremental: incremental, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return dep.Lab()
}

// benchPostIncident times one fail-link/restore-link round trip per
// iteration: two incident-triggered reconvergences plus the data-plane
// rebuilds they imply.
func benchPostIncident(b *testing.B, lab *emul.Lab) {
	pair := lab.Links()[0]
	b.ReportAllocs()
	b.ResetTimer()
	var rounds int
	for i := 0; i < b.N; i++ {
		if err := lab.FailLink(pair[0], pair[1]); err != nil {
			b.Fatal(err)
		}
		if err := lab.RestoreLink(pair[0], pair[1]); err != nil {
			b.Fatal(err)
		}
		res := lab.BGPResult()
		if !res.Converged {
			b.Fatal("did not reconverge")
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

func BenchmarkP6_IncrementalConvergence(b *testing.B) {
	for _, routers := range []int{60, 120, 240} {
		for _, mode := range []struct {
			name        string
			incremental bool
		}{{"full", false}, {"incremental", true}} {
			b.Run(fmt.Sprintf("n%d/%s", routers, mode.name), func(b *testing.B) {
				benchPostIncident(b, benchDeployedLab(b, routers, mode.incremental, 1))
			})
		}
	}
}

// --- P9: parallel sharded BGP convergence (per-AS shards evaluated
// concurrently on a bounded worker pool, cross-shard advertisements merged
// in canonical order). The serial/sharded pairs are byte-equivalent by
// construction (see TestShardedConvergenceParity), so the gap is purely
// the parallel round evaluation. `cold` measures a full reconvergence of
// the whole lab; `postincident` composes sharding with the incremental
// paths (delta SPF + BGP trajectory replay) on a fail/restore round trip. ---

func BenchmarkP9_ShardedConvergence(b *testing.B) {
	// At least 4 shard workers even on small hosts, so the parallel driver
	// (worker pool, wavefront scheduler, merge barrier) is actually
	// exercised: on <4 cores the run measures its scheduling overhead, on
	// >=4 cores its speedup.
	sharded := runtime.NumCPU()
	if sharded < 4 {
		sharded = 4
	}
	for _, routers := range []int{240, 1158} {
		for _, mode := range []struct {
			name   string
			shards int
		}{{"serial", 1}, {"sharded", sharded}} {
			b.Run(fmt.Sprintf("n%d/%s/cold", routers, mode.name), func(b *testing.B) {
				lab := benchDeployedLab(b, routers, false, mode.shards)
				b.ReportAllocs()
				b.ResetTimer()
				var rounds int
				for i := 0; i < b.N; i++ {
					res, err := lab.Reconverge()
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatalf("did not converge: %+v", res)
					}
					rounds = res.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
			b.Run(fmt.Sprintf("n%d/%s/postincident", routers, mode.name), func(b *testing.B) {
				benchPostIncident(b, benchDeployedLab(b, routers, true, mode.shards))
			})
		}
	}
}

// --- P3: resilient boot (strict vs lenient quarantine) ---

// BenchmarkP3_Boot measures a full lab boot of the Small-Internet tree in
// both modes: strict over a healthy tree (the baseline every deployment
// pays) and lenient over a tree whose one corrupted device must be
// diagnosed, quarantined, and excluded before the 13 survivors converge.
func BenchmarkP3_Boot(b *testing.B) {
	net, err := LoadGraph(topogen.SmallInternet())
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	const victim = "as100r2"
	confPath := "localhost/netkit/" + victim + "/etc/quagga/bgpd.conf"
	healthy, ok := net.Files.Read(confPath)
	if !ok {
		b.Fatalf("no %s in rendered tree", confPath)
	}

	b.Run("strict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lab, err := emul.Load(net.Files, "localhost", "netkit")
			if err != nil {
				b.Fatal(err)
			}
			if err := lab.Boot(emul.BootOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lenient-quarantine", func(b *testing.B) {
		net.Files.Write(confPath, "router bgp 100\n  bgp router-id junk\n  network nonsense\n  neighbor bad remote-as 20\n")
		defer net.Files.Write(confPath, healthy)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lab, err := emul.Load(net.Files, "localhost", "netkit")
			if err != nil {
				b.Fatal(err)
			}
			err = lab.Boot(emul.BootOptions{Lenient: true})
			if !errors.Is(err, emul.ErrPartialBoot) {
				b.Fatalf("err = %v, want ErrPartialBoot", err)
			}
			if q := lab.Quarantined(); len(q) != 1 {
				b.Fatalf("quarantined = %v", q)
			}
		}
	})
}

// --- P7: reservation scheduler at NREN scale (§3.3) ---

// BenchmarkP7_SchedulerDrain pins the cluster scheduler's placement and
// live re-placement throughput at the paper's scale ceiling: the 42-AS /
// 1158-router European-interconnect model sharded into 8 concurrent
// reservations over 36 substrate hosts (1440 slots), then three
// maintenance drains plus a hard host failure on the loaded cluster.
// Reported vms/s is VMs placed (place) or re-placed (drain) per second.
func BenchmarkP7_SchedulerDrain(b *testing.B) {
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		b.Fatal(err)
	}
	ids := g.SortedNodeIDs()
	const nShards = 8
	shards := make([][]string, nShards)
	for i, id := range ids {
		shards[i%nShards] = append(shards[i%nShards], string(id))
	}
	load := func(b *testing.B) *sched.Cluster {
		c, err := sched.New(sched.Uniform(36, 40), sched.Options{Seed: 2013})
		if err != nil {
			b.Fatal(err)
		}
		for i, vms := range shards {
			sp := sched.Spec{
				Name:   fmt.Sprintf("as-shard-%d", i),
				Tenant: fmt.Sprintf("team%d", i%3),
				VMs:    vms,
			}
			if i%2 == 1 {
				sp.Policy = sched.PolicySpread
			}
			if _, err := c.Reserve(sp); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}

	b.Run("place", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := load(b)
			if got := c.Capacity().UsedSlots; got != len(ids) {
				b.Fatalf("placed %d VMs, want %d", got, len(ids))
			}
		}
		b.ReportMetric(float64(len(ids))*float64(b.N)/b.Elapsed().Seconds(), "vms/s")
	})

	b.Run("drain", func(b *testing.B) {
		b.ReportAllocs()
		replaced := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := load(b)
			b.StartTimer()
			for _, h := range []string{"h05", "h17", "h29"} {
				res, err := c.Drain(h)
				if err != nil {
					b.Fatalf("drain %s: %v", h, err)
				}
				replaced += len(res.Moves)
			}
			res, err := c.FailHost("h11")
			if err != nil && !errors.Is(err, sched.ErrDegraded) {
				b.Fatalf("fail h11: %v", err)
			}
			replaced += len(res.Moves)
		}
		if replaced == 0 {
			b.Fatal("no VMs re-placed")
		}
		b.ReportMetric(float64(replaced)/b.Elapsed().Seconds(), "vms/s")
	})
}

// BenchmarkP8_JournalAppend pins the write-ahead journal's append
// throughput at the record size the durable scheduler actually produces
// (a JSON reserve record for a 32-VM spec, ~1.5 KiB), under both fsync
// policies. SyncAlways is the deployed default — every scheduler mutation
// pays one fsync — so its records/s bounds sustained mutation rate.
func BenchmarkP8_JournalAppend(b *testing.B) {
	vms := make([]string, 32)
	for i := range vms {
		vms[i] = fmt.Sprintf("as-shard-0-vm%03d", i+1)
	}
	rec, err := json.Marshal(map[string]any{
		"kind": "reserve",
		"spec": map[string]any{"name": "as-shard-0", "tenant": "team0", "vms": vms},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sync journal.SyncPolicy
	}{
		{"sync-always", journal.SyncAlways},
		{"sync-never", journal.SyncNever},
	} {
		b.Run(tc.name, func(b *testing.B) {
			log, _, err := journal.Open(b.TempDir(), journal.Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			b.SetBytes(int64(len(rec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := log.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkP8_SchedulerRecovery pins crash-recovery time at the paper's
// scale ceiling: the 1158-router NREN model sharded into 8 reservations
// on 36 hosts, mutated through three drains and a host failure, then
// recovered from its journal. Each iteration replays the full snapshot +
// wal tail into a fresh cluster — the cost of the §3.3 manager process
// coming back from a crash with the whole testbed reserved.
func BenchmarkP8_SchedulerRecovery(b *testing.B) {
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		b.Fatal(err)
	}
	ids := g.SortedNodeIDs()
	const nShards = 8
	shards := make([][]string, nShards)
	for i, id := range ids {
		shards[i%nShards] = append(shards[i%nShards], string(id))
	}
	dir := b.TempDir()
	opts := sched.Options{Seed: 2013, SnapshotEvery: 6}
	c, _, err := sched.Open(dir, sched.Uniform(36, 40), opts)
	if err != nil {
		b.Fatal(err)
	}
	for i, vms := range shards {
		sp := sched.Spec{
			Name:   fmt.Sprintf("as-shard-%d", i),
			Tenant: fmt.Sprintf("team%d", i%3),
			VMs:    vms,
		}
		if i%2 == 1 {
			sp.Policy = sched.PolicySpread
		}
		if _, err := c.Reserve(sp); err != nil {
			b.Fatal(err)
		}
	}
	for _, h := range []string{"h05", "h17", "h29"} {
		if _, err := c.Drain(h); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := c.FailHost("h11"); err != nil && !errors.Is(err, sched.ErrDegraded) {
		b.Fatal(err)
	}
	want := c.Status().JSON()
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc, info, err := sched.Open(dir, sched.Uniform(36, 40), opts)
		if err != nil {
			b.Fatal(err)
		}
		if !info.Recovered {
			b.Fatal("nothing recovered")
		}
		b.StopTimer()
		if got := rc.Status().JSON(); got != want {
			b.Fatal("recovered state diverged from pre-crash state")
		}
		rc.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(ids))*float64(b.N)/b.Elapsed().Seconds(), "vms/s")
}

// --- P10: preemption and lease rounds under churn at NREN scale (§3.3) ---

// BenchmarkP10_PreemptionUnderChurn pins deterministic preemption at the
// paper's scale ceiling: the 42-AS / 1158-router model in eight weight-1
// shards fills 36 substrate hosts (1440 slots) to 80%, then each churn
// round admits a weight-5 production reservation that can only fit by
// evicting a minimal victim set (one shard re-queues preempted) and
// releases it again (the victim re-admits). The lease-round sub-benchmark
// prices one full heartbeat + lease-check pass over the loaded cluster.
func BenchmarkP10_PreemptionUnderChurn(b *testing.B) {
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		b.Fatal(err)
	}
	ids := g.SortedNodeIDs()
	const nShards = 8
	shards := make([][]string, nShards)
	for i, id := range ids {
		shards[i%nShards] = append(shards[i%nShards], string(id))
	}
	load := func(b *testing.B, lease bool) *sched.Cluster {
		opts := sched.Options{Seed: 2013, Preempt: true}
		if lease {
			opts.Lease = sched.LeasePolicy{Enabled: true}
		}
		c, err := sched.New(sched.Uniform(36, 40), opts)
		if err != nil {
			b.Fatal(err)
		}
		for i, vms := range shards {
			sp := sched.Spec{
				Name:   fmt.Sprintf("as-shard-%d", i),
				Tenant: fmt.Sprintf("team%d", i%3),
				VMs:    vms,
				Weight: 1,
			}
			if i%2 == 1 {
				sp.Policy = sched.PolicySpread
			}
			if _, err := c.Reserve(sp); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}

	b.Run("churn", func(b *testing.B) {
		c := load(b, false)
		// Demand exceeding free capacity by a margin only one evicted
		// shard can cover: every round preempts exactly the youngest
		// weight-1 shard.
		count := c.Capacity().FreeSlots + 18
		victim := fmt.Sprintf("as-shard-%d", nShards-1)
		victimVMs := len(shards[nShards-1])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := c.Reserve(sched.Spec{Name: "prod", Tenant: "prod", Count: count, Weight: 5})
			if err != nil {
				b.Fatal(err)
			}
			if st.State != sched.ResActive {
				b.Fatalf("prod %s; expected preemption to admit it", st.State)
			}
			if vs, ok := c.Reservation(victim); !ok || !vs.Preempted {
				b.Fatalf("%s not preempted", victim)
			}
			if err := c.Release("prod"); err != nil {
				b.Fatal(err)
			}
			if vs, ok := c.Reservation(victim); !ok || vs.State != sched.ResActive {
				b.Fatalf("%s did not re-admit after release", victim)
			}
		}
		moved := count + 2*victimVMs // placed demand + eviction + re-admission
		b.ReportMetric(float64(moved)*float64(b.N)/b.Elapsed().Seconds(), "vms/s")
	})

	b.Run("lease-round", func(b *testing.B) {
		c := load(b, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := len(c.HeartbeatAll()); got != 36 {
				b.Fatalf("renewed %d hosts, want 36", got)
			}
			if tr := c.CheckLeases(); len(tr) != 0 {
				b.Fatalf("unexpected lease transitions: %v", tr)
			}
		}
		b.ReportMetric(float64(36*b.N)/b.Elapsed().Seconds(), "hosts/s")
	})
}
