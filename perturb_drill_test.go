package autonetkit

import (
	"net/netip"
	"os"
	"strings"
	"sync"
	"testing"

	"autonetkit/internal/chaos"
	"autonetkit/internal/compile"
	"autonetkit/internal/deploy"
	"autonetkit/internal/emul"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
)

// runPerturbDrill builds the Small-Internet fixture with the given worker
// count, deploys it, runs testdata/perturb/drill.chaos and returns the
// rendered report.
func runPerturbDrill(t *testing.T, workers int) string {
	t.Helper()
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{
		Compile: compile.Options{Workers: workers},
		Render:  render.Options{Workers: workers},
	}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open("testdata/perturb/drill.chaos")
	if err != nil {
		t.Fatal(err)
	}
	sc, diags := chaos.ParseScenarioFile(f, "drill.chaos")
	f.Close()
	if diags.HasErrors() {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	if !sc.Seeded {
		t.Fatal("drill scenario carries no seed")
	}
	eng, err := net.Chaos(dep.Lab(), chaos.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("drill produced error findings:\n%s", rep)
	}
	return rep.String() + "\n"
}

// Golden perturbation drill: a seeded scenario's schedule, verdicts and
// watchdog ladder are byte-reproducible — across runs and across build
// worker counts — and match testdata/perturb/drill.report (regenerate
// deliberately with UPDATE_PERTURB_GOLDEN=1 go test -run
// TestGoldenPerturbDrill).
func TestGoldenPerturbDrill(t *testing.T) {
	report := runPerturbDrill(t, 1)
	if wide := runPerturbDrill(t, 8); wide != report {
		t.Fatalf("report differs between Workers=1 and Workers=8:\n--- 1 ---\n%s--- 8 ---\n%s", report, wide)
	}

	// Structural assertions first, so a stale golden cannot mask a broken
	// ladder: the flap step must show the full heal sequence and close with
	// a recovery warning, not an error.
	for _, want := range []string{
		"watchdog observe: oscillating",
		"watchdog escalate-budget: oscillating",
		"watchdog soft-reset [as1r1, as20r3]: converged",
		"[watchdog: 2 escalations, final converged]",
		"recovered after 2 escalations",
		"182/182 pairs reachable",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	goldenPath := "testdata/perturb/drill.report"
	if os.Getenv("UPDATE_PERTURB_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if report != string(golden) {
		t.Errorf("drill report differs from golden:\n--- got ---\n%s--- want ---\n%s", report, golden)
	}
}

// The watchdog's supervision (budget escalation, soft resets, data-plane
// rebuilds) must be safe against concurrent measurement reads — the
// measurement client and the lab's metric accessors run from other
// goroutines in real deployments. Run under -race.
func TestWatchdogMeasureRace(t *testing.T) {
	net, err := Load(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Build(BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	dep, err := net.Deploy(deploy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab := dep.Lab()
	lab.SetPerturber(routing.NewScheduledPerturber(5, []routing.PerturbRule{
		{Kind: routing.PerturbFlap, A: "as1r1", B: "as20r3", Every: 1, Recover: true},
	}))
	if res, err := lab.Reconverge(); err != nil || res.Converged {
		t.Fatalf("perturbed reconverge: res=%+v err=%v", res, err)
	}

	client := net.Measure(lab)
	loopbacks := map[string]netip.Addr{}
	for _, e := range net.Alloc.Table.Entries() {
		if e.Loopback {
			loopbacks[string(e.Node)] = e.Addr
		}
	}
	addrOf := func(name string) netip.Addr { return loopbacks[name] }
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// Reads may observe a mid-supervision lab (and may error
				// while the data plane is being rebuilt); they must never
				// race or panic.
				_, _ = client.ReachabilityMatrix(lab.VMNames(), addrOf)
				_ = lab.Verdict()
				_ = lab.TotalChurn()
				_ = lab.UnstableSpeakers(2)
				_ = lab.Events()
			}
		}()
	}

	w := &emul.Watchdog{}
	rep, err := w.Supervise(lab)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Final != emul.VerdictConverged || !rep.Recovered {
		t.Fatalf("watchdog did not recover the lab:\n%s", rep.Describe())
	}
	// Supervising an already-healthy lab concurrently with the readers is a
	// cheap no-op ladder.
	for i := 0; i < 2; i++ {
		if rep, err = w.Supervise(lab); err != nil || rep.Escalations() != 0 {
			t.Fatalf("re-supervise: %+v, %v", rep, err)
		}
	}
	close(done)
	wg.Wait()
	if lab.Verdict() != emul.VerdictConverged {
		t.Errorf("final verdict = %s", lab.Verdict())
	}
}
