// Package ipalloc implements automatic IP address allocation (paper §5.3).
// Allocation is "compiler territory": the concrete values are
// inconsequential as long as they are unique and consistent, so the system
// assigns them the way a compiler assigns memory.
//
// Allocate builds the "ipv4" overlay from the physical topology:
//
//  1. Collision domains are derived with the attribute-based functions of
//     §5.2.4 — point-to-point links are Split with an intermediate
//     collision-domain node, and connected clusters of switches are
//     Aggregated into a single collision-domain node.
//  2. Each AS receives a contiguous infrastructure block, recorded in the
//     overlay-level data (G_ip.data.infra_blocks), and each collision
//     domain receives a subnet sized for its member count.
//  3. Each router receives a /32 loopback from a separate loopback block.
//
// The resulting overlay carries, per collision domain, the subnet on the
// node ("network") and per device-to-domain edge the interface address
// ("ip"). A Table maps every allocated address back to its owner, which the
// measurement system uses to translate traceroute output into node names
// (§6.1).
package ipalloc

import (
	"fmt"
	"net/netip"
	"sort"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/netaddr"
)

// OverlayIPv4 is the name of the overlay Allocate creates.
const OverlayIPv4 = "ipv4"

// Node and edge attribute keys written by the allocator.
const (
	AttrNetwork  = "network"  // collision domain node: netip.Prefix
	AttrIP       = "ip"       // device-cd edge: netip.Addr (device side)
	AttrLoopback = "loopback" // router node: netip.Addr
	AttrCDID     = "cd"       // device-cd edge: collision domain id
)

// Config parameterises the default allocator. Zero values select the
// paper's conventions: infrastructure from 192.168.0.0/16 and loopbacks
// from 10.0.0.0/8.
type Config struct {
	InfraBlock    netip.Prefix
	LoopbackBlock netip.Prefix
}

// DefaultConfig returns the paper's default blocks.
func DefaultConfig() Config {
	return Config{
		InfraBlock:    netaddr.MustPrefix("192.168.0.0/16"),
		LoopbackBlock: netaddr.MustPrefix("10.0.0.0/8"),
	}
}

// Entry describes one allocated address.
type Entry struct {
	Addr     netip.Addr
	Node     graph.ID // owning device
	CD       graph.ID // collision domain ("" for loopbacks)
	Loopback bool
}

// Table maps allocated addresses back to their owners.
type Table struct {
	byAddr map[netip.Addr]Entry
}

// Lookup returns the entry for an address.
func (t *Table) Lookup(a netip.Addr) (Entry, bool) {
	e, ok := t.byAddr[a]
	return e, ok
}

// HostForIP returns the owning node for an address, or "" when unknown.
func (t *Table) HostForIP(a netip.Addr) graph.ID {
	if e, ok := t.byAddr[a]; ok {
		return e.Node
	}
	return ""
}

// Len returns the number of allocated addresses.
func (t *Table) Len() int { return len(t.byAddr) }

// Entries returns all entries sorted by address, for deterministic dumps.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.byAddr))
	for _, e := range t.byAddr {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Result is the outcome of an allocation run.
type Result struct {
	Overlay *core.Overlay
	Table   *Table
	// InfraBlocks maps ASN -> the AS's infrastructure block, also stored in
	// the overlay data under "infra_blocks".
	InfraBlocks map[int]netip.Prefix
}

// Allocator is the plugin interface of §5.3: users can substitute a custom
// scheme (e.g. the Duerig et al. assignment) without touching the pipeline.
type Allocator interface {
	Allocate(anm *core.ANM) (*Result, error)
}

// Default is the built-in allocator.
type Default struct {
	Config Config
}

// NewDefault returns the built-in allocator with the paper's default blocks.
func NewDefault() *Default { return &Default{Config: DefaultConfig()} }

// Allocate implements Allocator.
func (d *Default) Allocate(anm *core.ANM) (*Result, error) {
	cfg := d.Config
	if !cfg.InfraBlock.IsValid() {
		cfg.InfraBlock = DefaultConfig().InfraBlock
	}
	if !cfg.LoopbackBlock.IsValid() {
		cfg.LoopbackBlock = DefaultConfig().LoopbackBlock
	}
	if cfg.InfraBlock.Overlaps(cfg.LoopbackBlock) {
		return nil, fmt.Errorf("ipalloc: infrastructure block %v overlaps loopback block %v", cfg.InfraBlock, cfg.LoopbackBlock)
	}
	phy := anm.Overlay(core.OverlayPhy)
	if phy == nil || phy.NumNodes() == 0 {
		return nil, fmt.Errorf("ipalloc: physical overlay is missing or empty")
	}
	if anm.HasOverlay(OverlayIPv4) {
		anm.RemoveOverlay(OverlayIPv4)
	}
	ip, err := anm.AddOverlay(OverlayIPv4)
	if err != nil {
		return nil, err
	}

	// Mirror the physical topology, then rewrite it into devices +
	// collision domains.
	ip.AddNodesFrom(phy.Nodes(), core.AttrASN, core.AttrDeviceType)
	ip.AddEdgesFrom(phy.Edges(), core.EdgeOpts{})
	if err := buildCollisionDomains(ip); err != nil {
		return nil, err
	}

	res := &Result{Overlay: ip, Table: &Table{byAddr: map[netip.Addr]Entry{}}, InfraBlocks: map[int]netip.Prefix{}}
	if err := allocateInfra(ip, cfg.InfraBlock, res); err != nil {
		return nil, err
	}
	if err := allocateLoopbacks(ip, phy, cfg.LoopbackBlock, res); err != nil {
		return nil, err
	}

	blocks := map[string]any{}
	for asn, p := range res.InfraBlocks {
		blocks[fmt.Sprint(asn)] = p
	}
	ip.Set("infra_blocks", blocks)
	ip.Set("loopback_block", cfg.LoopbackBlock)
	return res, nil
}

// buildCollisionDomains rewrites the mirrored physical graph: switch
// clusters aggregate into one collision domain; remaining device-device
// links are split with a fresh collision-domain node.
func buildCollisionDomains(ip *core.Overlay) error {
	// Aggregate each connected cluster of switches.
	g := ip.Graph()
	var swIDs []graph.ID
	for _, n := range ip.Switches() {
		swIDs = append(swIDs, n.ID())
	}
	if len(swIDs) > 0 {
		swSet := map[graph.ID]bool{}
		for _, id := range swIDs {
			swSet[id] = true
		}
		sub := g.Subgraph(swIDs)
		for i, comp := range sub.ConnectedComponents() {
			cdID := graph.ID(fmt.Sprintf("cd_sw%d", i))
			asn := ip.Node(comp[0]).ASN()
			if _, err := ip.AggregateNodes(comp, cdID, graph.Attrs{
				core.AttrDeviceType: core.DeviceCollisionDomain,
				core.AttrASN:        asn,
			}); err != nil {
				return fmt.Errorf("ipalloc: aggregating switch cluster: %w", err)
			}
		}
	}
	// Split every remaining device-device edge.
	for _, e := range ip.Edges() {
		if e.Src().DeviceType() == core.DeviceCollisionDomain || e.Dst().DeviceType() == core.DeviceCollisionDomain {
			continue
		}
		cdID := graph.ID(fmt.Sprintf("cd_%s_%s", e.SrcID(), e.DstID()))
		asn := minInt(e.Src().ASN(), e.Dst().ASN())
		if asn == 0 {
			asn = maxInt(e.Src().ASN(), e.Dst().ASN())
		}
		if _, err := ip.SplitEdge(e.SrcID(), e.DstID(), cdID, graph.Attrs{
			core.AttrDeviceType: core.DeviceCollisionDomain,
			core.AttrASN:        asn,
		}); err != nil {
			return fmt.Errorf("ipalloc: splitting %v-%v: %w", e.SrcID(), e.DstID(), err)
		}
	}
	return nil
}

// allocateInfra assigns per-AS blocks and per-collision-domain subnets.
func allocateInfra(ip *core.Overlay, infra netip.Prefix, res *Result) error {
	carver, err := netaddr.NewCarver(infra)
	if err != nil {
		return err
	}
	// Deterministic order: group collision domains by ASN, sorted.
	type cdInfo struct {
		id      graph.ID
		members []core.NodeView
		bits    int
	}
	byASN := map[int][]cdInfo{}
	var asns []int
	for _, n := range ip.Nodes() {
		if n.DeviceType() != core.DeviceCollisionDomain {
			continue
		}
		members := n.Neighbors()
		bits, err := subnetBitsFor(len(members))
		if err != nil {
			return fmt.Errorf("ipalloc: collision domain %s: %w", n.ID(), err)
		}
		asn := n.ASN()
		if _, seen := byASN[asn]; !seen {
			asns = append(asns, asn)
		}
		byASN[asn] = append(byASN[asn], cdInfo{id: n.ID(), members: members, bits: bits})
	}
	sort.Ints(asns)
	for _, asn := range asns {
		cds := byASN[asn]
		// Size the AS block: total addresses rounded up to a power of two.
		need := 0
		for _, cd := range cds {
			need += 1 << (32 - cd.bits)
		}
		blockBits := 32
		for (1 << (32 - blockBits)) < need {
			blockBits--
		}
		if blockBits < infra.Bits() {
			return fmt.Errorf("ipalloc: AS%d needs %d addresses, more than block %v holds", asn, need, infra)
		}
		asBlock, err := carver.Next(blockBits)
		if err != nil {
			return fmt.Errorf("ipalloc: AS%d: %w", asn, err)
		}
		res.InfraBlocks[asn] = asBlock
		asCarver, err := netaddr.NewCarver(asBlock)
		if err != nil {
			return err
		}
		for _, cd := range cds {
			subnet, err := asCarver.Next(cd.bits)
			if err != nil {
				return fmt.Errorf("ipalloc: AS%d collision domain %s: %w", asn, cd.id, err)
			}
			if err := ip.Node(cd.id).Set(AttrNetwork, subnet); err != nil {
				return err
			}
			for i, m := range cd.members {
				addr, err := netaddr.NthHost(subnet, i)
				if err != nil {
					return fmt.Errorf("ipalloc: %s member %s: %w", cd.id, m.ID(), err)
				}
				edge := ip.Edge(cd.id, m.ID())
				if !edge.IsValid() {
					edge = ip.Edge(m.ID(), cd.id)
				}
				if !edge.IsValid() {
					return fmt.Errorf("ipalloc: missing edge %s-%s", cd.id, m.ID())
				}
				if err := edge.Set(AttrIP, addr); err != nil {
					return err
				}
				if err := edge.Set(AttrCDID, string(cd.id)); err != nil {
					return err
				}
				if prev, dup := res.Table.byAddr[addr]; dup {
					return fmt.Errorf("ipalloc: address %v allocated twice (%s and %s)", addr, prev.Node, m.ID())
				}
				res.Table.byAddr[addr] = Entry{Addr: addr, Node: m.ID(), CD: cd.id}
			}
		}
	}
	return nil
}

// allocateLoopbacks assigns /32 loopbacks to routers, in ASN-then-insertion
// order for stable output.
func allocateLoopbacks(ip, phy *core.Overlay, block netip.Prefix, res *Result) error {
	carver, err := netaddr.NewCarver(block)
	if err != nil {
		return err
	}
	// Skip the all-zeros address for readability (10.0.0.1 first).
	if _, err := carver.Next(32); err != nil {
		return err
	}
	groups := phy.GroupBy(core.AttrASN)
	for _, grp := range groups {
		for _, n := range grp.Members {
			if !n.IsRouter() {
				continue
			}
			p, err := carver.Next(32)
			if err != nil {
				return fmt.Errorf("ipalloc: loopback for %s: %w", n.ID(), err)
			}
			addr := p.Addr()
			if err := ip.Node(n.ID()).Set(AttrLoopback, addr); err != nil {
				return err
			}
			res.Table.byAddr[addr] = Entry{Addr: addr, Node: n.ID(), Loopback: true}
		}
	}
	return nil
}

// subnetBitsFor returns the prefix length for a collision domain with n
// members: /30 point-to-point, larger LANs get the smallest prefix with
// n usable hosts.
func subnetBitsFor(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("empty collision domain")
	}
	for bits := 30; bits >= 2; bits-- {
		if netaddr.HostCount(netip.PrefixFrom(netip.AddrFrom4([4]byte{}), bits)) >= n {
			return bits, nil
		}
	}
	return 0, fmt.Errorf("%d members cannot fit any IPv4 subnet", n)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
