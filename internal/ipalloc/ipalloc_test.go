package ipalloc

import (
	"net/netip"
	"testing"
	"testing/quick"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/netaddr"
)

// buildPhy creates a physical overlay: Fig. 5's five routers plus an extra
// server and a switch pair to exercise aggregation.
func buildPhy(t *testing.T) *core.ANM {
	t.Helper()
	anm := core.NewANM()
	phy := anm.Overlay(core.OverlayPhy)
	add := func(id graph.ID, asn int, dt string) {
		phy.AddNode(id, graph.Attrs{core.AttrASN: asn, core.AttrDeviceType: dt})
	}
	add("r1", 1, core.DeviceRouter)
	add("r2", 1, core.DeviceRouter)
	add("r3", 1, core.DeviceRouter)
	add("r4", 1, core.DeviceRouter)
	add("r5", 2, core.DeviceRouter)
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		phy.AddEdge(e[0], e[1])
	}
	return anm
}

func allocate(t *testing.T, anm *core.ANM) *Result {
	t.Helper()
	res, err := NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCollisionDomainsForP2PLinks(t *testing.T) {
	anm := buildPhy(t)
	res := allocate(t, anm)
	ip := res.Overlay
	// Six physical links -> six collision domains.
	cds := ip.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain)
	if len(cds) != 6 {
		t.Fatalf("collision domains = %d, want 6", len(cds))
	}
	// No device-device edges remain.
	for _, e := range ip.Edges() {
		sType, dType := e.Src().DeviceType(), e.Dst().DeviceType()
		if sType != core.DeviceCollisionDomain && dType != core.DeviceCollisionDomain {
			t.Errorf("device-device edge survived: %v", e)
		}
	}
}

func TestSubnetsAssigned(t *testing.T) {
	anm := buildPhy(t)
	res := allocate(t, anm)
	ip := res.Overlay
	seen := map[netip.Prefix]graph.ID{}
	for _, cd := range ip.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain) {
		p, ok := cd.Get(AttrNetwork).(netip.Prefix)
		if !ok {
			t.Fatalf("cd %s has no network", cd.ID())
		}
		if p.Bits() != 30 {
			t.Errorf("p2p cd %s subnet = %v, want /30", cd.ID(), p)
		}
		if prev, dup := seen[p]; dup {
			t.Errorf("subnet %v reused by %s and %s", p, prev, cd.ID())
		}
		seen[p] = cd.ID()
		// Members carry in-subnet addresses.
		for _, m := range cd.Neighbors() {
			edge := ip.Edge(cd.ID(), m.ID())
			if !edge.IsValid() {
				edge = ip.Edge(m.ID(), cd.ID())
			}
			a, ok := edge.Get(AttrIP).(netip.Addr)
			if !ok {
				t.Fatalf("edge %s-%s has no ip", cd.ID(), m.ID())
			}
			if !p.Contains(a) {
				t.Errorf("interface %v outside subnet %v", a, p)
			}
		}
	}
}

func TestPerASBlocks(t *testing.T) {
	anm := buildPhy(t)
	// Give AS2 an intra-AS link so it owns collision domains of its own
	// (inter-AS domains are charged to the lower ASN).
	phy := anm.Overlay(core.OverlayPhy)
	phy.AddNode("r6", graph.Attrs{core.AttrASN: 2, core.AttrDeviceType: core.DeviceRouter})
	phy.AddEdge("r5", "r6")
	res := allocate(t, anm)
	if len(res.InfraBlocks) != 2 {
		t.Fatalf("infra blocks = %v", res.InfraBlocks)
	}
	b1, b2 := res.InfraBlocks[1], res.InfraBlocks[2]
	if b1.Overlaps(b2) {
		t.Errorf("AS blocks overlap: %v %v", b1, b2)
	}
	infra := netaddr.MustPrefix("192.168.0.0/16")
	if !netaddr.Contains(infra, b1) || !netaddr.Contains(infra, b2) {
		t.Errorf("blocks outside infra: %v %v", b1, b2)
	}
	// Every cd subnet sits inside its AS block.
	for _, cd := range res.Overlay.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain) {
		p := cd.Get(AttrNetwork).(netip.Prefix)
		asn := cd.ASN()
		if !netaddr.Contains(res.InfraBlocks[asn], p) {
			t.Errorf("cd %s subnet %v outside AS%d block %v", cd.ID(), p, asn, res.InfraBlocks[asn])
		}
	}
	// Overlay data mirrors the allocation (paper §5.2.1).
	blocks, ok := res.Overlay.Get("infra_blocks").(map[string]any)
	if !ok || blocks["1"] != b1 {
		t.Errorf("overlay data infra_blocks = %v", res.Overlay.Get("infra_blocks"))
	}
}

func TestLoopbacks(t *testing.T) {
	anm := buildPhy(t)
	res := allocate(t, anm)
	seen := map[netip.Addr]bool{}
	lbBlock := netaddr.MustPrefix("10.0.0.0/8")
	for _, r := range []graph.ID{"r1", "r2", "r3", "r4", "r5"} {
		a, ok := res.Overlay.Node(r).Get(AttrLoopback).(netip.Addr)
		if !ok {
			t.Fatalf("router %s has no loopback", r)
		}
		if seen[a] {
			t.Errorf("loopback %v duplicated", a)
		}
		seen[a] = true
		if !lbBlock.Contains(a) {
			t.Errorf("loopback %v outside block", a)
		}
	}
	// First loopback is 10.0.0.1 (all-zeros skipped).
	if res.Overlay.Node("r1").Get(AttrLoopback).(netip.Addr).String() != "10.0.0.1" {
		t.Errorf("first loopback = %v", res.Overlay.Node("r1").Get(AttrLoopback))
	}
}

func TestServersGetInfraNotLoopback(t *testing.T) {
	anm := buildPhy(t)
	phy := anm.Overlay(core.OverlayPhy)
	phy.AddNode("srv1", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceServer})
	phy.AddEdge("srv1", "r1")
	res := allocate(t, anm)
	if res.Overlay.Node("srv1").Get(AttrLoopback) != nil {
		t.Error("server got a loopback")
	}
	found := false
	for _, e := range res.Overlay.Node("srv1").Edges() {
		if e.Get(AttrIP) != nil {
			found = true
		}
	}
	if !found {
		t.Error("server got no infrastructure address")
	}
}

func TestSwitchAggregation(t *testing.T) {
	anm := core.NewANM()
	phy := anm.Overlay(core.OverlayPhy)
	for _, r := range []graph.ID{"r1", "r2", "r3"} {
		phy.AddNode(r, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	}
	phy.AddNode("sw1", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceSwitch})
	phy.AddNode("sw2", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceSwitch})
	phy.AddEdge("r1", "sw1")
	phy.AddEdge("r2", "sw1")
	phy.AddEdge("sw1", "sw2")
	phy.AddEdge("sw2", "r3")
	res := allocate(t, anm)
	ip := res.Overlay
	cds := ip.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain)
	if len(cds) != 1 {
		t.Fatalf("collision domains = %d, want 1 (switches merged)", len(cds))
	}
	cd := cds[0]
	if len(cd.Neighbors()) != 3 {
		t.Errorf("cd members = %d, want 3", len(cd.Neighbors()))
	}
	p := cd.Get(AttrNetwork).(netip.Prefix)
	if p.Bits() != 29 {
		t.Errorf("3-member cd subnet = /%d, want /29", p.Bits())
	}
	// All three routers share the subnet with distinct addresses.
	addrs := map[netip.Addr]bool{}
	for _, m := range cd.Neighbors() {
		e := ip.Edge(cd.ID(), m.ID())
		if !e.IsValid() {
			e = ip.Edge(m.ID(), cd.ID())
		}
		a := e.Get(AttrIP).(netip.Addr)
		if addrs[a] {
			t.Errorf("duplicate member address %v", a)
		}
		addrs[a] = true
		if !p.Contains(a) {
			t.Errorf("member address %v outside %v", a, p)
		}
	}
}

func TestTableLookups(t *testing.T) {
	anm := buildPhy(t)
	res := allocate(t, anm)
	// 6 cds x 2 members + 5 loopbacks = 17 addresses.
	if res.Table.Len() != 17 {
		t.Errorf("table entries = %d, want 17", res.Table.Len())
	}
	lb := res.Overlay.Node("r3").Get(AttrLoopback).(netip.Addr)
	e, ok := res.Table.Lookup(lb)
	if !ok || e.Node != "r3" || !e.Loopback {
		t.Errorf("loopback lookup = %+v, %v", e, ok)
	}
	if res.Table.HostForIP(lb) != "r3" {
		t.Error("HostForIP wrong")
	}
	if res.Table.HostForIP(netip.MustParseAddr("203.0.113.1")) != "" {
		t.Error("unknown IP should map to empty")
	}
	entries := res.Table.Entries()
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].Addr.Less(entries[i].Addr) {
			t.Fatal("entries not sorted")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := allocate(t, buildPhy(t))
	b := allocate(t, buildPhy(t))
	ea, eb := a.Table.Entries(), b.Table.Entries()
	if len(ea) != len(eb) {
		t.Fatal("table sizes differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestReallocationReplacesOverlay(t *testing.T) {
	anm := buildPhy(t)
	allocate(t, anm)
	res2 := allocate(t, anm) // second run must not fail on existing overlay
	if res2.Overlay.NumNodes() == 0 {
		t.Error("re-allocation produced empty overlay")
	}
}

func TestErrors(t *testing.T) {
	// Empty phy.
	if _, err := NewDefault().Allocate(core.NewANM()); err == nil {
		t.Error("empty phy accepted")
	}
	// Overlapping blocks.
	anm := buildPhy(t)
	bad := &Default{Config: Config{
		InfraBlock:    netaddr.MustPrefix("10.0.0.0/8"),
		LoopbackBlock: netaddr.MustPrefix("10.1.0.0/16"),
	}}
	if _, err := bad.Allocate(anm); err == nil {
		t.Error("overlapping blocks accepted")
	}
	// Exhaustion: tiny infra block.
	tiny := &Default{Config: Config{
		InfraBlock:    netaddr.MustPrefix("198.51.100.0/30"),
		LoopbackBlock: netaddr.MustPrefix("10.0.0.0/8"),
	}}
	if _, err := tiny.Allocate(buildPhy(t)); err == nil {
		t.Error("exhausted infra block accepted")
	}
}

func TestSubnetBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{{1, 30}, {2, 30}, {3, 29}, {6, 29}, {7, 28}, {14, 28}, {15, 27}}
	for _, c := range cases {
		got, err := subnetBitsFor(c.n)
		if err != nil || got != c.want {
			t.Errorf("subnetBitsFor(%d) = %d, %v; want %d", c.n, got, err, c.want)
		}
	}
	if _, err := subnetBitsFor(0); err == nil {
		t.Error("empty cd accepted")
	}
}

// Property: on random connected router topologies, every allocated address
// is unique and every collision domain subnet is disjoint (the paper's
// "primarily uniqueness and consistency" invariant).
func TestPropertyUniqueAllocation(t *testing.T) {
	f := func(edges [][2]uint8, asns []uint8) bool {
		anm := core.NewANM()
		phy := anm.Overlay(core.OverlayPhy)
		if len(edges) == 0 {
			return true
		}
		asnOf := func(i uint8) int {
			if len(asns) == 0 {
				return 1
			}
			return int(asns[int(i)%len(asns)])%4 + 1
		}
		for _, e := range edges {
			u := graph.ID(rune('a' + e[0]%12))
			v := graph.ID(rune('a' + e[1]%12))
			if u == v {
				continue
			}
			phy.AddNode(u, graph.Attrs{core.AttrASN: asnOf(e[0] % 12), core.AttrDeviceType: core.DeviceRouter})
			phy.AddNode(v, graph.Attrs{core.AttrASN: asnOf(e[1] % 12), core.AttrDeviceType: core.DeviceRouter})
			phy.AddEdge(u, v)
		}
		if phy.NumNodes() == 0 {
			return true
		}
		res, err := NewDefault().Allocate(anm)
		if err != nil {
			return false
		}
		// Subnet disjointness.
		var nets []netip.Prefix
		for _, cd := range res.Overlay.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain) {
			nets = append(nets, cd.Get(AttrNetwork).(netip.Prefix))
		}
		for i := range nets {
			for j := i + 1; j < len(nets); j++ {
				if nets[i].Overlaps(nets[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInterASDomainWithMissingASN(t *testing.T) {
	// One endpoint lacks an ASN (0): the domain is charged to the other
	// side's AS rather than AS 0.
	anm := core.NewANM()
	phy := anm.Overlay(core.OverlayPhy)
	phy.AddNode("r1", graph.Attrs{core.AttrASN: 5, core.AttrDeviceType: core.DeviceRouter})
	phy.AddNode("srv", graph.Attrs{core.AttrDeviceType: core.DeviceServer})
	phy.AddEdge("r1", "srv")
	res := allocate(t, anm)
	cds := res.Overlay.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain)
	if len(cds) != 1 {
		t.Fatalf("cds = %d", len(cds))
	}
	if cds[0].ASN() != 5 {
		t.Errorf("cd asn = %d, want 5", cds[0].ASN())
	}
	if _, ok := res.InfraBlocks[5]; !ok {
		t.Errorf("blocks = %v", res.InfraBlocks)
	}
}
