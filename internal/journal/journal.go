// Package journal is a crash-safe, append-only write-ahead log with
// snapshot compaction — the durability substrate under the cluster
// scheduler (internal/sched), and reusable by any subsystem that needs
// replayable state. The design is the classic WAL triangle:
//
//   - Appends are CRC-framed records (length + CRC-32C + payload) written
//     to the current epoch's wal file and, under the default SyncAlways
//     policy, fsynced before Append returns — a record either survives a
//     crash whole or is dropped whole.
//   - Open truncates a torn tail: the first frame that is short, oversized,
//     or fails its checksum ends the valid prefix; everything after it is
//     discarded (and counted), so a crash mid-write can never replay
//     garbage or a half-record.
//   - Snapshot compacts: the full state is written to a temp file, fsynced,
//     atomically renamed to snap-<epoch>, the directory fsynced, and a
//     fresh wal for the new epoch started before the old epoch's files are
//     removed. A crash at ANY step leaves either the old epoch intact or
//     the new epoch complete — never a state that loses records.
//
// Recovery (Open) returns the newest valid snapshot plus the records of
// its epoch's wal tail; the caller replays them in order. A snapshot that
// exists but fails validation is a hard ErrCorrupt — rename atomicity
// means crashes cannot produce one, so a bad snapshot is real corruption
// and silently falling back would lose acknowledged writes.
//
// Every I/O step (write, sync, rename, create, truncate) runs through an
// optional Failpoints seam, so tests can kill the log at each step of an
// operation sequence — including torn writes that persist only a prefix —
// and prove recovery lands in a consistent state from every crash point.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"autonetkit/internal/obs"
)

// File-format magics. The trailing digit versions the format.
var (
	walMagic  = [8]byte{'A', 'N', 'K', 'W', 'A', 'L', '0', '1'}
	snapMagic = [8]byte{'A', 'N', 'K', 'S', 'N', 'P', '0', '1'}
)

// MaxRecord bounds one record's payload (64 MiB). The bound is checked on
// both append and decode, so a corrupt length field can never drive an
// unbounded allocation.
const MaxRecord = 1 << 26

// frameHeaderLen is the per-record framing overhead: u32 payload length +
// u32 CRC-32C of the payload, both big-endian.
const frameHeaderLen = 8

// snapHeaderLen is the snapshot file header: 8-byte magic + u32 payload
// length + u32 CRC-32C of the payload.
const snapHeaderLen = 16

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: faster, but a crash may drop
	// the most recent acknowledged records (never corrupt older ones —
	// the torn-tail truncation still yields a valid prefix).
	SyncNever
)

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy (SyncAlways by default).
	Sync SyncPolicy
	// Obs, when set, collects journal counters (journal_appends,
	// journal_snapshots, journal_recoveries, journal_truncated_tails).
	Obs *obs.Collector
	// Fail, when set, injects crashes into the I/O path (test seam).
	Fail *Failpoints
}

// Sentinel errors.
var (
	// ErrCrashed poisons a log after an injected crash or a real write
	// error: the in-memory state may be ahead of disk, so every further
	// operation refuses until the caller reopens and replays.
	ErrCrashed = errors.New("journal: log crashed; reopen to recover")
	// ErrInjected marks an injected failpoint crash (wrapped in the error
	// the failing operation returns).
	ErrInjected = errors.New("journal: injected crash")
	// ErrCorrupt marks on-disk state that no crash could produce (bad
	// magic, invalid snapshot, wal from a missing epoch): recovery refuses
	// rather than silently dropping acknowledged records.
	ErrCorrupt = errors.New("journal: corrupt")
)

// Log is an open write-ahead journal directory. All methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	epoch   uint64
	crashed bool
	closed  bool
}

// Recovery is what Open found on disk: the newest valid snapshot (nil when
// none was ever taken) and the valid records appended after it, in order.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil when none.
	Snapshot []byte
	// Records are the wal records after the snapshot, oldest first.
	Records [][]byte
	// Epoch is the recovered epoch (1 when no snapshot was ever taken).
	Epoch uint64
	// TruncatedBytes counts bytes dropped from the wal's torn tail.
	TruncatedBytes int64
	// RemovedFiles counts stale files (old epochs, temp files) cleaned up.
	RemovedFiles int
}

func walName(epoch uint64) string { return fmt.Sprintf("wal-%016x.wal", epoch) }

func snapName(epoch uint64) string { return fmt.Sprintf("snap-%016x.snap", epoch) }

// parseEpoch extracts the epoch from a "prefix-<16 hex>.suffix" name.
func parseEpoch(name, prefix, suffix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	hex, ok := strings.CutSuffix(rest, suffix)
	if !ok || len(hex) != 16 {
		return 0, false
	}
	e, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || e == 0 {
		return 0, false
	}
	return e, true
}

// Open opens (creating if needed) the journal directory, recovers the
// newest valid snapshot and its wal tail, truncates any torn tail, and
// returns a log positioned to append to the recovered epoch.
func Open(dir string, opts Options) (*Log, Recovery, error) {
	var rec Recovery
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, rec, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	var snapEpochs, walEpochs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A temp snapshot that never reached its rename: dead weight.
			os.Remove(filepath.Join(dir, name))
			rec.RemovedFiles++
		default:
			if ep, ok := parseEpoch(name, "snap-", ".snap"); ok {
				snapEpochs = append(snapEpochs, ep)
			} else if ep, ok := parseEpoch(name, "wal-", ".wal"); ok {
				walEpochs = append(walEpochs, ep)
			}
		}
	}
	sort.Slice(snapEpochs, func(i, j int) bool { return snapEpochs[i] < snapEpochs[j] })
	sort.Slice(walEpochs, func(i, j int) bool { return walEpochs[i] < walEpochs[j] })

	epoch := uint64(1)
	if n := len(snapEpochs); n > 0 {
		epoch = snapEpochs[n-1]
		snap, err := readSnapshot(filepath.Join(dir, snapName(epoch)))
		if err != nil {
			return nil, rec, fmt.Errorf("%w: snapshot epoch %d: %v", ErrCorrupt, epoch, err)
		}
		rec.Snapshot = snap
	}
	// A wal from a later epoch than the best snapshot is impossible by
	// construction (the wal is created only after its snapshot's rename is
	// durable) — seeing one means the snapshot was lost to corruption.
	for _, we := range walEpochs {
		if we > epoch {
			return nil, rec, fmt.Errorf("%w: wal epoch %d has no snapshot (best is %d)", ErrCorrupt, we, epoch)
		}
	}
	rec.Epoch = epoch

	l := &Log{dir: dir, opts: opts, epoch: epoch}
	records, keep, truncated, fresh, err := parseWAL(filepath.Join(dir, walName(epoch)))
	if err != nil {
		return nil, rec, err
	}
	rec.Records = records
	rec.TruncatedBytes = truncated

	f, err := os.OpenFile(filepath.Join(dir, walName(epoch)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("journal: open wal: %w", err)
	}
	l.f = f
	if truncated > 0 || fresh {
		if err := l.barrier("wal-truncate", func() error { return f.Truncate(keep) }); err != nil {
			f.Close()
			return nil, rec, err
		}
	}
	if fresh {
		// New or reset wal: lay down the header.
		if err := l.write(f, walMagic[:], "wal-header"); err != nil {
			f.Close()
			return nil, rec, err
		}
		keep = int64(len(walMagic))
		if err := l.barrier("wal-header-sync", f.Sync); err != nil {
			f.Close()
			return nil, rec, err
		}
		if err := l.barrier("wal-dir-sync", l.syncDir); err != nil {
			f.Close()
			return nil, rec, err
		}
	} else if truncated > 0 {
		if err := l.barrier("wal-truncate-sync", f.Sync); err != nil {
			f.Close()
			return nil, rec, err
		}
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, rec, fmt.Errorf("journal: seek wal: %w", err)
	}

	// Remove files from epochs the recovered epoch supersedes (left behind
	// when a crash interrupted a snapshot's cleanup step).
	for _, se := range snapEpochs {
		if se < epoch {
			os.Remove(filepath.Join(dir, snapName(se)))
			rec.RemovedFiles++
		}
	}
	for _, we := range walEpochs {
		if we < epoch {
			os.Remove(filepath.Join(dir, walName(we)))
			rec.RemovedFiles++
		}
	}

	opts.Obs.Add(obs.CounterJournalRecoveries, 1)
	if truncated > 0 {
		opts.Obs.Add(obs.CounterJournalTruncatedTails, 1)
	}
	return l, rec, nil
}

// parseWAL reads a wal file and returns its valid records, the byte offset
// the valid prefix ends at, the torn-tail byte count past it, and whether
// the file must be re-initialised (missing, empty, or torn before the
// header completed). A present-but-wrong header magic is ErrCorrupt.
func parseWAL(path string) (records [][]byte, keep int64, truncated int64, fresh bool, err error) {
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, 0, true, nil
		}
		return nil, 0, 0, false, fmt.Errorf("journal: read wal: %w", rerr)
	}
	if len(raw) < len(walMagic) {
		// Crash between file creation and header landing.
		return nil, 0, int64(len(raw)), true, nil
	}
	if [8]byte(raw[:len(walMagic)]) != walMagic {
		return nil, 0, 0, false, fmt.Errorf("%w: wal header magic mismatch in %s", ErrCorrupt, filepath.Base(path))
	}
	off := len(walMagic)
	for {
		if off+frameHeaderLen > len(raw) {
			break // torn frame header
		}
		n := int(binary.BigEndian.Uint32(raw[off:]))
		sum := binary.BigEndian.Uint32(raw[off+4:])
		if n > MaxRecord || off+frameHeaderLen+n > len(raw) {
			break // impossible length or torn payload
		}
		payload := raw[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit flip or torn write inside the frame
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameHeaderLen + n
	}
	return records, int64(off), int64(len(raw) - off), false, nil
}

// readSnapshot reads and validates one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < snapHeaderLen || [8]byte(raw[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("bad snapshot header")
	}
	n := int(binary.BigEndian.Uint32(raw[8:12]))
	sum := binary.BigEndian.Uint32(raw[12:16])
	if len(raw) != snapHeaderLen+n {
		return nil, fmt.Errorf("snapshot length %d, header says %d", len(raw)-snapHeaderLen, n)
	}
	payload := raw[snapHeaderLen:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, errors.New("snapshot checksum mismatch")
	}
	return append([]byte(nil), payload...), nil
}

// Dir reports the journal's directory.
func (l *Log) Dir() string { return l.dir }

// Epoch reports the current snapshot epoch (1 until the first Snapshot).
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Append frames and writes one record, fsyncing per the sync policy. On
// any failure the log is poisoned (ErrCrashed thereafter): the caller's
// in-memory state may now be ahead of disk, and only a reopen + replay
// re-establishes agreement.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return err
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	if err := l.write(l.f, frame, "wal-append"); err != nil {
		return err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.barrier("wal-append-sync", l.f.Sync); err != nil {
			return err
		}
	}
	l.opts.Obs.Add(obs.CounterJournalAppends, 1)
	return nil
}

// Snapshot compacts the journal: the given full state becomes the new
// epoch's snapshot (written to a temp file, fsynced, atomically renamed,
// directory fsynced), a fresh wal for the epoch is started, and the old
// epoch's files are removed. Records appended after Snapshot returns land
// in the new wal; a crash at any step preserves either the old epoch
// (snapshot + complete wal) or the new one.
func (l *Log) Snapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return err
	}
	next := l.epoch + 1
	buf := make([]byte, snapHeaderLen+len(state))
	copy(buf, snapMagic[:])
	binary.BigEndian.PutUint32(buf[8:], uint32(len(state)))
	binary.BigEndian.PutUint32(buf[12:], crc32.Checksum(state, crcTable))
	copy(buf[snapHeaderLen:], state)

	tmpPath := filepath.Join(l.dir, fmt.Sprintf("snap-%016x.tmp", next))
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		l.crashed = true
		return fmt.Errorf("journal: snapshot temp: %w", err)
	}
	if err := l.write(tmp, buf, "snap-write"); err != nil {
		tmp.Close()
		return err
	}
	if err := l.barrier("snap-sync", tmp.Sync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		l.crashed = true
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := l.barrier("snap-rename", func() error {
		return os.Rename(tmpPath, filepath.Join(l.dir, snapName(next)))
	}); err != nil {
		return err
	}
	if err := l.barrier("snap-dir-sync", l.syncDir); err != nil {
		return err
	}

	// The snapshot is durable; start the new epoch's wal.
	var nf *os.File
	if err := l.barrier("wal-create", func() error {
		var cerr error
		nf, cerr = os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
		return cerr
	}); err != nil {
		return err
	}
	if err := l.write(nf, walMagic[:], "wal-header"); err != nil {
		nf.Close()
		return err
	}
	if err := l.barrier("wal-header-sync", nf.Sync); err != nil {
		nf.Close()
		return err
	}
	if err := l.barrier("wal-dir-sync", l.syncDir); err != nil {
		nf.Close()
		return err
	}

	old, oldEpoch := l.f, l.epoch
	l.f, l.epoch = nf, next
	old.Close()
	// Old epoch is superseded; removal is best-effort (Open cleans up
	// leftovers), but still a crash point worth exercising.
	if err := l.barrier("cleanup", func() error {
		os.Remove(filepath.Join(l.dir, walName(oldEpoch)))
		if oldEpoch > 1 {
			os.Remove(filepath.Join(l.dir, snapName(oldEpoch)))
		}
		return nil
	}); err != nil {
		return err
	}
	l.opts.Obs.Add(obs.CounterJournalSnapshots, 1)
	return nil
}

// Close flushes and closes the wal. The log cannot be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		l.closed = true
		return nil
	}
	l.closed = true
	if !l.crashed {
		l.f.Sync()
	}
	return l.f.Close()
}

func (l *Log) usable() error {
	switch {
	case l.crashed:
		return ErrCrashed
	case l.closed:
		return errors.New("journal: log is closed")
	}
	return nil
}

// write runs one write through the failpoint seam: an armed crash persists
// only the torn prefix and poisons the log.
func (l *Log) write(f *os.File, b []byte, point string) error {
	if fp := l.opts.Fail; fp != nil {
		if torn, crash := fp.fire(point, len(b)); crash {
			if torn > 0 {
				_, _ = f.Write(b[:torn])
			}
			l.crashed = true
			return fmt.Errorf("%s: %w", point, ErrInjected)
		}
	}
	if _, err := f.Write(b); err != nil {
		l.crashed = true
		return fmt.Errorf("journal: %s: %w", point, err)
	}
	return nil
}

// barrier runs one non-write I/O step (sync, rename, create, truncate)
// through the failpoint seam: an armed crash skips the step entirely.
func (l *Log) barrier(point string, op func() error) error {
	if fp := l.opts.Fail; fp != nil {
		if _, crash := fp.fire(point, 0); crash {
			l.crashed = true
			return fmt.Errorf("%s: %w", point, ErrInjected)
		}
	}
	if err := op(); err != nil {
		l.crashed = true
		return fmt.Errorf("journal: %s: %w", point, err)
	}
	return nil
}

func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
