package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonetkit/internal/obs"
)

func openT(t *testing.T, dir string, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, payload string) {
	t.Helper()
	if err := l.Append([]byte(payload)); err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
}

func recordsAsStrings(rec Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestAppendCloseReopen(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Epoch != 1 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("record-%d", i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	got := recordsAsStrings(rec2)
	if len(got) != 10 || got[0] != "record-0" || got[9] != "record-9" {
		t.Fatalf("recovered records = %v", got)
	}
	if rec2.Snapshot != nil || rec2.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v", rec2)
	}
}

func TestRecoverWithoutClose(t *testing.T) {
	// SyncAlways means acked appends survive even when the process never
	// closes the log (the crash case).
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	mustAppend(t, l, "acked")
	// No Close: simulate a kill by just reopening the directory.
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if got := recordsAsStrings(rec); len(got) != 1 || got[0] != "acked" {
		t.Fatalf("recovered %v", got)
	}
	l.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	mustAppend(t, l, "alpha")
	mustAppend(t, l, "beta")
	l.Close()

	// Simulate a torn write: garbage after the valid frames.
	path := filepath.Join(dir, walName(1))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x00, 0x20, 0xde, 0xad}) // half a frame header + junk
	f.Close()

	ob := obs.NewCollector()
	l2, rec := openT(t, dir, Options{Obs: ob})
	defer l2.Close()
	if got := recordsAsStrings(rec); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("recovered %v", got)
	}
	if rec.TruncatedBytes != 6 {
		t.Fatalf("TruncatedBytes = %d, want 6", rec.TruncatedBytes)
	}
	if n := ob.Counter(obs.CounterJournalTruncatedTails); n != 1 {
		t.Fatalf("truncated_tails counter = %d", n)
	}
	// The torn bytes must be physically gone: appending then reopening
	// yields exactly alpha, beta, gamma.
	mustAppend(t, l2, "gamma")
	l2.Close()
	l3, rec3 := openT(t, dir, Options{})
	defer l3.Close()
	if got := recordsAsStrings(rec3); len(got) != 3 || got[2] != "gamma" {
		t.Fatalf("after truncate+append, recovered %v", got)
	}
}

func TestBitFlipTruncatesAtFlip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	mustAppend(t, l, "first")
	mustAppend(t, l, "second")
	l.Close()

	path := filepath.Join(dir, walName(1))
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0x40 // flip a bit inside the last record's payload
	os.WriteFile(path, raw, 0o644)

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if got := recordsAsStrings(rec); len(got) != 1 || got[0] != "first" {
		t.Fatalf("recovered %v, want just 'first'", got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected truncated bytes")
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	ob := obs.NewCollector()
	l, _ := openT(t, dir, Options{Obs: ob})
	mustAppend(t, l, "pre-1")
	mustAppend(t, l, "pre-2")
	if err := l.Snapshot([]byte("STATE")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	mustAppend(t, l, "post-1")
	if got := l.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	l.Close()

	// The old epoch's files are gone.
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("wal-1 still present: %v", err)
	}

	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if string(rec.Snapshot) != "STATE" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if got := recordsAsStrings(rec); len(got) != 1 || got[0] != "post-1" {
		t.Fatalf("tail records = %v", got)
	}
	if rec.Epoch != 2 {
		t.Fatalf("epoch = %d", rec.Epoch)
	}
	if n := ob.Counter(obs.CounterJournalSnapshots); n != 1 {
		t.Fatalf("snapshots counter = %d", n)
	}
}

func TestCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	l.Snapshot([]byte("STATE"))
	l.Close()

	path := filepath.Join(dir, snapName(2))
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestWalBeyondSnapshotEpochIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	mustAppend(t, l, "x")
	l.Close()
	// Fabricate a wal from epoch 7: its snapshot is missing, which no
	// crash ordering can produce.
	os.WriteFile(filepath.Join(dir, walName(7)), walMagic[:], 0o644)
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestBadWalMagicIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, walName(1)), []byte("NOTMAGIC-and-more"), 0o644)
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestTempSnapshotCleanedUp(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(dir, 0o755)
	os.WriteFile(filepath.Join(dir, "snap-0000000000000002.tmp"), []byte("partial"), 0o644)
	l, rec := openT(t, dir, Options{})
	defer l.Close()
	if rec.RemovedFiles != 1 {
		t.Fatalf("RemovedFiles = %d", rec.RemovedFiles)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000002.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp snapshot survived Open")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	// The rejection is not a crash: the log stays usable.
	mustAppend(t, l, "still-fine")
}

func TestPoisonedAfterInjectedCrash(t *testing.T) {
	dir := t.TempDir()
	fp := &Failpoints{}
	l, _ := openT(t, dir, Options{Fail: fp})
	mustAppend(t, l, "before")
	fp.Arm(1, 0)
	if err := l.Append([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append = %v, want ErrInjected", err)
	}
	if err := l.Append([]byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append after crash = %v, want ErrCrashed", err)
	}
	if err := l.Snapshot([]byte("s")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Snapshot after crash = %v, want ErrCrashed", err)
	}
	l.Close()
	// Recovery sees only the acked record.
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if got := recordsAsStrings(rec); len(got) != 1 || got[0] != "before" {
		t.Fatalf("recovered %v", got)
	}
}

// TestJournalCrashMatrix kills the journal at every I/O step of a fixed
// op sequence (appends around a snapshot compaction), with whole, torn,
// and dropped writes, and asserts recovery always yields a consistent
// prefix: every op acked before the crash survives, no garbage appears,
// and the log accepts appends again after reopening.
func TestJournalCrashMatrix(t *testing.T) {
	ops := func(l *Log) []error {
		var errs []error
		errs = append(errs, l.Append([]byte("a1")))
		errs = append(errs, l.Append([]byte("a2")))
		errs = append(errs, l.Snapshot([]byte("SNAP[a1 a2]")))
		errs = append(errs, l.Append([]byte("b1")))
		errs = append(errs, l.Append([]byte("b2")))
		return errs
	}
	// Expected cumulative journal contents after each op (as one string).
	want := []string{
		"|a1",
		"|a1|a2",
		"SNAP[a1 a2]",
		"SNAP[a1 a2]|b1",
		"SNAP[a1 a2]|b1|b2",
	}
	flatten := func(rec Recovery) string {
		s := string(rec.Snapshot) + "|"
		s += strings.Join(recordsAsStrings(rec), "|")
		return strings.TrimSuffix(s, "|")
	}

	// Dry run: count total I/O steps.
	fp := &Failpoints{}
	dryDir := t.TempDir()
	l, _ := openT(t, dryDir, Options{Fail: fp})
	fp.Arm(0, 0)
	for _, err := range ops(l) {
		if err != nil {
			t.Fatalf("dry run op failed: %v", err)
		}
	}
	steps := fp.Steps()
	l.Close()
	if steps < 10 {
		t.Fatalf("suspiciously few I/O steps: %d", steps)
	}

	for failAt := 1; failAt <= steps; failAt++ {
		for _, torn := range []float64{0, 0.5, 1} {
			name := fmt.Sprintf("failAt=%d/torn=%.1f", failAt, torn)
			dir := t.TempDir()
			mfp := &Failpoints{}
			ml, _ := openT(t, dir, Options{Fail: mfp})
			mfp.Arm(failAt, torn)
			errs := ops(ml)
			acked := -1 // last op that returned nil
			for i, err := range errs {
				if err == nil {
					acked = i
				} else {
					break
				}
			}
			fired, point := mfp.Fired()
			if !fired {
				t.Fatalf("%s: failpoint never fired", name)
			}
			ml.Close()

			mfp.Arm(0, 0) // disarm for recovery
			l2, rec, err := Open(dir, Options{Fail: mfp})
			if err != nil {
				t.Fatalf("%s (point %s): recovery failed: %v", name, point, err)
			}
			got := flatten(rec)
			// Recovery must be the acked prefix, or the acked prefix plus
			// the in-flight op (a crash after the data landed but before
			// the ack — e.g. during compaction cleanup — keeps the op).
			okStates := []string{want[acked+1]}
			if acked >= 0 {
				okStates = append(okStates, want[acked])
			} else {
				okStates = append(okStates, "")
			}
			matched := false
			for _, w := range okStates {
				if got == w {
					matched = true
				}
			}
			if !matched {
				t.Fatalf("%s (point %s): recovered %q, want one of %q", name, point, got, okStates)
			}
			// The reopened log must accept appends.
			if err := l2.Append([]byte("resumed")); err != nil {
				t.Fatalf("%s: append after recovery: %v", name, err)
			}
			l2.Close()
			l3, rec3 := openT(t, dir, Options{})
			tail := recordsAsStrings(rec3)
			if len(tail) == 0 || tail[len(tail)-1] != "resumed" {
				t.Fatalf("%s: post-recovery append lost: %v", name, tail)
			}
			l3.Close()
		}
	}
}

func TestSyncNeverStillRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Sync: SyncNever})
	for i := 0; i < 5; i++ {
		mustAppend(t, l, fmt.Sprintf("r%d", i))
	}
	l.Close() // Close still flushes
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}

func TestLargeRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	big := bytes.Repeat([]byte{0xab}, 1<<20)
	l, _ := openT(t, dir, Options{})
	if err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], big) {
		t.Fatal("large record did not round-trip")
	}
}
