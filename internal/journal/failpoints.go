package journal

import "sync"

// Failpoints is the crash-injection seam. Every I/O step in the log
// (writes, fsyncs, renames, creates, truncates) calls fire() with a named
// point; the seam counts steps, and when the armed step is reached the log
// "crashes": the step is skipped (writes may persist a torn prefix first)
// and the Log is poisoned so every later operation returns ErrCrashed —
// exactly what a killed process leaves on disk.
//
// A crash-matrix test drives it in two passes: a dry run (Arm not called,
// or armed past the end) executes the full op sequence and Steps() reports
// how many I/O steps it took; the matrix then replays the same sequence
// once per step with Arm(i, frac), and asserts recovery from each crash
// point. The zero value counts steps without ever firing.
type Failpoints struct {
	mu     sync.Mutex
	step   int
	failAt int // 1-based step to crash at; 0 = never
	torn   float64
	fired  bool
	last   string
}

// Arm schedules a crash at the failAt'th I/O step (1-based; 0 disarms).
// tornFrac ∈ [0,1] selects how much of a crashing write's buffer persists
// before the crash — 0 drops the write whole, 1 persists it whole but
// skips everything after (e.g. the fsync), values between leave a torn
// frame for recovery to truncate. Arm also resets the step counter.
func (fp *Failpoints) Arm(failAt int, tornFrac float64) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.step = 0
	fp.failAt = failAt
	fp.torn = tornFrac
	fp.fired = false
	fp.last = ""
}

// Steps reports how many I/O steps have run since the last Arm (or since
// construction). After a dry run this is the crash-matrix width.
func (fp *Failpoints) Steps() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.step
}

// Fired reports whether the armed crash has gone off, and at which point.
func (fp *Failpoints) Fired() (bool, string) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.fired, fp.last
}

// fire advances the step counter and decides whether this step crashes.
// For write points it returns how many bytes of the buffer to persist
// before crashing. Once fired, later calls return crash=true without
// advancing the counter (the process is "dead").
func (fp *Failpoints) fire(point string, writeLen int) (torn int, crash bool) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.fired {
		return 0, true
	}
	fp.step++
	if fp.failAt > 0 && fp.step == fp.failAt {
		fp.fired = true
		fp.last = point
		if writeLen > 0 {
			torn = int(float64(writeLen) * fp.torn)
			if torn > writeLen {
				torn = writeLen
			}
		}
		return torn, true
	}
	return 0, false
}
