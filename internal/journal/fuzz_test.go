package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the wal decoder via a real
// Open: truncated frames, bit-flipped headers, and garbage must never
// panic, and whatever prefix Open accepts must replay stably — reopening
// after an append yields exactly the recovered records plus the new one
// (no silent re-interpretation of the tail).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(walMagic[:])
	f.Add(append(append([]byte{}, walMagic[:]...), 0x00, 0x00, 0x00))
	f.Add(append(append([]byte{}, walMagic[:]...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0))
	f.Add([]byte("ANKWAL99 not the right version"))
	// A valid one-record file, built with the real framing.
	{
		dir := f.TempDir()
		l, _, err := Open(dir, Options{})
		if err == nil {
			l.Append([]byte("seed-record"))
			l.Close()
			if raw, err := os.ReadFile(filepath.Join(dir, walName(1))); err == nil {
				f.Add(raw)
				flipped := append([]byte{}, raw...)
				flipped[len(flipped)-1] ^= 0x01
				f.Add(flipped)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			return // corrupt-header rejection is a valid outcome
		}
		if err := l.Append([]byte("probe")); err != nil {
			t.Fatalf("append after fuzz-recovery: %v", err)
		}
		l.Close()

		l2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open failed after clean append: %v", err)
		}
		defer l2.Close()
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("replayed %d records, want %d+1", len(rec2.Records), len(rec.Records))
		}
		for i, r := range rec.Records {
			if !bytes.Equal(rec2.Records[i], r) {
				t.Fatalf("record %d changed between opens", i)
			}
		}
		if string(rec2.Records[len(rec2.Records)-1]) != "probe" {
			t.Fatal("appended record not last")
		}
		if rec2.TruncatedBytes != 0 {
			t.Fatalf("second open truncated %d bytes from a cleanly-written log", rec2.TruncatedBytes)
		}
	})
}
