// Package nidb implements the Resource Database — the paper's Network
// Information DataBase (§5.4): a device-level view of the network produced
// by the compiler, holding for every device a nested, device-independent
// attribute tree (hostnames, interfaces, protocol state) plus render
// metadata (which templates to use, where output files go, §5.5).
//
// The tree for one device is exactly the `node` context pushed into the
// configuration templates; the JSON serialisation mirrors the paper's §5.4
// listing.
package nidb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"autonetkit/internal/graph"
)

// Device is one network element's compiled state.
type Device struct {
	ID graph.ID
	// Data is the nested attribute tree pushed into templates as `node`.
	Data map[string]any
	// Digest, when non-zero, is the content address of the compile inputs
	// this record was built (or reused) from — set by the compile stage when
	// its cache is enabled. Downstream caches may key on it instead of
	// re-encoding Data, because equal digests guarantee equal records.
	Digest [32]byte
}

// NewDevice returns an empty device record.
func NewDevice(id graph.ID) *Device {
	return &Device{ID: id, Data: map[string]any{}}
}

// Set assigns a value at a dotted path, creating intermediate maps: e.g.
// Set("zebra.password", "1234").
func (d *Device) Set(path string, v any) error {
	parts := strings.Split(path, ".")
	cur := d.Data
	for i, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok {
			m := map[string]any{}
			cur[p] = m
			cur = m
			continue
		}
		m, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("nidb: %s: %q is a leaf (%T), cannot descend", d.ID, strings.Join(parts[:i+1], "."), next)
		}
		cur = m
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// MustSet is Set panicking on error; compiler-internal use where the path
// shape is static.
func (d *Device) MustSet(path string, v any) {
	if err := d.Set(path, v); err != nil {
		panic(err)
	}
}

// Get reads a value at a dotted path; ok is false when any component is
// absent.
func (d *Device) Get(path string) (any, bool) {
	parts := strings.Split(path, ".")
	var cur any = d.Data
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// GetString reads a string at a dotted path with a default.
func (d *Device) GetString(path, def string) string {
	if v, ok := d.Get(path); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// GetInt reads an int at a dotted path with a default.
func (d *Device) GetInt(path string, def int) int {
	if v, ok := d.Get(path); ok {
		if f, ok := graph.ToFloat(v); ok {
			return int(f)
		}
	}
	return def
}

// Hostname returns the device's hostname (set by the platform compiler).
func (d *Device) Hostname() string { return d.GetString("hostname", string(d.ID)) }

// Link is a device-level adjacency in the resource database: two devices
// sharing a collision domain, with their interface bindings. Deployment
// (lab.conf) and measurement both read these.
type Link struct {
	A, B   graph.ID // devices
	AIface string   // interface id on A (e.g. "eth0")
	BIface string   // interface id on B
	CD     graph.ID // collision domain id
}

// DB is the Resource Database: every compiled device plus the device-level
// topology, in deterministic order.
type DB struct {
	// ModelDigest, when non-zero, is the content address of the complete
	// compile input (every overlay, the IP allocation and the compile
	// options) this database was built — or restored — from. The compile
	// stage sets it when its cache is enabled; downstream whole-build caches
	// (the render stage's file-set cache) key on it, because equal model
	// digests guarantee an identical database.
	ModelDigest [32]byte

	devices map[graph.ID]*Device
	order   []graph.ID
	links   []Link
	// Lab holds per-(host,platform) lab-wide data (machine list, collision
	// domains, TAP subnet) used to render platform files such as Netkit's
	// lab.conf.
	labs map[string]map[string]any
}

// New returns an empty database.
func New() *DB {
	return &DB{devices: map[graph.ID]*Device{}, labs: map[string]map[string]any{}}
}

// AddDevice creates (or returns the existing) device record.
func (db *DB) AddDevice(id graph.ID) *Device {
	if d, ok := db.devices[id]; ok {
		return d
	}
	d := NewDevice(id)
	db.devices[id] = d
	db.order = append(db.order, id)
	return d
}

// InstallDevice inserts a device record built elsewhere (e.g. by a compile
// worker), replacing any existing record with the same ID while preserving
// the original insertion position. Callers install records serially, in the
// order the devices should iterate.
func (db *DB) InstallDevice(d *Device) {
	if _, ok := db.devices[d.ID]; !ok {
		db.order = append(db.order, d.ID)
	}
	db.devices[d.ID] = d
}

// Device returns the record for id, or nil when absent.
func (db *DB) Device(id graph.ID) *Device { return db.devices[id] }

// Devices returns all records in insertion order.
func (db *DB) Devices() []*Device {
	out := make([]*Device, 0, len(db.order))
	for _, id := range db.order {
		out = append(out, db.devices[id])
	}
	return out
}

// DevicesWhere returns devices whose tree value at path equals want.
func (db *DB) DevicesWhere(path string, want any) []*Device {
	var out []*Device
	for _, d := range db.Devices() {
		if v, ok := d.Get(path); ok && fmt.Sprint(v) == fmt.Sprint(want) {
			out = append(out, d)
		}
	}
	return out
}

// Routers returns the devices with device_type router.
func (db *DB) Routers() []*Device { return db.DevicesWhere("device_type", "router") }

// Len returns the device count.
func (db *DB) Len() int { return len(db.order) }

// AddLink records a device-level adjacency.
func (db *DB) AddLink(l Link) { db.links = append(db.links, l) }

// Links returns the device-level adjacencies in insertion order.
func (db *DB) Links() []Link {
	out := make([]Link, len(db.links))
	copy(out, db.links)
	return out
}

// LinksOf returns the links incident to a device.
func (db *DB) LinksOf(id graph.ID) []Link {
	var out []Link
	for _, l := range db.links {
		if l.A == id || l.B == id {
			out = append(out, l)
		}
	}
	return out
}

// Lab returns (creating if needed) the lab-wide data map for a
// (host, platform) pair.
func (db *DB) Lab(host, platform string) map[string]any {
	key := host + "/" + platform
	m, ok := db.labs[key]
	if !ok {
		m = map[string]any{"host": host, "platform": platform}
		db.labs[key] = m
	}
	return m
}

// LabKeys returns the (host, platform) keys in sorted order.
func (db *DB) LabKeys() []string {
	out := make([]string, 0, len(db.labs))
	for k := range db.labs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarshalJSON serialises the database deterministically (devices in
// insertion order).
func (db *DB) MarshalJSON() ([]byte, error) {
	type devOut struct {
		ID   string         `json:"id"`
		Data map[string]any `json:"data"`
	}
	type linkOut struct {
		A, B, AIface, BIface, CD string
	}
	out := struct {
		Devices []devOut  `json:"devices"`
		Links   []linkOut `json:"links"`
	}{}
	for _, d := range db.Devices() {
		out.Devices = append(out.Devices, devOut{ID: string(d.ID), Data: d.Data})
	}
	for _, l := range db.links {
		out.Links = append(out.Links, linkOut{string(l.A), string(l.B), l.AIface, l.BIface, string(l.CD)})
	}
	return json.MarshalIndent(out, "", "  ")
}

// DumpDevice renders one device's tree as indented JSON (the paper's §5.4
// listing format).
func (db *DB) DumpDevice(id graph.ID) (string, error) {
	d := db.Device(id)
	if d == nil {
		return "", fmt.Errorf("nidb: no device %q", id)
	}
	b, err := json.MarshalIndent(d.Data, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
