package nidb

import (
	"encoding/json"
	"strings"
	"testing"

	"autonetkit/internal/graph"
)

func TestSetGetPaths(t *testing.T) {
	d := NewDevice("r1")
	if err := d.Set("zebra.password", "1234"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("zebra.hostname", "as100r1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("ospf.process_id", 1); err != nil {
		t.Fatal(err)
	}
	v, ok := d.Get("zebra.password")
	if !ok || v != "1234" {
		t.Errorf("get = %v, %v", v, ok)
	}
	if d.GetString("zebra.hostname", "") != "as100r1" {
		t.Error("GetString wrong")
	}
	if d.GetInt("ospf.process_id", 0) != 1 {
		t.Error("GetInt wrong")
	}
	if _, ok := d.Get("zebra.missing"); ok {
		t.Error("missing leaf found")
	}
	if _, ok := d.Get("nothere.at.all"); ok {
		t.Error("missing path found")
	}
	if d.GetString("missing", "dflt") != "dflt" || d.GetInt("missing", 9) != 9 {
		t.Error("defaults wrong")
	}
}

func TestSetThroughLeafErrors(t *testing.T) {
	d := NewDevice("r1")
	d.MustSet("a", 1)
	if err := d.Set("a.b", 2); err == nil {
		t.Error("descending through leaf accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSet should panic")
		}
	}()
	d.MustSet("a.b", 2)
}

func TestHostnameDefault(t *testing.T) {
	d := NewDevice("r9")
	if d.Hostname() != "r9" {
		t.Error("hostname default wrong")
	}
	d.MustSet("hostname", "as1r9")
	if d.Hostname() != "as1r9" {
		t.Error("hostname override wrong")
	}
}

func TestDBDevices(t *testing.T) {
	db := New()
	db.AddDevice("r2")
	db.AddDevice("r1")
	again := db.AddDevice("r2") // idempotent
	if db.Len() != 2 {
		t.Fatalf("len = %d", db.Len())
	}
	if again != db.Device("r2") {
		t.Error("AddDevice not idempotent")
	}
	devs := db.Devices()
	if devs[0].ID != "r2" || devs[1].ID != "r1" {
		t.Error("insertion order lost")
	}
	if db.Device("zz") != nil {
		t.Error("absent device non-nil")
	}
}

func TestDevicesWhere(t *testing.T) {
	db := New()
	db.AddDevice("r1").MustSet("device_type", "router")
	db.AddDevice("s1").MustSet("device_type", "server")
	db.AddDevice("r2").MustSet("device_type", "router")
	if got := len(db.Routers()); got != 2 {
		t.Errorf("routers = %d", got)
	}
	if got := len(db.DevicesWhere("device_type", "server")); got != 1 {
		t.Errorf("servers = %d", got)
	}
}

func TestLinks(t *testing.T) {
	db := New()
	db.AddLink(Link{A: "r1", B: "r2", AIface: "eth0", BIface: "eth1", CD: "cd0"})
	db.AddLink(Link{A: "r2", B: "r3", AIface: "eth0", BIface: "eth0", CD: "cd1"})
	if len(db.Links()) != 2 {
		t.Fatal("links lost")
	}
	of := db.LinksOf("r2")
	if len(of) != 2 {
		t.Errorf("LinksOf(r2) = %d", len(of))
	}
	if len(db.LinksOf("r1")) != 1 || len(db.LinksOf("zz")) != 0 {
		t.Error("LinksOf filter wrong")
	}
}

func TestLabs(t *testing.T) {
	db := New()
	lab := db.Lab("localhost", "netkit")
	lab["machines"] = []any{"r1"}
	again := db.Lab("localhost", "netkit")
	if len(again["machines"].([]any)) != 1 {
		t.Error("lab data not shared")
	}
	db.Lab("hostB", "netkit")
	keys := db.LabKeys()
	if len(keys) != 2 || keys[0] != "hostB/netkit" {
		t.Errorf("lab keys = %v", keys)
	}
}

func TestMarshalJSON(t *testing.T) {
	db := New()
	d := db.AddDevice("as100r1")
	d.MustSet("zebra.hostname", "as100r1")
	d.MustSet("ospf.process_id", 1)
	db.AddLink(Link{A: "as100r1", B: "as100r2", AIface: "eth1", BIface: "eth0", CD: "cd0"})
	b, err := json.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"as100r1"`, `"process_id":1`, `"eth1"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestDumpDevice(t *testing.T) {
	db := New()
	d := db.AddDevice("as100r1")
	d.MustSet("zebra.password", "1234")
	s, err := db.DumpDevice("as100r1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `"password": "1234"`) {
		t.Errorf("dump = %s", s)
	}
	if _, err := db.DumpDevice("zz"); err == nil {
		t.Error("dump of absent device accepted")
	}
}

func TestDeterministicMarshal(t *testing.T) {
	build := func() *DB {
		db := New()
		for _, id := range []string{"r3", "r1", "r2"} {
			d := db.AddDevice(graphID(id))
			d.MustSet("hostname", id)
			d.MustSet("bgp.asn", 100)
		}
		return db
	}
	a, _ := json.Marshal(build())
	b, _ := json.Marshal(build())
	if string(a) != string(b) {
		t.Error("marshal not deterministic")
	}
}

func graphID(s string) graph.ID { return graph.ID(s) }
