// Package retry provides the shared bounded-retry policy used wherever
// the system talks to flaky substrate: per-host boot attempts in pool
// deployments (deploy.RunPool) and live VM re-placement during cluster
// drains (sched.Cluster.Drain). Exponential backoff with deterministic
// jitter — the jitter is a hash of (host, attempt), so spreading retries
// never costs reproducibility.
package retry

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Do when the host's circuit breaker is
// open: the operation was not attempted at all.
var ErrCircuitOpen = errors.New("retry: circuit open")

// ExhaustedError is returned by Do when every permitted attempt failed.
// Unwrap exposes the last attempt's error.
type ExhaustedError struct {
	Host     string
	Attempts int  // attempts actually made
	Opened   bool // true when the breaker opened mid-loop and cut retries short
	Last     error
}

func (e *ExhaustedError) Error() string {
	if e.Opened {
		return fmt.Sprintf("retry: host %s: circuit opened after %d attempts: %v", e.Host, e.Attempts, e.Last)
	}
	return fmt.Sprintf("retry: host %s: %d attempts exhausted: %v", e.Host, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// Policy governs bounded retry attempts: exponential backoff with
// deterministic jitter and a per-attempt timeout. The zero value selects
// the defaults.
type Policy struct {
	// MaxAttempts is the number of attempts before the operation is
	// declared failed (<= 0 selects 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it (<= 0 selects 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (<= 0 selects 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay by up to this fraction of itself (0..1),
	// derived from a hash of (host, attempt) so runs are reproducible.
	// Negative disables; zero selects 0.5.
	Jitter float64
	// AttemptTimeout bounds one attempt; an attempt still running when
	// it expires counts as a failure (0 disables the bound).
	AttemptTimeout time.Duration
	// Sleep is the backoff sleep (test seam; nil selects time.Sleep).
	Sleep func(time.Duration)
	// After is the attempt-timeout clock (test seam; nil selects
	// time.After).
	After func(time.Duration) <-chan time.Time
	// Breaker, when set, short-circuits attempts against hosts whose
	// circuit is open and feeds attempt outcomes back into it. Shared
	// across subsystems so one condemned host stops burning every retry
	// budget at once.
	Breaker *BreakerSet
	// OnRetry, when set, observes each failed attempt before the
	// backoff sleep (attempt is 1-based). Not called for attempts cut
	// short by context cancellation.
	OnRetry func(host string, attempt int, err error)
}

// Attempts returns the effective attempt bound (MaxAttempts, defaulted).
func (p Policy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	case p.Jitter > 1:
		return 1
	}
	return p.Jitter
}

// Delay returns the backoff to sleep after the given failed attempt
// (1-based) on the given host: base * 2^(attempt-1), capped at MaxDelay,
// stretched by the deterministic jitter fraction. Spreading retries
// prevents a pool of simultaneously flaky hosts from thundering back in
// lockstep, while the hash keeps every run byte-reproducible.
func (p Policy) Delay(host string, attempt int) time.Duration {
	d := p.base()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.cap() {
			d = p.cap()
			break
		}
	}
	if j := p.jitter(); j > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", host, attempt)
		frac := float64(h.Sum64()%1000) / 1000.0 // deterministic in [0,1)
		d += time.Duration(float64(d) * j * frac)
	}
	if d > p.cap() {
		d = p.cap()
	}
	return d
}

// Do runs fn under the policy: up to Attempts() tries against the named
// host, backoff with Delay between failures, circuit-breaker gating when
// Breaker is set. fn receives the 1-based attempt number. Returns nil on
// the first success, the context's error when cancelled (a cancelled
// attempt is not charged to the host's breaker), ErrCircuitOpen
// (wrapped) when the breaker rejects the host before the first attempt,
// or an *ExhaustedError carrying the last failure otherwise.
func (p Policy) Do(ctx context.Context, host string, fn func(attempt int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Breaker != nil && !p.Breaker.Allow(host) {
		return fmt.Errorf("%w: host %s", ErrCircuitOpen, host)
	}
	var last error
	for attempt := 1; attempt <= p.Attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		last = fn(attempt)
		if last == nil {
			if p.Breaker != nil {
				p.Breaker.Success(host)
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if p.Breaker != nil {
			p.Breaker.Failure(host)
		}
		if p.OnRetry != nil {
			p.OnRetry(host, attempt, last)
		}
		if p.Breaker != nil && !p.Breaker.Allow(host) {
			return &ExhaustedError{Host: host, Attempts: attempt, Opened: true, Last: last}
		}
		if attempt < p.Attempts() {
			if err := p.SleepCtx(ctx, p.Delay(host, attempt)); err != nil {
				return err
			}
		}
	}
	return &ExhaustedError{Host: host, Attempts: p.Attempts(), Last: last}
}

// SleepFor sleeps the given backoff through the policy's sleep seam.
func (p Policy) SleepFor(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// AfterChan returns a timer channel for the given duration through the
// policy's clock seam.
func (p Policy) AfterChan(d time.Duration) <-chan time.Time {
	if p.After != nil {
		return p.After(d)
	}
	return time.After(d)
}

// SleepCtx sleeps the given backoff but aborts early when the context is
// cancelled, returning ctx.Err(). A drain or pool boot mid-backoff stops
// within one select instead of finishing the sleep. The Sleep seam is
// honoured when set (tests that stub Sleep stay instantaneous), but the
// context is still checked before and after the stubbed sleep.
func (p Policy) SleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AfterChanCtx is the context-aware AfterChan variant: the returned stop
// function releases the timer early, and the channel also fires when the
// context is cancelled (so a select on it wakes on either expiry or
// cancellation). The After seam is honoured when set.
func (p Policy) AfterChanCtx(ctx context.Context, d time.Duration) (<-chan time.Time, func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan time.Time, 1)
	done := make(chan struct{})
	src := p.AfterChan(d)
	go func() {
		select {
		case t := <-src:
			out <- t
		case <-ctx.Done():
			out <- time.Time{}
		case <-done:
		}
	}()
	var once sync.Once
	return out, func() { once.Do(func() { close(done) }) }
}
