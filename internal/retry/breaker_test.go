package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock drives breaker deadlines without wall time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(0, 0)} }
func instantPolicy(attempts int) Policy {
	return Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}
func failN(n int) func(attempt int) error {
	calls := 0
	return func(attempt int) error {
		calls++
		if calls <= n {
			return errors.New("boom")
		}
		return nil
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	bs := NewBreakerSet(BreakerConfig{FailAfter: 3, OpenFor: 10 * time.Second, ReopenJitter: -1, Now: clk.now})
	bs.OnTransition = func(host string, from, to BreakerState) {
		transitions = append(transitions, host+":"+string(from)+">"+string(to))
	}

	for i := 0; i < 2; i++ {
		bs.Failure("h1")
	}
	if st := bs.State("h1"); st != BreakerClosed {
		t.Fatalf("state after 2 failures = %s", st)
	}
	bs.Failure("h1")
	if st := bs.State("h1"); st != BreakerOpen {
		t.Fatalf("state after 3 failures = %s", st)
	}
	if bs.Allow("h1") {
		t.Fatal("open breaker allowed an attempt")
	}

	// A success on another host does not touch h1.
	bs.Success("h2")
	if st := bs.State("h1"); st != BreakerOpen {
		t.Fatalf("h1 state after h2 success = %s", st)
	}

	// Past the reopen deadline the breaker admits a half-open probe.
	clk.advance(11 * time.Second)
	if !bs.Allow("h1") {
		t.Fatal("breaker did not half-open after the window")
	}
	if st := bs.State("h1"); st != BreakerHalfOpen {
		t.Fatalf("state after reopen = %s", st)
	}
	// The probe succeeds: closed again.
	bs.Success("h1")
	if st := bs.State("h1"); st != BreakerClosed {
		t.Fatalf("state after half-open success = %s", st)
	}
	want := []string{"h1:closed>open", "h1:open>half-open", "h1:half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	bs := NewBreakerSet(BreakerConfig{FailAfter: 1, OpenFor: 5 * time.Second, ReopenJitter: -1, Now: clk.now})
	bs.Failure("h1")
	clk.advance(6 * time.Second)
	if !bs.Allow("h1") {
		t.Fatal("no half-open probe admitted")
	}
	bs.Failure("h1")
	if st := bs.State("h1"); st != BreakerOpen {
		t.Fatalf("state after failed probe = %s", st)
	}
	if bs.Allow("h1") {
		t.Fatal("re-opened breaker allowed an attempt immediately")
	}
}

// TestBreakerReopenJitterDeterministic: the reopen window is a pure
// function of (host, generation) — two sets with the same config agree,
// and successive generations of the same host differ (spread).
func TestBreakerReopenJitterDeterministic(t *testing.T) {
	cfg := BreakerConfig{FailAfter: 1, OpenFor: 10 * time.Second, ReopenJitter: 1}
	a, b := NewBreakerSet(cfg), NewBreakerSet(cfg)
	if d1, d2 := a.reopenDelay("h1", 1), b.reopenDelay("h1", 1); d1 != d2 {
		t.Fatalf("reopen delay not deterministic: %v vs %v", d1, d2)
	}
	if a.reopenDelay("h1", 1) == a.reopenDelay("h1", 2) &&
		a.reopenDelay("h1", 2) == a.reopenDelay("h1", 3) {
		t.Fatal("reopen delay does not spread across generations")
	}
	for gen := 1; gen <= 3; gen++ {
		d := a.reopenDelay("h1", gen)
		if d < 10*time.Second || d >= 20*time.Second {
			t.Fatalf("generation %d: reopen delay %v outside [OpenFor, 2*OpenFor)", gen, d)
		}
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	p := instantPolicy(3)
	var retried []int
	p.OnRetry = func(host string, attempt int, err error) { retried = append(retried, attempt) }
	if err := p.Do(context.Background(), "h1", failN(2)); err != nil {
		t.Fatalf("Do = %v", err)
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Fatalf("OnRetry attempts = %v", retried)
	}
}

func TestDoExhausted(t *testing.T) {
	p := instantPolicy(3)
	err := p.Do(context.Background(), "h1", failN(99))
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("Do = %v, want ExhaustedError", err)
	}
	if ex.Host != "h1" || ex.Attempts != 3 || ex.Opened {
		t.Fatalf("ExhaustedError = %+v", ex)
	}
	if ex.Last == nil || ex.Last.Error() != "boom" {
		t.Fatalf("Last = %v", ex.Last)
	}
}

func TestDoCircuitShortCircuits(t *testing.T) {
	clk := newFakeClock()
	p := instantPolicy(2)
	p.Breaker = NewBreakerSet(BreakerConfig{FailAfter: 2, OpenFor: time.Minute, ReopenJitter: -1, Now: clk.now})

	// First Do: two failures open the breaker mid-loop.
	err := p.Do(context.Background(), "h1", failN(99))
	var ex *ExhaustedError
	if !errors.As(err, &ex) || !ex.Opened {
		t.Fatalf("Do = %v, want ExhaustedError with Opened", err)
	}

	// Second Do: rejected outright, fn never runs.
	calls := 0
	err = p.Do(context.Background(), "h1", func(int) error { calls++; return nil })
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Do on open circuit = %v", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times through an open circuit", calls)
	}

	// After the window, the half-open probe runs and a success closes.
	clk.advance(2 * time.Minute)
	if err := p.Do(context.Background(), "h1", func(int) error { return nil }); err != nil {
		t.Fatalf("half-open Do = %v", err)
	}
	if st := p.Breaker.State("h1"); st != BreakerClosed {
		t.Fatalf("state after successful probe = %s", st)
	}
}

func TestDoCancellationNotChargedToBreaker(t *testing.T) {
	clk := newFakeClock()
	p := instantPolicy(5)
	p.Breaker = NewBreakerSet(BreakerConfig{FailAfter: 1, Now: clk.now})
	ctx, cancel := context.WithCancel(context.Background())
	err := p.Do(ctx, "h1", func(int) error {
		cancel() // the attempt is cancelled mid-flight
		return errors.New("interrupted")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if st := p.Breaker.State("h1"); st != BreakerClosed {
		t.Fatalf("cancelled attempt condemned the host: %s", st)
	}
}
