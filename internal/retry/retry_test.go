package retry

import (
	"fmt"
	"testing"
	"time"
)

func TestPolicyDelay(t *testing.T) {
	exact := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 800 * time.Millisecond,
		5: time.Second, // capped
		9: time.Second,
	} {
		if got := exact.Delay("h1", attempt); got != want {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, want)
		}
	}

	jittered := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	if a, b := jittered.Delay("h1", 1), jittered.Delay("h1", 1); a != b {
		t.Errorf("jittered delay not deterministic: %v vs %v", a, b)
	}
	base := 100 * time.Millisecond
	if d := jittered.Delay("h1", 1); d < base || d > base+base/2 {
		t.Errorf("jittered delay %v outside [base, base*1.5]", d)
	}
	// The cap holds even after jitter is added.
	if d := jittered.Delay("h1", 9); d > time.Second {
		t.Errorf("jittered delay %v exceeds cap", d)
	}
}

func TestPolicyDefaults(t *testing.T) {
	var zero Policy
	if zero.Attempts() != 3 {
		t.Errorf("default attempts = %d", zero.Attempts())
	}
	if d := zero.Delay("h", 1); d < 50*time.Millisecond || d > 75*time.Millisecond {
		t.Errorf("default first delay = %v", d)
	}
	if got := (Policy{MaxAttempts: 7}).Attempts(); got != 7 {
		t.Errorf("attempts = %d", got)
	}
}

// TestPolicyDelayEdgeCases covers the corners the production callers
// never hit but fuzzers and operators do: empty and non-ASCII host
// names, attempt 0, and the jitter envelope at its maximum.
func TestPolicyDelayEdgeCases(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 1.0}
	for _, host := range []string{"", "höst-ü", "ホスト01", "h/with/slashes"} {
		a, b := p.Delay(host, 1), p.Delay(host, 1)
		if a != b {
			t.Errorf("host %q: delay not deterministic: %v vs %v", host, a, b)
		}
		// Jitter: 1.0 means [base, 2*base).
		base := 100 * time.Millisecond
		if a < base || a >= 2*base {
			t.Errorf("host %q: delay %v outside [base, 2*base)", host, a)
		}
	}

	// Attempt 0 (and negatives) never double the base and stay inside
	// the same jitter envelope instead of underflowing.
	for _, attempt := range []int{0, -1, -7} {
		d := p.Delay("h1", attempt)
		if d < 100*time.Millisecond || d > time.Second {
			t.Errorf("attempt %d: delay %v outside [base, cap]", attempt, d)
		}
	}

	// Jitter above 1 clamps to 1; the cap still holds.
	wild := Policy{BaseDelay: 900 * time.Millisecond, MaxDelay: time.Second, Jitter: 5}
	if d := wild.Delay("h1", 1); d > time.Second {
		t.Errorf("clamped jitter exceeds cap: %v", d)
	}

	// Different hosts spread: at least two distinct delays among a pool.
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[p.Delay(fmt.Sprintf("h%02d", i), 1)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter does not spread delays across hosts")
	}
}

func TestPolicySeams(t *testing.T) {
	var slept time.Duration
	p := Policy{Sleep: func(d time.Duration) { slept = d }}
	p.SleepFor(42 * time.Millisecond)
	if slept != 42*time.Millisecond {
		t.Errorf("sleep seam got %v", slept)
	}
	ch := make(chan time.Time, 1)
	p.After = func(time.Duration) <-chan time.Time { return ch }
	if p.AfterChan(time.Hour) != (<-chan time.Time)(ch) {
		t.Error("after seam not used")
	}
}
