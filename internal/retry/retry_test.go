package retry

import (
	"testing"
	"time"
)

func TestPolicyDelay(t *testing.T) {
	exact := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 800 * time.Millisecond,
		5: time.Second, // capped
		9: time.Second,
	} {
		if got := exact.Delay("h1", attempt); got != want {
			t.Errorf("attempt %d: delay = %v, want %v", attempt, got, want)
		}
	}

	jittered := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	if a, b := jittered.Delay("h1", 1), jittered.Delay("h1", 1); a != b {
		t.Errorf("jittered delay not deterministic: %v vs %v", a, b)
	}
	base := 100 * time.Millisecond
	if d := jittered.Delay("h1", 1); d < base || d > base+base/2 {
		t.Errorf("jittered delay %v outside [base, base*1.5]", d)
	}
	// The cap holds even after jitter is added.
	if d := jittered.Delay("h1", 9); d > time.Second {
		t.Errorf("jittered delay %v exceeds cap", d)
	}
}

func TestPolicyDefaults(t *testing.T) {
	var zero Policy
	if zero.Attempts() != 3 {
		t.Errorf("default attempts = %d", zero.Attempts())
	}
	if d := zero.Delay("h", 1); d < 50*time.Millisecond || d > 75*time.Millisecond {
		t.Errorf("default first delay = %v", d)
	}
	if got := (Policy{MaxAttempts: 7}).Attempts(); got != 7 {
		t.Errorf("attempts = %d", got)
	}
}

func TestPolicySeams(t *testing.T) {
	var slept time.Duration
	p := Policy{Sleep: func(d time.Duration) { slept = d }}
	p.SleepFor(42 * time.Millisecond)
	if slept != 42*time.Millisecond {
		t.Errorf("sleep seam got %v", slept)
	}
	ch := make(chan time.Time, 1)
	p.After = func(time.Duration) <-chan time.Time { return ch }
	if p.AfterChan(time.Hour) != (<-chan time.Time)(ch) {
		t.Error("after seam not used")
	}
}
