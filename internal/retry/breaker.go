package retry

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState string

const (
	// BreakerClosed passes attempts through and counts consecutive
	// failures.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen rejects attempts outright until the reopen deadline.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen lets probe attempts through; a success closes the
	// breaker, a failure re-opens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes a BreakerSet. The zero value selects the defaults.
type BreakerConfig struct {
	// FailAfter is the number of consecutive failures that opens a
	// host's breaker (<= 0 selects 5).
	FailAfter int
	// OpenFor is the base open window before the breaker moves to
	// half-open (<= 0 selects 30s).
	OpenFor time.Duration
	// ReopenJitter stretches each open window by up to this fraction of
	// OpenFor, derived from a hash of (host, generation) so repeated
	// openings of the same host spread deterministically rather than
	// re-probing in lockstep. Negative disables; zero selects 0.5.
	ReopenJitter float64
	// HalfOpenSuccesses is the number of consecutive half-open probe
	// successes required to close the breaker (<= 0 selects 1).
	HalfOpenSuccesses int
	// Now is the clock seam (nil selects time.Now). Tests drive the
	// breaker with a fake clock; no wall-clock leaks into behaviour.
	Now func() time.Time
}

func (c BreakerConfig) failAfter() int {
	if c.FailAfter <= 0 {
		return 5
	}
	return c.FailAfter
}

func (c BreakerConfig) openFor() time.Duration {
	if c.OpenFor <= 0 {
		return 30 * time.Second
	}
	return c.OpenFor
}

func (c BreakerConfig) reopenJitter() float64 {
	switch {
	case c.ReopenJitter < 0:
		return 0
	case c.ReopenJitter == 0:
		return 0.5
	case c.ReopenJitter > 1:
		return 1
	}
	return c.ReopenJitter
}

func (c BreakerConfig) halfOpenSuccesses() int {
	if c.HalfOpenSuccesses <= 0 {
		return 1
	}
	return c.HalfOpenSuccesses
}

func (c BreakerConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// breaker is the per-host state machine.
type breaker struct {
	state      BreakerState
	fails      int       // consecutive failures while closed
	oks        int       // consecutive successes while half-open
	generation int       // how many times this breaker has opened
	openUntil  time.Time // when an open breaker admits a half-open probe
}

// BreakerSet holds one circuit breaker per host. It is safe for
// concurrent use; deploy pool boots and sched migrations share one set
// so a host condemned by either stops burning both retry budgets.
type BreakerSet struct {
	cfg BreakerConfig
	// OnTransition, when set, observes every state change. Called
	// without the set's lock held.
	OnTransition func(host string, from, to BreakerState)

	mu sync.Mutex
	m  map[string]*breaker
}

// NewBreakerSet builds an empty breaker set with the given config.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*breaker)}
}

func (s *BreakerSet) get(host string) *breaker {
	b, ok := s.m[host]
	if !ok {
		b = &breaker{state: BreakerClosed}
		s.m[host] = b
	}
	return b
}

// reopenDelay is the FNV-jittered open window for the given host and
// opening generation: OpenFor * (1 + jitter*frac) with frac a
// deterministic hash in [0,1). Same host, same generation, same delay —
// reproducible across runs, spread across hosts.
func (s *BreakerSet) reopenDelay(host string, generation int) time.Duration {
	d := s.cfg.openFor()
	if j := s.cfg.reopenJitter(); j > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d", host, generation)
		frac := float64(h.Sum64()%1000) / 1000.0
		d += time.Duration(float64(d) * j * frac)
	}
	return d
}

// Allow reports whether an attempt against the host may proceed. An
// open breaker past its reopen deadline moves to half-open and admits
// the probe.
func (s *BreakerSet) Allow(host string) bool {
	s.mu.Lock()
	b := s.get(host)
	switch b.state {
	case BreakerOpen:
		if s.cfg.now().Before(b.openUntil) {
			s.mu.Unlock()
			return false
		}
		b.state = BreakerHalfOpen
		b.oks = 0
		s.mu.Unlock()
		s.notify(host, BreakerOpen, BreakerHalfOpen)
		return true
	default:
		s.mu.Unlock()
		return true
	}
}

// Success records a successful attempt against the host.
func (s *BreakerSet) Success(host string) {
	s.mu.Lock()
	b := s.get(host)
	switch b.state {
	case BreakerHalfOpen:
		b.oks++
		if b.oks >= s.cfg.halfOpenSuccesses() {
			b.state = BreakerClosed
			b.fails, b.oks = 0, 0
			s.mu.Unlock()
			s.notify(host, BreakerHalfOpen, BreakerClosed)
			return
		}
	default:
		b.fails = 0
	}
	s.mu.Unlock()
}

// Failure records a failed attempt against the host, opening the
// breaker when the consecutive-failure threshold is reached (or
// immediately when a half-open probe fails).
func (s *BreakerSet) Failure(host string) {
	s.mu.Lock()
	b := s.get(host)
	switch b.state {
	case BreakerHalfOpen:
		s.openLocked(host, b, BreakerHalfOpen)
		return // openLocked unlocks
	case BreakerClosed:
		b.fails++
		if b.fails >= s.cfg.failAfter() {
			s.openLocked(host, b, BreakerClosed)
			return // openLocked unlocks
		}
	}
	s.mu.Unlock()
}

// openLocked transitions to open and releases the lock.
func (s *BreakerSet) openLocked(host string, b *breaker, from BreakerState) {
	b.generation++
	b.state = BreakerOpen
	b.fails, b.oks = 0, 0
	b.openUntil = s.cfg.now().Add(s.reopenDelay(host, b.generation))
	s.mu.Unlock()
	s.notify(host, from, BreakerOpen)
}

func (s *BreakerSet) notify(host string, from, to BreakerState) {
	if s.OnTransition != nil && from != to {
		s.OnTransition(host, from, to)
	}
}

// State returns the host's current breaker state (closed for hosts
// never seen). It does not advance open → half-open; Allow does.
func (s *BreakerSet) State(host string) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[host]; ok {
		return b.state
	}
	return BreakerClosed
}

// Reset forgets the host's breaker entirely (e.g. after an operator
// replaces the hardware).
func (s *BreakerSet) Reset(host string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, host)
}
