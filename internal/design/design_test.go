package design

import (
	"sort"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
)

// fig5 builds the paper's Fig. 5 input: 5 routers, ASN {1,1,1,1,2}.
func fig5(t *testing.T) *core.ANM {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	return anm
}

func edgeSet(o *core.Overlay) map[string]bool {
	out := map[string]bool{}
	for _, e := range o.Edges() {
		out[string(e.SrcID())+"-"+string(e.DstID())] = true
	}
	return out
}

// E1 (part): eq. (1) — exact OSPF edge set from Fig. 5a.
func TestFig5OSPFRule(t *testing.T) {
	anm := fig5(t)
	ospf, err := OSPF(anm)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"r1-r2", "r1-r3", "r2-r4", "r3-r4"}
	got := edgeSet(ospf)
	if len(got) != len(want) {
		t.Fatalf("ospf edges = %v, want %v", got, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing ospf edge %s", w)
		}
	}
	// Defaults.
	for _, e := range ospf.Edges() {
		if e.GetInt(AttrCost, 0) != 1 || e.GetInt(AttrArea, -1) != 0 {
			t.Errorf("edge %v defaults wrong: cost=%v area=%v", e, e.Get(AttrCost), e.Get(AttrArea))
		}
	}
	// All AS1 routers are backbone (area 0 edges); r5 has no ospf edge.
	for _, id := range []graph.ID{"r1", "r2", "r3", "r4"} {
		if !ospf.Node(id).GetBool(AttrBackbone) {
			t.Errorf("%s not marked backbone", id)
		}
	}
	if ospf.Node("r5").GetBool(AttrBackbone) {
		t.Error("isolated r5 marked backbone")
	}
}

// E1 (part): eq. (2) — exact iBGP session set from Fig. 5c.
func TestFig5IBGPFullMeshRule(t *testing.T) {
	anm := fig5(t)
	ibgp, err := IBGPFullMesh(anm)
	if err != nil {
		t.Fatal(err)
	}
	// Paper lists 5 undirected pairs plus r3-r4 implied by N x N; the
	// directed overlay holds both directions of each of the 6 AS1 pairs.
	if ibgp.NumEdges() != 12 {
		t.Fatalf("ibgp sessions = %d, want 12 directed", ibgp.NumEdges())
	}
	undirected := map[string]bool{}
	for _, e := range ibgp.Edges() {
		a, b := string(e.SrcID()), string(e.DstID())
		if a > b {
			a, b = b, a
		}
		undirected[a+"-"+b] = true
		if e.GetString(AttrSessionType, "") != SessionPeer {
			t.Errorf("session %v type = %q", e, e.Get(AttrSessionType))
		}
	}
	var got []string
	for k := range undirected {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{"r1-r2", "r1-r3", "r1-r4", "r2-r3", "r2-r4", "r3-r4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ibgp pairs = %v, want %v", got, want)
	}
}

// E1 (part): eq. (3) — exact eBGP session set from Fig. 5d.
func TestFig5EBGPRule(t *testing.T) {
	anm := fig5(t)
	ebgp, err := EBGP(anm)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"r3-r5", "r4-r5", "r5-r3", "r5-r4"}
	got := edgeSet(ebgp)
	if len(got) != len(want) {
		t.Fatalf("ebgp edges = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing ebgp session %s", w)
		}
	}
	if !ebgp.Directed() {
		t.Error("ebgp overlay must be directed")
	}
}

func TestBuildPhy(t *testing.T) {
	anm := fig5(t)
	in := anm.Overlay(core.OverlayInput)
	in.AddNode("virt", graph.Attrs{core.AttrDeviceType: core.DeviceRouter})
	in.AddEdge("r1", "virt", graph.Attrs{"type": "virtual"})
	phy, err := BuildPhy(anm)
	if err != nil {
		t.Fatal(err)
	}
	if phy.NumNodes() != 6 {
		t.Errorf("phy nodes = %d", phy.NumNodes())
	}
	if phy.NumEdges() != 6 {
		t.Errorf("phy edges = %d, want 6 (virtual excluded)", phy.NumEdges())
	}
	if phy.HasEdge("r1", "virt") {
		t.Error("virtual edge copied to phy")
	}
}

func TestOSPFRespectsInputCostsAndAreas(t *testing.T) {
	anm := fig5(t)
	in := anm.Overlay(core.OverlayInput)
	in.Edge("r1", "r2").Set(AttrCost, 20)
	in.Edge("r1", "r2").Set(AttrArea, 1)
	ospf, err := OSPF(anm)
	if err != nil {
		t.Fatal(err)
	}
	e := ospf.Edge("r1", "r2")
	if e.GetInt(AttrCost, 0) != 20 || e.GetInt(AttrArea, 0) != 1 {
		t.Errorf("input attrs not retained: cost=%v area=%v", e.Get(AttrCost), e.Get(AttrArea))
	}
}

func TestOSPFExcludesServers(t *testing.T) {
	anm := fig5(t)
	in := anm.Overlay(core.OverlayInput)
	in.AddNode("srv", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceServer})
	in.AddEdge("srv", "r1", graph.Attrs{"type": "physical"})
	ospf, err := OSPF(anm)
	if err != nil {
		t.Fatal(err)
	}
	if ospf.HasNode("srv") || ospf.HasEdge("srv", "r1") {
		t.Error("server leaked into routing overlay (device_type selector broken)")
	}
}

// E8: attribute-based route reflectors.
func TestRouteReflectorAttributeBased(t *testing.T) {
	anm := fig5(t)
	in := anm.Overlay(core.OverlayInput)
	in.Node("r1").MustSet(AttrRR, true)
	in.Node("r4").MustSet(AttrRR, true)
	ibgp, err := IBGPRouteReflectors(anm, RROptions{})
	if err != nil {
		t.Fatal(err)
	}
	// AS1: rr={r1,r4}, clients={r2,r3}: rr-rr 2 + rr-client 2*2*2=8 -> 10.
	if ibgp.NumEdges() != 10 {
		t.Fatalf("sessions = %d, want 10", ibgp.NumEdges())
	}
	if ibgp.Edge("r1", "r4").GetString(AttrSessionType, "") != SessionPeer {
		t.Error("rr-rr session type wrong")
	}
	if ibgp.Edge("r1", "r2").GetString(AttrSessionType, "") != SessionDown {
		t.Error("rr->client should be down")
	}
	if ibgp.Edge("r2", "r1").GetString(AttrSessionType, "") != SessionUp {
		t.Error("client->rr should be up")
	}
	if ibgp.HasEdge("r2", "r3") {
		t.Error("client-client session created")
	}
}

// E8: centrality-based auto-selection (§7.1's degree_centrality pattern).
func TestRouteReflectorAutoSelection(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	// Star: hub has highest degree, must be selected.
	for _, id := range []graph.ID{"hub", "l1", "l2", "l3", "l4"} {
		in.AddNode(id, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, l := range []graph.ID{"l1", "l2", "l3", "l4"} {
		in.AddEdge("hub", l)
	}
	ibgp, err := IBGPRouteReflectors(anm, RROptions{PerAS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ibgp.Node("hub").GetBool(AttrRR) {
		t.Fatal("hub not auto-selected as rr")
	}
	for _, l := range []graph.ID{"l1", "l2", "l3", "l4"} {
		if ibgp.Node(l).GetBool(AttrRR) {
			t.Errorf("leaf %s selected as rr", l)
		}
	}
	// 1 rr, 4 clients -> 8 directed sessions.
	if ibgp.NumEdges() != 8 {
		t.Errorf("sessions = %d, want 8", ibgp.NumEdges())
	}
}

// E8: session-count reduction vs full mesh.
func TestRouteReflectorSessionReduction(t *testing.T) {
	build := func(n int) *core.ANM {
		anm := core.NewANM()
		in, _ := anm.AddOverlay(core.OverlayInput)
		var prev graph.ID
		for i := 0; i < n; i++ {
			id := graph.ID(strings.Repeat("x", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26)))
			in.AddNode(id, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
			if prev != "" {
				in.AddEdge(prev, id)
			}
			prev = id
		}
		return anm
	}
	n := 20
	anmMesh := build(n)
	mesh, err := IBGPFullMesh(anmMesh)
	if err != nil {
		t.Fatal(err)
	}
	anmRR := build(n)
	rr, err := IBGPRouteReflectors(anmRR, RROptions{PerAS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumEdges() != n*(n-1) {
		t.Errorf("mesh sessions = %d, want %d", mesh.NumEdges(), n*(n-1))
	}
	// RR: 2 rrs -> 2 peer + 2*18 clients *2 dirs = 74 << 380.
	if rr.NumEdges() >= mesh.NumEdges()/2 {
		t.Errorf("rr sessions = %d, not a reduction vs %d", rr.NumEdges(), mesh.NumEdges())
	}
}

// E7: IS-IS overlay built by the two-line rule.
func TestE7_ISISRule(t *testing.T) {
	anm := fig5(t)
	isis, err := ISIS(anm)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-AS edges, both directions (directed overlay).
	if isis.NumEdges() != 8 {
		t.Errorf("isis edges = %d, want 8", isis.NumEdges())
	}
	if isis.HasEdge("r3", "r5") {
		t.Error("inter-AS edge leaked into IS-IS")
	}
}

func TestBuildAll(t *testing.T) {
	anm := fig5(t)
	if err := BuildAll(anm, Options{ISIS: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{core.OverlayPhy, OverlayOSPF, OverlayEBGP, OverlayIBGP, OverlayISIS} {
		if !anm.HasOverlay(name) {
			t.Errorf("overlay %s missing", name)
		}
	}
	// With route reflectors instead.
	anm2 := fig5(t)
	if err := BuildAll(anm2, Options{RouteReflectors: true, RROptions: RROptions{PerAS: 1}}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range anm2.Overlay(OverlayIBGP).Nodes() {
		if n.GetBool(AttrRR) {
			found = true
		}
	}
	if !found {
		t.Error("no route reflectors selected")
	}
}

func TestMissingInputErrors(t *testing.T) {
	anm := core.NewANM() // no input overlay
	if _, err := OSPF(anm); err == nil {
		t.Error("OSPF without input accepted")
	}
	if _, err := EBGP(anm); err == nil {
		t.Error("EBGP without input accepted")
	}
	if _, err := IBGPFullMesh(anm); err == nil {
		t.Error("IBGP without input accepted")
	}
	if _, err := IBGPRouteReflectors(anm, RROptions{}); err == nil {
		t.Error("RR without input accepted")
	}
	if _, err := ISIS(anm); err == nil {
		t.Error("ISIS without input accepted")
	}
	if _, err := BuildPhy(anm); err == nil {
		t.Error("BuildPhy without input accepted")
	}
	if err := BuildAll(anm, Options{}); err == nil {
		t.Error("BuildAll without input accepted")
	}
}

// Rules are idempotent: rebuilding replaces the overlay rather than
// erroring or duplicating (experimentation requires re-running with changed
// parameters, §2).
func TestRebuildIdempotent(t *testing.T) {
	anm := fig5(t)
	if _, err := OSPF(anm); err != nil {
		t.Fatal(err)
	}
	ospf2, err := OSPF(anm)
	if err != nil {
		t.Fatalf("rebuild failed: %v", err)
	}
	if ospf2.NumEdges() != 4 {
		t.Errorf("rebuild edges = %d", ospf2.NumEdges())
	}
}

// E13: the same rules applied to a different input topology with zero code
// change.
func TestE13_RuleReuse(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	// A ring of 3 ASes with 3 routers each.
	for asn := 1; asn <= 3; asn++ {
		var prev graph.ID
		for i := 0; i < 3; i++ {
			id := graph.ID(string(rune('a'+asn-1)) + string(rune('0'+i)))
			in.AddNode(id, graph.Attrs{core.AttrASN: asn, core.AttrDeviceType: core.DeviceRouter})
			if prev != "" {
				in.AddEdge(prev, id)
			}
			prev = id
		}
	}
	in.AddEdge("a2", "b0")
	in.AddEdge("b2", "c0")
	in.AddEdge("c2", "a0")
	if err := BuildAll(anm, Options{}); err != nil {
		t.Fatal(err)
	}
	ospf := anm.Overlay(OverlayOSPF)
	ebgp := anm.Overlay(OverlayEBGP)
	ibgp := anm.Overlay(OverlayIBGP)
	if ospf.NumEdges() != 6 { // 2 intra edges per AS
		t.Errorf("ospf edges = %d, want 6", ospf.NumEdges())
	}
	if ebgp.NumEdges() != 6 { // 3 inter-AS links x 2 directions
		t.Errorf("ebgp sessions = %d, want 6", ebgp.NumEdges())
	}
	if ibgp.NumEdges() != 18 { // 3 ASes x 3*2 directed pairs
		t.Errorf("ibgp sessions = %d, want 18", ibgp.NumEdges())
	}
}

// §7.1 with the alternative centrality: betweenness also selects the hub
// of a barbell (where degree alone would tie everything).
func TestRouteReflectorBetweennessSelection(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	// Two triangles joined through "mid": every node has degree 2 except
	// the triangle corners touching mid (degree 3)... use a barbell where
	// mid is the cut vertex with maximal betweenness but NOT maximal
	// degree: corners have degree 3, mid has degree 2.
	for _, id := range []graph.ID{"a1", "a2", "a3", "mid", "b1", "b2", "b3"} {
		in.AddNode(id, graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{
		{"a1", "a2"}, {"a2", "a3"}, {"a1", "a3"},
		{"b1", "b2"}, {"b2", "b3"}, {"b1", "b3"},
		{"a3", "mid"}, {"mid", "b1"},
	} {
		in.AddEdge(e[0], e[1])
	}
	ibgp, err := IBGPRouteReflectors(anm, RROptions{PerAS: 1, Centrality: "betweenness"})
	if err != nil {
		t.Fatal(err)
	}
	if !ibgp.Node("mid").GetBool(AttrRR) {
		t.Error("betweenness did not select the cut vertex")
	}
	// Degree centrality would pick a3 or b1 (degree 3) instead.
	anm2 := core.NewANM()
	in2, _ := anm2.AddOverlay(core.OverlayInput)
	for _, n := range in.Nodes() {
		in2.AddNode(n.ID(), graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range in.Edges() {
		in2.AddEdge(e.SrcID(), e.DstID())
	}
	ibgp2, err := IBGPRouteReflectors(anm2, RROptions{PerAS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ibgp2.Node("mid").GetBool(AttrRR) {
		t.Error("degree centrality unexpectedly selected the cut vertex")
	}
}
