// Package design implements the paper's network design rules (§4.2.1): the
// algebraic construction of protocol overlays from the annotated input
// topology. Each rule is a few lines over the core API — eq. (1) builds
// OSPF from intra-AS physical edges, eq. (2) the iBGP full mesh from the
// node product, eq. (3) eBGP from inter-AS physical edges — plus the §7
// extensions: IS-IS, and attribute- or centrality-driven route-reflector
// hierarchies.
//
// Because rules read only the input overlay, the same rules apply unchanged
// to any input topology (§6: "the same pieces of code can be used
// immediately on much larger topologies").
package design

import (
	"fmt"
	"sort"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
)

// Overlay names created by the design rules.
const (
	OverlayOSPF = "ospf"
	OverlayEBGP = "ebgp"
	OverlayIBGP = "ibgp"
	OverlayISIS = "isis"
)

// Attribute keys used by the routing design rules.
const (
	AttrArea        = "area"         // OSPF area (edge + node)
	AttrCost        = "ospf_cost"    // OSPF interface cost (edge)
	AttrBackbone    = "backbone"     // OSPF backbone router flag (node)
	AttrRR          = "rr"           // route reflector flag (node)
	AttrRRCluster   = "rr_cluster"   // optional RR cluster id (node)
	AttrSessionType = "session_type" // iBGP edge: "peer", "up" (client->rr), "down" (rr->client)
)

// iBGP session types.
const (
	SessionPeer = "peer"
	SessionUp   = "up"   // client -> route reflector
	SessionDown = "down" // route reflector -> client
)

// BuildPhy populates the physical overlay from the input overlay, retaining
// the standard attributes and the physical edges — the paper's §6.1
// walkthrough steps 5–6.
func BuildPhy(anm *core.ANM) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	phy := anm.Overlay(core.OverlayPhy)
	if phy == nil {
		var err error
		phy, err = anm.AddOverlay(core.OverlayPhy)
		if err != nil {
			return nil, err
		}
	}
	phy.AddNodesFrom(in.Nodes(),
		core.AttrDeviceType, core.AttrASN, core.AttrPlatform, core.AttrHost, core.AttrSyntax, core.AttrLabel,
		"bgp_networks")
	phy.AddEdgesFromWhere(in.Edges(), func(e core.EdgeView) bool {
		return e.GetString("type", "physical") == "physical"
	}, core.EdgeOpts{Retain: []string{AttrCost, AttrArea}})
	return phy, nil
}

// OSPF builds the OSPF overlay: eq. (1),
// E_ospf = {(i,j) in E_in | asn(i) == asn(j)}, routers only. Edge costs
// default to 1 and areas to 0; both are overridable from input attributes.
// Routers with an edge in area 0 are marked backbone (§5.2.2 example).
func OSPF(anm *core.ANM) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	if anm.HasOverlay(OverlayOSPF) {
		anm.RemoveOverlay(OverlayOSPF)
	}
	ospf, err := anm.AddOverlay(OverlayOSPF)
	if err != nil {
		return nil, err
	}
	ospf.AddNodesFrom(in.Routers(), core.AttrASN)
	ospf.AddEdgesFromWhere(in.Edges(), func(e core.EdgeView) bool {
		return e.Src().IsRouter() && e.Dst().IsRouter() && e.Src().ASN() == e.Dst().ASN()
	}, core.EdgeOpts{Retain: []string{AttrCost, AttrArea}})
	for _, e := range ospf.Edges() {
		if e.Get(AttrCost) == nil {
			_ = e.Set(AttrCost, 1)
		}
		if e.Get(AttrArea) == nil {
			_ = e.Set(AttrArea, 0)
		}
	}
	// Backbone marking (the paper's nested-iteration example).
	for _, n := range ospf.Nodes() {
		for _, e := range n.Edges() {
			if e.GetInt(AttrArea, -1) == 0 {
				n.MustSet(AttrBackbone, true)
				break
			}
		}
	}
	return ospf, nil
}

// EBGP builds the eBGP overlay: eq. (3),
// E_ebgp = {(i,j) in E_in | asn(i) != asn(j)}, as a directed overlay with
// both session directions (the paper's directed=1, bidirected=1).
func EBGP(anm *core.ANM) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	if anm.HasOverlay(OverlayEBGP) {
		anm.RemoveOverlay(OverlayEBGP)
	}
	ebgp, err := anm.AddOverlayDirected(OverlayEBGP)
	if err != nil {
		return nil, err
	}
	ebgp.AddNodesFrom(in.Routers(), core.AttrASN)
	ebgp.AddEdgesFromWhere(in.Edges(), func(e core.EdgeView) bool {
		return e.Src().IsRouter() && e.Dst().IsRouter() && e.Src().ASN() != e.Dst().ASN()
	}, core.EdgeOpts{Bidirected: true, Retain: []string{"med", "local_pref", "policy"}})
	return ebgp, nil
}

// IBGPFullMesh builds the iBGP overlay: eq. (2),
// E_ibgp = {(i,j) in N x N | i != j, asn(i) == asn(j)}, directed.
func IBGPFullMesh(anm *core.ANM) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	if anm.HasOverlay(OverlayIBGP) {
		anm.RemoveOverlay(OverlayIBGP)
	}
	ibgp, err := anm.AddOverlayDirected(OverlayIBGP)
	if err != nil {
		return nil, err
	}
	rtrs := in.Routers()
	ibgp.AddNodesFrom(rtrs, core.AttrASN)
	var pairs [][2]graph.ID
	for _, s := range rtrs {
		for _, d := range rtrs {
			if s.ID() != d.ID() && s.ASN() == d.ASN() {
				pairs = append(pairs, [2]graph.ID{s.ID(), d.ID()})
			}
		}
	}
	ibgp.AddEdgePairs(pairs, core.EdgeOpts{Attrs: graph.Attrs{AttrSessionType: SessionPeer}})
	return ibgp, nil
}

// RROptions controls route-reflector hierarchy construction (§7.1).
type RROptions struct {
	// PerAS is the number of route reflectors to auto-select per AS by
	// centrality when no node carries the rr attribute. Default 2
	// (or 1 for ASes with fewer than 2 routers).
	PerAS int
	// Centrality picks the selection metric: "degree" (default, the
	// paper's §7.1 example) or "betweenness".
	Centrality string
}

// IBGPRouteReflectors builds a hierarchical iBGP overlay (§7.1). Nodes with
// the boolean rr attribute set in the input are reflectors; if an AS has no
// marked reflectors, the most-central routers (degree centrality over the
// intra-AS physical subgraph, deterministic tie-break) are selected
// automatically. Sessions: rr<->rr full mesh ("peer"), and for each
// (rr, client) pair a "down" session rr->client plus an "up" session
// client->rr — a hierarchy congruent with the physical network.
func IBGPRouteReflectors(anm *core.ANM, opts RROptions) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	if opts.PerAS <= 0 {
		opts.PerAS = 2
	}
	if anm.HasOverlay(OverlayIBGP) {
		anm.RemoveOverlay(OverlayIBGP)
	}
	ibgp, err := anm.AddOverlayDirected(OverlayIBGP)
	if err != nil {
		return nil, err
	}
	rtrs := in.Routers()
	ibgp.AddNodesFrom(rtrs, core.AttrASN, AttrRR)

	byASN := map[int][]core.NodeView{}
	var asns []int
	for _, n := range rtrs {
		asn := n.ASN()
		if _, ok := byASN[asn]; !ok {
			asns = append(asns, asn)
		}
		byASN[asn] = append(byASN[asn], n)
	}
	sort.Ints(asns)

	for _, asn := range asns {
		members := byASN[asn]
		var rrs, clients []graph.ID
		for _, n := range members {
			if n.GetBool(AttrRR) {
				rrs = append(rrs, n.ID())
			}
		}
		if len(rrs) == 0 {
			rrs = autoSelectRRs(in, members, opts.PerAS, opts.Centrality)
			for _, id := range rrs {
				ibgp.Node(id).MustSet(AttrRR, true)
			}
		}
		rrSet := map[graph.ID]bool{}
		for _, id := range rrs {
			rrSet[id] = true
		}
		for _, n := range members {
			if !rrSet[n.ID()] {
				clients = append(clients, n.ID())
			}
		}
		// rr <-> rr full mesh.
		for _, a := range rrs {
			for _, b := range rrs {
				if a != b {
					ibgp.AddEdge(a, b, graph.Attrs{AttrSessionType: SessionPeer})
				}
			}
		}
		// rr <-> client sessions. A client carrying the rr_cluster
		// attribute peers only with the named reflector (its cluster);
		// otherwise it peers with every reflector in the AS.
		for _, c := range clients {
			cluster := in.Node(c).GetString(AttrRRCluster, "")
			for _, rr := range rrs {
				if cluster != "" && cluster != string(rr) {
					continue
				}
				ibgp.AddEdge(rr, c, graph.Attrs{AttrSessionType: SessionDown})
				ibgp.AddEdge(c, rr, graph.Attrs{AttrSessionType: SessionUp})
			}
		}
	}
	return ibgp, nil
}

// autoSelectRRs picks the k most-central members of an AS over the
// intra-AS physical subgraph — the unwrap_graph + centrality pattern of
// §7.1, with the metric selectable.
func autoSelectRRs(in *core.Overlay, members []core.NodeView, k int, centrality string) []graph.ID {
	ids := make([]graph.ID, len(members))
	for i, m := range members {
		ids[i] = m.ID()
	}
	sub := in.Graph().Subgraph(ids) // unwrap_graph
	var scores map[graph.ID]float64
	switch centrality {
	case "betweenness":
		scores = sub.BetweennessCentrality()
	default:
		scores = sub.DegreeCentrality()
	}
	if k > len(ids) {
		k = len(ids)
	}
	if k < 1 {
		k = 1
	}
	return graph.TopKByCentrality(scores, k)
}

// ISIS builds the IS-IS overlay (§7: "Basic IS-IS support requires 2 lines
// of design code"). The rule is exactly two statements: copy the routers,
// then copy the intra-AS physical edges.
func ISIS(anm *core.ANM) (*core.Overlay, error) {
	in := anm.Overlay(core.OverlayInput)
	if in == nil {
		return nil, fmt.Errorf("design: no input overlay")
	}
	if anm.HasOverlay(OverlayISIS) {
		anm.RemoveOverlay(OverlayISIS)
	}
	isis, err := anm.AddOverlayDirected(OverlayISIS)
	if err != nil {
		return nil, err
	}
	// -- the two design-rule lines (E7 counts these) --
	isis.AddNodesFrom(in.Routers(), core.AttrASN)
	isis.AddEdgesFromWhere(in.Edges(), func(e core.EdgeView) bool { return e.Src().ASN() == e.Dst().ASN() }, core.EdgeOpts{Bidirected: true})
	// -- end design rule --
	return isis, nil
}

// IGP selects the interior gateway protocol BuildAll configures.
type IGP string

// Supported IGPs.
const (
	IGPOSPF IGP = "ospf"
	IGPISIS IGP = "isis"
)

// Options selects which overlays BuildAll constructs.
type Options struct {
	// RouteReflectors switches iBGP from full mesh (eq. 2) to the §7.1
	// hierarchy.
	RouteReflectors bool
	RROptions       RROptions
	// ISIS additionally builds the IS-IS overlay (alongside the IGP).
	ISIS bool
	// IGP selects the interior protocol: IGPOSPF (default) or IGPISIS
	// (§7: the same pipeline with the two-line IS-IS rule substituted).
	IGP IGP
}

// BuildAll runs the standard design chain of the §6.1 walkthrough:
// phy, igp, ebgp and ibgp overlays from the input overlay.
func BuildAll(anm *core.ANM, opts Options) error {
	if _, err := BuildPhy(anm); err != nil {
		return err
	}
	if opts.IGP == IGPISIS {
		if _, err := ISIS(anm); err != nil {
			return err
		}
	} else if _, err := OSPF(anm); err != nil {
		return err
	}
	if _, err := EBGP(anm); err != nil {
		return err
	}
	if opts.RouteReflectors {
		if _, err := IBGPRouteReflectors(anm, opts.RROptions); err != nil {
			return err
		}
	} else {
		if _, err := IBGPFullMesh(anm); err != nil {
			return err
		}
	}
	if opts.ISIS && opts.IGP != IGPISIS {
		if _, err := ISIS(anm); err != nil {
			return err
		}
	}
	return nil
}
