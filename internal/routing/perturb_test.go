package routing

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

// chainASTopo: a (AS1) -- b (AS2) -- c (AS3); a originates 203.0.113.0/24
// and c originates 198.51.100.0/24, so advertisements flow both ways through
// b and every session carries real routes to perturb.
func chainASTopo() []*DeviceConfig {
	a := &DeviceConfig{
		Hostname: "a",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30"), Cost: 1},
		},
		BGP: &BGPConfig{
			ASN: 1, RouterID: mustAddr("10.0.0.1"),
			Networks:  []netip.Prefix{mustPfx("203.0.113.0/24")},
			Neighbors: []BGPNeighbor{{Addr: mustAddr("10.0.0.2"), RemoteASN: 2}},
		},
	}
	b := &DeviceConfig{
		Hostname: "b",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30"), Cost: 1},
			{Name: "eth1", Addr: mustAddr("10.0.1.1"), Prefix: mustPfx("10.0.1.0/30"), Cost: 1},
		},
		BGP: &BGPConfig{
			ASN: 2, RouterID: mustAddr("10.0.0.2"),
			Neighbors: []BGPNeighbor{
				{Addr: mustAddr("10.0.0.1"), RemoteASN: 1},
				{Addr: mustAddr("10.0.1.2"), RemoteASN: 3},
			},
		},
	}
	c := &DeviceConfig{
		Hostname: "c",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("10.0.1.2"), Prefix: mustPfx("10.0.1.0/30"), Cost: 1},
		},
		BGP: &BGPConfig{
			ASN: 3, RouterID: mustAddr("10.0.1.2"),
			Networks:  []netip.Prefix{mustPfx("198.51.100.0/24")},
			Neighbors: []BGPNeighbor{{Addr: mustAddr("10.0.1.1"), RemoteASN: 2}},
		},
	}
	return []*DeviceConfig{a, b, c}
}

// runPerturbed builds a fresh engine over the chain, installs a perturber
// over the rules, and runs it.
func runPerturbed(t *testing.T, seed uint64, rules []PerturbRule) (*BGPEngine, *ScheduledPerturber, BGPResult) {
	t.Helper()
	e, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewScheduledPerturber(seed, rules)
	e.SetPerturber(p)
	return e, p, e.Run(100)
}

func bestByHost(e *BGPEngine) map[string][]BGPRoute {
	out := map[string][]BGPRoute{}
	for _, h := range e.Speakers() {
		out[h] = e.BestRoutes(h)
	}
	return out
}

// The reproducibility contract: the same (seed, rules) produce the same
// event schedule, the same outcome and the same tables, run after run.
func TestPerturbSameSeedByteIdentical(t *testing.T) {
	rules := []PerturbRule{{Kind: PerturbLoss, Pct: 50}}
	e1, p1, r1 := runPerturbed(t, 42, rules)
	e2, p2, r2 := runPerturbed(t, 42, rules)
	if r1 != r2 {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(p1.Events(), p2.Events()) {
		t.Errorf("event schedules differ:\n%v\nvs\n%v", p1.Events(), p2.Events())
	}
	if !reflect.DeepEqual(bestByHost(e1), bestByHost(e2)) {
		t.Error("best-route tables differ between identically seeded runs")
	}
	// A different seed drops a different subset of routes.
	_, p3, _ := runPerturbed(t, 43, rules)
	if reflect.DeepEqual(p1.Events(), p3.Events()) {
		t.Error("seeds 42 and 43 produced identical loss schedules")
	}
}

// 100% loss on one session is a stable fault: the run converges to a state
// where nothing learned over that session exists anywhere downstream.
func TestPerturbTotalLossBlocksSession(t *testing.T) {
	rules := []PerturbRule{{Kind: PerturbLoss, A: "a", B: "b", Pct: 100}}
	e, _, res := runPerturbed(t, 1, rules)
	if !res.Converged {
		t.Fatalf("total loss did not stabilise: %+v", res)
	}
	for _, host := range []string{"b", "c"} {
		for _, rt := range e.BestRoutes(host) {
			if rt.Prefix == mustPfx("203.0.113.0/24") {
				t.Errorf("%s learned a's prefix across a 100%%-loss session: %+v", host, rt)
			}
		}
	}
	// The reverse direction is equally dead: a never hears c's prefix.
	for _, rt := range e.BestRoutes("a") {
		if rt.Prefix == mustPfx("198.51.100.0/24") {
			t.Errorf("a learned c's prefix across the dead session: %+v", rt)
		}
	}
}

// Partial loss models lost UPDATEs over TCP: the receiver keeps the state
// it last heard, so fixed points stay reachable and the run converges —
// delayed, not derailed. A route the receiver already heard must survive
// later losses of its refresh.
func TestPerturbPartialLossConverges(t *testing.T) {
	clean, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := clean.Run(100); !res.Converged {
		t.Fatalf("clean run: %+v", res)
	}
	e, p, res := runPerturbed(t, 42, []PerturbRule{{Kind: PerturbLoss, Pct: 30}})
	if !res.Converged {
		t.Fatalf("30%% loss did not converge: %+v", res)
	}
	// The stale-redelivery machinery ran (seed 42 exercises it) and the
	// converged state is not stale: Pending is false at the final round.
	if p.Pending(res.Rounds) {
		t.Error("converged with stale state still pending")
	}
	// Every prefix the clean run propagated end-to-end eventually got
	// through (host c still learns a's prefix and vice versa), even though
	// individual refreshes of it were lost along the way.
	want := bestByHost(clean)
	got := bestByHost(e)
	for host, routes := range want {
		if len(got[host]) != len(routes) {
			t.Errorf("%s best routes = %d, want %d (clean)", host, len(got[host]), len(routes))
		}
	}
}

// Delay stretches convergence but must not change the fixed point, and the
// Pending check must hold convergence open while snapshots are in flight.
func TestPerturbDelayPreservesFixedPoint(t *testing.T) {
	clean, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes := clean.Run(100)
	if !cleanRes.Converged {
		t.Fatalf("clean run: %+v", cleanRes)
	}

	e, p, res := runPerturbed(t, 7, []PerturbRule{{Kind: PerturbDelay, Rounds: 2}})
	if !res.Converged {
		t.Fatalf("delayed run: %+v", res)
	}
	if res.Rounds < cleanRes.Rounds {
		t.Errorf("delayed run took %d rounds, clean took %d", res.Rounds, cleanRes.Rounds)
	}
	if !reflect.DeepEqual(bestByHost(e), bestByHost(clean)) {
		t.Error("delay changed the converged tables")
	}
	found := false
	for _, ev := range p.Events() {
		if strings.Contains(ev, "delayed") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no delay events logged: %v", p.Events())
	}
}

// Duplication and (round-stable) reordering are churn the decision process
// must absorb: the run converges to exactly the clean tables.
func TestPerturbDupReorderHarmless(t *testing.T) {
	clean, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := clean.Run(100); !res.Converged {
		t.Fatalf("clean run: %+v", res)
	}
	e, _, res := runPerturbed(t, 11, []PerturbRule{
		{Kind: PerturbDup, Pct: 100},
		{Kind: PerturbReorder},
	})
	if !res.Converged {
		t.Fatalf("dup+reorder did not converge: %+v", res)
	}
	if !reflect.DeepEqual(bestByHost(e), bestByHost(clean)) {
		t.Error("dup+reorder changed the converged tables")
	}
}

// A flap with period 1 alternates the session every round: the engine must
// detect the period-2 oscillation instead of burning the whole budget, and
// its flap log must implicate the right session.
func TestPerturbFlapOscillates(t *testing.T) {
	e, _, res := runPerturbed(t, 3, []PerturbRule{{Kind: PerturbFlap, A: "a", B: "b", Every: 1}})
	if !res.Oscillating || res.CycleLen <= 0 {
		t.Fatalf("flap run = %+v, want detected oscillation", res)
	}
	if res.CycleLen%2 != 0 {
		t.Errorf("cycle length = %d, want a multiple of the flap period 2", res.CycleLen)
	}
	flaps := e.FlappingSessions(3)
	if len(flaps) != 1 || flaps[0] != [2]string{"a", "b"} {
		t.Errorf("flapping sessions = %v, want [[a b]]", flaps)
	}
	if unstable := e.UnstableSpeakers(res.CycleLen + 1); len(unstable) == 0 {
		t.Error("no unstable speakers during a detected oscillation")
	}
}

// A Recover-marked flap is session-state-local: a soft reset of either
// endpoint heals it, the healing survives the perturber's Reset, and the
// next run converges.
func TestPerturbFlapRecoverHealsOnSoftReset(t *testing.T) {
	e, p, res := runPerturbed(t, 3, []PerturbRule{{Kind: PerturbFlap, A: "a", B: "b", Every: 1, Recover: true}})
	if !res.Oscillating {
		t.Fatalf("first run = %+v, want oscillation", res)
	}
	e.SoftReset([]string{"a"})
	healed := false
	for _, ev := range p.Events() {
		if strings.Contains(ev, "healed by soft reset of a") {
			healed = true
			break
		}
	}
	if !healed {
		t.Fatalf("no healing event after soft reset: %v", p.Events())
	}
	res = e.Run(100) // Run calls Reset; healing must survive it
	if !res.Converged {
		t.Fatalf("post-heal run = %+v, want convergence", res)
	}
	got := e.BestRoutes("c")
	want := mustPfx("203.0.113.0/24")
	found := false
	for _, rt := range got {
		if rt.Prefix == want {
			found = true
		}
	}
	if !found {
		t.Errorf("c never re-learned a's prefix after healing: %+v", got)
	}
}

// Without Recover, a soft reset changes nothing: the fault is in the world,
// not the session state.
func TestPerturbFlapPersistsWithoutRecover(t *testing.T) {
	e, p, res := runPerturbed(t, 3, []PerturbRule{{Kind: PerturbFlap, A: "a", B: "b", Every: 1}})
	if !res.Oscillating {
		t.Fatalf("first run = %+v", res)
	}
	e.SoftReset([]string{"a", "b"})
	for _, ev := range p.Events() {
		if strings.Contains(ev, "healed") {
			t.Fatalf("non-recoverable flap healed: %v", ev)
		}
	}
	if res = e.Run(100); !res.Oscillating {
		t.Errorf("post-reset run = %+v, want continued oscillation", res)
	}
}

// Corruption poisons AS paths for a bounded window and then withdraws: the
// run converges, the final tables are clean of the poison ASN, and the
// poisoned selections count as churn.
func TestPerturbCorruptThenWithdraw(t *testing.T) {
	e, p, res := runPerturbed(t, 5, []PerturbRule{{Kind: PerturbCorrupt, A: "a", B: "b", At: 0, For: 3}})
	if !res.Converged {
		t.Fatalf("corrupt run: %+v", res)
	}
	for _, host := range e.Speakers() {
		for _, rt := range e.BestRoutes(host) {
			for _, asn := range rt.ASPath {
				if asn == corruptASN {
					t.Errorf("%s still selects a poisoned path: %+v", host, rt)
				}
			}
		}
	}
	corrupted := false
	for _, ev := range p.Events() {
		if strings.Contains(ev, "corrupted") {
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatalf("no corruption events logged: %v", p.Events())
	}
	// The poisoned window forces at least one extra selection change on a's
	// prefix beyond the single clean learn event per speaker.
	if n := e.RouteChurn()[mustPfx("203.0.113.0/24")]; n < 3 {
		t.Errorf("churn on poisoned prefix = %d, want the corrupt->withdraw transitions", n)
	}
}

// The nil-perturber fast path is byte-identical to never having installed
// one: installing then removing a perturber must not change the outcome.
func TestPerturbNilFastPath(t *testing.T) {
	ref, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.Run(100)

	e, err := NewBGPEngine(chainASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetPerturber(NewScheduledPerturber(9, []PerturbRule{{Kind: PerturbLoss, Pct: 100}}))
	e.SetPerturber(nil)
	res := e.Run(100)
	if res != refRes {
		t.Errorf("results differ after SetPerturber(nil): %+v vs %+v", res, refRes)
	}
	if !reflect.DeepEqual(bestByHost(e), bestByHost(ref)) {
		t.Error("tables differ after SetPerturber(nil)")
	}
}

// Loss rules also suppress IGP adjacency formation, deterministically per
// (seed, link).
func TestPerturbAdjacencySuppression(t *testing.T) {
	p := NewScheduledPerturber(2, []PerturbRule{{Kind: PerturbLoss, A: "x", B: "y", Pct: 100}})
	if p.AdjacencyUp("x", "y") {
		t.Error("100% loss left the adjacency up")
	}
	if p.AdjacencyUp("y", "x") {
		t.Error("session match is not symmetric")
	}
	if !p.AdjacencyUp("x", "z") {
		t.Error("unmatched adjacency suppressed")
	}
	if len(p.Events()) == 0 || !strings.Contains(p.Events()[0], "suppressed") {
		t.Errorf("events = %v", p.Events())
	}
}

// The event log is bounded: past the cap, events are counted, not stored.
func TestPerturbEventLogBounded(t *testing.T) {
	p := NewScheduledPerturber(0, nil)
	for i := 0; i < maxPerturbEvents+5; i++ {
		p.logf("event %d", i)
	}
	ev := p.Events()
	if len(ev) != maxPerturbEvents+1 {
		t.Fatalf("len(events) = %d, want %d + truncation line", len(ev), maxPerturbEvents)
	}
	if !strings.Contains(ev[len(ev)-1], "5 further events truncated") {
		t.Errorf("last line = %q", ev[len(ev)-1])
	}
}

// Satellite regression: session-establishment failures report sorted, and
// every entry names the peer's address.
func TestSessionsDownSortedWithAddr(t *testing.T) {
	devs := twoASTopo()
	devs[0].BGP.Neighbors[0].RemoteASN = 99
	devs[1].BGP.Neighbors[0].RemoteASN = 98
	e, _ := runBGP(t, devs, nil, nil)
	down := e.SessionsDown()
	if len(down) != 2 {
		t.Fatalf("sessions down = %v", down)
	}
	if down[0] > down[1] {
		t.Errorf("not sorted: %v", down)
	}
	for _, d := range down {
		if !strings.Contains(d, "@192.168.0.") {
			t.Errorf("entry lacks the peer address: %q", d)
		}
	}
}

// PerturbRule.String renders chaos-script syntax for every kind.
func TestPerturbRuleString(t *testing.T) {
	for _, tc := range []struct {
		rule PerturbRule
		want string
	}{
		{PerturbRule{Kind: PerturbLoss, Pct: 20}, "perturb loss 20"},
		{PerturbRule{Kind: PerturbLoss, Pct: 20, A: "a", B: "b"}, "perturb loss 20 on a:b"},
		{PerturbRule{Kind: PerturbDup, Pct: 5, A: "a", B: "b"}, "perturb dup 5 on a:b"},
		{PerturbRule{Kind: PerturbDelay, Rounds: 3}, "perturb delay 3"},
		{PerturbRule{Kind: PerturbReorder, A: "a", B: "b"}, "perturb reorder on a:b"},
		{PerturbRule{Kind: PerturbFlap, A: "a", B: "b", Every: 2}, "perturb flap a:b every 2"},
		{PerturbRule{Kind: PerturbFlap, A: "a", B: "b", Every: 2, Recover: true}, "perturb flap a:b every 2 recover"},
		{PerturbRule{Kind: PerturbCorrupt, A: "a", B: "b", At: 4, For: 2}, "perturb corrupt a:b at 4 for 2"},
	} {
		if got := tc.rule.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
