package routing

import (
	"net/netip"
	"testing"
)

// twoASTopo: a (AS1) --- b (AS2), a originates 203.0.113.0/24.
func twoASTopo() []*DeviceConfig {
	a := &DeviceConfig{
		Hostname: "a",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("192.168.0.1"), Prefix: mustPfx("192.168.0.0/30"), Cost: 1},
		},
		BGP: &BGPConfig{
			ASN: 1, RouterID: mustAddr("192.168.0.1"),
			Networks:  []netip.Prefix{mustPfx("203.0.113.0/24")},
			Neighbors: []BGPNeighbor{{Addr: mustAddr("192.168.0.2"), RemoteASN: 2}},
		},
	}
	b := &DeviceConfig{
		Hostname: "b",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("192.168.0.2"), Prefix: mustPfx("192.168.0.0/30"), Cost: 1},
		},
		BGP: &BGPConfig{
			ASN: 2, RouterID: mustAddr("192.168.0.2"),
			Neighbors: []BGPNeighbor{{Addr: mustAddr("192.168.0.1"), RemoteASN: 1}},
		},
	}
	return []*DeviceConfig{a, b}
}

func runBGP(t *testing.T, devs []*DeviceConfig, profileOf func(string) VendorProfile, igp IGPCoster) (*BGPEngine, BGPResult) {
	t.Helper()
	e, err := NewBGPEngine(devs, profileOf, igp)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(100)
	return e, res
}

func TestEBGPPropagation(t *testing.T) {
	e, res := runBGP(t, twoASTopo(), nil, nil)
	if !res.Converged || res.Oscillating {
		t.Fatalf("result = %+v", res)
	}
	if e.SessionsUp() != 2 {
		t.Fatalf("sessions up = %d, want 2", e.SessionsUp())
	}
	routes := e.BestRoutes("b")
	if len(routes) != 1 {
		t.Fatalf("b routes = %+v", routes)
	}
	rt := routes[0]
	if rt.Prefix != mustPfx("203.0.113.0/24") {
		t.Errorf("prefix = %v", rt.Prefix)
	}
	if len(rt.ASPath) != 1 || rt.ASPath[0] != 1 {
		t.Errorf("as path = %v", rt.ASPath)
	}
	if rt.NextHop != mustAddr("192.168.0.1") {
		t.Errorf("next hop = %v (want a's session address)", rt.NextHop)
	}
	if !rt.FromEBGP || rt.LocalPref != 100 {
		t.Errorf("attrs = %+v", rt)
	}
}

func TestSessionMismatchDetected(t *testing.T) {
	devs := twoASTopo()
	devs[1].BGP.Neighbors[0].RemoteASN = 99 // wrong remote-as
	e, _ := runBGP(t, devs, nil, nil)
	if e.SessionsUp() != 1 {
		t.Errorf("sessions up = %d, want 1", e.SessionsUp())
	}
	if len(e.SessionsDown()) != 1 {
		t.Errorf("sessions down = %v", e.SessionsDown())
	}
	if routes := e.BestRoutes("b"); len(routes) != 0 {
		t.Error("route learned over a session that never established")
	}
}

func TestEBGPLoopPrevention(t *testing.T) {
	// Triangle AS1-AS2-AS3; AS1's route must not come back to AS1.
	mk := func(host string, asn int, ifaces []InterfaceConfig, nbrs []BGPNeighbor, nets ...netip.Prefix) *DeviceConfig {
		return &DeviceConfig{Hostname: host, Interfaces: ifaces,
			BGP: &BGPConfig{ASN: asn, RouterID: ifaces[0].Addr, Networks: nets, Neighbors: nbrs}}
	}
	a := mk("a", 1, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.1.1"), Prefix: mustPfx("10.0.1.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.2"), RemoteASN: 2},
		{Addr: mustAddr("10.0.1.2"), RemoteASN: 3},
	}, mustPfx("203.0.113.0/24"))
	b := mk("b", 2, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.2.1"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.1"), RemoteASN: 1},
		{Addr: mustAddr("10.0.2.2"), RemoteASN: 3},
	})
	c := mk("c", 3, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.1.2"), Prefix: mustPfx("10.0.1.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.2.2"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.1.1"), RemoteASN: 1},
		{Addr: mustAddr("10.0.2.1"), RemoteASN: 2},
	})
	e, res := runBGP(t, []*DeviceConfig{a, b, c}, nil, nil)
	if !res.Converged {
		t.Fatalf("triangle did not converge: %+v", res)
	}
	// a's own prefix stays local (path never loops back).
	for _, rt := range e.BestRoutes("a") {
		if rt.Prefix == mustPfx("203.0.113.0/24") && !rt.Local {
			t.Errorf("a accepted its own prefix from a peer: %+v", rt)
		}
	}
	// c prefers the direct 1-hop path over 2-hop via b.
	for _, rt := range e.BestRoutes("c") {
		if rt.Prefix == mustPfx("203.0.113.0/24") && len(rt.ASPath) != 1 {
			t.Errorf("c path = %v, want direct [1]", rt.ASPath)
		}
	}
}

func TestLocalPrefOverridesPathLength(t *testing.T) {
	// c hears the prefix directly from AS1 (short path) and via AS2 (long
	// path) but local-pref prefers AS2.
	devs := []*DeviceConfig{}
	mk := func(host string, asn int, ifaces []InterfaceConfig, nbrs []BGPNeighbor, nets ...netip.Prefix) *DeviceConfig {
		dc := &DeviceConfig{Hostname: host, Interfaces: ifaces,
			BGP: &BGPConfig{ASN: asn, RouterID: ifaces[0].Addr, Networks: nets, Neighbors: nbrs}}
		devs = append(devs, dc)
		return dc
	}
	mk("a", 1, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.1.1"), Prefix: mustPfx("10.0.1.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.2"), RemoteASN: 2},
		{Addr: mustAddr("10.0.1.2"), RemoteASN: 3},
	}, mustPfx("203.0.113.0/24"))
	mk("b", 2, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.2.1"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.1"), RemoteASN: 1},
		{Addr: mustAddr("10.0.2.2"), RemoteASN: 3},
	})
	c := mk("c", 3, []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.1.2"), Prefix: mustPfx("10.0.1.0/30")},
		{Name: "eth1", Addr: mustAddr("10.0.2.2"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.1.1"), RemoteASN: 1, LocalPrefIn: 50},
		{Addr: mustAddr("10.0.2.1"), RemoteASN: 2, LocalPrefIn: 200},
	})
	e, res := runBGP(t, devs, nil, nil)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	routes := e.BestRoutes(c.Hostname)
	if len(routes) != 1 {
		t.Fatalf("c routes = %+v", routes)
	}
	if routes[0].LocalPref != 200 || len(routes[0].ASPath) != 2 {
		t.Errorf("c best = %+v, want via AS2 (lp 200)", routes[0])
	}
}

func TestMEDComparedWithinSameAS(t *testing.T) {
	// b hears the prefix from a over two parallel sessions with different
	// MEDs; lower MED must win.
	a := &DeviceConfig{
		Hostname: "a",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30")},
			{Name: "eth1", Addr: mustAddr("10.0.1.1"), Prefix: mustPfx("10.0.1.0/30")},
		},
		BGP: &BGPConfig{ASN: 1, RouterID: mustAddr("10.0.0.1"),
			Networks: []netip.Prefix{mustPfx("203.0.113.0/24")},
			Neighbors: []BGPNeighbor{
				{Addr: mustAddr("10.0.0.2"), RemoteASN: 2, MEDOut: 50},
				{Addr: mustAddr("10.0.1.2"), RemoteASN: 2, MEDOut: 10},
			}},
	}
	b := &DeviceConfig{
		Hostname: "b",
		Interfaces: []InterfaceConfig{
			{Name: "eth0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30")},
			{Name: "eth1", Addr: mustAddr("10.0.1.2"), Prefix: mustPfx("10.0.1.0/30")},
		},
		BGP: &BGPConfig{ASN: 2, RouterID: mustAddr("10.0.0.2"),
			Neighbors: []BGPNeighbor{
				{Addr: mustAddr("10.0.0.1"), RemoteASN: 1},
				{Addr: mustAddr("10.0.1.1"), RemoteASN: 1},
			}},
	}
	e, res := runBGP(t, []*DeviceConfig{a, b}, nil, nil)
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	routes := e.BestRoutes("b")
	if len(routes) != 1 || routes[0].MED != 10 {
		t.Errorf("b best = %+v, want MED 10", routes)
	}
	if routes[0].NextHop != mustAddr("10.0.1.1") {
		t.Errorf("next hop = %v, want the MED-10 session", routes[0].NextHop)
	}
}

// rrGadget builds the §7.2 experiment: two route-reflector clusters whose
// IGP distances cross, so the viewer-dependent IGP tie-break oscillates
// while the route-intrinsic originator-id tie-break converges.
//
//	E1(AS1) -- C1 --10-- RR1 --100-- RR2 --10-- C2 -- E2(AS2)
//	              \--5-- RR2           RR1 --5--/
func rrGadget() ([]*DeviceConfig, *OSPFDomain, error) {
	lo := map[string]string{
		"rr1": "10.0.0.1", "rr2": "10.0.0.2", "c1": "10.0.0.3", "c2": "10.0.0.4",
	}
	iface := func(name, addr, pfx string, cost int) InterfaceConfig {
		return InterfaceConfig{Name: name, Addr: mustAddr(addr), Prefix: mustPfx(pfx), Cost: cost}
	}
	mkInternal := func(host string, ifaces ...InterfaceConfig) *DeviceConfig {
		dc := &DeviceConfig{Hostname: host, Interfaces: ifaces}
		lb := mustAddr(lo[host])
		dc.Loopback = lb
		dc.Interfaces = append(dc.Interfaces, InterfaceConfig{Name: "lo", Addr: lb, Prefix: netip.PrefixFrom(lb, 32), Cost: 1})
		nets := []OSPFNetwork{}
		for _, ic := range dc.Interfaces {
			nets = append(nets, OSPFNetwork{Prefix: ic.Prefix, Area: 0})
		}
		dc.OSPF = &OSPFConfig{ProcessID: 1, Networks: nets}
		return dc
	}
	rr1 := mkInternal("rr1",
		iface("eth0", "192.168.0.1", "192.168.0.0/30", 10),    // to c1
		iface("eth1", "192.168.0.5", "192.168.0.4/30", 5),     // to c2
		iface("eth2", "192.168.0.17", "192.168.0.16/30", 100)) // to rr2
	rr2 := mkInternal("rr2",
		iface("eth0", "192.168.0.9", "192.168.0.8/30", 10),  // to c2
		iface("eth1", "192.168.0.13", "192.168.0.12/30", 5), // to c1
		iface("eth2", "192.168.0.18", "192.168.0.16/30", 100))
	c1 := mkInternal("c1",
		iface("eth0", "192.168.0.2", "192.168.0.0/30", 10),
		iface("eth1", "192.168.0.14", "192.168.0.12/30", 5))
	c2 := mkInternal("c2",
		iface("eth0", "192.168.0.6", "192.168.0.4/30", 5),
		iface("eth1", "192.168.0.10", "192.168.0.8/30", 10))
	// External links (not in OSPF).
	c1.Interfaces = append(c1.Interfaces, iface("eth2", "192.168.1.1", "192.168.1.0/30", 1))
	c2.Interfaces = append(c2.Interfaces, iface("eth2", "192.168.1.5", "192.168.1.4/30", 1))

	// BGP.
	rr1.BGP = &BGPConfig{ASN: 100, RouterID: mustAddr(lo["rr1"]), Neighbors: []BGPNeighbor{
		{Addr: mustAddr(lo["c1"]), RemoteASN: 100, UpdateSource: "lo", RRClient: true},
		{Addr: mustAddr(lo["rr2"]), RemoteASN: 100, UpdateSource: "lo"},
	}}
	rr2.BGP = &BGPConfig{ASN: 100, RouterID: mustAddr(lo["rr2"]), Neighbors: []BGPNeighbor{
		{Addr: mustAddr(lo["c2"]), RemoteASN: 100, UpdateSource: "lo", RRClient: true},
		{Addr: mustAddr(lo["rr1"]), RemoteASN: 100, UpdateSource: "lo"},
	}}
	c1.BGP = &BGPConfig{ASN: 100, RouterID: mustAddr(lo["c1"]), Neighbors: []BGPNeighbor{
		{Addr: mustAddr(lo["rr1"]), RemoteASN: 100, UpdateSource: "lo"},
		{Addr: mustAddr("192.168.1.2"), RemoteASN: 1},
	}}
	c2.BGP = &BGPConfig{ASN: 100, RouterID: mustAddr(lo["c2"]), Neighbors: []BGPNeighbor{
		{Addr: mustAddr(lo["rr2"]), RemoteASN: 100, UpdateSource: "lo"},
		{Addr: mustAddr("192.168.1.6"), RemoteASN: 2},
	}}
	e1 := &DeviceConfig{Hostname: "e1",
		Interfaces: []InterfaceConfig{iface("eth0", "192.168.1.2", "192.168.1.0/30", 1)},
		BGP: &BGPConfig{ASN: 1, RouterID: mustAddr("192.168.1.2"),
			Networks:  []netip.Prefix{mustPfx("203.0.113.0/24")},
			Neighbors: []BGPNeighbor{{Addr: mustAddr("192.168.1.1"), RemoteASN: 100}}},
	}
	e2 := &DeviceConfig{Hostname: "e2",
		Interfaces: []InterfaceConfig{iface("eth0", "192.168.1.6", "192.168.1.4/30", 1)},
		BGP: &BGPConfig{ASN: 2, RouterID: mustAddr("192.168.1.6"),
			Networks:  []netip.Prefix{mustPfx("203.0.113.0/24")},
			Neighbors: []BGPNeighbor{{Addr: mustAddr("192.168.1.5"), RemoteASN: 100}}},
	}
	internal := []*DeviceConfig{rr1, rr2, c1, c2}
	domain := NewOSPFDomain(internal)
	if err := domain.Converge(); err != nil {
		return nil, nil, err
	}
	return []*DeviceConfig{rr1, rr2, c1, c2, e1, e2}, domain, nil
}

// E9 core result: the same configuration oscillates under the IOS, JunOS
// and C-BGP decision processes but converges under Quagga's 2013 default.
func TestE9_OscillationVendorDependent(t *testing.T) {
	for _, prof := range []VendorProfile{ProfileIOS, ProfileJunos, ProfileCBGP} {
		devs, domain, err := rrGadget()
		if err != nil {
			t.Fatal(err)
		}
		igp := NewCompositeIGP()
		for _, dc := range devs {
			if dc.OSPF != nil {
				igp.AddDevice(dc, domain)
			} else {
				igp.AddDevice(dc, nil)
			}
		}
		e, _ := NewBGPEngine(devs, func(string) VendorProfile { return prof }, igp)
		res := e.Run(60)
		if !res.Oscillating {
			t.Errorf("%s: expected oscillation, got %+v", prof.Name, res)
		}
		if res.CycleLen <= 0 {
			t.Errorf("%s: cycle length = %d", prof.Name, res.CycleLen)
		}
	}
	// Quagga converges.
	devs, domain, err := rrGadget()
	if err != nil {
		t.Fatal(err)
	}
	igp := NewCompositeIGP()
	for _, dc := range devs {
		if dc.OSPF != nil {
			igp.AddDevice(dc, domain)
		} else {
			igp.AddDevice(dc, nil)
		}
	}
	e, _ := NewBGPEngine(devs, func(string) VendorProfile { return ProfileQuagga }, igp)
	res := e.Run(60)
	if !res.Converged || res.Oscillating {
		t.Fatalf("quagga: expected convergence, got %+v", res)
	}
	// Both reflectors settle on the same exit (the lower originator-id,
	// i.e. via c1).
	for _, host := range []string{"rr1", "rr2"} {
		routes := e.BestRoutes(host)
		if len(routes) != 1 {
			t.Fatalf("%s routes = %+v", host, routes)
		}
		if routes[0].OriginatorID != mustAddr("10.0.0.3") {
			t.Errorf("%s best originator = %v, want c1 (10.0.0.3)", host, routes[0].OriginatorID)
		}
	}
}

func TestRouteReflectionReachesOtherCluster(t *testing.T) {
	devs, domain, err := rrGadget()
	if err != nil {
		t.Fatal(err)
	}
	igp := NewCompositeIGP()
	for _, dc := range devs {
		if dc.OSPF != nil {
			igp.AddDevice(dc, domain)
		} else {
			igp.AddDevice(dc, nil)
		}
	}
	e, _ := NewBGPEngine(devs, nil, igp) // quagga everywhere
	res := e.Run(60)
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	// c2, whose only iBGP session is to rr2, must still learn the prefix
	// (reflection across clusters). Its eBGP route wins selection, but the
	// reflected one must have been a candidate; verify reachability on a
	// client with no eBGP: strip c2's external session.
	devs2, domain2, _ := rrGadget()
	for _, dc := range devs2 {
		if dc.Hostname == "c2" {
			dc.BGP.Neighbors = dc.BGP.Neighbors[:1] // keep only rr2
		}
	}
	igp2 := NewCompositeIGP()
	for _, dc := range devs2 {
		if dc.OSPF != nil {
			igp2.AddDevice(dc, domain2)
		} else {
			igp2.AddDevice(dc, nil)
		}
	}
	e2, _ := NewBGPEngine(devs2, nil, igp2)
	res2 := e2.Run(60)
	if !res2.Converged {
		t.Fatalf("%+v", res2)
	}
	routes := e2.BestRoutes("c2")
	if len(routes) != 1 || routes[0].Prefix != mustPfx("203.0.113.0/24") {
		t.Fatalf("c2 routes = %+v (reflection failed)", routes)
	}
	if routes[0].FromEBGP {
		t.Error("route should be iBGP-learned")
	}
}

func TestNextHopUnreachableExcluded(t *testing.T) {
	// Two devices with matching sessions, but an IGP that reports the
	// advertised next hop unreachable: the route must not be selected.
	devs := twoASTopo()
	e, _ := NewBGPEngine(devs, nil, unreachIGP{})
	e.Run(20)
	if routes := e.BestRoutes("b"); len(routes) != 0 {
		t.Errorf("b selected a route with unreachable next hop: %+v", routes)
	}
}

type unreachIGP struct{}

func (unreachIGP) IGPCost(string, netip.Addr) int { return -1 }

func TestProfileFor(t *testing.T) {
	if ProfileFor("ios") != ProfileIOS || ProfileFor("junos") != ProfileJunos ||
		ProfileFor("cbgp") != ProfileCBGP || ProfileFor("quagga") != ProfileQuagga {
		t.Error("profile mapping wrong")
	}
	if ProfileFor("unknown") != ProfileQuagga {
		t.Error("default profile wrong")
	}
	if ProfileIOS.UseIGPTieBreak != true || ProfileQuagga.UseIGPTieBreak != false {
		t.Error("IGP tie-break flags wrong (§7.2)")
	}
}

func TestBGPRouteString(t *testing.T) {
	r := BGPRoute{Prefix: mustPfx("203.0.113.0/24"), NextHop: mustAddr("10.0.0.1"), ASPath: []int{1, 2}, LocalPref: 100}
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}

func TestSpeakers(t *testing.T) {
	e, _ := runBGP(t, twoASTopo(), nil, nil)
	sp := e.Speakers()
	if len(sp) != 2 || sp[0] != "a" || sp[1] != "b" {
		t.Errorf("speakers = %v", sp)
	}
}

func TestEBGPBeatsIBGP(t *testing.T) {
	// c2 in the gadget hears the prefix via eBGP (from e2) and via iBGP
	// (reflected); eBGP must win locally.
	devs, domain, err := rrGadget()
	if err != nil {
		t.Fatal(err)
	}
	igp := NewCompositeIGP()
	for _, dc := range devs {
		if dc.OSPF != nil {
			igp.AddDevice(dc, domain)
		} else {
			igp.AddDevice(dc, nil)
		}
	}
	e, _ := NewBGPEngine(devs, nil, igp)
	res := e.Run(60)
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	for _, rt := range e.BestRoutes("c2") {
		if rt.Prefix == mustPfx("203.0.113.0/24") && !rt.FromEBGP {
			t.Errorf("c2 best should be eBGP: %+v", rt)
		}
	}
}

func TestShorterASPathWins(t *testing.T) {
	// b hears the prefix directly from AS1 and via AS3 (longer path).
	mk := func(host string, asn int, ifaces []InterfaceConfig, nbrs []BGPNeighbor, nets ...netip.Prefix) *DeviceConfig {
		return &DeviceConfig{Hostname: host, Interfaces: ifaces,
			BGP: &BGPConfig{ASN: asn, RouterID: ifaces[0].Addr, Networks: nets, Neighbors: nbrs}}
	}
	a := mk("a", 1, []InterfaceConfig{
		{Name: "e0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "e1", Addr: mustAddr("10.0.1.1"), Prefix: mustPfx("10.0.1.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.2"), RemoteASN: 2},
		{Addr: mustAddr("10.0.1.2"), RemoteASN: 3},
	}, mustPfx("203.0.113.0/24"))
	b := mk("b", 2, []InterfaceConfig{
		{Name: "e0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30")},
		{Name: "e1", Addr: mustAddr("10.0.2.1"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.0.1"), RemoteASN: 1},
		{Addr: mustAddr("10.0.2.2"), RemoteASN: 3},
	})
	c := mk("c", 3, []InterfaceConfig{
		{Name: "e0", Addr: mustAddr("10.0.1.2"), Prefix: mustPfx("10.0.1.0/30")},
		{Name: "e1", Addr: mustAddr("10.0.2.2"), Prefix: mustPfx("10.0.2.0/30")},
	}, []BGPNeighbor{
		{Addr: mustAddr("10.0.1.1"), RemoteASN: 1},
		{Addr: mustAddr("10.0.2.1"), RemoteASN: 2},
	})
	e, res := runBGP(t, []*DeviceConfig{a, b, c}, nil, nil)
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	for _, rt := range e.BestRoutes("b") {
		if rt.Prefix == mustPfx("203.0.113.0/24") {
			if len(rt.ASPath) != 1 || rt.ASPath[0] != 1 {
				t.Errorf("b path = %v, want [1]", rt.ASPath)
			}
		}
	}
}

// Sequential (Gauss-Seidel) processing distinguishes timing-sensitive
// oscillations from persistent ones: the crossed-IGP rrGadget cycles in
// lockstep rounds but settles when routers process asynchronously —
// whereas an RFC 3345-class MED/IGP condition (see topogen's gadget, run
// through the emulator tests) never settles.
func TestSequentialClassifiesTimingSensitivity(t *testing.T) {
	devs, domain, err := rrGadget()
	if err != nil {
		t.Fatal(err)
	}
	igp := NewCompositeIGP()
	for _, dc := range devs {
		if dc.OSPF != nil {
			igp.AddDevice(dc, domain)
		} else {
			igp.AddDevice(dc, nil)
		}
	}
	// Synchronous: oscillates under the IOS profile (lockstep flip).
	e1, _ := NewBGPEngine(devs, func(string) VendorProfile { return ProfileIOS }, igp)
	if res := e1.Run(60); !res.Oscillating {
		t.Fatalf("synchronous: %+v", res)
	}
	// Sequential: the same configuration has a stable assignment and
	// converges — the oscillation was timing-locked.
	devs2, domain2, _ := rrGadget()
	igp2 := NewCompositeIGP()
	for _, dc := range devs2 {
		if dc.OSPF != nil {
			igp2.AddDevice(dc, domain2)
		} else {
			igp2.AddDevice(dc, nil)
		}
	}
	e2, _ := NewBGPEngine(devs2, func(string) VendorProfile { return ProfileIOS }, igp2)
	e2.SetSequential(true)
	if res := e2.Run(60); !res.Converged {
		t.Fatalf("sequential: %+v", res)
	}
}

func TestSequentialBasicConvergence(t *testing.T) {
	e, err := NewBGPEngine(twoASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSequential(true)
	res := e.Run(50)
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	routes := e.BestRoutes("b")
	if len(routes) != 1 || routes[0].ASPath[0] != 1 {
		t.Errorf("b routes = %+v", routes)
	}
}
