package routing

import (
	"net/netip"
	"testing"
)

func mustAddr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func mustPfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineTopo builds a--b--c with configurable a-b cost.
//
//	a(.1)--10.0.0.0/30--(.2)b(.5)--10.0.0.4/30--(.6)c
func lineTopo(abCost int) []*DeviceConfig {
	mk := func(host string, lo string, ifaces ...InterfaceConfig) *DeviceConfig {
		nets := []OSPFNetwork{}
		for _, ic := range ifaces {
			nets = append(nets, OSPFNetwork{Prefix: ic.Prefix, Area: 0})
		}
		dc := &DeviceConfig{
			Hostname:   host,
			Interfaces: ifaces,
			OSPF:       &OSPFConfig{ProcessID: 1, Networks: nets},
		}
		if lo != "" {
			dc.Loopback = mustAddr(lo)
			dc.Interfaces = append(dc.Interfaces, InterfaceConfig{
				Name: "lo", Addr: dc.Loopback, Prefix: netip.PrefixFrom(dc.Loopback, 32), Cost: 1,
			})
			dc.OSPF.Networks = append(dc.OSPF.Networks, OSPFNetwork{Prefix: netip.PrefixFrom(dc.Loopback, 32), Area: 0})
		}
		return dc
	}
	a := mk("a", "10.255.0.1", InterfaceConfig{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30"), Cost: abCost})
	b := mk("b", "10.255.0.2",
		InterfaceConfig{Name: "eth0", Addr: mustAddr("10.0.0.2"), Prefix: mustPfx("10.0.0.0/30"), Cost: abCost},
		InterfaceConfig{Name: "eth1", Addr: mustAddr("10.0.0.5"), Prefix: mustPfx("10.0.0.4/30"), Cost: 1})
	c := mk("c", "10.255.0.3", InterfaceConfig{Name: "eth0", Addr: mustAddr("10.0.0.6"), Prefix: mustPfx("10.0.0.4/30"), Cost: 1})
	return []*DeviceConfig{a, b, c}
}

func converge(t *testing.T, devs []*DeviceConfig) *OSPFDomain {
	t.Helper()
	d := NewOSPFDomain(devs)
	if err := d.Converge(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOSPFNeighbors(t *testing.T) {
	d := converge(t, lineTopo(1))
	na := d.Neighbors("a")
	if len(na) != 1 || na[0].Hostname != "b" {
		t.Fatalf("a neighbors = %+v", na)
	}
	if na[0].Addr != mustAddr("10.0.0.2") || na[0].Iface != "eth0" {
		t.Errorf("neighbor detail = %+v", na[0])
	}
	nb := d.Neighbors("b")
	if len(nb) != 2 {
		t.Errorf("b neighbors = %d, want 2", len(nb))
	}
	if len(d.Neighbors("zz")) != 0 {
		t.Error("unknown host has neighbors")
	}
}

func TestOSPFRoutes(t *testing.T) {
	d := converge(t, lineTopo(1))
	// a must reach the b-c subnet via b.
	var toFar *Route
	for _, rt := range d.Routes("a") {
		rt := rt
		if rt.Prefix == mustPfx("10.0.0.4/30") {
			toFar = &rt
		}
	}
	if toFar == nil {
		t.Fatalf("a has no route to far subnet: %+v", d.Routes("a"))
	}
	if toFar.NextHop != mustAddr("10.0.0.2") || toFar.OutIf != "eth0" {
		t.Errorf("route = %+v", *toFar)
	}
	if toFar.Metric != 2 { // a->b (1) + b's eth1 cost (1)
		t.Errorf("metric = %d, want 2", toFar.Metric)
	}
	// a reaches c's loopback.
	found := false
	for _, rt := range d.Routes("a") {
		if rt.Prefix == mustPfx("10.255.0.3/32") {
			found = true
		}
	}
	if !found {
		t.Error("loopback route missing")
	}
}

func TestOSPFCostsRespected(t *testing.T) {
	d := converge(t, lineTopo(10))
	for _, rt := range d.Routes("a") {
		if rt.Prefix == mustPfx("10.0.0.4/30") && rt.Metric != 11 {
			t.Errorf("metric with cost 10 = %d, want 11", rt.Metric)
		}
	}
}

func TestOSPFIGPCost(t *testing.T) {
	d := converge(t, lineTopo(1))
	if c := d.IGPCost("a", mustAddr("10.0.0.2")); c != 0 {
		t.Errorf("connected cost = %d", c)
	}
	if c := d.IGPCost("a", mustAddr("10.255.0.3")); c != 3 { // 1 + 1 + lo cost 1
		t.Errorf("remote loopback cost = %d, want 3", c)
	}
	if c := d.IGPCost("a", mustAddr("203.0.113.1")); c >= 0 {
		t.Errorf("unreachable cost = %d, want negative", c)
	}
	if c := d.IGPCost("zz", mustAddr("10.0.0.2")); c >= 0 {
		t.Error("unknown host should be unreachable")
	}
}

func TestOSPFPartition(t *testing.T) {
	devs := lineTopo(1)
	// Remove b: a and c cannot see each other.
	d := converge(t, []*DeviceConfig{devs[0], devs[2]})
	if len(d.Neighbors("a")) != 0 {
		t.Error("phantom adjacency")
	}
	if len(d.Routes("a")) != 0 {
		t.Errorf("routes across partition: %+v", d.Routes("a"))
	}
}

func TestOSPFNetworkStatementGates(t *testing.T) {
	devs := lineTopo(1)
	// Drop the a-b subnet from b's OSPF networks: no adjacency forms even
	// though the interface exists (a mis-generated config is visible).
	b := devs[1]
	var nets []OSPFNetwork
	for _, n := range b.OSPF.Networks {
		if n.Prefix != mustPfx("10.0.0.0/30") {
			nets = append(nets, n)
		}
	}
	b.OSPF.Networks = nets
	d := converge(t, devs)
	if len(d.Neighbors("a")) != 0 {
		t.Error("adjacency formed without network statement")
	}
}

func TestDeviceConfigValidate(t *testing.T) {
	good := lineTopo(1)[0]
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := &DeviceConfig{} // no hostname
	if err := bad.Validate(); err == nil {
		t.Error("empty config accepted")
	}
	bad2 := &DeviceConfig{Hostname: "x", Interfaces: []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("192.168.0.0/24")},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("address outside subnet accepted")
	}
	bad3 := &DeviceConfig{Hostname: "x", Interfaces: []InterfaceConfig{
		{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/24")},
		{Name: "eth1", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/24")},
	}}
	if err := bad3.Validate(); err == nil {
		t.Error("duplicate address accepted")
	}
	bad4 := &DeviceConfig{Hostname: "x", BGP: &BGPConfig{ASN: -1}}
	if err := bad4.Validate(); err == nil {
		t.Error("invalid ASN accepted")
	}
}

func TestRIB(t *testing.T) {
	r := NewRIB()
	p := mustPfx("10.0.0.0/30")
	r.Install(Route{Prefix: p, Origin: OriginOSPF, Metric: 20, NextHop: mustAddr("10.0.0.2")})
	r.Install(Route{Prefix: p, Origin: OriginConnected, OutIf: "eth0"})
	best, ok := r.Best(p)
	if !ok || best.Origin != OriginConnected {
		t.Errorf("best = %+v (connected must win)", best)
	}
	r.Remove(p, OriginConnected)
	best, _ = r.Best(p)
	if best.Origin != OriginOSPF {
		t.Error("fallback to OSPF failed")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
	r.Remove(p, OriginOSPF)
	if _, ok := r.Best(p); ok {
		t.Error("route survived removal")
	}
	if r.Len() != 0 || len(r.Prefixes()) != 0 {
		t.Error("RIB not empty")
	}
}

func TestInterfaceByAddr(t *testing.T) {
	dc := lineTopo(1)[0]
	ic, ok := dc.InterfaceByAddr(mustAddr("10.0.0.1"))
	if !ok || ic.Name != "eth0" {
		t.Errorf("got %+v %v", ic, ok)
	}
	if _, ok := dc.InterfaceByAddr(mustAddr("203.0.113.1")); ok {
		t.Error("phantom interface")
	}
}

func TestDomainString(t *testing.T) {
	d := NewOSPFDomain(lineTopo(1))
	if d.String() != "ospf-domain(3 routers)" {
		t.Errorf("String = %q", d.String())
	}
}

func TestRouterIDFallbacks(t *testing.T) {
	// Without a loopback the first interface address stands in.
	devs := lineTopo(1)
	a := devs[0]
	a.Loopback = netip.Addr{}
	var kept []InterfaceConfig
	for _, ic := range a.Interfaces {
		if ic.Name != "lo" {
			kept = append(kept, ic)
		}
	}
	a.Interfaces = kept
	var nets []OSPFNetwork
	for _, n := range a.OSPF.Networks {
		if n.Prefix.Bits() != 32 {
			nets = append(nets, n)
		}
	}
	a.OSPF.Networks = nets
	d := converge(t, devs)
	nbrs := d.Neighbors("b")
	for _, nbr := range nbrs {
		if nbr.Hostname == "a" && nbr.RouterID != mustAddr("10.0.0.1") {
			t.Errorf("router-id fallback = %v", nbr.RouterID)
		}
	}
}

// NewISISDomain behaves like the OSPF engine over the enabled interfaces.
func TestISISDomainSPF(t *testing.T) {
	devs := lineTopo(1)
	for _, dc := range devs {
		var enabled []string
		for _, ic := range dc.Interfaces {
			if ic.Name != "lo" {
				enabled = append(enabled, ic.Name)
			}
		}
		dc.ISIS = &ISISConfig{NET: "49.0001." + dc.Hostname + ".00", Interfaces: enabled}
		dc.OSPF = nil
	}
	d := NewISISDomain(devs)
	if err := d.Converge(); err != nil {
		t.Fatal(err)
	}
	if len(d.Neighbors("a")) != 1 {
		t.Errorf("a isis neighbors = %+v", d.Neighbors("a"))
	}
	// Loopbacks advertise automatically (lo always enabled).
	found := false
	for _, rt := range d.Routes("a") {
		if rt.Prefix == mustPfx("10.255.0.3/32") {
			found = true
		}
	}
	if !found {
		t.Errorf("loopback route missing: %+v", d.Routes("a"))
	}
	// Devices without ISIS are excluded.
	d2 := NewISISDomain(lineTopo(1))
	if len(d2.Neighbors("a")) != 0 {
		t.Error("non-ISIS devices formed adjacencies")
	}
}
