package routing

import "net/netip"

// CompositeIGP combines per-AS OSPF domains into one IGPCoster for the BGP
// engine: directly connected destinations cost 0 regardless of any IGP;
// otherwise the host's own OSPF domain answers; destinations outside both
// are unreachable.
type CompositeIGP struct {
	devices map[string]*DeviceConfig
	domains map[string]*OSPFDomain // hostname -> its domain
}

// NewCompositeIGP returns an empty composite.
func NewCompositeIGP() *CompositeIGP {
	return &CompositeIGP{devices: map[string]*DeviceConfig{}, domains: map[string]*OSPFDomain{}}
}

// AddDevice registers a device (with or without an OSPF domain).
func (c *CompositeIGP) AddDevice(dc *DeviceConfig, domain *OSPFDomain) {
	c.devices[dc.Hostname] = dc
	if domain != nil {
		c.domains[dc.Hostname] = domain
	}
}

// IGPCost implements IGPCoster.
func (c *CompositeIGP) IGPCost(host string, addr netip.Addr) int {
	dc, ok := c.devices[host]
	if !ok {
		return -1
	}
	for _, ic := range dc.Interfaces {
		if ic.Prefix.Contains(addr) {
			return 0
		}
	}
	if dc.HasLoopback() && dc.Loopback == addr {
		return 0
	}
	if d, ok := c.domains[host]; ok {
		return d.IGPCost(host, addr)
	}
	return -1
}
