package routing

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// VendorProfile captures the decision-process differences between BGP
// implementations that §7.2 exploits: the 2013 Quagga default skipped the
// IGP-cost tie-break, so the Bad-Gadget style oscillation visible on IOS,
// JunOS and C-BGP did not appear on Quagga.
type VendorProfile struct {
	Name string
	// UseIGPTieBreak enables decision step "prefer lowest IGP metric to
	// next hop".
	UseIGPTieBreak bool
	// AlwaysCompareMED compares MED between routes from different
	// neighbouring ASes (off everywhere by default).
	AlwaysCompareMED bool
}

// The reference implementations of §5.4/§7.2.
var (
	ProfileQuagga = VendorProfile{Name: "quagga", UseIGPTieBreak: false}
	ProfileIOS    = VendorProfile{Name: "ios", UseIGPTieBreak: true}
	ProfileJunos  = VendorProfile{Name: "junos", UseIGPTieBreak: true}
	ProfileCBGP   = VendorProfile{Name: "cbgp", UseIGPTieBreak: true}
)

// ProfileFor maps a syntax name to its vendor profile, defaulting to
// Quagga.
func ProfileFor(syntax string) VendorProfile {
	switch strings.ToLower(syntax) {
	case "ios":
		return ProfileIOS
	case "junos":
		return ProfileJunos
	case "cbgp":
		return ProfileCBGP
	default:
		return ProfileQuagga
	}
}

// BGPRoute is one path with its attributes.
type BGPRoute struct {
	Prefix       netip.Prefix
	NextHop      netip.Addr
	ASPath       []int
	LocalPref    int // default 100
	MED          int
	FromEBGP     bool       // learned over an eBGP session
	LearnedFrom  netip.Addr // peer the route came from (zero when local)
	Local        bool       // locally originated
	OriginatorID netip.Addr // router-id of the injecting router (RR loop prevention)
	FromRRClient bool       // learned from one of my clients
}

func (r BGPRoute) pathString() string {
	parts := make([]string, len(r.ASPath))
	for i, a := range r.ASPath {
		parts[i] = fmt.Sprint(a)
	}
	return strings.Join(parts, " ")
}

// String renders like a `show ip bgp` line.
func (r BGPRoute) String() string {
	return fmt.Sprintf("%v via %v path [%s] lp %d med %d", r.Prefix, r.NextHop, r.pathString(), r.LocalPref, r.MED)
}

// IGPCoster supplies IGP metrics for the decision process's tie-break.
type IGPCoster interface {
	// IGPCost returns the metric from host to addr, 0 when connected,
	// negative when unreachable.
	IGPCost(host string, addr netip.Addr) int
}

// zeroIGP reports every destination connected; used when no IGP runs.
type zeroIGP struct{}

func (zeroIGP) IGPCost(string, netip.Addr) int { return 0 }

type session struct {
	peerHost string
	peerAddr netip.Addr // address I send to / receive from
	cfg      BGPNeighbor
	ebgp     bool
	// myAddr is the local address used on this session (precomputed once;
	// see myAddressOn). Kept comparable so session sets compare with ==.
	myAddr netip.Addr
}

type speaker struct {
	host     string
	dc       *DeviceConfig
	profile  VendorProfile
	routerID netip.Addr
	sessions []session
	// sorted is sessions ordered by peer address (the deterministic
	// processing order), precomputed once at engine build.
	sorted []session
	// sessTo maps peer hostname to this speaker's first session toward it
	// (reverseSession semantics), precomputed once at engine build.
	sessTo map[string]session
	// advCache memoizes advertise() per session target address and prefix;
	// see advEntry. advMu guards it during sharded rounds, when several of
	// the speaker's peers may pull from it concurrently (shard.go).
	advCache map[netip.Addr]map[netip.Prefix]advEntry
	advMu    sync.Mutex
	// adjIn[peerAddr] is the current set of routes heard from that peer.
	adjIn map[netip.Addr][]BGPRoute
	// locRIB is the selected best route per prefix.
	locRIB map[netip.Prefix]BGPRoute
	// seg is the speaker's segment of the engine's protocol-state hash,
	// maintained incrementally (recomputed only when the speaker's state
	// changes; see segHash).
	seg uint64
}

// BGPEngine runs the path-vector computation over a set of speakers.
type BGPEngine struct {
	speakers map[string]*speaker
	order    []string
	igp      IGPCoster
	// addrOwner maps every configured address to its host, for session
	// establishment.
	addrOwner map[netip.Addr]string

	sequential bool
	rounds     int
	// stateHashes records the rounds at which each protocol-state hash was
	// observed (up to the last three). Without a perturber a single repeat
	// is a cycle; under perturbation a state can legitimately recur (a
	// lost route is re-learned), so oscillation requires three sightings
	// with a consistent period.
	stateHashes map[uint64][]int
	oscillating bool
	cycleLen    int
	converged   bool
	cancelled   bool
	// SessionsUp lists established sessions after New.
	sessionsUp   int
	sessionsDown []string

	// pert, when set, degrades every advertisement delivery; nil is the
	// zero-perturbation fast path.
	pert Perturber
	// churn counts best-route changes per prefix across all speakers;
	// changedAt records the last round each speaker's selection changed.
	churn     map[netip.Prefix]int
	changedAt map[string]int
	// sessFlaps counts up↔down transitions per unordered session pair, as
	// observed at delivery time — the supervisor's evidence for locating a
	// flapping speaker.
	sessFlaps map[[2]string]int
	sessUp    map[[2]string]bool

	// Incremental-reconvergence state (see replay.go). replay is the
	// previous run's trajectory being replayed (nil when inactive); record
	// accumulates this run's trajectory. staticDirty marks speakers whose
	// configuration differs from the replayed run's; deviant marks speakers
	// that have departed from the trajectory mid-run. ran guards against
	// replaying into a continuation run.
	replay      *BGPReplay
	record      *BGPReplay
	staticDirty map[string]bool
	deviant     map[string]bool
	ran         bool

	statRestored      int64
	statDirtyPrefixes int64
	statRoundsSkipped int64

	// Sharded-evaluation state (see shard.go). shardWorkers is the SetShards
	// knob (<= 1 keeps the sequential sweep); plan caches the per-AS
	// partition and its dependency DAG; pertMu serializes perturbation-layer
	// calls during concurrent shard evaluation. The stat pair accumulates
	// across runs of this engine.
	shardWorkers     int
	plan             *shardPlan
	pertMu           sync.Mutex
	statShardRounds  int64
	statCrossAdverts int64
}

// NewBGPEngine wires up sessions between the given devices. profileOf maps
// hostname to vendor profile (nil means Quagga everywhere); igp supplies
// metrics (nil means all destinations connected).
func NewBGPEngine(devices []*DeviceConfig, profileOf func(host string) VendorProfile, igp IGPCoster) (*BGPEngine, error) {
	if igp == nil {
		igp = zeroIGP{}
	}
	e := &BGPEngine{
		speakers:    map[string]*speaker{},
		igp:         igp,
		addrOwner:   map[netip.Addr]string{},
		stateHashes: map[uint64][]int{},
		churn:       map[netip.Prefix]int{},
		changedAt:   map[string]int{},
		sessFlaps:   map[[2]string]int{},
		sessUp:      map[[2]string]bool{},
	}
	for _, dc := range devices {
		if dc.BGP == nil {
			continue
		}
		prof := ProfileQuagga
		if profileOf != nil {
			prof = profileOf(dc.Hostname)
		}
		rid := dc.BGP.RouterID
		if !rid.IsValid() && dc.HasLoopback() {
			rid = dc.Loopback
		}
		if !rid.IsValid() && len(dc.Interfaces) > 0 {
			rid = dc.Interfaces[0].Addr
		}
		sp := &speaker{
			host: dc.Hostname, dc: dc, profile: prof, routerID: rid,
			adjIn:  map[netip.Addr][]BGPRoute{},
			locRIB: map[netip.Prefix]BGPRoute{},
		}
		e.speakers[dc.Hostname] = sp
		e.order = append(e.order, dc.Hostname)
		for _, ic := range dc.Interfaces {
			e.addrOwner[ic.Addr] = dc.Hostname
		}
		if dc.HasLoopback() {
			e.addrOwner[dc.Loopback] = dc.Hostname
		}
	}
	sort.Strings(e.order)
	// Establish sessions: a neighbor statement whose address belongs to a
	// device that has a matching reverse session.
	for _, host := range e.order {
		sp := e.speakers[host]
		for _, nbr := range sp.dc.BGP.Neighbors {
			peerHost, ok := e.addrOwner[nbr.Addr]
			if !ok {
				e.sessionsDown = append(e.sessionsDown, fmt.Sprintf("%s -> %v (address unknown)", host, nbr.Addr))
				continue
			}
			peer := e.speakers[peerHost]
			if peer == nil {
				e.sessionsDown = append(e.sessionsDown, fmt.Sprintf("%s -> %s@%v (runs no BGP)", host, peerHost, nbr.Addr))
				continue
			}
			if peer.dc.BGP.ASN != nbr.RemoteASN {
				e.sessionsDown = append(e.sessionsDown, fmt.Sprintf("%s -> %s@%v (remote-as %d, actual %d)", host, peerHost, nbr.Addr, nbr.RemoteASN, peer.dc.BGP.ASN))
				continue
			}
			sp.sessions = append(sp.sessions, session{
				peerHost: peerHost,
				peerAddr: nbr.Addr,
				cfg:      nbr,
				ebgp:     nbr.RemoteASN != sp.dc.BGP.ASN,
			})
			e.sessionsUp++
		}
	}
	// A deterministic report: map iteration never orders this list, and
	// every entry names the peer address, so golden diffs are stable.
	sort.Strings(e.sessionsDown)
	// Second pass: precompute per-session local addresses, the sorted
	// processing order, the reverse-session index, and each speaker's
	// initial state-hash segment.
	for _, host := range e.order {
		sp := e.speakers[host]
		for i := range sp.sessions {
			sp.sessions[i].myAddr = e.myAddressOn(sp, sp.sessions[i])
		}
		sp.sorted = make([]session, len(sp.sessions))
		copy(sp.sorted, sp.sessions)
		sort.Slice(sp.sorted, func(i, j int) bool { return sp.sorted[i].peerAddr.Less(sp.sorted[j].peerAddr) })
		sp.sessTo = make(map[string]session, len(sp.sessions))
		for _, s := range sp.sessions {
			if _, ok := sp.sessTo[s.peerHost]; !ok {
				sp.sessTo[s.peerHost] = s
			}
		}
		sp.advCache = map[netip.Addr]map[netip.Prefix]advEntry{}
		sp.seg = e.segHash(sp)
	}
	return e, nil
}

// SessionsUp returns the number of configured sessions that matched a
// reachable, correctly-numbered peer.
func (e *BGPEngine) SessionsUp() int { return e.sessionsUp }

// SessionsDown describes the neighbor statements that could not form a
// session — the configuration errors emulation is meant to surface. The
// list is sorted and each entry carries the peer address, so reports are
// byte-stable across runs.
func (e *BGPEngine) SessionsDown() []string { return e.sessionsDown }

// SetPerturber installs a control-plane perturbation layer; nil restores
// the perfect-delivery fast path. Install before Run.
func (e *BGPEngine) SetPerturber(p Perturber) { e.pert = p }

// deliver applies the perturbation layer to one session's advertisements
// for the current round, recording session up/down transitions.
func (e *BGPEngine) deliver(from, to string, routes []BGPRoute) []BGPRoute {
	if e.pert == nil {
		return routes
	}
	pair := [2]string{from, to}
	if pair[1] < pair[0] {
		pair = [2]string{to, from}
	}
	up := e.pert.SessionUp(e.rounds, from, to)
	if prev, seen := e.sessUp[pair]; seen && prev != up {
		e.sessFlaps[pair]++
	}
	e.sessUp[pair] = up
	if !up {
		return nil
	}
	return e.pert.Deliver(e.rounds, from, to, routes)
}

// myAddressOn returns the local address used for the session to peerAddr
// (the interface sharing the peer's subnet, or the loopback for
// loopback-peered iBGP sessions).
func (e *BGPEngine) myAddressOn(sp *speaker, s session) netip.Addr {
	for _, ic := range sp.dc.Interfaces {
		if ic.Prefix.Contains(s.peerAddr) && ic.Prefix.Bits() < 32 {
			return ic.Addr
		}
	}
	if sp.dc.HasLoopback() {
		return sp.dc.Loopback
	}
	if len(sp.dc.Interfaces) > 0 {
		return sp.dc.Interfaces[0].Addr
	}
	return netip.Addr{}
}

// SetSequential switches the processing model. The default is synchronous
// rounds (Jacobi): all speakers select, then all advertisements exchange at
// once — modelling MRAI-timer-locked routers updating in lockstep, the
// regime in which timing-sensitive oscillations manifest. Sequential mode
// (Gauss–Seidel) processes one speaker at a time against its peers' current
// state, modelling asynchronous routers; oscillation under sequential
// processing therefore indicates a configuration with no stable route
// assignment at all (an RFC 3345-class persistent oscillation), not a
// timing artifact.
func (e *BGPEngine) SetSequential(on bool) { e.sequential = on }

// Step runs one processing round (see SetSequential for the two models).
// It returns true when the round changed nothing (convergence).
func (e *BGPEngine) Step() bool {
	if e.sequential {
		if e.useSharded() {
			return e.stepSharded()
		}
		return e.stepSequential()
	}
	e.rounds++
	// Phase 1: selection.
	for _, host := range e.order {
		e.selectBest(e.speakers[host])
	}
	// Phase 2: advertisement into fresh adj-RIB-ins.
	next := map[string]map[netip.Addr][]BGPRoute{}
	for _, host := range e.order {
		next[host] = map[netip.Addr][]BGPRoute{}
	}
	for _, host := range e.order {
		sp := e.speakers[host]
		for _, s := range e.sessionsOf(sp) {
			peer := e.speakers[s.peerHost]
			myAddr := s.myAddr
			var out []BGPRoute
			for _, prefix := range sortedPrefixes(sp.locRIB) {
				rt := sp.locRIB[prefix]
				adv, ok := sp.advertise(rt, s, myAddr)
				if ok {
					out = append(out, adv)
				}
			}
			out = e.deliver(sp.host, s.peerHost, out)
			// The peer indexes the session by the address it configured for
			// me.
			peerSideAddr := e.addrFor(peer, sp, myAddr)
			if peerSideAddr.IsValid() {
				next[s.peerHost][peerSideAddr] = filterReceived(peer, out, peerSideAddr)
			}
		}
	}
	changed := false
	for _, host := range e.order {
		sp := e.speakers[host]
		if !adjEqual(sp.adjIn, next[host]) {
			changed = true
		}
		sp.adjIn = next[host]
	}
	if changed {
		// Re-select so observers see the post-round state.
		for _, host := range e.order {
			e.selectBest(e.speakers[host])
		}
	}
	// Synchronous rounds rewrite every adj-RIB-in wholesale, so refresh all
	// state-hash segments (cost parity with the previous full-state hash).
	for _, host := range e.order {
		sp := e.speakers[host]
		sp.seg = e.segHash(sp)
	}
	return !changed
}

// stepSequential processes speakers one at a time (Gauss–Seidel): each
// speaker pulls its peers' current advertisements, rebuilds its adj-RIB-in
// and re-selects before the next speaker runs.
//
// When a replay trajectory is armed (EnableIncremental), a speaker whose
// round state is provably identical to the recorded one restores it
// instead of recomputing — see replay.go for the admission argument.
// Recomputed speakers are checked against the record afterwards: an exact
// match re-adopts the recorded maps (so peers keep restoring), a mismatch
// marks the speaker deviant.
func (e *BGPEngine) stepSequential() bool {
	e.rounds++
	changed := false
	var hist replayRound
	if e.replay != nil {
		if idx := e.rounds - 1; idx >= 0 && idx < len(e.replay.rounds) {
			hist = e.replay.rounds[idx]
		} else {
			// The run outran the recorded trajectory; no further restores.
			e.replay = nil
		}
	}
	var rec replayRound
	if e.record != nil {
		rec = make(replayRound, len(e.order))
	}
	restoredThisRound := 0
	for _, host := range e.order {
		sp := e.speakers[host]
		if hist != nil {
			if h, ok := hist[host]; ok && e.canRestore(host, sp) {
				sp.adjIn = h.adjIn
				sp.locRIB = h.locRIB
				sp.seg = h.seg
				for _, p := range h.churned {
					e.churn[p]++
				}
				if len(h.churned) > 0 {
					e.changedAt[host] = e.rounds
				}
				changed = changed || h.changed
				if rec != nil {
					rec[host] = h
				}
				e.statRestored++
				restoredThisRound++
				continue
			}
		}
		newIn := map[netip.Addr][]BGPRoute{}
		for _, s := range e.sessionsOf(sp) {
			peer := e.speakers[s.peerHost]
			ps, ok := e.reverseSession(peer, sp)
			if !ok {
				continue
			}
			var out []BGPRoute
			for _, prefix := range sortedPrefixes(peer.locRIB) {
				rt := peer.locRIB[prefix]
				if adv, ok := peer.advertiseCached(rt, ps); ok {
					out = append(out, adv)
				}
			}
			out = e.deliver(peer.host, sp.host, out)
			newIn[s.peerAddr] = filterReceived(sp, out, s.peerAddr)
		}
		spChanged := !adjEqual(sp.adjIn, newIn)
		sp.adjIn = newIn
		churned, ribChanged := e.selectBest(sp)
		spChanged = spChanged || ribChanged
		if spChanged {
			changed = true
			sp.seg = e.segHash(sp)
		}
		if hist != nil {
			if h, ok := hist[host]; ok && sp.seg == h.seg &&
				adjIdentical(sp.adjIn, h.adjIn) && locRIBIdentical(sp.locRIB, h.locRIB) {
				// Back on (or still on) the trajectory: adopt the recorded
				// maps so identity holds by reference for downstream peers.
				sp.adjIn = h.adjIn
				sp.locRIB = h.locRIB
				delete(e.deviant, host)
			} else {
				e.deviant[host] = true
			}
		}
		if rec != nil {
			rec[host] = replayState{adjIn: sp.adjIn, locRIB: sp.locRIB, seg: sp.seg, changed: spChanged, churned: churned}
		}
	}
	if hist != nil && restoredThisRound == len(e.order) {
		e.statRoundsSkipped++
	}
	if rec != nil {
		e.record.rounds = append(e.record.rounds, rec)
	}
	return !changed
}

// advertiseCached is advertise() behind the speaker's per-session memo:
// outbound policy is a pure function of (route, session), so an unchanged
// route re-advertises the cached result (sharing its AS-path slice, which
// no downstream path mutates) instead of re-allocating it.
func (sp *speaker) advertiseCached(rt BGPRoute, s session) (BGPRoute, bool) {
	byPfx := sp.advCache[s.peerAddr]
	if byPfx == nil {
		byPfx = map[netip.Prefix]advEntry{}
		sp.advCache[s.peerAddr] = byPfx
	}
	if c, ok := byPfx[rt.Prefix]; ok && routeIdentical(c.src, rt) {
		return c.out, c.ok
	}
	out, ok := sp.advertise(rt, s, s.myAddr)
	byPfx[rt.Prefix] = advEntry{src: rt, out: out, ok: ok}
	return out, ok
}

// reverseSession finds peer's established session back to sp (first match
// in configuration order, via the precomputed index).
func (e *BGPEngine) reverseSession(peer, sp *speaker) (session, bool) {
	s, ok := peer.sessTo[sp.host]
	return s, ok
}

func locRIBEqual(a, b map[netip.Prefix]BGPRoute) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ra := range a {
		rb, ok := b[p]
		if !ok || !routeEqual(ra, rb) {
			return false
		}
	}
	return true
}

// addrFor finds which established session address the peer uses for the
// sender (preferring the sender's exact session address). A session only
// carries routes when BOTH ends configured it consistently — a remote-as
// mismatch on either side leaves it down, exactly as in a real lab.
func (e *BGPEngine) addrFor(peer, sender *speaker, senderAddr netip.Addr) netip.Addr {
	for _, s := range peer.sessions {
		if s.peerHost == sender.host && s.peerAddr == senderAddr {
			return s.peerAddr
		}
	}
	for _, s := range peer.sessions {
		if s.peerHost == sender.host {
			return s.peerAddr
		}
	}
	return netip.Addr{}
}

// filterReceived applies inbound processing: loop prevention and local-pref
// assignment.
func filterReceived(sp *speaker, routes []BGPRoute, fromAddr netip.Addr) []BGPRoute {
	var cfg *BGPNeighbor
	for i := range sp.dc.BGP.Neighbors {
		if sp.dc.BGP.Neighbors[i].Addr == fromAddr {
			cfg = &sp.dc.BGP.Neighbors[i]
			break
		}
	}
	var out []BGPRoute
	for _, r := range routes {
		if containsASN(r.ASPath, sp.dc.BGP.ASN) && cfg != nil && cfg.RemoteASN != sp.dc.BGP.ASN {
			continue // eBGP AS-path loop
		}
		if r.OriginatorID.IsValid() && r.OriginatorID == sp.routerID {
			continue // RR originator loop
		}
		r.LearnedFrom = fromAddr
		if cfg != nil && cfg.RemoteASN != sp.dc.BGP.ASN {
			r.FromEBGP = true
			if cfg.LocalPrefIn > 0 {
				r.LocalPref = cfg.LocalPrefIn
			} else {
				r.LocalPref = 100
			}
		} else {
			r.FromEBGP = false
			r.FromRRClient = cfg != nil && cfg.RRClient
		}
		r.Local = false
		out = append(out, r)
	}
	return out
}

// advertise applies outbound policy for one route on one session.
func (sp *speaker) advertise(rt BGPRoute, s session, myAddr netip.Addr) (BGPRoute, bool) {
	out := rt
	if s.ebgp {
		if containsASN(rt.ASPath, s.cfg.RemoteASN) {
			return BGPRoute{}, false
		}
		out.ASPath = append([]int{sp.dc.BGP.ASN}, rt.ASPath...)
		out.NextHop = myAddr
		out.MED = s.cfg.MEDOut
		out.LocalPref = 0
		out.OriginatorID = netip.Addr{}
		out.FromRRClient = false
		return out, true
	}
	// iBGP advertisement rules.
	switch {
	case rt.Local, rt.FromEBGP:
		// Locally known routes go to every iBGP peer, with next-hop-self
		// (the loopback) so the IGP can resolve it.
		if sp.dc.HasLoopback() {
			out.NextHop = sp.dc.Loopback
		} else {
			out.NextHop = myAddr
		}
		out.OriginatorID = sp.routerID
	case rt.FromRRClient:
		// Reflected from a client: to all iBGP peers.
	default:
		// From a non-client iBGP peer: only to my clients.
		if !s.cfg.RRClient {
			return BGPRoute{}, false
		}
	}
	out.ASPath = append([]int{}, rt.ASPath...)
	out.FromRRClient = false
	if !out.OriginatorID.IsValid() {
		out.OriginatorID = rt.OriginatorID
	}
	return out, true
}

// sessionsOf returns the speaker's sessions in deterministic processing
// order (sorted by peer address, precomputed at engine build). Callers
// must not mutate the returned slice.
func (e *BGPEngine) sessionsOf(sp *speaker) []session {
	return sp.sorted
}

// selectBest runs the decision process for every known prefix. It returns
// the prefixes whose selection changed (collected only while recording a
// replay trajectory) and whether the loc-RIB changed at all.
func (e *BGPEngine) selectBest(sp *speaker) (churned []netip.Prefix, ribChanged bool) {
	candidates := map[netip.Prefix][]BGPRoute{}
	// Locally originated networks.
	for _, p := range sp.dc.BGP.Networks {
		nh := netip.Addr{}
		candidates[p] = append(candidates[p], BGPRoute{
			Prefix: p, NextHop: nh, LocalPref: 100, Local: true,
		})
	}
	peers := make([]netip.Addr, 0, len(sp.adjIn))
	for a := range sp.adjIn {
		peers = append(peers, a)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Less(peers[j]) })
	for _, peer := range peers {
		for _, r := range sp.adjIn[peer] {
			// Next-hop reachability check.
			if r.NextHop.IsValid() && e.igp.IGPCost(sp.host, r.NextHop) < 0 {
				continue
			}
			candidates[r.Prefix] = append(candidates[r.Prefix], r)
		}
	}
	if e.replay != nil {
		e.statDirtyPrefixes += int64(len(candidates))
	}
	newRIB := map[netip.Prefix]BGPRoute{}
	for p, cands := range candidates {
		best, ok := e.decide(sp, cands)
		if ok {
			newRIB[p] = best
		}
	}
	churned, ribChanged = e.recordChurn(sp, newRIB)
	sp.locRIB = newRIB
	return churned, ribChanged
}

// recordChurn counts best-route changes between a speaker's old and new
// selections — the per-prefix route-churn metric convergence experiments
// report — and stamps the speaker's last-changed round for the watchdog's
// unstable-speaker detection. The changed prefixes are collected (in
// arbitrary order — replay applies them as a set) only while a replay
// trajectory is being recorded. changed is true exactly when the loc-RIB
// content changed (it is equivalent to !locRIBEqual(old, new)).
func (e *BGPEngine) recordChurn(sp *speaker, newRIB map[netip.Prefix]BGPRoute) (churned []netip.Prefix, changed bool) {
	for p, nr := range newRIB {
		or, had := sp.locRIB[p]
		if !had || !routeEqual(or, nr) {
			e.churn[p]++
			changed = true
			if e.record != nil {
				churned = append(churned, p)
			}
		}
	}
	for p := range sp.locRIB {
		if _, still := newRIB[p]; !still {
			e.churn[p]++
			changed = true
			if e.record != nil {
				churned = append(churned, p)
			}
		}
	}
	if changed {
		e.changedAt[sp.host] = e.rounds
	}
	return churned, changed
}

// RouteChurn returns the per-prefix count of best-route changes across all
// speakers since the engine was built (rounds-to-quiescence's companion
// metric: how much the selections moved on the way there).
func (e *BGPEngine) RouteChurn() map[netip.Prefix]int {
	out := make(map[netip.Prefix]int, len(e.churn))
	for p, n := range e.churn {
		out[p] = n
	}
	return out
}

// TotalChurn sums RouteChurn over all prefixes.
func (e *BGPEngine) TotalChurn() int {
	n := 0
	for _, c := range e.churn {
		n += c
	}
	return n
}

// UnstableSpeakers returns the speakers whose selection changed within the
// last `window` rounds, sorted — the devices implicated in a detected
// oscillation.
func (e *BGPEngine) UnstableSpeakers(window int) []string {
	if window < 1 {
		window = 1
	}
	var out []string
	for host, at := range e.changedAt {
		if at > e.rounds-window {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}

// FlappingSessions returns the unordered session pairs that transitioned
// up↔down at least min times during the run, sorted — the adjacency-change
// log a supervisor uses to locate a sick speaker.
func (e *BGPEngine) FlappingSessions(min int) [][2]string {
	if min < 1 {
		min = 1
	}
	var out [][2]string
	for pair, n := range e.sessFlaps {
		if n >= min {
			out = append(out, pair)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// SoftReset flushes the given speakers' RIBs (adj-RIB-in and selections)
// and clears the engine's convergence verdict, so a following Run
// re-exchanges routes from scratch on those sessions — the supervisor's
// `clear ip bgp` escalation step. The perturbation layer is notified so
// session-state-local faults can heal.
func (e *BGPEngine) SoftReset(hosts []string) {
	for _, host := range hosts {
		sp, ok := e.speakers[host]
		if !ok {
			continue
		}
		sp.adjIn = map[netip.Addr][]BGPRoute{}
		sp.locRIB = map[netip.Prefix]BGPRoute{}
		sp.seg = e.segHash(sp)
		if e.pert != nil {
			e.pert.OnSoftReset(host)
		}
	}
	// A flush invalidates both the replayed trajectory and the recording:
	// the continuation run departs from any from-scratch trajectory.
	e.replay, e.record = nil, nil
	e.stateHashes = map[uint64][]int{}
	e.converged, e.oscillating, e.cancelled = false, false, false
	e.cycleLen = 0
}

// SessionComponents counts the connected components of the established
// session graph over the engine's speakers: more than one means the
// control plane is partitioned (speakers exist that can never hear each
// other's routes).
func (e *BGPEngine) SessionComponents() int {
	if len(e.order) == 0 {
		return 0
	}
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, h := range e.order {
		parent[h] = h
	}
	for _, host := range e.order {
		for _, s := range e.speakers[host].sessions {
			parent[find(host)] = find(s.peerHost)
		}
	}
	roots := map[string]bool{}
	for _, h := range e.order {
		roots[find(h)] = true
	}
	return len(roots)
}

// decide implements the BGP decision process with the speaker's vendor
// profile.
func (e *BGPEngine) decide(sp *speaker, cands []BGPRoute) (BGPRoute, bool) {
	if len(cands) == 0 {
		return BGPRoute{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if e.better(sp, c, best) {
			best = c
		}
	}
	return best, true
}

// better reports whether a beats b under the decision process.
func (e *BGPEngine) better(sp *speaker, a, b BGPRoute) bool {
	// 1. Highest local-pref.
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	// 2. Locally originated.
	if a.Local != b.Local {
		return a.Local
	}
	// 3. Shortest AS path.
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	// 4. Lowest MED, comparable only between routes from the same
	// neighbouring AS (unless always-compare-med).
	sameNeighborAS := len(a.ASPath) > 0 && len(b.ASPath) > 0 && a.ASPath[0] == b.ASPath[0]
	if (sameNeighborAS || sp.profile.AlwaysCompareMED) && a.MED != b.MED {
		return a.MED < b.MED
	}
	// 5. eBGP over iBGP.
	if a.FromEBGP != b.FromEBGP {
		return a.FromEBGP
	}
	// 6. Lowest IGP metric to next hop (vendor-dependent, §7.2).
	if sp.profile.UseIGPTieBreak {
		ca, cb := e.igpCostOf(sp, a), e.igpCostOf(sp, b)
		if ca != cb {
			return ca < cb
		}
	}
	// 7. Lowest originator router-id (RFC 4456: the ORIGINATOR_ID
	// substitutes for the router-id of reflected routes). This comparison
	// is route-intrinsic — every viewer ranks candidates identically — so
	// a decision process that stops here (Quagga without the IGP
	// tie-break) reaches a globally consistent, stable choice where the
	// viewer-dependent IGP comparison of step 6 can oscillate.
	ra, rb := a.OriginatorID, b.OriginatorID
	if !ra.IsValid() {
		ra = a.LearnedFrom
	}
	if !rb.IsValid() {
		rb = b.LearnedFrom
	}
	switch {
	case !ra.IsValid() && rb.IsValid():
		return true
	case ra.IsValid() && !rb.IsValid():
		return false
	case ra.IsValid() && rb.IsValid() && ra != rb:
		return ra.Less(rb)
	}
	// 8. Lowest peer address.
	al, bl := a.LearnedFrom, b.LearnedFrom
	switch {
	case !al.IsValid() && bl.IsValid():
		return true
	case al.IsValid() && !bl.IsValid():
		return false
	case al.IsValid() && bl.IsValid() && al != bl:
		return al.Less(bl)
	}
	return false
}

func (e *BGPEngine) igpCostOf(sp *speaker, r BGPRoute) int {
	if !r.NextHop.IsValid() {
		return 0
	}
	c := e.igp.IGPCost(sp.host, r.NextHop)
	if c < 0 {
		return 1 << 30
	}
	return c
}

// Run executes rounds until convergence, a repeated state (oscillation), or
// maxRounds. It returns the outcome.
func (e *BGPEngine) Run(maxRounds int) BGPResult {
	return e.RunContext(context.Background(), maxRounds)
}

// RunContext is Run with cancellation: the context is checked every round,
// and a cancelled run reports Cancelled instead of spinning to the round
// cap — a deploy-level timeout can reclaim a hung convergence. Calling it
// again (after a SoftReset) continues from the current protocol state
// under a fresh round budget.
func (e *BGPEngine) RunContext(ctx context.Context, maxRounds int) BGPResult {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxBGPRounds
	}
	// Replay is only valid for a fresh engine's first, unperturbed run: a
	// continuation (post-escalation) run departs from the from-scratch
	// trajectory, and the perturbation layer is stateful (flap counters,
	// delivery schedules), so perturbed runs neither replay nor record.
	if e.ran || e.pert != nil {
		e.replay, e.record = nil, nil
	}
	e.ran = true
	e.statRestored, e.statDirtyPrefixes, e.statRoundsSkipped = 0, 0, 0
	e.stateHashes = map[uint64][]int{}
	e.converged, e.oscillating, e.cancelled = false, false, false
	e.cycleLen = 0
	if e.pert != nil {
		e.pert.Reset()
	}
	for r := 0; r < maxRounds; r++ {
		if ctx.Err() != nil {
			e.cancelled = true
			break
		}
		quiet := e.Step()
		if quiet {
			if e.pert == nil || !e.pert.Pending(e.rounds) {
				e.converged = true
				break
			}
			// Delayed advertisements are still in flight: the state is
			// momentarily stable but must not register as convergence (or
			// as a cycle — it will change when the queue drains).
			continue
		}
		h := e.stateHash()
		seen := e.stateHashes[h]
		if cl, ok := e.cycleDetected(seen); ok {
			e.oscillating = true
			e.cycleLen = cl
			break
		}
		if len(seen) == 3 {
			seen = seen[1:]
		}
		e.stateHashes[h] = append(seen, e.rounds)
	}
	if !e.converged && !e.oscillating && !e.cancelled {
		e.oscillating = true // ran out of rounds without stabilising
		e.cycleLen = -1
	}
	return BGPResult{
		Converged:   e.converged,
		Oscillating: e.oscillating,
		Cancelled:   e.cancelled,
		Rounds:      e.rounds,
		CycleLen:    e.cycleLen,
	}
}

// cycleDetected decides whether re-seeing a state constitutes a cycle.
// Without a perturber one repeat suffices (the engine is deterministic, so
// a repeated state must loop forever). Under perturbation a state can
// legitimately recur — a lost route is re-learned, recreating an earlier
// table — so a cycle requires the state to repeat twice with the same
// period, which aperiodic loss does not produce but a flap schedule does.
func (e *BGPEngine) cycleDetected(seen []int) (int, bool) {
	if len(seen) == 0 {
		return 0, false
	}
	last := seen[len(seen)-1]
	if e.pert == nil {
		return e.rounds - last, true
	}
	if len(seen) >= 2 {
		prev := seen[len(seen)-2]
		if e.rounds-last == last-prev {
			return e.rounds - last, true
		}
	}
	return 0, false
}

// BGPResult summarises a Run.
type BGPResult struct {
	Converged   bool
	Oscillating bool
	// Cancelled reports that the run's context expired before either
	// convergence or a detected oscillation.
	Cancelled bool
	Rounds    int
	CycleLen  int
}

// stateHash combines every speaker's state-hash segment into one value
// covering the complete protocol state — every speaker's adj-RIB-in and
// selection. Selections alone are insufficient: during initial propagation
// the selected routes can be momentarily stable while longer paths are
// still flooding, which must not register as a cycle. The segments are
// XOR-combined (each is salted with its hostname, so identical speaker
// states cannot cancel), which lets sequential rounds maintain the hash
// incrementally: only speakers whose state changed re-render their
// segment. Only hash *equality* across rounds is observable (cycle
// detection), and for any reachable pair of rounds equal protocol states
// produce equal segments.
func (e *BGPEngine) stateHash() uint64 {
	var h uint64
	for _, host := range e.order {
		h ^= e.speakers[host].seg
	}
	return h
}

// segHash renders one speaker's protocol state — adj-RIB-in and selection
// — into its segment of the engine state hash.
func (e *BGPEngine) segHash(sp *speaker) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|", sp.host)
	peers := make([]netip.Addr, 0, len(sp.adjIn))
	for a := range sp.adjIn {
		peers = append(peers, a)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Less(peers[j]) })
	for _, peer := range peers {
		fmt.Fprintf(h, "<%v:", peer)
		for _, rt := range sp.adjIn[peer] {
			fmt.Fprintf(h, "%v>%v[%s]lp%dm%do%v;", rt.Prefix, rt.NextHop, rt.pathString(), rt.LocalPref, rt.MED, rt.OriginatorID)
		}
	}
	for _, p := range sortedPrefixes(sp.locRIB) {
		rt := sp.locRIB[p]
		fmt.Fprintf(h, "%v>%v[%s];", p, rt.NextHop, rt.pathString())
	}
	return h.Sum64()
}

// BestRoutes returns a speaker's selected routes, sorted by prefix (the
// emulated `show ip bgp`).
func (e *BGPEngine) BestRoutes(host string) []BGPRoute {
	sp, ok := e.speakers[host]
	if !ok {
		return nil
	}
	var out []BGPRoute
	for _, p := range sortedPrefixes(sp.locRIB) {
		out = append(out, sp.locRIB[p])
	}
	return out
}

// Speakers returns the hostnames running BGP, sorted.
func (e *BGPEngine) Speakers() []string {
	out := make([]string, len(e.order))
	copy(out, e.order)
	return out
}

func sortedPrefixes(m map[netip.Prefix]BGPRoute) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// adjEqual compares two adj-RIB-in states, treating absent and empty peer
// entries as equal.
func adjEqual(a, b map[netip.Addr][]BGPRoute) bool {
	keys := map[netip.Addr]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		ra, rb := a[k], b[k]
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if !routeEqual(ra[i], rb[i]) {
				return false
			}
		}
	}
	return true
}

func routeEqual(a, b BGPRoute) bool {
	if a.Prefix != b.Prefix || a.NextHop != b.NextHop || a.LocalPref != b.LocalPref ||
		a.MED != b.MED || a.FromEBGP != b.FromEBGP || a.Local != b.Local ||
		a.OriginatorID != b.OriginatorID || len(a.ASPath) != len(b.ASPath) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	return true
}

func containsASN(path []int, asn int) bool {
	for _, a := range path {
		if a == asn {
			return true
		}
	}
	return false
}
