package routing

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestBudgetBGPRounds(t *testing.T) {
	for _, tc := range []struct {
		in, want int
	}{
		{0, DefaultMaxBGPRounds},
		{-5, DefaultMaxBGPRounds},
		{1, 1},
		{250, 250},
	} {
		b := ConvergenceBudget{MaxBGPRounds: tc.in}
		if got := b.BGPRounds(); got != tc.want {
			t.Errorf("BGPRounds(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBudgetEscalated(t *testing.T) {
	b := ConvergenceBudget{MaxBGPRounds: 10, Timeout: 2 * time.Second}
	esc := b.Escalated(4)
	if esc.MaxBGPRounds != 40 {
		t.Errorf("escalated rounds = %d, want 40", esc.MaxBGPRounds)
	}
	if esc.Timeout != 2*time.Second {
		t.Errorf("escalation dropped the timeout: %v", esc.Timeout)
	}
	// Factors below 2 clamp to 2 (escalating by 0 or 1 would not escalate).
	for _, factor := range []int{-1, 0, 1} {
		if got := b.Escalated(factor).MaxBGPRounds; got != 20 {
			t.Errorf("Escalated(%d) rounds = %d, want 20", factor, got)
		}
	}
	// A zero-value budget escalates from the default cap.
	if got := (ConvergenceBudget{}).Escalated(2).MaxBGPRounds; got != 2*DefaultMaxBGPRounds {
		t.Errorf("zero budget escalated = %d, want %d", got, 2*DefaultMaxBGPRounds)
	}
}

func TestBudgetContext(t *testing.T) {
	// With a timeout the context carries a deadline.
	b := ConvergenceBudget{Timeout: time.Minute}
	ctx, cancel := b.Context()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("timeout budget produced a context without a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel did not cancel the timeout context")
	}
	// Without one the context is unbounded but still cancellable.
	ctx, cancel = ConvergenceBudget{}.Context()
	if _, ok := ctx.Deadline(); ok {
		t.Error("unbounded budget produced a deadline")
	}
	cancel()
	if ctx.Err() != context.Canceled {
		t.Errorf("err after cancel = %v", ctx.Err())
	}
}

func TestBudgetDescribe(t *testing.T) {
	b := ConvergenceBudget{MaxBGPRounds: 30}
	for _, tc := range []struct {
		res  BGPResult
		want string
	}{
		{BGPResult{Converged: true, Rounds: 7}, "converged in 7 rounds"},
		{BGPResult{Oscillating: true, Rounds: 12, CycleLen: 2}, "oscillating (cycle length 2 after 12 rounds)"},
		{BGPResult{Oscillating: true, Rounds: 30, CycleLen: -1}, "did not converge within 30 rounds"},
		{BGPResult{Cancelled: true, Rounds: 4}, "cancelled after 4 rounds"},
		// Cancellation dominates every other flag: the wall clock gave out,
		// whatever the protocol state looked like at that instant.
		{BGPResult{Cancelled: true, Converged: true, Rounds: 9}, "cancelled after 9 rounds"},
	} {
		if got := b.Describe(tc.res); got != tc.want {
			t.Errorf("Describe(%+v) = %q, want %q", tc.res, got, tc.want)
		}
	}
}

// A topology that needs exactly R rounds must converge under a budget of
// exactly R and must not under R-1 — the budget boundary is inclusive.
func TestConvergenceExactlyAtBudget(t *testing.T) {
	_, res := runBGP(t, twoASTopo(), nil, nil)
	if !res.Converged {
		t.Fatalf("reference run: %+v", res)
	}
	need := res.Rounds
	if need < 2 {
		t.Fatalf("fixture converges in %d rounds; boundary test needs >= 2", need)
	}

	e, err := NewBGPEngine(twoASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if at := e.Run(need); !at.Converged || at.Rounds != need {
		t.Errorf("budget %d: %+v, want convergence in exactly %d rounds", need, at, need)
	}

	e, err = NewBGPEngine(twoASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	under := e.Run(need - 1)
	if under.Converged {
		t.Errorf("budget %d converged: %+v", need-1, under)
	}
	if !under.Oscillating || under.CycleLen != -1 {
		t.Errorf("starved run = %+v, want Oscillating with CycleLen -1", under)
	}
}

// A context that is already expired cancels the run before the first round.
func TestRunContextCancelled(t *testing.T) {
	e, err := NewBGPEngine(twoASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.RunContext(ctx, 100)
	if !res.Cancelled || res.Converged || res.Oscillating {
		t.Fatalf("result = %+v, want Cancelled only", res)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", res.Rounds)
	}
	if got := (ConvergenceBudget{}).Describe(res); !strings.Contains(got, "cancelled after 0 rounds") {
		t.Errorf("Describe = %q", got)
	}
}

// A budget timeout expiring mid-run yields Cancelled through the lab-facing
// Context() path too.
func TestBudgetTimeoutCancelsRun(t *testing.T) {
	b := ConvergenceBudget{MaxBGPRounds: 100, Timeout: time.Nanosecond}
	e, err := NewBGPEngine(twoASTopo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := b.Context()
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass deterministically
	if res := e.RunContext(ctx, b.MaxBGPRounds); !res.Cancelled {
		t.Errorf("result = %+v, want Cancelled", res)
	}
}
