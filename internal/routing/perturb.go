package routing

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Control-plane perturbation (Emulytics-style protocol-level fault
// injection): the BGP engine's advertisement exchange and the link-state
// engine's adjacency formation consult an injected Perturber, so scenarios
// can degrade the control plane itself — lose, duplicate, delay and
// reorder advertisements, flap sessions mid-convergence, corrupt and then
// withdraw routes — instead of only failing topology elements. Every
// decision is a pure function of (seed, round, session, route), so a given
// seed reproduces the exact same failure byte-for-byte at any worker
// count; a nil Perturber is the zero-perturbation fast path and leaves the
// engines exactly as they were.

// Perturber is consulted by the protocol engines at every delivery point.
// Implementations must be deterministic: the engines call each hook under
// a single lock in a per-session-preserving order, so any state kept
// inside the perturber (delay queues, flap schedules) evolves
// reproducibly. In the default sequential sweep the calls are additionally
// globally ordered; the sharded driver (shard.go) preserves the relative
// order of the two calls touching any one session but interleaves
// different sessions, which is why custom Perturbers that do not implement
// the capture extension are evaluated sequentially.
type Perturber interface {
	// Reset clears round-keyed delivery state (delay queues, session-state
	// tracking). The BGP engine calls it at the start of every Run, so a
	// re-run replays the same schedule from round zero. Healing state
	// (sessions repaired by a soft reset) survives Reset.
	Reset()
	// SessionUp reports whether the BGP session from → to delivers during
	// this round; a down session delivers nothing (the receiver withdraws
	// everything heard on it).
	SessionUp(round int, from, to string) bool
	// AdjacencyUp reports whether the IGP adjacency between two routers
	// forms at all — lossy links drop enough hellos to kill the adjacency.
	AdjacencyUp(a, b string) bool
	// Deliver transforms the advertisements sent from → to this round:
	// drop (loss), duplicate, reorder, corrupt, or queue for later (delay).
	// The input slice must not be retained or mutated; return it unchanged
	// when no rule applies.
	Deliver(round int, from, to string, routes []BGPRoute) []BGPRoute
	// Pending reports whether queued (delayed) advertisements that differ
	// from the latest delivery are still in flight — the engine must not
	// declare convergence while they are.
	Pending(round int) bool
	// OnSoftReset notifies that a speaker's sessions were adjacency-reset
	// by the supervisor; recoverable faults on its sessions heal.
	OnSoftReset(host string)
}

// PerturbKind enumerates the rule types of the scheduled perturber.
type PerturbKind string

// The perturbation rule kinds.
const (
	PerturbLoss    PerturbKind = "loss"    // lose each UPDATE with probability Pct% (receiver keeps last-heard state)
	PerturbDelay   PerturbKind = "delay"   // deliver the table snapshot from Rounds rounds ago
	PerturbDup     PerturbKind = "dup"     // duplicate each route with probability Pct%
	PerturbReorder PerturbKind = "reorder" // deterministically shuffle each delivery
	PerturbFlap    PerturbKind = "flap"    // session alternates up/down with period Every
	PerturbCorrupt PerturbKind = "corrupt" // poison AS paths during [At, At+For), then withdraw
)

// PerturbRule is one scheduled perturbation. A and B name the affected
// session's endpoints (both directions); both empty means every session.
type PerturbRule struct {
	Kind PerturbKind
	A, B string
	// Pct is the per-route probability in percent (loss, dup).
	Pct int
	// Rounds is the delivery delay in engine rounds (delay).
	Rounds int
	// Every is the flap half-period: the session is up for Every rounds,
	// down for Every rounds (flap).
	Every int
	// At and For bound the corruption window [At, At+For) in rounds
	// (corrupt).
	At, For int
	// Recover marks a flap as session-state-local: a supervisor soft reset
	// of either endpoint repairs it. Without it the fault persists and the
	// escalation ladder ends in quarantine.
	Recover bool
}

// String renders the rule in chaos-script syntax.
func (r PerturbRule) String() string {
	session := ""
	if r.A != "" {
		session = r.A + ":" + r.B
	}
	switch r.Kind {
	case PerturbLoss, PerturbDup:
		if session == "" {
			return fmt.Sprintf("perturb %s %d", r.Kind, r.Pct)
		}
		return fmt.Sprintf("perturb %s %d on %s", r.Kind, r.Pct, session)
	case PerturbDelay:
		if session == "" {
			return fmt.Sprintf("perturb delay %d", r.Rounds)
		}
		return fmt.Sprintf("perturb delay %d on %s", r.Rounds, session)
	case PerturbReorder:
		if session == "" {
			return "perturb reorder"
		}
		return "perturb reorder on " + session
	case PerturbFlap:
		s := fmt.Sprintf("perturb flap %s every %d", session, r.Every)
		if r.Recover {
			s += " recover"
		}
		return s
	case PerturbCorrupt:
		return fmt.Sprintf("perturb corrupt %s at %d for %d", session, r.At, r.For)
	}
	return "perturb " + string(r.Kind)
}

// matches reports whether the rule covers the (unordered) session a↔b.
func (r PerturbRule) matches(a, b string) bool {
	if r.A == "" && r.B == "" {
		return true
	}
	return (r.A == a && r.B == b) || (r.A == b && r.B == a)
}

// corruptASN is prepended (three times) to poisoned AS paths: a private
// ASN no lab topology uses, so the lengthened path loses the shortest-path
// comparison and selection visibly churns when the corruption withdraws.
const corruptASN = 65535

// maxPerturbEvents bounds the schedule log so a runaway scenario cannot
// grow it without bound; the cap is far above any budgeted run's output.
const maxPerturbEvents = 10000

// ScheduledPerturber is the deterministic Perturber used by chaos
// scenarios: a rule list plus a seed. All randomness is a keyed FNV hash
// of (seed, round, session, route), never a stateful PRNG, so decisions do
// not depend on call order and the same seed reproduces the same schedule
// exactly.
type ScheduledPerturber struct {
	seed  uint64
	rules []PerturbRule

	// snapshots[session] ring-buffers recent table snapshots for delay
	// rules; sessionState[session] is the last SessionUp answer, for flap
	// transition counting.
	snapshots    map[string]map[int][]BGPRoute
	sessionState map[string]bool
	// delivered[dir][prefix] is the last route set a loss rule let through
	// on a direction — the receiver's view under retransmission semantics
	// (see the PerturbLoss case in Deliver). staleRound is the most recent
	// round in which a loss substituted state older than what the sender
	// currently advertises; Pending holds convergence open for it.
	delivered  map[string]map[string][]BGPRoute
	staleRound int
	// healed marks sessions repaired by a supervisor soft reset.
	healed map[string]bool

	events  []string
	dropped int
	// capture, when set, redirects logf into the pointed-at buffer instead
	// of the event log (bypassing the cap); the sharded round driver uses
	// it to collect per-delivery lines for canonical restaging at its merge
	// barrier.
	capture *[]string
}

// NewScheduledPerturber builds a perturber over the given rules. The same
// (seed, rules) always produces the same schedule.
func NewScheduledPerturber(seed uint64, rules []PerturbRule) *ScheduledPerturber {
	p := &ScheduledPerturber{seed: seed, rules: append([]PerturbRule(nil), rules...)}
	p.Reset()
	return p
}

// Seed returns the perturber's seed.
func (p *ScheduledPerturber) Seed() uint64 { return p.seed }

// Rules returns a copy of the rule list.
func (p *ScheduledPerturber) Rules() []PerturbRule {
	return append([]PerturbRule(nil), p.rules...)
}

// Reset clears delay queues and session-state tracking; healed sessions
// stay healed (a soft reset is a repair, not a reboot of the fault).
func (p *ScheduledPerturber) Reset() {
	p.snapshots = map[string]map[int][]BGPRoute{}
	p.sessionState = map[string]bool{}
	p.delivered = map[string]map[string][]BGPRoute{}
	p.staleRound = -1
	if p.healed == nil {
		p.healed = map[string]bool{}
	}
}

// Events returns the perturbation schedule as executed so far: one line
// per delivery-altering decision, in engine order — the byte-reproducible
// record the golden drills diff.
func (p *ScheduledPerturber) Events() []string {
	out := make([]string, len(p.events))
	copy(out, p.events)
	if p.dropped > 0 {
		out = append(out, fmt.Sprintf("(%d further events truncated)", p.dropped))
	}
	return out
}

func (p *ScheduledPerturber) logf(format string, args ...any) {
	if p.capture != nil {
		*p.capture = append(*p.capture, fmt.Sprintf(format, args...))
		return
	}
	if len(p.events) >= maxPerturbEvents {
		p.dropped++
		return
	}
	p.events = append(p.events, fmt.Sprintf(format, args...))
}

// setCapture implements the sharded driver's capture extension (see the
// perturbCapturer interface in shard.go): while buf is non-nil, event
// lines go there instead of the log. nil restores normal logging.
func (p *ScheduledPerturber) setCapture(buf *[]string) { p.capture = buf }

// restageEvents appends previously captured lines to the event log through
// the normal cap-respecting path, so a sharded run's log — including any
// truncation — is byte-identical to the sequential one.
func (p *ScheduledPerturber) restageEvents(lines []string) {
	for _, l := range lines {
		if len(p.events) >= maxPerturbEvents {
			p.dropped++
			continue
		}
		p.events = append(p.events, l)
	}
}

// hash mixes the seed with the given strings through FNV-1a; the result
// drives every probabilistic decision.
func (p *ScheduledPerturber) hash(parts ...string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", p.seed)
	for _, s := range parts {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	return h.Sum64()
}

// chance reports a hit with probability pct% for the given key material.
func (p *ScheduledPerturber) chance(pct int, parts ...string) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	return p.hash(parts...)%100 < uint64(pct)
}

func sessionKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + ":" + b
}

// SessionUp applies flap rules: the session alternates Every rounds up,
// Every rounds down. Healed sessions stay up.
func (p *ScheduledPerturber) SessionUp(round int, from, to string) bool {
	key := sessionKey(from, to)
	up := true
	for _, r := range p.rules {
		if r.Kind != PerturbFlap || !r.matches(from, to) || p.healed[key] {
			continue
		}
		every := r.Every
		if every < 1 {
			every = 1
		}
		if (round/every)%2 == 1 {
			up = false
		}
	}
	if prev, seen := p.sessionState[key]; !seen || prev != up {
		p.sessionState[key] = up
		if !up {
			p.logf("round %d: session %s down (flap)", round, key)
		} else if seen {
			p.logf("round %d: session %s up (flap)", round, key)
		}
	}
	return up
}

// AdjacencyUp applies loss rules to IGP adjacency formation: a lossy link
// drops hellos, and past the hash threshold the adjacency never forms for
// the run. The decision is round-independent (link-state engines compute
// the converged SPF state in one pass).
func (p *ScheduledPerturber) AdjacencyUp(a, b string) bool {
	for _, r := range p.rules {
		if r.Kind == PerturbLoss && r.matches(a, b) && p.chance(r.Pct, "adjacency", sessionKey(a, b)) {
			p.logf("adjacency %s suppressed (loss)", sessionKey(a, b))
			return false
		}
	}
	return true
}

// Deliver applies loss, dup, corrupt, reorder and delay rules, in that
// order, to one session's advertisements for one round.
func (p *ScheduledPerturber) Deliver(round int, from, to string, routes []BGPRoute) []BGPRoute {
	out := routes
	touched := false
	clone := func() {
		if !touched {
			out = append([]BGPRoute(nil), out...)
			touched = true
		}
	}
	dir := from + ">" + to
	for _, r := range p.rules {
		if !r.matches(from, to) {
			continue
		}
		switch r.Kind {
		case PerturbLoss:
			// Retransmission semantics: losing an UPDATE does not withdraw
			// the route — the receiver keeps the state it last heard (BGP
			// runs over TCP; a lost segment is stale state, not absence).
			// A route that was never delivered at all is a blackhole: it
			// stays dropped, a stable degraded fixed point. Delivering
			// state older than what the sender currently advertises marks
			// the round stale, and Pending keeps the engine from declaring
			// convergence on a receiver that is still behind.
			prev := p.delivered[dir]
			next := make(map[string][]BGPRoute, len(out))
			var kept []BGPRoute
			dropped, stale := 0, 0
			for _, rt := range out {
				key := rt.Prefix.String()
				if p.chance(r.Pct, "loss", fmt.Sprint(round), dir, key) {
					old, heard := prev[key]
					if !heard {
						dropped++
						continue
					}
					kept = append(kept, old...)
					next[key] = old
					if len(old) != 1 || !routeEqual(old[0], rt) {
						stale++
					}
					continue
				}
				kept = append(kept, rt)
				next[key] = append(next[key], rt)
			}
			// Withdrawals always get through: prefixes the sender stopped
			// advertising leave the receiver's view.
			p.delivered[dir] = next
			if dropped > 0 {
				p.logf("round %d: %s lost %d of %d routes", round, dir, dropped, len(out))
			}
			if stale > 0 {
				p.staleRound = round
				p.logf("round %d: %s lost %d updates (stale state redelivered)", round, dir, stale)
			}
			if dropped > 0 || stale > 0 {
				out, touched = kept, true
			}
		case PerturbDup:
			clone()
			var dup []BGPRoute
			for _, rt := range out {
				dup = append(dup, rt)
				if p.chance(r.Pct, "dup", fmt.Sprint(round), dir, rt.Prefix.String()) {
					dup = append(dup, rt)
				}
			}
			if len(dup) != len(out) {
				p.logf("round %d: %s duplicated %d routes", round, dir, len(dup)-len(out))
				out = dup
			}
		case PerturbCorrupt:
			if round < r.At || round >= r.At+r.For || len(out) == 0 {
				continue
			}
			clone()
			for i := range out {
				path := make([]int, 0, len(out[i].ASPath)+3)
				path = append(path, corruptASN, corruptASN, corruptASN)
				out[i].ASPath = append(path, out[i].ASPath...)
			}
			p.logf("round %d: %s corrupted %d routes (AS %d poisoned)", round, dir, len(out), corruptASN)
		case PerturbReorder:
			if len(out) > 1 {
				clone()
				// The shuffle key is round-independent: the same delivery is
				// permuted the same way every round, so a fixed point stays a
				// fixed point (reorder probes order-sensitivity of the
				// receiver rather than manufacturing endless churn).
				sort.SliceStable(out, func(i, j int) bool {
					return p.hash("reorder", dir, out[i].Prefix.String()) <
						p.hash("reorder", dir, out[j].Prefix.String())
				})
				p.logf("round %d: %s reordered %d routes", round, dir, len(out))
			}
		case PerturbDelay:
			delay := r.Rounds
			if delay <= 0 {
				continue
			}
			q := p.snapshots[dir]
			if q == nil {
				q = map[int][]BGPRoute{}
				p.snapshots[dir] = q
			}
			q[round] = append([]BGPRoute(nil), out...)
			delete(q, round-delay-1)
			past, ok := q[round-delay]
			if !ok {
				past = nil // nothing sent yet that long ago
			}
			if !routeSlicesEqual(past, out) {
				p.logf("round %d: %s delayed (delivering round %d snapshot)", round, dir, round-delay)
			}
			out, touched = past, true
		}
	}
	return out
}

// Pending reports whether perturbed state the engine must wait out is
// still in flight: a delay queue holding a snapshot that differs from what
// was last delivered, or a loss rule that just redelivered stale state (a
// receiver behind the sender's current advertisements is not a fixed
// point, merely a retransmission away from changing again).
func (p *ScheduledPerturber) Pending(round int) bool {
	if p.staleRound == round {
		return true
	}
	for _, r := range p.rules {
		if r.Kind != PerturbDelay || r.Rounds <= 0 {
			continue
		}
		for _, q := range p.snapshots {
			delivered := q[round-r.Rounds]
			for at, snap := range q {
				if at > round-r.Rounds && !routeSlicesEqual(snap, delivered) {
					return true
				}
			}
		}
	}
	return false
}

// OnSoftReset heals recoverable faults on every session of the given host:
// the adjacency reset rebuilt the session state machine, so
// session-state-local flaps (Recover rules) stop.
func (p *ScheduledPerturber) OnSoftReset(host string) {
	for _, r := range p.rules {
		if r.Kind != PerturbFlap || !r.Recover {
			continue
		}
		if r.A == host || r.B == host {
			key := sessionKey(r.A, r.B)
			if !p.healed[key] {
				p.healed[key] = true
				p.logf("session %s healed by soft reset of %s", key, host)
			}
		}
	}
}

// Describe summarises the active rules for verdict lines.
func (p *ScheduledPerturber) Describe() string {
	if len(p.rules) == 0 {
		return fmt.Sprintf("no perturbation (seed %d)", p.seed)
	}
	parts := make([]string, len(p.rules))
	for i, r := range p.rules {
		parts[i] = strings.TrimPrefix(r.String(), "perturb ")
	}
	return fmt.Sprintf("%s (seed %d)", strings.Join(parts, ", "), p.seed)
}

func routeSlicesEqual(a, b []BGPRoute) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !routeEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
