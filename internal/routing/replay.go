package routing

import (
	"fmt"
	"hash/fnv"
	"net/netip"
)

// Incremental BGP reconvergence works by trajectory replay. A sequential
// (Gauss–Seidel) run is fully determined by the speakers' configurations:
// the same configs always walk the same per-round trajectory of
// (adj-RIB-in, loc-RIB) states. The engine therefore records each run's
// trajectory, and a later run over a mostly-unchanged config set replays
// it: at every round, a speaker whose config is unchanged and whose
// neighbors are all still tracking the recorded trajectory restores its
// recorded round state instead of re-pulling and re-selecting.
//
// Correctness argument (the byte-identity bar): restoration is admitted
// for speaker X at round r only when (1) X is not statically dirty — its
// config, profile, router-id and session set are identical to the recorded
// run's, (2) X has not deviated from the trajectory in an earlier round,
// and (3) none of X's session peers is statically dirty or deviant. Under
// Gauss–Seidel, X's round-r computation reads only its own config and its
// peers' current states — predecessors in the sweep at round r, successors
// at round r-1. By induction those states equal the recorded ones exactly
// when (1)–(3) hold, so the recompute would reproduce the recorded state
// byte for byte; restoring it is a pure memoization. Speakers that fail
// the check recompute in full, and their result is compared against the
// record: a full-identity match (including the LearnedFrom/FromRRClient
// bits the lenient routeEqual ignores) re-adopts the recorded state so
// downstream peers may keep restoring; any difference marks the speaker
// deviant, which poisons restoration for it and its neighbors from then
// on. Perturbed runs never record or replay (the Perturber is stateful),
// and a soft reset discards both the log and the recording.

// BGPReplay is the recorded trajectory of one sequential run: per-speaker
// config signatures and session sets (the static-dirtiness baseline) plus
// the per-round states. All maps and slices inside are shared with the
// engine that produced them and are never mutated after recording — the
// engine replaces adj-RIB-in and loc-RIB maps wholesale each round.
type BGPReplay struct {
	sigs   map[string]uint64
	sess   map[string][]session
	rounds []replayRound
}

// Rounds reports the length of the recorded trajectory.
func (r *BGPReplay) Rounds() int {
	if r == nil {
		return 0
	}
	return len(r.rounds)
}

type replayRound map[string]replayState

// replayState is one speaker's post-processing state at one round.
type replayState struct {
	adjIn   map[netip.Addr][]BGPRoute
	locRIB  map[netip.Prefix]BGPRoute
	seg     uint64
	changed bool
	// churned lists the prefixes whose selection changed this round (the
	// recordChurn delta), so a replayed round reproduces the engine's churn
	// counters and changed-at stamps exactly.
	churned []netip.Prefix
}

// advEntry caches one advertise() evaluation: outbound policy is a pure
// function of (route, session), so a route that did not change since the
// last evaluation re-advertises the cached result without re-allocating
// the AS path. Validation uses full identity (routeIdentical), not the
// lenient routeEqual, because advertise() reads FromRRClient and the
// decision process downstream reads LearnedFrom.
type advEntry struct {
	src BGPRoute
	out BGPRoute
	ok  bool
}

// speakerSig fingerprints everything about a speaker that shapes its
// behaviour in a run: the full device config, the vendor profile's
// decision-process switches, and the router-id.
func speakerSig(sp *speaker) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x|%s|%v|%v|%v|", ConfigSignature(sp.dc), sp.profile.Name,
		sp.profile.UseIGPTieBreak, sp.profile.AlwaysCompareMED, sp.routerID)
	return h.Sum64()
}

// sessionsEqual compares two session sets element-wise (session is
// comparable: no slices or maps inside).
func sessionsEqual(a, b []session) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// routeIdentical is routeEqual plus the fields it deliberately ignores.
// Replay adoption and the advertise cache need full identity: LearnedFrom
// feeds decision steps 7–8 and FromRRClient drives iBGP reflection.
func routeIdentical(a, b BGPRoute) bool {
	return a.LearnedFrom == b.LearnedFrom && a.FromRRClient == b.FromRRClient && routeEqual(a, b)
}

// adjIdentical compares adj-RIB-ins strictly: identical key sets (unlike
// the lenient adjEqual — an empty-but-present peer entry renders into the
// state hash differently from an absent one) and fully identical routes.
func adjIdentical(a, b map[netip.Addr][]BGPRoute) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if !routeIdentical(ra[i], rb[i]) {
				return false
			}
		}
	}
	return true
}

// locRIBIdentical compares selections with full identity.
func locRIBIdentical(a, b map[netip.Prefix]BGPRoute) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ra := range a {
		rb, ok := b[p]
		if !ok || !routeIdentical(ra, rb) {
			return false
		}
	}
	return true
}

// EnableIncremental arms trajectory recording for the coming run and, when
// prev carries a recorded trajectory, replay against it: speakers whose
// fingerprint or session set differs from the recording — or that the
// caller marks dirty (extraDirty, e.g. IGP-changed speakers whose
// next-hop costs moved) — are statically dirty and always recompute.
// Only meaningful in sequential mode; a no-op otherwise. Must be called
// before the run; RunContext discards both log and recording when a
// perturber is installed or the engine has already run.
func (e *BGPEngine) EnableIncremental(prev *BGPReplay, extraDirty map[string]bool) {
	if !e.sequential {
		return
	}
	sigs := make(map[string]uint64, len(e.order))
	sess := make(map[string][]session, len(e.order))
	for _, host := range e.order {
		sp := e.speakers[host]
		sigs[host] = speakerSig(sp)
		sess[host] = sp.sessions
	}
	if prev != nil && len(prev.rounds) > 0 {
		e.replay = prev
		e.staticDirty = map[string]bool{}
		e.deviant = map[string]bool{}
		for _, host := range e.order {
			sp := e.speakers[host]
			psig, ok := prev.sigs[host]
			if extraDirty[host] || !ok || psig != sigs[host] || !sessionsEqual(sp.sessions, prev.sess[host]) {
				e.staticDirty[host] = true
			}
		}
	}
	e.record = &BGPReplay{sigs: sigs, sess: sess}
}

// canRestore reports whether a speaker may adopt its recorded round state:
// itself and every session peer must be neither statically dirty nor
// deviant from the trajectory.
func (e *BGPEngine) canRestore(host string, sp *speaker) bool {
	if e.staticDirty[host] || e.deviant[host] {
		return false
	}
	for _, s := range sp.sessions {
		if e.staticDirty[s.peerHost] || e.deviant[s.peerHost] {
			return false
		}
	}
	return true
}

// ReplayLog returns the trajectory recorded by the most recent run, or nil
// when nothing was recorded (non-sequential mode, a perturbed run, a soft
// reset, or a continuation run). The caller feeds it to the next engine's
// EnableIncremental.
func (e *BGPEngine) ReplayLog() *BGPReplay { return e.record }

// ChangedSpeakers returns the set of speakers whose final selection
// differs from the replayed trajectory's final state — the speakers whose
// data-plane nodes must be rebuilt. nil means "treat every speaker as
// changed" (no replay was active, or the run outran the recorded
// trajectory).
func (e *BGPEngine) ChangedSpeakers() map[string]bool {
	if e.replay == nil || len(e.replay.rounds) == 0 {
		return nil
	}
	last := e.replay.rounds[len(e.replay.rounds)-1]
	out := map[string]bool{}
	for _, host := range e.order {
		sp := e.speakers[host]
		h, ok := last[host]
		if !ok || !locRIBEqual(sp.locRIB, h.locRIB) {
			out[host] = true
		}
	}
	return out
}

// IncrementalStats reports the most recent run's replay effectiveness:
// speaker-rounds restored from the trajectory, prefixes re-evaluated for
// recomputed speakers, and whole rounds in which every speaker restored.
func (e *BGPEngine) IncrementalStats() (restored, dirtyPrefixes, roundsSkipped int64) {
	return e.statRestored, e.statDirtyPrefixes, e.statRoundsSkipped
}
