package routing

import (
	"context"
	"fmt"
	"time"
)

// DefaultMaxBGPRounds bounds a BGP Run when the caller supplies no budget.
// 100 Gauss-Seidel rounds is far beyond what any converging topology in
// the paper needs (the Small-Internet converges in 7), so hitting the
// bound is itself a non-convergence signal.
const DefaultMaxBGPRounds = 100

// ConvergenceBudget bounds one control-plane (re)convergence: incident
// injection and chaos scenarios re-run the engines after every event, and
// a non-converging configuration must terminate with a detected
// oscillation instead of consuming unbounded rounds. The zero value means
// "use the defaults".
type ConvergenceBudget struct {
	// MaxBGPRounds caps the BGP engine's rounds (<= 0 selects
	// DefaultMaxBGPRounds). A run that exhausts the cap without reaching a
	// fixed point reports Oscillating with CycleLen -1.
	MaxBGPRounds int
	// Timeout bounds the wall-clock time of one engine run (0 disables).
	// Deployments propagate their per-attempt timeout here so a hung
	// convergence cannot stall a whole pool; an expired run reports
	// Cancelled.
	Timeout time.Duration
}

// BGPRounds resolves the effective round cap.
func (b ConvergenceBudget) BGPRounds() int {
	if b.MaxBGPRounds <= 0 {
		return DefaultMaxBGPRounds
	}
	return b.MaxBGPRounds
}

// Escalated returns the budget enlarged by the given factor — the
// watchdog's first escalation step (maybe the run was merely starved).
// Factors below 2 escalate to 2; the timeout is preserved.
func (b ConvergenceBudget) Escalated(factor int) ConvergenceBudget {
	if factor < 2 {
		factor = 2
	}
	return ConvergenceBudget{MaxBGPRounds: b.BGPRounds() * factor, Timeout: b.Timeout}
}

// Context materialises the budget's wall-clock bound: a context that
// expires after Timeout, or an unbounded cancellable one when no timeout
// is set. The caller must call the cancel function.
func (b ConvergenceBudget) Context() (context.Context, context.CancelFunc) {
	if b.Timeout > 0 {
		return context.WithTimeout(context.Background(), b.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Describe renders the outcome of a bounded run as a one-line verdict for
// logs and resilience reports.
func (b ConvergenceBudget) Describe(res BGPResult) string {
	switch {
	case res.Cancelled:
		return fmt.Sprintf("cancelled after %d rounds", res.Rounds)
	case res.Converged:
		return fmt.Sprintf("converged in %d rounds", res.Rounds)
	case res.CycleLen > 0:
		return fmt.Sprintf("oscillating (cycle length %d after %d rounds)", res.CycleLen, res.Rounds)
	default:
		return fmt.Sprintf("did not converge within %d rounds", b.BGPRounds())
	}
}
