package routing

import "fmt"

// DefaultMaxBGPRounds bounds a BGP Run when the caller supplies no budget.
// 100 Gauss-Seidel rounds is far beyond what any converging topology in
// the paper needs (the Small-Internet converges in 7), so hitting the
// bound is itself a non-convergence signal.
const DefaultMaxBGPRounds = 100

// ConvergenceBudget bounds one control-plane (re)convergence: incident
// injection and chaos scenarios re-run the engines after every event, and
// a non-converging configuration must terminate with a detected
// oscillation instead of consuming unbounded rounds. The zero value means
// "use the defaults".
type ConvergenceBudget struct {
	// MaxBGPRounds caps the BGP engine's rounds (<= 0 selects
	// DefaultMaxBGPRounds). A run that exhausts the cap without reaching a
	// fixed point reports Oscillating with CycleLen -1.
	MaxBGPRounds int
}

// BGPRounds resolves the effective round cap.
func (b ConvergenceBudget) BGPRounds() int {
	if b.MaxBGPRounds <= 0 {
		return DefaultMaxBGPRounds
	}
	return b.MaxBGPRounds
}

// Describe renders the outcome of a bounded run as a one-line verdict for
// logs and resilience reports.
func (b ConvergenceBudget) Describe(res BGPResult) string {
	switch {
	case res.Converged:
		return fmt.Sprintf("converged in %d rounds", res.Rounds)
	case res.CycleLen > 0:
		return fmt.Sprintf("oscillating (cycle length %d after %d rounds)", res.CycleLen, res.Rounds)
	default:
		return fmt.Sprintf("did not converge within %d rounds", b.BGPRounds())
	}
}
