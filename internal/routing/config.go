// Package routing implements the protocol engines the emulation substrate
// runs: an OSPF link-state engine (per-router SPF over the advertised
// networks) and a BGP path-vector engine with the full decision process,
// route reflection, per-vendor tie-break profiles (§7.2) and oscillation
// detection.
//
// Engines consume DeviceConfig values recovered by parsing the *rendered
// configuration files* (see internal/emul): the pipeline's output artifact
// is executed, not trusted — a mis-generated config produces a
// mis-behaving emulated network, exactly as on the paper's Netkit
// deployments.
//
// Both engines support incremental reconvergence. The OSPF/IS-IS domain
// diffs the canonical link-state database between Converge calls and
// re-runs Dijkstra only for sources whose shortest-path tree an edge or
// advertisement change can reach (delta SPF; see ospf.go). The BGP engine
// records each sequential run's per-round trajectory and replays it on the
// next run for speakers whose configs and neighborhoods are unchanged
// (trajectory memoization; see replay.go). Both paths are exact: they skip
// recomputation only where the result is provably byte-identical to a full
// run, so convergence outcomes, route selections and oscillation verdicts
// never depend on whether incremental mode is enabled.
package routing

import (
	"fmt"
	"net/netip"
)

// InterfaceConfig is one configured data-plane interface.
type InterfaceConfig struct {
	Name   string
	Addr   netip.Addr
	Prefix netip.Prefix // the attached subnet
	Cost   int          // OSPF interface cost (default 1)
	// Passive marks an OSPF passive-interface: its subnet is advertised as
	// a stub network but no adjacency forms (used on eBGP-facing links).
	Passive bool
}

// OSPFNetwork is one `network <prefix> area <n>` statement.
type OSPFNetwork struct {
	Prefix netip.Prefix
	Area   int
}

// OSPFConfig is a router's OSPF process.
type OSPFConfig struct {
	ProcessID int
	Networks  []OSPFNetwork
}

// BGPNeighbor is one configured BGP session.
type BGPNeighbor struct {
	Addr         netip.Addr
	RemoteASN    int
	Description  string
	UpdateSource string // "lo" for loopback-sourced iBGP sessions
	RRClient     bool   // this neighbor is my route-reflector client
	MEDOut       int    // MED attached to routes advertised to this neighbor (0 = none)
	LocalPrefIn  int    // local-pref applied to routes received from this neighbor (0 = default 100)
}

// BGPConfig is a router's BGP process.
type BGPConfig struct {
	ASN       int
	RouterID  netip.Addr
	Networks  []netip.Prefix // originated prefixes
	Neighbors []BGPNeighbor
}

// ISISConfig is a router's IS-IS process (emulated equivalently to OSPF).
type ISISConfig struct {
	NET        string
	Interfaces []string
}

// DeviceConfig is the protocol state recovered from one device's rendered
// configuration files.
type DeviceConfig struct {
	Hostname   string
	Interfaces []InterfaceConfig
	Loopback   netip.Addr // zero value when absent
	// Gateway is the static default route target (servers).
	Gateway netip.Addr
	OSPF    *OSPFConfig
	BGP     *BGPConfig
	ISIS    *ISISConfig
}

// HasLoopback reports whether a loopback address is configured.
func (dc *DeviceConfig) HasLoopback() bool { return dc.Loopback.IsValid() }

// InterfaceByAddr returns the interface bearing addr.
func (dc *DeviceConfig) InterfaceByAddr(addr netip.Addr) (InterfaceConfig, bool) {
	for _, ic := range dc.Interfaces {
		if ic.Addr == addr {
			return ic, true
		}
	}
	return InterfaceConfig{}, false
}

// Validate performs basic consistency checks on a parsed config.
func (dc *DeviceConfig) Validate() error {
	if dc.Hostname == "" {
		return fmt.Errorf("routing: device has no hostname")
	}
	seen := map[netip.Addr]string{}
	for _, ic := range dc.Interfaces {
		if !ic.Addr.IsValid() || !ic.Prefix.IsValid() {
			return fmt.Errorf("routing: %s: interface %s has invalid addressing", dc.Hostname, ic.Name)
		}
		if !ic.Prefix.Contains(ic.Addr) {
			return fmt.Errorf("routing: %s: interface %s address %v outside subnet %v", dc.Hostname, ic.Name, ic.Addr, ic.Prefix)
		}
		if prev, dup := seen[ic.Addr]; dup {
			return fmt.Errorf("routing: %s: address %v on both %s and %s", dc.Hostname, ic.Addr, prev, ic.Name)
		}
		seen[ic.Addr] = ic.Name
	}
	if dc.BGP != nil && dc.BGP.ASN <= 0 {
		return fmt.Errorf("routing: %s: BGP with invalid ASN %d", dc.Hostname, dc.BGP.ASN)
	}
	return nil
}

// RouteOrigin identifies which protocol installed a route.
type RouteOrigin string

// Route origins in ascending administrative distance.
const (
	OriginConnected RouteOrigin = "connected"
	OriginOSPF      RouteOrigin = "ospf"
	OriginBGP       RouteOrigin = "bgp"
)

// adminDistance mirrors the conventional preferences.
var adminDistance = map[RouteOrigin]int{
	OriginConnected: 0,
	OriginOSPF:      110,
	OriginBGP:       200, // iBGP; eBGP handled inside the BGP process
}

// Route is one RIB entry.
type Route struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // zero for connected routes
	OutIf   string     // outgoing interface name
	Origin  RouteOrigin
	Metric  int
}

// RIB is a device's routing table: best route per prefix per origin, with
// protocol preference applied on FIB selection.
type RIB struct {
	routes map[netip.Prefix]map[RouteOrigin]Route
}

// NewRIB returns an empty routing table.
func NewRIB() *RIB { return &RIB{routes: map[netip.Prefix]map[RouteOrigin]Route{}} }

// Install adds or replaces the route for (prefix, origin).
func (r *RIB) Install(rt Route) {
	m, ok := r.routes[rt.Prefix]
	if !ok {
		m = map[RouteOrigin]Route{}
		r.routes[rt.Prefix] = m
	}
	m[rt.Origin] = rt
}

// Remove deletes the route for (prefix, origin).
func (r *RIB) Remove(prefix netip.Prefix, origin RouteOrigin) {
	if m, ok := r.routes[prefix]; ok {
		delete(m, origin)
		if len(m) == 0 {
			delete(r.routes, prefix)
		}
	}
}

// Best returns the preferred route for a prefix (lowest administrative
// distance, then lowest metric).
func (r *RIB) Best(prefix netip.Prefix) (Route, bool) {
	m, ok := r.routes[prefix]
	if !ok {
		return Route{}, false
	}
	var best Route
	found := false
	for _, rt := range m {
		if !found {
			best = rt
			found = true
			continue
		}
		da, db := adminDistance[rt.Origin], adminDistance[best.Origin]
		if da < db || (da == db && rt.Metric < best.Metric) {
			best = rt
		}
	}
	return best, found
}

// Prefixes returns every prefix with at least one route.
func (r *RIB) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, len(r.routes))
	for p := range r.routes {
		out = append(out, p)
	}
	return out
}

// Len returns the number of distinct prefixes.
func (r *RIB) Len() int { return len(r.routes) }
