package routing

import (
	"fmt"
	"net/netip"
	"testing"
)

// ringChordTopo builds an n-router OSPF ring (router i links to i+1 mod n)
// with loopbacks, plus a chord every `chord` routers for path diversity.
func ringChordTopo(n, chord int) []*DeviceConfig {
	devs := make([]*DeviceConfig, n)
	for i := 0; i < n; i++ {
		lo := netip.AddrFrom4([4]byte{10, 254, byte(i / 256), byte(i % 256)})
		devs[i] = &DeviceConfig{
			Hostname: fmt.Sprintf("c%02d", i),
			Loopback: lo,
			Interfaces: []InterfaceConfig{
				{Name: "lo", Addr: lo, Prefix: netip.PrefixFrom(lo, 32), Cost: 1},
			},
			OSPF: &OSPFConfig{ProcessID: 1, Networks: []OSPFNetwork{
				{Prefix: netip.PrefixFrom(lo, 32), Area: 0},
			}},
		}
	}
	link := func(i, j, sub, cost int) {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 2, byte(sub), 0}), 30)
		ai := netip.AddrFrom4([4]byte{10, 2, byte(sub), 1})
		aj := netip.AddrFrom4([4]byte{10, 2, byte(sub), 2})
		devs[i].Interfaces = append(devs[i].Interfaces, InterfaceConfig{
			Name: fmt.Sprintf("eth%d", sub), Addr: ai, Prefix: p, Cost: cost,
		})
		devs[i].OSPF.Networks = append(devs[i].OSPF.Networks, OSPFNetwork{Prefix: p, Area: 0})
		devs[j].Interfaces = append(devs[j].Interfaces, InterfaceConfig{
			Name: fmt.Sprintf("eth%d", sub), Addr: aj, Prefix: p, Cost: cost,
		})
		devs[j].OSPF.Networks = append(devs[j].OSPF.Networks, OSPFNetwork{Prefix: p, Area: 0})
	}
	sub := 0
	for i := 0; i < n; i++ {
		link(i, (i+1)%n, sub, 1+i%3)
		sub++
	}
	for i := 0; chord > 0 && i+chord < n; i += chord {
		link(i, i+chord, sub, 2)
		sub++
	}
	return devs
}

// checkDomainsEqual asserts the incremental domain's externally visible
// state matches a from-scratch domain over the same configs.
func checkDomainsEqual(t *testing.T, step string, inc, full *OSPFDomain, devs []*DeviceConfig) {
	t.Helper()
	for _, dc := range devs {
		h := dc.Hostname
		if !routesEqual(inc.Routes(h), full.Routes(h)) {
			t.Fatalf("%s: routes diverge for %s:\ninc:  %+v\nfull: %+v", step, h, inc.Routes(h), full.Routes(h))
		}
		in, fn := inc.Neighbors(h), full.Neighbors(h)
		if len(in) != len(fn) {
			t.Fatalf("%s: neighbor count diverges for %s: %d vs %d", step, h, len(in), len(fn))
		}
		for i := range in {
			if in[i] != fn[i] {
				t.Fatalf("%s: neighbor %d diverges for %s: %+v vs %+v", step, i, h, in[i], fn[i])
			}
		}
		if a, b := inc.IGPCost(h, dc.Loopback), full.IGPCost(h, dc.Loopback); a != b {
			t.Fatalf("%s: IGPCost diverges for %s: %d vs %d", step, h, a, b)
		}
	}
}

// TestDeltaSPFEquivalence drives an incremental domain through a mutation
// sequence — cost changes, link failure/restore, tight equal-cost edges —
// and asserts byte-equality with a full recompute after every step, plus
// that the delta path actually skipped sources and that ChangedSources
// matches the observed route-table diffs.
func TestDeltaSPFEquivalence(t *testing.T) {
	devs := ringChordTopo(16, 5)
	inc := NewOSPFDomain(devs)
	inc.SetIncremental(true)
	if err := inc.Converge(); err != nil {
		t.Fatal(err)
	}
	if _, _, delta := inc.DeltaStats(); delta {
		t.Fatal("first converge must be a full run")
	}

	snapshot := func() map[string][]Route {
		out := map[string][]Route{}
		for _, dc := range devs {
			out[dc.Hostname] = inc.Routes(dc.Hostname)
		}
		return out
	}
	prev := snapshot()

	step := func(name string, mutate func(), wantSkip bool) {
		t.Helper()
		mutate()
		inc.Rebind(devs)
		if err := inc.Converge(); err != nil {
			t.Fatal(err)
		}
		full := NewOSPFDomain(devs)
		if err := full.Converge(); err != nil {
			t.Fatal(err)
		}
		checkDomainsEqual(t, name, inc, full, devs)
		rec, skip, delta := inc.DeltaStats()
		if !delta {
			t.Fatalf("%s: converge did not take the delta path", name)
		}
		if wantSkip && skip == 0 {
			t.Errorf("%s: delta run skipped no sources (recomputed %d)", name, rec)
		}
		// ChangedSources must be exactly the hosts whose tables moved.
		changed := inc.ChangedSources()
		cur := snapshot()
		for h := range cur {
			if routesEqual(prev[h], cur[h]) == changed[h] {
				t.Errorf("%s: ChangedSources[%s]=%v but routes-moved=%v", name, h, changed[h], !routesEqual(prev[h], cur[h]))
			}
		}
		prev = cur
	}

	// Cost bump on one direction of a ring link.
	step("cost-change", func() { devs[3].Interfaces[1].Cost = 7 }, false)
	// No-op mutation: nothing changed, everything must skip.
	step("no-op", func() {}, true)
	if rec, _, _ := inc.DeltaStats(); rec != 0 {
		t.Errorf("no-op converge recomputed %d sources", rec)
	}
	// Link failure: drop the shared subnet from both ends.
	var savedIf [2]InterfaceConfig
	var savedNet [2]OSPFNetwork
	step("link-fail", func() {
		for k, d := range []*DeviceConfig{devs[8], devs[9]} {
			savedIf[k] = d.Interfaces[1]
			savedNet[k] = d.OSPF.Networks[1]
			d.Interfaces = append(d.Interfaces[:1], d.Interfaces[2:]...)
			d.OSPF.Networks = append(d.OSPF.Networks[:1], d.OSPF.Networks[2:]...)
		}
	}, false)
	// Heal it.
	step("link-restore", func() {
		for k, d := range []*DeviceConfig{devs[8], devs[9]} {
			d.Interfaces = append(d.Interfaces, InterfaceConfig{})
			copy(d.Interfaces[2:], d.Interfaces[1:])
			d.Interfaces[1] = savedIf[k]
			d.OSPF.Networks = append(d.OSPF.Networks, OSPFNetwork{})
			copy(d.OSPF.Networks[2:], d.OSPF.Networks[1:])
			d.OSPF.Networks[1] = savedNet[k]
		}
	}, false)
	// Exactly-tight edge: give the chord the same cost as the ring path it
	// parallels, so only the deterministic tie-break decides — the delta
	// path must still recompute every source the tie can flip.
	step("tight-edge", func() {
		for _, d := range devs {
			for i := range d.Interfaces {
				d.Interfaces[i].Cost = 1
			}
		}
	}, false)
	// With all-unit costs nearly every source sees the edge as tight, so no
	// skip is guaranteed here — only equivalence.
	step("cost-revert", func() { devs[3].Interfaces[1].Cost = 3 }, false)
}

// TestDeltaSPFRebindISIS checks the IS-IS synthesis path keeps delta state
// across rebinds.
func TestDeltaSPFRebindISIS(t *testing.T) {
	mk := func(cost int) []*DeviceConfig {
		var devs []*DeviceConfig
		for i := 0; i < 3; i++ {
			lo := netip.AddrFrom4([4]byte{10, 253, 0, byte(i + 1)})
			devs = append(devs, &DeviceConfig{
				Hostname: fmt.Sprintf("s%d", i),
				Loopback: lo,
				Interfaces: []InterfaceConfig{
					{Name: "lo", Addr: lo, Prefix: netip.PrefixFrom(lo, 32), Cost: 1},
				},
				ISIS: &ISISConfig{NET: fmt.Sprintf("49.0001.000%d", i), Interfaces: []string{"eth0", "eth1"}},
			})
		}
		link := func(i, j, sub int) {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 3, byte(sub), 0}), 30)
			devs[i].Interfaces = append(devs[i].Interfaces, InterfaceConfig{
				Name: "eth0", Addr: netip.AddrFrom4([4]byte{10, 3, byte(sub), 1}), Prefix: p, Cost: cost,
			})
			devs[j].Interfaces = append(devs[j].Interfaces, InterfaceConfig{
				Name: "eth1", Addr: netip.AddrFrom4([4]byte{10, 3, byte(sub), 2}), Prefix: p, Cost: cost,
			})
		}
		link(0, 1, 0)
		link(1, 2, 1)
		return devs
	}
	devs := mk(1)
	inc := NewISISDomain(devs)
	inc.SetIncremental(true)
	if err := inc.Converge(); err != nil {
		t.Fatal(err)
	}
	devs[0].Interfaces[1].Cost = 5
	inc.RebindISIS(devs)
	if err := inc.Converge(); err != nil {
		t.Fatal(err)
	}
	full := NewISISDomain(devs)
	if err := full.Converge(); err != nil {
		t.Fatal(err)
	}
	for _, dc := range devs {
		if !routesEqual(inc.Routes(dc.Hostname), full.Routes(dc.Hostname)) {
			t.Fatalf("ISIS delta diverges for %s:\ninc:  %+v\nfull: %+v",
				dc.Hostname, inc.Routes(dc.Hostname), full.Routes(dc.Hostname))
		}
	}
	if _, _, delta := inc.DeltaStats(); !delta {
		t.Error("second ISIS converge did not take the delta path")
	}
}

// asLineTopo builds n single-router ASes in a line, eBGP between
// neighbours, each originating one /24.
func asLineTopo(n int) []*DeviceConfig {
	devs := make([]*DeviceConfig, n)
	for i := 0; i < n; i++ {
		devs[i] = &DeviceConfig{
			Hostname: fmt.Sprintf("r%02d", i),
			BGP: &BGPConfig{
				ASN:      i + 1,
				Networks: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{203, 0, byte(i), 0}), 24)},
			},
		}
	}
	for i := 0; i+1 < n; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 1, byte(i), 0}), 30)
		a := netip.AddrFrom4([4]byte{10, 1, byte(i), 1})
		b := netip.AddrFrom4([4]byte{10, 1, byte(i), 2})
		devs[i].Interfaces = append(devs[i].Interfaces, InterfaceConfig{
			Name: fmt.Sprintf("eth%d", i), Addr: a, Prefix: p, Cost: 1,
		})
		devs[i+1].Interfaces = append(devs[i+1].Interfaces, InterfaceConfig{
			Name: fmt.Sprintf("eth%d", i), Addr: b, Prefix: p, Cost: 1,
		})
		devs[i].BGP.Neighbors = append(devs[i].BGP.Neighbors, BGPNeighbor{Addr: b, RemoteASN: i + 2})
		devs[i+1].BGP.Neighbors = append(devs[i+1].BGP.Neighbors, BGPNeighbor{Addr: a, RemoteASN: i + 1})
	}
	for i := range devs {
		devs[i].BGP.RouterID = devs[i].Interfaces[0].Addr
	}
	return devs
}

func runSeq(t *testing.T, devs []*DeviceConfig, prev *BGPReplay, extraDirty map[string]bool) (*BGPEngine, BGPResult) {
	t.Helper()
	e, err := NewBGPEngine(devs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSequential(true)
	if prev != nil || extraDirty != nil {
		e.EnableIncremental(prev, extraDirty)
	}
	return e, e.Run(100)
}

// checkEnginesIdentical asserts two engines reached fully identical
// protocol state and identical observable metrics.
func checkEnginesIdentical(t *testing.T, name string, a, b *BGPEngine, ra, rb BGPResult) {
	t.Helper()
	if ra != rb {
		t.Fatalf("%s: results diverge: %+v vs %+v", name, ra, rb)
	}
	for _, host := range a.Speakers() {
		sa, sb := a.speakers[host], b.speakers[host]
		if !adjIdentical(sa.adjIn, sb.adjIn) {
			t.Fatalf("%s: adj-RIB-in diverges for %s", name, host)
		}
		if !locRIBIdentical(sa.locRIB, sb.locRIB) {
			t.Fatalf("%s: loc-RIB diverges for %s:\na: %+v\nb: %+v", name, host, sa.locRIB, sb.locRIB)
		}
	}
	ca, cb := a.RouteChurn(), b.RouteChurn()
	if len(ca) != len(cb) {
		t.Fatalf("%s: churn maps differ: %v vs %v", name, ca, cb)
	}
	for p, n := range ca {
		if cb[p] != n {
			t.Fatalf("%s: churn[%v] = %d vs %d", name, p, n, cb[p])
		}
	}
	for w := 1; w <= ra.Rounds; w++ {
		ua, ub := a.UnstableSpeakers(w), b.UnstableSpeakers(w)
		if len(ua) != len(ub) {
			t.Fatalf("%s: unstable speakers (window %d) differ: %v vs %v", name, w, ua, ub)
		}
		for i := range ua {
			if ua[i] != ub[i] {
				t.Fatalf("%s: unstable speakers (window %d) differ: %v vs %v", name, w, ua, ub)
			}
		}
	}
}

// TestBGPReplayCleanRun: an unchanged config set replays the entire
// trajectory — every speaker-round restores, every round is skipped, and
// all observables are identical to the from-scratch run.
func TestBGPReplayCleanRun(t *testing.T) {
	devs := asLineTopo(8)
	e1, r1 := runSeq(t, devs, nil, map[string]bool{})
	if !r1.Converged {
		t.Fatalf("baseline did not converge: %+v", r1)
	}
	log := e1.ReplayLog()
	if log.Rounds() != r1.Rounds {
		t.Fatalf("recorded %d rounds, ran %d", log.Rounds(), r1.Rounds)
	}
	e2, r2 := runSeq(t, devs, log, nil)
	checkEnginesIdentical(t, "clean-replay", e1, e2, r1, r2)
	restored, _, skipped := e2.IncrementalStats()
	if want := int64(len(devs) * r2.Rounds); restored != want {
		t.Errorf("restored %d speaker-rounds, want %d", restored, want)
	}
	if skipped != int64(r2.Rounds) {
		t.Errorf("skipped %d rounds, want %d", skipped, r2.Rounds)
	}
	if cs := e2.ChangedSpeakers(); cs == nil || len(cs) != 0 {
		t.Errorf("ChangedSpeakers = %v, want empty non-nil", cs)
	}
	// The replayed run's own recording supports a further replay.
	e3, r3 := runSeq(t, devs, e2.ReplayLog(), nil)
	checkEnginesIdentical(t, "replay-of-replay", e1, e3, r1, r3)
}

// TestBGPReplayDirtyConfig: a config change is detected by signature, the
// dirty speaker and the wavefront recompute, the rest restores — and the
// outcome is identical to a full run over the new configs.
func TestBGPReplayDirtyConfig(t *testing.T) {
	devs := asLineTopo(10)
	e1, r1 := runSeq(t, devs, nil, map[string]bool{})
	if !r1.Converged {
		t.Fatalf("baseline did not converge: %+v", r1)
	}
	log := e1.ReplayLog()

	// r05 starts originating a second prefix.
	devs[5].BGP.Networks = append(devs[5].BGP.Networks, netip.MustParsePrefix("198.51.100.0/24"))
	full, rf := runSeq(t, devs, nil, nil)
	inc, ri := runSeq(t, devs, log, nil)
	checkEnginesIdentical(t, "dirty-config", full, inc, rf, ri)
	restored, dirtyPfx, _ := inc.IncrementalStats()
	if restored == 0 {
		t.Error("no speaker-round restored despite a single-speaker change")
	}
	if dirtyPfx == 0 {
		t.Error("no dirty prefixes counted for the recomputed speakers")
	}
	cs := inc.ChangedSpeakers()
	if cs == nil {
		t.Fatal("ChangedSpeakers = nil with replay active")
	}
	if !cs["r05"] {
		t.Errorf("ChangedSpeakers misses the originator: %v", cs)
	}
	// Every speaker learns the new prefix, so all final tables moved.
	if len(cs) != len(devs) {
		t.Errorf("ChangedSpeakers = %d speakers, want %d", len(cs), len(devs))
	}
}

// TestBGPReplayExtraDirty: caller-marked dirty speakers recompute but the
// outcome stays identical.
func TestBGPReplayExtraDirty(t *testing.T) {
	devs := asLineTopo(6)
	e1, r1 := runSeq(t, devs, nil, map[string]bool{})
	log := e1.ReplayLog()
	inc, ri := runSeq(t, devs, log, map[string]bool{"r02": true})
	checkEnginesIdentical(t, "extra-dirty", e1, inc, r1, ri)
	restored, _, _ := inc.IncrementalStats()
	clean, _, _ := func() (int64, int64, int64) {
		e, _ := runSeq(t, devs, e1.ReplayLog(), nil)
		return e.IncrementalStats()
	}()
	if restored >= clean {
		t.Errorf("extra-dirty restored %d >= clean %d", restored, clean)
	}
}

// TestBGPReplayPerturbedRunRecordsNothing: the perturbation layer is
// stateful, so a perturbed run must neither replay nor record.
func TestBGPReplayPerturbedRunRecordsNothing(t *testing.T) {
	devs := asLineTopo(5)
	e1, _ := runSeq(t, devs, nil, map[string]bool{})
	log := e1.ReplayLog()
	if log == nil {
		t.Fatal("unperturbed run recorded nothing")
	}

	e2, err := NewBGPEngine(devs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2.SetSequential(true)
	e2.EnableIncremental(log, nil)
	e2.SetPerturber(NewScheduledPerturber(42, []PerturbRule{
		{Kind: PerturbDelay, A: "r01", B: "r02", Rounds: 2},
	}))
	e2.Run(100)
	if e2.ReplayLog() != nil {
		t.Error("perturbed run left a replay log")
	}
	restored, _, _ := e2.IncrementalStats()
	if restored != 0 {
		t.Errorf("perturbed run restored %d speaker-rounds", restored)
	}
	if e2.ChangedSpeakers() != nil {
		t.Error("perturbed run reports ChangedSpeakers")
	}
}

// TestBGPReplaySoftResetDiscards: a soft reset invalidates both the log
// and the in-progress recording.
func TestBGPReplaySoftResetDiscards(t *testing.T) {
	devs := asLineTopo(5)
	e, r := runSeq(t, devs, nil, map[string]bool{})
	if e.ReplayLog() == nil {
		t.Fatal("run recorded nothing")
	}
	e.SoftReset([]string{"r02"})
	if e.ReplayLog() != nil {
		t.Error("soft reset kept the replay log")
	}
	r2 := e.Run(100)
	if !r2.Converged {
		t.Fatalf("post-reset continuation: %+v", r2)
	}
	// The continuation must reconverge to the same tables as the original.
	full, rf := runSeq(t, devs, nil, nil)
	if rf.Converged != r.Converged {
		t.Fatalf("baselines disagree: %+v vs %+v", rf, r)
	}
	for _, host := range e.Speakers() {
		if !locRIBIdentical(e.speakers[host].locRIB, full.speakers[host].locRIB) {
			t.Errorf("post-reset loc-RIB diverges for %s", host)
		}
	}
}

// TestBGPReplaySecondRunDiscards: RunContext on an engine that already ran
// (watchdog budget escalation) must drop replay and recording.
func TestBGPReplaySecondRunDiscards(t *testing.T) {
	devs := asLineTopo(4)
	e, _ := runSeq(t, devs, nil, map[string]bool{})
	if e.ReplayLog() == nil {
		t.Fatal("first run recorded nothing")
	}
	e.Run(100)
	if e.ReplayLog() != nil {
		t.Error("continuation run kept a recording")
	}
}

// TestConfigSignatureSensitivity: every stanza feeds the signature.
func TestConfigSignatureSensitivity(t *testing.T) {
	base := func() *DeviceConfig {
		return &DeviceConfig{
			Hostname: "x",
			Loopback: mustAddr("10.255.0.1"),
			Interfaces: []InterfaceConfig{
				{Name: "eth0", Addr: mustAddr("10.0.0.1"), Prefix: mustPfx("10.0.0.0/30"), Cost: 2},
			},
			OSPF: &OSPFConfig{ProcessID: 1, Networks: []OSPFNetwork{{Prefix: mustPfx("10.0.0.0/30"), Area: 0}}},
			BGP: &BGPConfig{ASN: 1, RouterID: mustAddr("10.255.0.1"),
				Networks:  []netip.Prefix{mustPfx("203.0.113.0/24")},
				Neighbors: []BGPNeighbor{{Addr: mustAddr("10.0.0.2"), RemoteASN: 2}},
			},
		}
	}
	sig := ConfigSignature(base())
	if ConfigSignature(base()) != sig {
		t.Fatal("signature is not deterministic")
	}
	muts := map[string]func(*DeviceConfig){
		"hostname":      func(dc *DeviceConfig) { dc.Hostname = "y" },
		"iface-cost":    func(dc *DeviceConfig) { dc.Interfaces[0].Cost = 3 },
		"iface-passive": func(dc *DeviceConfig) { dc.Interfaces[0].Passive = true },
		"ospf-area":     func(dc *DeviceConfig) { dc.OSPF.Networks[0].Area = 1 },
		"bgp-network":   func(dc *DeviceConfig) { dc.BGP.Networks = append(dc.BGP.Networks, mustPfx("198.51.100.0/24")) },
		"bgp-med":       func(dc *DeviceConfig) { dc.BGP.Neighbors[0].MEDOut = 50 },
		"bgp-rrclient":  func(dc *DeviceConfig) { dc.BGP.Neighbors[0].RRClient = true },
		"isis-added":    func(dc *DeviceConfig) { dc.ISIS = &ISISConfig{NET: "49.0001.0001", Interfaces: []string{"eth0"}} },
	}
	for name, mut := range muts {
		dc := base()
		mut(dc)
		if ConfigSignature(dc) == sig {
			t.Errorf("%s mutation did not change the signature", name)
		}
	}
}
