package routing

import (
	"net/netip"
	"sort"
	"sync"
)

// Parallel sharded convergence. The sequential (Gauss–Seidel) sweep of
// stepSequential processes speakers one at a time in hostname order; its
// output is the byte-identity oracle every other evaluation mode must
// match. Sharding exploits the topology's AS structure to recover
// parallelism without giving up that identity: iBGP meshes are AS-local,
// so partitioning speakers by ASN yields a shard graph whose cut edges are
// exactly the eBGP sessions. Inside each round, shards evaluate
// concurrently on a bounded worker pool, but every speaker still observes
// exactly the peer states the sequential sweep would have shown it:
//
//   - within a shard, speakers run in hostname order (the sweep order);
//   - across shards, a speaker X with a session peer P earlier in the
//     sweep (P < X) waits until P has finished this round. Because P < X
//     implies P is a dependency of X and X < P implies the converse,
//     session endpoints are never evaluated concurrently.
//
// Hostname order is a topological order of this dependency DAG (every
// dependency points strictly backwards), so the wavefront always makes
// progress: the lowest-indexed unprocessed speaker has all dependencies
// satisfied, hence its shard is runnable. Each speaker therefore reads its
// predecessors' round-r state and its successors' round-(r-1) state — the
// Gauss–Seidel contract — and computes bit-for-bit what the sequential
// sweep computes.
//
// Engine-level side effects (churn counters, changed-at stamps, replay
// deviance, trajectory recording, perturbation events) are not applied
// concurrently. Each speaker collects its deltas into per-speaker slots,
// and a merge barrier at the end of the round applies them single-threaded
// in canonical order: speakers in sweep (hostname) order, sessions in
// peer-address order, prefixes in the order the sequential code would have
// touched them. The barrier's application order equals the sequential
// temporal order, so counters, event logs and recorded trajectories are
// byte-identical at any shard/worker count — which also means replay
// restore/record keys on post-merge state and incremental × sharded
// compose (a trajectory recorded sharded replays sequentially and vice
// versa).

// Shard is one unit of the structural partition: an AS and its speakers in
// sweep (hostname) order. Every speaker appears in exactly one shard.
type Shard struct {
	ASN      int
	Speakers []string
}

// planShard is the internal form of a shard: speaker indices into e.order.
type planShard struct {
	asn int
	idx []int
}

// shardPlan is the engine's precomputed partition and dependency DAG. The
// session graph is fixed at engine build, so the plan is computed once and
// cached.
type shardPlan struct {
	shards  []planShard
	index   map[string]int // hostname -> position in e.order
	shardOf []int          // speaker index -> shard index
	// deps[i] lists i's cross-shard session peers that precede it in the
	// sweep — the speakers i must wait for each round. Same-shard
	// predecessors are ordered by the shard's own sequential execution.
	deps [][]int
	// peers[i] lists all of i's session-peer indices (both directions of
	// the sweep), for the replay admission check.
	peers [][]int
	// cross[i][k] reports whether sp.sorted[k] is an eBGP (cross-shard)
	// session, for the cross-shard advertisement counter.
	cross [][]bool
}

// shardPlan returns the cached partition, building it on first use.
func (e *BGPEngine) shardPlan() *shardPlan {
	if e.plan != nil {
		return e.plan
	}
	p := &shardPlan{
		index:   make(map[string]int, len(e.order)),
		shardOf: make([]int, len(e.order)),
		deps:    make([][]int, len(e.order)),
		peers:   make([][]int, len(e.order)),
		cross:   make([][]bool, len(e.order)),
	}
	for i, host := range e.order {
		p.index[host] = i
	}
	byASN := map[int][]int{}
	for i, host := range e.order {
		asn := e.speakers[host].dc.BGP.ASN
		byASN[asn] = append(byASN[asn], i) // ascending: e.order is sorted
	}
	asns := make([]int, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for sid, asn := range asns {
		p.shards = append(p.shards, planShard{asn: asn, idx: byASN[asn]})
		for _, i := range byASN[asn] {
			p.shardOf[i] = sid
		}
	}
	for i, host := range e.order {
		sp := e.speakers[host]
		seen := map[int]bool{}
		for _, s := range sp.sessions {
			j := p.index[s.peerHost] // sessions only form toward speakers
			if !seen[j] {
				seen[j] = true
				p.peers[i] = append(p.peers[i], j)
				if j < i && p.shardOf[j] != p.shardOf[i] {
					p.deps[i] = append(p.deps[i], j)
				}
			}
		}
		sort.Ints(p.peers[i])
		sort.Ints(p.deps[i])
		p.cross[i] = make([]bool, len(sp.sorted))
		for k, s := range sp.sorted {
			p.cross[i][k] = p.shardOf[p.index[s.peerHost]] != p.shardOf[i]
		}
	}
	e.plan = p
	return p
}

// SetShards sets the worker count for sharded round evaluation. n <= 1
// keeps the sequential sweep (the default, and the parity baseline); n > 1
// evaluates the per-AS shards concurrently on up to n workers. Results are
// byte-identical at any value. Sharding only applies in sequential
// (Gauss–Seidel) mode; synchronous rounds are already whole-table
// exchanges.
func (e *BGPEngine) SetShards(n int) { e.shardWorkers = n }

// ShardCount returns the number of structural shards — distinct ASNs among
// the speakers. It is a property of the topology, independent of the
// SetShards knob.
func (e *BGPEngine) ShardCount() int {
	if len(e.order) == 0 {
		return 0
	}
	return len(e.shardPlan().shards)
}

// ShardStats reports sharded-evaluation work done by this engine:
// rounds evaluated by the parallel driver and advertisements delivered
// across shard boundaries (post-filter routes on eBGP sessions). Both
// accumulate across runs of the same engine.
func (e *BGPEngine) ShardStats() (parallelRounds, crossShardAdverts int64) {
	return e.statShardRounds, e.statCrossAdverts
}

// ShardLayout returns the structural partition: one Shard per ASN (sorted
// by ASN, speakers in sweep order) plus the cut edges — the unordered
// session pairs that cross shards, sorted. By construction a session is a
// cut edge exactly when it is an eBGP session.
func (e *BGPEngine) ShardLayout() ([]Shard, [][2]string) {
	p := e.shardPlan()
	shards := make([]Shard, len(p.shards))
	for sid, ps := range p.shards {
		names := make([]string, len(ps.idx))
		for k, i := range ps.idx {
			names[k] = e.order[i]
		}
		shards[sid] = Shard{ASN: ps.asn, Speakers: names}
	}
	cutSet := map[[2]string]bool{}
	for i, host := range e.order {
		for _, s := range e.speakers[host].sessions {
			if p.shardOf[p.index[s.peerHost]] != p.shardOf[i] {
				pair := [2]string{host, s.peerHost}
				if pair[1] < pair[0] {
					pair[0], pair[1] = pair[1], pair[0]
				}
				cutSet[pair] = true
			}
		}
	}
	cuts := make([][2]string, 0, len(cutSet))
	for pair := range cutSet {
		cuts = append(cuts, pair)
	}
	sort.Slice(cuts, func(i, j int) bool {
		if cuts[i][0] != cuts[j][0] {
			return cuts[i][0] < cuts[j][0]
		}
		return cuts[i][1] < cuts[j][1]
	})
	return shards, cuts
}

// perturbCapturer is the optional Perturber extension the sharded driver
// needs: event lines produced during out-of-order shard evaluation are
// captured per delivery and restaged in canonical order at the merge
// barrier. ScheduledPerturber implements it; a Perturber that does not is
// evaluated sequentially (its event log would otherwise depend on shard
// interleaving).
type perturbCapturer interface {
	Perturber
	setCapture(buf *[]string)
	restageEvents(lines []string)
}

// useSharded reports whether the next sequential round should run the
// parallel driver.
func (e *BGPEngine) useSharded() bool {
	if e.shardWorkers <= 1 || len(e.order) == 0 {
		return false
	}
	if e.pert != nil {
		if _, ok := e.pert.(perturbCapturer); !ok {
			return false
		}
	}
	return len(e.shardPlan().shards) > 1
}

// shardRun is the per-round scheduler state plus the per-speaker delta
// slots the merge barrier consumes. Speakers write only their own slots
// (and pullers touch peers' advertise caches under the peer's advMu), so
// the slices need no locking; the scheduler mutex orders all cross-shard
// hand-offs.
type shardRun struct {
	e    *BGPEngine
	plan *shardPlan
	hist replayRound

	// Per-speaker delta slots, applied at the barrier in sweep order.
	churned  [][]netip.Prefix
	changed  []bool
	restored []bool
	dirty    []int64
	crossAdv []int64
	// deviant/sdirty mirror e.deviant/e.staticDirty as index slices for the
	// round (nil when no trajectory is armed). deviant is updated live —
	// the admission check reads predecessors' round-r verdicts — which is
	// race-free because only session peers read a speaker's slot and
	// session endpoints never run concurrently.
	deviant []bool
	sdirty  []bool
	// rec/recSet collect the round's trajectory record (nil when not
	// recording).
	rec    []replayState
	recSet []bool
	// events[i][k] captures perturber event lines for speaker i's k-th
	// sorted session, restaged in (speaker, session) order at the barrier.
	events [][][]string
	capt   perturbCapturer

	mu        sync.Mutex
	done      []bool
	cursor    []int         // per shard: position in planShard.idx
	waiters   map[int][]int // speaker index -> shard ids parked on it
	ready     chan int
	remaining int
}

// stepSharded is stepSequential's parallel twin: one round of the
// wavefront evaluation followed by the merge barrier. See the package
// comment at the top of this file for the identity argument.
func (e *BGPEngine) stepSharded() bool {
	e.rounds++
	e.statShardRounds++
	var hist replayRound
	if e.replay != nil {
		if idx := e.rounds - 1; idx >= 0 && idx < len(e.replay.rounds) {
			hist = e.replay.rounds[idx]
		} else {
			// The run outran the recorded trajectory; no further restores.
			e.replay = nil
		}
	}
	plan := e.shardPlan()
	n := len(e.order)
	r := &shardRun{
		e: e, plan: plan, hist: hist,
		churned:  make([][]netip.Prefix, n),
		changed:  make([]bool, n),
		restored: make([]bool, n),
		dirty:    make([]int64, n),
		crossAdv: make([]int64, n),
		done:     make([]bool, n),
		cursor:   make([]int, len(plan.shards)),
		waiters:  map[int][]int{},
		ready:    make(chan int, len(plan.shards)),
	}
	if hist != nil {
		r.deviant = make([]bool, n)
		r.sdirty = make([]bool, n)
		for i, host := range e.order {
			r.deviant[i] = e.deviant[host]
			r.sdirty[i] = e.staticDirty[host]
		}
	}
	if e.record != nil {
		r.rec = make([]replayState, n)
		r.recSet = make([]bool, n)
	}
	if e.pert != nil {
		r.capt = e.pert.(perturbCapturer) // checked by useSharded
		r.events = make([][][]string, n)
	}
	r.remaining = len(plan.shards)
	for sid := range plan.shards {
		r.ready <- sid
	}
	workers := e.shardWorkers
	if workers > len(plan.shards) {
		workers = len(plan.shards)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sid := range r.ready {
				if r.runShard(sid) {
					r.finishShard()
				}
			}
		}()
	}
	wg.Wait()

	// Merge barrier: apply every speaker's deltas in sweep order — exactly
	// the order the sequential sweep applied them as it went.
	changed := false
	restoredThisRound := 0
	var rec replayRound
	if r.rec != nil {
		rec = make(replayRound, n)
	}
	for i, host := range e.order {
		for _, p := range r.churned[i] {
			e.churn[p]++
		}
		if len(r.churned[i]) > 0 {
			e.changedAt[host] = e.rounds
		}
		changed = changed || r.changed[i]
		if r.restored[i] {
			e.statRestored++
			restoredThisRound++
		}
		e.statDirtyPrefixes += r.dirty[i]
		e.statCrossAdverts += r.crossAdv[i]
		if r.deviant != nil {
			if r.deviant[i] {
				e.deviant[host] = true
			} else {
				delete(e.deviant, host)
			}
		}
		if rec != nil && r.recSet[i] {
			rec[host] = r.rec[i]
		}
		if r.events != nil {
			for _, lines := range r.events[i] {
				if len(lines) > 0 {
					r.capt.restageEvents(lines)
				}
			}
		}
	}
	if hist != nil && restoredThisRound == n {
		e.statRoundsSkipped++
	}
	if rec != nil {
		e.record.rounds = append(e.record.rounds, rec)
	}
	return !changed
}

// finishShard retires a completed shard, closing the ready queue when the
// last one finishes so the workers drain and exit.
func (r *shardRun) finishShard() {
	r.mu.Lock()
	r.remaining--
	if r.remaining == 0 {
		close(r.ready)
	}
	r.mu.Unlock()
}

// runShard advances one shard's cursor until the shard completes (true) or
// parks on an unmet cross-shard dependency (false; the dependency's
// completion re-enqueues it). Parking and completion-marking share r.mu,
// so a wakeup cannot be lost between the dependency check and the park.
func (r *shardRun) runShard(sid int) bool {
	sh := &r.plan.shards[sid]
	for {
		r.mu.Lock()
		if r.cursor[sid] >= len(sh.idx) {
			r.mu.Unlock()
			return true
		}
		i := sh.idx[r.cursor[sid]]
		blocked := -1
		for _, j := range r.plan.deps[i] {
			if !r.done[j] {
				blocked = j
				break
			}
		}
		if blocked >= 0 {
			r.waiters[blocked] = append(r.waiters[blocked], sid)
			r.mu.Unlock()
			return false
		}
		r.mu.Unlock()
		r.e.processSpeaker(i, r)
		r.mu.Lock()
		r.done[i] = true
		r.cursor[sid]++
		woken := r.waiters[i]
		delete(r.waiters, i)
		r.mu.Unlock()
		// Re-enqueue outside the lock; the buffer holds every shard, and a
		// shard is queued at most once, so this never blocks. The queue
		// cannot have closed: this shard has not called finishShard yet, so
		// remaining >= 1.
		for _, w := range woken {
			r.ready <- w
		}
	}
}

// canRestore is the replay admission check over the round's index slices:
// the speaker and all its session peers must be neither statically dirty
// nor deviant. Predecessor peers carry this round's verdict (they finished
// before us), successors last round's — the same views the sequential
// sweep reads.
func (r *shardRun) canRestore(i int) bool {
	if r.sdirty[i] || r.deviant[i] {
		return false
	}
	for _, j := range r.plan.peers[i] {
		if r.sdirty[j] || r.deviant[j] {
			return false
		}
	}
	return true
}

// processSpeaker is the sharded counterpart of one stepSequential loop
// iteration: restore-or-recompute for speaker i, with all engine-level
// side effects routed into the shardRun's per-speaker slots. Any change to
// the sequential loop body must be mirrored here; the root parity harness
// (shard_parity_test.go) pins the equivalence.
func (e *BGPEngine) processSpeaker(i int, r *shardRun) {
	host := e.order[i]
	sp := e.speakers[host]
	if r.hist != nil {
		if h, ok := r.hist[host]; ok && r.canRestore(i) {
			sp.adjIn = h.adjIn
			sp.locRIB = h.locRIB
			sp.seg = h.seg
			r.churned[i] = h.churned
			r.changed[i] = h.changed
			r.restored[i] = true
			if r.rec != nil {
				r.rec[i], r.recSet[i] = h, true
			}
			return
		}
	}
	newIn := map[netip.Addr][]BGPRoute{}
	for k, s := range e.sessionsOf(sp) {
		peer := e.speakers[s.peerHost]
		ps, ok := e.reverseSession(peer, sp)
		if !ok {
			continue
		}
		var out []BGPRoute
		// The peer is quiescent (finished, or not yet started, this round —
		// session endpoints never run concurrently), but several of its
		// other peers may be pulling from it right now; advMu serializes
		// their writes to its advertise cache.
		peer.advMu.Lock()
		for _, prefix := range sortedPrefixes(peer.locRIB) {
			rt := peer.locRIB[prefix]
			if adv, ok := peer.advertiseCached(rt, ps); ok {
				out = append(out, adv)
			}
		}
		peer.advMu.Unlock()
		out = e.deliverSharded(i, k, peer.host, sp.host, out, r)
		newIn[s.peerAddr] = filterReceived(sp, out, s.peerAddr)
		if r.plan.cross[i][k] {
			r.crossAdv[i] += int64(len(newIn[s.peerAddr]))
		}
	}
	spChanged := !adjEqual(sp.adjIn, newIn)
	sp.adjIn = newIn
	churned, ribChanged := e.selectBestCollect(sp, r.hist != nil, &r.dirty[i])
	spChanged = spChanged || ribChanged
	if spChanged {
		sp.seg = e.segHash(sp)
	}
	r.churned[i] = churned
	r.changed[i] = spChanged
	if r.hist != nil {
		if h, ok := r.hist[host]; ok && sp.seg == h.seg &&
			adjIdentical(sp.adjIn, h.adjIn) && locRIBIdentical(sp.locRIB, h.locRIB) {
			// Back on (or still on) the trajectory: adopt the recorded maps
			// so identity holds by reference for downstream peers.
			sp.adjIn = h.adjIn
			sp.locRIB = h.locRIB
			r.deviant[i] = false
		} else {
			r.deviant[i] = true
		}
	}
	if r.rec != nil {
		r.rec[i] = replayState{adjIn: sp.adjIn, locRIB: sp.locRIB, seg: sp.seg, changed: spChanged, churned: churned}
		r.recSet[i] = true
	}
}

// deliverSharded applies the perturbation layer for one session under the
// engine's perturber lock, capturing any event lines for canonical
// restaging at the barrier. The perturber's decisions are FNV-keyed by
// (round, session, route) and its per-session state is only touched by the
// session's two endpoints — which run in sweep order — so out-of-order
// shard evaluation changes only the order event lines are produced, never
// their content; the barrier restores the order.
func (e *BGPEngine) deliverSharded(i, k int, from, to string, routes []BGPRoute, r *shardRun) []BGPRoute {
	if e.pert == nil {
		return routes
	}
	e.pertMu.Lock()
	defer e.pertMu.Unlock()
	var buf []string
	r.capt.setCapture(&buf)
	out := e.deliver(from, to, routes)
	r.capt.setCapture(nil)
	if len(buf) > 0 {
		if r.events[i] == nil {
			r.events[i] = make([][]string, len(e.speakers[to].sorted))
		}
		r.events[i][k] = buf
	}
	return out
}

// selectBestCollect is selectBest with the engine-level side effects
// (churn counters, changed-at stamps, dirty-prefix statistics) collected
// for the merge barrier instead of applied to shared maps. The decision
// process itself is identical.
func (e *BGPEngine) selectBestCollect(sp *speaker, replaying bool, dirty *int64) (churned []netip.Prefix, ribChanged bool) {
	candidates := map[netip.Prefix][]BGPRoute{}
	for _, p := range sp.dc.BGP.Networks {
		candidates[p] = append(candidates[p], BGPRoute{
			Prefix: p, LocalPref: 100, Local: true,
		})
	}
	peers := make([]netip.Addr, 0, len(sp.adjIn))
	for a := range sp.adjIn {
		peers = append(peers, a)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Less(peers[j]) })
	for _, peer := range peers {
		for _, rt := range sp.adjIn[peer] {
			if rt.NextHop.IsValid() && e.igp.IGPCost(sp.host, rt.NextHop) < 0 {
				continue
			}
			candidates[rt.Prefix] = append(candidates[rt.Prefix], rt)
		}
	}
	if replaying {
		*dirty += int64(len(candidates))
	}
	newRIB := map[netip.Prefix]BGPRoute{}
	for p, cands := range candidates {
		if best, ok := e.decide(sp, cands); ok {
			newRIB[p] = best
		}
	}
	churned, ribChanged = churnDelta(sp.locRIB, newRIB)
	sp.locRIB = newRIB
	return churned, ribChanged
}

// churnDelta is recordChurn without the engine-map writes: the prefixes
// whose selection changed between the old and new loc-RIB, and whether the
// content changed at all. Unlike recordChurn it always collects the
// churned list — the barrier needs it to replay the counters. The list's
// order is map-iteration order; every consumer applies it as a set.
func churnDelta(oldRIB, newRIB map[netip.Prefix]BGPRoute) (churned []netip.Prefix, changed bool) {
	for p, nr := range newRIB {
		or, had := oldRIB[p]
		if !had || !routeEqual(or, nr) {
			churned = append(churned, p)
			changed = true
		}
	}
	for p := range oldRIB {
		if _, still := newRIB[p]; !still {
			churned = append(churned, p)
			changed = true
		}
	}
	return churned, changed
}
