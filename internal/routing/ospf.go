package routing

import (
	"fmt"
	"net/netip"
	"sort"
)

// The OSPF engine: routers whose configurations advertise the same subnet
// (via `network` statements) and share that subnet on an interface become
// adjacent. Each router then runs Dijkstra over the resulting link-state
// view and installs one route per advertised prefix.
//
// Simplifications versus a full OSPFv2 implementation, none of which
// affect the experiments: areas are honoured as labels but SPF runs over
// the whole domain (all labs use backbone-only or congruent areas); no
// designated-router election (collision domains are modelled directly);
// timers are not simulated (the engine computes the converged state).
//
// With SetIncremental(true) the domain keeps the previous converge's
// canonical edge set, per-router advertisement signatures and per-source
// distance vectors, and a re-Converge runs Dijkstra only for the sources
// whose shortest-path tree a diffed change can touch (delta SPF). The
// recomputation itself is the exact same Dijkstra, so the surviving and
// recomputed route tables are byte-identical to a full recompute.

// OSPFNeighbor is one adjacency, as reported by `show ip ospf neighbor`.
type OSPFNeighbor struct {
	Hostname string
	RouterID netip.Addr
	Addr     netip.Addr // neighbor's address on the shared subnet
	Iface    string     // local interface
	Area     int
}

// OSPFDomain computes link-state routing for a set of device configs that
// share an OSPF domain (one AS).
type OSPFDomain struct {
	devices map[string]*DeviceConfig
	order   []string

	neighbors map[string][]OSPFNeighbor
	routes    map[string][]Route

	// pert, when set, can suppress adjacency formation (lossy links drop
	// enough hellos that the adjacency never comes up); nil leaves the
	// flooding path perfect.
	pert Perturber

	// Delta-SPF state (SetIncremental). prevEdges/prevAdvert are the
	// canonical link-state view of the previous Converge; dist holds each
	// source's full distance vector so affected-source tests and future
	// diffs stay O(changes × sources).
	incremental bool
	prevEdges   map[edgeKey]edgeVal
	prevAdvert  map[string]uint64
	dist        map[string]map[string]int
	hasState    bool

	// Per-Converge outcome: which sources' route tables changed, and the
	// recompute/skip split for observability.
	changedSrc     map[string]bool
	statRecomputed int
	statSkipped    int
	statDelta      bool
}

// SetPerturber installs a control-plane perturbation layer consulted
// during Converge; nil restores perfect hello delivery. Install before
// Converge.
func (d *OSPFDomain) SetPerturber(p Perturber) { d.pert = p }

// SetIncremental switches the domain into delta-SPF mode: the first
// Converge is a full run, subsequent ones recompute only affected sources.
// Off (the default) keeps every Converge a full recompute.
func (d *OSPFDomain) SetIncremental(on bool) {
	d.incremental = on
	if !on {
		d.prevEdges, d.prevAdvert, d.dist, d.hasState = nil, nil, nil, false
	}
}

// Incremental reports whether delta-SPF mode is on.
func (d *OSPFDomain) Incremental() bool { return d.incremental }

// NewOSPFDomain builds the domain from the participating devices.
func NewOSPFDomain(devices []*DeviceConfig) *OSPFDomain {
	d := &OSPFDomain{
		devices:   map[string]*DeviceConfig{},
		neighbors: map[string][]OSPFNeighbor{},
		routes:    map[string][]Route{},
	}
	d.bind(devices)
	return d
}

func (d *OSPFDomain) bind(devices []*DeviceConfig) {
	d.devices = map[string]*DeviceConfig{}
	d.order = d.order[:0]
	for _, dc := range devices {
		if dc.OSPF == nil {
			continue
		}
		d.devices[dc.Hostname] = dc
		d.order = append(d.order, dc.Hostname)
	}
	sort.Strings(d.order)
}

// Rebind replaces the domain's device set (after an incident mutated the
// configs or the live-device list changed) while keeping the delta-SPF
// state, so the next Converge can diff against the previous one. The
// device configs are matched by content, not pointer identity.
func (d *OSPFDomain) Rebind(devices []*DeviceConfig) { d.bind(devices) }

// ospfIfaces returns the interfaces of a device that fall inside one of its
// OSPF network statements, with the matching area.
func ospfIfaces(dc *DeviceConfig) []struct {
	ic   InterfaceConfig
	area int
} {
	var out []struct {
		ic   InterfaceConfig
		area int
	}
	for _, ic := range dc.Interfaces {
		for _, n := range dc.OSPF.Networks {
			if n.Prefix == ic.Prefix || (n.Prefix.Contains(ic.Addr) && n.Prefix.Bits() <= ic.Prefix.Bits()) {
				out = append(out, struct {
					ic   InterfaceConfig
					area int
				}{ic, n.Area})
				break
			}
		}
	}
	return out
}

// nbrLink is one directed adjacency used by the SPF: cost is the outgoing
// interface cost, nextHop the neighbor's address on the shared subnet.
type nbrLink struct {
	to      string
	cost    int
	viaIf   string
	nextHop netip.Addr
}

// Converge computes adjacencies and per-router routes. Adjacency
// formation (including perturber consultation) always runs in full, so
// the edge set and neighbor tables are identical in both modes; only the
// per-source Dijkstra + route-install work is skipped for sources the
// diffed changes cannot affect.
func (d *OSPFDomain) Converge() error {
	// Neighbor tables are rebuilt from scratch every converge (a reused
	// domain must not accumulate duplicates).
	d.neighbors = map[string][]OSPFNeighbor{}

	// Subnet -> attached (hostname, iface, area).
	type attach struct {
		host string
		ic   InterfaceConfig
		area int
	}
	bySubnet := map[netip.Prefix][]attach{}
	for _, host := range d.order {
		dc := d.devices[host]
		for _, x := range ospfIfaces(dc) {
			bySubnet[x.ic.Prefix] = append(bySubnet[x.ic.Prefix], attach{host, x.ic, x.area})
		}
	}
	// Adjacencies: all pairs on a shared advertised subnet.
	subnets := make([]netip.Prefix, 0, len(bySubnet))
	for p := range bySubnet {
		subnets = append(subnets, p)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i].Addr().Less(subnets[j].Addr()) })
	adj := map[string][]nbrLink{}
	newEdges := map[edgeKey]edgeVal{}
	for _, p := range subnets {
		atts := bySubnet[p]
		for i := 0; i < len(atts); i++ {
			for j := i + 1; j < len(atts); j++ {
				if atts[i].host == atts[j].host {
					continue
				}
				// Passive interfaces advertise the subnet but form no
				// adjacency (eBGP-facing links).
				if atts[i].ic.Passive || atts[j].ic.Passive {
					continue
				}
				// A perturbed (lossy) link can drop enough hellos that the
				// adjacency never forms.
				if d.pert != nil && !d.pert.AdjacencyUp(atts[i].host, atts[j].host) {
					continue
				}
				a, b := atts[i], atts[j]
				d.neighbors[a.host] = append(d.neighbors[a.host], OSPFNeighbor{
					Hostname: b.host, RouterID: d.routerID(b.host),
					Addr: b.ic.Addr, Iface: a.ic.Name, Area: a.area,
				})
				d.neighbors[b.host] = append(d.neighbors[b.host], OSPFNeighbor{
					Hostname: a.host, RouterID: d.routerID(a.host),
					Addr: a.ic.Addr, Iface: b.ic.Name, Area: b.area,
				})
				ca, cb := a.ic.Cost, b.ic.Cost
				if ca <= 0 {
					ca = 1
				}
				if cb <= 0 {
					cb = 1
				}
				adj[a.host] = append(adj[a.host], nbrLink{b.host, ca, a.ic.Name, b.ic.Addr})
				adj[b.host] = append(adj[b.host], nbrLink{a.host, cb, b.ic.Name, a.ic.Addr})
				k := edgeKey{a: a.host, b: b.host, aIf: a.ic.Name, bIf: b.ic.Name, prefix: p}
				for {
					if _, dup := newEdges[k]; !dup {
						break
					}
					k.n++
				}
				newEdges[k] = edgeVal{ca: ca, cb: cb, aAddr: a.ic.Addr, bAddr: b.ic.Addr}
			}
		}
	}
	newAdvert := map[string]uint64{}
	for _, host := range d.order {
		newAdvert[host] = advertSignature(d.devices[host])
	}

	affected := d.affectedSources(newEdges, newAdvert)
	d.changedSrc = map[string]bool{}
	d.statRecomputed, d.statSkipped = 0, 0
	d.statDelta = affected != nil
	if d.dist == nil {
		d.dist = map[string]map[string]int{}
	}
	for _, src := range d.order {
		if affected != nil && !affected[src] {
			d.statSkipped++
			continue
		}
		d.statRecomputed++
		dist, first := d.spf(src, adj)
		routes := d.buildRoutes(src, dist, first)
		if !routesEqual(d.routes[src], routes) {
			d.changedSrc[src] = true
		}
		d.routes[src] = routes
		d.dist[src] = dist
	}
	// Sources that left the domain: drop their state and mark them changed
	// (their route tables went away).
	for src := range d.dist {
		if _, ok := d.devices[src]; !ok {
			delete(d.dist, src)
			if _, had := d.routes[src]; had {
				delete(d.routes, src)
				d.changedSrc[src] = true
			}
		}
	}
	d.prevEdges, d.prevAdvert = newEdges, newAdvert
	d.hasState = true
	return nil
}

// firstHop is a source's (next hop, outgoing interface) toward a
// destination router.
type firstHop struct {
	nextHop netip.Addr
	outIf   string
}

// spf runs the domain's deterministic Dijkstra from one source, returning
// the distance vector and first-hop map. This is the single SPF
// implementation both the full and the delta path use.
func (d *OSPFDomain) spf(src string, adj map[string][]nbrLink) (map[string]int, map[string]firstHop) {
	dist := map[string]int{src: 0}
	first := map[string]firstHop{}
	visited := map[string]bool{}
	for {
		// Deterministic minimum selection.
		cur, curDist := "", -1
		for h, ds := range dist {
			if visited[h] {
				continue
			}
			if curDist < 0 || ds < curDist || (ds == curDist && h < cur) {
				cur, curDist = h, ds
			}
		}
		if cur == "" {
			break
		}
		visited[cur] = true
		links := adj[cur]
		sort.Slice(links, func(i, j int) bool { return links[i].to < links[j].to })
		for _, l := range links {
			nd := curDist + l.cost
			old, seen := dist[l.to]
			if !seen || nd < old {
				dist[l.to] = nd
				if cur == src {
					first[l.to] = firstHop{l.nextHop, l.viaIf}
				} else {
					first[l.to] = first[cur]
				}
			}
		}
	}
	return dist, first
}

// buildRoutes installs one route per advertised prefix of every reachable
// router, deduplicated to the lowest metric per prefix and sorted.
func (d *OSPFDomain) buildRoutes(src string, dist map[string]int, first map[string]firstHop) []Route {
	var routes []Route
	srcDC := d.devices[src]
	for _, dst := range d.order {
		if dst == src {
			continue
		}
		total, reachable := dist[dst]
		if !reachable {
			continue
		}
		fh := first[dst]
		for _, x := range ospfIfaces(d.devices[dst]) {
			// Skip prefixes the source is directly attached to.
			if srcAttached(srcDC, x.ic.Prefix) {
				continue
			}
			routes = append(routes, Route{
				Prefix:  x.ic.Prefix,
				NextHop: fh.nextHop,
				OutIf:   fh.outIf,
				Origin:  OriginOSPF,
				Metric:  total + x.ic.Cost,
			})
		}
	}
	// Deduplicate to lowest metric per prefix.
	best := map[netip.Prefix]Route{}
	for _, rt := range routes {
		if old, ok := best[rt.Prefix]; !ok || rt.Metric < old.Metric {
			best[rt.Prefix] = rt
		}
	}
	var final []Route
	prefixes := make([]netip.Prefix, 0, len(best))
	for p := range best {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })
	for _, p := range prefixes {
		final = append(final, best[p])
	}
	return final
}

// affectedSources diffs the new canonical link-state view against the
// previous converge's and returns the set of sources whose SPF must
// re-run. nil means "no previous state / delta off" — recompute everyone.
//
// A source S is affected by an edge (u,v) appearing, disappearing or
// changing value when the edge is (or was) tight enough to matter from
// S's viewpoint: dist_S(u)+cost(u→v) <= dist_S(v) in either direction,
// with a missing distance treated as infinity. The comparison is <=, not
// <, because an exactly-tight edge can flip the deterministic first-hop
// tie-break even when no distance changes. A changed advertisement
// signature on router R affects every source that reaches R (and R
// itself, whose own srcAttached suppression set may have changed).
func (d *OSPFDomain) affectedSources(newEdges map[edgeKey]edgeVal, newAdvert map[string]uint64) map[string]bool {
	if !d.incremental || !d.hasState {
		return nil
	}
	affected := map[string]bool{}
	markEdge := func(k edgeKey, v edgeVal) {
		for _, src := range d.order {
			if affected[src] {
				continue
			}
			sd := d.dist[src]
			du, okU := sd[k.a]
			dv, okV := sd[k.b]
			if (okU && (!okV || du+v.ca <= dv)) || (okV && (!okU || dv+v.cb <= du)) {
				affected[src] = true
			}
		}
	}
	for k, ov := range d.prevEdges {
		if nv, ok := newEdges[k]; !ok || nv != ov {
			markEdge(k, ov)
		}
	}
	for k, nv := range newEdges {
		if ov, ok := d.prevEdges[k]; !ok || nv != ov {
			markEdge(k, nv)
		}
	}
	markReach := func(host string) {
		for _, src := range d.order {
			if affected[src] {
				continue
			}
			if _, ok := d.dist[src][host]; ok {
				affected[src] = true
			}
		}
	}
	for h, oh := range d.prevAdvert {
		if nh, ok := newAdvert[h]; !ok || nh != oh {
			markReach(h)
		}
	}
	for h, nh := range newAdvert {
		if oh, ok := d.prevAdvert[h]; !ok || nh != oh {
			markReach(h)
		}
	}
	// Sources with no recorded distance vector are new to the domain.
	for _, src := range d.order {
		if _, ok := d.dist[src]; !ok {
			affected[src] = true
		}
	}
	return affected
}

// ChangedSources returns the sources whose route tables changed during the
// most recent Converge (including sources that left the domain). The
// incremental BGP path seeds its dirty set from this.
func (d *OSPFDomain) ChangedSources() map[string]bool {
	out := make(map[string]bool, len(d.changedSrc))
	for h := range d.changedSrc {
		out[h] = true
	}
	return out
}

// DeltaStats reports the most recent Converge's SPF split: how many
// sources were recomputed, how many skipped, and whether the run actually
// took the delta path (false for full recomputes).
func (d *OSPFDomain) DeltaStats() (recomputed, skipped int, delta bool) {
	return d.statRecomputed, d.statSkipped, d.statDelta
}

func srcAttached(dc *DeviceConfig, p netip.Prefix) bool {
	for _, ic := range dc.Interfaces {
		if ic.Prefix == p {
			return true
		}
	}
	return false
}

func (d *OSPFDomain) routerID(host string) netip.Addr {
	dc := d.devices[host]
	if dc.HasLoopback() {
		return dc.Loopback
	}
	if len(dc.Interfaces) > 0 {
		return dc.Interfaces[0].Addr
	}
	return netip.Addr{}
}

// Neighbors returns a router's adjacencies (the emulated `show ip ospf
// neighbor`).
func (d *OSPFDomain) Neighbors(host string) []OSPFNeighbor {
	out := make([]OSPFNeighbor, len(d.neighbors[host]))
	copy(out, d.neighbors[host])
	sort.Slice(out, func(i, j int) bool { return out[i].Hostname < out[j].Hostname })
	return out
}

// Routes returns a router's computed OSPF routes.
func (d *OSPFDomain) Routes(host string) []Route { return d.routes[host] }

// IGPCost returns the metric from a router to an address (used by the BGP
// decision process's IGP tie-break): the metric of the best route covering
// the address, 0 when directly connected, -1 when unreachable.
func (d *OSPFDomain) IGPCost(host string, addr netip.Addr) int {
	dc, ok := d.devices[host]
	if !ok {
		return -1
	}
	for _, ic := range dc.Interfaces {
		if ic.Prefix.Contains(addr) {
			return 0
		}
	}
	if dc.HasLoopback() && dc.Loopback == addr {
		return 0
	}
	best := -1
	for _, rt := range d.routes[host] {
		if rt.Prefix.Contains(addr) {
			if best < 0 || rt.Metric < best {
				best = rt.Metric
			}
		}
	}
	return best
}

// String summarises the domain.
func (d *OSPFDomain) String() string {
	return fmt.Sprintf("ospf-domain(%d routers)", len(d.order))
}

// isisSynthConfigs maps IS-IS configurations onto synthesized OSPF-shaped
// configs: advertised networks are the subnets of the IS-IS-enabled
// interfaces plus the loopback, metrics come from the interface costs.
func isisSynthConfigs(devices []*DeviceConfig) []*DeviceConfig {
	var synth []*DeviceConfig
	for _, dc := range devices {
		if dc.ISIS == nil {
			continue
		}
		enabled := map[string]bool{"lo": true}
		for _, name := range dc.ISIS.Interfaces {
			enabled[name] = true
		}
		clone := &DeviceConfig{
			Hostname: dc.Hostname,
			Loopback: dc.Loopback,
			OSPF:     &OSPFConfig{ProcessID: 0},
		}
		for _, ic := range dc.Interfaces {
			clone.Interfaces = append(clone.Interfaces, ic)
			if enabled[ic.Name] {
				clone.OSPF.Networks = append(clone.OSPF.Networks, OSPFNetwork{Prefix: ic.Prefix, Area: 0})
			}
		}
		synth = append(synth, clone)
	}
	return synth
}

// NewISISDomain maps IS-IS configurations onto the link-state engine: both
// protocols compute SPF over shared-subnet adjacencies, so an IS-IS domain
// is an OSPFDomain over synthesized configs (see isisSynthConfigs).
func NewISISDomain(devices []*DeviceConfig) *OSPFDomain {
	return NewOSPFDomain(isisSynthConfigs(devices))
}

// RebindISIS is Rebind for IS-IS domains: the device set is re-synthesized
// from the current IS-IS configs and rebound, keeping the delta-SPF state.
func (d *OSPFDomain) RebindISIS(devices []*DeviceConfig) {
	d.Rebind(isisSynthConfigs(devices))
}
