package routing

import (
	"fmt"
	"net/netip"
	"sort"
)

// The OSPF engine: routers whose configurations advertise the same subnet
// (via `network` statements) and share that subnet on an interface become
// adjacent. Each router then runs Dijkstra over the resulting link-state
// view and installs one route per advertised prefix.
//
// Simplifications versus a full OSPFv2 implementation, none of which
// affect the experiments: areas are honoured as labels but SPF runs over
// the whole domain (all labs use backbone-only or congruent areas); no
// designated-router election (collision domains are modelled directly);
// timers are not simulated (the engine computes the converged state).

// OSPFNeighbor is one adjacency, as reported by `show ip ospf neighbor`.
type OSPFNeighbor struct {
	Hostname string
	RouterID netip.Addr
	Addr     netip.Addr // neighbor's address on the shared subnet
	Iface    string     // local interface
	Area     int
}

// OSPFDomain computes link-state routing for a set of device configs that
// share an OSPF domain (one AS).
type OSPFDomain struct {
	devices map[string]*DeviceConfig
	order   []string

	neighbors map[string][]OSPFNeighbor
	routes    map[string][]Route

	// pert, when set, can suppress adjacency formation (lossy links drop
	// enough hellos that the adjacency never comes up); nil leaves the
	// flooding path perfect.
	pert Perturber
}

// SetPerturber installs a control-plane perturbation layer consulted
// during Converge; nil restores perfect hello delivery. Install before
// Converge.
func (d *OSPFDomain) SetPerturber(p Perturber) { d.pert = p }

// NewOSPFDomain builds the domain from the participating devices.
func NewOSPFDomain(devices []*DeviceConfig) *OSPFDomain {
	d := &OSPFDomain{
		devices:   map[string]*DeviceConfig{},
		neighbors: map[string][]OSPFNeighbor{},
		routes:    map[string][]Route{},
	}
	for _, dc := range devices {
		if dc.OSPF == nil {
			continue
		}
		d.devices[dc.Hostname] = dc
		d.order = append(d.order, dc.Hostname)
	}
	sort.Strings(d.order)
	return d
}

// ospfIfaces returns the interfaces of a device that fall inside one of its
// OSPF network statements, with the matching area.
func ospfIfaces(dc *DeviceConfig) []struct {
	ic   InterfaceConfig
	area int
} {
	var out []struct {
		ic   InterfaceConfig
		area int
	}
	for _, ic := range dc.Interfaces {
		for _, n := range dc.OSPF.Networks {
			if n.Prefix == ic.Prefix || (n.Prefix.Contains(ic.Addr) && n.Prefix.Bits() <= ic.Prefix.Bits()) {
				out = append(out, struct {
					ic   InterfaceConfig
					area int
				}{ic, n.Area})
				break
			}
		}
	}
	return out
}

// Converge computes adjacencies and per-router routes.
func (d *OSPFDomain) Converge() error {
	// Subnet -> attached (hostname, iface, area).
	type attach struct {
		host string
		ic   InterfaceConfig
		area int
	}
	bySubnet := map[netip.Prefix][]attach{}
	for _, host := range d.order {
		dc := d.devices[host]
		for _, x := range ospfIfaces(dc) {
			bySubnet[x.ic.Prefix] = append(bySubnet[x.ic.Prefix], attach{host, x.ic, x.area})
		}
	}
	// Adjacencies: all pairs on a shared advertised subnet.
	type edge struct {
		a, b     string
		aIC, bIC InterfaceConfig
		area     int
	}
	var edges []edge
	subnets := make([]netip.Prefix, 0, len(bySubnet))
	for p := range bySubnet {
		subnets = append(subnets, p)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i].Addr().Less(subnets[j].Addr()) })
	for _, p := range subnets {
		atts := bySubnet[p]
		for i := 0; i < len(atts); i++ {
			for j := i + 1; j < len(atts); j++ {
				if atts[i].host == atts[j].host {
					continue
				}
				// Passive interfaces advertise the subnet but form no
				// adjacency (eBGP-facing links).
				if atts[i].ic.Passive || atts[j].ic.Passive {
					continue
				}
				// A perturbed (lossy) link can drop enough hellos that the
				// adjacency never forms.
				if d.pert != nil && !d.pert.AdjacencyUp(atts[i].host, atts[j].host) {
					continue
				}
				edges = append(edges, edge{atts[i].host, atts[j].host, atts[i].ic, atts[j].ic, atts[i].area})
				d.neighbors[atts[i].host] = append(d.neighbors[atts[i].host], OSPFNeighbor{
					Hostname: atts[j].host, RouterID: d.routerID(atts[j].host),
					Addr: atts[j].ic.Addr, Iface: atts[i].ic.Name, Area: atts[i].area,
				})
				d.neighbors[atts[j].host] = append(d.neighbors[atts[j].host], OSPFNeighbor{
					Hostname: atts[i].host, RouterID: d.routerID(atts[i].host),
					Addr: atts[i].ic.Addr, Iface: atts[j].ic.Name, Area: atts[j].area,
				})
			}
		}
	}
	// Per-router Dijkstra over (host) graph; cost = outgoing interface cost.
	type nbrLink struct {
		to      string
		cost    int
		viaIf   string     // local outgoing interface
		nextHop netip.Addr // neighbor address on the shared subnet
	}
	adj := map[string][]nbrLink{}
	for _, e := range edges {
		ca, cb := e.aIC.Cost, e.bIC.Cost
		if ca <= 0 {
			ca = 1
		}
		if cb <= 0 {
			cb = 1
		}
		adj[e.a] = append(adj[e.a], nbrLink{e.b, ca, e.aIC.Name, e.bIC.Addr})
		adj[e.b] = append(adj[e.b], nbrLink{e.a, cb, e.bIC.Name, e.aIC.Addr})
	}
	for _, src := range d.order {
		dist := map[string]int{src: 0}
		type firstHop struct {
			nextHop netip.Addr
			outIf   string
		}
		first := map[string]firstHop{}
		visited := map[string]bool{}
		for {
			// Deterministic minimum selection.
			cur, curDist := "", -1
			for h, ds := range dist {
				if visited[h] {
					continue
				}
				if curDist < 0 || ds < curDist || (ds == curDist && h < cur) {
					cur, curDist = h, ds
				}
			}
			if cur == "" {
				break
			}
			visited[cur] = true
			links := adj[cur]
			sort.Slice(links, func(i, j int) bool { return links[i].to < links[j].to })
			for _, l := range links {
				nd := curDist + l.cost
				old, seen := dist[l.to]
				if !seen || nd < old {
					dist[l.to] = nd
					if cur == src {
						first[l.to] = firstHop{l.nextHop, l.viaIf}
					} else {
						first[l.to] = first[cur]
					}
				}
			}
		}
		// Install routes: every advertised prefix of every reachable router.
		var routes []Route
		srcDC := d.devices[src]
		for _, dst := range d.order {
			if dst == src {
				continue
			}
			total, reachable := dist[dst]
			if !reachable {
				continue
			}
			fh := first[dst]
			for _, x := range ospfIfaces(d.devices[dst]) {
				// Skip prefixes the source is directly attached to.
				if srcAttached(srcDC, x.ic.Prefix) {
					continue
				}
				routes = append(routes, Route{
					Prefix:  x.ic.Prefix,
					NextHop: fh.nextHop,
					OutIf:   fh.outIf,
					Origin:  OriginOSPF,
					Metric:  total + x.ic.Cost,
				})
			}
		}
		// Deduplicate to lowest metric per prefix.
		best := map[netip.Prefix]Route{}
		for _, rt := range routes {
			if old, ok := best[rt.Prefix]; !ok || rt.Metric < old.Metric {
				best[rt.Prefix] = rt
			}
		}
		var final []Route
		prefixes := make([]netip.Prefix, 0, len(best))
		for p := range best {
			prefixes = append(prefixes, p)
		}
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })
		for _, p := range prefixes {
			final = append(final, best[p])
		}
		d.routes[src] = final
	}
	return nil
}

func srcAttached(dc *DeviceConfig, p netip.Prefix) bool {
	for _, ic := range dc.Interfaces {
		if ic.Prefix == p {
			return true
		}
	}
	return false
}

func (d *OSPFDomain) routerID(host string) netip.Addr {
	dc := d.devices[host]
	if dc.HasLoopback() {
		return dc.Loopback
	}
	if len(dc.Interfaces) > 0 {
		return dc.Interfaces[0].Addr
	}
	return netip.Addr{}
}

// Neighbors returns a router's adjacencies (the emulated `show ip ospf
// neighbor`).
func (d *OSPFDomain) Neighbors(host string) []OSPFNeighbor {
	out := make([]OSPFNeighbor, len(d.neighbors[host]))
	copy(out, d.neighbors[host])
	sort.Slice(out, func(i, j int) bool { return out[i].Hostname < out[j].Hostname })
	return out
}

// Routes returns a router's computed OSPF routes.
func (d *OSPFDomain) Routes(host string) []Route { return d.routes[host] }

// IGPCost returns the metric from a router to an address (used by the BGP
// decision process's IGP tie-break): the metric of the best route covering
// the address, 0 when directly connected, -1 when unreachable.
func (d *OSPFDomain) IGPCost(host string, addr netip.Addr) int {
	dc, ok := d.devices[host]
	if !ok {
		return -1
	}
	for _, ic := range dc.Interfaces {
		if ic.Prefix.Contains(addr) {
			return 0
		}
	}
	if dc.HasLoopback() && dc.Loopback == addr {
		return 0
	}
	best := -1
	for _, rt := range d.routes[host] {
		if rt.Prefix.Contains(addr) {
			if best < 0 || rt.Metric < best {
				best = rt.Metric
			}
		}
	}
	return best
}

// String summarises the domain.
func (d *OSPFDomain) String() string {
	return fmt.Sprintf("ospf-domain(%d routers)", len(d.order))
}

// NewISISDomain maps IS-IS configurations onto the link-state engine: both
// protocols compute SPF over shared-subnet adjacencies, so an IS-IS domain
// is an OSPFDomain over synthesized configs whose advertised networks are
// the subnets of the IS-IS-enabled interfaces plus the loopback. Metrics
// come from the interface costs.
func NewISISDomain(devices []*DeviceConfig) *OSPFDomain {
	var synth []*DeviceConfig
	for _, dc := range devices {
		if dc.ISIS == nil {
			continue
		}
		enabled := map[string]bool{"lo": true}
		for _, name := range dc.ISIS.Interfaces {
			enabled[name] = true
		}
		clone := &DeviceConfig{
			Hostname: dc.Hostname,
			Loopback: dc.Loopback,
			OSPF:     &OSPFConfig{ProcessID: 0},
		}
		for _, ic := range dc.Interfaces {
			clone.Interfaces = append(clone.Interfaces, ic)
			if enabled[ic.Name] {
				clone.OSPF.Networks = append(clone.OSPF.Networks, OSPFNetwork{Prefix: ic.Prefix, Area: 0})
			}
		}
		synth = append(synth, clone)
	}
	return NewOSPFDomain(synth)
}
