package routing

import (
	"fmt"
	"hash/fnv"
	"net/netip"
)

// Incremental-convergence support: content signatures for device
// configurations and the canonical link-state bookkeeping the delta-SPF
// path diffs between Converge calls. The correctness bar for everything in
// this file is byte-identity: a converge that consults these signatures
// must produce exactly the state a from-scratch converge would.

// ConfigSignature hashes every field of a device configuration that any
// routing engine or the data plane reads: hostname, interfaces (all
// fields), loopback, gateway, and the OSPF/BGP/IS-IS stanzas. Two configs
// with equal signatures drive every engine identically; the incremental
// converge path uses this to decide which speakers' cached state is still
// trustworthy.
func ConfigSignature(dc *DeviceConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "h%s|lo%v|gw%v|", dc.Hostname, dc.Loopback, dc.Gateway)
	for _, ic := range dc.Interfaces {
		fmt.Fprintf(h, "i%s|%v|%v|%d|%v|", ic.Name, ic.Addr, ic.Prefix, ic.Cost, ic.Passive)
	}
	if dc.OSPF != nil {
		fmt.Fprintf(h, "o%d|", dc.OSPF.ProcessID)
		for _, n := range dc.OSPF.Networks {
			fmt.Fprintf(h, "n%v|%d|", n.Prefix, n.Area)
		}
	}
	if dc.BGP != nil {
		fmt.Fprintf(h, "b%d|%v|", dc.BGP.ASN, dc.BGP.RouterID)
		for _, p := range dc.BGP.Networks {
			fmt.Fprintf(h, "p%v|", p)
		}
		for _, nb := range dc.BGP.Neighbors {
			fmt.Fprintf(h, "nb%v|%d|%s|%s|%v|%d|%d|", nb.Addr, nb.RemoteASN,
				nb.Description, nb.UpdateSource, nb.RRClient, nb.MEDOut, nb.LocalPrefIn)
		}
	}
	if dc.ISIS != nil {
		fmt.Fprintf(h, "s%s|", dc.ISIS.NET)
		for _, name := range dc.ISIS.Interfaces {
			fmt.Fprintf(h, "si%s|", name)
		}
	}
	return h.Sum64()
}

// edgeKey canonically identifies one link-state adjacency: the two hosts
// (a < b by construction — attachments are enumerated in sorted host
// order), their interface names and the shared subnet. n disambiguates the
// pathological case of the same host pair sharing the same subnet through
// identically-named interfaces more than once.
type edgeKey struct {
	a, b     string
	aIf, bIf string
	prefix   netip.Prefix
	n        int
}

// edgeVal carries the per-direction costs (normalized to >= 1, as the SPF
// uses them) and the endpoint addresses (the next-hop each direction
// installs). A value change is treated as remove-old + add-new.
type edgeVal struct {
	ca, cb       int
	aAddr, bAddr netip.Addr
}

// advertSignature hashes the parts of a device that shape every OTHER
// router's routes toward it: its advertised (prefix, cost) pairs in order,
// plus all interface prefixes (which feed the srcAttached suppression on
// the device's own route table). Edge-level facts (adjacency existence,
// link costs, next-hop addresses) are covered by the edge diff instead.
func advertSignature(dc *DeviceConfig) uint64 {
	h := fnv.New64a()
	for _, x := range ospfIfaces(dc) {
		fmt.Fprintf(h, "a%v|%d|", x.ic.Prefix, x.ic.Cost)
	}
	for _, ic := range dc.Interfaces {
		fmt.Fprintf(h, "i%v|", ic.Prefix)
	}
	return h.Sum64()
}

// routesEqual compares two route slices element-wise (Route is
// comparable).
func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
