// Package netaddr provides the IPv4 prefix arithmetic the allocation and
// service layers need: carving sub-blocks out of a parent prefix, iterating
// hosts, and producing reverse-DNS names. The paper's implementation leans
// on Python's netaddr library (§5.3); this is the required subset built on
// net/netip.
package netaddr

import (
	"fmt"
	"net/netip"
	"strings"
)

// MustPrefix parses a CIDR prefix and panics on error; intended for
// constants and tests.
func MustPrefix(s string) netip.Prefix {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p.Masked()
}

// addrToUint32 converts an IPv4 address to its integer form.
func addrToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// uint32ToAddr converts an integer to an IPv4 address.
func uint32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddOffset returns addr + n (IPv4 arithmetic, wrapping is an error).
func AddOffset(addr netip.Addr, n uint32) (netip.Addr, error) {
	if !addr.Is4() {
		return netip.Addr{}, fmt.Errorf("netaddr: %v is not IPv4", addr)
	}
	v := addrToUint32(addr)
	if v+n < v {
		return netip.Addr{}, fmt.Errorf("netaddr: %v + %d overflows IPv4 space", addr, n)
	}
	return uint32ToAddr(v + n), nil
}

// NthSubnet returns the i-th (0-based) subnet of the given newBits length
// carved from parent: NthSubnet(10.0.0.0/8, 16, 2) = 10.2.0.0/16.
func NthSubnet(parent netip.Prefix, newBits int, i int) (netip.Prefix, error) {
	parent = parent.Masked()
	if !parent.Addr().Is4() {
		return netip.Prefix{}, fmt.Errorf("netaddr: parent %v is not IPv4", parent)
	}
	if newBits < parent.Bits() || newBits > 32 {
		return netip.Prefix{}, fmt.Errorf("netaddr: cannot carve /%d from %v", newBits, parent)
	}
	count := 1 << (newBits - parent.Bits())
	if i < 0 || i >= count {
		return netip.Prefix{}, fmt.Errorf("netaddr: subnet index %d out of range (%v has %d /%d subnets)", i, parent, count, newBits)
	}
	base := addrToUint32(parent.Addr())
	step := uint32(1) << (32 - newBits)
	return netip.PrefixFrom(uint32ToAddr(base+uint32(i)*step), newBits), nil
}

// SubnetCount returns how many /newBits subnets fit inside parent.
func SubnetCount(parent netip.Prefix, newBits int) int {
	if newBits < parent.Bits() || newBits > 32 {
		return 0
	}
	return 1 << (newBits - parent.Bits())
}

// HostCount returns the number of usable host addresses in an IPv4 prefix
// (excludes network and broadcast for prefixes shorter than /31; /31 and
// /32 follow point-to-point conventions).
func HostCount(p netip.Prefix) int {
	switch bits := p.Bits(); {
	case bits == 32:
		return 1
	case bits == 31:
		return 2
	default:
		return (1 << (32 - bits)) - 2
	}
}

// NthHost returns the i-th (0-based) usable host address of an IPv4 prefix.
// For /31 and /32 the raw addresses are used; otherwise the network and
// broadcast addresses are skipped.
func NthHost(p netip.Prefix, i int) (netip.Addr, error) {
	p = p.Masked()
	n := HostCount(p)
	if i < 0 || i >= n {
		return netip.Addr{}, fmt.Errorf("netaddr: host index %d out of range for %v (%d hosts)", i, p, n)
	}
	off := uint32(i)
	if p.Bits() < 31 {
		off++ // skip network address
	}
	return AddOffset(p.Addr(), off)
}

// Broadcast returns the broadcast (highest) address of an IPv4 prefix.
func Broadcast(p netip.Prefix) netip.Addr {
	p = p.Masked()
	base := addrToUint32(p.Addr())
	size := uint32(1) << (32 - p.Bits())
	return uint32ToAddr(base + size - 1)
}

// Netmask returns the dotted-quad netmask of the prefix, e.g. /24 →
// 255.255.255.0, as required by Quagga/IOS interface syntax.
func Netmask(p netip.Prefix) string {
	var m uint32
	if p.Bits() > 0 {
		m = ^uint32(0) << (32 - p.Bits())
	}
	return uint32ToAddr(m).String()
}

// WildcardMask returns the inverse mask (e.g. /24 → 0.0.0.255), as used by
// IOS `network ... area` statements.
func WildcardMask(p netip.Prefix) string {
	var m uint32
	if p.Bits() > 0 {
		m = ^uint32(0) << (32 - p.Bits())
	}
	return uint32ToAddr(^m).String()
}

// Contains reports whether sub is fully contained in parent.
func Contains(parent, sub netip.Prefix) bool {
	return parent.Bits() <= sub.Bits() && parent.Contains(sub.Addr())
}

// Overlaps reports whether the two prefixes share any address.
func Overlaps(a, b netip.Prefix) bool { return a.Overlaps(b) }

// ReverseName returns the in-addr.arpa PTR name for an IPv4 address, e.g.
// 192.168.1.5 → "5.1.168.192.in-addr.arpa".
func ReverseName(a netip.Addr) string {
	b := a.As4()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", b[3], b[2], b[1], b[0])
}

// ReverseZone returns the in-addr.arpa zone name covering an IPv4 prefix at
// the enclosing /8, /16 or /24 boundary, e.g. 192.168.1.0/30 →
// "1.168.192.in-addr.arpa".
func ReverseZone(p netip.Prefix) string {
	b := p.Masked().Addr().As4()
	switch {
	case p.Bits() > 16:
		return fmt.Sprintf("%d.%d.%d.in-addr.arpa", b[2], b[1], b[0])
	case p.Bits() > 8:
		return fmt.Sprintf("%d.%d.in-addr.arpa", b[1], b[0])
	default:
		return fmt.Sprintf("%d.in-addr.arpa", b[0])
	}
}

// Carver hands out consecutive, non-overlapping child prefixes from a
// parent block. It is the core primitive of the IP allocator (§5.3).
type Carver struct {
	parent netip.Prefix
	next   uint32 // offset (in addresses) of the next free byte of space
}

// NewCarver returns a Carver over the given IPv4 parent block.
func NewCarver(parent netip.Prefix) (*Carver, error) {
	parent = parent.Masked()
	if !parent.Addr().Is4() {
		return nil, fmt.Errorf("netaddr: carver parent %v is not IPv4", parent)
	}
	return &Carver{parent: parent}, nil
}

// Parent returns the block being carved.
func (c *Carver) Parent() netip.Prefix { return c.parent }

// Remaining returns how many addresses are still unallocated.
func (c *Carver) Remaining() uint32 {
	size := uint32(1) << (32 - c.parent.Bits())
	return size - c.next
}

// Next carves the next aligned /bits prefix from the parent, or errors when
// the block is exhausted.
func (c *Carver) Next(bits int) (netip.Prefix, error) {
	if bits < c.parent.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("netaddr: cannot carve /%d from %v", bits, c.parent)
	}
	size := uint32(1) << (32 - bits)
	// Align the cursor up to the subnet size.
	aligned := (c.next + size - 1) &^ (size - 1)
	total := uint32(1) << (32 - c.parent.Bits())
	if aligned+size > total || aligned+size < aligned {
		return netip.Prefix{}, fmt.Errorf("netaddr: block %v exhausted carving /%d", c.parent, bits)
	}
	addr, err := AddOffset(c.parent.Addr(), aligned)
	if err != nil {
		return netip.Prefix{}, err
	}
	c.next = aligned + size
	return netip.PrefixFrom(addr, bits), nil
}

// PrefixLessThan orders prefixes by address then by length; used to emit
// deterministic allocation tables.
func PrefixLessThan(a, b netip.Prefix) bool {
	if a.Addr() != b.Addr() {
		return a.Addr().Less(b.Addr())
	}
	return a.Bits() < b.Bits()
}

// FormatCIDRList renders prefixes space-separated, for log and debug output.
func FormatCIDRList(ps []netip.Prefix) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}
