package netaddr

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestMustPrefixMasks(t *testing.T) {
	p := MustPrefix("192.168.1.77/24")
	if p.String() != "192.168.1.0/24" {
		t.Errorf("MustPrefix did not mask: %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad prefix should panic")
		}
	}()
	MustPrefix("not-a-prefix")
}

func TestAddOffset(t *testing.T) {
	a := netip.MustParseAddr("10.0.0.250")
	got, err := AddOffset(a, 10)
	if err != nil || got.String() != "10.0.1.4" {
		t.Errorf("AddOffset = %v, %v", got, err)
	}
	if _, err := AddOffset(netip.MustParseAddr("255.255.255.255"), 1); err == nil {
		t.Error("overflow not detected")
	}
	if _, err := AddOffset(netip.MustParseAddr("::1"), 1); err == nil {
		t.Error("IPv6 should be rejected")
	}
}

func TestNthSubnet(t *testing.T) {
	p := MustPrefix("10.0.0.0/8")
	cases := []struct {
		bits, i int
		want    string
	}{
		{16, 0, "10.0.0.0/16"},
		{16, 2, "10.2.0.0/16"},
		{16, 255, "10.255.0.0/16"},
		{30, 1, "10.0.0.4/30"},
		{8, 0, "10.0.0.0/8"},
	}
	for _, c := range cases {
		got, err := NthSubnet(p, c.bits, c.i)
		if err != nil || got.String() != c.want {
			t.Errorf("NthSubnet(%d,%d) = %v, %v; want %s", c.bits, c.i, got, err, c.want)
		}
	}
	if _, err := NthSubnet(p, 16, 256); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NthSubnet(p, 4, 0); err == nil {
		t.Error("shorter-than-parent accepted")
	}
}

func TestSubnetCount(t *testing.T) {
	if n := SubnetCount(MustPrefix("10.0.0.0/8"), 16); n != 256 {
		t.Errorf("count = %d", n)
	}
	if n := SubnetCount(MustPrefix("10.0.0.0/24"), 16); n != 0 {
		t.Errorf("invalid count = %d", n)
	}
}

func TestHostCountAndNthHost(t *testing.T) {
	p30 := MustPrefix("192.168.1.0/30")
	if HostCount(p30) != 2 {
		t.Errorf("/30 hosts = %d", HostCount(p30))
	}
	h0, _ := NthHost(p30, 0)
	h1, _ := NthHost(p30, 1)
	if h0.String() != "192.168.1.1" || h1.String() != "192.168.1.2" {
		t.Errorf("/30 hosts = %v %v", h0, h1)
	}
	if _, err := NthHost(p30, 2); err == nil {
		t.Error("broadcast handed out as host")
	}

	p31 := MustPrefix("10.0.0.0/31")
	if HostCount(p31) != 2 {
		t.Errorf("/31 hosts = %d", HostCount(p31))
	}
	h0, _ = NthHost(p31, 0)
	if h0.String() != "10.0.0.0" {
		t.Errorf("/31 first host = %v", h0)
	}

	p32 := MustPrefix("10.1.1.1/32")
	if HostCount(p32) != 1 {
		t.Errorf("/32 hosts = %d", HostCount(p32))
	}
	h0, _ = NthHost(p32, 0)
	if h0.String() != "10.1.1.1" {
		t.Errorf("/32 host = %v", h0)
	}
}

func TestBroadcastNetmaskWildcard(t *testing.T) {
	p := MustPrefix("192.168.1.0/24")
	if Broadcast(p).String() != "192.168.1.255" {
		t.Errorf("broadcast = %v", Broadcast(p))
	}
	if Netmask(p) != "255.255.255.0" {
		t.Errorf("netmask = %v", Netmask(p))
	}
	if WildcardMask(p) != "0.0.0.255" {
		t.Errorf("wildcard = %v", WildcardMask(p))
	}
	if Netmask(MustPrefix("0.0.0.0/0")) != "0.0.0.0" {
		t.Error("zero-length netmask")
	}
	if Netmask(MustPrefix("1.2.3.4/32")) != "255.255.255.255" {
		t.Error("/32 netmask")
	}
}

func TestContains(t *testing.T) {
	if !Contains(MustPrefix("10.0.0.0/8"), MustPrefix("10.5.0.0/16")) {
		t.Error("containment missed")
	}
	if Contains(MustPrefix("10.5.0.0/16"), MustPrefix("10.0.0.0/8")) {
		t.Error("reverse containment accepted")
	}
	if !Overlaps(MustPrefix("10.0.0.0/8"), MustPrefix("10.255.0.0/16")) {
		t.Error("overlap missed")
	}
}

func TestReverseNames(t *testing.T) {
	if got := ReverseName(netip.MustParseAddr("192.168.1.5")); got != "5.1.168.192.in-addr.arpa" {
		t.Errorf("ReverseName = %s", got)
	}
	cases := []struct{ p, want string }{
		{"192.168.1.0/30", "1.168.192.in-addr.arpa"},
		{"192.168.0.0/16", "168.192.in-addr.arpa"},
		{"10.0.0.0/8", "10.in-addr.arpa"},
	}
	for _, c := range cases {
		if got := ReverseZone(MustPrefix(c.p)); got != c.want {
			t.Errorf("ReverseZone(%s) = %s, want %s", c.p, got, c.want)
		}
	}
}

func TestCarverSequential(t *testing.T) {
	c, err := NewCarver(MustPrefix("192.168.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		p, err := c.Next(30)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p.String())
	}
	want := "192.168.0.0/30 192.168.0.4/30 192.168.0.8/30"
	if strings.Join(got, " ") != want {
		t.Errorf("carved %v, want %v", got, want)
	}
}

func TestCarverAlignment(t *testing.T) {
	c, _ := NewCarver(MustPrefix("10.0.0.0/8"))
	if _, err := c.Next(30); err != nil { // consumes 4 addresses
		t.Fatal(err)
	}
	p, err := c.Next(24) // must align up to next /24 boundary
	if err != nil || p.String() != "10.0.1.0/24" {
		t.Errorf("aligned carve = %v, %v", p, err)
	}
	p, err = c.Next(16) // align up to the next /16
	if err != nil || p.String() != "10.1.0.0/16" {
		t.Errorf("aligned carve = %v, %v", p, err)
	}
}

func TestCarverExhaustion(t *testing.T) {
	c, _ := NewCarver(MustPrefix("10.0.0.0/30"))
	if _, err := c.Next(30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(32); err == nil {
		t.Error("exhaustion not detected")
	}
	if c.Remaining() != 0 {
		t.Errorf("remaining = %d", c.Remaining())
	}
	if _, err := c.Next(2); err == nil {
		t.Error("carving shorter than parent accepted")
	}
	if _, err := NewCarver(netip.MustParsePrefix("2001:db8::/32")); err == nil {
		t.Error("IPv6 carver accepted")
	}
}

// Property: every pair of prefixes carved from the same parent is
// non-overlapping and contained in the parent.
func TestPropertyCarverDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		c, _ := NewCarver(MustPrefix("10.0.0.0/8"))
		var carved []netip.Prefix
		for _, s := range sizes {
			bits := 16 + int(s%17) // /16../32
			p, err := c.Next(bits)
			if err != nil {
				break // exhaustion is fine
			}
			carved = append(carved, p)
		}
		for i := range carved {
			if !Contains(MustPrefix("10.0.0.0/8"), carved[i]) {
				return false
			}
			for j := i + 1; j < len(carved); j++ {
				if Overlaps(carved[i], carved[j]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: NthSubnet results for distinct indexes never overlap.
func TestPropertyNthSubnetDisjoint(t *testing.T) {
	f := func(i, j uint8) bool {
		a, err1 := NthSubnet(MustPrefix("172.16.0.0/12"), 24, int(i))
		b, err2 := NthSubnet(MustPrefix("172.16.0.0/12"), 24, int(j))
		if err1 != nil || err2 != nil {
			return false
		}
		if i == j {
			return a == b
		}
		return !Overlaps(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixLessThan(t *testing.T) {
	a := MustPrefix("10.0.0.0/8")
	b := MustPrefix("10.0.0.0/16")
	c := MustPrefix("11.0.0.0/8")
	if !PrefixLessThan(a, b) || !PrefixLessThan(b, c) || PrefixLessThan(c, a) {
		t.Error("ordering wrong")
	}
}

func TestFormatCIDRList(t *testing.T) {
	got := FormatCIDRList([]netip.Prefix{MustPrefix("10.0.0.0/8"), MustPrefix("192.168.0.0/16")})
	if got != "10.0.0.0/8 192.168.0.0/16" {
		t.Errorf("got %q", got)
	}
}
