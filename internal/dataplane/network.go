package dataplane

import (
	"fmt"
	"net/netip"
	"strings"
)

// Node is one forwarding element: its addresses and its FIB.
type Node struct {
	Hostname string
	// Addrs maps every local address to the owning interface name.
	Addrs map[netip.Addr]string
	FIB   *FIB
}

// NewNode returns an empty node.
func NewNode(hostname string) *Node {
	return &Node{Hostname: hostname, Addrs: map[netip.Addr]string{}, FIB: NewFIB()}
}

// AddAddr registers a local address.
func (n *Node) AddAddr(a netip.Addr, iface string) { n.Addrs[a] = iface }

// IsLocal reports whether addr terminates at this node.
func (n *Node) IsLocal(addr netip.Addr) bool { _, ok := n.Addrs[addr]; return ok }

// Network is the emulated forwarding plane: all nodes plus the global
// address ownership map (which models L2 delivery on shared subnets).
type Network struct {
	nodes map[string]*Node
	owner map[netip.Addr]string
}

// NewNetwork returns an empty plane.
func NewNetwork() *Network {
	return &Network{nodes: map[string]*Node{}, owner: map[netip.Addr]string{}}
}

// AddNode registers a node and indexes its addresses.
func (net *Network) AddNode(n *Node) error {
	if _, dup := net.nodes[n.Hostname]; dup {
		return fmt.Errorf("dataplane: duplicate node %q", n.Hostname)
	}
	net.nodes[n.Hostname] = n
	for a := range n.Addrs {
		if prev, dup := net.owner[a]; dup {
			return fmt.Errorf("dataplane: address %v on both %s and %s", a, prev, n.Hostname)
		}
		net.owner[a] = n.Hostname
	}
	return nil
}

// Node returns a registered node.
func (net *Network) Node(hostname string) (*Node, bool) {
	n, ok := net.nodes[hostname]
	return n, ok
}

// Owner returns the node owning an address.
func (net *Network) Owner(addr netip.Addr) (string, bool) {
	h, ok := net.owner[addr]
	return h, ok
}

// maxResolveDepth bounds recursive next-hop resolution (BGP routes whose
// next hop is reached via an IGP route).
const maxResolveDepth = 4

// resolveNextHop returns the immediate neighbour address a packet to dst
// leaves towards, resolving recursive routes.
func (net *Network) resolveNextHop(n *Node, dst netip.Addr, depth int) (netip.Addr, error) {
	if depth > maxResolveDepth {
		return netip.Addr{}, fmt.Errorf("dataplane: %s: next-hop recursion too deep for %v", n.Hostname, dst)
	}
	e, ok := n.FIB.Lookup(dst)
	if !ok {
		return netip.Addr{}, fmt.Errorf("dataplane: %s: no route to %v", n.Hostname, dst)
	}
	if e.Connected {
		// Direct delivery on the attached subnet.
		return dst, nil
	}
	if !e.NextHop.IsValid() {
		return netip.Addr{}, fmt.Errorf("dataplane: %s: route %v has no next hop", n.Hostname, e.Prefix)
	}
	// If the next hop is itself directly reachable we are done; otherwise
	// recurse (e.g. BGP next hop via IGP).
	if nhEntry, ok := n.FIB.Lookup(e.NextHop); ok && nhEntry.Connected {
		return e.NextHop, nil
	}
	return net.resolveNextHop(n, e.NextHop, depth+1)
}

// Hop is one traceroute step.
type Hop struct {
	Addr netip.Addr
	Node string
}

// TraceResult is the outcome of a traceroute.
type TraceResult struct {
	Src, Dst netip.Addr
	Hops     []Hop
	Reached  bool
	// Reason describes why the trace stopped when Reached is false
	// ("ttl exceeded", "no route at <n>", "loop detected").
	Reason string
}

// Forward delivers a probe from srcHost to dst, returning each hop's
// responding address (the address the probe arrived on), like real
// traceroute output.
func (net *Network) Forward(srcHost string, dst netip.Addr, maxTTL int) TraceResult {
	if maxTTL <= 0 {
		maxTTL = 30
	}
	res := TraceResult{Dst: dst}
	cur, ok := net.nodes[srcHost]
	if !ok {
		res.Reason = fmt.Sprintf("unknown source host %q", srcHost)
		return res
	}
	if cur.IsLocal(dst) {
		res.Reached = true
		return res
	}
	visited := map[string]bool{}
	for ttl := 0; ttl < maxTTL; ttl++ {
		if visited[cur.Hostname] {
			res.Reason = fmt.Sprintf("loop detected at %s", cur.Hostname)
			return res
		}
		visited[cur.Hostname] = true
		nh, err := net.resolveNextHop(cur, dst, 0)
		if err != nil {
			res.Reason = err.Error()
			return res
		}
		nextHost, ok := net.owner[nh]
		if !ok {
			res.Reason = fmt.Sprintf("next hop %v owned by no device", nh)
			return res
		}
		next := net.nodes[nextHost]
		if next.IsLocal(dst) {
			// Final hop: the destination answers with the probed address.
			res.Hops = append(res.Hops, Hop{Addr: dst, Node: nextHost})
			res.Reached = true
			return res
		}
		// Transit hop: the probe arrives on nh; that address answers the
		// TTL-exceeded.
		res.Hops = append(res.Hops, Hop{Addr: nh, Node: nextHost})
		cur = next
	}
	res.Reason = "ttl exceeded"
	return res
}

// Ping reports whether dst is reachable from srcHost.
func (net *Network) Ping(srcHost string, dst netip.Addr) bool {
	return net.Forward(srcHost, dst, 30).Reached
}

// TracerouteText renders a TraceResult in the format of the Linux
// traceroute the paper's measurement client parses (§6.1):
//
//	1  192.168.1.34  0 ms
//	2  192.168.1.25  0 ms
func (res TraceResult) TracerouteText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "traceroute to %v, 30 hops max\n", res.Dst)
	for i, h := range res.Hops {
		fmt.Fprintf(&sb, "%2d  %s  0 ms\n", i+1, h.Addr)
	}
	if !res.Reached {
		fmt.Fprintf(&sb, "%2d  * * *\n", len(res.Hops)+1)
	}
	return sb.String()
}

// NodeNames returns the hostnames of all registered nodes (unordered).
func (net *Network) NodeNames() []string {
	out := make([]string, 0, len(net.nodes))
	for h := range net.nodes {
		out = append(out, h)
	}
	return out
}
