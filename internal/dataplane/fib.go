// Package dataplane implements the emulated forwarding plane: per-device
// FIBs with longest-prefix-match lookup (a binary trie), hop-by-hop
// forwarding with TTL handling, and the ping/traceroute primitives the
// measurement system drives (paper §5.7). Traceroute over this plane
// behaves like the real tool: each hop answers with the address of the
// interface the probe arrived on, and the result is parsed from text — the
// emulated network is observed, not introspected.
package dataplane

import (
	"fmt"
	"net/netip"
)

// FIBEntry is one forwarding entry.
type FIBEntry struct {
	Prefix  netip.Prefix
	NextHop netip.Addr // zero for connected subnets
	OutIf   string
	// Connected marks directly attached subnets (delivery without a next
	// hop).
	Connected bool
}

// FIB is a longest-prefix-match forwarding table over IPv4, implemented as
// a binary trie.
type FIB struct {
	root *fibNode
	size int
}

type fibNode struct {
	children [2]*fibNode
	entry    *FIBEntry
}

// NewFIB returns an empty table.
func NewFIB() *FIB { return &FIB{root: &fibNode{}} }

// Insert adds or replaces the entry for its prefix.
func (f *FIB) Insert(e FIBEntry) error {
	if !e.Prefix.Addr().Is4() {
		return fmt.Errorf("dataplane: FIB is IPv4-only, got %v", e.Prefix)
	}
	p := e.Prefix.Masked()
	bits := addrBits(p.Addr())
	cur := f.root
	for i := 0; i < p.Bits(); i++ {
		b := bit(bits, i)
		if cur.children[b] == nil {
			cur.children[b] = &fibNode{}
		}
		cur = cur.children[b]
	}
	if cur.entry == nil {
		f.size++
	}
	e.Prefix = p
	cur.entry = &e
	return nil
}

// Lookup returns the longest-prefix-match entry for addr.
func (f *FIB) Lookup(addr netip.Addr) (FIBEntry, bool) {
	if !addr.Is4() {
		return FIBEntry{}, false
	}
	bits := addrBits(addr)
	cur := f.root
	var best *FIBEntry
	for i := 0; ; i++ {
		if cur.entry != nil {
			best = cur.entry
		}
		if i >= 32 {
			break
		}
		next := cur.children[bit(bits, i)]
		if next == nil {
			break
		}
		cur = next
	}
	if best == nil {
		return FIBEntry{}, false
	}
	return *best, true
}

// Len returns the number of installed prefixes.
func (f *FIB) Len() int { return f.size }

// Entries returns all entries in prefix order (depth-first, zeros first).
func (f *FIB) Entries() []FIBEntry {
	var out []FIBEntry
	var walk func(n *fibNode)
	walk = func(n *fibNode) {
		if n == nil {
			return
		}
		if n.entry != nil {
			out = append(out, *n.entry)
		}
		walk(n.children[0])
		walk(n.children[1])
	}
	walk(f.root)
	return out
}

func addrBits(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func bit(v uint32, i int) int {
	return int((v >> (31 - i)) & 1)
}
