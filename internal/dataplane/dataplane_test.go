package dataplane

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func TestFIBLongestPrefixMatch(t *testing.T) {
	f := NewFIB()
	must := func(e FIBEntry) {
		t.Helper()
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	must(FIBEntry{Prefix: pfx("10.0.0.0/8"), NextHop: addr("192.168.0.1")})
	must(FIBEntry{Prefix: pfx("10.1.0.0/16"), NextHop: addr("192.168.0.2")})
	must(FIBEntry{Prefix: pfx("10.1.1.0/24"), NextHop: addr("192.168.0.3")})
	must(FIBEntry{Prefix: pfx("0.0.0.0/0"), NextHop: addr("192.168.0.9")})

	cases := []struct {
		dst  string
		want string
	}{
		{"10.1.1.5", "192.168.0.3"},
		{"10.1.2.5", "192.168.0.2"},
		{"10.2.0.1", "192.168.0.1"},
		{"172.16.0.1", "192.168.0.9"}, // default
	}
	for _, c := range cases {
		e, ok := f.Lookup(addr(c.dst))
		if !ok || e.NextHop != addr(c.want) {
			t.Errorf("lookup(%s) = %v, %v; want %s", c.dst, e.NextHop, ok, c.want)
		}
	}
	if f.Len() != 4 {
		t.Errorf("len = %d", f.Len())
	}
}

func TestFIBNoMatch(t *testing.T) {
	f := NewFIB()
	if err := f.Insert(FIBEntry{Prefix: pfx("10.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Lookup(addr("11.0.0.1")); ok {
		t.Error("spurious match")
	}
	if _, ok := f.Lookup(netip.MustParseAddr("::1")); ok {
		t.Error("IPv6 matched in IPv4 FIB")
	}
	if err := f.Insert(FIBEntry{Prefix: netip.MustParsePrefix("2001:db8::/32")}); err == nil {
		t.Error("IPv6 insert accepted")
	}
}

func TestFIBReplace(t *testing.T) {
	f := NewFIB()
	_ = f.Insert(FIBEntry{Prefix: pfx("10.0.0.0/8"), NextHop: addr("1.1.1.1")})
	_ = f.Insert(FIBEntry{Prefix: pfx("10.0.0.0/8"), NextHop: addr("2.2.2.2")})
	if f.Len() != 1 {
		t.Errorf("replace duplicated: len=%d", f.Len())
	}
	e, _ := f.Lookup(addr("10.0.0.1"))
	if e.NextHop != addr("2.2.2.2") {
		t.Error("replace did not take effect")
	}
}

func TestFIBHostRoute(t *testing.T) {
	f := NewFIB()
	_ = f.Insert(FIBEntry{Prefix: pfx("10.0.0.1/32"), NextHop: addr("9.9.9.9")})
	if e, ok := f.Lookup(addr("10.0.0.1")); !ok || e.NextHop != addr("9.9.9.9") {
		t.Error("/32 lookup failed")
	}
	if _, ok := f.Lookup(addr("10.0.0.2")); ok {
		t.Error("/32 matched wrong host")
	}
}

// Property: LPM returns the most specific of the inserted prefixes
// containing the address.
func TestPropertyFIBMostSpecific(t *testing.T) {
	f := NewFIB()
	prefixes := []netip.Prefix{
		pfx("0.0.0.0/0"), pfx("10.0.0.0/8"), pfx("10.128.0.0/9"),
		pfx("10.128.0.0/16"), pfx("10.128.64.0/24"),
	}
	for i, p := range prefixes {
		_ = f.Insert(FIBEntry{Prefix: p, OutIf: string(rune('a' + i))})
	}
	check := func(b0, b1, b2, b3 uint8) bool {
		a := netip.AddrFrom4([4]byte{b0, b1, b2, b3})
		e, ok := f.Lookup(a)
		if !ok {
			return false
		}
		var want netip.Prefix
		found := false
		for _, p := range prefixes {
			if p.Contains(a) && (!found || p.Bits() > want.Bits()) {
				want, found = p, true
			}
		}
		return found && e.Prefix == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// lineNet builds a -- b -- c with /30 links and static FIBs.
func lineNet(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork()
	a := NewNode("a")
	a.AddAddr(addr("10.0.0.1"), "eth0")
	b := NewNode("b")
	b.AddAddr(addr("10.0.0.2"), "eth0")
	b.AddAddr(addr("10.0.0.5"), "eth1")
	c := NewNode("c")
	c.AddAddr(addr("10.0.0.6"), "eth0")
	c.AddAddr(addr("10.255.0.3"), "lo")

	mustInsert := func(n *Node, e FIBEntry) {
		t.Helper()
		if err := n.FIB.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Connected routes.
	mustInsert(a, FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true, OutIf: "eth0"})
	mustInsert(b, FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true, OutIf: "eth0"})
	mustInsert(b, FIBEntry{Prefix: pfx("10.0.0.4/30"), Connected: true, OutIf: "eth1"})
	mustInsert(c, FIBEntry{Prefix: pfx("10.0.0.4/30"), Connected: true, OutIf: "eth0"})
	// a's routes to the far side.
	mustInsert(a, FIBEntry{Prefix: pfx("10.0.0.4/30"), NextHop: addr("10.0.0.2"), OutIf: "eth0"})
	mustInsert(a, FIBEntry{Prefix: pfx("10.255.0.3/32"), NextHop: addr("10.0.0.2"), OutIf: "eth0"})
	// b's route to c's loopback.
	mustInsert(b, FIBEntry{Prefix: pfx("10.255.0.3/32"), NextHop: addr("10.0.0.6"), OutIf: "eth1"})
	// c's return routes (unused by forward trace but realistic).
	mustInsert(c, FIBEntry{Prefix: pfx("10.0.0.0/30"), NextHop: addr("10.0.0.5"), OutIf: "eth0"})

	for _, n := range []*Node{a, b, c} {
		if err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestForwardDirect(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("10.0.0.2"), 30)
	if !res.Reached || len(res.Hops) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Hops[0].Node != "b" || res.Hops[0].Addr != addr("10.0.0.2") {
		t.Errorf("hop = %+v", res.Hops[0])
	}
}

func TestForwardMultiHop(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("10.0.0.6"), 30)
	if !res.Reached || len(res.Hops) != 2 {
		t.Fatalf("res = %+v", res)
	}
	// Hop 1 answers with b's incoming address, hop 2 is the destination.
	if res.Hops[0].Addr != addr("10.0.0.2") || res.Hops[1].Addr != addr("10.0.0.6") {
		t.Errorf("hops = %+v", res.Hops)
	}
}

func TestForwardToLoopback(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("10.255.0.3"), 30)
	if !res.Reached {
		t.Fatalf("res = %+v", res)
	}
	last := res.Hops[len(res.Hops)-1]
	if last.Node != "c" || last.Addr != addr("10.255.0.3") {
		t.Errorf("last hop = %+v", last)
	}
}

func TestForwardNoRoute(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("203.0.113.1"), 30)
	if res.Reached {
		t.Fatal("unroutable destination reached")
	}
	if !strings.Contains(res.Reason, "no route") {
		t.Errorf("reason = %q", res.Reason)
	}
	res = net.Forward("ghost", addr("10.0.0.1"), 30)
	if res.Reached || !strings.Contains(res.Reason, "unknown source") {
		t.Errorf("res = %+v", res)
	}
}

func TestForwardLoopDetection(t *testing.T) {
	net := NewNetwork()
	a := NewNode("a")
	a.AddAddr(addr("10.0.0.1"), "eth0")
	b := NewNode("b")
	b.AddAddr(addr("10.0.0.2"), "eth0")
	_ = a.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true})
	_ = b.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true})
	// Both point the destination at each other.
	_ = a.FIB.Insert(FIBEntry{Prefix: pfx("203.0.113.0/24"), NextHop: addr("10.0.0.2")})
	_ = b.FIB.Insert(FIBEntry{Prefix: pfx("203.0.113.0/24"), NextHop: addr("10.0.0.1")})
	_ = net.AddNode(a)
	_ = net.AddNode(b)
	res := net.Forward("a", addr("203.0.113.1"), 30)
	if res.Reached {
		t.Fatal("loop reached destination")
	}
	if !strings.Contains(res.Reason, "loop") && !strings.Contains(res.Reason, "owned by no device") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestRecursiveNextHop(t *testing.T) {
	// a's BGP route points at a loopback reachable via an IGP route.
	net := lineNet(t)
	a, _ := net.Node("a")
	_ = a.FIB.Insert(FIBEntry{Prefix: pfx("203.0.113.0/24"), NextHop: addr("10.255.0.3")})
	// c owns 203.0.113.1? No — but c owns the loopback; the probe should
	// march toward c and fail there (c has no route), proving recursion
	// moved the packet.
	res := net.Forward("a", addr("203.0.113.1"), 30)
	if res.Reached {
		t.Fatal("should not reach")
	}
	if len(res.Hops) != 1 || res.Hops[0].Node != "b" {
		t.Errorf("recursion did not forward via b: %+v", res)
	}
	if !strings.Contains(res.Reason, "b: no route") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestPing(t *testing.T) {
	net := lineNet(t)
	if !net.Ping("a", addr("10.0.0.6")) {
		t.Error("ping should succeed")
	}
	if net.Ping("a", addr("203.0.113.1")) {
		t.Error("ping to unroutable succeeded")
	}
}

func TestTracerouteText(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("10.0.0.6"), 30)
	text := res.TracerouteText()
	if !strings.Contains(text, " 1  10.0.0.2  0 ms") || !strings.Contains(text, " 2  10.0.0.6  0 ms") {
		t.Errorf("text = %q", text)
	}
	bad := net.Forward("a", addr("203.0.113.1"), 30)
	if !strings.Contains(bad.TracerouteText(), "* * *") {
		t.Error("unreachable trace missing stars")
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	net := NewNetwork()
	a := NewNode("a")
	a.AddAddr(addr("10.0.0.1"), "eth0")
	b := NewNode("b")
	b.AddAddr(addr("10.0.0.1"), "eth0")
	if err := net.AddNode(a); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(b); err == nil {
		t.Error("duplicate address across nodes accepted")
	}
	if err := net.AddNode(a); err == nil {
		t.Error("duplicate hostname accepted")
	}
}

func TestFIBEntries(t *testing.T) {
	f := NewFIB()
	_ = f.Insert(FIBEntry{Prefix: pfx("10.0.0.0/8"), OutIf: "a"})
	_ = f.Insert(FIBEntry{Prefix: pfx("10.1.0.0/16"), OutIf: "b"})
	_ = f.Insert(FIBEntry{Prefix: pfx("192.168.0.0/16"), OutIf: "c"})
	entries := f.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Depth-first, zeros-first: 10/8 before 10.1/16 before 192.168/16.
	if entries[0].OutIf != "a" || entries[1].OutIf != "b" || entries[2].OutIf != "c" {
		t.Errorf("order = %v", entries)
	}
	if NewFIB().Entries() != nil {
		t.Error("empty FIB entries non-nil")
	}
}

func TestNetworkOwnerAndNames(t *testing.T) {
	net := lineNet(t)
	if host, ok := net.Owner(addr("10.0.0.5")); !ok || host != "b" {
		t.Errorf("owner = %q %v", host, ok)
	}
	if _, ok := net.Owner(addr("203.0.113.1")); ok {
		t.Error("phantom owner")
	}
	names := net.NodeNames()
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
}

func TestForwardDestinationIsSource(t *testing.T) {
	net := lineNet(t)
	res := net.Forward("a", addr("10.0.0.1"), 30)
	if !res.Reached || len(res.Hops) != 0 {
		t.Errorf("self-destination = %+v", res)
	}
}

func TestForwardTTLExceeded(t *testing.T) {
	// A long chain with maxTTL 2.
	net := NewNetwork()
	mk := func(name string, addrs ...string) *Node {
		n := NewNode(name)
		for i, a := range addrs {
			n.AddAddr(addr(a), "eth"+string(rune('0'+i)))
		}
		return n
	}
	a := mk("a", "10.0.0.1")
	b := mk("b", "10.0.0.2", "10.0.0.5")
	c := mk("c", "10.0.0.6", "10.0.0.9")
	d := mk("d", "10.0.0.10")
	_ = a.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true})
	_ = a.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.8/30"), NextHop: addr("10.0.0.2")})
	_ = b.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true})
	_ = b.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.4/30"), Connected: true})
	_ = b.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.8/30"), NextHop: addr("10.0.0.6")})
	_ = c.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.4/30"), Connected: true})
	_ = c.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.8/30"), Connected: true})
	_ = d.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.8/30"), Connected: true})
	for _, n := range []*Node{a, b, c, d} {
		if err := net.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	res := net.Forward("a", addr("10.0.0.10"), 2)
	if res.Reached {
		t.Fatal("reached despite TTL 2")
	}
	if res.Reason != "ttl exceeded" {
		t.Errorf("reason = %q", res.Reason)
	}
	// With enough TTL it arrives.
	res = net.Forward("a", addr("10.0.0.10"), 5)
	if !res.Reached || len(res.Hops) != 3 {
		t.Errorf("res = %+v", res)
	}
}

func TestResolveDepthLimit(t *testing.T) {
	// Chain of recursive next hops deeper than maxResolveDepth.
	net := NewNetwork()
	n := NewNode("a")
	n.AddAddr(addr("10.0.0.1"), "eth0")
	_ = n.FIB.Insert(FIBEntry{Prefix: pfx("10.0.0.0/30"), Connected: true})
	// 1.0.0.0/8 -> 2.0.0.1 -> 3.0.0.1 -> ... each via another route.
	for i := 1; i <= 7; i++ {
		_ = n.FIB.Insert(FIBEntry{
			Prefix:  pfx(fmt.Sprintf("%d.0.0.0/8", i)),
			NextHop: addr(fmt.Sprintf("%d.0.0.1", i+1)),
		})
	}
	_ = net.AddNode(n)
	res := net.Forward("a", addr("1.0.0.9"), 30)
	if res.Reached {
		t.Fatal("unresolvable recursion reached")
	}
	if !strings.Contains(res.Reason, "recursion too deep") {
		t.Errorf("reason = %q", res.Reason)
	}
}
