package graph

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddNodeAndAttrs(t *testing.T) {
	g := New()
	n := g.AddNode("r1", Attrs{"asn": 1})
	if !g.HasNode("r1") || g.NumNodes() != 1 {
		t.Fatalf("node not added")
	}
	if n.Get("asn") != 1 {
		t.Errorf("attr asn = %v, want 1", n.Get("asn"))
	}
	// Re-adding merges attributes.
	g.AddNode("r1", Attrs{"device_type": "router"})
	if n.Get("device_type") != "router" || n.Get("asn") != 1 {
		t.Errorf("merge failed: %v", n.Attrs())
	}
	if g.NumNodes() != 1 {
		t.Errorf("duplicate add created node")
	}
}

func TestAddEdgeImplicitNodes(t *testing.T) {
	g := New()
	e := g.AddEdge("a", "b", Attrs{"weight": 10})
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Errorf("undirected edge not visible in both directions")
	}
	if g.Edge("b", "a") != e {
		t.Errorf("reverse lookup returned a different edge")
	}
	// Re-add merges attrs, does not duplicate.
	g.AddEdge("b", "a", Attrs{"area": 0})
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge created")
	}
	if e.Get("area") != 0 || e.Get("weight") != 10 {
		t.Errorf("attrs not merged: %v", e.Attrs())
	}
}

func TestDirectedEdges(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") {
		t.Fatal("missing forward edge")
	}
	if g.HasEdge("b", "a") {
		t.Fatal("directed graph has spurious reverse edge")
	}
	g.AddEdge("b", "a")
	if g.NumEdges() != 2 {
		t.Errorf("want 2 directed edges, got %d", g.NumEdges())
	}
	if got := g.Neighbors("a"); !reflect.DeepEqual(got, []ID{"b"}) {
		t.Errorf("successors of a = %v", got)
	}
	if got := len(g.InEdgesOf("a")); got != 1 {
		t.Errorf("in-edges of a = %d, want 1", got)
	}
}

func TestRemoveNodeCascades(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.RemoveNode("b")
	if g.HasNode("b") {
		t.Fatal("node still present")
	}
	if g.NumEdges() != 1 || !g.HasEdge("a", "c") {
		t.Errorf("incident edges not removed: %d edges", g.NumEdges())
	}
	if got := g.Neighbors("a"); !reflect.DeepEqual(got, []ID{"c"}) {
		t.Errorf("neighbors after removal = %v", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.RemoveEdge("b", "a") // reverse orientation must also work
	if g.NumEdges() != 0 || g.HasEdge("a", "b") {
		t.Fatal("edge not removed")
	}
	g.RemoveEdge("a", "b") // no-op on absent
}

func TestDeterministicOrder(t *testing.T) {
	build := func() *Graph {
		g := New()
		for _, id := range []ID{"r5", "r1", "r3", "r2", "r4"} {
			g.AddNode(id)
		}
		g.AddEdge("r5", "r1")
		g.AddEdge("r3", "r2")
		g.AddEdge("r1", "r4")
		return g
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.NodeIDs(), b.NodeIDs()) {
		t.Errorf("node order differs across identical builds")
	}
	want := []ID{"r5", "r1", "r3", "r2", "r4"}
	if !reflect.DeepEqual(a.NodeIDs(), want) {
		t.Errorf("node order = %v, want insertion order %v", a.NodeIDs(), want)
	}
	es := a.Edges()
	if es[0].Src() != "r5" || es[1].Src() != "r3" || es[2].Src() != "r1" {
		t.Errorf("edge order not insertion order")
	}
	if !reflect.DeepEqual(a.SortedNodeIDs(), []ID{"r1", "r2", "r3", "r4", "r5"}) {
		t.Errorf("sorted ids wrong: %v", a.SortedNodeIDs())
	}
}

func TestCopyIsDeep(t *testing.T) {
	g := New()
	g.Set("infra", "10.0.0.0/8")
	g.AddEdge("a", "b", Attrs{"w": 1})
	c := g.Copy()
	c.AddNode("z")
	c.Node("a").Set("w", 99)
	c.Edge("a", "b").Set("w", 99)
	if g.HasNode("z") {
		t.Error("copy shares node storage")
	}
	if g.Node("a").Has("w") {
		t.Error("copy shares node attrs")
	}
	if g.Edge("a", "b").Get("w") != 1 {
		t.Error("copy shares edge attrs")
	}
	if c.Get("infra") != "10.0.0.0/8" {
		t.Error("graph attrs not copied")
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	s := g.Subgraph([]ID{"a", "b"})
	if s.NumNodes() != 2 || s.NumEdges() != 1 || !s.HasEdge("a", "b") {
		t.Fatalf("subgraph wrong: %v", s)
	}
}

func TestSelfLoopDegree(t *testing.T) {
	g := New()
	g.AddEdge("a", "a")
	if d := g.Degree("a"); d != 2 {
		t.Errorf("self-loop degree = %d, want 2 (NetworkX convention)", d)
	}
}

func TestEdgeOther(t *testing.T) {
	g := New()
	e := g.AddEdge("a", "b")
	if e.Other("a") != "b" || e.Other("b") != "a" {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint should panic")
		}
	}()
	e.Other("z")
}

// Property: adding N distinct nodes then M distinct edges gives exactly
// those counts, and every edge is visible from both endpoints (undirected).
func TestPropertyEdgeSymmetry(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for _, p := range pairs {
			u := ID(rune('a' + p[0]%26))
			v := ID(rune('a' + p[1]%26))
			g.AddEdge(u, v)
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.Src(), e.Dst()) || !g.HasEdge(e.Dst(), e.Src()) {
				return false
			}
		}
		// Sum of degrees equals 2 * #edges.
		sum := 0
		for _, n := range g.Nodes() {
			sum += g.Degree(n.ID())
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Copy is observationally identical.
func TestPropertyCopyEqual(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := New()
		for _, p := range pairs {
			g.AddEdge(ID(rune('a'+p[0]%16)), ID(rune('a'+p[1]%16)))
		}
		c := g.Copy()
		if !reflect.DeepEqual(g.NodeIDs(), c.NodeIDs()) {
			return false
		}
		if g.NumEdges() != c.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !c.HasEdge(e.Src(), e.Dst()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBFSOrder(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "c")
	g.AddEdge("b", "d")
	got := g.BFSOrder("a")
	if !reflect.DeepEqual(got, []ID{"a", "b", "c", "d"}) {
		t.Errorf("BFS order = %v", got)
	}
	if g.BFSOrder("zz") != nil {
		t.Error("BFS from absent node should be nil")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("c", "d")
	g.AddNode("e")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge("b", "c")
	g.AddEdge("d", "e")
	if !g.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestWeaklyConnectedDirected(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b")
	g.AddEdge("c", "b") // weakly connects c
	if !g.IsConnected() {
		t.Error("weak connectivity should ignore direction")
	}
}

func TestDijkstraAndShortestPath(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", Attrs{"cost": 1})
	g.AddEdge("b", "c", Attrs{"cost": 1})
	g.AddEdge("a", "c", Attrs{"cost": 5})
	path, d, err := g.ShortestPath("a", "c", AttrWeight("cost", 1))
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 || !reflect.DeepEqual(path, []ID{"a", "b", "c"}) {
		t.Errorf("path=%v dist=%v", path, d)
	}
	// Raising the via-b cost flips the choice.
	g.Edge("a", "b").Set("cost", 10)
	path, d, _ = g.ShortestPath("a", "c", AttrWeight("cost", 1))
	if d != 5 || !reflect.DeepEqual(path, []ID{"a", "c"}) {
		t.Errorf("after reweight path=%v dist=%v", path, d)
	}
	if _, _, err := g.ShortestPath("a", "zz", UnitWeight); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestDijkstraDirected(t *testing.T) {
	g := NewDirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	if _, _, err := g.ShortestPath("a", "c", UnitWeight); err != nil {
		t.Fatalf("a->c should be reachable: %v", err)
	}
	dist, _ := g.Dijkstra("c", UnitWeight)
	if dist["b"] != 2 {
		t.Errorf("c->b dist = %v, want 2 (respecting direction)", dist["b"])
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := New()
	// star: hub connected to 3 leaves
	g.AddEdge("hub", "l1")
	g.AddEdge("hub", "l2")
	g.AddEdge("hub", "l3")
	c := g.DegreeCentrality()
	if c["hub"] != 1.0 {
		t.Errorf("hub centrality = %v, want 1", c["hub"])
	}
	if math.Abs(c["l1"]-1.0/3.0) > 1e-9 {
		t.Errorf("leaf centrality = %v", c["l1"])
	}
	top := TopKByCentrality(c, 1)
	if len(top) != 1 || top[0] != "hub" {
		t.Errorf("top-1 = %v", top)
	}
	// Deterministic ties: l1 < l2 < l3.
	top3 := TopKByCentrality(c, 3)
	if !reflect.DeepEqual(top3, []ID{"hub", "l1", "l2"}) {
		t.Errorf("top-3 = %v", top3)
	}
	if got := TopKByCentrality(c, 100); len(got) != 4 {
		t.Errorf("overlong k should clamp, got %d", len(got))
	}
}

func TestClosenessCentrality(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	c := g.ClosenessCentrality()
	if c["b"] <= c["a"] {
		t.Errorf("middle node should have highest closeness: %v", c)
	}
}

func TestDiameter(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	if d := g.Diameter(); d != 3 {
		t.Errorf("path diameter = %v, want 3", d)
	}
	g.AddNode("island")
	if d := g.Diameter(); !math.IsInf(d, 1) {
		t.Errorf("disconnected diameter = %v, want +Inf", d)
	}
}

func TestToFloat(t *testing.T) {
	cases := []struct {
		in   any
		want float64
		ok   bool
	}{
		{1, 1, true}, {int64(2), 2, true}, {3.5, 3.5, true},
		{float32(4), 4, true}, {uint(5), 5, true}, {"x", 0, false}, {nil, 0, false},
	}
	for _, c := range cases {
		got, ok := ToFloat(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ToFloat(%v) = %v,%v", c.in, got, ok)
		}
	}
}

func TestBetweennessCentrality(t *testing.T) {
	// Path a-b-c-d-e: middle node c has the highest betweenness.
	g := New()
	for _, e := range [][2]ID{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}} {
		g.AddEdge(e[0], e[1])
	}
	cb := g.BetweennessCentrality()
	if cb["c"] <= cb["b"] || cb["b"] <= cb["a"] {
		t.Errorf("ordering wrong: %v", cb)
	}
	if cb["a"] != 0 || cb["e"] != 0 {
		t.Errorf("endpoints should be 0: %v", cb)
	}
	// Exact value for the path graph's centre (normalised):
	// c lies on shortest paths of pairs {a,b}x{d,e} -> raw 2*4=8 halved by
	// pair double-count -> 4; normalised by (n-1)(n-2)/... = 8/12.
	if math.Abs(cb["c"]-8.0/12.0) > 1e-9 {
		t.Errorf("cb[c] = %v, want %v", cb["c"], 8.0/12.0)
	}
	// Star: hub carries everything.
	star := New()
	for _, l := range []ID{"l1", "l2", "l3", "l4"} {
		star.AddEdge("hub", l)
	}
	cbs := star.BetweennessCentrality()
	if cbs["hub"] != 1.0 {
		t.Errorf("hub betweenness = %v, want 1", cbs["hub"])
	}
	for _, l := range []ID{"l1", "l2", "l3", "l4"} {
		if cbs[l] != 0 {
			t.Errorf("leaf %s = %v", l, cbs[l])
		}
	}
	// Tiny graphs don't normalise (n <= 2).
	tiny := New()
	tiny.AddEdge("x", "y")
	_ = tiny.BetweennessCentrality()
}
