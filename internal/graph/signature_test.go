package graph

import (
	"fmt"
	"sort"
	"testing"
)

// recordingHasher captures the token stream so tests can compare
// signatures without depending on the cache package.
type recordingHasher struct{ tokens []string }

func (r *recordingHasher) Str(ss ...string) { r.tokens = append(r.tokens, ss...) }
func (r *recordingHasher) Bool(b bool)      { r.tokens = append(r.tokens, fmt.Sprint(b)) }
func (r *recordingHasher) Attrs(a Attrs) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.tokens = append(r.tokens, k, fmt.Sprint(a[k]))
	}
	r.tokens = append(r.tokens, "|")
}

func signatureOf(g *Graph, id ID) string {
	h := &recordingHasher{}
	WriteNodeSignature(h, g, id)
	return fmt.Sprint(h.tokens)
}

func buildTriangle() *Graph {
	g := New()
	g.AddNode("a", Attrs{"asn": 1})
	g.AddNode("b", Attrs{"asn": 1})
	g.AddNode("c", Attrs{"asn": 2})
	g.AddEdge("a", "b", Attrs{"w": 1})
	g.AddEdge("b", "c", Attrs{"w": 2})
	g.AddEdge("c", "a", Attrs{"w": 3})
	return g
}

func TestNodeSignatureStableAcrossRebuilds(t *testing.T) {
	if signatureOf(buildTriangle(), "a") != signatureOf(buildTriangle(), "a") {
		t.Error("identical graphs give different signatures")
	}
}

func TestNodeSignatureSensitivity(t *testing.T) {
	base := signatureOf(buildTriangle(), "a")

	nodeAttr := buildTriangle()
	nodeAttr.Node("a").Set("asn", 9)
	if signatureOf(nodeAttr, "a") == base {
		t.Error("own-attribute change not reflected")
	}

	edgeAttr := buildTriangle()
	edgeAttr.Edge("a", "b").Set("w", 99)
	if signatureOf(edgeAttr, "a") == base {
		t.Error("incident-edge attribute change not reflected")
	}

	edgeGone := buildTriangle()
	edgeGone.RemoveEdge("c", "a")
	if signatureOf(edgeGone, "a") == base {
		t.Error("incident-edge removal not reflected")
	}

	// A change entirely outside the one-hop slice must NOT move the
	// signature — that's the property that makes invalidation selective.
	farAttr := buildTriangle()
	farAttr.Edge("b", "c").Set("w", 99)
	farAttr.Node("b").Set("asn", 7)
	if signatureOf(farAttr, "a") != base {
		t.Error("non-incident change invalidated the signature")
	}
}

func TestNodeSignatureAbsentNode(t *testing.T) {
	g := buildTriangle()
	if signatureOf(g, "missing") == signatureOf(g, "a") {
		t.Error("absent node collides with present node")
	}
	if signatureOf(g, "missing") != signatureOf(New(), "missing") {
		t.Error("absent-node signature not canonical")
	}
}

func TestNodeSignatureDirectedCoversInEdges(t *testing.T) {
	mk := func(w int) *Graph {
		g := NewDirected()
		g.AddEdge("up", "me", Attrs{"w": w})
		g.AddEdge("me", "down", Attrs{"w": 1})
		return g
	}
	if signatureOf(mk(1), "me") == signatureOf(mk(2), "me") {
		t.Error("incoming-edge attribute change not reflected for directed graphs")
	}
}
