package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// BFSOrder returns the nodes reachable from start in breadth-first order.
func (g *Graph) BFSOrder(start ID) []ID {
	if !g.HasNode(start) {
		return nil
	}
	visited := map[ID]bool{start: true}
	queue := []ID{start}
	var out []ID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, nb := range g.Neighbors(cur) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return out
}

// ConnectedComponents returns the connected components of an undirected
// graph (weakly connected components for directed graphs), each as a slice
// of IDs, in deterministic order.
func (g *Graph) ConnectedComponents() [][]ID {
	und := g
	if g.directed {
		und = New()
		for _, id := range g.order {
			und.AddNode(id)
		}
		for _, e := range g.edgeOrder {
			und.AddEdge(e.src, e.dst)
		}
	}
	seen := map[ID]bool{}
	var comps [][]ID
	for _, id := range und.order {
		if seen[id] {
			continue
		}
		comp := und.BFSOrder(id)
		for _, c := range comp {
			seen[c] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether every node is reachable from every other
// (ignoring edge direction).
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// WeightFunc returns the traversal cost of an edge. Costs must be
// non-negative for Dijkstra.
type WeightFunc func(*Edge) float64

// UnitWeight assigns cost 1 to every edge.
func UnitWeight(*Edge) float64 { return 1 }

// AttrWeight returns a WeightFunc reading a numeric attribute, defaulting to
// def when the attribute is absent or non-numeric.
func AttrWeight(key string, def float64) WeightFunc {
	return func(e *Edge) float64 {
		if v, ok := ToFloat(e.Get(key)); ok {
			return v
		}
		return def
	}
}

// ToFloat converts common numeric attribute representations to float64.
func ToFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	}
	return 0, false
}

type pqItem struct {
	id   ID
	dist float64
}

type pq []pqItem

func (p pq) Len() int      { return len(p) }
func (p pq) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].id < p[j].id // deterministic tie-break
}
func (p *pq) Push(x any) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path distances and predecessor
// links from start under w. Unreachable nodes are absent from both maps.
func (g *Graph) Dijkstra(start ID, w WeightFunc) (dist map[ID]float64, prev map[ID]ID) {
	dist = map[ID]float64{}
	prev = map[ID]ID{}
	if !g.HasNode(start) {
		return dist, prev
	}
	dist[start] = 0
	q := &pq{{start, 0}}
	done := map[ID]bool{}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		for _, e := range g.EdgesOf(it.id) {
			nb := e.Other(it.id)
			if g.directed && e.src != it.id {
				continue
			}
			nd := it.dist + w(e)
			if cur, ok := dist[nb]; !ok || nd < cur || (nd == cur && it.id < prev[nb]) {
				dist[nb] = nd
				prev[nb] = it.id
				heap.Push(q, pqItem{nb, nd})
			}
		}
	}
	return dist, prev
}

// ShortestPath returns the minimum-cost path from src to dst under w, or an
// error when dst is unreachable.
func (g *Graph) ShortestPath(src, dst ID, w WeightFunc) ([]ID, float64, error) {
	dist, prev := g.Dijkstra(src, w)
	d, ok := dist[dst]
	if !ok {
		return nil, 0, fmt.Errorf("graph: no path from %q to %q", src, dst)
	}
	var path []ID
	for cur := dst; ; {
		path = append([]ID{cur}, path...)
		if cur == src {
			break
		}
		cur = prev[cur]
	}
	return path, d, nil
}

// DegreeCentrality returns degree/(n-1) per node, as used by the paper's
// automated route-reflector selection (§7.1).
func (g *Graph) DegreeCentrality() map[ID]float64 {
	out := map[ID]float64{}
	n := g.NumNodes()
	if n <= 1 {
		for _, id := range g.order {
			out[id] = 0
		}
		return out
	}
	for _, id := range g.order {
		out[id] = float64(g.Degree(id)) / float64(n-1)
	}
	return out
}

// ClosenessCentrality returns (reachable)/(sum of distances) per node under
// unit weights, normalised by the reachable fraction (Wasserman–Faust).
func (g *Graph) ClosenessCentrality() map[ID]float64 {
	out := map[ID]float64{}
	n := g.NumNodes()
	for _, id := range g.order {
		dist, _ := g.Dijkstra(id, UnitWeight)
		sum := 0.0
		reach := 0
		for other, d := range dist {
			if other == id {
				continue
			}
			sum += d
			reach++
		}
		if sum == 0 || n <= 1 {
			out[id] = 0
			continue
		}
		out[id] = (float64(reach) / sum) * (float64(reach) / float64(n-1))
	}
	return out
}

// BetweennessCentrality computes shortest-path betweenness (Brandes'
// algorithm, unit weights, normalised by 2/((n-1)(n-2)) for undirected
// graphs). An alternative to degree centrality for automated
// route-reflector placement (§7.1's "a centrality algorithm such as ...").
func (g *Graph) BetweennessCentrality() map[ID]float64 {
	cb := map[ID]float64{}
	for _, id := range g.order {
		cb[id] = 0
	}
	for _, s := range g.order {
		// BFS from s, accumulating predecessor lists and path counts.
		var stack []ID
		pred := map[ID][]ID{}
		sigma := map[ID]float64{s: 1}
		dist := map[ID]int{s: 0}
		queue := []ID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if _, seen := dist[w]; !seen {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					pred[w] = append(pred[w], v)
				}
			}
		}
		delta := map[ID]float64{}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range pred[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	// Normalise: undirected accumulation counts each pair twice, so
	// 1/((n-1)(n-2)) yields the conventional [0,1] scale for both kinds.
	n := float64(g.NumNodes())
	if n > 2 {
		norm := 1.0 / ((n - 1) * (n - 2))
		for id := range cb {
			cb[id] *= norm
		}
	}
	return cb
}

// TopKByCentrality returns the k node IDs with the highest scores,
// tie-broken lexically for determinism.
func TopKByCentrality(scores map[ID]float64, k int) []ID {
	ids := make([]ID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	if k < 0 {
		k = 0
	}
	return ids[:k]
}

// Diameter returns the longest shortest-path length (unit weights) in the
// graph, or +Inf when disconnected, or 0 for graphs with fewer than 2 nodes.
func (g *Graph) Diameter() float64 {
	if g.NumNodes() < 2 {
		return 0
	}
	max := 0.0
	for _, id := range g.order {
		dist, _ := g.Dijkstra(id, UnitWeight)
		if len(dist) < g.NumNodes() {
			return math.Inf(1)
		}
		for _, d := range dist {
			if d > max {
				max = d
			}
		}
	}
	return max
}
