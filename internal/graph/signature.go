package graph

// AttrHasher is the token sink used for stable sub-graph hashing. It is
// satisfied by cache.Hasher; declaring the interface here keeps the
// dependency pointing from cache to graph, not the other way around.
type AttrHasher interface {
	Str(ss ...string)
	Bool(b bool)
	Attrs(a Attrs)
}

// WriteNodeSignature writes a stable signature of id's local neighbourhood
// in g: the node's presence and attributes plus every incident edge (both
// directions for directed graphs) with its orientation, far endpoint and
// attributes. Attribute maps are hashed with sorted keys and edges in
// deterministic edge-insertion order, so two graphs that agree on this
// slice produce identical signatures regardless of how they were built up
// elsewhere.
//
// The signature deliberately covers only the one-hop slice: a change two
// hops away must be captured by the caller hashing additional tokens (as
// internal/compile does for collision-domain closures), keeping
// invalidation proportional to real dependencies.
// WriteGraphSignature writes a stable signature of the entire graph: its
// direction and graph-level attributes, then every node (id and attributes)
// in insertion order, then every edge (endpoints and attributes) in
// insertion order. Because insertion order defines the pipeline's iteration
// order everywhere downstream, two graphs with equal signatures are
// interchangeable as compile inputs. One pass over the whole structure is
// far cheaper than the union of per-node signatures, which revisit shared
// edges and neighbourhoods once per node — this is the build-level digest
// the whole-build cache keys on.
func WriteGraphSignature(h AttrHasher, g *Graph) {
	h.Bool(g.directed)
	h.Attrs(g.attrs)
	for _, id := range g.order {
		h.Str("n", string(id))
		h.Attrs(g.nodes[id].attrs)
	}
	for _, e := range g.edgeOrder {
		h.Str("e", string(e.src), string(e.dst))
		h.Attrs(e.attrs)
	}
}

func WriteNodeSignature(h AttrHasher, g *Graph, id ID) {
	h.Str("node", string(id))
	n := g.Node(id)
	if n == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.Attrs(n.Attrs())
	for _, e := range g.EdgesOf(id) {
		h.Str("edge", string(e.Other(id)))
		h.Bool(e.Src() == id)
		h.Attrs(e.Attrs())
	}
	if g.Directed() {
		for _, e := range g.InEdgesOf(id) {
			h.Str("in-edge", string(e.Src()))
			h.Attrs(e.Attrs())
		}
	}
}
