package graph

import (
	"reflect"
	"testing"
)

func TestSplitEdge(t *testing.T) {
	g := New()
	e := g.AddEdge("r1", "r2", Attrs{"speed": 100})
	mid, err := g.Split(e, "cd_r1_r2", Attrs{"device_type": "collision_domain"})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Get("device_type") != "collision_domain" {
		t.Error("mid attrs lost")
	}
	if g.HasEdge("r1", "r2") {
		t.Error("original edge survives split")
	}
	if !g.HasEdge("r1", "cd_r1_r2") || !g.HasEdge("cd_r1_r2", "r2") {
		t.Error("split edges missing")
	}
	if g.Edge("r1", "cd_r1_r2").Get("speed") != 100 {
		t.Error("edge attrs not propagated")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestSplitErrors(t *testing.T) {
	g := New()
	e := g.AddEdge("a", "b")
	g.AddNode("mid")
	if _, err := g.Split(e, "mid", nil); err == nil {
		t.Error("split onto existing node should fail")
	}
	g.RemoveEdge("a", "b")
	if _, err := g.Split(e, "m2", nil); err == nil {
		t.Error("split of removed edge should fail")
	}
}

func TestAggregateSwitches(t *testing.T) {
	// sw1-sw2 switch pair with routers hanging off each: aggregating the
	// switches forms one collision domain attached to all three routers.
	g := New()
	g.AddEdge("r1", "sw1")
	g.AddEdge("r2", "sw1")
	g.AddEdge("sw1", "sw2")
	g.AddEdge("sw2", "r3")
	agg, err := g.Aggregate([]ID{"sw1", "sw2"}, "cd0", Attrs{"device_type": "collision_domain"})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Get("device_type") != "collision_domain" {
		t.Error("agg attrs lost")
	}
	if g.HasNode("sw1") || g.HasNode("sw2") {
		t.Error("aggregated nodes survive")
	}
	for _, r := range []ID{"r1", "r2", "r3"} {
		if !g.HasEdge("cd0", r) {
			t.Errorf("edge cd0-%s missing", r)
		}
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
}

func TestAggregateErrors(t *testing.T) {
	g := New()
	g.AddNode("a")
	g.AddNode("t")
	if _, err := g.Aggregate([]ID{"missing"}, "x", nil); err == nil {
		t.Error("aggregate of absent node should fail")
	}
	if _, err := g.Aggregate([]ID{"a"}, "t", nil); err == nil {
		t.Error("aggregate onto existing outside node should fail")
	}
}

func TestAggregateDirectedPreservesOrientation(t *testing.T) {
	g := NewDirected()
	g.AddEdge("x", "m1") // inbound to the set
	g.AddEdge("m2", "y") // outbound from the set
	if _, err := g.Aggregate([]ID{"m1", "m2"}, "agg", nil); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("x", "agg") {
		t.Error("inbound orientation lost")
	}
	if !g.HasEdge("agg", "y") {
		t.Error("outbound orientation lost")
	}
}

func TestExplodeSwitch(t *testing.T) {
	g := New()
	g.AddEdge("r1", "sw")
	g.AddEdge("r2", "sw")
	g.AddEdge("r3", "sw")
	if err := g.Explode("sw", Attrs{"via": "sw"}); err != nil {
		t.Fatal(err)
	}
	if g.HasNode("sw") {
		t.Error("exploded node survives")
	}
	want := [][2]ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r3"}}
	for _, p := range want {
		e := g.Edge(p[0], p[1])
		if e == nil {
			t.Fatalf("clique edge %v missing", p)
		}
		if e.Get("via") != "sw" {
			t.Error("clique edge attrs missing")
		}
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
	if err := g.Explode("absent", nil); err == nil {
		t.Error("explode of absent node should fail")
	}
}

func TestExplodePreservesExistingEdges(t *testing.T) {
	g := New()
	g.AddEdge("r1", "sw")
	g.AddEdge("r2", "sw")
	g.AddEdge("r1", "r2", Attrs{"direct": true})
	if err := g.Explode("sw", nil); err != nil {
		t.Fatal(err)
	}
	if g.Edge("r1", "r2").Get("direct") != true {
		t.Error("existing edge overwritten by explode")
	}
}

func TestGroupBy(t *testing.T) {
	g := New()
	g.AddNode("r1", Attrs{"asn": 1})
	g.AddNode("r2", Attrs{"asn": 2})
	g.AddNode("r3", Attrs{"asn": 1})
	g.AddNode("srv")
	groups := GroupBy(g.Nodes(), "asn")
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (asn 1, asn 2, nil)", len(groups))
	}
	// Sorted by string form: "1" < "2" < "<nil>".
	if groups[0].Key != 1 || len(groups[0].Members) != 2 {
		t.Errorf("group[0] = %+v", groups[0])
	}
	if groups[2].Key != nil || groups[2].Members[0].ID() != "srv" {
		t.Errorf("nil group wrong: %+v", groups[2])
	}
}

func TestFilterNodesAndEdges(t *testing.T) {
	g := New()
	g.AddNode("r1", Attrs{"device_type": "router"})
	g.AddNode("s1", Attrs{"device_type": "server"})
	g.AddEdge("r1", "s1", Attrs{"type": "physical"})
	g.AddEdge("s1", "s1", Attrs{"type": "virtual"})
	routers := FilterNodes(g.Nodes(), func(n *Node) bool { return n.Get("device_type") == "router" })
	if len(routers) != 1 || routers[0].ID() != "r1" {
		t.Errorf("router filter = %v", routers)
	}
	phys := FilterEdges(g.Edges(), func(e *Edge) bool { return e.Get("type") == "physical" })
	if len(phys) != 1 {
		t.Errorf("physical filter = %d", len(phys))
	}
	ids := []ID{}
	for _, n := range routers {
		ids = append(ids, n.ID())
	}
	if !reflect.DeepEqual(ids, []ID{"r1"}) {
		t.Errorf("ids = %v", ids)
	}
}
