package graph

import (
	"fmt"
	"sort"
)

// Transform functions mirror the paper's attribute-based design helpers
// (§5.2.4): Split inserts an intermediate node on an edge, Aggregate
// collapses a node set into one node, Explode removes a node and forms a
// clique of its neighbours, and GroupBy buckets nodes by an attribute.
// They are used to build the IP-addressing overlay: point-to-point links are
// split to insert collision domains, switches are aggregated into a single
// collision domain, and Explode recovers adjacency through a switch.

// Split removes edge e and inserts a new node mid between its endpoints,
// connected to both. The new node receives midAttrs; the two new edges each
// receive a copy of e's attributes. It returns the new node.
func (g *Graph) Split(e *Edge, mid ID, midAttrs Attrs) (*Node, error) {
	if g.Edge(e.src, e.dst) != e {
		return nil, fmt.Errorf("graph: split: edge %s-%s not in graph", e.src, e.dst)
	}
	if g.HasNode(mid) {
		return nil, fmt.Errorf("graph: split: node %q already exists", mid)
	}
	src, dst, attrs := e.src, e.dst, e.attrs.Clone()
	g.removeEdgePtr(e)
	n := g.AddNode(mid, midAttrs)
	g.AddEdge(src, mid, attrs.Clone())
	g.AddEdge(mid, dst, attrs.Clone())
	return n, nil
}

// Aggregate collapses the listed nodes into a single new node with the given
// id and attributes. Edges from the collapsed set to outside nodes are
// re-attached to the aggregate (duplicates merge); edges internal to the set
// vanish. It returns the aggregate node.
func (g *Graph) Aggregate(ids []ID, agg ID, aggAttrs Attrs) (*Node, error) {
	set := map[ID]bool{}
	for _, id := range ids {
		if !g.HasNode(id) {
			return nil, fmt.Errorf("graph: aggregate: node %q not in graph", id)
		}
		set[id] = true
	}
	if g.HasNode(agg) && !set[agg] {
		return nil, fmt.Errorf("graph: aggregate: target %q already exists", agg)
	}
	type pending struct {
		outside ID
		inbound bool // outside -> aggregate (directed graphs)
		attrs   Attrs
	}
	var edges []pending
	for _, e := range g.Edges() {
		sIn, dIn := set[e.src], set[e.dst]
		switch {
		case sIn && dIn:
			// internal edge: dropped
		case sIn:
			edges = append(edges, pending{outside: e.dst, inbound: false, attrs: e.attrs.Clone()})
		case dIn:
			edges = append(edges, pending{outside: e.src, inbound: true, attrs: e.attrs.Clone()})
		}
	}
	for _, id := range ids {
		g.RemoveNode(id)
	}
	n := g.AddNode(agg, aggAttrs)
	for _, p := range edges {
		if g.directed && p.inbound {
			g.AddEdge(p.outside, agg, p.attrs)
		} else {
			g.AddEdge(agg, p.outside, p.attrs)
		}
	}
	return n, nil
}

// Explode removes node id and connects every pair of its former neighbours
// (a clique), as used to derive adjacency through a switch. New edges
// receive edgeAttrs. Existing edges between neighbours are preserved.
func (g *Graph) Explode(id ID, edgeAttrs Attrs) error {
	if !g.HasNode(id) {
		return fmt.Errorf("graph: explode: node %q not in graph", id)
	}
	nbs := g.Neighbors(id)
	g.RemoveNode(id)
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			if !g.HasEdge(nbs[i], nbs[j]) {
				g.AddEdge(nbs[i], nbs[j], edgeAttrs.Clone())
			}
		}
	}
	return nil
}

// Group is one bucket returned by GroupBy: the shared attribute value and
// the member nodes.
type Group struct {
	Key     any
	Members []*Node
}

// GroupBy buckets the given nodes by the value of attribute key, returning
// groups sorted by the string form of the key for determinism. Nodes missing
// the attribute are grouped under nil.
func GroupBy(nodes []*Node, key string) []Group {
	buckets := map[string]*Group{}
	var order []string
	for _, n := range nodes {
		v := n.Get(key)
		ks := fmt.Sprint(v)
		b, ok := buckets[ks]
		if !ok {
			b = &Group{Key: v}
			buckets[ks] = b
			order = append(order, ks)
		}
		b.Members = append(b.Members, n)
	}
	sort.Strings(order)
	out := make([]Group, 0, len(order))
	for _, ks := range order {
		out = append(out, *buckets[ks])
	}
	return out
}

// FilterNodes returns the nodes for which pred is true, preserving order.
func FilterNodes(nodes []*Node, pred func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range nodes {
		if pred(n) {
			out = append(out, n)
		}
	}
	return out
}

// FilterEdges returns the edges for which pred is true, preserving order.
func FilterEdges(edges []*Edge, pred func(*Edge) bool) []*Edge {
	var out []*Edge
	for _, e := range edges {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}
