// Package graph implements the attribute graphs that underpin the whole
// system (paper §4.2.1). Nodes and edges carry free-form attribute maps, and
// all iteration is deterministic (insertion order), so everything derived
// from a graph — overlays, the resource database, rendered configurations —
// is byte-stable across runs.
//
// The package supports both undirected graphs (physical topologies, OSPF
// adjacencies) and directed graphs (BGP sessions, RPKI distribution
// hierarchies). It is a simple graph: at most one edge per ordered node
// pair; re-adding an edge merges attributes into the existing one.
package graph

import (
	"fmt"
	"sort"
)

// ID identifies a node within a graph. IDs are free-form strings; loaders
// typically use the node label from the input file.
type ID string

// Attrs is a free-form attribute map attached to graphs, nodes and edges.
type Attrs map[string]any

// Clone returns a shallow copy of the attribute map.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Merge copies every key of src into a, overwriting existing keys.
func (a Attrs) Merge(src Attrs) {
	for k, v := range src {
		a[k] = v
	}
}

// Node is a vertex with an attribute map. Nodes belong to exactly one Graph.
type Node struct {
	id    ID
	attrs Attrs
}

// ID returns the node's identifier.
func (n *Node) ID() ID { return n.id }

// Attrs returns the node's attribute map. Mutating it mutates the node.
func (n *Node) Attrs() Attrs { return n.attrs }

// Get returns the attribute value for key, or nil when absent.
func (n *Node) Get(key string) any { return n.attrs[key] }

// Set assigns an attribute on the node.
func (n *Node) Set(key string, v any) { n.attrs[key] = v }

// Has reports whether the attribute key is present.
func (n *Node) Has(key string) bool { _, ok := n.attrs[key]; return ok }

// Edge is a connection between two nodes with an attribute map. For
// undirected graphs Src/Dst reflect insertion order only.
type Edge struct {
	src, dst ID
	attrs    Attrs
}

// Src returns the edge's source (first) endpoint.
func (e *Edge) Src() ID { return e.src }

// Dst returns the edge's destination (second) endpoint.
func (e *Edge) Dst() ID { return e.dst }

// Attrs returns the edge's attribute map. Mutating it mutates the edge.
func (e *Edge) Attrs() Attrs { return e.attrs }

// Get returns the attribute value for key, or nil when absent.
func (e *Edge) Get(key string) any { return e.attrs[key] }

// Set assigns an attribute on the edge.
func (e *Edge) Set(key string, v any) { e.attrs[key] = v }

// Other returns the endpoint of e opposite to id. It returns id itself for
// self-loops and panics if id is not an endpoint.
func (e *Edge) Other(id ID) ID {
	switch id {
	case e.src:
		return e.dst
	case e.dst:
		return e.src
	}
	panic(fmt.Sprintf("graph: node %q is not an endpoint of edge %q-%q", id, e.src, e.dst))
}

// Graph is a deterministic attribute graph.
//
// The zero value is not usable; construct with New or NewDirected.
type Graph struct {
	directed bool
	attrs    Attrs

	nodes map[ID]*Node
	order []ID // node insertion order

	// adj maps src -> dst -> edge. Undirected graphs store each edge under
	// both orientations, pointing at the same *Edge.
	adj       map[ID]map[ID]*Edge
	edgeOrder []*Edge

	// incident indexes edgeOrder per endpoint — outgoing edges for directed
	// graphs, all incident edges (self-loops once) for undirected — and
	// incoming holds the directed in-edges. Both preserve edge-insertion
	// order, so the EdgesOf/InEdgesOf/Neighbors family is O(degree) instead
	// of a scan over every edge in the graph.
	incident map[ID][]*Edge
	incoming map[ID][]*Edge
}

// New returns an empty undirected graph.
func New() *Graph { return newGraph(false) }

// NewDirected returns an empty directed graph.
func NewDirected() *Graph { return newGraph(true) }

func newGraph(directed bool) *Graph {
	return &Graph{
		directed: directed,
		attrs:    Attrs{},
		nodes:    map[ID]*Node{},
		adj:      map[ID]map[ID]*Edge{},
		incident: map[ID][]*Edge{},
		incoming: map[ID][]*Edge{},
	}
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Attrs returns the graph-level attribute map (paper §5.2.1: per-overlay
// data such as per-AS infrastructure blocks live here).
func (g *Graph) Attrs() Attrs { return g.attrs }

// Get returns a graph-level attribute, or nil when absent.
func (g *Graph) Get(key string) any { return g.attrs[key] }

// Set assigns a graph-level attribute.
func (g *Graph) Set(key string, v any) { g.attrs[key] = v }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count (each undirected edge counted once).
func (g *Graph) NumEdges() int { return len(g.edgeOrder) }

// HasNode reports whether id is present.
func (g *Graph) HasNode(id ID) bool { _, ok := g.nodes[id]; return ok }

// Node returns the node with the given id, or nil when absent.
func (g *Graph) Node(id ID) *Node { return g.nodes[id] }

// AddNode inserts a node, or returns the existing node (merging attrs into
// it) when id is already present.
func (g *Graph) AddNode(id ID, attrs ...Attrs) *Node {
	n, ok := g.nodes[id]
	if !ok {
		n = &Node{id: id, attrs: Attrs{}}
		g.nodes[id] = n
		g.order = append(g.order, id)
		g.adj[id] = map[ID]*Edge{}
	}
	for _, a := range attrs {
		n.attrs.Merge(a)
	}
	return n
}

// RemoveNode deletes a node and all incident edges. Removing an absent node
// is a no-op.
func (g *Graph) RemoveNode(id ID) {
	if !g.HasNode(id) {
		return
	}
	// Drop incident edges first (copy: removeEdgePtr mutates the indexes).
	doomed := append([]*Edge(nil), g.incident[id]...)
	doomed = append(doomed, g.incoming[id]...)
	for _, e := range doomed {
		g.removeEdgePtr(e)
	}
	delete(g.nodes, id)
	delete(g.adj, id)
	delete(g.incident, id)
	delete(g.incoming, id)
	for i, nid := range g.order {
		if nid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// NodeIDs returns all node IDs in insertion order.
func (g *Graph) NodeIDs() []ID {
	out := make([]ID, len(g.order))
	copy(out, g.order)
	return out
}

// SortedNodeIDs returns all node IDs in lexical order.
func (g *Graph) SortedNodeIDs() []ID {
	out := g.NodeIDs()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEdge reports whether an edge u->v exists (or u-v for undirected).
func (g *Graph) HasEdge(u, v ID) bool {
	m, ok := g.adj[u]
	if !ok {
		return false
	}
	_, ok = m[v]
	return ok
}

// Edge returns the edge u->v (u-v for undirected), or nil when absent.
func (g *Graph) Edge(u, v ID) *Edge {
	if m, ok := g.adj[u]; ok {
		return m[v]
	}
	return nil
}

// AddEdge inserts an edge between u and v, implicitly adding missing
// endpoints. Adding an existing edge merges attrs into it. For undirected
// graphs the edge is reachable from both orientations.
func (g *Graph) AddEdge(u, v ID, attrs ...Attrs) *Edge {
	g.AddNode(u)
	g.AddNode(v)
	if e := g.adj[u][v]; e != nil {
		for _, a := range attrs {
			e.attrs.Merge(a)
		}
		return e
	}
	e := &Edge{src: u, dst: v, attrs: Attrs{}}
	for _, a := range attrs {
		e.attrs.Merge(a)
	}
	g.adj[u][v] = e
	g.incident[u] = append(g.incident[u], e)
	if g.directed {
		g.incoming[v] = append(g.incoming[v], e)
	} else if u != v {
		g.adj[v][u] = e
		g.incident[v] = append(g.incident[v], e)
	}
	g.edgeOrder = append(g.edgeOrder, e)
	return e
}

// RemoveEdge deletes the edge u->v (u-v undirected). Absent edges are a
// no-op.
func (g *Graph) RemoveEdge(u, v ID) {
	if e := g.Edge(u, v); e != nil {
		g.removeEdgePtr(e)
	}
}

func (g *Graph) removeEdgePtr(e *Edge) {
	delete(g.adj[e.src], e.dst)
	g.incident[e.src] = dropEdge(g.incident[e.src], e)
	if g.directed {
		g.incoming[e.dst] = dropEdge(g.incoming[e.dst], e)
	} else if e.src != e.dst {
		delete(g.adj[e.dst], e.src)
		g.incident[e.dst] = dropEdge(g.incident[e.dst], e)
	}
	for i, cur := range g.edgeOrder {
		if cur == e {
			g.edgeOrder = append(g.edgeOrder[:i], g.edgeOrder[i+1:]...)
			break
		}
	}
}

// dropEdge removes the first occurrence of e from es, preserving order.
func dropEdge(es []*Edge, e *Edge) []*Edge {
	for i, cur := range es {
		if cur == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// Edges returns all edges in insertion order (undirected edges once each).
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, len(g.edgeOrder))
	copy(out, g.edgeOrder)
	return out
}

// EdgesOf returns the edges incident to id in deterministic order: for
// directed graphs only outgoing edges, matching the paper's session
// semantics.
func (g *Graph) EdgesOf(id ID) []*Edge {
	es := g.incident[id]
	if len(es) == 0 {
		return nil
	}
	out := make([]*Edge, len(es))
	copy(out, es)
	return out
}

// InEdgesOf returns the edges entering id (directed graphs); for undirected
// graphs it equals EdgesOf.
func (g *Graph) InEdgesOf(id ID) []*Edge {
	if !g.directed {
		return g.EdgesOf(id)
	}
	es := g.incoming[id]
	if len(es) == 0 {
		return nil
	}
	out := make([]*Edge, len(es))
	copy(out, es)
	return out
}

// Neighbors returns the neighbor IDs of id in deterministic (edge insertion)
// order. For directed graphs these are the successors.
func (g *Graph) Neighbors(id ID) []ID {
	es := g.incident[id]
	if len(es) == 0 {
		return nil
	}
	// AddEdge merges parallel edges, so each incident edge contributes a
	// distinct neighbor — no dedup pass needed.
	out := make([]ID, len(es))
	for i, e := range es {
		if e.src == id {
			out[i] = e.dst
		} else {
			out[i] = e.src
		}
	}
	return out
}

// Degree returns the number of edges incident to id (out-degree for
// directed graphs).
func (g *Graph) Degree(id ID) int {
	if g.directed {
		return len(g.adj[id])
	}
	d := len(g.incident[id])
	for _, e := range g.incident[id] {
		if e.src == e.dst {
			d++ // self-loop counts twice, matching NetworkX
		}
	}
	return d
}

// Copy returns a deep copy of the graph structure with shallow-copied
// attribute values.
func (g *Graph) Copy() *Graph {
	out := newGraph(g.directed)
	out.attrs = g.attrs.Clone()
	if out.attrs == nil {
		out.attrs = Attrs{}
	}
	for _, id := range g.order {
		out.AddNode(id, g.nodes[id].attrs.Clone())
	}
	for _, e := range g.edgeOrder {
		out.AddEdge(e.src, e.dst, e.attrs.Clone())
	}
	return out
}

// Subgraph returns a new graph containing only the listed nodes and the
// edges among them, preserving attributes.
func (g *Graph) Subgraph(ids []ID) *Graph {
	keep := make(map[ID]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	out := newGraph(g.directed)
	out.attrs = g.attrs.Clone()
	if out.attrs == nil {
		out.attrs = Attrs{}
	}
	for _, id := range g.order {
		if keep[id] {
			out.AddNode(id, g.nodes[id].attrs.Clone())
		}
	}
	for _, e := range g.edgeOrder {
		if keep[e.src] && keep[e.dst] {
			out.AddEdge(e.src, e.dst, e.attrs.Clone())
		}
	}
	return out
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph(%s, %d nodes, %d edges)", kind, g.NumNodes(), g.NumEdges())
}
