package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Policy selects how a reservation's VMs are spread across hosts.
type Policy string

// Placement policies.
const (
	// PolicyPack fills the fullest schedulable hosts first (best-fit for
	// unit-sized VMs), minimising the number of hosts a reservation
	// touches and keeping large contiguous free blocks available.
	PolicyPack Policy = "pack"
	// PolicySpread balances the reservation across hosts, always placing
	// the next VM on the schedulable host with the most free capacity —
	// the anti-affinity-flavoured policy: losing one host loses the
	// fewest VMs of this reservation.
	PolicySpread Policy = "spread"
)

// Spec is a named capacity request against the cluster.
type Spec struct {
	// Name identifies the reservation; unique within the cluster.
	Name string
	// Tenant owns the reservation for fair-share accounting ("default"
	// when empty).
	Tenant string
	// VMs are explicit VM names to place. Mutually exclusive with Count.
	VMs []string
	// Count generates Count VM names ("<name>-vm001", ...) when VMs is
	// empty.
	Count int
	// Policy is the placement policy (PolicyPack when empty).
	Policy Policy
	// Spread caps how many of this reservation's VMs may share one host
	// (0 = unbounded; 1 = full per-host anti-affinity).
	Spread int
	// Weight, when > 0, sets the owning tenant's fair-share weight.
	Weight int
}

// maxSpecVMs bounds generated VM counts so a fuzzed or typo'd spec cannot
// allocate unbounded memory.
const maxSpecVMs = 1 << 20

// ParseSpec parses the one-line reservation spec format:
//
//	<name> vms=<count | vm1,vm2,...> [tenant=<t>] [policy=pack|spread]
//	       [spread=<max-per-host>] [weight=<w>]
//
// The first token is the reservation name; every further token is a
// key=value pair in any order. ParseSpec and Spec.String round-trip: a
// parsed spec renders back to its canonical form.
func ParseSpec(line string) (Spec, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Spec{}, fmt.Errorf("sched: empty reservation spec")
	}
	sp := Spec{Name: fields[0]}
	if strings.Contains(sp.Name, "=") {
		return Spec{}, fmt.Errorf("sched: spec must start with a reservation name, got %q", sp.Name)
	}
	seen := map[string]bool{}
	sawVMs := false
	for _, tok := range fields[1:] {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("sched: spec token %q is not key=value", tok)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("sched: duplicate spec key %q", key)
		}
		seen[key] = true
		switch key {
		case "vms":
			sawVMs = true
			if n, err := strconv.Atoi(val); err == nil {
				if n < 1 || n > maxSpecVMs {
					return Spec{}, fmt.Errorf("sched: vms count %d out of range [1, %d]", n, maxSpecVMs)
				}
				sp.Count = n
				continue
			}
			names := strings.Split(val, ",")
			dup := map[string]bool{}
			for _, name := range names {
				if name == "" {
					return Spec{}, fmt.Errorf("sched: empty VM name in %q", val)
				}
				if dup[name] {
					return Spec{}, fmt.Errorf("sched: duplicate VM name %q", name)
				}
				dup[name] = true
			}
			sp.VMs = names
		case "tenant":
			sp.Tenant = val
		case "policy":
			switch Policy(val) {
			case PolicyPack, PolicySpread:
				sp.Policy = Policy(val)
			default:
				return Spec{}, fmt.Errorf("sched: unknown policy %q (want pack or spread)", val)
			}
		case "spread":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("sched: bad spread %q (want a positive integer)", val)
			}
			sp.Spread = n
		case "weight":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("sched: bad weight %q (want a positive integer)", val)
			}
			sp.Weight = n
		default:
			return Spec{}, fmt.Errorf("sched: unknown spec key %q", key)
		}
	}
	if !sawVMs {
		return Spec{}, fmt.Errorf("sched: spec %q needs vms=<count|names>", sp.Name)
	}
	return sp, sp.Validate()
}

// Validate checks a spec built in code (ParseSpec validates on the way in).
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sched: reservation needs a name")
	}
	if len(s.VMs) == 0 && s.Count <= 0 {
		return fmt.Errorf("sched: reservation %s requests no VMs", s.Name)
	}
	if len(s.VMs) > 0 && s.Count > 0 {
		return fmt.Errorf("sched: reservation %s sets both explicit VMs and a count", s.Name)
	}
	if s.Count > maxSpecVMs {
		return fmt.Errorf("sched: reservation %s count %d exceeds %d", s.Name, s.Count, maxSpecVMs)
	}
	seen := map[string]bool{}
	for _, vm := range s.VMs {
		if vm == "" {
			return fmt.Errorf("sched: reservation %s has an empty VM name", s.Name)
		}
		if seen[vm] {
			return fmt.Errorf("sched: reservation %s lists VM %s twice", s.Name, vm)
		}
		seen[vm] = true
	}
	if s.Spread < 0 {
		return fmt.Errorf("sched: reservation %s has negative spread", s.Name)
	}
	if s.Weight < 0 {
		return fmt.Errorf("sched: reservation %s has negative weight", s.Name)
	}
	return nil
}

// String renders the spec in its canonical parseable form.
func (s Spec) String() string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	if len(s.VMs) > 0 {
		sb.WriteString(" vms=" + strings.Join(s.VMs, ","))
	} else {
		fmt.Fprintf(&sb, " vms=%d", s.Count)
	}
	if s.Tenant != "" {
		sb.WriteString(" tenant=" + s.Tenant)
	}
	if s.Policy != "" && s.Policy != PolicyPack {
		sb.WriteString(" policy=" + string(s.Policy))
	}
	if s.Spread > 0 {
		fmt.Fprintf(&sb, " spread=%d", s.Spread)
	}
	if s.Weight > 0 {
		fmt.Fprintf(&sb, " weight=%d", s.Weight)
	}
	return sb.String()
}

// tenant returns the effective tenant name.
func (s Spec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// policy returns the effective placement policy.
func (s Spec) policy() Policy {
	if s.Policy == "" {
		return PolicyPack
	}
	return s.Policy
}

// vmNames returns the reservation's VM names, sorted: the explicit list,
// or Count generated names.
func (s Spec) vmNames() []string {
	if len(s.VMs) > 0 {
		out := make([]string, len(s.VMs))
		copy(out, s.VMs)
		sort.Strings(out)
		return out
	}
	width := len(strconv.Itoa(s.Count))
	if width < 3 {
		width = 3
	}
	out := make([]string, 0, s.Count)
	for i := 1; i <= s.Count; i++ {
		out = append(out, fmt.Sprintf("%s-vm%0*d", s.Name, width, i))
	}
	return out
}
