package sched

import (
	"testing"
)

// TestFlakyBackendDeterministic: whether a call fails is a pure function
// of (seed, operation, arguments) — call order does not matter.
func TestFlakyBackendDeterministic(t *testing.T) {
	mk := func(seed uint64) *FlakyBackend {
		b := NewFlakyBackend(Uniform(4, 4), seed)
		b.SetMigrateFailRate("h02", 0.5)
		return b
	}
	outcome := func(b *FlakyBackend, vm string, attempt int) bool {
		return b.Migrate(vm, "h01", "h02", attempt) != nil
	}

	a, b := mk(7), mk(7)
	vms := []string{"web-vm001", "web-vm002", "web-vm003", "web-vm004"}
	// Forward on one, reverse on the other: identical verdict per call.
	for i, vm := range vms {
		rv := vms[len(vms)-1-i]
		if outcome(a, vm, 1) != outcome(b, vm, 1) {
			t.Fatalf("migrate %s verdict differs across call orders", vm)
		}
		_ = rv
		if outcome(b, rv, 1) != outcome(a, rv, 1) {
			t.Fatalf("migrate %s verdict differs across call orders", rv)
		}
	}
	// Retries re-roll: across enough (vm, attempt) pairs both verdicts
	// appear at rate 0.5.
	saw := map[bool]int{}
	for _, vm := range vms {
		for attempt := 1; attempt <= 8; attempt++ {
			saw[outcome(a, vm, attempt)]++
		}
	}
	if saw[true] == 0 || saw[false] == 0 {
		t.Fatalf("rate 0.5 produced one-sided verdicts: %v", saw)
	}
	// A different seed de-correlates the schedule.
	c := mk(8)
	diff := false
	for _, vm := range vms {
		for attempt := 1; attempt <= 8; attempt++ {
			if outcome(mk(7), vm, attempt) != outcome(c, vm, attempt) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestFlakyBackendProbeRounds: probe faults are keyed by consecutive
// probe index, so a fractional rate samples across rounds.
func TestFlakyBackendProbeRounds(t *testing.T) {
	b := NewFlakyBackend(Uniform(1, 1), 3)
	b.SetProbeFailRate("h01", 0.5)
	saw := map[bool]int{}
	for i := 0; i < 32; i++ {
		saw[b.Probe("h01") != nil]++
	}
	if saw[true] == 0 || saw[false] == 0 {
		t.Fatalf("probe rate 0.5 produced one-sided verdicts over rounds: %v", saw)
	}
	// rate 0 never fails, rate 1 always fails.
	b.SetProbeFailRate("h01", 0)
	if err := b.Probe("h01"); err != nil {
		t.Fatalf("rate 0 probe failed: %v", err)
	}
	b.SetProbeFailRate("h01", 1)
	if err := b.Probe("h01"); err == nil {
		t.Fatal("rate 1 probe succeeded")
	}
}

// TestFlakyBackendSilence: silence overrides everything and is
// reversible.
func TestFlakyBackendSilence(t *testing.T) {
	b := NewFlakyBackend(Uniform(2, 2), 1)
	b.Silence("h01")
	if !b.Silenced("h01") {
		t.Fatal("Silenced lied")
	}
	if err := b.Probe("h01"); err == nil {
		t.Fatal("silent probe succeeded")
	}
	if err := b.Heartbeat("h01"); err == nil {
		t.Fatal("silent heartbeat succeeded")
	}
	if err := b.Migrate("x-vm001", "h02", "h01", 1); err == nil {
		t.Fatal("migration onto silent host succeeded")
	}
	if err := b.Heartbeat("h02"); err != nil {
		t.Fatalf("heartbeat of quiet-but-alive host: %v", err)
	}
	b.Unsilence("h01")
	if err := b.Heartbeat("h01"); err != nil {
		t.Fatalf("heartbeat after unsilence: %v", err)
	}
}
