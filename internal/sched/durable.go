// Durable cluster state over internal/journal. Every public mutation
// appends one typed record; Open replays snapshot + wal tail into a
// cluster whose observable state matches the pre-crash one exactly.
//
// Two record styles, chosen per operation:
//
//   - Command records (reserve/release/cordon/uncordon) carry the request.
//     These operations are deterministic functions of (state, request,
//     seed) — PR 7's core property — so replay re-runs the same locked
//     code path and re-derives placement, queueing, admission, and healing
//     identically.
//   - Outcome records (drain/fail-host/probe) carry what actually
//     happened: the committed moves, the stranded VMs, the per-host probe
//     verdicts. Their live execution consults the backend (Migrate with
//     retries, Probe) and so is not a pure function of state; replay
//     applies the recorded deltas without touching the backend.
//
// One mutator call = at most one record (Drain folds its implicit cordon
// in), so any crash leaves the journal at an operation boundary: recovery
// observes either the state before the op or after it, never between.
package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"autonetkit/internal/journal"
	"autonetkit/internal/obs"
)

// Record kinds.
const (
	recReserve  = "reserve"
	recRelease  = "release"
	recCordon   = "cordon"
	recUncordon = "uncordon"
	recDrain    = "drain"
	recFailHost = "fail-host"
	recProbe    = "probe"
	// recLease is a pure lease state delta (suspected, or resurrected to
	// healthy); recLeaseDead is the outcome record of a lease expiry —
	// health plus the re-placements it triggered, like fail-host.
	recLease     = "lease"
	recLeaseDead = "lease-dead"
)

// record is one journaled mutation. Exactly one of the payload groups is
// populated, per Kind.
type record struct {
	Kind     string         `json:"kind"`
	Spec     *Spec          `json:"spec,omitempty"`     // reserve
	Name     string         `json:"name,omitempty"`     // release
	Host     string         `json:"host,omitempty"`     // cordon/uncordon/drain/fail-host/lease
	Moves    []Move         `json:"moves,omitempty"`    // drain/fail-host/lease-dead outcomes
	Stranded []string       `json:"stranded,omitempty"` // fail-host/lease-dead orphans with no capacity
	Probes   []probeOutcome `json:"probes,omitempty"`   // probe round outcomes
	To       Health         `json:"to,omitempty"`       // lease transition target
}

// probeOutcome is one host's verdict from a journaled probe round.
type probeOutcome struct {
	Host string `json:"host"`
	OK   bool   `json:"ok"`
}

// snapshotState is the full durable state, compacted into one snapshot.
// Hosts and reservations are sorted (name / arrival seq) so the encoding
// is byte-deterministic.
type snapshotState struct {
	Seed         uint64         `json:"seed"`
	Preempt      bool           `json:"preempt,omitempty"`
	ResSeq       int            `json:"res_seq"`
	Hosts        []snapshotHost `json:"hosts"`
	Reservations []snapshotRes  `json:"reservations,omitempty"`
	Weights      map[string]int `json:"weights,omitempty"`
}

type snapshotHost struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	Cordoned bool   `json:"cordoned,omitempty"`
	Health   Health `json:"health"`
	Fails    int    `json:"fails,omitempty"`
	Oks      int    `json:"oks,omitempty"`
}

type snapshotRes struct {
	Spec      Spec              `json:"spec"`
	State     ResState          `json:"state"`
	Seq       int               `json:"seq"`
	Placement map[string]string `json:"placement,omitempty"`
	Stranded  []string          `json:"stranded,omitempty"`
	Preempted bool              `json:"preempted,omitempty"`
}

// RecoveryInfo summarises what Open restored.
type RecoveryInfo struct {
	// Recovered is true when any prior state (snapshot or records) was
	// found; false for a fresh state directory.
	Recovered bool
	// SnapshotRestored is true when a snapshot seeded the state.
	SnapshotRestored bool
	// Records is how many wal records were replayed on top.
	Records int
	// Epoch is the journal epoch recovered into.
	Epoch uint64
	// TruncatedBytes counts torn-tail bytes dropped from the wal.
	TruncatedBytes int64
}

func (ri RecoveryInfo) String() string {
	if !ri.Recovered {
		return "fresh state"
	}
	src := "wal"
	if ri.SnapshotRestored {
		src = "snapshot+wal"
	}
	s := fmt.Sprintf("recovered from %s: epoch %d, %d records replayed", src, ri.Epoch, ri.Records)
	if ri.TruncatedBytes > 0 {
		s += fmt.Sprintf(", %d torn bytes truncated", ri.TruncatedBytes)
	}
	return s
}

// Open builds a cluster over the backend's hosts and makes it durable in
// dir: prior state (snapshot + wal tail) is replayed first, then every
// mutation is journaled before its call returns. The recovered cluster's
// observable state — Status, placements, queue order, probe streaks — is
// identical to the pre-crash cluster's; its event log starts fresh
// (events are observability, not state). Close the cluster to release
// the journal.
func Open(dir string, b Backend, opts Options) (*Cluster, RecoveryInfo, error) {
	var info RecoveryInfo
	jopts := opts.Journal
	if jopts.Obs == nil {
		jopts.Obs = opts.Obs
	}
	log, rec, err := journal.Open(dir, jopts)
	if err != nil {
		return nil, info, err
	}
	c, err := New(b, opts)
	if err != nil {
		log.Close()
		return nil, info, err
	}
	info.Epoch = rec.Epoch
	info.TruncatedBytes = rec.TruncatedBytes
	info.SnapshotRestored = rec.Snapshot != nil
	info.Records = len(rec.Records)
	info.Recovered = rec.Snapshot != nil || len(rec.Records) > 0

	c.mu.Lock()
	c.replaying = true
	if rec.Snapshot != nil {
		if err := c.restoreSnapshotLocked(rec.Snapshot); err != nil {
			c.replaying = false
			c.mu.Unlock()
			log.Close()
			return nil, info, err
		}
	}
	for i, raw := range rec.Records {
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			c.replaying = false
			c.mu.Unlock()
			log.Close()
			return nil, info, fmt.Errorf("%w: record %d: %v", journal.ErrCorrupt, i, err)
		}
		if err := c.applyRecordLocked(r); err != nil {
			c.replaying = false
			c.mu.Unlock()
			log.Close()
			return nil, info, fmt.Errorf("sched: replaying record %d (%s): %w", i, r.Kind, err)
		}
	}
	c.replaying = false
	c.journal = log
	if opts.Lease.Enabled {
		// Replay restored suspected/dead verdicts; now re-arm the renewal
		// windows — lease clocks are not durable (a restarted scheduler
		// must not condemn every host for its own downtime).
		c.armLeasesLocked(c.now())
	}
	c.mu.Unlock()

	opts.Obs.Add(obs.CounterJournalReplayed, int64(len(rec.Records)))
	if info.Recovered {
		c.mu.Lock()
		c.emit("recover", "%s (dir %s)", info, dir)
		c.mu.Unlock()
	}
	return c, info, nil
}

// Close releases the journal (flushing it first). The cluster itself
// remains readable; further mutations fail until a new Open. A cluster
// built with New (no journal) closes as a no-op.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	if c.journalErr == nil {
		c.journalErr = errors.New("sched: cluster closed")
	}
	return err
}

// journalAppend persists one record and drives snapshot compaction (lock
// held). No-op without a journal or during replay. Any journal failure
// poisons the cluster: in-memory state may be ahead of disk, so every
// later mutation refuses until a reopen reconciles them.
func (c *Cluster) journalAppend(rec record) error {
	if c.journal == nil || c.replaying {
		return nil
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		c.journalErr = err
		return fmt.Errorf("sched: encoding %s record: %w", rec.Kind, err)
	}
	if err := c.journal.Append(raw); err != nil {
		c.journalErr = err
		return fmt.Errorf("sched: journaling %s: %w", rec.Kind, err)
	}
	c.appendsSince++
	if c.appendsSince >= c.opts.snapshotEvery() {
		state, err := c.snapshotLocked()
		if err != nil {
			c.journalErr = err
			return fmt.Errorf("sched: encoding snapshot: %w", err)
		}
		if err := c.journal.Snapshot(state); err != nil {
			c.journalErr = err
			return fmt.Errorf("sched: compacting journal: %w", err)
		}
		c.appendsSince = 0
	}
	return nil
}

// applyRecordLocked replays one journaled mutation (lock held, replaying
// set). Command records re-run the deterministic locked cores; outcome
// records apply their recorded deltas without backend calls.
func (c *Cluster) applyRecordLocked(r record) error {
	switch r.Kind {
	case recReserve:
		if r.Spec == nil {
			return errors.New("reserve record without spec")
		}
		_, err := c.reserveLocked(*r.Spec)
		return err
	case recRelease:
		return c.releaseLocked(r.Name)
	case recCordon:
		return c.cordonLocked(r.Host)
	case recUncordon:
		return c.uncordonLocked(r.Host)
	case recDrain:
		return c.applyDrainLocked(r.Host, r.Moves)
	case recFailHost:
		return c.applyFailLocked(r.Host, r.Moves, r.Stranded)
	case recProbe:
		for _, p := range r.Probes {
			var perr error
			if !p.OK {
				perr = errProbeReplayed
			}
			c.applyProbeLocked(p.Host, perr)
		}
		return nil
	case recLease:
		return c.applyLeaseLocked(r.Host, r.To)
	case recLeaseDead:
		return c.applyLeaseDeadLocked(r.Host, r.Moves, r.Stranded)
	default:
		return fmt.Errorf("unknown record kind %q", r.Kind)
	}
}

// errProbeReplayed stands in for the live probe error during replay; only
// its non-nilness matters to the threshold state machine.
var errProbeReplayed = errors.New("probe failed (replayed)")

// applyLeaseLocked replays a pure lease transition: Suspected (host
// missed its renewal window) or Healthy (a late heartbeat resurrected
// it — with the probe streak reset and the admission pass the live
// renewal ran).
func (c *Cluster) applyLeaseLocked(host string, to Health) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("no host %s", host)
	}
	switch to {
	case Suspected:
		h.health = Suspected
	case Healthy:
		h.health = Healthy
		h.fails, h.oks = 0, 0
		c.admit()
	default:
		return fmt.Errorf("lease record with unexpected target state %q", to)
	}
	return nil
}

// applyLeaseDeadLocked replays a lease expiry: health, committed moves,
// and the orphans with nowhere to go — applyFailLocked's shape with a
// Dead verdict instead of an operator's Failed.
func (c *Cluster) applyLeaseDeadLocked(host string, moves []Move, stranded []string) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("no host %s", host)
	}
	h.health = Dead
	if err := c.applyMovesLocked(moves); err != nil {
		return err
	}
	return c.strandOrphansLocked(h, stranded)
}

// applyDrainLocked replays a drain's durable effect: the (possibly
// implicit) cordon plus the committed moves.
func (c *Cluster) applyDrainLocked(host string, moves []Move) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("no host %s", host)
	}
	h.cordoned = true
	return c.applyMovesLocked(moves)
}

// applyFailLocked replays a host failure: health, committed moves, and the
// orphans that had nowhere to go.
func (c *Cluster) applyFailLocked(host string, moves []Move, stranded []string) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("no host %s", host)
	}
	h.health = Failed
	if err := c.applyMovesLocked(moves); err != nil {
		return err
	}
	return c.strandOrphansLocked(h, stranded)
}

// strandOrphansLocked marks a dead/failed host's unplaceable VMs as
// stranded on their reservations.
func (c *Cluster) strandOrphansLocked(h *hostState, stranded []string) error {
	for _, vm := range stranded {
		resName, ok := h.vms[vm]
		if !ok {
			return fmt.Errorf("stranded VM %s not on host %s", vm, h.info.Name)
		}
		r := c.res[resName]
		delete(h.vms, vm)
		delete(r.placement, vm)
		r.stranded[vm] = true
		r.state = ResDegraded
	}
	return nil
}

func (c *Cluster) applyMovesLocked(moves []Move) error {
	for _, m := range moves {
		from, ok := c.hosts[m.From]
		if !ok {
			return fmt.Errorf("move %s: no source host %s", m.VM, m.From)
		}
		to, ok := c.hosts[m.To]
		if !ok {
			return fmt.Errorf("move %s: no target host %s", m.VM, m.To)
		}
		r, ok := c.res[m.Reservation]
		if !ok {
			return fmt.Errorf("move %s: no reservation %s", m.VM, m.Reservation)
		}
		if from.vms[m.VM] != m.Reservation {
			return fmt.Errorf("move %s: not on %s under reservation %s", m.VM, m.From, m.Reservation)
		}
		delete(from.vms, m.VM)
		r.placement[m.VM] = m.To
		to.vms[m.VM] = r.spec.Name
	}
	return nil
}

// snapshotLocked encodes the full durable state (lock held).
func (c *Cluster) snapshotLocked() ([]byte, error) {
	st := snapshotState{Seed: c.opts.Seed, Preempt: c.opts.Preempt, ResSeq: c.resSeq}
	for _, name := range c.hostNames {
		h := c.hosts[name]
		st.Hosts = append(st.Hosts, snapshotHost{
			Name:     name,
			Capacity: h.info.Capacity,
			Cordoned: h.cordoned,
			Health:   h.health,
			Fails:    h.fails,
			Oks:      h.oks,
		})
	}
	for _, r := range c.resByArrival() {
		sr := snapshotRes{Spec: r.spec, State: r.state, Seq: r.seq, Preempted: r.preempted}
		if len(r.placement) > 0 {
			sr.Placement = make(map[string]string, len(r.placement))
			for vm, host := range r.placement {
				sr.Placement[vm] = host
			}
		}
		for vm := range r.stranded {
			sr.Stranded = append(sr.Stranded, vm)
		}
		sort.Strings(sr.Stranded)
		st.Reservations = append(st.Reservations, sr)
	}
	if len(c.weights) > 0 {
		st.Weights = make(map[string]int, len(c.weights))
		for t, w := range c.weights {
			st.Weights[t] = w
		}
	}
	return json.Marshal(st)
}

// restoreSnapshotLocked loads a snapshot into a freshly built cluster
// (lock held, replaying set). The snapshot must agree with the backend's
// discovered hosts and the configured seed — recovering yesterday's state
// onto a different substrate or tie-break key would silently misplace.
func (c *Cluster) restoreSnapshotLocked(data []byte) error {
	var st snapshotState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: snapshot: %v", journal.ErrCorrupt, err)
	}
	if st.Seed != c.opts.Seed {
		return fmt.Errorf("sched: snapshot seed %d != configured seed %d", st.Seed, c.opts.Seed)
	}
	if st.Preempt != c.opts.Preempt {
		// The wal records after this snapshot were decided under the
		// snapshot's preemption mode; replaying them under the other mode
		// would silently diverge from the recorded history.
		return fmt.Errorf("sched: snapshot preempt=%v != configured preempt=%v", st.Preempt, c.opts.Preempt)
	}
	if len(st.Hosts) != len(c.hostNames) {
		return fmt.Errorf("sched: snapshot has %d hosts, backend discovered %d", len(st.Hosts), len(c.hostNames))
	}
	for _, sh := range st.Hosts {
		h, ok := c.hosts[sh.Name]
		if !ok {
			return fmt.Errorf("sched: snapshot host %s not discovered by backend", sh.Name)
		}
		if h.info.Capacity != sh.Capacity {
			return fmt.Errorf("sched: host %s capacity %d in snapshot, %d discovered", sh.Name, sh.Capacity, h.info.Capacity)
		}
		h.cordoned = sh.Cordoned
		h.health = sh.Health
		h.fails = sh.Fails
		h.oks = sh.Oks
	}
	c.resSeq = st.ResSeq
	for _, sr := range st.Reservations {
		r := &reservation{
			spec:      sr.Spec,
			vms:       sr.Spec.vmNames(),
			state:     sr.State,
			placement: map[string]string{},
			stranded:  map[string]bool{},
			seq:       sr.Seq,
			preempted: sr.Preempted,
		}
		for vm, host := range sr.Placement {
			h, ok := c.hosts[host]
			if !ok {
				return fmt.Errorf("sched: snapshot places %s on unknown host %s", vm, host)
			}
			r.placement[vm] = host
			h.vms[vm] = sr.Spec.Name
		}
		for _, vm := range sr.Stranded {
			r.stranded[vm] = true
		}
		c.res[sr.Spec.Name] = r
	}
	for t, w := range st.Weights {
		c.weights[t] = w
	}
	for name, h := range c.hosts {
		if len(h.vms) > h.info.Capacity {
			return fmt.Errorf("sched: snapshot overfills host %s: %d VMs on capacity %d", name, len(h.vms), h.info.Capacity)
		}
	}
	return nil
}
