package sched

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is the injectable lease clock: no wall time in lease tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(0, 0).UTC()} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func leaseOpts(clk *testClock) Options {
	return Options{
		Seed:  2013,
		Retry: fastRetry(2),
		Lease: LeasePolicy{Enabled: true, TTL: 10 * time.Second, Grace: 20 * time.Second},
		Now:   clk.now,
	}
}

func hostHealth(c *Cluster, host string) Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hosts[host].health
}

func TestLeaseSuspectThenDead(t *testing.T) {
	clk := newTestClock()
	c := newTestCluster(t, Uniform(3, 4), leaseOpts(clk))
	if _, err := c.Reserve(Spec{Name: "web", Count: 6}); err != nil {
		t.Fatal(err)
	}

	// Everyone renews inside the TTL: nothing happens.
	clk.advance(8 * time.Second)
	if got := c.HeartbeatAll(); len(got) != 3 {
		t.Fatalf("HeartbeatAll renewed %v", got)
	}
	if tr := c.CheckLeases(); len(tr) != 0 {
		t.Fatalf("transitions after renewal: %v", tr)
	}

	// h01 goes silent: next renewals skip it (simulate by renewing the
	// others explicitly), and past the TTL it is suspected.
	clk.advance(11 * time.Second)
	for _, h := range []string{"h02", "h03"} {
		if err := c.Heartbeat(h); err != nil {
			t.Fatal(err)
		}
	}
	tr := c.CheckLeases()
	if len(tr) != 1 || tr[0].Host != "h01" || tr[0].To != Suspected {
		t.Fatalf("transitions = %v", tr)
	}
	if got := hostHealth(c, "h01"); got != Suspected {
		t.Fatalf("h01 health = %s", got)
	}
	// Suspected: unschedulable, but its VMs stay put.
	if vms := c.VMsOn("h01"); len(vms) == 0 {
		t.Fatal("suspected host lost its VMs prematurely")
	}
	checkInvariant(t, c)

	// Still silent one grace window later: dead, VMs re-placed.
	before := len(c.VMsOn("h01"))
	clk.advance(21 * time.Second)
	for _, h := range []string{"h02", "h03"} {
		if err := c.Heartbeat(h); err != nil {
			t.Fatal(err)
		}
	}
	tr = c.CheckLeases()
	if len(tr) != 1 || tr[0].Host != "h01" || tr[0].To != Dead {
		t.Fatalf("transitions = %v", tr)
	}
	if got := hostHealth(c, "h01"); got != Dead {
		t.Fatalf("h01 health = %s", got)
	}
	if moved := len(tr[0].Moves) + len(tr[0].Stranded); moved != before {
		t.Fatalf("dead transition accounted for %d of %d VMs", moved, before)
	}
	if vms := c.VMsOn("h01"); len(vms) != 0 {
		t.Fatalf("dead host still holds %v", vms)
	}
	checkInvariant(t, c)

	// A late heartbeat resurrects the host.
	if err := c.Heartbeat("h01"); err != nil {
		t.Fatal(err)
	}
	if got := hostHealth(c, "h01"); got != Healthy {
		t.Fatalf("h01 health after late heartbeat = %s", got)
	}
	checkInvariant(t, c)
}

func TestLeaseNeverJumpsHealthyToDead(t *testing.T) {
	clk := newTestClock()
	c := newTestCluster(t, Uniform(2, 2), leaseOpts(clk))
	// Silent far past TTL+Grace: first check only suspects.
	clk.advance(time.Hour)
	tr := c.CheckLeases()
	for _, x := range tr {
		if x.To != Suspected {
			t.Fatalf("first observation produced %v", x)
		}
	}
	// Second observation (still past the windows) may now expire.
	clk.advance(time.Second)
	tr = c.CheckLeases()
	for _, x := range tr {
		if x.To != Dead {
			t.Fatalf("second observation produced %v", x)
		}
	}
}

func TestLeaseSilenceViaFlakyBackendLoop(t *testing.T) {
	clk := newTestClock()
	fb := NewFlakyBackend(Uniform(3, 4), 2013)
	c := newTestCluster(t, fb, leaseOpts(clk))
	if _, err := c.Reserve(Spec{Name: "web", Count: 5}); err != nil {
		t.Fatal(err)
	}
	fb.Silence("h02")
	victims := c.VMsOn("h02")

	// One heartbeat round: everyone but h02 renews.
	clk.advance(5 * time.Second)
	renewed := c.HeartbeatAll()
	if strings.Join(renewed, ",") != "h01,h03" {
		t.Fatalf("renewed = %v", renewed)
	}
	// TTL passes for h02 (the others renewed at +5s).
	clk.advance(6 * time.Second)
	c.HeartbeatAll()
	tr := c.CheckLeases()
	if len(tr) != 1 || tr[0].Host != "h02" || tr[0].To != Suspected {
		t.Fatalf("transitions = %v", tr)
	}
	// Grace passes: dead, and the silenced host's VMs re-place.
	clk.advance(31 * time.Second)
	c.HeartbeatAll()
	tr = c.CheckLeases()
	if len(tr) != 1 || tr[0].To != Dead {
		t.Fatalf("transitions = %v", tr)
	}
	if len(victims) > 0 && len(tr[0].Moves) == 0 && len(tr[0].Stranded) == 0 {
		t.Fatal("dead host's VMs neither moved nor stranded")
	}
	checkInvariant(t, c)

	// Unsilence + heartbeat: resurrection through the same loop.
	fb.Unsilence("h02")
	c.HeartbeatAll()
	if got := hostHealth(c, "h02"); got != Healthy {
		t.Fatalf("h02 after unsilence = %s", got)
	}
}

func TestExpireLeaseSeam(t *testing.T) {
	clk := newTestClock()
	c := newTestCluster(t, Uniform(3, 4), leaseOpts(clk))
	if _, err := c.Reserve(Spec{Name: "web", Count: 4}); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExpireLease("h01")
	if err != nil && !errors.Is(err, ErrDegraded) {
		t.Fatal(err)
	}
	if got := hostHealth(c, "h01"); got != Dead {
		t.Fatalf("h01 health = %s", got)
	}
	if len(res.Moves)+len(res.Stranded) == 0 && res.Host != "h01" {
		t.Fatalf("ExpireLease result = %+v", res)
	}
	checkInvariant(t, c)
	// Idempotence guard: expiring a dead host errors.
	if _, err := c.ExpireLease("h01"); err == nil {
		t.Fatal("ExpireLease on a dead host succeeded")
	}
}

func TestLeaseDisabledIsInert(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 2), Options{Seed: 1})
	if err := c.Heartbeat("h01"); err == nil {
		t.Fatal("Heartbeat succeeded without leases")
	}
	if tr := c.CheckLeases(); tr != nil {
		t.Fatalf("CheckLeases without leases = %v", tr)
	}
	if _, err := c.ExpireLease("h01"); err == nil {
		t.Fatal("ExpireLease succeeded without leases")
	}
	if _, err := c.StartLeaseLoop(time.Second); err == nil {
		t.Fatal("StartLeaseLoop succeeded without leases")
	}
}

// TestLeaseTransitionsRecoverByteIdentically: every lease transition is
// journaled, so a crash-and-reopen reproduces suspected/dead state (and
// the re-placements) byte-for-byte.
func TestLeaseTransitionsRecoverByteIdentically(t *testing.T) {
	clk := newTestClock()
	dir := t.TempDir()
	opts := leaseOpts(clk)
	fb := NewFlakyBackend(Uniform(4, 3), 7)
	c, _, err := Open(dir, fb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "web", Count: 6, Tenant: "ops"}); err != nil {
		t.Fatal(err)
	}
	fb.Silence("h01")
	clk.advance(11 * time.Second)
	for _, h := range []string{"h02", "h03", "h04"} {
		if err := c.Heartbeat(h); err != nil {
			t.Fatal(err)
		}
	}
	c.CheckLeases() // h01 suspected
	clk.advance(31 * time.Second)
	for _, h := range []string{"h02", "h03", "h04"} {
		if err := c.Heartbeat(h); err != nil {
			t.Fatal(err)
		}
	}
	c.CheckLeases() // h01 dead, VMs re-placed
	// h04 suspected, left mid-flight at the crash.
	fb.Silence("h04")
	clk.advance(11 * time.Second)
	for _, h := range []string{"h02", "h03"} {
		if err := c.Heartbeat(h); err != nil {
			t.Fatal(err)
		}
	}
	c.CheckLeases()
	if got := hostHealth(c, "h04"); got != Suspected {
		t.Fatalf("h04 = %s", got)
	}

	before := []byte(c.Status().JSON())
	c.Close()

	rec, info, err := Open(dir, NewFlakyBackend(Uniform(4, 3), 7), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !info.Recovered {
		t.Fatalf("nothing recovered: %+v", info)
	}
	if after := []byte(rec.Status().JSON()); !bytes.Equal(before, after) {
		t.Fatalf("lease state drifted across recovery:\n--- before\n%s\n--- after\n%s", before, after)
	}
	// The recovered suspected host keeps only the grace window: one
	// grace later it dies without a fresh TTL.
	clk.advance(21 * time.Second)
	tr := rec.CheckLeases()
	found := false
	for _, x := range tr {
		if x.Host == "h04" && x.To == Dead {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered suspected host did not expire after grace: %v", tr)
	}
}

// TestLeaseResurrectionRecovers: the renewed transition (suspected ->
// healthy) is a journal record too.
func TestLeaseResurrectionRecovers(t *testing.T) {
	clk := newTestClock()
	dir := t.TempDir()
	opts := leaseOpts(clk)
	c, _, err := Open(dir, Uniform(2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(11 * time.Second)
	if err := c.Heartbeat("h02"); err != nil {
		t.Fatal(err)
	}
	c.CheckLeases() // h01 suspected
	if err := c.Heartbeat("h01"); err != nil {
		t.Fatal(err)
	}
	if got := hostHealth(c, "h01"); got != Healthy {
		t.Fatalf("h01 = %s", got)
	}
	before := []byte(c.Status().JSON())
	c.Close()
	rec, _, err := Open(dir, Uniform(2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if after := []byte(rec.Status().JSON()); !bytes.Equal(before, after) {
		t.Fatalf("resurrection lost across recovery:\n--- before\n%s\n--- after\n%s", before, after)
	}
}

// TestLeaseExpiryConcurrentDrain interleaves clock-driven lease expiry
// with a concurrent drain and concurrent reservations under -race: the
// invariant (every VM placed or stranded exactly once) must hold
// whatever the interleaving.
func TestLeaseExpiryConcurrentDrain(t *testing.T) {
	clk := newTestClock()
	opts := leaseOpts(clk)
	opts.Retry = fastRetry(2)
	c := newTestCluster(t, Uniform(6, 4), opts)
	for i := 0; i < 4; i++ {
		if _, err := c.Reserve(Spec{Name: fmt.Sprintf("r%d", i), Count: 4, Tenant: fmt.Sprintf("t%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clk.advance(2 * time.Second)
			// h01 never renews; the rest do.
			for _, h := range []string{"h02", "h03", "h04", "h05", "h06"} {
				_ = c.Heartbeat(h)
			}
			c.CheckLeases()
		}
	}()
	go func() {
		defer wg.Done()
		_, _ = c.Drain("h02")
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("extra%d", i)
			_, _ = c.Reserve(Spec{Name: name, Count: 1, Tenant: "spare"})
			_ = c.Release(name)
		}
	}()
	wg.Wait()
	if got := hostHealth(c, "h01"); got != Dead {
		t.Fatalf("h01 after sustained silence = %s", got)
	}
	checkInvariant(t, c)
}

// TestLeaseLoopRuns exercises StartLeaseLoop end to end with a real
// ticker but an injected lease clock.
func TestLeaseLoopRuns(t *testing.T) {
	clk := newTestClock()
	fb := NewFlakyBackend(Uniform(2, 2), 1)
	c := newTestCluster(t, fb, leaseOpts(clk))
	stop, err := c.StartLeaseLoop(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartLeaseLoop(time.Millisecond); err == nil {
		t.Fatal("second lease loop started")
	}
	fb.Silence("h01")
	clk.advance(11 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for hostHealth(c, "h01") != Suspected && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	clk.advance(31 * time.Second)
	for hostHealth(c, "h01") != Dead && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if got := hostHealth(c, "h01"); got != Dead {
		t.Fatalf("h01 = %s after lease loop", got)
	}
	if got := hostHealth(c, "h02"); got != Healthy {
		t.Fatalf("h02 = %s (loop should renew it)", got)
	}
}
