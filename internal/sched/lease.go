package sched

import (
	"context"
	"fmt"
	"time"

	"autonetkit/internal/obs"
)

// Heartbeat leases: liveness under silence. Probes distinguish "host
// answered unhealthy" from "host answered healthy", but a host that
// stops answering *anything* needs a different machine — the igor/
// minimega clusters this models lose whole nodes to power and switch
// failures without a single probe error ever returning. Every host
// holds a lease renewed by heartbeats; a missed renewal window moves it
// to Suspected (no new placements, VMs stay), and a grace window later
// to Dead (capacity gone, VMs re-placed through the same machinery as
// FailHost). A late heartbeat resurrects a suspected or dead host.
//
// Determinism: lease decisions depend only on the injected clock
// (Options.Now) and renewal calls — no wall time in tests — and every
// transition is journaled, so a recovered cluster reports the same
// suspected/dead hosts byte-for-byte. Lease *clocks* are deliberately
// not durable: Open re-arms fresh windows (a restarted scheduler should
// not condemn every host for its own downtime); suspected hosts restart
// with only the grace window remaining.

// LeasePolicy configures heartbeat leases. The zero value disables
// them; set Enabled (and optionally the windows) to turn them on.
type LeasePolicy struct {
	// Enabled turns the lease state machine on.
	Enabled bool
	// TTL is the renewal window: a host silent for longer is Suspected
	// (<= 0 selects 15s).
	TTL time.Duration
	// Grace is the additional window a Suspected host gets before it is
	// declared Dead and its VMs re-placed (<= 0 selects 30s).
	Grace time.Duration
}

func (p LeasePolicy) ttl() time.Duration {
	if p.TTL <= 0 {
		return 15 * time.Second
	}
	return p.TTL
}

func (p LeasePolicy) grace() time.Duration {
	if p.Grace <= 0 {
		return 30 * time.Second
	}
	return p.Grace
}

// LeaseTransition records one host's lease state change from a
// CheckLeases pass (or an ExpireLease call).
type LeaseTransition struct {
	Host     string
	From, To Health
	// Moves/Stranded are populated for transitions to Dead: the VM
	// re-placements the death triggered.
	Moves    []Move
	Stranded []string
}

func (t LeaseTransition) String() string {
	switch t.To {
	case Dead:
		return fmt.Sprintf("%s: %s -> %s (%d VMs moved, %d stranded)",
			t.Host, t.From, t.To, len(t.Moves), len(t.Stranded))
	default:
		return fmt.Sprintf("%s: %s -> %s", t.Host, t.From, t.To)
	}
}

// armLeasesLocked starts (or restarts) every host's renewal window at
// now. Suspected hosts keep only the grace window: their TTL is already
// spent, and pretending otherwise would let a dead host linger an extra
// TTL after every restart. Lock held.
func (c *Cluster) armLeasesLocked(now time.Time) {
	ttl := c.opts.Lease.ttl()
	for _, name := range c.hostNames {
		h := c.hosts[name]
		switch h.health {
		case Suspected:
			h.renewedAt = now.Add(-ttl)
		default:
			h.renewedAt = now
		}
	}
}

// Heartbeat renews one host's lease. A renewal while Suspected or Dead
// resurrects the host (journaled, since it is a lease transition);
// renewals in ordinary states just move the window and are not durable.
// Renewing a Failed host is an error — operator verdicts outlive
// heartbeats.
func (c *Cluster) Heartbeat(host string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return err
	}
	if !c.opts.Lease.Enabled {
		return fmt.Errorf("sched: leases not enabled")
	}
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("sched: no host %s", host)
	}
	if h.health == Failed {
		return fmt.Errorf("sched: host %s has failed", host)
	}
	h.renewedAt = c.now()
	if h.health != Suspected && h.health != Dead {
		return nil
	}
	from := h.health
	h.health = Healthy
	h.fails, h.oks = 0, 0
	c.count(obs.CounterLeasesRenewed, 1)
	c.emit("lease-renewed", "%s resurrected by heartbeat (%s -> healthy)", host, from)
	c.admit()
	return c.journalAppend(record{Kind: recLease, Host: host, To: Healthy})
}

// Heartbeater is an optional Backend extension: backends that can tell
// whether a host's heartbeat arrived implement it, and HeartbeatAll
// consults them (an error means silence — no renewal). Backends without
// it renew every non-failed host (the in-process substrate cannot go
// silent on its own).
type Heartbeater interface {
	Heartbeat(host string) error
}

// HeartbeatAll runs one heartbeat round: every host's lease renews
// unless the backend (when it implements Heartbeater) reports silence.
// Returns the hosts that renewed, sorted.
func (c *Cluster) HeartbeatAll() []string {
	c.mu.Lock()
	if c.journalErr != nil || !c.opts.Lease.Enabled {
		c.mu.Unlock()
		return nil
	}
	names := make([]string, 0, len(c.hostNames))
	for _, name := range c.hostNames {
		if c.hosts[name].health != Failed {
			names = append(names, name)
		}
	}
	c.mu.Unlock()

	hb, _ := c.backend.(Heartbeater)
	var renewed []string
	for _, name := range names {
		if hb != nil && hb.Heartbeat(name) != nil {
			continue // silent: no renewal
		}
		if err := c.Heartbeat(name); err == nil {
			renewed = append(renewed, name)
		}
	}
	return renewed
}

// CheckLeases evaluates every host's lease against the injected clock:
// hosts silent past TTL become Suspected; hosts already Suspected and
// silent past TTL+Grace become Dead, their VMs re-placed like a host
// failure. A host never jumps Healthy -> Dead in one pass — death
// requires a second observation a grace window later. Every transition
// is journaled. Returns the transitions, in host order.
func (c *Cluster) CheckLeases() []LeaseTransition {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journalErr != nil || !c.opts.Lease.Enabled {
		return nil
	}
	now := c.now()
	ttl, grace := c.opts.Lease.ttl(), c.opts.Lease.grace()
	var out []LeaseTransition
	for _, name := range c.hostNames {
		h := c.hosts[name]
		switch h.health {
		case Healthy, Unhealthy:
			if now.Sub(h.renewedAt) > ttl {
				out = append(out, c.suspectLocked(name, h))
			}
		case Suspected:
			if now.Sub(h.renewedAt) > ttl+grace {
				out = append(out, c.expireLocked(name, h))
			}
		}
	}
	return out
}

// suspectLocked moves a host to Suspected and journals the transition.
// Lock held.
func (c *Cluster) suspectLocked(name string, h *hostState) LeaseTransition {
	from := h.health
	h.health = Suspected
	c.count(obs.CounterLeasesSuspected, 1)
	c.emit("lease-suspect", "%s missed its lease renewal (%d VMs stay until the grace window)", name, len(h.vms))
	_ = c.journalAppend(record{Kind: recLease, Host: name, To: Suspected})
	return LeaseTransition{Host: name, From: from, To: Suspected}
}

// expireLocked declares a Suspected host Dead and re-places its VMs
// (same machinery as FailHost; orphans with nowhere to go strand on
// their reservations). Journals one outcome record carrying the moves.
// Lock held.
func (c *Cluster) expireLocked(name string, h *hostState) LeaseTransition {
	from := h.health
	h.health = Dead
	c.count(obs.CounterLeasesExpired, 1)
	c.emit("lease-expired", "%s silent past the grace window: declared dead with %d VMs aboard", name, len(h.vms))
	res, _ := c.replaceLocked(context.Background(), "lease-expired "+name, h, false)
	_ = c.journalAppend(record{Kind: recLeaseDead, Host: name, Moves: res.Moves, Stranded: res.Stranded})
	if len(res.Stranded) > 0 {
		c.emit("degraded", "lease-expired %s: %s", name, res.Report.Summary())
	}
	return LeaseTransition{Host: name, From: from, To: Dead, Moves: res.Moves, Stranded: res.Stranded}
}

// ExpireLease forces one host through the full lease collapse right now
// — suspect (if not already), then dead with re-placement — without
// waiting on the clock. This is the deterministic seam chaos drills use
// to model sudden silence; both transitions journal exactly as the
// clock-driven path would (a crash between them recovers a Suspected
// host, a valid intermediate state).
func (c *Cluster) ExpireLease(host string) (DrainResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return DrainResult{}, err
	}
	if !c.opts.Lease.Enabled {
		return DrainResult{}, fmt.Errorf("sched: leases not enabled")
	}
	start := c.now()
	h, ok := c.hosts[host]
	if !ok {
		return DrainResult{}, fmt.Errorf("sched: no host %s", host)
	}
	switch h.health {
	case Failed:
		return DrainResult{}, fmt.Errorf("sched: host %s has failed", host)
	case Dead:
		return DrainResult{}, fmt.Errorf("sched: host %s is already dead", host)
	case Suspected:
	default:
		c.suspectLocked(host, h)
	}
	if err := c.usableLocked(); err != nil { // the suspect record may have failed
		return DrainResult{}, err
	}
	tr := c.expireLocked(host, h)
	res := DrainResult{Host: host, Moves: tr.Moves, Stranded: tr.Stranded, Duration: c.now().Sub(start)}
	c.count(obs.CounterDrainDuration, res.Duration.Milliseconds())
	if err := c.usableLocked(); err != nil {
		return res, err
	}
	if len(res.Stranded) > 0 {
		res.Report = c.capacityLocked(len(res.Stranded))
		return res, &DegradedError{Op: "lease-expired " + host, Stranded: res.Stranded, Report: res.Report}
	}
	return res, nil
}

// StartLeaseLoop runs heartbeat + lease-check rounds every interval
// until the returned stop function is called: HeartbeatAll renews what
// the backend vouches for, CheckLeases condemns the rest. Only one loop
// may run at a time.
func (c *Cluster) StartLeaseLoop(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		interval = time.Second
	}
	c.mu.Lock()
	if !c.opts.Lease.Enabled {
		c.mu.Unlock()
		return nil, fmt.Errorf("sched: leases not enabled")
	}
	if c.leaseStop != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("sched: lease loop already running")
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	c.leaseStop, c.leaseDone = stopCh, doneCh
	c.mu.Unlock()

	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				c.HeartbeatAll()
				c.CheckLeases()
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
		c.mu.Lock()
		c.leaseStop, c.leaseDone = nil, nil
		c.mu.Unlock()
	}, nil
}
