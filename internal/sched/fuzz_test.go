package sched

import (
	"strings"
	"testing"
)

// FuzzParseSpec asserts the reservation-spec parser never panics, never
// over-allocates, and that every accepted spec round-trips through its
// canonical form.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"web vms=12",
		"web vms=a,b,c tenant=alice policy=spread spread=1 weight=3",
		"bgp-lab vms=200 policy=spread",
		"x vms=1048576",
		"x vms=0",
		"x vms=a,,b",
		"x vms=3 vms=4",
		"x vms=3 policy=chaotic",
		"= vms=3",
		"x\tvms=2\tweight=9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		sp, err := ParseSpec(line)
		if err != nil {
			return
		}
		// Accepted specs are valid and canonical: String() re-parses to
		// the same canonical form.
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted %q but Validate rejects: %v", line, verr)
		}
		canon := sp.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, line, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
		// Generated VM counts stay bounded.
		if sp.Count > maxSpecVMs || len(sp.VMs) > maxSpecVMs {
			t.Fatalf("spec %q exceeds VM bound", line)
		}
		// No whitespace smuggling into names.
		for _, vm := range sp.VMs {
			if strings.ContainsAny(vm, " \t\n") {
				t.Fatalf("VM name %q contains whitespace", vm)
			}
		}
	})
}
