package sched

import (
	"fmt"
	"sync"
)

// HostInfo describes one substrate host: a name and how many VMs it can
// hold (the paper's §3.2 observation — emulation scale is bounded by host
// memory).
type HostInfo struct {
	Name     string
	Capacity int
}

// Backend abstracts the substrate a Cluster schedules onto. The shipped
// implementation is the in-process emulation backend (StaticBackend);
// real substrates (netkit host fleets, StarBed) implement the same three
// calls.
//
// All methods may be called concurrently.
type Backend interface {
	// Discover enumerates the substrate's hosts. Called once, at New.
	Discover() ([]HostInfo, error)
	// Probe checks one host's health; nil means healthy. The cluster's
	// health policy turns consecutive failures into an unhealthy mark.
	Probe(host string) error
	// Migrate carries out one VM's live re-placement from one host to
	// another (attempt is 1-based). An error makes the cluster retry
	// under its bounded retry policy. For an abrupt host failure the
	// from host is already dead; Migrate then models the re-launch on
	// the target.
	Migrate(vm, from, to string, attempt int) error
}

// StaticBackend is the in-process emulation backend: a fixed host list
// with injectable probe and migration faults, so tests and chaos drills
// can model flaky hardware.
type StaticBackend struct {
	hosts []HostInfo

	mu      sync.Mutex
	probe   func(host string) error
	migrate func(vm, from, to string, attempt int) error
}

// NewStaticBackend builds a backend over an explicit host list.
func NewStaticBackend(hosts ...HostInfo) *StaticBackend {
	return &StaticBackend{hosts: hosts}
}

// Uniform builds a backend of n identical hosts named h01..hNN with the
// given per-host VM capacity.
func Uniform(n, capacity int) *StaticBackend {
	width := len(fmt.Sprint(n))
	if width < 2 {
		width = 2
	}
	hosts := make([]HostInfo, 0, n)
	for i := 1; i <= n; i++ {
		hosts = append(hosts, HostInfo{Name: fmt.Sprintf("h%0*d", width, i), Capacity: capacity})
	}
	return NewStaticBackend(hosts...)
}

// Discover returns the configured host list.
func (b *StaticBackend) Discover() ([]HostInfo, error) {
	out := make([]HostInfo, len(b.hosts))
	copy(out, b.hosts)
	return out, nil
}

// SetProbeFunc installs a health-probe fault injector (nil restores the
// always-healthy default). Safe to call while the cluster is probing.
func (b *StaticBackend) SetProbeFunc(fn func(host string) error) {
	b.mu.Lock()
	b.probe = fn
	b.mu.Unlock()
}

// SetMigrateFunc installs a migration fault injector (nil restores the
// always-succeeds default). Safe to call while the cluster is draining.
func (b *StaticBackend) SetMigrateFunc(fn func(vm, from, to string, attempt int) error) {
	b.mu.Lock()
	b.migrate = fn
	b.mu.Unlock()
}

// Probe runs the injected probe, or reports healthy.
func (b *StaticBackend) Probe(host string) error {
	b.mu.Lock()
	fn := b.probe
	b.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(host)
}

// Migrate runs the injected migration hook, or succeeds immediately.
func (b *StaticBackend) Migrate(vm, from, to string, attempt int) error {
	b.mu.Lock()
	fn := b.migrate
	b.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(vm, from, to, attempt)
}
