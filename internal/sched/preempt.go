package sched

import (
	"sort"

	"autonetkit/internal/obs"
)

// Deterministic preemption: when Options.Preempt is set and a new
// reservation cannot fit, reservations whose tenants carry strictly
// lower fair-share weight are evicted — re-queued, not failed — until
// the newcomer places. The victim order is a total order (lowest weight
// first, then youngest arrival, then name), and the chosen set is the
// shortest prefix of that order whose eviction lets the newcomer place
// all-or-nothing; if even evicting every candidate is not enough, all
// of them are restored untouched. Everything here is a pure function of
// (cluster state, spec, seed), so the journaled reserve command record
// replays the same evictions byte-for-byte.

// preemptLocked tries to make room for r by evicting lower-weight
// reservations. Returns true when r ended up fully placed. Lock held;
// called from reserveLocked after tryPlace failed.
func (c *Cluster) preemptLocked(r *reservation) bool {
	if !c.opts.Preempt {
		return false
	}
	w := c.weight(r.spec.tenant())
	var cands []*reservation
	for _, v := range c.res {
		if v == r || (v.state != ResActive && v.state != ResDegraded) {
			continue
		}
		if c.weight(v.spec.tenant()) >= w {
			continue
		}
		cands = append(cands, v)
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(i, j int) bool {
		wi, wj := c.weight(cands[i].spec.tenant()), c.weight(cands[j].spec.tenant())
		if wi != wj {
			return wi < wj // cheapest victims first
		}
		if cands[i].seq != cands[j].seq {
			return cands[i].seq > cands[j].seq // youngest first
		}
		return cands[i].spec.Name < cands[j].spec.Name
	})

	// Evict greedily, snapshotting each victim so a failed fit restores
	// the cluster exactly.
	type saved struct {
		r         *reservation
		placement map[string]string
		stranded  map[string]bool
		state     ResState
		preempted bool
	}
	var evicted []saved
	placed := false
	for _, v := range cands {
		evicted = append(evicted, saved{
			r:         v,
			placement: v.placement,
			stranded:  v.stranded,
			state:     v.state,
			preempted: v.preempted,
		})
		for vm, host := range v.placement {
			delete(c.hosts[host].vms, vm)
		}
		v.placement = map[string]string{}
		v.stranded = map[string]bool{}
		v.state = ResQueued
		v.preempted = true
		if c.tryPlace(r) {
			placed = true
			break
		}
	}
	if !placed {
		for i := len(evicted) - 1; i >= 0; i-- {
			s := evicted[i]
			s.r.placement = s.placement
			s.r.stranded = s.stranded
			s.r.state = s.state
			s.r.preempted = s.preempted
			for vm, host := range s.placement {
				c.hosts[host].vms[vm] = s.r.spec.Name
			}
		}
		return false
	}
	for _, s := range evicted {
		c.count(obs.CounterPreemptions, 1)
		c.emit("preempt", "%s: %d VMs evicted for %s (weight %d < %d), re-queued",
			s.r.spec.Name, len(s.r.vms), r.spec.Name, c.weight(s.r.spec.tenant()), w)
	}
	return true
}
