package sched

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"web vms=12",
		"web vms=12 tenant=alice",
		"web vms=a,b,c tenant=alice policy=spread spread=1 weight=3",
		"bgp-lab vms=200 policy=spread",
		"x vms=r1,r2",
	}
	for _, in := range cases {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got := sp.String(); got != in {
			t.Errorf("round-trip %q -> %q", in, got)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", sp.String(), err)
		}
		if again.String() != sp.String() {
			t.Errorf("canonical form unstable: %q vs %q", again.String(), sp.String())
		}
	}
}

func TestParseSpecDefaultsElided(t *testing.T) {
	sp, err := ParseSpec("web vms=3 policy=pack")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.String(); got != "web vms=3" {
		t.Errorf("pack policy should elide from canonical form, got %q", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", "empty"},
		{"vms=3", "must start with a reservation name"},
		{"web", "needs vms="},
		{"web vms=0", "out of range"},
		{"web vms=-2", "out of range"},
		{"web vms=9999999999", "out of range"},
		{"web vms=a,,b", "empty VM name"},
		{"web vms=a,a", "duplicate VM name"},
		{"web vms=3 vms=4", "duplicate spec key"},
		{"web vms=3 policy=chaotic", "unknown policy"},
		{"web vms=3 spread=0", "bad spread"},
		{"web vms=3 spread=x", "bad spread"},
		{"web vms=3 weight=0", "bad weight"},
		{"web vms=3 color=red", "unknown spec key"},
		{"web vms=3 tenant=", "not key=value"},
		{"web notakv", "not key=value"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): want error containing %q, got nil", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q): error %q does not mention %q", c.in, err, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Count: 2, VMs: []string{"a"}},
		{Name: "x", Count: maxSpecVMs + 1},
		{Name: "x", VMs: []string{"a", "a"}},
		{Name: "x", VMs: []string{""}},
		{Name: "x", Count: 1, Spread: -1},
		{Name: "x", Count: 1, Weight: -1},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, sp)
		}
	}
	if err := (Spec{Name: "x", Count: 1}).Validate(); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
}

func TestSpecVMNames(t *testing.T) {
	sp := Spec{Name: "web", Count: 3}
	got := sp.vmNames()
	want := []string{"web-vm001", "web-vm002", "web-vm003"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vmNames = %v, want %v", got, want)
		}
	}
	// Explicit names come back sorted regardless of input order.
	sp = Spec{Name: "web", VMs: []string{"c", "a", "b"}}
	got = sp.vmNames()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("explicit vmNames not sorted: %v", got)
	}
	// Wide counts widen the suffix.
	sp = Spec{Name: "w", Count: 1200}
	if names := sp.vmNames(); names[0] != "w-vm0001" || names[1199] != "w-vm1200" {
		t.Fatalf("wide vmNames wrong: %s .. %s", names[0], names[1199])
	}
}
