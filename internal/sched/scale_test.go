package sched

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"autonetkit/internal/topogen"
)

// nrenVMNames returns the 1158 router names of the paper's §3.2
// European-interconnect model, sharded into n reservations.
func nrenVMNames(t testing.TB, shards int) [][]string {
	t.Helper()
	g, err := topogen.NREN(topogen.DefaultNREN())
	if err != nil {
		t.Fatal(err)
	}
	ids := g.SortedNodeIDs()
	out := make([][]string, shards)
	for i, id := range ids {
		out[i%shards] = append(out[i%shards], string(id))
	}
	return out
}

// TestScaleNRENDrainUnderLoad is the acceptance drill: the 42-AS /
// 1158-router model sharded into 8 reservations across 36 emulated hosts;
// drain and fail hosts under load; zero lost or duplicated VMs and an
// identical final placement across repeated runs with the same seed.
func TestScaleNRENDrainUnderLoad(t *testing.T) {
	shards := nrenVMNames(t, 8)
	run := func(seed uint64) Status {
		c := newTestCluster(t, Uniform(36, 40), Options{Seed: seed})
		for i, vms := range shards {
			sp := Spec{
				Name:   fmt.Sprintf("as-shard-%d", i),
				Tenant: fmt.Sprintf("team%d", i%3),
				VMs:    vms,
			}
			if i%2 == 1 {
				sp.Policy = PolicySpread
			}
			if _, err := c.Reserve(sp); err != nil {
				t.Fatal(err)
			}
		}
		// Drain three hosts and hard-fail one while fully loaded
		// (1158 VMs in 1440 slots; 4 hosts out leaves 1280 slots).
		for _, h := range []string{"h05", "h17", "h29"} {
			if _, err := c.Drain(h); err != nil {
				t.Fatalf("drain %s: %v", h, err)
			}
			checkInvariant(t, c)
		}
		if _, err := c.FailHost("h11"); err != nil && !errors.Is(err, ErrDegraded) {
			t.Fatalf("fail h11: %v", err)
		}
		checkInvariant(t, c)

		st := c.Status()
		placed := 0
		for _, r := range st.Reservations {
			if r.State != ResActive {
				t.Fatalf("reservation %s = %s after drains, want active", r.Name, r.State)
			}
			placed += len(r.Placement)
		}
		if placed != 1158 {
			t.Fatalf("placed %d VMs, want 1158", placed)
		}
		return st
	}
	st1 := run(2013)
	st2 := run(2013)
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("same seed produced different final placements at NREN scale")
	}
	if reflect.DeepEqual(st1.Hosts, run(2014).Hosts) {
		t.Fatal("different seeds produced identical placements; tie-break not seed-keyed")
	}
}

// TestScaleConcurrentReservations places the 8 NREN shards from 8
// goroutines while hosts drain concurrently: the multiset invariant must
// hold regardless of interleaving (determinism is only promised for
// sequential runs).
func TestScaleConcurrentReservations(t *testing.T) {
	shards := nrenVMNames(t, 8)
	c := newTestCluster(t, Uniform(36, 40), Options{Seed: 7})
	var wg sync.WaitGroup
	for i, vms := range shards {
		i, vms := i, vms
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Reserve(Spec{Name: fmt.Sprintf("as-shard-%d", i), VMs: vms}); err != nil {
				t.Errorf("shard %d: %v", i, err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, h := range []string{"h02", "h20", "h33"} {
			if _, err := c.Drain(h); err != nil && !errors.Is(err, ErrDegraded) {
				t.Errorf("drain %s: %v", h, err)
			}
		}
	}()
	wg.Wait()
	checkInvariant(t, c)
	st := c.Status()
	total := 0
	for _, r := range st.Reservations {
		total += len(r.Placement) + len(r.Stranded)
		if r.State == ResQueued {
			total += r.VMs
		}
	}
	if total != 1158 {
		t.Fatalf("VM multiset total %d, want 1158", total)
	}
}
