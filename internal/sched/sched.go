// Package sched is the reservation-based cluster scheduler over emulation
// host pools: named reservations request VM capacity, a deterministic
// bin-packer places them across hundreds of hosts, and a fair-share queue
// absorbs demand beyond capacity instead of failing it. Robustness is the
// point — periodic health probes mark flaky hosts unhealthy, Cordon stops
// new placements, and Drain live re-places a host's VMs onto surviving
// capacity with bounded retry + backoff, degrading gracefully (ErrDegraded
// with a structured capacity report) when the cluster cannot absorb the
// load. The substrate sits behind the Backend interface: in-process
// emulation now (StaticBackend, the deploy package's lab hosts), real
// netkit/StarBed fleets later — the igor-style reservation model from
// minimega, grown onto the paper's §3.3 multi-host deployments.
//
// Determinism: every placement and queue decision is byte-deterministic
// given (specs, seed). Hosts are ranked by (free capacity, seed-keyed FNV
// hash, name) — the hash de-correlates which physical host fills first
// across seeds while keeping any single seed fully reproducible; VMs place
// in sorted name order; tenants admit in sorted (share, name) order; every
// event sequence replays identically.
package sched

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"autonetkit/internal/journal"
	"autonetkit/internal/obs"
	"autonetkit/internal/retry"
)

// Health is one host's probed health dimension (cordoning is tracked
// separately: a cordoned host can be perfectly healthy).
type Health string

// Host health states.
const (
	Healthy   Health = "healthy"
	Unhealthy Health = "unhealthy"
	Failed    Health = "failed"
	// Suspected: the host missed its lease-renewal window — it may be
	// dead or merely silent. No new placements; its VMs stay put until
	// the grace window decides.
	Suspected Health = "suspected"
	// Dead: the host stayed silent past the grace window. Its capacity
	// is gone and its VMs were re-placed (or stranded) like a FailHost,
	// but a late heartbeat can still resurrect it (unlike Failed, which
	// is an operator verdict).
	Dead Health = "dead"
)

// ResState is a reservation's lifecycle state.
type ResState string

// Reservation states.
const (
	// ResActive: every VM is placed on a host.
	ResActive ResState = "active"
	// ResQueued: waiting in the fair-share queue for capacity.
	ResQueued ResState = "queued"
	// ResDegraded: placed, but some VMs are stranded (their host failed
	// and no surviving capacity could absorb them yet). Stranded VMs
	// re-place automatically as capacity frees.
	ResDegraded ResState = "degraded"
)

// HealthPolicy configures the probe thresholds.
type HealthPolicy struct {
	// FailAfter marks a host unhealthy after this many consecutive probe
	// failures (<= 0 selects 3).
	FailAfter int
	// RecoverAfter returns an unhealthy host to service after this many
	// consecutive probe successes (<= 0 selects 2).
	RecoverAfter int
	// AutoDrain drains a host's VMs onto surviving capacity as soon as
	// the probes mark it unhealthy.
	AutoDrain bool
}

func (p HealthPolicy) failAfter() int {
	if p.FailAfter <= 0 {
		return 3
	}
	return p.FailAfter
}

func (p HealthPolicy) recoverAfter() int {
	if p.RecoverAfter <= 0 {
		return 2
	}
	return p.RecoverAfter
}

// Options configures a Cluster.
type Options struct {
	// Seed keys the deterministic tie-breaks between equally-free hosts.
	// Any value (including 0) is fully reproducible; different seeds
	// de-correlate which host fills first.
	Seed uint64
	// Health configures the probe thresholds.
	Health HealthPolicy
	// Lease configures heartbeat leases (liveness under silence): hosts
	// that stop renewing are suspected, then declared dead and their VMs
	// re-placed. Disabled unless Lease.Enabled.
	Lease LeasePolicy
	// Preempt lets a reservation whose tenant has strictly higher
	// fair-share weight evict lower-weight reservations when it cannot
	// fit — the minimal-cost victim set, deterministically chosen.
	// Victims re-queue (keeping their arrival order) instead of failing.
	Preempt bool
	// Retry bounds per-VM migration attempts during drains (the shared
	// deploy retry policy: exponential backoff, deterministic jitter).
	Retry retry.Policy
	// Obs, when set, collects scheduler counters (host_cordoned,
	// vms_replaced, reservations_queued, drain_duration, ...).
	Obs *obs.Collector
	// OnEvent, when set, receives every cluster event as it happens.
	OnEvent func(Event)
	// Now is the drain-duration clock (test seam; nil selects time.Now).
	Now func() time.Time
	// Journal configures the durability log used by Open (fsync policy,
	// crash-injection seam); New ignores it. Journal.Obs defaults to Obs.
	Journal journal.Options
	// SnapshotEvery compacts the journal after this many appended records
	// (<= 0 selects 64). Open only.
	SnapshotEvery int
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery <= 0 {
		return 64
	}
	return o.SnapshotEvery
}

// Event is one cluster state change, in sequence order.
type Event struct {
	Seq    int
	Kind   string // reserve, queue, admit, release, cordon, uncordon, unhealthy, recovered, host-failed, replace, stranded, drain, degraded
	Detail string
}

func (e Event) String() string { return fmt.Sprintf("#%03d %-11s %s", e.Seq, e.Kind, e.Detail) }

// ErrDegraded is wrapped by every error the cluster returns when
// surviving capacity cannot absorb a request or a re-placement: the
// operation completed as far as possible (state intact, partial moves
// committed) instead of failing or hanging.
var ErrDegraded = errors.New("sched: degraded: insufficient surviving capacity")

// DegradedError is the structured degradation report: which operation
// degraded, which VMs are stranded, and the cluster's capacity at that
// moment. errors.Is(err, ErrDegraded) holds.
type DegradedError struct {
	Op       string
	Stranded []string
	Report   CapacityReport
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%v: %s stranded %d VMs (%s); %s",
		ErrDegraded, e.Op, len(e.Stranded), strings.Join(e.Stranded, ", "), e.Report.Summary())
}

func (e *DegradedError) Unwrap() error { return ErrDegraded }

// Move records one VM's re-placement.
type Move struct {
	VM, From, To string
	Reservation  string
}

// DrainResult is the outcome of a Drain or FailHost: the moves that
// happened, the VMs that could not be re-placed, and how long it took.
type DrainResult struct {
	Host     string
	Moves    []Move   // sorted by VM
	Stranded []string // sorted; non-empty iff the error wraps ErrDegraded
	Duration time.Duration
	Report   CapacityReport
}

type hostState struct {
	info     HostInfo
	cordoned bool
	health   Health
	vms      map[string]string // vm -> reservation
	fails    int               // consecutive probe failures
	oks      int               // consecutive probe successes while unhealthy
	// renewedAt is the host's last lease renewal (leases enabled only).
	// Not durable: Open re-arms fresh windows rather than condemning
	// every host for the downtime.
	renewedAt time.Time
}

func (h *hostState) free() int { return h.info.Capacity - len(h.vms) }

func (h *hostState) schedulable() bool { return h.health == Healthy && !h.cordoned }

// stateLabel renders the host's combined state for status output; the
// most serious dimension wins.
func (h *hostState) stateLabel() string {
	switch {
	case h.health == Failed:
		return string(Failed)
	case h.health == Dead:
		return string(Dead)
	case h.health == Suspected:
		return string(Suspected)
	case h.health == Unhealthy:
		return string(Unhealthy)
	case h.cordoned:
		return "cordoned"
	default:
		return string(Healthy)
	}
}

type reservation struct {
	spec      Spec
	vms       []string // sorted, fixed at Reserve
	state     ResState
	placement map[string]string // vm -> host
	stranded  map[string]bool
	seq       int  // arrival order (FIFO within tenant)
	preempted bool // evicted by a higher-weight reservation; cleared on re-admission
}

// Cluster owns a pool of substrate hosts and schedules reservations onto
// them. All methods are safe for concurrent use; mutations serialise on
// one lock, so interleaved Reserve/Drain/Fail sequences stay atomic.
type Cluster struct {
	mu      sync.Mutex
	backend Backend
	opts    Options

	hosts     map[string]*hostState
	hostNames []string // sorted
	res       map[string]*reservation
	weights   map[string]int // tenant -> fair-share weight
	resSeq    int
	eventSeq  int
	events    []Event

	// Durability (set by Open; nil journal = in-memory only, as New).
	journal      *journal.Log
	journalErr   error // first journal failure; poisons all mutators
	replaying    bool  // replay in progress: suppress events, counters, appends
	appendsSince int   // records since the last snapshot compaction

	probeStop chan struct{}
	probeDone chan struct{}
	leaseStop chan struct{}
	leaseDone chan struct{}
}

// New builds a cluster over the backend's discovered hosts.
func New(b Backend, opts Options) (*Cluster, error) {
	infos, err := b.Discover()
	if err != nil {
		return nil, fmt.Errorf("sched: discovering hosts: %w", err)
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("sched: backend has no hosts")
	}
	c := &Cluster{
		backend: b,
		opts:    opts,
		hosts:   map[string]*hostState{},
		res:     map[string]*reservation{},
		weights: map[string]int{},
	}
	for _, info := range infos {
		if info.Name == "" {
			return nil, fmt.Errorf("sched: backend discovered a host with an empty name")
		}
		if info.Capacity <= 0 {
			return nil, fmt.Errorf("sched: host %s discovered with non-positive capacity %d (backend misconfigured?)", info.Name, info.Capacity)
		}
		if _, dup := c.hosts[info.Name]; dup {
			return nil, fmt.Errorf("sched: backend discovered duplicate host %s (capacity would double-count)", info.Name)
		}
		c.hosts[info.Name] = &hostState{info: info, health: Healthy, vms: map[string]string{}}
		c.hostNames = append(c.hostNames, info.Name)
	}
	sort.Strings(c.hostNames)
	if opts.Lease.Enabled {
		c.armLeasesLocked(c.now())
	}
	return c, nil
}

func (c *Cluster) now() time.Time {
	if c.opts.Now != nil {
		return c.opts.Now()
	}
	return time.Now()
}

// emit appends an event (lock held). Events are observability, not
// durable state: replay re-derives the state silently, so a recovered
// cluster's event log starts fresh rather than re-announcing history.
func (c *Cluster) emit(kind, format string, args ...any) {
	if c.replaying {
		return
	}
	c.eventSeq++
	ev := Event{Seq: c.eventSeq, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	c.events = append(c.events, ev)
	if c.opts.OnEvent != nil {
		c.opts.OnEvent(ev)
	}
}

// count bumps an obs counter unless a replay is re-deriving state (the
// work being counted already happened, in the previous process).
func (c *Cluster) count(name string, delta int64) {
	if c.replaying {
		return
	}
	c.opts.Obs.Add(name, delta)
}

// usableLocked refuses mutations after a journal failure: the in-memory
// state may be ahead of disk, and only a reopen (sched.Open) re-establishes
// agreement. Lock held.
func (c *Cluster) usableLocked() error {
	if c.journalErr != nil {
		return fmt.Errorf("sched: journal failed, reopen required: %w", c.journalErr)
	}
	return nil
}

// Events returns every cluster event so far, in sequence order.
func (c *Cluster) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// tieKey is the seed-keyed deterministic tie-break between equally-free
// hosts: FNV-1a over (seed, host name).
func (c *Cluster) tieKey(host string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", c.opts.Seed, host)
	return h.Sum64()
}

// rankedHosts returns the schedulable hosts able to take at least one more
// VM of the given reservation, ordered for its policy: pack = ascending
// free capacity (fill the fullest first), spread = descending free
// capacity; ties break on (seed-keyed hash, name). exclude names a host to
// skip (the drain source). Lock held.
func (c *Cluster) rankedHosts(r *reservation, exclude string) []*hostState {
	spreadCap := r.spec.Spread
	perHost := map[string]int{}
	for _, h := range r.placement {
		perHost[h]++
	}
	var out []*hostState
	for _, name := range c.hostNames {
		h := c.hosts[name]
		if name == exclude || !h.schedulable() || h.free() <= 0 {
			continue
		}
		if spreadCap > 0 && perHost[name] >= spreadCap {
			continue
		}
		out = append(out, h)
	}
	asc := r.spec.policy() == PolicyPack
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].free(), out[j].free()
		if fi != fj {
			if asc {
				return fi < fj
			}
			return fi > fj
		}
		ki, kj := c.tieKey(out[i].info.Name), c.tieKey(out[j].info.Name)
		if ki != kj {
			return ki < kj
		}
		return out[i].info.Name < out[j].info.Name
	})
	return out
}

// tryPlace attempts all-or-nothing placement of the reservation's
// unplaced VMs (lock held). On success the assignments are committed and
// true is returned; on failure the cluster is untouched.
func (c *Cluster) tryPlace(r *reservation) bool {
	var todo []string
	for _, vm := range r.vms {
		if _, ok := r.placement[vm]; !ok {
			todo = append(todo, vm)
		}
	}
	if len(todo) == 0 {
		return true
	}
	assign, ok := c.planPlacement(r, todo, "")
	if !ok {
		return false
	}
	c.commit(r, assign)
	return true
}

// planPlacement computes host assignments for the given VMs without
// mutating state. Pack fills hosts in rank order; spread deals VMs
// round-robin across the ranked hosts. Returns ok=false if any VM cannot
// be placed. Lock held.
func (c *Cluster) planPlacement(r *reservation, vms []string, exclude string) (map[string]string, bool) {
	ranked := c.rankedHosts(r, exclude)
	if len(ranked) == 0 {
		return nil, false
	}
	// Scratch per-host headroom: free slots, further bounded by the
	// reservation's spread cap.
	room := make([]int, len(ranked))
	for i, h := range ranked {
		room[i] = h.free()
		if cap := r.spec.Spread; cap > 0 {
			already := 0
			for _, ph := range r.placement {
				if ph == h.info.Name {
					already++
				}
			}
			if rem := cap - already; rem < room[i] {
				room[i] = rem
			}
		}
	}
	assign := make(map[string]string, len(vms))
	switch r.spec.policy() {
	case PolicySpread:
		// Deal one VM per host, cycling the ranked ring, skipping
		// exhausted hosts.
		i := 0
		for _, vm := range vms {
			placed := false
			for probe := 0; probe < len(ranked); probe++ {
				j := (i + probe) % len(ranked)
				if room[j] > 0 {
					assign[vm] = ranked[j].info.Name
					room[j]--
					i = j + 1
					placed = true
					break
				}
			}
			if !placed {
				return nil, false
			}
		}
	default: // pack
		j := 0
		for _, vm := range vms {
			for j < len(ranked) && room[j] == 0 {
				j++
			}
			if j >= len(ranked) {
				return nil, false
			}
			assign[vm] = ranked[j].info.Name
			room[j]--
		}
	}
	return assign, true
}

// commit applies a planned placement (lock held).
func (c *Cluster) commit(r *reservation, assign map[string]string) {
	for vm, host := range assign {
		r.placement[vm] = host
		delete(r.stranded, vm)
		c.hosts[host].vms[vm] = r.spec.Name
	}
}

// ReservationStatus is a reservation's public snapshot.
type ReservationStatus struct {
	Name      string            `json:"name"`
	Tenant    string            `json:"tenant"`
	State     ResState          `json:"state"`
	Weight    int               `json:"weight"`
	VMs       int               `json:"vms"`
	Hosts     []string          `json:"hosts,omitempty"`
	Stranded  []string          `json:"stranded,omitempty"`
	Placement map[string]string `json:"placement,omitempty"`
	Preempted bool              `json:"preempted,omitempty"`
}

// Reserve requests capacity. When the cluster can hold the whole
// reservation it places immediately (state active); otherwise the request
// joins the fair-share queue (state queued) and admits automatically as
// capacity frees — queueing is not an error.
func (c *Cluster) Reserve(sp Spec) (ReservationStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return ReservationStatus{}, err
	}
	st, err := c.reserveLocked(sp)
	if err != nil {
		return st, err
	}
	if jerr := c.journalAppend(record{Kind: recReserve, Spec: &sp}); jerr != nil {
		return st, jerr
	}
	return st, nil
}

// reserveLocked is Reserve's deterministic core: placement and queueing
// decided purely by (state, spec, seed), so replaying the journaled spec
// through it re-derives the identical outcome. Lock held.
func (c *Cluster) reserveLocked(sp Spec) (ReservationStatus, error) {
	if err := sp.Validate(); err != nil {
		return ReservationStatus{}, err
	}
	if _, dup := c.res[sp.Name]; dup {
		return ReservationStatus{}, fmt.Errorf("sched: reservation %s already exists", sp.Name)
	}
	vms := sp.vmNames()
	for _, vm := range vms {
		for _, other := range c.res {
			if _, clash := other.placement[vm]; clash || other.stranded[vm] {
				return ReservationStatus{}, fmt.Errorf("sched: VM %s already held by reservation %s", vm, other.spec.Name)
			}
			for _, ovm := range other.vms {
				if ovm == vm {
					return ReservationStatus{}, fmt.Errorf("sched: VM %s already held by reservation %s", vm, other.spec.Name)
				}
			}
		}
	}
	tenant := sp.tenant()
	if sp.Weight > 0 {
		c.weights[tenant] = sp.Weight
	} else if _, ok := c.weights[tenant]; !ok {
		c.weights[tenant] = 1
	}
	c.resSeq++
	r := &reservation{
		spec:      sp,
		vms:       vms,
		placement: map[string]string{},
		stranded:  map[string]bool{},
		seq:       c.resSeq,
	}
	c.res[sp.Name] = r
	// FIFO within tenant: a new request never jumps the tenant's own
	// queue, even if it would fit right now.
	if c.queuedHead(tenant) != nil {
		r.state = ResQueued
		c.count(obs.CounterReservationsQueued, 1)
		c.emit("queue", "%s: %d VMs queued behind tenant %s's earlier request", sp.Name, len(vms), tenant)
		return c.statusOf(r), nil
	}
	placed, preempted := c.tryPlace(r), false
	if !placed && c.preemptLocked(r) {
		placed, preempted = true, true
	}
	if placed {
		r.state = ResActive
		c.emit("reserve", "%s: %d VMs placed across %d hosts (tenant %s, policy %s)",
			sp.Name, len(vms), len(hostSet(r.placement)), tenant, sp.policy())
		if preempted {
			// Evicted victims may still fit in the capacity left over.
			c.admit()
		}
	} else {
		r.state = ResQueued
		c.count(obs.CounterReservationsQueued, 1)
		c.emit("queue", "%s: %d VMs queued behind capacity (tenant %s)", sp.Name, len(vms), tenant)
	}
	return c.statusOf(r), nil
}

// Release frees a reservation's capacity (or dequeues it) and admits
// whatever the freed slots can now hold.
func (c *Cluster) Release(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return err
	}
	if err := c.releaseLocked(name); err != nil {
		return err
	}
	return c.journalAppend(record{Kind: recRelease, Name: name})
}

// releaseLocked is Release's deterministic core (the freed-capacity
// admission pass re-derives identically on replay). Lock held.
func (c *Cluster) releaseLocked(name string) error {
	r, ok := c.res[name]
	if !ok {
		return fmt.Errorf("sched: no reservation %s", name)
	}
	for vm, host := range r.placement {
		delete(c.hosts[host].vms, vm)
	}
	delete(c.res, name)
	c.emit("release", "%s: %d VMs freed", name, len(r.vms))
	c.admit()
	return nil
}

// Cordon marks a host unschedulable for new placements. Existing VMs stay
// put until a Drain.
func (c *Cluster) Cordon(host string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return err
	}
	if err := c.cordonLocked(host); err != nil {
		return err
	}
	return c.journalAppend(record{Kind: recCordon, Host: host})
}

func (c *Cluster) cordonLocked(host string) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("sched: no host %s", host)
	}
	if h.health == Failed || h.health == Dead {
		return fmt.Errorf("sched: host %s has failed", host)
	}
	if h.cordoned {
		return fmt.Errorf("sched: host %s is already cordoned", host)
	}
	h.cordoned = true
	c.count(obs.CounterHostCordoned, 1)
	c.emit("cordon", "%s unschedulable (%d VMs stay until drained)", host, len(h.vms))
	return nil
}

// Uncordon returns a cordoned host to service and admits queued work.
func (c *Cluster) Uncordon(host string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return err
	}
	if err := c.uncordonLocked(host); err != nil {
		return err
	}
	return c.journalAppend(record{Kind: recUncordon, Host: host})
}

func (c *Cluster) uncordonLocked(host string) error {
	h, ok := c.hosts[host]
	if !ok {
		return fmt.Errorf("sched: no host %s", host)
	}
	if !h.cordoned {
		return fmt.Errorf("sched: host %s is not cordoned", host)
	}
	h.cordoned = false
	c.emit("uncordon", "%s schedulable again (%d free slots)", host, h.free())
	c.admit()
	return nil
}

// Drain cordons a host and live re-places its VMs onto surviving
// capacity, one VM at a time in sorted order, each move running the
// backend's Migrate under the bounded retry policy. VMs that cannot move
// (no capacity, or migration kept failing) stay on the cordoned host and
// are reported; the error then wraps ErrDegraded with a capacity report.
func (c *Cluster) Drain(host string) (DrainResult, error) {
	return c.DrainContext(context.Background(), host)
}

// DrainContext is Drain with cancellation: a cancelled context aborts the
// drain between migration attempts and during backoff sleeps. Moves that
// already committed stay committed (and journaled); the remaining VMs stay
// on the cordoned host, and the returned error is the context's.
func (c *Cluster) DrainContext(ctx context.Context, host string) (DrainResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return DrainResult{}, err
	}
	start := c.now()
	h, ok := c.hosts[host]
	if !ok {
		return DrainResult{}, fmt.Errorf("sched: no host %s", host)
	}
	if h.health == Failed || h.health == Dead {
		return DrainResult{}, fmt.Errorf("sched: host %s has failed", host)
	}
	if !h.cordoned {
		if err := c.cordonLocked(host); err != nil {
			return DrainResult{}, err
		}
	}
	res, ctxErr := c.replaceLocked(ctx, "drain "+host, h, true)
	res.Duration = c.now().Sub(start)
	c.count(obs.CounterDrainDuration, res.Duration.Milliseconds())
	c.emit("drain", "%s: %d VMs re-placed, %d stranded in place", host, len(res.Moves), len(res.Stranded))
	// The drain's durable effect is the cordon + the committed moves; a
	// live drain's stranded VMs simply stayed where they were. The record
	// folds the implicit cordon in, so one journal record = one Drain call.
	if jerr := c.journalAppend(record{Kind: recDrain, Host: host, Moves: res.Moves}); jerr != nil {
		return res, jerr
	}
	if ctxErr != nil {
		return res, fmt.Errorf("sched: drain %s aborted: %w", host, ctxErr)
	}
	if len(res.Stranded) > 0 {
		c.emit("degraded", "drain %s: %s", host, res.Report.Summary())
		return res, &DegradedError{Op: "drain " + host, Stranded: res.Stranded, Report: res.Report}
	}
	return res, nil
}

// FailHost marks a host failed (its capacity is gone for good) and
// re-places its now-orphaned VMs onto surviving capacity. Orphans that
// cannot be placed are recorded as stranded on their reservations
// (state degraded) and re-place automatically as capacity frees; the
// error then wraps ErrDegraded.
func (c *Cluster) FailHost(host string) (DrainResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.usableLocked(); err != nil {
		return DrainResult{}, err
	}
	start := c.now()
	h, ok := c.hosts[host]
	if !ok {
		return DrainResult{}, fmt.Errorf("sched: no host %s", host)
	}
	if h.health == Failed || h.health == Dead {
		return DrainResult{}, fmt.Errorf("sched: host %s has already failed", host)
	}
	h.health = Failed
	c.emit("host-failed", "%s dead with %d VMs aboard", host, len(h.vms))
	res, _ := c.replaceLocked(context.Background(), "fail-host "+host, h, false)
	res.Duration = c.now().Sub(start)
	c.count(obs.CounterDrainDuration, res.Duration.Milliseconds())
	if jerr := c.journalAppend(record{Kind: recFailHost, Host: host, Moves: res.Moves, Stranded: res.Stranded}); jerr != nil {
		return res, jerr
	}
	if len(res.Stranded) > 0 {
		c.emit("degraded", "fail-host %s: %s", host, res.Report.Summary())
		return res, &DegradedError{Op: "fail-host " + host, Stranded: res.Stranded, Report: res.Report}
	}
	return res, nil
}

// replaceLocked moves every VM off the given host. live=true is a drain
// (the source still runs each VM until its move commits; failures leave
// the VM in place); live=false is a host failure (the VMs are orphans; a
// failed placement strands them on their reservation). A context
// cancellation stops the sweep; the error return is then the context's,
// and the VMs not yet processed are reported as stranded-in-place (live
// only — FailHost runs under Background). Lock held.
func (c *Cluster) replaceLocked(ctx context.Context, op string, h *hostState, live bool) (DrainResult, error) {
	res := DrainResult{Host: h.info.Name}
	vms := make([]string, 0, len(h.vms))
	for vm := range h.vms {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	var ctxErr error
	for _, vm := range vms {
		if ctxErr != nil {
			res.Stranded = append(res.Stranded, vm)
			continue
		}
		r := c.res[h.vms[vm]]
		target, ok, err := c.migrateVM(ctx, r, vm, h)
		if err != nil {
			ctxErr = err
			res.Stranded = append(res.Stranded, vm)
			continue
		}
		if !ok {
			if live {
				// The VM keeps running on the cordoned source.
				res.Stranded = append(res.Stranded, vm)
			} else {
				delete(h.vms, vm)
				delete(r.placement, vm)
				r.stranded[vm] = true
				r.state = ResDegraded
				c.emit("stranded", "%s has no surviving capacity (reservation %s)", vm, r.spec.Name)
				res.Stranded = append(res.Stranded, vm)
			}
			continue
		}
		delete(h.vms, vm)
		delete(r.placement, vm)
		r.placement[vm] = target
		c.hosts[target].vms[vm] = r.spec.Name
		c.count(obs.CounterVMsReplaced, 1)
		c.emit("replace", "%s: %s -> %s (reservation %s)", op, vm, target, r.spec.Name)
		res.Moves = append(res.Moves, Move{VM: vm, From: h.info.Name, To: target, Reservation: r.spec.Name})
	}
	if len(res.Stranded) > 0 {
		res.Report = c.capacityLocked(len(res.Stranded))
	}
	return res, ctxErr
}

// migrateVM picks the best surviving target for one VM and runs the
// backend migration under the bounded retry policy, aborting early when
// the context cancels mid-backoff (the non-nil error return). Returns the
// committed target, or ok=false when no target could accept the VM. Lock
// held; the backend's Migrate must not call back into the cluster.
func (c *Cluster) migrateVM(ctx context.Context, r *reservation, vm string, from *hostState) (string, bool, error) {
	plan, ok := c.planPlacement(r, []string{vm}, from.info.Name)
	if !ok {
		return "", false, nil
	}
	target := plan[vm]
	pol := c.opts.Retry
	err := pol.Do(ctx, target, func(attempt int) error {
		return c.backend.Migrate(vm, from.info.Name, target, attempt)
	})
	switch {
	case err == nil:
		return target, true, nil
	case ctx.Err() != nil:
		return "", false, ctx.Err()
	case errors.Is(err, retry.ErrCircuitOpen):
		// The target's breaker is open: don't burn the retry budget, the
		// VM strands immediately and heals once the host proves itself.
		c.count(obs.CounterBreakerShortCircuits, 1)
		c.emit("stranded", "%s: circuit open for %s: migration not attempted", vm, target)
		return "", false, nil
	default:
		var ex *retry.ExhaustedError
		if errors.As(err, &ex) {
			c.emit("stranded", "%s: migration to %s failed after %d attempts: %v", vm, target, ex.Attempts, ex.Last)
		} else {
			c.emit("stranded", "%s: migration to %s failed: %v", vm, target, err)
		}
		return "", false, nil
	}
}

// admit re-places stranded VMs and then admits queued reservations in
// fair-share order: tenants ranked by share = placed VMs / weight
// (ascending, ties by name), FIFO within each tenant, head-of-line only —
// a tenant's second request never jumps its first. Lock held.
func (c *Cluster) admit() {
	// Stranded VMs of degraded reservations heal first, oldest
	// reservation first, VMs in sorted order.
	for _, r := range c.resByArrival() {
		if r.state != ResDegraded {
			continue
		}
		vms := make([]string, 0, len(r.stranded))
		for vm := range r.stranded {
			vms = append(vms, vm)
		}
		sort.Strings(vms)
		for _, vm := range vms {
			plan, ok := c.planPlacement(r, []string{vm}, "")
			if !ok {
				continue
			}
			target := plan[vm]
			delete(r.stranded, vm)
			r.placement[vm] = target
			c.hosts[target].vms[vm] = r.spec.Name
			c.count(obs.CounterVMsReplaced, 1)
			c.emit("replace", "heal: %s -> %s (reservation %s)", vm, target, r.spec.Name)
		}
		if len(r.stranded) == 0 {
			r.state = ResActive
			c.emit("admit", "%s healed: all VMs placed again", r.spec.Name)
		}
	}
	// Fair-share admission of queued reservations.
	for {
		admitted := false
		for _, tenant := range c.tenantsByShare() {
			head := c.queuedHead(tenant)
			if head == nil {
				continue
			}
			if !c.tryPlace(head) {
				continue
			}
			head.state = ResActive
			head.preempted = false
			c.emit("admit", "%s: %d VMs admitted from queue (tenant %s, share %s)",
				head.spec.Name, len(head.vms), tenant, c.shareString(tenant))
			admitted = true
			break // shares changed; re-rank
		}
		if !admitted {
			return
		}
	}
}

// resByArrival returns all reservations sorted by arrival sequence.
func (c *Cluster) resByArrival() []*reservation {
	out := make([]*reservation, 0, len(c.res))
	for _, r := range c.res {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// tenantsByShare ranks tenants with queued work by ascending fair share
// (placed VMs / weight), ties by name. Lock held.
func (c *Cluster) tenantsByShare() []string {
	placed := map[string]int{}
	queuedTenants := map[string]bool{}
	for _, r := range c.res {
		t := r.spec.tenant()
		if r.state == ResQueued {
			queuedTenants[t] = true
			continue
		}
		placed[t] += len(r.placement)
	}
	out := make([]string, 0, len(queuedTenants))
	for t := range queuedTenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		si := float64(placed[out[i]]) / float64(c.weight(out[i]))
		sj := float64(placed[out[j]]) / float64(c.weight(out[j]))
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	return out
}

func (c *Cluster) weight(tenant string) int {
	if w := c.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

func (c *Cluster) shareString(tenant string) string {
	placed := 0
	for _, r := range c.res {
		if r.spec.tenant() == tenant && r.state != ResQueued {
			placed += len(r.placement)
		}
	}
	return fmt.Sprintf("%d/%d", placed, c.weight(tenant))
}

// queuedHead returns the tenant's oldest queued reservation (FIFO), nil
// when none.
func (c *Cluster) queuedHead(tenant string) *reservation {
	var head *reservation
	for _, r := range c.res {
		if r.state != ResQueued || r.spec.tenant() != tenant {
			continue
		}
		if head == nil || r.seq < head.seq {
			head = r
		}
	}
	return head
}

// ProbeResult is one host's outcome from a probe round.
type ProbeResult struct {
	Host    string `json:"host"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
	State   string `json:"state"`
}

// ProbeAll runs one health-probe round over every non-failed host (in
// sorted order, probes outside the lock) and applies the thresholds:
// FailAfter consecutive failures mark a host unhealthy (and AutoDrain
// drains it); RecoverAfter consecutive successes return it to service.
func (c *Cluster) ProbeAll() []ProbeResult {
	c.mu.Lock()
	if c.journalErr != nil {
		c.mu.Unlock()
		return nil
	}
	names := make([]string, 0, len(c.hostNames))
	for _, name := range c.hostNames {
		// Suspected and dead hosts belong to the lease state machine; a
		// probe answer is not a lease renewal, so skip them here.
		if h := c.hosts[name].health; h == Healthy || h == Unhealthy {
			names = append(names, name)
		}
	}
	c.mu.Unlock()

	errs := make(map[string]error, len(names))
	for _, name := range names {
		errs[name] = c.backend.Probe(name)
	}

	c.mu.Lock()
	if c.journalErr != nil {
		c.mu.Unlock()
		return nil
	}
	var out []ProbeResult
	var toDrain []string
	var outcomes []probeOutcome
	changed := false
	for _, name := range names {
		h, ok := c.hosts[name]
		if !ok || (h.health != Healthy && h.health != Unhealthy) {
			continue
		}
		err := errs[name]
		// A failed probe always moves the fails counter; a success only
		// changes state when it resets a streak or heals an unhealthy
		// host. All-quiet rounds skip the journal entirely.
		if err != nil || h.fails > 0 || h.health == Unhealthy {
			changed = true
		}
		if c.applyProbeLocked(name, err) {
			toDrain = append(toDrain, name)
		}
		outcomes = append(outcomes, probeOutcome{Host: name, OK: err == nil})
		res := ProbeResult{Host: name, Healthy: err == nil, State: h.stateLabel()}
		if err != nil {
			res.Err = err.Error()
		}
		out = append(out, res)
	}
	if changed {
		// Probe streaks (fails/oks) gate future health transitions, so
		// they are durable state: journal the round's outcomes; replay
		// re-runs the same threshold logic (AutoDrain excluded — the
		// drains it triggered were journaled as their own records).
		_ = c.journalAppend(record{Kind: recProbe, Probes: outcomes})
	}
	c.mu.Unlock()

	for _, name := range toDrain {
		_, _ = c.Drain(name)
	}
	return out
}

// applyProbeLocked applies one host's probe outcome to the threshold state
// machine, reporting whether the transition calls for an auto-drain. Lock
// held; shared by the live probe loop and journal replay (where AutoDrain
// is ignored — the resulting drains were journaled separately).
func (c *Cluster) applyProbeLocked(name string, probeErr error) (autoDrain bool) {
	h, ok := c.hosts[name]
	if !ok || (h.health != Healthy && h.health != Unhealthy) {
		return false
	}
	if probeErr != nil {
		h.fails++
		h.oks = 0
		if h.health == Healthy && h.fails >= c.opts.Health.failAfter() {
			h.health = Unhealthy
			c.count(obs.CounterHostsUnhealthy, 1)
			c.emit("unhealthy", "%s failed %d consecutive probes: %v", name, h.fails, probeErr)
			return c.opts.Health.AutoDrain
		}
		return false
	}
	h.fails = 0
	if h.health == Unhealthy {
		h.oks++
		if h.oks >= c.opts.Health.recoverAfter() {
			h.health = Healthy
			h.oks = 0
			c.emit("recovered", "%s healthy after %d consecutive probe successes", name, c.opts.Health.recoverAfter())
			c.admit()
		}
	}
	return false
}

// StartProbing runs ProbeAll every interval until the returned stop
// function is called. Only one prober may run at a time.
func (c *Cluster) StartProbing(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c.mu.Lock()
	if c.probeStop != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("sched: prober already running")
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	c.probeStop, c.probeDone = stopCh, doneCh
	c.mu.Unlock()

	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				c.ProbeAll()
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
		c.mu.Lock()
		c.probeStop, c.probeDone = nil, nil
		c.mu.Unlock()
	}, nil
}

// Reservation returns one reservation's snapshot.
func (c *Cluster) Reservation(name string) (ReservationStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.res[name]
	if !ok {
		return ReservationStatus{}, false
	}
	return c.statusOf(r), true
}

// HostOfVM returns the host currently running the VM.
func (c *Cluster) HostOfVM(vm string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range c.hostNames {
		if _, ok := c.hosts[name].vms[vm]; ok {
			return name, true
		}
	}
	return "", false
}

// VMsOn returns the VMs currently placed on a host, sorted.
func (c *Cluster) VMsOn(host string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[host]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(h.vms))
	for vm := range h.vms {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

func (c *Cluster) statusOf(r *reservation) ReservationStatus {
	st := ReservationStatus{
		Name:      r.spec.Name,
		Tenant:    r.spec.tenant(),
		State:     r.state,
		Weight:    c.weight(r.spec.tenant()),
		VMs:       len(r.vms),
		Preempted: r.preempted,
	}
	if len(r.placement) > 0 {
		st.Placement = make(map[string]string, len(r.placement))
		for vm, host := range r.placement {
			st.Placement[vm] = host
		}
		st.Hosts = hostSet(r.placement)
	}
	for vm := range r.stranded {
		st.Stranded = append(st.Stranded, vm)
	}
	sort.Strings(st.Stranded)
	return st
}

// hostSet returns the sorted distinct hosts of a placement.
func hostSet(placement map[string]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range placement {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}
