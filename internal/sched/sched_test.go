package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"autonetkit/internal/obs"
	"autonetkit/internal/retry"
)

// fastRetry is a no-sleep retry policy for tests.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}

func newTestCluster(t *testing.T, b Backend, opts Options) *Cluster {
	t.Helper()
	if opts.Retry.Sleep == nil {
		opts.Retry = fastRetry(3)
	}
	c, err := New(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkInvariant asserts the multiset invariant: every reservation's VMs
// are exactly (placed ∪ stranded), every placed VM sits on exactly one
// host, and host occupancy mirrors the placements.
func checkInvariant(t *testing.T, c *Cluster) {
	t.Helper()
	st := c.Status()
	onHost := map[string]string{}
	for _, h := range st.Hosts {
		if h.Used != len(h.VMs) {
			t.Fatalf("host %s used=%d but holds %d VMs", h.Name, h.Used, len(h.VMs))
		}
		if h.Used > h.Capacity {
			t.Fatalf("host %s over capacity: %d > %d", h.Name, h.Used, h.Capacity)
		}
		for _, vm := range h.VMs {
			if prev, dup := onHost[vm]; dup {
				t.Fatalf("VM %s duplicated on %s and %s", vm, prev, h.Name)
			}
			onHost[vm] = h.Name
		}
	}
	placedTotal := 0
	for _, r := range st.Reservations {
		if r.State == ResQueued {
			if len(r.Placement) != 0 || len(r.Stranded) != 0 {
				t.Fatalf("queued reservation %s has placements/stranded", r.Name)
			}
			continue
		}
		if len(r.Placement)+len(r.Stranded) != r.VMs {
			t.Fatalf("reservation %s: %d placed + %d stranded != %d VMs (lost or duplicated)",
				r.Name, len(r.Placement), len(r.Stranded), r.VMs)
		}
		for vm, host := range r.Placement {
			if onHost[vm] != host {
				t.Fatalf("reservation %s says %s on %s; hosts say %q", r.Name, vm, host, onHost[vm])
			}
			placedTotal++
		}
		if r.State == ResActive && len(r.Stranded) != 0 {
			t.Fatalf("active reservation %s has stranded VMs %v", r.Name, r.Stranded)
		}
		if r.State == ResDegraded && len(r.Stranded) == 0 {
			t.Fatalf("degraded reservation %s has no stranded VMs", r.Name)
		}
	}
	if placedTotal != len(onHost) {
		t.Fatalf("placement count mismatch: reservations place %d, hosts hold %d", placedTotal, len(onHost))
	}
}

func TestReservePack(t *testing.T) {
	c := newTestCluster(t, Uniform(4, 4), Options{Seed: 1})
	st, err := c.Reserve(Spec{Name: "a", Count: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResActive {
		t.Fatalf("state = %s, want active", st.State)
	}
	// Pack keeps the footprint minimal: 6 unit VMs over 4-slot hosts need
	// exactly 2 hosts.
	if len(st.Hosts) != 2 {
		t.Fatalf("pack used %d hosts (%v), want 2", len(st.Hosts), st.Hosts)
	}
	checkInvariant(t, c)
}

func TestReserveSpread(t *testing.T) {
	c := newTestCluster(t, Uniform(4, 4), Options{Seed: 1})
	st, err := c.Reserve(Spec{Name: "a", Count: 8, Policy: PolicySpread})
	if err != nil {
		t.Fatal(err)
	}
	// Spread deals across all 4 hosts: 2 VMs each.
	if len(st.Hosts) != 4 {
		t.Fatalf("spread used %d hosts, want 4", len(st.Hosts))
	}
	perHost := map[string]int{}
	for _, h := range st.Placement {
		perHost[h]++
	}
	for h, n := range perHost {
		if n != 2 {
			t.Fatalf("spread uneven: host %s has %d VMs, want 2 (%v)", h, n, perHost)
		}
	}
	checkInvariant(t, c)
}

func TestSpreadCapAntiAffinity(t *testing.T) {
	c := newTestCluster(t, Uniform(4, 4), Options{Seed: 1})
	st, err := c.Reserve(Spec{Name: "a", Count: 4, Policy: PolicySpread, Spread: 1})
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[string]int{}
	for _, h := range st.Placement {
		perHost[h]++
	}
	for h, n := range perHost {
		if n > 1 {
			t.Fatalf("anti-affinity violated: host %s has %d VMs of one reservation", h, n)
		}
	}
	// A fifth VM cannot fit under spread=1 on 4 hosts: queues instead.
	st2, err := c.Reserve(Spec{Name: "b", Count: 5, Policy: PolicySpread, Spread: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != ResQueued {
		t.Fatalf("over-constrained reservation should queue, got %s", st2.State)
	}
	checkInvariant(t, c)
}

func TestQueueAndFairShareAdmission(t *testing.T) {
	col := obs.NewCollector()
	c := newTestCluster(t, Uniform(2, 4), Options{Seed: 1, Obs: col})
	// Fill the cluster under tenant alice (weight 1).
	if _, err := c.Reserve(Spec{Name: "a1", Count: 8, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	// Queue one more from alice, then two from bob (weight 2). Bob's head
	// must admit first on release: alice's share (8/1) dwarfs bob's (0/2).
	for _, sp := range []Spec{
		{Name: "a2", Count: 4, Tenant: "alice"},
		{Name: "b1", Count: 4, Tenant: "bob", Weight: 2},
		{Name: "b2", Count: 2, Tenant: "bob"},
	} {
		st, err := c.Reserve(sp)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != ResQueued {
			t.Fatalf("%s should queue, got %s", sp.Name, st.State)
		}
	}
	if got := col.Counter(obs.CounterReservationsQueued); got != 3 {
		t.Fatalf("reservations_queued = %d, want 3", got)
	}
	if err := c.Release("a1"); err != nil {
		t.Fatal(err)
	}
	// 8 slots freed: bob's b1 (4) admits first, then FIFO gives b2 (2)
	// only after... share(bob)=4/2=2 vs share(alice)=0/1=0, so alice's a2
	// (4) admits next, then bob's b2 (2) — all three fit in 8 slots? a2=4,
	// b1=4, b2=2 total 10 > 8. b1 admits (share 0), then alice a2 (share 0 < 2)
	// admits, then b2 needs 2 slots but 0 remain: stays queued.
	for name, want := range map[string]ResState{"b1": ResActive, "a2": ResActive, "b2": ResQueued} {
		st, ok := c.Reservation(name)
		if !ok {
			t.Fatalf("reservation %s missing", name)
		}
		if st.State != want {
			t.Fatalf("%s state = %s, want %s", name, st.State, want)
		}
	}
	checkInvariant(t, c)
}

func TestQueueFIFOWithinTenant(t *testing.T) {
	c := newTestCluster(t, Uniform(1, 4), Options{Seed: 1})
	if _, err := c.Reserve(Spec{Name: "r0", Count: 4}); err != nil {
		t.Fatal(err)
	}
	// Queue big-then-small for the same tenant. The small one would fit
	// after release, but FIFO head-of-line means the big one must go first;
	// since it fits too (4 slots), order is observable via events.
	if _, err := c.Reserve(Spec{Name: "big", Count: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "small", Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("r0"); err != nil {
		t.Fatal(err)
	}
	big, _ := c.Reservation("big")
	small, _ := c.Reservation("small")
	if big.State != ResActive {
		t.Fatalf("head-of-line big should admit, got %s", big.State)
	}
	if small.State != ResQueued {
		t.Fatalf("small should still wait behind capacity, got %s", small.State)
	}
	// Head-of-line blocking is strict: even though small would fit if big
	// were skipped, a tenant's later request never jumps its earlier one.
	c2 := newTestCluster(t, Uniform(1, 4), Options{Seed: 1})
	if _, err := c2.Reserve(Spec{Name: "r0", Count: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Reserve(Spec{Name: "big", Count: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Reserve(Spec{Name: "small", Count: 1}); err != nil {
		t.Fatal(err)
	}
	small2, _ := c2.Reservation("small")
	if small2.State != ResQueued {
		t.Fatalf("small must not jump big's head-of-line slot, got %s", small2.State)
	}
	checkInvariant(t, c)
}

func TestCordonUncordon(t *testing.T) {
	col := obs.NewCollector()
	c := newTestCluster(t, Uniform(2, 2), Options{Seed: 1, Obs: col})
	if err := c.Cordon("h01"); err != nil {
		t.Fatal(err)
	}
	if err := c.Cordon("h01"); err == nil {
		t.Fatal("double cordon should error")
	}
	if got := col.Counter(obs.CounterHostCordoned); got != 1 {
		t.Fatalf("host_cordoned = %d, want 1", got)
	}
	// Only h02's 2 slots remain: 3 VMs queue.
	st, err := c.Reserve(Spec{Name: "a", Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResQueued {
		t.Fatalf("want queued while cordoned, got %s", st.State)
	}
	if err := c.Uncordon("h01"); err != nil {
		t.Fatal(err)
	}
	st2, _ := c.Reservation("a")
	if st2.State != ResActive {
		t.Fatalf("uncordon should admit queued work, got %s", st2.State)
	}
	if err := c.Uncordon("h01"); err == nil {
		t.Fatal("uncordon of schedulable host should error")
	}
	checkInvariant(t, c)
}

func TestProbeThresholds(t *testing.T) {
	b := Uniform(2, 2)
	col := obs.NewCollector()
	c := newTestCluster(t, b, Options{
		Seed:   1,
		Obs:    col,
		Health: HealthPolicy{FailAfter: 3, RecoverAfter: 2},
	})
	b.SetProbeFunc(func(host string) error {
		if host == "h01" {
			return errors.New("ssh: connection refused")
		}
		return nil
	})
	// Two failures: still healthy (threshold is 3).
	c.ProbeAll()
	c.ProbeAll()
	if st := c.Status(); st.Hosts[0].State != "healthy" {
		t.Fatalf("after 2 fails h01 = %s, want healthy", st.Hosts[0].State)
	}
	c.ProbeAll()
	if st := c.Status(); st.Hosts[0].State != "unhealthy" {
		t.Fatalf("after 3 fails h01 = %s, want unhealthy", st.Hosts[0].State)
	}
	if got := col.Counter(obs.CounterHostsUnhealthy); got != 1 {
		t.Fatalf("hosts_unhealthy = %d, want 1", got)
	}
	// Unhealthy hosts take no new placements.
	st, err := c.Reserve(Spec{Name: "a", Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResQueued {
		t.Fatalf("3 VMs on one healthy 2-slot host should queue, got %s", st.State)
	}
	// Recovery needs 2 consecutive successes; one success + one failure
	// resets the streak.
	b.SetProbeFunc(nil)
	c.ProbeAll()
	b.SetProbeFunc(func(host string) error {
		if host == "h01" {
			return errors.New("flap")
		}
		return nil
	})
	c.ProbeAll()
	if st := c.Status(); st.Hosts[0].State != "unhealthy" {
		t.Fatalf("success streak should reset on failure; h01 = %s", st.Hosts[0].State)
	}
	b.SetProbeFunc(nil)
	c.ProbeAll()
	c.ProbeAll()
	if st := c.Status(); st.Hosts[0].State != "healthy" {
		t.Fatalf("after 2 consecutive successes h01 = %s, want healthy", st.Hosts[0].State)
	}
	// Recovery admits the queued reservation.
	rst, _ := c.Reservation("a")
	if rst.State != ResActive {
		t.Fatalf("recovery should admit queued work, got %s", rst.State)
	}
	checkInvariant(t, c)
}

func TestProbeAutoDrain(t *testing.T) {
	b := Uniform(3, 4)
	c := newTestCluster(t, b, Options{
		Seed:   1,
		Health: HealthPolicy{FailAfter: 2, AutoDrain: true},
	})
	if _, err := c.Reserve(Spec{Name: "a", Count: 6, Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	before := c.VMsOn("h01")
	if len(before) == 0 {
		t.Fatal("spread should land VMs on h01")
	}
	b.SetProbeFunc(func(host string) error {
		if host == "h01" {
			return errors.New("dead")
		}
		return nil
	})
	c.ProbeAll()
	c.ProbeAll()
	if got := c.VMsOn("h01"); len(got) != 0 {
		t.Fatalf("auto-drain should empty h01, still holds %v", got)
	}
	st, _ := c.Reservation("a")
	if st.State != ResActive {
		t.Fatalf("reservation should stay fully placed after auto-drain, got %s", st.State)
	}
	checkInvariant(t, c)
}

func TestStartProbing(t *testing.T) {
	b := Uniform(2, 2)
	c := newTestCluster(t, b, Options{Seed: 1, Health: HealthPolicy{FailAfter: 1}})
	var mu sync.Mutex
	probed := map[string]int{}
	b.SetProbeFunc(func(host string) error {
		mu.Lock()
		probed[host]++
		mu.Unlock()
		return nil
	})
	stop, err := c.StartProbing(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartProbing(time.Millisecond); err == nil {
		t.Fatal("second prober should be refused")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := probed["h01"]
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never ran")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	// After stop, a new prober may start.
	stop2, err := c.StartProbing(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	stop2()
}

func TestDrainLiveReplacement(t *testing.T) {
	col := obs.NewCollector()
	now := time.Unix(1700000000, 0)
	c := newTestCluster(t, Uniform(3, 4), Options{
		Seed: 1,
		Obs:  col,
		Now: func() time.Time {
			now = now.Add(125 * time.Millisecond)
			return now
		},
	})
	if _, err := c.Reserve(Spec{Name: "a", Count: 8, Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	victims := c.VMsOn("h02")
	if len(victims) == 0 {
		t.Fatal("expected VMs on h02")
	}
	res, err := c.Drain("h02")
	if err != nil {
		t.Fatalf("drain should absorb into surviving capacity: %v", err)
	}
	if len(res.Moves) != len(victims) {
		t.Fatalf("moved %d VMs, want %d", len(res.Moves), len(victims))
	}
	if !sort.SliceIsSorted(res.Moves, func(i, j int) bool { return res.Moves[i].VM < res.Moves[j].VM }) {
		t.Fatalf("moves not sorted by VM: %v", res.Moves)
	}
	if res.Duration <= 0 {
		t.Fatalf("duration = %v, want > 0 (Now seam)", res.Duration)
	}
	if got := c.VMsOn("h02"); len(got) != 0 {
		t.Fatalf("h02 still holds %v after drain", got)
	}
	if got := col.Counter(obs.CounterVMsReplaced); got != int64(len(victims)) {
		t.Fatalf("vms_replaced = %d, want %d", got, len(victims))
	}
	if got := col.Counter(obs.CounterDrainDuration); got <= 0 {
		t.Fatalf("drain_duration = %d, want > 0", got)
	}
	// The host is left cordoned, not failed: uncordon restores it.
	if st := c.Status(); st.Hosts[1].State != "cordoned" {
		t.Fatalf("h02 = %s after drain, want cordoned", st.Hosts[1].State)
	}
	checkInvariant(t, c)
}

func TestDrainMigrationRetry(t *testing.T) {
	b := Uniform(2, 4)
	var mu sync.Mutex
	attempts := map[string]int{}
	b.SetMigrateFunc(func(vm, from, to string, attempt int) error {
		mu.Lock()
		defer mu.Unlock()
		attempts[vm]++
		if attempts[vm] < 3 {
			return fmt.Errorf("transient: %s attempt %d", vm, attempt)
		}
		return nil
	})
	c := newTestCluster(t, b, Options{Seed: 1, Retry: fastRetry(3)})
	if _, err := c.Reserve(Spec{Name: "a", Count: 4, Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Drain("h01")
	if err != nil {
		t.Fatalf("retry should ride out transient migration failures: %v", err)
	}
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded = %v, want none", res.Stranded)
	}
	for vm, n := range attempts {
		if n != 3 {
			t.Fatalf("VM %s migrated in %d attempts, want 3", vm, n)
		}
	}
	checkInvariant(t, c)
}

func TestDrainDegradedStaysInPlace(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 4), Options{Seed: 1})
	// Fill both hosts completely: no surviving capacity for a drain.
	if _, err := c.Reserve(Spec{Name: "a", Count: 8, Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Drain("h01")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err %T is not *DegradedError", err)
	}
	if de.Report.FreeSlots != 0 || de.Report.Schedulable != 1 {
		t.Fatalf("capacity report wrong: %+v", de.Report)
	}
	if len(res.Stranded) != 4 {
		t.Fatalf("stranded %d VMs, want 4", len(res.Stranded))
	}
	// Live drain: un-movable VMs keep running on the cordoned source.
	if got := c.VMsOn("h01"); len(got) != 4 {
		t.Fatalf("h01 should still run its 4 VMs, holds %v", got)
	}
	st, _ := c.Reservation("a")
	if st.State != ResActive {
		t.Fatalf("reservation still fully placed, want active, got %s", st.State)
	}
	checkInvariant(t, c)
}

func TestDrainMigrationExhaustedStrands(t *testing.T) {
	b := Uniform(2, 4)
	b.SetMigrateFunc(func(vm, from, to string, attempt int) error {
		return errors.New("target refuses")
	})
	c := newTestCluster(t, b, Options{Seed: 1, Retry: fastRetry(2)})
	if _, err := c.Reserve(Spec{Name: "a", Count: 2}); err != nil {
		t.Fatal(err)
	}
	host, _ := c.HostOfVM("a-vm001")
	_, err := c.Drain(host)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("exhausted migrations should degrade, got %v", err)
	}
	// VMs still on the source: nothing lost.
	if got := c.VMsOn(host); len(got) != 2 {
		t.Fatalf("source should keep un-migratable VMs, holds %v", got)
	}
	checkInvariant(t, c)
}

func TestFailHostStrandsAndHeals(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 4), Options{Seed: 1})
	if _, err := c.Reserve(Spec{Name: "a", Count: 8, Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	res, err := c.FailHost("h01")
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("full cluster host failure should degrade, got %v", err)
	}
	if len(res.Stranded) != 4 {
		t.Fatalf("stranded %d, want 4", len(res.Stranded))
	}
	st, _ := c.Reservation("a")
	if st.State != ResDegraded || len(st.Stranded) != 4 {
		t.Fatalf("reservation = %s with %d stranded, want degraded/4", st.State, len(st.Stranded))
	}
	// A dead host cannot be drained or failed again.
	if _, err := c.Drain("h01"); err == nil {
		t.Fatal("drain of failed host should error")
	}
	if _, err := c.FailHost("h01"); err == nil {
		t.Fatal("double fail should error")
	}
	checkInvariant(t, c)
}

func TestFailHostHealsIntoFreedCapacity(t *testing.T) {
	c := newTestCluster(t, Uniform(3, 4), Options{Seed: 1})
	if _, err := c.Reserve(Spec{Name: "a", Count: 4, Policy: PolicySpread, Spread: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "pad", Count: 8}); err != nil {
		t.Fatal(err)
	}
	// Cluster is full (12/12). Kill a host carrying a's VMs: they strand.
	host, _ := c.HostOfVM("a-vm001")
	if _, err := c.FailHost(host); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	st, _ := c.Reservation("a")
	if st.State != ResDegraded {
		t.Fatalf("want degraded, got %s", st.State)
	}
	checkInvariant(t, c)
	// Releasing pad frees capacity: stranded VMs re-place automatically.
	if err := c.Release("pad"); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Reservation("a")
	if st.State != ResActive || len(st.Stranded) != 0 {
		t.Fatalf("stranded VMs should heal after release: %s %v", st.State, st.Stranded)
	}
	checkInvariant(t, c)
}

func TestReserveErrors(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 4), Options{Seed: 1})
	if _, err := c.Reserve(Spec{Name: "a", Count: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "a", Count: 1}); err == nil {
		t.Fatal("duplicate reservation name should error")
	}
	if _, err := c.Reserve(Spec{Name: "b", VMs: []string{"a-vm001"}}); err == nil {
		t.Fatal("VM name clash across reservations should error")
	}
	if _, err := c.Reserve(Spec{Name: ""}); err == nil {
		t.Fatal("invalid spec should error")
	}
	if err := c.Release("ghost"); err == nil {
		t.Fatal("release of unknown reservation should error")
	}
	if err := c.Cordon("ghost"); err == nil {
		t.Fatal("cordon of unknown host should error")
	}
	if _, err := c.Drain("ghost"); err == nil {
		t.Fatal("drain of unknown host should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(NewStaticBackend(), Options{}); err == nil {
		t.Fatal("empty backend should error")
	}
	if _, err := New(NewStaticBackend(HostInfo{Name: "h", Capacity: 0}), Options{}); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := New(NewStaticBackend(HostInfo{Name: "h", Capacity: 1}, HostInfo{Name: "h", Capacity: 1}), Options{}); err == nil {
		t.Fatal("duplicate host should error")
	}
	if _, err := New(NewStaticBackend(HostInfo{Name: "h", Capacity: -3}), Options{}); err == nil {
		t.Fatal("negative capacity should error")
	}
	if _, err := New(NewStaticBackend(HostInfo{Name: "", Capacity: 4}), Options{}); err == nil {
		t.Fatal("empty host name should error")
	}
	// Open validates Discover the same way New does.
	if _, _, err := Open(t.TempDir(), NewStaticBackend(HostInfo{Name: "", Capacity: 4}), Options{}); err == nil {
		t.Fatal("Open with empty host name should error")
	}
}

// TestPlacementDeterminism: identical (specs, seed) yield byte-identical
// placements, events, and status, run after run; different seeds
// de-correlate the host fill order.
func TestPlacementDeterminism(t *testing.T) {
	run := func(seed uint64) (Status, []Event) {
		c := newTestCluster(t, Uniform(16, 8), Options{Seed: seed})
		specs := []Spec{
			{Name: "web", Count: 20, Tenant: "alice"},
			{Name: "db", Count: 12, Tenant: "bob", Policy: PolicySpread, Weight: 2},
			{Name: "cache", Count: 9, Tenant: "alice", Policy: PolicySpread, Spread: 1},
			{Name: "batch", Count: 70, Tenant: "carol"}, // queues
			{Name: "probe", Count: 6, Tenant: "bob"},
		}
		for _, sp := range specs {
			if _, err := c.Reserve(sp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Drain("h03"); err != nil && !errors.Is(err, ErrDegraded) {
			t.Fatal(err)
		}
		if _, err := c.FailHost("h07"); err != nil && !errors.Is(err, ErrDegraded) {
			t.Fatal(err)
		}
		if err := c.Release("web"); err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, c)
		return c.Status(), c.Events()
	}
	st1, ev1 := run(42)
	st2, ev2 := run(42)
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("same seed produced different status:\n%s\nvs\n%s", st1.JSON(), st2.JSON())
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("same seed produced different event streams")
	}
	// Different seeds should shuffle which equal hosts fill first for at
	// least one of several tries.
	base, _ := run(1)
	varied := false
	for seed := uint64(2); seed <= 6; seed++ {
		st, _ := run(seed)
		if !reflect.DeepEqual(base.Hosts, st.Hosts) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("seeds 1..6 all produced identical placements; tie-break not seed-keyed")
	}
}

// TestEqualCapacityTieBreak documents the tie-break: among equally-free
// hosts the order is (seed-keyed FNV hash, then name) — stable at any map
// iteration order, verified by running the same single placement many
// times.
func TestEqualCapacityTieBreak(t *testing.T) {
	var first string
	for i := 0; i < 20; i++ {
		c := newTestCluster(t, Uniform(12, 4), Options{Seed: 9})
		st, err := c.Reserve(Spec{Name: "a", Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		host := st.Placement["a-vm001"]
		if i == 0 {
			first = host
		} else if host != first {
			t.Fatalf("run %d placed on %s, run 0 on %s: tie-break unstable", i, host, first)
		}
	}
}

// TestDrainPropertyNeverLosesVMs drives a random-but-seeded op sequence
// against a model and asserts the multiset invariant after every step:
// drain and fail never lose or duplicate a VM.
func TestDrainPropertyNeverLosesVMs(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		b := Uniform(8, 6)
		c := newTestCluster(t, b, Options{Seed: uint64(seed)})
		hosts := make([]string, 8)
		for i := range hosts {
			hosts[i] = fmt.Sprintf("h%02d", i+1)
		}
		resSeq := 0
		var live []string
		for step := 0; step < 120; step++ {
			switch op := rng.Intn(6); {
			case op <= 1: // reserve
				resSeq++
				name := fmt.Sprintf("r%03d", resSeq)
				sp := Spec{Name: name, Count: 1 + rng.Intn(10), Tenant: fmt.Sprintf("t%d", rng.Intn(3))}
				if rng.Intn(2) == 0 {
					sp.Policy = PolicySpread
				}
				if _, err := c.Reserve(sp); err != nil {
					t.Fatalf("seed %d step %d reserve: %v", seed, step, err)
				}
				live = append(live, name)
			case op == 2 && len(live) > 0: // release
				i := rng.Intn(len(live))
				if err := c.Release(live[i]); err != nil {
					t.Fatalf("seed %d step %d release: %v", seed, step, err)
				}
				live = append(live[:i], live[i+1:]...)
			case op == 3: // drain (tolerate per-state errors)
				h := hosts[rng.Intn(len(hosts))]
				if _, err := c.Drain(h); err != nil && !errors.Is(err, ErrDegraded) {
					// unknown-state errors (already failed) are fine
					_ = err
				}
			case op == 4: // cordon/uncordon toggle
				h := hosts[rng.Intn(len(hosts))]
				if err := c.Cordon(h); err != nil {
					_ = c.Uncordon(h)
				}
			case op == 5 && rng.Intn(4) == 0: // rare hard failure
				h := hosts[rng.Intn(len(hosts))]
				_, _ = c.FailHost(h)
			}
			checkInvariant(t, c)
		}
	}
}

// TestConcurrentFailPlaceDrain exercises interleaved Reserve, Drain,
// FailHost, probe rounds, and status reads under the race detector.
func TestConcurrentFailPlaceDrain(t *testing.T) {
	b := Uniform(12, 8)
	c := newTestCluster(t, b, Options{Seed: 7, Health: HealthPolicy{FailAfter: 2}})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("w%d-r%d", w, i)
				if _, err := c.Reserve(Spec{Name: name, Count: 3, Tenant: fmt.Sprintf("t%d", w)}); err != nil {
					t.Errorf("reserve %s: %v", name, err)
					return
				}
				if i%3 == 2 {
					_ = c.Release(name)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			h := fmt.Sprintf("h%02d", i+1)
			_, _ = c.Drain(h)
			_ = c.Uncordon(h)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.FailHost("h12")
		for i := 0; i < 5; i++ {
			c.ProbeAll()
			_ = c.Status()
			_ = c.Events()
		}
	}()
	wg.Wait()
	checkInvariant(t, c)
}

// TestStatusRendering covers the table and JSON output shapes.
func TestStatusRendering(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 4), Options{Seed: 1})
	if _, err := c.Reserve(Spec{Name: "a", Count: 3, Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	table := st.Table()
	for _, want := range []string{"HOST", "RESERVATION", "h01", "h02", "alice", "capacity:"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	js := st.JSON()
	for _, want := range []string{`"hosts"`, `"reservations"`, `"capacity"`, `"a-vm001"`} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON missing %q:\n%s", want, js)
		}
	}
	if got := st.Table(); got != table {
		t.Fatal("Table() not deterministic")
	}
}
