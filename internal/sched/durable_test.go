package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"autonetkit/internal/journal"
	"autonetkit/internal/retry"
)

// instantRetry keeps drain retries deterministic and sleepless.
func instantRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}}
}

func statusJSON(t *testing.T, c *Cluster) []byte {
	t.Helper()
	return []byte(c.Status().JSON())
}

// durableState snapshots a cluster's full durable state for DeepEqual
// comparison (the same encoding compaction persists).
func durableState(t *testing.T, c *Cluster) []byte {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, err := c.snapshotLocked()
	if err != nil {
		t.Fatalf("snapshotLocked: %v", err)
	}
	return raw
}

func TestOpenFreshThenReopenByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Seed: 2013, Retry: instantRetry()}
	c, info, err := Open(dir, Uniform(4, 4), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if info.Recovered {
		t.Fatalf("fresh dir reported recovery: %+v", info)
	}
	mustReserve := func(spec string) {
		sp, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reserve(sp); err != nil {
			t.Fatalf("Reserve(%s): %v", spec, err)
		}
	}
	mustReserve("alpha vms=5 tenant=ops")
	mustReserve("beta vms=3 tenant=dev policy=spread")
	mustReserve("gamma vms=9 tenant=ops") // queues: 17 > capacity 16 - placed 8
	if err := c.Cordon("h02"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain("h03"); err != nil && !errors.Is(err, ErrDegraded) {
		t.Fatal(err)
	}
	before := statusJSON(t, c)
	beforeState := durableState(t, c)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Reserve(Spec{Name: "late", Count: 1}); err == nil {
		t.Fatal("Reserve after Close succeeded")
	}

	c2, info2, err := Open(dir, Uniform(4, 4), opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if !info2.Recovered || info2.Records == 0 {
		t.Fatalf("reopen info = %+v", info2)
	}
	if after := statusJSON(t, c2); !bytes.Equal(before, after) {
		t.Fatalf("status drifted across reopen:\n--- before\n%s\n--- after\n%s", before, after)
	}
	if afterState := durableState(t, c2); !bytes.Equal(beforeState, afterState) {
		t.Fatalf("durable state drifted across reopen:\n%s\nvs\n%s", beforeState, afterState)
	}
	// And the recovered cluster keeps working: freed + uncordoned capacity
	// admits the queued reservation.
	if err := c2.Release("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Uncordon("h02"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Uncordon("h03"); err != nil {
		t.Fatal(err)
	}
	st, ok := c2.Reservation("gamma")
	if !ok || st.State != ResActive {
		t.Fatalf("gamma after release = %+v", st)
	}
}

func TestOpenSeedMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Seed: 1, SnapshotEvery: 1}
	c, _, err := Open(dir, Uniform(2, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "r", Count: 1}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := Open(dir, Uniform(2, 2), Options{Seed: 2}); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestOpenBackendMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Seed: 7, SnapshotEvery: 1}
	c, _, err := Open(dir, Uniform(3, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "r", Count: 1}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := Open(dir, Uniform(4, 4), opts); err == nil {
		t.Fatal("host-count mismatch accepted")
	}
	if _, _, err := Open(dir, Uniform(3, 8), opts); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

// durableOp is one scripted mutation for the property and crash tests.
// Every op is deterministic given the backend's pure fault injectors.
type durableOp struct {
	desc string
	run  func(c *Cluster) error
}

// opSequence builds a deterministic pseudo-random op sequence. The rng
// only picks which ops appear — each op's behaviour is a pure function of
// cluster state, so the same sequence always produces the same states.
func opSequence(rng *rand.Rand, n int) []durableOp {
	return opSequenceLease(rng, n, false)
}

// opSequenceLease optionally mixes in lease collapses (ExpireLease).
// Those journal two records per op, so the crash matrix — whose
// invariant is "recovered state matches pre- or post-op exactly" —
// keeps them out and covers them in a dedicated mid-expiry test.
func opSequenceLease(rng *rand.Rand, n int, withExpire bool) []durableOp {
	hosts := []string{"h01", "h02", "h03", "h04", "h05"}
	var ops []durableOp
	resSeq := 0
	for i := 0; i < n; i++ {
		pick := rng.Intn(12)
		if !withExpire && pick == 10 {
			pick = 11
		}
		switch pick {
		case 0, 1, 2:
			resSeq++
			name := fmt.Sprintf("res%02d", resSeq)
			tenant := []string{"ops", "dev", "qa"}[rng.Intn(3)]
			count := 1 + rng.Intn(6)
			policy := PolicyPack
			if rng.Intn(2) == 0 {
				policy = PolicySpread
			}
			// Distinct weights make preemption live when Options.Preempt
			// is on; the rng only picks the weight, so the op itself stays
			// a pure function of cluster state.
			sp := Spec{Name: name, Tenant: tenant, Count: count, Policy: policy, Weight: 1 + rng.Intn(3)}
			ops = append(ops, durableOp{
				desc: "reserve " + name,
				run:  func(c *Cluster) error { _, err := c.Reserve(sp); return err },
			})
		case 3:
			name := fmt.Sprintf("res%02d", 1+rng.Intn(resSeq+1))
			ops = append(ops, durableOp{
				desc: "release " + name,
				run:  func(c *Cluster) error { return c.Release(name) },
			})
		case 4:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "cordon " + h,
				run:  func(c *Cluster) error { return c.Cordon(h) },
			})
		case 5:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "uncordon " + h,
				run:  func(c *Cluster) error { return c.Uncordon(h) },
			})
		case 6:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "drain " + h,
				run:  func(c *Cluster) error { _, err := c.Drain(h); return err },
			})
		case 7:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "fail-host " + h,
				run:  func(c *Cluster) error { _, err := c.FailHost(h); return err },
			})
		case 9:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "heartbeat " + h,
				run: func(c *Cluster) error {
					err := c.Heartbeat(h)
					if err != nil && !strings.Contains(err.Error(), "not enabled") &&
						!strings.Contains(err.Error(), "has failed") {
						return err
					}
					return nil
				},
			})
		case 10:
			h := hosts[rng.Intn(len(hosts))]
			ops = append(ops, durableOp{
				desc: "expire-lease " + h,
				run: func(c *Cluster) error {
					_, err := c.ExpireLease(h)
					return err
				},
			})
		default:
			ops = append(ops, durableOp{
				desc: "probe round",
				run:  func(c *Cluster) error { c.ProbeAll(); return nil },
			})
		}
	}
	return ops
}

// flakyBackend returns a 5-host backend whose probe and migrate faults
// are pure functions of their arguments — replay determinism depends on
// the backend giving the same answer to the same question every time.
func flakyBackend() *StaticBackend {
	b := Uniform(5, 4)
	b.SetProbeFunc(func(host string) error {
		if host == "h04" {
			return errors.New("h04 times out")
		}
		return nil
	})
	b.SetMigrateFunc(func(vm, from, to string, attempt int) error {
		if vm == "res02-vm002" { // this VM never migrates successfully
			return errors.New("stuck VM")
		}
		return nil
	})
	return b
}

// TestReplayEquivalenceProperty journals random op sequences and checks,
// per (seed × snapshot cadence), that the recovered cluster's full state
// DeepEquals the live one's.
func TestReplayEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 42, 2013} {
		for _, every := range []int{1, 3, 1000} { // compact constantly / often / never
			t.Run(fmt.Sprintf("seed=%d/snapshotEvery=%d", seed, every), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				ops := opSequenceLease(rng, 40, true)
				dir := t.TempDir()
				opts := Options{
					Seed:          uint64(seed),
					Retry:         instantRetry(),
					SnapshotEvery: every,
					Health:        HealthPolicy{FailAfter: 2, RecoverAfter: 1},
					Lease:         LeasePolicy{Enabled: true},
					Preempt:       true,
				}
				live, _, err := Open(dir, flakyBackend(), opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range ops {
					if err := op.run(live); err != nil && !errors.Is(err, ErrDegraded) &&
						(errors.Is(err, journal.ErrCrashed) || errors.Is(err, journal.ErrInjected)) {
						t.Fatalf("%s: unexpected journal failure: %v", op.desc, err)
					}
				}
				liveState := durableState(t, live)
				liveStatus := statusJSON(t, live)
				live.Close()

				rec, info, err := Open(dir, flakyBackend(), opts)
				if err != nil {
					t.Fatalf("recovery Open: %v", err)
				}
				defer rec.Close()
				if !info.Recovered {
					t.Fatalf("nothing recovered: %+v", info)
				}
				recState := durableState(t, rec)
				if !reflect.DeepEqual(liveState, recState) {
					t.Fatalf("recovered state != live state\n--- live\n%s\n--- recovered\n%s", liveState, recState)
				}
				if recStatus := statusJSON(t, rec); !bytes.Equal(liveStatus, recStatus) {
					t.Fatalf("recovered status != live status\n--- live\n%s\n--- recovered\n%s", liveStatus, recStatus)
				}
			})
		}
	}
}

// checkInvariants asserts the placement consistency properties that no
// crash is allowed to break: every reservation's VMs are placed or
// stranded exactly once, host maps mirror placements, no host exceeds
// capacity, and no VM appears under two reservations.
func checkInvariants(t *testing.T, c *Cluster, tag string) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	vmOwner := map[string]string{}
	for name, r := range c.res {
		placed := map[string]bool{}
		for vm, host := range r.placement {
			h, ok := c.hosts[host]
			if !ok {
				t.Fatalf("%s: %s places %s on unknown host %s", tag, name, vm, host)
			}
			if h.vms[vm] != name {
				t.Fatalf("%s: host %s map says %s owns %s, reservation %s claims it", tag, host, h.vms[vm], vm, name)
			}
			if r.stranded[vm] {
				t.Fatalf("%s: %s has VM %s both placed and stranded", tag, name, vm)
			}
			placed[vm] = true
			if prev, dup := vmOwner[vm]; dup {
				t.Fatalf("%s: VM %s owned by both %s and %s", tag, vm, prev, name)
			}
			vmOwner[vm] = name
		}
		inVMs := map[string]bool{}
		for _, vm := range r.vms {
			inVMs[vm] = true
		}
		for vm := range r.placement {
			if !inVMs[vm] {
				t.Fatalf("%s: %s placed unknown VM %s", tag, name, vm)
			}
		}
		for vm := range r.stranded {
			if !inVMs[vm] {
				t.Fatalf("%s: %s stranded unknown VM %s", tag, name, vm)
			}
		}
		switch r.state {
		case ResActive:
			if len(r.placement) != len(r.vms) || len(r.stranded) != 0 {
				t.Fatalf("%s: active %s has %d/%d placed, %d stranded", tag, name, len(r.placement), len(r.vms), len(r.stranded))
			}
		case ResQueued:
			if len(r.placement) != 0 {
				t.Fatalf("%s: queued %s has placements", tag, name)
			}
		}
	}
	for host, h := range c.hosts {
		if len(h.vms) > h.info.Capacity {
			t.Fatalf("%s: host %s holds %d VMs on capacity %d", tag, host, len(h.vms), h.info.Capacity)
		}
		for vm, resName := range h.vms {
			r, ok := c.res[resName]
			if !ok {
				t.Fatalf("%s: host %s holds VM %s of unknown reservation %s", tag, host, vm, resName)
			}
			if r.placement[vm] != host {
				t.Fatalf("%s: host %s holds %s but reservation places it on %s", tag, host, vm, r.placement[vm])
			}
		}
	}
}

// TestSchedCrashMatrix is the tentpole's robustness proof: it kills the
// journal at every I/O step of a randomized op sequence (with whole and
// torn final writes) and asserts that sched.Open always recovers a
// consistent cluster whose status is byte-identical to the state either
// before or after the op in flight — no reservation lost, duplicated, or
// double-placed, extending the drain multiset property to crashes.
func TestSchedCrashMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := opSequence(rng, 25)
	opts := func(fp *journal.Failpoints) Options {
		return Options{
			Seed:          99,
			Retry:         instantRetry(),
			SnapshotEvery: 5, // exercise compaction crash points too
			Health:        HealthPolicy{FailAfter: 2, RecoverAfter: 1},
			Lease:         LeasePolicy{Enabled: true},
			Preempt:       true,
			Journal:       journal.Options{Fail: fp},
		}
	}

	// Dry run: record the status after every op and count I/O steps.
	fp := &journal.Failpoints{}
	dry, _, err := Open(t.TempDir(), flakyBackend(), opts(fp))
	if err != nil {
		t.Fatal(err)
	}
	fp.Arm(0, 0)
	statuses := make([][]byte, 0, len(ops)+1)
	statuses = append(statuses, statusJSON(t, dry))
	for _, op := range ops {
		if err := op.run(dry); err != nil && (errors.Is(err, journal.ErrCrashed) || errors.Is(err, journal.ErrInjected)) {
			t.Fatalf("dry run: %s: %v", op.desc, err)
		}
		statuses = append(statuses, statusJSON(t, dry))
	}
	steps := fp.Steps()
	dry.Close()
	if steps < len(ops) {
		t.Fatalf("only %d I/O steps for %d ops", steps, len(ops))
	}

	crashed := func(c *Cluster) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.journalErr != nil
	}

	for failAt := 1; failAt <= steps; failAt++ {
		for _, torn := range []float64{0, 0.6, 1} {
			tag := fmt.Sprintf("failAt=%d torn=%.1f", failAt, torn)
			dir := t.TempDir()
			mfp := &journal.Failpoints{}
			c, _, err := Open(dir, flakyBackend(), opts(mfp))
			if err != nil {
				t.Fatalf("%s: Open: %v", tag, err)
			}
			mfp.Arm(failAt, torn)
			k := -1 // index of the op the crash hit
			for i, op := range ops {
				op.run(c)
				if crashed(c) {
					k = i
					break
				}
			}
			fired, point := mfp.Fired()
			if !fired || k < 0 {
				t.Fatalf("%s: failpoint did not fire during ops (fired=%v)", tag, fired)
			}
			c.Close()

			mfp.Arm(0, 0)
			rec, _, err := Open(dir, flakyBackend(), opts(mfp))
			if err != nil {
				t.Fatalf("%s (point %s, op %q): recovery failed: %v", tag, point, ops[k].desc, err)
			}
			checkInvariants(t, rec, tag)
			got := statusJSON(t, rec)
			if !bytes.Equal(got, statuses[k]) && !bytes.Equal(got, statuses[k+1]) {
				t.Fatalf("%s (point %s, op %q): recovered status matches neither pre- nor post-op state\n--- recovered\n%s\n--- pre\n%s\n--- post\n%s",
					tag, point, ops[k].desc, got, statuses[k], statuses[k+1])
			}
			// The recovered cluster must accept new work.
			if _, err := rec.Reserve(Spec{Name: "post-crash", Tenant: "qa", Count: 1}); err != nil && !errors.Is(err, ErrDegraded) {
				if !errors.Is(err, journal.ErrCrashed) && !errors.Is(err, journal.ErrInjected) {
					// Queued is fine; only journal failures are fatal here.
					t.Fatalf("%s: post-recovery Reserve: %v", tag, err)
				}
				t.Fatalf("%s: journal unusable after recovery: %v", tag, err)
			}
			rec.Close()
		}
	}
}

// TestDrainContextCancellation: a cancelled context aborts the drain
// mid-backoff; committed moves survive recovery.
func TestDrainContextCancellation(t *testing.T) {
	dir := t.TempDir()
	b := Uniform(3, 4)
	attempts := 0
	b.SetMigrateFunc(func(vm, from, to string, attempt int) error {
		attempts++
		return errors.New("migrate always fails")
	})
	opts := Options{
		Seed: 5,
		Retry: retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   time.Hour, // cancellation must win, not the sleep
		},
	}
	c, _, err := Open(dir, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Reserve(Spec{Name: "r", Count: 2}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.DrainContext(ctx, "h01")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DrainContext = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain ignored cancellation for %v", elapsed)
	}
	if attempts == 0 {
		t.Fatal("drain never reached the backend")
	}
	// The aborted drain's durable effect (the cordon) survives a reopen.
	c.Close()
	rec, _, err := Open(dir, b, opts)
	if err != nil {
		t.Fatalf("reopen after aborted drain: %v", err)
	}
	defer rec.Close()
	rec.mu.Lock()
	cordoned := rec.hosts["h01"].cordoned
	rec.mu.Unlock()
	if !cordoned {
		t.Fatal("cordon from aborted drain lost on recovery")
	}
}

// TestCrashMidPreemption kills the journal at every I/O step of a
// preempting reserve. The eviction lives inside one reserve command
// record, so recovery lands exactly pre- or post-reserve: either the
// victim is still active and the newcomer absent, or the victim is
// preempted/queued and the newcomer placed — never half an eviction.
func TestCrashMidPreemption(t *testing.T) {
	setup := func(fp *journal.Failpoints) (string, *Cluster) {
		dir := t.TempDir()
		opts := Options{
			Seed:          3,
			Retry:         instantRetry(),
			SnapshotEvery: 2, // the preempting reserve also crosses a compaction
			Preempt:       true,
			Journal:       journal.Options{Fail: fp},
		}
		c, _, err := Open(dir, Uniform(2, 3), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reserve(Spec{Name: "batch", Count: 6, Tenant: "batch", Weight: 1}); err != nil {
			t.Fatal(err)
		}
		return dir, c
	}

	// Dry run: how many I/O steps does the preempting reserve take?
	fp := &journal.Failpoints{}
	_, dry := setup(fp)
	fp.Arm(0, 0)
	if _, err := dry.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5}); err != nil {
		t.Fatal(err)
	}
	steps := fp.Steps()
	pre := `"batch","tenant":"batch","state":"active"`
	dry.Close()
	if steps == 0 {
		t.Fatal("preempting reserve performed no journal I/O")
	}
	_ = pre

	for failAt := 1; failAt <= steps; failAt++ {
		for _, torn := range []float64{0, 1} {
			tag := fmt.Sprintf("failAt=%d torn=%.0f", failAt, torn)
			mfp := &journal.Failpoints{}
			dir, c := setup(mfp)
			preStatus := statusJSON(t, c)
			mfp.Arm(failAt, torn)
			_, rerr := c.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5})
			if rerr == nil {
				t.Fatalf("%s: reserve survived the armed failpoint", tag)
			}
			c.Close()
			mfp.Arm(0, 0)
			rec, _, err := Open(dir, Uniform(2, 3), Options{
				Seed: 3, Retry: instantRetry(), SnapshotEvery: 2, Preempt: true,
				Journal: journal.Options{Fail: mfp},
			})
			if err != nil {
				t.Fatalf("%s: recovery: %v", tag, err)
			}
			checkInvariants(t, rec, tag)
			st := rec.Status()
			var batch, prod *ReservationStatus
			for i := range st.Reservations {
				switch st.Reservations[i].Name {
				case "batch":
					batch = &st.Reservations[i]
				case "prod":
					prod = &st.Reservations[i]
				}
			}
			if batch == nil {
				t.Fatalf("%s: victim reservation lost", tag)
			}
			switch {
			case prod == nil: // pre-reserve state
				if got := statusJSON(t, rec); !bytes.Equal(got, preStatus) {
					t.Fatalf("%s: pre-reserve state drifted\n--- recovered\n%s\n--- pre\n%s", tag, got, preStatus)
				}
			default: // post-reserve state
				if prod.State != ResActive || batch.State != ResQueued || !batch.Preempted {
					t.Fatalf("%s: half-applied preemption: prod=%+v batch=%+v", tag, prod, batch)
				}
			}
			rec.Close()
		}
	}
}

// TestCrashMidLeaseExpiry: ExpireLease journals two records (suspect,
// then dead-with-moves). A crash between them recovers a Suspected host
// — a valid intermediate state the lease loop finishes off — and a
// crash after either boundary recovers exactly that boundary.
func TestCrashMidLeaseExpiry(t *testing.T) {
	mkOpts := func(fp *journal.Failpoints) Options {
		return Options{
			Seed:          11,
			Retry:         instantRetry(),
			SnapshotEvery: 1000,
			Lease:         LeasePolicy{Enabled: true},
			Journal:       journal.Options{Fail: fp},
		}
	}
	setup := func(fp *journal.Failpoints) (string, *Cluster) {
		dir := t.TempDir()
		c, _, err := Open(dir, Uniform(3, 4), mkOpts(fp))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reserve(Spec{Name: "web", Count: 6, Tenant: "ops"}); err != nil {
			t.Fatal(err)
		}
		return dir, c
	}

	fp := &journal.Failpoints{}
	_, dry := setup(fp)
	fp.Arm(0, 0)
	if _, err := dry.ExpireLease("h01"); err != nil && !errors.Is(err, ErrDegraded) {
		t.Fatal(err)
	}
	steps := fp.Steps()
	dry.Close()
	if steps < 2 {
		t.Fatalf("expire journaled %d I/O steps, want >= 2 (suspect + dead)", steps)
	}

	for failAt := 1; failAt <= steps; failAt++ {
		for _, torn := range []float64{0, 1} {
			tag := fmt.Sprintf("failAt=%d torn=%.0f", failAt, torn)
			mfp := &journal.Failpoints{}
			dir, c := setup(mfp)
			mfp.Arm(failAt, torn)
			if _, err := c.ExpireLease("h01"); err == nil {
				t.Fatalf("%s: expire survived the armed failpoint", tag)
			}
			c.Close()
			mfp.Arm(0, 0)
			rec, _, err := Open(dir, Uniform(3, 4), mkOpts(mfp))
			if err != nil {
				t.Fatalf("%s: recovery: %v", tag, err)
			}
			checkInvariants(t, rec, tag)
			rec.mu.Lock()
			h := rec.hosts["h01"].health
			vms := len(rec.hosts["h01"].vms)
			rec.mu.Unlock()
			switch h {
			case Healthy: // crash before the suspect record landed
			case Suspected: // valid intermediate: VMs still aboard
				if vms == 0 {
					t.Fatalf("%s: suspected host already emptied", tag)
				}
				// The lease machinery can finish the collapse after recovery.
				if _, err := rec.ExpireLease("h01"); err != nil && !errors.Is(err, ErrDegraded) {
					t.Fatalf("%s: finishing the collapse: %v", tag, err)
				}
				if got := hostHealth(rec, "h01"); got != Dead {
					t.Fatalf("%s: collapse did not finish: %s", tag, got)
				}
			case Dead: // both records landed
				if vms != 0 {
					t.Fatalf("%s: dead host still holds %d VMs", tag, vms)
				}
			default:
				t.Fatalf("%s: unexpected health %s", tag, h)
			}
			checkInvariants(t, rec, tag+" (post)")
			rec.Close()
		}
	}
}
