package sched

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// CapacityReport is the cluster's capacity ledger at one instant — the
// structured half of a graceful-degradation error, and the footer of
// Status output.
type CapacityReport struct {
	Hosts       int `json:"hosts"`
	Schedulable int `json:"schedulable"`
	Cordoned    int `json:"cordoned"`
	Unhealthy   int `json:"unhealthy"`
	Failed      int `json:"failed"`
	Suspected   int `json:"suspected,omitempty"`
	Dead        int `json:"dead,omitempty"`
	TotalSlots  int `json:"total_slots"` // across schedulable hosts
	UsedSlots   int `json:"used_slots"`  // across schedulable hosts
	FreeSlots   int `json:"free_slots"`
	QueuedVMs   int `json:"queued_vms"`
	StrandedVMs int `json:"stranded_vms"`
	WantedVMs   int `json:"wanted_vms,omitempty"` // unplaceable demand that triggered this report
}

// Summary renders the report as one line.
func (r CapacityReport) Summary() string {
	return fmt.Sprintf("%d/%d schedulable hosts, %d/%d slots used, %d free, %d queued, %d stranded",
		r.Schedulable, r.Hosts, r.UsedSlots, r.TotalSlots, r.FreeSlots, r.QueuedVMs, r.StrandedVMs)
}

// capacityLocked computes the current capacity ledger (lock held).
func (c *Cluster) capacityLocked(wanted int) CapacityReport {
	rep := CapacityReport{Hosts: len(c.hosts), WantedVMs: wanted}
	for _, name := range c.hostNames {
		h := c.hosts[name]
		switch {
		case h.health == Failed:
			rep.Failed++
		case h.health == Dead:
			rep.Dead++
		case h.health == Suspected:
			rep.Suspected++
		case h.health == Unhealthy:
			rep.Unhealthy++
		case h.cordoned:
			rep.Cordoned++
		default:
			rep.Schedulable++
			rep.TotalSlots += h.info.Capacity
			rep.UsedSlots += len(h.vms)
		}
	}
	rep.FreeSlots = rep.TotalSlots - rep.UsedSlots
	for _, r := range c.res {
		if r.state == ResQueued {
			rep.QueuedVMs += len(r.vms)
		}
		rep.StrandedVMs += len(r.stranded)
	}
	return rep
}

// Capacity returns the current capacity ledger.
func (c *Cluster) Capacity() CapacityReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacityLocked(0)
}

// HostStatus is one host's public snapshot.
type HostStatus struct {
	Name     string   `json:"name"`
	State    string   `json:"state"` // healthy, cordoned, unhealthy, failed
	Capacity int      `json:"capacity"`
	Used     int      `json:"used"`
	VMs      []string `json:"vms,omitempty"`
}

// Status is the whole cluster's snapshot, rendered deterministically:
// hosts in name order, reservations in arrival order.
type Status struct {
	Seed         uint64              `json:"seed"`
	Hosts        []HostStatus        `json:"hosts"`
	Reservations []ReservationStatus `json:"reservations"`
	Capacity     CapacityReport      `json:"capacity"`
}

// Status captures the cluster's current state.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Seed: c.opts.Seed, Capacity: c.capacityLocked(0)}
	for _, name := range c.hostNames {
		h := c.hosts[name]
		hs := HostStatus{Name: name, State: h.stateLabel(), Capacity: h.info.Capacity, Used: len(h.vms)}
		for vm := range h.vms {
			hs.VMs = append(hs.VMs, vm)
		}
		sort.Strings(hs.VMs)
		st.Hosts = append(st.Hosts, hs)
	}
	for _, r := range c.resByArrival() {
		st.Reservations = append(st.Reservations, c.statusOf(r))
	}
	return st
}

// JSON renders the status as indented JSON.
func (s Status) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b) + "\n"
}

// Table renders the status as aligned text tables — the human half of the
// anksched status command. Byte-deterministic for a given cluster state.
func (s Status) Table() string {
	var sb strings.Builder
	sb.WriteString("HOST        STATE      USED  CAP  VMS\n")
	for _, h := range s.Hosts {
		vms := summarizeVMs(h.VMs, 4)
		fmt.Fprintf(&sb, "%-11s %-10s %4d %4d  %s\n", h.Name, h.State, h.Used, h.Capacity, vms)
	}
	sb.WriteString("\nRESERVATION      TENANT    STATE     WEIGHT  VMS  HOSTS\n")
	for _, r := range s.Reservations {
		hosts := summarizeVMs(r.Hosts, 4)
		state := string(r.State)
		if r.Preempted {
			state = "preempted"
		}
		if len(r.Stranded) > 0 {
			state = fmt.Sprintf("%s(%d)", r.State, len(r.Stranded))
		}
		fmt.Fprintf(&sb, "%-16s %-9s %-11s %4d %4d  %s\n", r.Name, r.Tenant, state, r.Weight, r.VMs, hosts)
	}
	fmt.Fprintf(&sb, "\ncapacity: %s\n", s.Capacity.Summary())
	return sb.String()
}

// summarizeVMs joins up to max names, eliding the rest as "+N".
func summarizeVMs(names []string, max int) string {
	if len(names) == 0 {
		return "-"
	}
	if len(names) <= max {
		return strings.Join(names, ",")
	}
	return strings.Join(names[:max], ",") + fmt.Sprintf(",+%d", len(names)-max)
}
