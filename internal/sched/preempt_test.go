package sched

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"autonetkit/internal/obs"
	"autonetkit/internal/retry"
)

func preemptOpts() Options {
	return Options{Seed: 2013, Preempt: true, Retry: fastRetry(2)}
}

func resState(t *testing.T, c *Cluster, name string) ReservationStatus {
	t.Helper()
	for _, r := range c.Status().Reservations {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no reservation %s", name)
	return ReservationStatus{}
}

func TestPreemptEvictsLowerWeight(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 3), preemptOpts())
	// Fill the cluster with a weight-1 tenant.
	if _, err := c.Reserve(Spec{Name: "batch", Count: 6, Tenant: "batch", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	// A weight-5 tenant arrives needing room: the batch job is evicted.
	st, err := c.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResActive {
		t.Fatalf("prod state = %s", st.State)
	}
	victim := resState(t, c, "batch")
	if victim.State != ResQueued || !victim.Preempted {
		t.Fatalf("victim = %+v", victim)
	}
	checkInvariant(t, c)
	// Releasing prod re-admits the victim and clears the flag.
	if err := c.Release("prod"); err != nil {
		t.Fatal(err)
	}
	victim = resState(t, c, "batch")
	if victim.State != ResActive || victim.Preempted {
		t.Fatalf("victim after release = %+v", victim)
	}
	checkInvariant(t, c)
}

func TestPreemptDisabledByDefault(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 3), Options{Seed: 2013})
	if _, err := c.Reserve(Spec{Name: "batch", Count: 6, Tenant: "batch", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResQueued {
		t.Fatalf("without Preempt, prod should queue, got %s", st.State)
	}
	if v := resState(t, c, "batch"); v.State != ResActive {
		t.Fatalf("batch = %+v", v)
	}
}

func TestPreemptNeverEvictsEqualOrHigherWeight(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 3), preemptOpts())
	if _, err := c.Reserve(Spec{Name: "a", Count: 6, Tenant: "ta", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Reserve(Spec{Name: "b", Count: 4, Tenant: "tb", Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResQueued {
		t.Fatalf("equal weight preempted: %s", st.State)
	}
	if v := resState(t, c, "a"); v.State != ResActive {
		t.Fatalf("a = %+v", v)
	}
}

// TestPreemptVictimOrder: lowest weight evicts first; within a weight,
// the youngest arrival goes first.
func TestPreemptVictimOrder(t *testing.T) {
	c := newTestCluster(t, Uniform(3, 2), preemptOpts())
	// Three 2-VM jobs fill 6 slots: weight 2 (oldest), weight 1 older,
	// weight 1 younger.
	for _, sp := range []Spec{
		{Name: "mid", Count: 2, Tenant: "mid", Weight: 2},
		{Name: "low-old", Count: 2, Tenant: "low1", Weight: 1},
		{Name: "low-young", Count: 2, Tenant: "low2", Weight: 1},
	} {
		if _, err := c.Reserve(sp); err != nil {
			t.Fatal(err)
		}
	}
	// Needs exactly 2 slots: only the youngest weight-1 job is evicted.
	if _, err := c.Reserve(Spec{Name: "prod", Count: 2, Tenant: "prod", Weight: 5}); err != nil {
		t.Fatal(err)
	}
	if v := resState(t, c, "low-young"); v.State != ResQueued || !v.Preempted {
		t.Fatalf("low-young = %+v", v)
	}
	for _, name := range []string{"mid", "low-old"} {
		if v := resState(t, c, name); v.State != ResActive || v.Preempted {
			t.Fatalf("%s = %+v", name, v)
		}
	}
	checkInvariant(t, c)
}

// TestPreemptRollsBackWhenHopeless: when even evicting every candidate
// cannot fit the newcomer, no victim is touched.
func TestPreemptRollsBackWhenHopeless(t *testing.T) {
	c := newTestCluster(t, Uniform(2, 3), preemptOpts())
	if _, err := c.Reserve(Spec{Name: "batch", Count: 6, Tenant: "batch", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	before := c.Status().Hosts
	// 8 VMs can never fit a 6-slot cluster.
	st, err := c.Reserve(Spec{Name: "huge", Count: 8, Tenant: "prod", Weight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != ResQueued {
		t.Fatalf("huge = %s", st.State)
	}
	if v := resState(t, c, "batch"); v.State != ResActive || v.Preempted {
		t.Fatalf("victim touched by hopeless preemption: %+v", v)
	}
	// Only the new queued reservation differs; every host's placement is
	// exactly as before.
	if after := c.Status().Hosts; !reflect.DeepEqual(before, after) {
		t.Fatalf("host placements changed by hopeless preemption:\nbefore %+v\nafter  %+v", before, after)
	}
	checkInvariant(t, c)
}

// TestPreemptEvictedVictimMayRefit: after eviction, leftover capacity is
// offered back to the queue — a small victim can land elsewhere at once.
func TestPreemptEvictedVictimMayRefit(t *testing.T) {
	c := newTestCluster(t, Uniform(3, 2), preemptOpts())
	if _, err := c.Reserve(Spec{Name: "small", Count: 2, Tenant: "batch", Weight: 1, Policy: PolicyPack}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "mid", Count: 2, Tenant: "ops", Weight: 2, Policy: PolicyPack}); err != nil {
		t.Fatal(err)
	}
	// 4 free slots remain but the newcomer wants 4 spread across hosts
	// with 2 free each — eviction of "small" frees a host, and "small"
	// can then re-land on the leftovers.
	if _, err := c.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5, Policy: PolicyPack}); err != nil {
		t.Fatal(err)
	}
	prod := resState(t, c, "prod")
	if prod.State != ResActive {
		t.Fatalf("prod = %+v", prod)
	}
	small := resState(t, c, "small")
	if small.State == ResActive && small.Preempted {
		t.Fatalf("re-admitted victim kept its preempted flag: %+v", small)
	}
	checkInvariant(t, c)
}

// TestPreemptReplaysThroughJournal: the eviction happens inside the
// journaled reserve command, so reopening replays it byte-identically.
func TestPreemptReplaysThroughJournal(t *testing.T) {
	for _, snapEvery := range []int{1, 1000} {
		dir := t.TempDir()
		opts := preemptOpts()
		opts.SnapshotEvery = snapEvery
		c, _, err := Open(dir, Uniform(2, 3), opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reserve(Spec{Name: "batch", Count: 6, Tenant: "batch", Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reserve(Spec{Name: "prod", Count: 4, Tenant: "prod", Weight: 5}); err != nil {
			t.Fatal(err)
		}
		before := []byte(c.Status().JSON())
		c.Close()
		rec, _, err := Open(dir, Uniform(2, 3), opts)
		if err != nil {
			t.Fatalf("snapEvery=%d: %v", snapEvery, err)
		}
		if after := []byte(rec.Status().JSON()); !bytes.Equal(before, after) {
			t.Fatalf("snapEvery=%d: preemption drifted across replay:\n--- before\n%s\n--- after\n%s",
				snapEvery, before, after)
		}
		rec.Close()
	}
}

// TestPreemptSnapshotModeMismatchRejected: a snapshot taken under one
// preemption mode cannot be reopened under the other — the journal
// records after it were decided under that mode.
func TestPreemptSnapshotModeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	opts := preemptOpts()
	opts.SnapshotEvery = 1
	c, _, err := Open(dir, Uniform(2, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(Spec{Name: "batch", Count: 2, Tenant: "batch"}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	opts.Preempt = false
	if _, _, err := Open(dir, Uniform(2, 3), opts); err == nil {
		t.Fatal("reopen with flipped preempt mode succeeded")
	} else if !strings.Contains(err.Error(), "preempt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestMigrateBreakerShortCircuits: a host whose circuit is open strands
// migrations immediately instead of burning attempts against it.
func TestMigrateBreakerShortCircuits(t *testing.T) {
	fb := NewFlakyBackend(Uniform(3, 4), 1)
	opts := Options{Seed: 2013, Obs: obs.NewCollector()}
	opts.Retry = fastRetry(2)
	opts.Retry.Breaker = retry.NewBreakerSet(retry.BreakerConfig{
		FailAfter: 2,
		OpenFor:   time.Hour, // never reopens within the test
	})
	c := newTestCluster(t, fb, opts)
	if _, err := c.Reserve(Spec{Name: "web", Count: 9, Tenant: "ops", Policy: PolicySpread}); err != nil {
		t.Fatal(err)
	}
	// Every migration target fails; repeated drains trip the breakers.
	for _, h := range []string{"h01", "h02", "h03"} {
		fb.SetMigrateFailRate(h, 1)
	}
	if _, err := c.Drain("h01"); err == nil {
		t.Fatal("drain with all targets failing succeeded")
	}
	// The next drain meets open circuits: stranded immediately, and the
	// short-circuit counter moves.
	if _, err := c.Drain("h02"); err == nil {
		t.Fatal("second drain succeeded")
	}
	if got := opts.Obs.Counter(obs.CounterBreakerShortCircuits); got == 0 {
		t.Fatal("no breaker short-circuits recorded")
	}
	checkInvariant(t, c)
}
