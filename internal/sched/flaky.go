package sched

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// FlakyBackend decorates any Backend with deterministic, FNV-seeded
// fault schedules: per-host probe and migration failure rates, and
// silenced hosts that stop answering heartbeats (and everything else).
// Whether a given call fails is a pure function of (seed, operation,
// arguments) — no randomness source, no call ordering — so a chaos
// drill that sets the same rates under the same seed reproduces the
// same faults byte-for-byte at any worker count and across a crash.
type FlakyBackend struct {
	inner Backend
	seed  uint64

	mu          sync.Mutex
	migrateRate map[string]float64 // keyed by target host
	probeRate   map[string]float64
	probeCount  map[string]int // per-host probe index, so rates sample over rounds
	silent      map[string]bool
}

// NewFlakyBackend wraps a backend with an FNV-seeded fault schedule.
func NewFlakyBackend(inner Backend, seed uint64) *FlakyBackend {
	return &FlakyBackend{
		inner:       inner,
		seed:        seed,
		migrateRate: map[string]float64{},
		probeRate:   map[string]float64{},
		probeCount:  map[string]int{},
		silent:      map[string]bool{},
	}
}

// SetMigrateFailRate makes migrations *to* the host fail at the given
// rate (0..1), decided per (vm, host, attempt) — retries of the same
// move re-roll, so a 0.5-rate host still drains, slowly.
func (b *FlakyBackend) SetMigrateFailRate(host string, rate float64) {
	b.mu.Lock()
	b.migrateRate[host] = rate
	b.mu.Unlock()
}

// SetProbeFailRate makes the host's health probes fail at the given
// rate (0..1), decided per (host, consecutive probe index).
func (b *FlakyBackend) SetProbeFailRate(host string, rate float64) {
	b.mu.Lock()
	b.probeRate[host] = rate
	b.mu.Unlock()
}

// Silence makes the host stop answering: probes and heartbeats error,
// migrations to it fail. The lease machinery turns sustained silence
// into suspected, then dead.
func (b *FlakyBackend) Silence(host string) {
	b.mu.Lock()
	b.silent[host] = true
	b.mu.Unlock()
}

// Unsilence lets the host answer again.
func (b *FlakyBackend) Unsilence(host string) {
	b.mu.Lock()
	delete(b.silent, host)
	b.mu.Unlock()
}

// Silenced reports whether the host is currently silenced.
func (b *FlakyBackend) Silenced(host string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.silent[host]
}

// roll is the deterministic coin: FNV-1a over (seed, key) mapped to
// [0,1), compared against the rate.
func (b *FlakyBackend) roll(key string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", b.seed, key)
	return float64(h.Sum64()%1000)/1000.0 < rate
}

// Discover passes through to the wrapped backend.
func (b *FlakyBackend) Discover() ([]HostInfo, error) { return b.inner.Discover() }

// Probe errors for silenced hosts, rolls the host's fault schedule,
// then consults the wrapped backend.
func (b *FlakyBackend) Probe(host string) error {
	b.mu.Lock()
	silent, rate := b.silent[host], b.probeRate[host]
	n := b.probeCount[host]
	b.probeCount[host] = n + 1
	b.mu.Unlock()
	if silent {
		return fmt.Errorf("flaky: host %s is silent", host)
	}
	if b.roll(fmt.Sprintf("probe/%s/%d", host, n), rate) {
		return fmt.Errorf("flaky: probe %d of %s dropped (scheduled fault)", n, host)
	}
	return b.inner.Probe(host)
}

// Migrate fails moves onto silenced or scheduled-faulty targets, then
// consults the wrapped backend.
func (b *FlakyBackend) Migrate(vm, from, to string, attempt int) error {
	b.mu.Lock()
	silent, rate := b.silent[to], b.migrateRate[to]
	b.mu.Unlock()
	if silent {
		return fmt.Errorf("flaky: target %s is silent", to)
	}
	if b.roll(fmt.Sprintf("migrate/%s/%s/%d", to, vm, attempt), rate) {
		return fmt.Errorf("flaky: migration of %s to %s dropped (scheduled fault, attempt %d)", vm, to, attempt)
	}
	return b.inner.Migrate(vm, from, to, attempt)
}

// Heartbeat implements the Heartbeater extension: silenced hosts miss
// their renewals; everyone else renews (or defers to the wrapped
// backend when it is a Heartbeater too).
func (b *FlakyBackend) Heartbeat(host string) error {
	b.mu.Lock()
	silent := b.silent[host]
	b.mu.Unlock()
	if silent {
		return fmt.Errorf("flaky: host %s is silent", host)
	}
	if hb, ok := b.inner.(Heartbeater); ok {
		return hb.Heartbeat(host)
	}
	return nil
}
