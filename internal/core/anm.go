// Package core implements the paper's primary contribution: the Abstract
// Network Model (ANM, §5.2) — a set of named overlay graphs over a shared
// node universe, with lightweight node and edge accessor objects that give
// network design code a clean syntax:
//
//	anm := core.NewANM()
//	gIn, _ := anm.AddOverlay("input")
//	...
//	gOspf, _ := anm.AddOverlay("ospf")
//	gOspf.AddNodesFrom(gIn.Routers(), "asn")
//	gOspf.AddEdgesFromWhere(gIn.Edges(), func(e core.EdgeView) bool {
//	    return e.Src().ASN() == e.Dst().ASN()
//	}, core.EdgeOpts{})
//
// Because every overlay shares node identifiers, cross-layer access (§5.2.3)
// is a constant-time lookup: gIP.Node(ibgpNode.ID()).Get("loopback").
package core

import (
	"fmt"
	"sort"

	"autonetkit/internal/graph"
)

// Well-known overlay names created by default.
const (
	OverlayInput = "input"
	OverlayPhy   = "phy"
)

// Common attribute keys used across the design layers.
const (
	AttrASN        = "asn"
	AttrDeviceType = "device_type"
	AttrPlatform   = "platform"
	AttrSyntax     = "syntax"
	AttrHost       = "host"
	AttrLabel      = "label"
)

// Device types understood by the design rules; arbitrary further types are
// allowed (§5.2.2: user-definable device types).
const (
	DeviceRouter          = "router"
	DeviceServer          = "server"
	DeviceSwitch          = "switch"
	DeviceCollisionDomain = "collision_domain"
)

// ANM is the Abstract Network Model: an ordered collection of overlay
// graphs. The zero value is not usable; construct with NewANM.
type ANM struct {
	overlays map[string]*Overlay
	order    []string
}

// NewANM returns a model pre-populated with an empty physical overlay
// (paper: anm['phy'] exists from the start).
func NewANM() *ANM {
	anm := &ANM{overlays: map[string]*Overlay{}}
	_, _ = anm.AddOverlay(OverlayPhy)
	return anm
}

// AddOverlay creates a new undirected overlay with the given name.
func (a *ANM) AddOverlay(name string) (*Overlay, error) {
	return a.addOverlay(name, graph.New())
}

// AddOverlayDirected creates a new directed overlay (BGP sessions, RPKI
// hierarchies).
func (a *ANM) AddOverlayDirected(name string) (*Overlay, error) {
	return a.addOverlay(name, graph.NewDirected())
}

// AddOverlayGraph installs an existing graph as an overlay, as the paper's
// add_overlay("input", graph=data) does with loaded topologies.
func (a *ANM) AddOverlayGraph(name string, g *graph.Graph) (*Overlay, error) {
	return a.addOverlay(name, g)
}

func (a *ANM) addOverlay(name string, g *graph.Graph) (*Overlay, error) {
	if name == "" {
		return nil, fmt.Errorf("core: overlay name must not be empty")
	}
	if _, exists := a.overlays[name]; exists {
		return nil, fmt.Errorf("core: overlay %q already exists", name)
	}
	ov := &Overlay{name: name, anm: a, g: g}
	a.overlays[name] = ov
	a.order = append(a.order, name)
	return ov, nil
}

// Overlay returns the named overlay, or nil when absent. This is the
// paper's anm['ospf'] accessor.
func (a *ANM) Overlay(name string) *Overlay { return a.overlays[name] }

// HasOverlay reports whether the named overlay exists.
func (a *ANM) HasOverlay(name string) bool { _, ok := a.overlays[name]; return ok }

// MustOverlay returns the named overlay or panics; for design scripts where
// the overlay is known to exist.
func (a *ANM) MustOverlay(name string) *Overlay {
	ov := a.overlays[name]
	if ov == nil {
		panic(fmt.Sprintf("core: no overlay %q", name))
	}
	return ov
}

// OverlayNames returns overlay names in creation order.
func (a *ANM) OverlayNames() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// RemoveOverlay deletes an overlay; absent names are a no-op.
func (a *ANM) RemoveOverlay(name string) {
	if _, ok := a.overlays[name]; !ok {
		return
	}
	delete(a.overlays, name)
	for i, n := range a.order {
		if n == name {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// Overlay is one layer of the model: a named attribute graph plus the API
// the design rules use.
type Overlay struct {
	name string
	anm  *ANM
	g    *graph.Graph
}

// Name returns the overlay's name.
func (o *Overlay) Name() string { return o.name }

// ANM returns the owning model.
func (o *Overlay) ANM() *ANM { return o.anm }

// Graph exposes the underlying attribute graph — the paper's
// unwrap_graph(), used to run graph algorithms (§7.1).
func (o *Overlay) Graph() *graph.Graph { return o.g }

// Directed reports whether the overlay's graph is directed.
func (o *Overlay) Directed() bool { return o.g.Directed() }

// Data returns the overlay-level attribute map (paper §5.2.1:
// G_ip.data.infra_blocks).
func (o *Overlay) Data() graph.Attrs { return o.g.Attrs() }

// Set assigns an overlay-level attribute.
func (o *Overlay) Set(key string, v any) { o.g.Set(key, v) }

// Get reads an overlay-level attribute.
func (o *Overlay) Get(key string) any { return o.g.Get(key) }

// NumNodes returns the overlay's node count.
func (o *Overlay) NumNodes() int { return o.g.NumNodes() }

// NumEdges returns the overlay's edge count.
func (o *Overlay) NumEdges() int { return o.g.NumEdges() }

// HasNode reports whether the node exists in this overlay.
func (o *Overlay) HasNode(id graph.ID) bool { return o.g.HasNode(id) }

// Node returns a view of the node in this overlay. The view is valid even
// if the node is absent (IsValid reports false), enabling optional
// cross-layer lookups.
func (o *Overlay) Node(id graph.ID) NodeView { return NodeView{ov: o, id: id} }

// AddNode inserts a node with attributes and returns its view.
func (o *Overlay) AddNode(id graph.ID, attrs ...graph.Attrs) NodeView {
	o.g.AddNode(id, attrs...)
	return NodeView{ov: o, id: id}
}

// RemoveNode removes a node and incident edges from this overlay only.
func (o *Overlay) RemoveNode(id graph.ID) { o.g.RemoveNode(id) }

// Nodes returns views of every node, in insertion order.
func (o *Overlay) Nodes() []NodeView {
	ids := o.g.NodeIDs()
	out := make([]NodeView, len(ids))
	for i, id := range ids {
		out[i] = NodeView{ov: o, id: id}
	}
	return out
}

// NodesWhere returns the nodes whose attribute key equals value — the
// paper's G_in.nodes(device_type="router") selector.
func (o *Overlay) NodesWhere(key string, value any) []NodeView {
	var out []NodeView
	for _, n := range o.Nodes() {
		if looseEq(n.Get(key), value) {
			out = append(out, n)
		}
	}
	return out
}

// Routers is the paper's G_in.routers() shortcut.
func (o *Overlay) Routers() []NodeView { return o.NodesWhere(AttrDeviceType, DeviceRouter) }

// Servers returns the server nodes.
func (o *Overlay) Servers() []NodeView { return o.NodesWhere(AttrDeviceType, DeviceServer) }

// Switches returns the switch nodes.
func (o *Overlay) Switches() []NodeView { return o.NodesWhere(AttrDeviceType, DeviceSwitch) }

// AddEdge inserts an edge between two node IDs (adding missing endpoints)
// and returns its view.
func (o *Overlay) AddEdge(u, v graph.ID, attrs ...graph.Attrs) EdgeView {
	e := o.g.AddEdge(u, v, attrs...)
	return EdgeView{ov: o, e: e}
}

// RemoveEdge removes the edge u-v (u->v when directed).
func (o *Overlay) RemoveEdge(u, v graph.ID) { o.g.RemoveEdge(u, v) }

// HasEdge reports whether the edge exists.
func (o *Overlay) HasEdge(u, v graph.ID) bool { return o.g.HasEdge(u, v) }

// Edge returns a view of the edge u-v; IsValid is false when absent.
func (o *Overlay) Edge(u, v graph.ID) EdgeView { return EdgeView{ov: o, e: o.g.Edge(u, v)} }

// Edges returns views of every edge in insertion order.
func (o *Overlay) Edges() []EdgeView {
	es := o.g.Edges()
	out := make([]EdgeView, len(es))
	for i, e := range es {
		out[i] = EdgeView{ov: o, e: e}
	}
	return out
}

// EdgesWhere returns the edges whose attribute key equals value — the
// paper's G_in.edges(type="physical").
func (o *Overlay) EdgesWhere(key string, value any) []EdgeView {
	var out []EdgeView
	for _, e := range o.Edges() {
		if looseEq(e.Get(key), value) {
			out = append(out, e)
		}
	}
	return out
}

// EdgeOpts controls AddEdgesFrom behaviour.
type EdgeOpts struct {
	// Bidirected adds the reverse edge too (directed overlays; paper's
	// bidirected=1 for BGP sessions).
	Bidirected bool
	// Retain lists source-edge attribute keys to copy onto the new edges.
	Retain []string
	// Attrs are extra attributes set on every new edge.
	Attrs graph.Attrs
}

// AddNodesFrom copies nodes (by ID) from another overlay's views into this
// one, retaining the listed attribute keys (paper §5.2.1).
func (o *Overlay) AddNodesFrom(nodes []NodeView, retain ...string) []NodeView {
	out := make([]NodeView, 0, len(nodes))
	for _, n := range nodes {
		attrs := graph.Attrs{}
		for _, key := range retain {
			if v := n.Get(key); v != nil {
				attrs[key] = v
			}
		}
		out = append(out, o.AddNode(n.ID(), attrs))
	}
	return out
}

// AddEdgesFrom copies edges (by endpoint IDs) from other overlays' views,
// implicitly creating endpoints that are missing here.
func (o *Overlay) AddEdgesFrom(edges []EdgeView, opts EdgeOpts) []EdgeView {
	var out []EdgeView
	for _, src := range edges {
		attrs := graph.Attrs{}
		for _, key := range opts.Retain {
			if v := src.Get(key); v != nil {
				attrs[key] = v
			}
		}
		attrs.Merge(opts.Attrs)
		out = append(out, o.AddEdge(src.SrcID(), src.DstID(), attrs))
		if opts.Bidirected && o.g.Directed() {
			out = append(out, o.AddEdge(src.DstID(), src.SrcID(), attrs.Clone()))
		}
	}
	return out
}

// AddEdgesFromWhere copies only the edges passing pred — the idiom used by
// every design rule (eqs. 1 and 3 of the paper).
func (o *Overlay) AddEdgesFromWhere(edges []EdgeView, pred func(EdgeView) bool, opts EdgeOpts) []EdgeView {
	return o.AddEdgesFrom(filterEdgeViews(edges, pred), opts)
}

// AddEdgePairs inserts edges for explicit ID pairs — the idiom of eq. 2
// (iBGP full mesh over the node product).
func (o *Overlay) AddEdgePairs(pairs [][2]graph.ID, opts EdgeOpts) []EdgeView {
	var out []EdgeView
	for _, p := range pairs {
		attrs := graph.Attrs{}
		attrs.Merge(opts.Attrs)
		out = append(out, o.AddEdge(p[0], p[1], attrs))
		if opts.Bidirected && o.g.Directed() {
			out = append(out, o.AddEdge(p[1], p[0], attrs.Clone()))
		}
	}
	return out
}

// RemoveEdgesWhere removes the edges matching pred (paper §5.2.3: building
// an IGP graph by deleting inter-AS links).
func (o *Overlay) RemoveEdgesWhere(pred func(EdgeView) bool) int {
	removed := 0
	for _, e := range o.Edges() {
		if pred(e) {
			o.g.RemoveEdge(e.SrcID(), e.DstID())
			removed++
		}
	}
	return removed
}

// CopyAttrFrom copies node attribute srcAttr from overlay src onto the
// nodes of this overlay under dstAttr (paper's copy_attr_from).
func (o *Overlay) CopyAttrFrom(src *Overlay, srcAttr, dstAttr string) {
	for _, n := range o.Nodes() {
		if sv := src.Node(n.ID()); sv.IsValid() {
			if v := sv.Get(srcAttr); v != nil {
				n.Set(dstAttr, v)
			}
		}
	}
}

// GroupBy buckets this overlay's nodes by an attribute (paper §5.2.4).
func (o *Overlay) GroupBy(key string) []NodeGroup {
	raw := graph.GroupBy(o.g.Nodes(), key)
	out := make([]NodeGroup, len(raw))
	for i, g := range raw {
		grp := NodeGroup{Key: g.Key}
		for _, n := range g.Members {
			grp.Members = append(grp.Members, NodeView{ov: o, id: n.ID()})
		}
		out[i] = grp
	}
	return out
}

// NodeGroup is one GroupBy bucket of node views.
type NodeGroup struct {
	Key     any
	Members []NodeView
}

// ASNs returns the sorted distinct ASN values present on this overlay's
// nodes.
func (o *Overlay) ASNs() []int {
	set := map[int]bool{}
	for _, n := range o.Nodes() {
		if asn, ok := n.TryASN(); ok {
			set[asn] = true
		}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// String summarises the overlay.
func (o *Overlay) String() string {
	return fmt.Sprintf("overlay %q: %v", o.name, o.g)
}

func looseEq(a, b any) bool {
	if a == b {
		return true
	}
	af, aok := graph.ToFloat(a)
	bf, bok := graph.ToFloat(b)
	return aok && bok && af == bf
}

func filterEdgeViews(edges []EdgeView, pred func(EdgeView) bool) []EdgeView {
	var out []EdgeView
	for _, e := range edges {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}
