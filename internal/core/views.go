package core

import (
	"fmt"

	"autonetkit/internal/graph"
)

// NodeView is a lightweight accessor for a node within a specific overlay
// (paper §5.2: "wrapping each of the graphs, nodes, and edges with a
// lightweight accessor object"). Views are values; copying is free.
type NodeView struct {
	ov *Overlay
	id graph.ID
}

// ID returns the node identifier, shared across overlays.
func (n NodeView) ID() graph.ID { return n.id }

// Overlay returns the overlay this view reads from.
func (n NodeView) Overlay() *Overlay { return n.ov }

// IsValid reports whether the node currently exists in the overlay.
func (n NodeView) IsValid() bool { return n.ov != nil && n.ov.g.HasNode(n.id) }

// Get reads a node attribute, or nil when the node or key is absent.
func (n NodeView) Get(key string) any {
	node := n.ov.g.Node(n.id)
	if node == nil {
		return nil
	}
	return node.Get(key)
}

// Set assigns a node attribute; it is an error to set on an absent node.
func (n NodeView) Set(key string, v any) error {
	node := n.ov.g.Node(n.id)
	if node == nil {
		return fmt.Errorf("core: node %q not in overlay %q", n.id, n.ov.name)
	}
	node.Set(key, v)
	return nil
}

// MustSet assigns an attribute, panicking on absent nodes; for design
// scripts.
func (n NodeView) MustSet(key string, v any) {
	if err := n.Set(key, v); err != nil {
		panic(err)
	}
}

// GetString reads a string attribute with a default.
func (n NodeView) GetString(key, def string) string {
	if s, ok := n.Get(key).(string); ok {
		return s
	}
	return def
}

// GetInt reads an integer attribute with a default; float values holding
// whole numbers (e.g. from JSON) are narrowed.
func (n NodeView) GetInt(key string, def int) int {
	if f, ok := graph.ToFloat(n.Get(key)); ok {
		return int(f)
	}
	return def
}

// GetBool reads a boolean attribute, defaulting to false.
func (n NodeView) GetBool(key string) bool {
	b, _ := n.Get(key).(bool)
	return b
}

// ASN returns the node's AS number, 0 when unset.
func (n NodeView) ASN() int { return n.GetInt(AttrASN, 0) }

// TryASN returns the AS number and whether it is present.
func (n NodeView) TryASN() (int, bool) {
	f, ok := graph.ToFloat(n.Get(AttrASN))
	return int(f), ok
}

// DeviceType returns the node's device_type attribute.
func (n NodeView) DeviceType() string { return n.GetString(AttrDeviceType, "") }

// IsRouter reports device_type == "router".
func (n NodeView) IsRouter() bool { return n.DeviceType() == DeviceRouter }

// IsServer reports device_type == "server".
func (n NodeView) IsServer() bool { return n.DeviceType() == DeviceServer }

// IsSwitch reports device_type == "switch".
func (n NodeView) IsSwitch() bool { return n.DeviceType() == DeviceSwitch }

// Label returns the display label, defaulting to the ID.
func (n NodeView) Label() string { return n.GetString(AttrLabel, string(n.id)) }

// Degree returns the node's degree in this overlay.
func (n NodeView) Degree() int { return n.ov.g.Degree(n.id) }

// Edges returns the node's incident (outgoing, for directed overlays)
// edges in this overlay — the paper's node.edges().
func (n NodeView) Edges() []EdgeView {
	es := n.ov.g.EdgesOf(n.id)
	out := make([]EdgeView, len(es))
	for i, e := range es {
		out[i] = EdgeView{ov: n.ov, e: e}
	}
	return out
}

// Neighbors returns views of the adjacent nodes in this overlay.
func (n NodeView) Neighbors() []NodeView {
	ids := n.ov.g.Neighbors(n.id)
	out := make([]NodeView, len(ids))
	for i, id := range ids {
		out[i] = NodeView{ov: n.ov, id: id}
	}
	return out
}

// In returns the same node viewed in another overlay — the cross-layer
// access of §5.2.3 (e.g. loopback := node.In(gIP).Get("loopback")).
func (n NodeView) In(other *Overlay) NodeView { return NodeView{ov: other, id: n.id} }

// InName is In by overlay name, resolved through the owning ANM.
func (n NodeView) InName(name string) NodeView {
	return NodeView{ov: n.ov.anm.Overlay(name), id: n.id}
}

// Attrs returns the node's attribute map in this overlay (nil if absent).
func (n NodeView) Attrs() graph.Attrs {
	node := n.ov.g.Node(n.id)
	if node == nil {
		return nil
	}
	return node.Attrs()
}

// String renders as overlay:id for debugging.
func (n NodeView) String() string { return fmt.Sprintf("%s:%s", n.ov.name, n.id) }

// EdgeView is a lightweight accessor for an edge within an overlay.
type EdgeView struct {
	ov *Overlay
	e  *graph.Edge
}

// IsValid reports whether the view refers to an existing edge.
func (e EdgeView) IsValid() bool { return e.e != nil }

// Overlay returns the overlay this edge belongs to.
func (e EdgeView) Overlay() *Overlay { return e.ov }

// SrcID returns the source endpoint's ID.
func (e EdgeView) SrcID() graph.ID { return e.e.Src() }

// DstID returns the destination endpoint's ID.
func (e EdgeView) DstID() graph.ID { return e.e.Dst() }

// Src returns a view of the source node — the paper's e.src.asn idiom is
// e.Src().ASN().
func (e EdgeView) Src() NodeView { return NodeView{ov: e.ov, id: e.e.Src()} }

// Dst returns a view of the destination node.
func (e EdgeView) Dst() NodeView { return NodeView{ov: e.ov, id: e.e.Dst()} }

// Get reads an edge attribute.
func (e EdgeView) Get(key string) any {
	if e.e == nil {
		return nil
	}
	return e.e.Get(key)
}

// Set assigns an edge attribute.
func (e EdgeView) Set(key string, v any) error {
	if e.e == nil {
		return fmt.Errorf("core: invalid edge view")
	}
	e.e.Set(key, v)
	return nil
}

// GetInt reads an integer edge attribute with a default.
func (e EdgeView) GetInt(key string, def int) int {
	if f, ok := graph.ToFloat(e.Get(key)); ok {
		return int(f)
	}
	return def
}

// GetString reads a string edge attribute with a default.
func (e EdgeView) GetString(key, def string) string {
	if s, ok := e.Get(key).(string); ok {
		return s
	}
	return def
}

// Other returns the endpoint opposite id.
func (e EdgeView) Other(id graph.ID) NodeView {
	return NodeView{ov: e.ov, id: e.e.Other(id)}
}

// Attrs returns the edge's attribute map.
func (e EdgeView) Attrs() graph.Attrs {
	if e.e == nil {
		return nil
	}
	return e.e.Attrs()
}

// String renders as overlay:src-dst.
func (e EdgeView) String() string {
	if e.e == nil {
		return "invalid-edge"
	}
	sep := "--"
	if e.ov != nil && e.ov.Directed() {
		sep = "->"
	}
	return fmt.Sprintf("%s:%s%s%s", e.ov.name, e.e.Src(), sep, e.e.Dst())
}
