package core

import (
	"fmt"

	"autonetkit/internal/graph"
)

// Overlay-level wrappers for the attribute-based design functions of
// §5.2.4. They operate on this overlay's graph only; other overlays are
// unaffected (node universes are shared by ID, not by storage).

// SplitEdge inserts a new node mid-way along the edge u-v, returning its
// view. Used to insert collision domains on point-to-point links.
func (o *Overlay) SplitEdge(u, v graph.ID, mid graph.ID, midAttrs graph.Attrs) (NodeView, error) {
	e := o.g.Edge(u, v)
	if e == nil {
		return NodeView{}, fmt.Errorf("core: overlay %q has no edge %s-%s", o.name, u, v)
	}
	n, err := o.g.Split(e, mid, midAttrs)
	if err != nil {
		return NodeView{}, err
	}
	return NodeView{ov: o, id: n.ID()}, nil
}

// AggregateNodes collapses the listed nodes into a single new node,
// re-homing external edges. Used to merge switch clusters into one
// collision domain.
func (o *Overlay) AggregateNodes(ids []graph.ID, agg graph.ID, attrs graph.Attrs) (NodeView, error) {
	n, err := o.g.Aggregate(ids, agg, attrs)
	if err != nil {
		return NodeView{}, err
	}
	return NodeView{ov: o, id: n.ID()}, nil
}

// ExplodeNode removes a node, forming a clique of its neighbours. Used to
// recover router adjacency through a switch.
func (o *Overlay) ExplodeNode(id graph.ID, edgeAttrs graph.Attrs) error {
	return o.g.Explode(id, edgeAttrs)
}
