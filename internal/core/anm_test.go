package core

import (
	"reflect"
	"strings"
	"testing"

	"autonetkit/internal/graph"
)

// buildInput mirrors the paper's Fig. 5 input topology: five routers, ASNs
// {1,1,1,1,2}, six physical edges.
func buildInput(t *testing.T) (*ANM, *Overlay) {
	t.Helper()
	anm := NewANM()
	gIn, err := anm.AddOverlay(OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		gIn.AddNode(n.id, graph.Attrs{AttrASN: n.asn, AttrDeviceType: DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		gIn.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	return anm, gIn
}

func TestNewANMHasPhy(t *testing.T) {
	anm := NewANM()
	if !anm.HasOverlay(OverlayPhy) {
		t.Fatal("phy overlay missing")
	}
	if got := anm.OverlayNames(); !reflect.DeepEqual(got, []string{"phy"}) {
		t.Errorf("names = %v", got)
	}
}

func TestAddOverlayErrors(t *testing.T) {
	anm := NewANM()
	if _, err := anm.AddOverlay(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := anm.AddOverlay("phy"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestMustOverlayPanics(t *testing.T) {
	anm := NewANM()
	defer func() {
		if recover() == nil {
			t.Error("MustOverlay on absent overlay should panic")
		}
	}()
	anm.MustOverlay("nope")
}

func TestRemoveOverlay(t *testing.T) {
	anm := NewANM()
	if _, err := anm.AddOverlay("tmp"); err != nil {
		t.Fatal(err)
	}
	anm.RemoveOverlay("tmp")
	if anm.HasOverlay("tmp") {
		t.Error("overlay not removed")
	}
	anm.RemoveOverlay("tmp") // no-op
	if !reflect.DeepEqual(anm.OverlayNames(), []string{"phy"}) {
		t.Errorf("names = %v", anm.OverlayNames())
	}
}

func TestAddNodesFromRetain(t *testing.T) {
	anm, gIn := buildInput(t)
	phy := anm.Overlay(OverlayPhy)
	phy.AddNodesFrom(gIn.Nodes(), AttrASN, AttrDeviceType)
	if phy.NumNodes() != 5 {
		t.Fatalf("phy nodes = %d", phy.NumNodes())
	}
	if phy.Node("r5").ASN() != 2 {
		t.Errorf("retained asn = %v", phy.Node("r5").Get(AttrASN))
	}
	// Attributes not in retain list must not be copied.
	gIn.Node("r1").MustSet("secret", 42)
	ospf, _ := anm.AddOverlay("ospf")
	ospf.AddNodesFrom(gIn.Nodes(), AttrASN)
	if ospf.Node("r1").Get("secret") != nil {
		t.Error("unretained attribute leaked")
	}
	if ospf.Node("r1").Get(AttrDeviceType) != nil {
		t.Error("device_type copied without retain")
	}
}

func TestAddEdgesFromWhere(t *testing.T) {
	anm, gIn := buildInput(t)
	ospf, _ := anm.AddOverlay("ospf")
	ospf.AddNodesFrom(gIn.Routers())
	ospf.AddEdgesFromWhere(gIn.Edges(), func(e EdgeView) bool {
		return e.Src().ASN() == e.Dst().ASN()
	}, EdgeOpts{})
	if ospf.NumEdges() != 4 {
		t.Errorf("intra-AS edges = %d, want 4", ospf.NumEdges())
	}
	if ospf.HasEdge("r3", "r5") || ospf.HasEdge("r4", "r5") {
		t.Error("inter-AS edge leaked into OSPF overlay")
	}
}

func TestDirectedBidirected(t *testing.T) {
	anm, gIn := buildInput(t)
	ebgp, _ := anm.AddOverlayDirected("ebgp")
	ebgp.AddNodesFrom(gIn.Routers())
	ebgp.AddEdgesFromWhere(gIn.Edges(), func(e EdgeView) bool {
		return e.Src().ASN() != e.Dst().ASN()
	}, EdgeOpts{Bidirected: true})
	if !ebgp.Directed() {
		t.Fatal("overlay not directed")
	}
	if ebgp.NumEdges() != 4 { // 2 inter-AS links x 2 directions
		t.Errorf("ebgp edges = %d, want 4", ebgp.NumEdges())
	}
	for _, p := range [][2]graph.ID{{"r3", "r5"}, {"r5", "r3"}, {"r4", "r5"}, {"r5", "r4"}} {
		if !ebgp.HasEdge(p[0], p[1]) {
			t.Errorf("session %v missing", p)
		}
	}
}

func TestAddEdgePairs(t *testing.T) {
	anm, _ := buildInput(t)
	ibgp, _ := anm.AddOverlayDirected("ibgp")
	ibgp.AddEdgePairs([][2]graph.ID{{"r1", "r2"}}, EdgeOpts{Bidirected: true, Attrs: graph.Attrs{"kind": "peer"}})
	if ibgp.NumEdges() != 2 {
		t.Errorf("edges = %d", ibgp.NumEdges())
	}
	if ibgp.Edge("r2", "r1").Get("kind") != "peer" {
		t.Error("edge attrs lost")
	}
}

func TestEdgeRetainAttrs(t *testing.T) {
	anm, gIn := buildInput(t)
	gIn.Edge("r1", "r2").Set("ospf_cost", 20)
	ospf, _ := anm.AddOverlay("ospf")
	ospf.AddEdgesFrom(gIn.Edges(), EdgeOpts{Retain: []string{"ospf_cost"}})
	if ospf.Edge("r1", "r2").GetInt("ospf_cost", 0) != 20 {
		t.Error("retained edge attr missing")
	}
	if ospf.Edge("r3", "r4").Get("ospf_cost") != nil {
		t.Error("absent attr invented")
	}
	if ospf.Edge("r1", "r2").Get("type") != nil {
		t.Error("unretained attr leaked")
	}
}

func TestRemoveEdgesWhere(t *testing.T) {
	anm, gIn := buildInput(t)
	igp, _ := anm.AddOverlay("igp")
	igp.AddNodesFrom(gIn.Nodes(), AttrASN)
	igp.AddEdgesFrom(gIn.Edges(), EdgeOpts{})
	removed := igp.RemoveEdgesWhere(func(e EdgeView) bool {
		return e.Src().ASN() != e.Dst().ASN()
	})
	if removed != 2 || igp.NumEdges() != 4 {
		t.Errorf("removed=%d remaining=%d", removed, igp.NumEdges())
	}
}

func TestNodesWhereAndShortcuts(t *testing.T) {
	anm := NewANM()
	gIn, _ := anm.AddOverlay(OverlayInput)
	gIn.AddNode("r1", graph.Attrs{AttrDeviceType: DeviceRouter})
	gIn.AddNode("s1", graph.Attrs{AttrDeviceType: DeviceServer})
	gIn.AddNode("sw1", graph.Attrs{AttrDeviceType: DeviceSwitch})
	if len(gIn.Routers()) != 1 || len(gIn.Servers()) != 1 || len(gIn.Switches()) != 1 {
		t.Error("device type shortcuts wrong")
	}
	n := gIn.Node("r1")
	if !n.IsRouter() || n.IsServer() || n.IsSwitch() {
		t.Error("type predicates wrong")
	}
}

func TestNodesWhereNumericCoercion(t *testing.T) {
	anm := NewANM()
	ov, _ := anm.AddOverlay("x")
	ov.AddNode("a", graph.Attrs{"asn": 100})
	ov.AddNode("b", graph.Attrs{"asn": 100.0}) // e.g. loaded from JSON
	if got := len(ov.NodesWhere("asn", 100)); got != 2 {
		t.Errorf("numeric coercion: got %d matches, want 2", got)
	}
}

func TestCrossLayerAccess(t *testing.T) {
	anm, gIn := buildInput(t)
	ip, _ := anm.AddOverlay("ip")
	ip.AddNodesFrom(gIn.Routers())
	ip.Node("r1").MustSet("loopback", "10.0.0.1")
	ibgp, _ := anm.AddOverlayDirected("ibgp")
	ibgp.AddNodesFrom(gIn.Routers())
	// paper §5.2.3: loopback = G_ip.node(ibgp_node).loopback
	n := ibgp.Node("r1").In(ip)
	if n.Get("loopback") != "10.0.0.1" {
		t.Errorf("cross-layer loopback = %v", n.Get("loopback"))
	}
	if got := ibgp.Node("r1").InName("ip").Get("loopback"); got != "10.0.0.1" {
		t.Errorf("InName = %v", got)
	}
}

func TestCopyAttrFrom(t *testing.T) {
	anm, gIn := buildInput(t)
	gIn.Node("r1").MustSet("ospf_area", 0)
	gIn.Node("r2").MustSet("ospf_area", 1)
	ospf, _ := anm.AddOverlay("ospf")
	ospf.AddNodesFrom(gIn.Routers())
	ospf.CopyAttrFrom(gIn, "ospf_area", "area")
	if ospf.Node("r1").GetInt("area", -1) != 0 || ospf.Node("r2").GetInt("area", -1) != 1 {
		t.Error("copy_attr_from failed")
	}
	if ospf.Node("r3").Get("area") != nil {
		t.Error("attr invented for node lacking source attr")
	}
}

func TestGroupByOverlay(t *testing.T) {
	_, gIn := buildInput(t)
	groups := gIn.GroupBy(AttrASN)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Key != 1 || len(groups[0].Members) != 4 {
		t.Errorf("group[0] = %v with %d members", groups[0].Key, len(groups[0].Members))
	}
	if groups[1].Key != 2 || groups[1].Members[0].ID() != "r5" {
		t.Errorf("group[1] wrong")
	}
}

func TestASNs(t *testing.T) {
	_, gIn := buildInput(t)
	if got := gIn.ASNs(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("ASNs = %v", got)
	}
}

func TestNodeViewBasics(t *testing.T) {
	anm, gIn := buildInput(t)
	n := gIn.Node("r1")
	if n.Label() != "r1" {
		t.Errorf("label = %q", n.Label())
	}
	n.MustSet(AttrLabel, "router-one")
	if n.Label() != "router-one" {
		t.Errorf("label = %q", n.Label())
	}
	if n.Degree() != 2 {
		t.Errorf("degree = %d", n.Degree())
	}
	nbs := n.Neighbors()
	if len(nbs) != 2 || nbs[0].ID() != "r2" {
		t.Errorf("neighbors = %v", nbs)
	}
	if len(n.Edges()) != 2 {
		t.Errorf("edges = %v", n.Edges())
	}
	invalid := gIn.Node("nope")
	if invalid.IsValid() {
		t.Error("absent node is valid")
	}
	if invalid.Get("x") != nil {
		t.Error("get on absent node should be nil")
	}
	if err := invalid.Set("x", 1); err == nil {
		t.Error("set on absent node should error")
	}
	if n.String() != "input:r1" {
		t.Errorf("String = %q", n.String())
	}
	_ = anm
}

func TestNodeViewGetters(t *testing.T) {
	anm := NewANM()
	ov, _ := anm.AddOverlay("x")
	n := ov.AddNode("a", graph.Attrs{"s": "str", "i": 7, "f": 7.0, "b": true})
	if n.GetString("s", "") != "str" || n.GetString("missing", "d") != "d" {
		t.Error("GetString wrong")
	}
	if n.GetInt("i", 0) != 7 || n.GetInt("f", 0) != 7 || n.GetInt("missing", -1) != -1 {
		t.Error("GetInt wrong")
	}
	if !n.GetBool("b") || n.GetBool("missing") {
		t.Error("GetBool wrong")
	}
	if _, ok := n.TryASN(); ok {
		t.Error("TryASN should be false when unset")
	}
}

func TestEdgeViewBasics(t *testing.T) {
	_, gIn := buildInput(t)
	e := gIn.Edge("r1", "r2")
	if !e.IsValid() {
		t.Fatal("edge invalid")
	}
	if e.Src().ID() != "r1" || e.Dst().ID() != "r2" {
		t.Error("endpoints wrong")
	}
	if e.Other("r1").ID() != "r2" {
		t.Error("Other wrong")
	}
	if e.GetString("type", "") != "physical" {
		t.Error("edge attr missing")
	}
	if err := e.Set("weight", 5); err != nil || e.GetInt("weight", 0) != 5 {
		t.Error("edge set/get failed")
	}
	bad := gIn.Edge("r1", "r5")
	if bad.IsValid() {
		t.Error("absent edge valid")
	}
	if err := bad.Set("x", 1); err == nil {
		t.Error("set on invalid edge should error")
	}
	if bad.String() != "invalid-edge" {
		t.Errorf("String = %q", bad.String())
	}
	if e.String() != "input:r1--r2" {
		t.Errorf("String = %q", e.String())
	}
}

func TestOverlayTransforms(t *testing.T) {
	anm := NewANM()
	ov, _ := anm.AddOverlay("ip")
	ov.AddEdge("r1", "r2")
	mid, err := ov.SplitEdge("r1", "r2", "cd0", graph.Attrs{AttrDeviceType: DeviceCollisionDomain})
	if err != nil {
		t.Fatal(err)
	}
	if mid.DeviceType() != DeviceCollisionDomain {
		t.Error("mid attrs wrong")
	}
	if _, err := ov.SplitEdge("r1", "r2", "cd1", nil); err == nil {
		t.Error("split of removed edge accepted")
	}

	ov.AddEdge("sw1", "r3")
	ov.AddEdge("sw2", "r4")
	ov.AddEdge("sw1", "sw2")
	if _, err := ov.AggregateNodes([]graph.ID{"sw1", "sw2"}, "cdX", nil); err != nil {
		t.Fatal(err)
	}
	if !ov.HasEdge("cdX", "r3") || !ov.HasEdge("cdX", "r4") {
		t.Error("aggregate lost edges")
	}

	ov.AddEdge("h1", "hub")
	ov.AddEdge("h2", "hub")
	if err := ov.ExplodeNode("hub", nil); err != nil {
		t.Fatal(err)
	}
	if !ov.HasEdge("h1", "h2") {
		t.Error("explode did not form clique")
	}
}

// The full paper Fig. 5 pipeline expressed through the ANM API, asserting
// the exact edge sets of eqs. (1), (2), (3).
func TestFig5OverlayConstruction(t *testing.T) {
	anm, gIn := buildInput(t)

	rtrs := gIn.Routers()

	ospf, _ := anm.AddOverlay("ospf")
	ospf.AddNodesFrom(rtrs)
	ospf.AddEdgesFromWhere(gIn.Edges(), func(e EdgeView) bool {
		return e.Src().ASN() == e.Dst().ASN()
	}, EdgeOpts{})

	ebgp, _ := anm.AddOverlayDirected("ebgp")
	ebgp.AddNodesFrom(rtrs)
	ebgp.AddEdgesFromWhere(gIn.Edges(), func(e EdgeView) bool {
		return e.Src().ASN() != e.Dst().ASN()
	}, EdgeOpts{Bidirected: true})

	ibgp, _ := anm.AddOverlayDirected("ibgp")
	ibgp.AddNodesFrom(rtrs)
	var pairs [][2]graph.ID
	for _, s := range rtrs {
		for _, d := range rtrs {
			if s.ID() != d.ID() && s.ASN() == d.ASN() {
				pairs = append(pairs, [2]graph.ID{s.ID(), d.ID()})
			}
		}
	}
	ibgp.AddEdgePairs(pairs, EdgeOpts{})

	wantOspf := map[string]bool{"r1-r2": true, "r1-r3": true, "r2-r4": true, "r3-r4": true}
	if ospf.NumEdges() != len(wantOspf) {
		t.Errorf("ospf edges = %d, want %d", ospf.NumEdges(), len(wantOspf))
	}
	for _, e := range ospf.Edges() {
		if !wantOspf[string(e.SrcID())+"-"+string(e.DstID())] {
			t.Errorf("unexpected ospf edge %v", e)
		}
	}
	// eq. 2: 4 routers in AS1 -> 12 directed pairs; r5 alone has none.
	if ibgp.NumEdges() != 12 {
		t.Errorf("ibgp sessions = %d, want 12", ibgp.NumEdges())
	}
	// eq. 3: two inter-AS links, both directions.
	if ebgp.NumEdges() != 4 {
		t.Errorf("ebgp sessions = %d, want 4", ebgp.NumEdges())
	}
}

func TestOverlayAccessors(t *testing.T) {
	anm, gIn := buildInput(t)
	if gIn.Name() != "input" {
		t.Errorf("Name = %q", gIn.Name())
	}
	if gIn.ANM() != anm {
		t.Error("ANM backref wrong")
	}
	if gIn.Graph().NumNodes() != 5 {
		t.Error("Graph unwrap wrong")
	}
	gIn.Set("infra_blocks", "x")
	if gIn.Get("infra_blocks") != "x" || gIn.Data()["infra_blocks"] != "x" {
		t.Error("overlay data accessors wrong")
	}
	if !gIn.HasNode("r1") || gIn.HasNode("zz") {
		t.Error("HasNode wrong")
	}
	if !strings.Contains(gIn.String(), "input") {
		t.Errorf("String = %q", gIn.String())
	}
	gIn.RemoveEdge("r1", "r2")
	if gIn.HasEdge("r1", "r2") {
		t.Error("RemoveEdge failed")
	}
	gIn.RemoveNode("r5")
	if gIn.HasNode("r5") {
		t.Error("RemoveNode failed")
	}
}

func TestAddOverlayGraph(t *testing.T) {
	anm := NewANM()
	g := graph.New()
	g.AddEdge("a", "b")
	ov, err := anm.AddOverlayGraph("loaded", g)
	if err != nil {
		t.Fatal(err)
	}
	if ov.NumNodes() != 2 || ov.Graph() != g {
		t.Error("graph not installed")
	}
	if _, err := anm.AddOverlayGraph("loaded", g); err == nil {
		t.Error("duplicate overlay accepted")
	}
}

func TestEdgesWhere(t *testing.T) {
	_, gIn := buildInput(t)
	gIn.Edge("r1", "r2").Set("type", "virtual")
	phys := gIn.EdgesWhere("type", "physical")
	if len(phys) != 5 {
		t.Errorf("physical edges = %d, want 5", len(phys))
	}
	virt := gIn.EdgesWhere("type", "virtual")
	if len(virt) != 1 {
		t.Errorf("virtual edges = %d", len(virt))
	}
}

func TestViewAttrsAndOverlayBackrefs(t *testing.T) {
	_, gIn := buildInput(t)
	n := gIn.Node("r1")
	if n.Overlay() != gIn {
		t.Error("node Overlay backref wrong")
	}
	if n.Attrs()["asn"] != 1 {
		t.Errorf("node attrs = %v", n.Attrs())
	}
	if gIn.Node("zz").Attrs() != nil {
		t.Error("absent node attrs should be nil")
	}
	e := gIn.Edge("r1", "r2")
	if e.Overlay() != gIn {
		t.Error("edge Overlay backref wrong")
	}
	if e.Attrs()["type"] != "physical" {
		t.Errorf("edge attrs = %v", e.Attrs())
	}
	var bad EdgeView
	if bad.Attrs() != nil {
		t.Error("invalid edge attrs should be nil")
	}
	if bad.Get("x") != nil {
		t.Error("invalid edge get should be nil")
	}
	if bad.GetInt("x", 7) != 7 || bad.GetString("x", "d") != "d" {
		t.Error("invalid edge typed getters should default")
	}
}

func TestMustSetPanics(t *testing.T) {
	_, gIn := buildInput(t)
	defer func() {
		if recover() == nil {
			t.Error("MustSet on absent node should panic")
		}
	}()
	gIn.Node("ghost").MustSet("k", 1)
}
