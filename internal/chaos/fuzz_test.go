package chaos

import (
	"strings"
	"testing"
)

// FuzzParseScenario: the scenario parser must never panic on arbitrary
// scripts — it returns a scenario, a diagnostic list, or both, and a
// scenario accompanied by no error diagnostics must have at least one step.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		"",
		"name drill\nbudget 40\nfail-link r1 r2\ncheck\nrestore-link r1 r2\ncheck baseline\n",
		"# comment\nflap r1 r2 3\npartition r1 r2 r3\ncheck unreachable r1 r2\n",
		"budget lots\nexplode\nfail-link r1\nflap r1 r2 zero\ncheck sideways\n",
		"budget -1\nname\ncheck baseline extra\ncheck reachable r1\n",
		"fail-node r1\nrestore-node r1\ncheck reachable r1 r2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		sc, diags := ParseScenario(strings.NewReader(script))
		if !diags.HasErrors() && len(sc.Steps) == 0 {
			t.Fatal("empty scenario accepted without error diagnostics")
		}
		for _, d := range diags {
			if d.File == "" {
				t.Fatalf("unlocated diagnostic: %s", d)
			}
		}
	})
}
