package chaos

import (
	"strings"
	"testing"
)

// FuzzParseScenario: the scenario parser must never panic on arbitrary
// scripts — it returns a scenario, a diagnostic list, or both, and a
// scenario accompanied by no error diagnostics must have at least one step.
// FuzzParsePerturb: the rule parser must never panic, and any rule it
// accepts must round-trip through its String rendering — the golden drill
// and the report format both re-read rendered rules.
func FuzzParsePerturb(f *testing.F) {
	seeds := []string{
		"",
		"loss 30",
		"loss 100 on r1:r2",
		"dup 50 on a:b",
		"delay 3",
		"reorder on r3:r5",
		"flap r1:r2 every 4 recover",
		"corrupt at 0 for 3",
		"corrupt r3:r5 at 2 for 5",
		"loss 200",
		"flap a:a every 2",
		"delay 99999999999999999999",
		"corrupt at -1 for 2",
		"loss 30 on r1:r2:r3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		rule, err := ParsePerturb(in)
		if err != nil {
			return
		}
		rendered := rule.String()
		if !strings.HasPrefix(rendered, "perturb ") {
			t.Fatalf("rendered rule %q lacks the perturb keyword", rendered)
		}
		again, err := ParsePerturb(strings.TrimPrefix(rendered, "perturb "))
		if err != nil {
			t.Fatalf("re-parsing rendered rule %q: %v", rendered, err)
		}
		if again != rule {
			t.Fatalf("round-trip drift: %+v -> %q -> %+v", rule, rendered, again)
		}
	})
}

func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		"",
		"name drill\nbudget 40\nfail-link r1 r2\ncheck\nrestore-link r1 r2\ncheck baseline\n",
		"# comment\nflap r1 r2 3\npartition r1 r2 r3\ncheck unreachable r1 r2\n",
		"budget lots\nexplode\nfail-link r1\nflap r1 r2 zero\ncheck sideways\n",
		"budget -1\nname\ncheck baseline extra\ncheck reachable r1\n",
		"fail-node r1\nrestore-node r1\ncheck reachable r1 r2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, script string) {
		sc, diags := ParseScenario(strings.NewReader(script))
		if !diags.HasErrors() && len(sc.Steps) == 0 {
			t.Fatal("empty scenario accepted without error diagnostics")
		}
		for _, d := range diags {
			if d.File == "" {
				t.Fatalf("unlocated diagnostic: %s", d)
			}
		}
	})
}
