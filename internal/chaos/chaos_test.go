package chaos

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/measure"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/routing"
	"autonetkit/internal/verify"
)

// fig5Lab runs the full pipeline over the paper's Fig. 5 topology and
// returns the booted lab with a measurement client and loopback resolver.
func fig5Lab(t *testing.T) (*emul.Lab, *measure.Client, func(string) netip.Addr) {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := emul.Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Start(0); err != nil {
		t.Fatal(err)
	}
	table := alloc.Table
	resolve := func(a netip.Addr) string { return string(table.HostForIP(a)) }
	client := measure.NewClient(lab, resolve)
	loopbacks := map[string]netip.Addr{}
	for _, e := range table.Entries() {
		if e.Loopback {
			loopbacks[string(e.Node)] = e.Addr
		}
	}
	return lab, client, func(name string) netip.Addr { return loopbacks[name] }
}

func mustParse(t *testing.T, script string) Scenario {
	t.Helper()
	sc, diags := ParseScenario(strings.NewReader(script))
	if len(diags) != 0 {
		t.Fatalf("scenario diagnostics:\n%s", diags)
	}
	return sc
}

func TestParseScenario(t *testing.T) {
	sc := mustParse(t, `
# a comment
name core outage
budget 40
fail-link r1 r3    # trailing comment
check
check unreachable r1 r5
flap r3 r4 2
partition r5
restore-link r1 r3
restore-node r5
check baseline
`)
	if sc.Name != "core outage" {
		t.Errorf("name = %q", sc.Name)
	}
	if len(sc.Steps) != 8 {
		t.Fatalf("steps = %d: %+v", len(sc.Steps), sc.Steps)
	}
	if sc.Steps[0].MaxBGPRounds != 40 {
		t.Errorf("budget not applied: %+v", sc.Steps[0])
	}
	if sc.Steps[3].Op != OpFlap || sc.Steps[3].Times != 2 {
		t.Errorf("flap step = %+v", sc.Steps[3])
	}
	if sc.Steps[4].Op != OpPartition || !reflect.DeepEqual(sc.Steps[4].Nodes, []string{"r5"}) {
		t.Errorf("partition step = %+v", sc.Steps[4])
	}
	if sc.Steps[7].Check != CheckBaseline {
		t.Errorf("check step = %+v", sc.Steps[7])
	}
	// Round-trip through Step.String stays in scenario syntax.
	if got := sc.Steps[0].String(); got != "fail-link r1 r3" {
		t.Errorf("String = %q", got)
	}
	if got := sc.Steps[2].String(); got != "check unreachable r1 r5" {
		t.Errorf("String = %q", got)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, bad := range []string{
		"",                  // no steps
		"# only comments\n", // no steps
		"explode r1",        // unknown op
		"fail-link r1",      // wrong arity
		"flap r1 r2 zero",   // bad count
		"flap r1 r2 0",      // count < 1
		"budget many\nfail-link a b",
		"budget -1\nfail-link a b",
		"partition",            // empty group
		"check sideways",       // unknown mode
		"check baseline extra", // wrong arity
		"check reachable r1",   // wrong arity
		"name",                 // missing label
	} {
		if _, diags := ParseScenario(strings.NewReader(bad)); !diags.HasErrors() {
			t.Errorf("accepted %q", bad)
		}
	}
}

// The parser recovers: one pass reports every malformed line, each
// diagnostic carries the line number and offending token, and the valid
// steps around the errors still parse.
func TestParseScenarioRecovery(t *testing.T) {
	script := "name drill\n" +
		"budget 40\n" +
		"budget lots\n" + // line 3: bad budget — must keep 40, not reset to 0
		"fail-link r1 r2\n" +
		"explode r9\n" + // line 5: unknown op
		"flap r1 r2 zero\n" + // line 6: bad count
		"check baseline\n"
	sc, diags := ParseScenarioFile(strings.NewReader(script), "drill.chaos")
	errs := diags.Errors()
	if len(errs) != 3 {
		t.Fatalf("want 3 error diagnostics, got %d:\n%s", len(errs), diags)
	}
	wantLines := []int{3, 5, 6}
	wantTokens := []string{"lots", "explode", "zero"}
	for i, d := range errs {
		if d.File != "drill.chaos" {
			t.Errorf("diag %d file = %q", i, d.File)
		}
		if d.Line != wantLines[i] {
			t.Errorf("diag %d line = %d, want %d (%s)", i, d.Line, wantLines[i], d)
		}
		if !strings.Contains(d.Message, wantTokens[i]) {
			t.Errorf("diag %d does not name offending token %q: %s", i, wantTokens[i], d)
		}
	}
	// Valid steps before and after the broken lines survived, and the step
	// after the malformed budget kept the previous budget of 40.
	if len(sc.Steps) != 2 {
		t.Fatalf("steps = %d: %+v", len(sc.Steps), sc.Steps)
	}
	if sc.Steps[0].Op != OpFailLink || sc.Steps[0].MaxBGPRounds != 40 {
		t.Errorf("fail-link step = %+v (budget must survive a malformed budget line)", sc.Steps[0])
	}
	if sc.Steps[1].Check != CheckBaseline {
		t.Errorf("check step = %+v", sc.Steps[1])
	}
}

// The acceptance scenario: fail a link, check, restore it, re-check — the
// final lab state (OSPF neighbors, BGP routes, reachability matrix) is
// identical to the pre-incident state and the report is clean.
func TestFailRestoreRoundTrip(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	type state struct {
		neighbors map[string][]routing.OSPFNeighbor
		bgp       map[string][]routing.BGPRoute
	}
	capture := func() state {
		s := state{map[string][]routing.OSPFNeighbor{}, map[string][]routing.BGPRoute{}}
		for _, name := range lab.VMNames() {
			s.neighbors[name] = lab.OSPFNeighbors(name)
			s.bgp[name] = lab.BGPRoutes(name)
		}
		return s
	}
	before := capture()
	matrixBefore, err := client.ReachabilityMatrix(lab.VMNames(), addrOf)
	if err != nil {
		t.Fatal(err)
	}

	engine := NewEngine(lab, client, addrOf, Options{})
	report, err := engine.Run(mustParse(t, `
name round trip
fail-link r3 r5
fail-link r4 r5
check
restore-link r3 r5
restore-link r4 r5
check baseline
`))
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("report not clean:\n%s", report)
	}
	if len(report.Steps) != 6 {
		t.Fatalf("steps = %d", len(report.Steps))
	}
	// The mid-incident check observed degraded reachability (r5 cut off)...
	mid := report.Steps[2].Matrix
	if mid == nil || mid.Reachable() >= mid.Pairs() {
		t.Errorf("mid-incident matrix not degraded: %+v", mid)
	}
	// ...and the final check observed full restoration.
	final := report.Steps[5].Matrix
	if final == nil || !measure.DiffReachability(matrixBefore, *final).OK() {
		t.Errorf("final matrix differs from baseline")
	}
	// Lab protocol state is exactly the pre-incident state.
	if !reflect.DeepEqual(before, capture()) {
		t.Error("restored lab state differs from pre-incident state")
	}
}

// A deliberately non-converging step (budget of 1 BGP round) terminates
// within its budget and surfaces a structured convergence finding instead
// of hanging.
func TestNonConvergenceWithinBudget(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	engine := NewEngine(lab, client, addrOf, Options{})
	report, err := engine.Run(mustParse(t, `
budget 1
partition r5
`))
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatalf("budget-1 reconvergence reported clean:\n%s", report)
	}
	findings := report.Findings()
	if len(findings) != 1 || findings[0].Check != "chaos-convergence" || findings[0].Severity != verify.Error {
		t.Fatalf("findings = %+v", findings)
	}
	if !strings.Contains(findings[0].Detail, "did not converge within 1 rounds") &&
		!strings.Contains(findings[0].Detail, "oscillating") {
		t.Errorf("finding detail = %q", findings[0].Detail)
	}
	// The engine restored the lab's original budget afterwards.
	if lab.Budget().MaxBGPRounds != 0 {
		t.Errorf("budget leaked: %+v", lab.Budget())
	}
}

func TestCheckAssertions(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	engine := NewEngine(lab, client, addrOf, Options{})
	report, err := engine.Run(mustParse(t, `
check reachable r1 r5
partition r5
check unreachable r1 r5
check reachable r1 r5
check
restore-node r5
check baseline
`))
	if err != nil {
		t.Fatal(err)
	}
	// Step 4 (check reachable during the partition) must be the only
	// error; step 5's plain check reports drift as a warning.
	var errs, warns []verify.Finding
	for _, f := range report.Findings() {
		if f.Severity == verify.Error {
			errs = append(errs, f)
		} else {
			warns = append(warns, f)
		}
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Device, "step-4") {
		t.Errorf("errors = %+v", errs)
	}
	if len(warns) != 1 || warns[0].Check != "chaos-check" {
		t.Errorf("warnings = %+v", warns)
	}
	if !strings.Contains(warns[0].Detail, "pairs lost") {
		t.Errorf("warning detail = %q", warns[0].Detail)
	}
}

// A scripted error (restoring an intact link) degrades to a finding, and
// the rest of the scenario still runs.
func TestStepErrorContinues(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	engine := NewEngine(lab, client, addrOf, Options{})
	report, err := engine.Run(mustParse(t, `
restore-link r1 r3
check baseline
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != 2 {
		t.Fatalf("steps = %d", len(report.Steps))
	}
	if report.OK() {
		t.Error("failed injection reported clean")
	}
	if !strings.HasPrefix(report.Steps[0].Verdict, "FAILED") {
		t.Errorf("verdict = %q", report.Steps[0].Verdict)
	}
	// The trailing check still ran and passed.
	if len(report.Steps[1].Findings) != 0 {
		t.Errorf("check findings = %+v", report.Steps[1].Findings)
	}
}

func TestFlapEndsRestored(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	before := map[string][]routing.OSPFNeighbor{}
	for _, name := range lab.VMNames() {
		before[name] = lab.OSPFNeighbors(name)
	}
	engine := NewEngine(lab, client, addrOf, Options{})
	report, err := engine.Run(mustParse(t, `
flap r1 r3 3
check baseline
`))
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("flap report not clean:\n%s", report)
	}
	after := map[string][]routing.OSPFNeighbor{}
	for _, name := range lab.VMNames() {
		after[name] = lab.OSPFNeighbors(name)
	}
	if !reflect.DeepEqual(before, after) {
		t.Error("lab not restored after flap")
	}
	// Six link transitions logged (3 down + 3 up).
	events := strings.Join(lab.Events(), "\n")
	if got := strings.Count(events, "failed"); got != 3 {
		t.Errorf("fail events = %d, want 3", got)
	}
	if got := strings.Count(events, "restored"); got != 3 {
		t.Errorf("restore events = %d, want 3", got)
	}
}

func TestEngineObsSpans(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	col := obs.NewCollector()
	engine := NewEngine(lab, client, addrOf, Options{Obs: col})
	if _, err := engine.Run(mustParse(t, "fail-link r1 r3\ncheck\nrestore-link r1 r3")); err != nil {
		t.Fatal(err)
	}
	stats := col.Snapshot()
	span, ok := stats.Span("Chaos")
	if !ok {
		t.Fatalf("no Chaos span: %+v", stats.Spans)
	}
	// baseline + one child span per step.
	if len(span.Children) != 4 {
		t.Errorf("chaos span children = %+v", span.Children)
	}
	if stats.Counters[CounterSteps] != 3 {
		t.Errorf("steps counter = %d", stats.Counters[CounterSteps])
	}
}

func TestReportString(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	engine := NewEngine(lab, client, addrOf, Options{Budget: routing.ConvergenceBudget{MaxBGPRounds: 50}})
	report, err := engine.Run(mustParse(t, "name demo\nfail-link r1 r3\ncheck\nrestore-link r1 r3\ncheck baseline"))
	if err != nil {
		t.Fatal(err)
	}
	text := report.String()
	for _, want := range []string{
		"chaos report: demo: 4 steps, 0 findings (0 errors)",
		"baseline: 20/20 pairs reachable",
		"step 1  fail-link r1 r3",
		"converged in",
		"check baseline",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// Determinism: a second identical run renders identically.
	lab2, client2, addrOf2 := fig5Lab(t)
	engine2 := NewEngine(lab2, client2, addrOf2, Options{Budget: routing.ConvergenceBudget{MaxBGPRounds: 50}})
	report2, err := engine2.Run(mustParse(t, "name demo\nfail-link r1 r3\ncheck\nrestore-link r1 r3\ncheck baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if report2.String() != text {
		t.Errorf("report not deterministic:\n%s\nvs\n%s", text, report2.String())
	}
}
