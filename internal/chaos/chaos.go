package chaos

import (
	"fmt"
	"net/netip"
	"strings"

	"autonetkit/internal/emul"
	"autonetkit/internal/measure"
	"autonetkit/internal/obs"
	"autonetkit/internal/routing"
	"autonetkit/internal/verify"
)

// Counter names maintained by the engine.
const (
	CounterSteps    = "chaos_steps"
	CounterFindings = "chaos_findings"
)

// Options configures an engine.
type Options struct {
	// Budget is the default per-step convergence budget; a step's own
	// MaxBGPRounds overrides it.
	Budget routing.ConvergenceBudget
	// Obs, when set, collects per-step spans and counters.
	Obs *obs.Collector
}

// Engine executes scenarios against one booted lab.
type Engine struct {
	lab    *emul.Lab
	client *measure.Client
	addrOf func(string) netip.Addr
	opts   Options
}

// NewEngine wires a scenario engine to a booted lab. client must drive the
// same lab; addrOf supplies each machine's probe address (its loopback) —
// machines it cannot resolve are excluded from reachability matrices.
func NewEngine(lab *emul.Lab, client *measure.Client, addrOf func(string) netip.Addr, opts Options) *Engine {
	return &Engine{lab: lab, client: client, addrOf: addrOf, opts: opts}
}

// StepResult is the outcome of one executed step.
type StepResult struct {
	Index    int // 1-based
	Step     Step
	Verdict  string // one-line deterministic outcome
	Findings []verify.Finding
	// Matrix is the post-step reachability matrix (check steps only).
	Matrix *measure.Reachability
}

// Report is a scenario's structured resilience outcome.
type Report struct {
	Scenario string
	Baseline measure.Reachability
	Steps    []StepResult
}

// Findings flattens every step's findings in step order.
func (r Report) Findings() []verify.Finding {
	var out []verify.Finding
	for _, s := range r.Steps {
		out = append(out, s.Findings...)
	}
	return out
}

// OK reports whether no error-severity findings were produced.
func (r Report) OK() bool {
	for _, f := range r.Findings() {
		if f.Severity == verify.Error {
			return false
		}
	}
	return true
}

// String renders the report deterministically: one line per step, then the
// findings.
func (r Report) String() string {
	var sb strings.Builder
	findings := r.Findings()
	errs := 0
	for _, f := range findings {
		if f.Severity == verify.Error {
			errs++
		}
	}
	name := r.Scenario
	if name == "" {
		name = "scenario"
	}
	fmt.Fprintf(&sb, "chaos report: %s: %d steps, %d findings (%d errors)\n",
		name, len(r.Steps), len(findings), errs)
	fmt.Fprintf(&sb, "  baseline: %d/%d pairs reachable\n", r.Baseline.Reachable(), r.Baseline.Pairs())
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "  step %-2d %-28s %s\n", s.Index, s.Step, s.Verdict)
	}
	for _, f := range findings {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// stepLabel names a step for findings ("step-3 fail-link r1 r3").
func stepLabel(i int, s Step) string { return fmt.Sprintf("step-%d %s", i, s) }

// Run executes the scenario. The pre-scenario reachability matrix is the
// baseline every check diffs against. Steps that fail to converge within
// their budget, violate a check, or error out produce findings; execution
// continues so the report covers the whole script. The error return is
// reserved for the scenario being unrunnable at all (lab not started,
// measurement impossible).
func (e *Engine) Run(sc Scenario) (Report, error) {
	span := e.opts.Obs.StartSpan("Chaos")
	defer span.End()
	rep := Report{Scenario: sc.Name}

	bspan := e.opts.Obs.StartSpan("baseline")
	base, err := e.client.ReachabilityMatrix(e.lab.VMNames(), e.addrOf)
	bspan.End()
	if err != nil {
		return rep, fmt.Errorf("chaos: measuring baseline: %w", err)
	}
	rep.Baseline = base

	origBudget := e.lab.Budget()
	defer e.lab.SetBudget(origBudget)

	for i, st := range sc.Steps {
		e.opts.Obs.Add(CounterSteps, 1)
		sspan := e.opts.Obs.StartSpan(fmt.Sprintf("step-%d %s", i+1, st.Op))
		res, err := e.runStep(i+1, st, base)
		sspan.End()
		if err != nil {
			return rep, err
		}
		e.opts.Obs.Add(CounterFindings, int64(len(res.Findings)))
		rep.Steps = append(rep.Steps, res)
	}
	return rep, nil
}

// budgetFor resolves a step's convergence budget.
func (e *Engine) budgetFor(st Step) routing.ConvergenceBudget {
	if st.MaxBGPRounds > 0 {
		return routing.ConvergenceBudget{MaxBGPRounds: st.MaxBGPRounds}
	}
	return e.opts.Budget
}

func (e *Engine) runStep(idx int, st Step, base measure.Reachability) (StepResult, error) {
	res := StepResult{Index: idx, Step: st}
	label := stepLabel(idx, st)
	addFinding := func(check string, sev verify.Severity, format string, args ...any) {
		res.Findings = append(res.Findings, verify.Finding{
			Check: check, Severity: sev, Device: label, Detail: fmt.Sprintf(format, args...),
		})
	}

	if st.Op == OpCheck {
		err := e.runCheck(&res, base, addFinding)
		return res, err
	}

	budget := e.budgetFor(st)
	e.lab.SetBudget(budget)
	times := 1
	if st.Op == OpFlap {
		times = st.Times
	}
	for round := 0; round < times; round++ {
		var err error
		switch st.Op {
		case OpFailLink:
			err = e.lab.FailLink(st.A, st.B)
		case OpRestoreLink:
			err = e.lab.RestoreLink(st.A, st.B)
		case OpFailNode:
			err = e.lab.FailNode(st.Node)
		case OpRestoreNode:
			err = e.lab.RestoreNode(st.Node)
		case OpPartition:
			err = e.lab.Partition(st.Nodes)
		case OpFlap:
			if err = e.lab.FailLink(st.A, st.B); err == nil {
				bgp := e.lab.BGPResult()
				if !bgp.Converged {
					addFinding("chaos-convergence", verify.Error,
						"flap %d down: %s", round+1, budget.Describe(bgp))
				}
				err = e.lab.RestoreLink(st.A, st.B)
			}
		default:
			return res, fmt.Errorf("chaos: unknown operation %q", st.Op)
		}
		if err != nil {
			addFinding("chaos-step", verify.Error, "injection failed: %v", err)
			res.Verdict = fmt.Sprintf("FAILED: %v", err)
			return res, nil
		}
	}
	bgp := e.lab.BGPResult()
	res.Verdict = e.budgetFor(st).Describe(bgp)
	if !bgp.Converged {
		addFinding("chaos-convergence", verify.Error, "%s", res.Verdict)
	}
	return res, nil
}

func (e *Engine) runCheck(res *StepResult, base measure.Reachability, addFinding func(string, verify.Severity, string, ...any)) error {
	st := res.Step
	switch st.Check {
	case CheckReachable, CheckUnreachable:
		dst := e.addrOf(st.B)
		if !dst.IsValid() {
			return fmt.Errorf("chaos: no probe address for %q", st.B)
		}
		ok, err := e.client.Reachable(st.A, dst)
		if err != nil {
			return fmt.Errorf("chaos: probing %s -> %s: %w", st.A, st.B, err)
		}
		want := st.Check == CheckReachable
		if ok == want {
			res.Verdict = "ok"
		} else {
			res.Verdict = fmt.Sprintf("VIOLATED: %s -> %s reachable=%v, want %v", st.A, st.B, ok, want)
			addFinding("chaos-check", verify.Error,
				"%s -> %s reachable=%v, want %v", st.A, st.B, ok, want)
		}
		return nil
	}

	m, err := e.client.ReachabilityMatrix(e.lab.VMNames(), e.addrOf)
	if err != nil {
		return fmt.Errorf("chaos: measuring reachability: %w", err)
	}
	res.Matrix = &m
	diff := measure.DiffReachability(base, m)
	res.Verdict = fmt.Sprintf("%d/%d pairs reachable (%d lost, %d gained vs baseline)",
		m.Reachable(), m.Pairs(), len(diff.Lost), len(diff.Gained))
	if diff.OK() {
		return nil
	}
	sev := verify.Warning
	if st.Check == CheckBaseline {
		sev = verify.Error
	}
	addFinding("chaos-check", sev, "%s%s", diff, pairSamples(diff))
	return nil
}

// pairSamples renders up to three changed pairs per direction, so findings
// stay one line but name concrete victims.
func pairSamples(d measure.ReachabilityDiff) string {
	var parts []string
	render := func(tag string, ps [][2]string) {
		if len(ps) == 0 {
			return
		}
		n := len(ps)
		if n > 3 {
			n = 3
		}
		var items []string
		for _, p := range ps[:n] {
			items = append(items, p[0]+"->"+p[1])
		}
		if len(ps) > n {
			items = append(items, "...")
		}
		parts = append(parts, fmt.Sprintf("%s: %s", tag, strings.Join(items, " ")))
	}
	render("lost", d.Lost)
	render("gained", d.Gained)
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}
