package chaos

import (
	"fmt"
	"net/netip"
	"strings"

	"autonetkit/internal/emul"
	"autonetkit/internal/measure"
	"autonetkit/internal/obs"
	"autonetkit/internal/routing"
	"autonetkit/internal/verify"
)

// Counter names maintained by the engine.
const (
	CounterSteps    = "chaos_steps"
	CounterFindings = "chaos_findings"
)

// Options configures an engine.
type Options struct {
	// Budget is the default per-step convergence budget; a step's own
	// MaxBGPRounds overrides it.
	Budget routing.ConvergenceBudget
	// Obs, when set, collects per-step spans and counters (including the
	// watchdog_* escalation counters when supervision runs).
	Obs *obs.Collector
	// Supervise forces convergence-watchdog supervision of every step even
	// for unseeded scenarios. A scenario that sets `seed` is always
	// supervised.
	Supervise bool
	// OnEvent, when set, receives one call per watchdog escalation rung —
	// the deploy layer bridges these into its event stream.
	OnEvent func(action, detail string)
	// Hosts, when set, executes fail-host and drain-host steps against the
	// substrate (a *deploy.ClusterDeployment satisfies it). Scenarios using
	// host steps without a controller record a step failure finding.
	Hosts HostController
}

// HostController drains and fails substrate hosts on behalf of host-level
// scenario steps. Both calls return the VM names that were re-placed and
// the VMs left stranded (sorted); a degraded operation returns stranded
// VMs alongside a non-nil error and the step degrades gracefully instead
// of aborting the scenario.
type HostController interface {
	DrainHost(host string) (moved, stranded []string, err error)
	FailHost(host string) (moved, stranded []string, err error)
}

// SchedCrasher is the optional HostController extension backing crash-sched
// steps: kill the durable scheduler's journal mid-flight, recover a fresh
// scheduler from the state directory, and return a deterministic summary
// (a *deploy.ClusterDeployment with a StateDir satisfies it). Controllers
// without durable state simply don't implement it and crash-sched steps
// record a step failure finding.
type SchedCrasher interface {
	CrashSched() (summary string, err error)
}

// HostSilencer is the optional HostController extension backing
// silence-host steps: the host stops answering heartbeats entirely, its
// lease expires, and its VMs re-place (a *deploy.ClusterDeployment over a
// sched.FlakyBackend with leases enabled satisfies it).
type HostSilencer interface {
	SilenceHost(host string) (moved, stranded []string, err error)
}

// HostFlaker is the optional HostController extension backing flaky-host
// steps: set a deterministic migration-failure rate for moves onto the
// host (0 clears it).
type HostFlaker interface {
	FlakyHost(host string, rate float64) error
}

// ReservationInspector is the optional HostController extension backing
// `check reservation` steps: report one reservation's scheduler state
// ("active", "queued", "degraded", or "preempted").
type ReservationInspector interface {
	ReservationState(name string) (string, error)
}

// Engine executes scenarios against one booted lab.
type Engine struct {
	lab    *emul.Lab
	client *measure.Client
	addrOf func(string) netip.Addr
	opts   Options

	// Per-scenario perturbation state: the accumulated rule list, the
	// scenario's seed, and whether the watchdog supervises each step.
	rules       []routing.PerturbRule
	seed        uint64
	supervising bool
}

// NewEngine wires a scenario engine to a booted lab. client must drive the
// same lab; addrOf supplies each machine's probe address (its loopback) —
// machines it cannot resolve are excluded from reachability matrices.
func NewEngine(lab *emul.Lab, client *measure.Client, addrOf func(string) netip.Addr, opts Options) *Engine {
	return &Engine{lab: lab, client: client, addrOf: addrOf, opts: opts}
}

// StepResult is the outcome of one executed step.
type StepResult struct {
	Index    int // 1-based
	Step     Step
	Verdict  string // one-line deterministic outcome
	Findings []verify.Finding
	// Matrix is the post-step reachability matrix (check steps only).
	Matrix *measure.Reachability
	// Watchdog is the supervision ladder this step climbed (supervised
	// runs only; nil otherwise).
	Watchdog *emul.SupervisionReport
}

// Report is a scenario's structured resilience outcome.
type Report struct {
	Scenario string
	Baseline measure.Reachability
	Steps    []StepResult
	// Shards is the structural shard count of the lab's BGP topology (its
	// distinct ASes) — deliberately a topology property, not the -shards
	// worker knob, so the rendered header stays byte-identical across
	// worker counts while still pinning the partition the sharded driver
	// evaluates. 0 (omitted from the header) when unknown.
	Shards int
}

// Findings flattens every step's findings in step order.
func (r Report) Findings() []verify.Finding {
	var out []verify.Finding
	for _, s := range r.Steps {
		out = append(out, s.Findings...)
	}
	return out
}

// OK reports whether no error-severity findings were produced.
func (r Report) OK() bool {
	for _, f := range r.Findings() {
		if f.Severity == verify.Error {
			return false
		}
	}
	return true
}

// String renders the report deterministically: one line per step, then the
// findings.
func (r Report) String() string {
	var sb strings.Builder
	findings := r.Findings()
	errs := 0
	for _, f := range findings {
		if f.Severity == verify.Error {
			errs++
		}
	}
	name := r.Scenario
	if name == "" {
		name = "scenario"
	}
	shardNote := ""
	if r.Shards > 0 {
		shardNote = fmt.Sprintf(" [%d shards]", r.Shards)
	}
	fmt.Fprintf(&sb, "chaos report: %s: %d steps, %d findings (%d errors)%s\n",
		name, len(r.Steps), len(findings), errs, shardNote)
	fmt.Fprintf(&sb, "  baseline: %d/%d pairs reachable\n", r.Baseline.Reachable(), r.Baseline.Pairs())
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "  step %-2d %-28s %s\n", s.Index, s.Step, s.Verdict)
		if s.Watchdog != nil && s.Watchdog.Escalations() > 0 {
			for _, ws := range s.Watchdog.Steps {
				fmt.Fprintf(&sb, "          watchdog %s\n", ws)
			}
		}
	}
	for _, f := range findings {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// stepLabel names a step for findings ("step-3 fail-link r1 r3").
func stepLabel(i int, s Step) string { return fmt.Sprintf("step-%d %s", i, s) }

// Run executes the scenario. The pre-scenario reachability matrix is the
// baseline every check diffs against. Steps that fail to converge within
// their budget, violate a check, or error out produce findings; execution
// continues so the report covers the whole script. The error return is
// reserved for the scenario being unrunnable at all (lab not started,
// measurement impossible).
func (e *Engine) Run(sc Scenario) (Report, error) {
	span := e.opts.Obs.StartSpan("Chaos")
	defer span.End()
	rep := Report{Scenario: sc.Name, Shards: e.lab.BGPShardCount()}

	bspan := e.opts.Obs.StartSpan("baseline")
	base, err := e.client.ReachabilityMatrix(e.lab.VMNames(), e.addrOf)
	bspan.End()
	if err != nil {
		return rep, fmt.Errorf("chaos: measuring baseline: %w", err)
	}
	rep.Baseline = base

	origBudget := e.lab.Budget()
	defer e.lab.SetBudget(origBudget)
	e.rules, e.seed = nil, sc.Seed
	e.supervising = sc.Seeded || e.opts.Supervise
	defer e.clearPerturbation()

	for i, st := range sc.Steps {
		e.opts.Obs.Add(CounterSteps, 1)
		sspan := e.opts.Obs.StartSpan(fmt.Sprintf("step-%d %s", i+1, st.Op))
		res, err := e.runStep(i+1, st, base)
		sspan.End()
		if err != nil {
			return rep, err
		}
		e.opts.Obs.Add(CounterFindings, int64(len(res.Findings)))
		rep.Steps = append(rep.Steps, res)
	}
	return rep, nil
}

// budgetFor resolves a step's convergence budget.
func (e *Engine) budgetFor(st Step) routing.ConvergenceBudget {
	if st.MaxBGPRounds > 0 {
		return routing.ConvergenceBudget{MaxBGPRounds: st.MaxBGPRounds}
	}
	return e.opts.Budget
}

func (e *Engine) runStep(idx int, st Step, base measure.Reachability) (StepResult, error) {
	res := StepResult{Index: idx, Step: st}
	label := stepLabel(idx, st)
	addFinding := func(check string, sev verify.Severity, format string, args ...any) {
		res.Findings = append(res.Findings, verify.Finding{
			Check: check, Severity: sev, Device: label, Detail: fmt.Sprintf(format, args...),
		})
	}

	if st.Op == OpCheck {
		err := e.runCheck(&res, base, addFinding)
		return res, err
	}

	budget := e.budgetFor(st)
	e.lab.SetBudget(budget)
	if st.Op == OpPerturb {
		err := e.runPerturb(&res, budget, addFinding)
		return res, err
	}
	if st.Op == OpFailHost || st.Op == OpDrainHost || st.Op == OpSilenceHost {
		err := e.runHostOp(&res, budget, addFinding)
		return res, err
	}
	if st.Op == OpCrashSched {
		e.runCrashSched(&res, addFinding)
		return res, nil
	}
	if st.Op == OpFlakyHost {
		e.runFlakyHost(&res, addFinding)
		return res, nil
	}
	times := 1
	if st.Op == OpFlap {
		times = st.Times
	}
	for round := 0; round < times; round++ {
		var err error
		switch st.Op {
		case OpFailLink:
			err = e.lab.FailLink(st.A, st.B)
		case OpRestoreLink:
			err = e.lab.RestoreLink(st.A, st.B)
		case OpFailNode:
			err = e.lab.FailNode(st.Node)
		case OpRestoreNode:
			err = e.lab.RestoreNode(st.Node)
		case OpPartition:
			err = e.lab.Partition(st.Nodes)
		case OpFlap:
			if err = e.lab.FailLink(st.A, st.B); err == nil {
				bgp := e.lab.BGPResult()
				if !bgp.Converged {
					addFinding("chaos-convergence", verify.Error,
						"flap %d down: %s", round+1, budget.Describe(bgp))
				}
				err = e.lab.RestoreLink(st.A, st.B)
			}
		default:
			return res, fmt.Errorf("chaos: unknown operation %q", st.Op)
		}
		if err != nil {
			addFinding("chaos-step", verify.Error, "injection failed: %v", err)
			res.Verdict = fmt.Sprintf("FAILED: %v", err)
			return res, nil
		}
	}
	err := e.settle(&res, budget, addFinding)
	return res, err
}

// runHostOp executes a substrate-host step through the attached host
// controller and settles the convergence verdict. A degraded operation
// (stranded VMs) records an error finding but the scenario continues —
// graceful degradation is precisely what these drills probe.
func (e *Engine) runHostOp(res *StepResult, budget routing.ConvergenceBudget, addFinding func(string, verify.Severity, string, ...any)) error {
	st := res.Step
	if e.opts.Hosts == nil {
		addFinding("chaos-step", verify.Error, "no host controller attached for %s", st.Op)
		res.Verdict = "FAILED: no host controller"
		return nil
	}
	var moved, stranded []string
	var err error
	switch st.Op {
	case OpDrainHost:
		moved, stranded, err = e.opts.Hosts.DrainHost(st.Node)
	case OpSilenceHost:
		silencer, ok := e.opts.Hosts.(HostSilencer)
		if !ok {
			addFinding("chaos-step", verify.Error, "host controller cannot silence hosts")
			res.Verdict = "FAILED: no host silencer"
			return nil
		}
		moved, stranded, err = silencer.SilenceHost(st.Node)
	default:
		moved, stranded, err = e.opts.Hosts.FailHost(st.Node)
	}
	if err != nil && len(stranded) == 0 {
		addFinding("chaos-step", verify.Error, "injection failed: %v", err)
		res.Verdict = fmt.Sprintf("FAILED: %v", err)
		return nil
	}
	if len(stranded) > 0 {
		addFinding("chaos-degraded", verify.Error,
			"%d VMs stranded (%s)", len(stranded), strings.Join(stranded, ", "))
	}
	if serr := e.settle(res, budget, addFinding); serr != nil {
		return serr
	}
	res.Verdict = fmt.Sprintf("%d VMs moved, %d stranded; %s", len(moved), len(stranded), res.Verdict)
	return nil
}

// runCrashSched kills and recovers the durable scheduler. No convergence
// settling: the control plane of the *substrate* restarts, the emulated
// network never notices — which is exactly the property the step asserts.
func (e *Engine) runCrashSched(res *StepResult, addFinding func(string, verify.Severity, string, ...any)) {
	crasher, ok := e.opts.Hosts.(SchedCrasher)
	if !ok {
		addFinding("chaos-step", verify.Error, "no durable scheduler attached for crash-sched")
		res.Verdict = "FAILED: no durable scheduler"
		return
	}
	summary, err := crasher.CrashSched()
	if err != nil {
		addFinding("chaos-step", verify.Error, "scheduler recovery failed: %v", err)
		res.Verdict = fmt.Sprintf("FAILED: %v", err)
		return
	}
	res.Verdict = summary
}

// runFlakyHost installs a scheduled migration-failure rate. Pure
// configuration: nothing moves, so there is no convergence to settle.
func (e *Engine) runFlakyHost(res *StepResult, addFinding func(string, verify.Severity, string, ...any)) {
	flaker, ok := e.opts.Hosts.(HostFlaker)
	if !ok {
		addFinding("chaos-step", verify.Error, "host controller cannot schedule host faults")
		res.Verdict = "FAILED: no host flaker"
		return
	}
	if err := flaker.FlakyHost(res.Step.Node, res.Step.Rate); err != nil {
		addFinding("chaos-step", verify.Error, "injection failed: %v", err)
		res.Verdict = fmt.Sprintf("FAILED: %v", err)
		return
	}
	res.Verdict = fmt.Sprintf("migration failure rate onto %s set to %.2f", res.Step.Node, res.Step.Rate)
}

// runPerturb installs (or clears) a perturbation rule, re-converges the
// control plane under it, and settles the verdict.
func (e *Engine) runPerturb(res *StepResult, budget routing.ConvergenceBudget, addFinding func(string, verify.Severity, string, ...any)) error {
	if res.Step.Rule == nil {
		e.rules = nil
		e.lab.SetPerturber(nil)
	} else {
		e.rules = append(e.rules, *res.Step.Rule)
		e.lab.SetPerturber(routing.NewScheduledPerturber(e.seed, e.rules))
	}
	if _, err := e.lab.Reconverge(); err != nil {
		addFinding("chaos-step", verify.Error, "reconverge failed: %v", err)
		res.Verdict = fmt.Sprintf("FAILED: %v", err)
		return nil
	}
	return e.settle(res, budget, addFinding)
}

// settle turns the step's convergence outcome into a verdict and findings.
// Unsupervised runs report the raw engine outcome; supervised runs hand
// the lab to the convergence watchdog and report the ladder it climbed.
func (e *Engine) settle(res *StepResult, budget routing.ConvergenceBudget, addFinding func(string, verify.Severity, string, ...any)) error {
	bgp := e.lab.BGPResult()
	if !e.supervising {
		res.Verdict = budget.Describe(bgp)
		if !bgp.Converged {
			addFinding("chaos-convergence", verify.Error, "%s", res.Verdict)
		}
		return nil
	}
	w := &emul.Watchdog{Budget: budget, Obs: e.opts.Obs, OnEvent: e.opts.OnEvent}
	rep, err := w.Supervise(e.lab)
	if err != nil {
		return fmt.Errorf("chaos: watchdog: %w", err)
	}
	res.Watchdog = &rep
	res.Verdict = rep.Steps[len(rep.Steps)-1].Detail
	if n := rep.Escalations(); n > 0 {
		res.Verdict += fmt.Sprintf(" [watchdog: %d escalations, final %s]", n, rep.Final)
	}
	switch {
	case rep.Final != emul.VerdictConverged:
		addFinding("chaos-convergence", verify.Error, "%s", res.Verdict)
	case rep.Recovered:
		note := ""
		if len(rep.Quarantined) > 0 {
			note = fmt.Sprintf(" (quarantined %s)", strings.Join(rep.Quarantined, ", "))
		}
		if id := e.lab.LastIncidentID(); id > 0 {
			note += fmt.Sprintf(" (incident #%d)", id)
		}
		addFinding("chaos-watchdog", verify.Warning,
			"recovered after %d escalations%s", rep.Escalations(), note)
	}
	return nil
}

// clearPerturbation removes any installed perturber at scenario end and
// re-converges, so the lab is handed back clean. A scenario that never
// perturbed is untouched.
func (e *Engine) clearPerturbation() {
	e.rules = nil
	if e.lab.Perturber() == nil {
		return
	}
	e.lab.SetPerturber(nil)
	_, _ = e.lab.Reconverge()
}

func (e *Engine) runCheck(res *StepResult, base measure.Reachability, addFinding func(string, verify.Severity, string, ...any)) error {
	st := res.Step
	switch st.Check {
	case CheckConverged:
		// Rounds is the engine's cumulative counter, so a watchdog
		// soft-reset continuation counts its extra rounds too — the bound
		// is on total control-plane work, not just the last run.
		bgp := e.lab.BGPResult()
		switch {
		case !bgp.Converged:
			res.Verdict = "VIOLATED: " + e.budgetFor(st).Describe(bgp)
			addFinding("chaos-check", verify.Error, "not converged: %s", e.budgetFor(st).Describe(bgp))
		case st.Within > 0 && bgp.Rounds > st.Within:
			res.Verdict = fmt.Sprintf("VIOLATED: converged in %d rounds, want <= %d", bgp.Rounds, st.Within)
			addFinding("chaos-check", verify.Error, "converged in %d rounds, want <= %d", bgp.Rounds, st.Within)
		default:
			res.Verdict = fmt.Sprintf("ok (converged in %d rounds)", bgp.Rounds)
		}
		return nil
	case CheckReservation:
		inspector, ok := e.opts.Hosts.(ReservationInspector)
		if !ok {
			addFinding("chaos-check", verify.Error, "host controller cannot inspect reservations")
			res.Verdict = "FAILED: no reservation inspector"
			return nil
		}
		state, err := inspector.ReservationState(st.A)
		if err != nil {
			addFinding("chaos-check", verify.Error, "reservation %s: %v", st.A, err)
			res.Verdict = fmt.Sprintf("FAILED: %v", err)
			return nil
		}
		if state == st.B {
			res.Verdict = fmt.Sprintf("ok (reservation %s %s)", st.A, state)
		} else {
			res.Verdict = fmt.Sprintf("VIOLATED: reservation %s is %s, want %s", st.A, state, st.B)
			addFinding("chaos-check", verify.Error, "reservation %s is %s, want %s", st.A, state, st.B)
		}
		return nil
	case CheckReachable, CheckUnreachable:
		dst := e.addrOf(st.B)
		if !dst.IsValid() {
			return fmt.Errorf("chaos: no probe address for %q", st.B)
		}
		ok, err := e.client.Reachable(st.A, dst)
		if err != nil {
			return fmt.Errorf("chaos: probing %s -> %s: %w", st.A, st.B, err)
		}
		want := st.Check == CheckReachable
		if ok == want {
			res.Verdict = "ok"
		} else {
			res.Verdict = fmt.Sprintf("VIOLATED: %s -> %s reachable=%v, want %v", st.A, st.B, ok, want)
			addFinding("chaos-check", verify.Error,
				"%s -> %s reachable=%v, want %v", st.A, st.B, ok, want)
		}
		return nil
	}

	m, err := e.client.ReachabilityMatrix(e.lab.VMNames(), e.addrOf)
	if err != nil {
		return fmt.Errorf("chaos: measuring reachability: %w", err)
	}
	res.Matrix = &m
	diff := measure.DiffReachability(base, m)
	res.Verdict = fmt.Sprintf("%d/%d pairs reachable (%d lost, %d gained vs baseline)",
		m.Reachable(), m.Pairs(), len(diff.Lost), len(diff.Gained))
	if diff.OK() {
		return nil
	}
	sev := verify.Warning
	if st.Check == CheckBaseline {
		sev = verify.Error
	}
	addFinding("chaos-check", sev, "%s%s", diff, pairSamples(diff))
	return nil
}

// pairSamples renders up to three changed pairs per direction, so findings
// stay one line but name concrete victims.
func pairSamples(d measure.ReachabilityDiff) string {
	var parts []string
	render := func(tag string, ps [][2]string) {
		if len(ps) == 0 {
			return
		}
		n := len(ps)
		if n > 3 {
			n = 3
		}
		var items []string
		for _, p := range ps[:n] {
			items = append(items, p[0]+"->"+p[1])
		}
		if len(ps) > n {
			items = append(items, "...")
		}
		parts = append(parts, fmt.Sprintf("%s: %s", tag, strings.Join(items, " ")))
	}
	render("lost", d.Lost)
	render("gained", d.Gained)
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}
