package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"autonetkit/internal/routing"
)

// The perturb directive grammar (everything after the "perturb" keyword):
//
//	loss <pct> [on A:B]         # drop each route with probability pct%
//	dup <pct> [on A:B]          # duplicate each route with probability pct%
//	delay <rounds> [on A:B]     # deliver the snapshot from N rounds ago
//	reorder [on A:B]            # deterministically shuffle deliveries
//	flap A:B every <n> [recover]# session alternates up/down every n rounds
//	corrupt [A:B] at <r> for <n># poison AS paths in rounds [r, r+n)
//
// A session is named A:B (unordered endpoints); omitting it applies the
// rule to every session. `perturb clear` (handled by the scenario parser,
// not here) removes all rules. Rendering a parsed rule with its String
// method round-trips to this syntax.

// Bounds on numeric rule parameters, so a fuzzed or typo'd script cannot
// schedule absurd work (a 10^9-round delay queue, say).
const (
	maxPerturbRounds = 1000
	maxPerturbPct    = 100
)

// ParsePerturb parses one perturbation rule from the text after the
// "perturb" keyword.
func ParsePerturb(s string) (routing.PerturbRule, error) {
	var rule routing.PerturbRule
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return rule, fmt.Errorf("perturb needs a rule (loss, dup, delay, reorder, flap, corrupt)")
	}
	kind, args := routing.PerturbKind(fields[0]), fields[1:]
	rule.Kind = kind
	switch kind {
	case routing.PerturbLoss, routing.PerturbDup:
		if len(args) == 0 {
			return rule, fmt.Errorf("perturb %s needs a percentage", kind)
		}
		pct, err := parseBounded(args[0], 1, maxPerturbPct)
		if err != nil {
			return rule, fmt.Errorf("bad %s percentage %q", kind, args[0])
		}
		rule.Pct = pct
		return rule, parseOnSession(&rule, args[1:])
	case routing.PerturbDelay:
		if len(args) == 0 {
			return rule, fmt.Errorf("perturb delay needs a round count")
		}
		n, err := parseBounded(args[0], 1, maxPerturbRounds)
		if err != nil {
			return rule, fmt.Errorf("bad delay rounds %q", args[0])
		}
		rule.Rounds = n
		return rule, parseOnSession(&rule, args[1:])
	case routing.PerturbReorder:
		return rule, parseOnSession(&rule, args)
	case routing.PerturbFlap:
		// flap A:B every <n> [recover]
		if len(args) < 3 || args[1] != "every" {
			return rule, fmt.Errorf("perturb flap needs A:B every <n>, got %q", strings.Join(args, " "))
		}
		a, b, err := parseSession(args[0])
		if err != nil {
			return rule, err
		}
		rule.A, rule.B = a, b
		n, err := parseBounded(args[2], 1, maxPerturbRounds)
		if err != nil {
			return rule, fmt.Errorf("bad flap period %q", args[2])
		}
		rule.Every = n
		switch {
		case len(args) == 3:
		case len(args) == 4 && args[3] == "recover":
			rule.Recover = true
		default:
			return rule, fmt.Errorf("perturb flap: unexpected %q", strings.Join(args[3:], " "))
		}
		return rule, nil
	case routing.PerturbCorrupt:
		// corrupt [A:B] at <r> for <n>
		if len(args) > 0 && args[0] != "at" {
			a, b, err := parseSession(args[0])
			if err != nil {
				return rule, err
			}
			rule.A, rule.B = a, b
			args = args[1:]
		}
		if len(args) != 4 || args[0] != "at" || args[2] != "for" {
			return rule, fmt.Errorf("perturb corrupt needs [A:B] at <round> for <rounds>, got %q", strings.Join(args, " "))
		}
		at, err := parseBounded(args[1], 0, maxPerturbRounds)
		if err != nil {
			return rule, fmt.Errorf("bad corrupt start %q", args[1])
		}
		dur, err := parseBounded(args[3], 1, maxPerturbRounds)
		if err != nil {
			return rule, fmt.Errorf("bad corrupt duration %q", args[3])
		}
		rule.At, rule.For = at, dur
		return rule, nil
	}
	return rule, fmt.Errorf("unknown perturbation %q", fields[0])
}

// parseOnSession consumes an optional trailing "on A:B".
func parseOnSession(rule *routing.PerturbRule, args []string) error {
	switch {
	case len(args) == 0:
		return nil
	case len(args) == 2 && args[0] == "on":
		a, b, err := parseSession(args[1])
		if err != nil {
			return err
		}
		rule.A, rule.B = a, b
		return nil
	}
	return fmt.Errorf("perturb %s: expected [on A:B], got %q", rule.Kind, strings.Join(args, " "))
}

// parseSession splits an A:B session token.
func parseSession(tok string) (string, string, error) {
	a, b, ok := strings.Cut(tok, ":")
	if !ok || a == "" || b == "" || strings.Contains(b, ":") {
		return "", "", fmt.Errorf("bad session %q (want A:B)", tok)
	}
	if a == b {
		return "", "", fmt.Errorf("bad session %q (endpoints must differ)", tok)
	}
	return a, b, nil
}

func parseBounded(tok string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(tok)
	if err != nil || n < lo || n > hi {
		return 0, fmt.Errorf("out of range")
	}
	return n, nil
}
