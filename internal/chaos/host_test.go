package chaos

import (
	"fmt"
	"strings"
	"testing"
)

// fakeHosts is a scripted HostController.
type fakeHosts struct {
	calls    []string
	moved    map[string][]string
	stranded map[string][]string
	err      map[string]error
}

func (f *fakeHosts) DrainHost(host string) ([]string, []string, error) {
	f.calls = append(f.calls, "drain "+host)
	return f.moved[host], f.stranded[host], f.err[host]
}

func (f *fakeHosts) FailHost(host string) ([]string, []string, error) {
	f.calls = append(f.calls, "fail "+host)
	return f.moved[host], f.stranded[host], f.err[host]
}

func TestParseHostSteps(t *testing.T) {
	sc := mustParse(t, `
fail-host h03
drain-host h07
check
`)
	if len(sc.Steps) != 3 {
		t.Fatalf("steps = %+v", sc.Steps)
	}
	if sc.Steps[0].Op != OpFailHost || sc.Steps[0].Node != "h03" {
		t.Errorf("step 0 = %+v", sc.Steps[0])
	}
	if sc.Steps[1].Op != OpDrainHost || sc.Steps[1].Node != "h07" {
		t.Errorf("step 1 = %+v", sc.Steps[1])
	}
	if got := sc.Steps[0].String(); got != "fail-host h03" {
		t.Errorf("String = %q", got)
	}
	if got := sc.Steps[1].String(); got != "drain-host h07" {
		t.Errorf("String = %q", got)
	}
	// Arity errors are diagnosed.
	_, diags := ParseScenario(strings.NewReader("drain-host a b\nfail-host\n"))
	if len(diags) != 2 { // one per malformed line
		t.Fatalf("diags = %v", diags)
	}
}

func TestHostStepsDriveController(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &fakeHosts{
		moved: map[string][]string{"h1": {"r1", "r2"}, "h2": {"r3"}},
	}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, `
drain-host h1
fail-host h2
check baseline
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(hosts.calls); got != "[drain h1 fail h2]" {
		t.Errorf("controller calls = %v", hosts.calls)
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	if !strings.Contains(rep.Steps[0].Verdict, "2 VMs moved, 0 stranded") {
		t.Errorf("drain verdict = %q", rep.Steps[0].Verdict)
	}
	if !strings.Contains(rep.Steps[1].Verdict, "1 VMs moved, 0 stranded") {
		t.Errorf("fail verdict = %q", rep.Steps[1].Verdict)
	}
}

func TestHostStepDegradedStrandsFinding(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &fakeHosts{
		moved:    map[string][]string{"h1": {"r1"}},
		stranded: map[string][]string{"h1": {"r2", "r4"}},
		err:      map[string]error{"h1": fmt.Errorf("degraded: insufficient surviving capacity")},
	}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, "drain-host h1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("stranded VMs should produce an error finding")
	}
	var sawDegraded bool
	for _, f := range rep.Findings() {
		if f.Check == "chaos-degraded" && strings.Contains(f.Detail, "r2, r4") {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Errorf("no chaos-degraded finding in:\n%s", rep)
	}
	if !strings.Contains(rep.Steps[0].Verdict, "1 VMs moved, 2 stranded") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
}

func TestHostStepHardErrorFailsStep(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &fakeHosts{err: map[string]error{"ghost": fmt.Errorf("no host ghost")}}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, "fail-host ghost\ncheck\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("hard controller error should produce a finding")
	}
	if !strings.HasPrefix(rep.Steps[0].Verdict, "FAILED:") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
	// The scenario continued to the check step.
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
}

func TestHostStepWithoutController(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	engine := NewEngine(lab, client, addrOf, Options{})
	rep, err := engine.Run(mustParse(t, "drain-host h1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing controller should produce a finding")
	}
	if !strings.Contains(rep.Steps[0].Verdict, "no host controller") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
}

// crashyHosts extends fakeHosts with a scripted SchedCrasher.
type crashyHosts struct {
	fakeHosts
	summary  string
	crashErr error
}

func (c *crashyHosts) CrashSched() (string, error) {
	c.calls = append(c.calls, "crash-sched")
	return c.summary, c.crashErr
}

func TestParseCrashSchedStep(t *testing.T) {
	sc := mustParse(t, "drain-host h1\ncrash-sched\ncheck baseline\n")
	if len(sc.Steps) != 3 || sc.Steps[1].Op != OpCrashSched {
		t.Fatalf("steps = %+v", sc.Steps)
	}
	if got := sc.Steps[1].String(); got != "crash-sched" {
		t.Errorf("String = %q", got)
	}
	_, diags := ParseScenario(strings.NewReader("crash-sched h1\n"))
	if len(diags) != 1 {
		t.Fatalf("diags = %v", diags)
	}
}

func TestCrashSchedDrivesCrasher(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &crashyHosts{summary: "scheduler crashed and recovered from snapshot+wal: epoch 1, 3 records replayed; status byte-identical"}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, "crash-sched\ncheck baseline\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	if got := fmt.Sprint(hosts.calls); got != "[crash-sched]" {
		t.Errorf("calls = %v", hosts.calls)
	}
	if !strings.Contains(rep.Steps[0].Verdict, "byte-identical") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
}

func TestCrashSchedRecoveryFailureFailsStep(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &crashyHosts{crashErr: fmt.Errorf("recovered scheduler state diverged")}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, "crash-sched\ncheck\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("diverged recovery should produce a finding")
	}
	if !strings.HasPrefix(rep.Steps[0].Verdict, "FAILED:") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
	// The scenario continued past the failed step.
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
}

func TestCrashSchedWithoutCrasher(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	// A plain HostController (no SchedCrasher) cannot serve crash-sched.
	engine := NewEngine(lab, client, addrOf, Options{Hosts: &fakeHosts{}})
	rep, err := engine.Run(mustParse(t, "crash-sched\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing crasher should produce a finding")
	}
	if !strings.Contains(rep.Steps[0].Verdict, "no durable scheduler") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
}

// leaseHosts extends fakeHosts with the lease/preemption-era extensions:
// silencing, scheduled migration faults, and reservation inspection.
type leaseHosts struct {
	fakeHosts
	rates  map[string]float64
	states map[string]string
}

func (l *leaseHosts) SilenceHost(host string) ([]string, []string, error) {
	l.calls = append(l.calls, "silence "+host)
	return l.moved[host], l.stranded[host], l.err[host]
}

func (l *leaseHosts) FlakyHost(host string, rate float64) error {
	l.calls = append(l.calls, fmt.Sprintf("flaky %s %.2f", host, rate))
	if l.rates == nil {
		l.rates = map[string]float64{}
	}
	l.rates[host] = rate
	return l.err[host]
}

func (l *leaseHosts) ReservationState(name string) (string, error) {
	l.calls = append(l.calls, "reservation "+name)
	if st, ok := l.states[name]; ok {
		return st, nil
	}
	return "", fmt.Errorf("no reservation %s", name)
}

func TestParseLeaseSteps(t *testing.T) {
	sc := mustParse(t, `
silence-host h02
flaky-host h03 0.4
check reservation prod active
check reservation batch preempted
`)
	if len(sc.Steps) != 4 {
		t.Fatalf("steps = %+v", sc.Steps)
	}
	if sc.Steps[0].Op != OpSilenceHost || sc.Steps[0].Node != "h02" {
		t.Errorf("step 0 = %+v", sc.Steps[0])
	}
	if sc.Steps[1].Op != OpFlakyHost || sc.Steps[1].Node != "h03" || sc.Steps[1].Rate != 0.4 {
		t.Errorf("step 1 = %+v", sc.Steps[1])
	}
	if sc.Steps[2].Op != OpCheck || sc.Steps[2].Check != CheckReservation ||
		sc.Steps[2].A != "prod" || sc.Steps[2].B != "active" {
		t.Errorf("step 2 = %+v", sc.Steps[2])
	}
	if got := sc.Steps[0].String(); got != "silence-host h02" {
		t.Errorf("String = %q", got)
	}
	if got := sc.Steps[1].String(); got != "flaky-host h03 0.40" {
		t.Errorf("String = %q", got)
	}
	if got := sc.Steps[3].String(); got != "check reservation batch preempted" {
		t.Errorf("String = %q", got)
	}
	// Round-trip: the String form re-parses to the same step.
	re := mustParse(t, sc.Steps[1].String()+"\n")
	if got := re.Steps[0].String(); got != sc.Steps[1].String() {
		t.Errorf("round-trip = %q, want %q", got, sc.Steps[1].String())
	}
}

func TestParseLeaseStepDiagnostics(t *testing.T) {
	bad := []string{
		"silence-host",               // missing host
		"silence-host a b",           // too many args
		"flaky-host h01",             // missing rate
		"flaky-host h01 nope",        // unparsable rate
		"flaky-host h01 1.5",         // rate out of range
		"check reservation prod",     // missing state
		"check reservation prod bad", // unknown state
	}
	for _, line := range bad {
		_, diags := ParseScenario(strings.NewReader(line + "\n"))
		if len(diags) != 1 {
			t.Errorf("%q: diags = %v", line, diags)
		}
	}
}

func TestSilenceHostDrivesSilencer(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &leaseHosts{
		fakeHosts: fakeHosts{moved: map[string][]string{"h2": {"r3", "r5"}}},
		states:    map[string]string{"prod": "active", "batch": "preempted"},
	}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, `
silence-host h2
flaky-host h3 0.25
check reservation prod active
check reservation batch preempted
`))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	want := "[silence h2 flaky h3 0.25 reservation prod reservation batch]"
	if got := fmt.Sprint(hosts.calls); got != want {
		t.Errorf("calls = %v", hosts.calls)
	}
	if !strings.Contains(rep.Steps[0].Verdict, "2 VMs moved, 0 stranded") {
		t.Errorf("silence verdict = %q", rep.Steps[0].Verdict)
	}
	if !strings.Contains(rep.Steps[1].Verdict, "migration failure rate onto h3 set to 0.25") {
		t.Errorf("flaky verdict = %q", rep.Steps[1].Verdict)
	}
	if !strings.Contains(rep.Steps[2].Verdict, "ok (reservation prod active)") {
		t.Errorf("reservation verdict = %q", rep.Steps[2].Verdict)
	}
	if hosts.rates["h3"] != 0.25 {
		t.Errorf("rates = %v", hosts.rates)
	}
}

func TestReservationCheckViolated(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	hosts := &leaseHosts{states: map[string]string{"batch": "queued"}}
	engine := NewEngine(lab, client, addrOf, Options{Hosts: hosts})
	rep, err := engine.Run(mustParse(t, "check reservation batch preempted\ncheck reservation ghost active\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("mismatched reservation state should produce a finding")
	}
	if !strings.Contains(rep.Steps[0].Verdict, "VIOLATED: reservation batch is queued, want preempted") {
		t.Errorf("verdict = %q", rep.Steps[0].Verdict)
	}
	if !strings.HasPrefix(rep.Steps[1].Verdict, "FAILED:") {
		t.Errorf("verdict = %q", rep.Steps[1].Verdict)
	}
}

func TestLeaseStepsWithoutExtensions(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	// A plain HostController lacks the lease-era extensions; each step
	// fails gracefully and the scenario continues.
	engine := NewEngine(lab, client, addrOf, Options{Hosts: &fakeHosts{}})
	rep, err := engine.Run(mustParse(t, "silence-host h1\nflaky-host h1 0.5\ncheck reservation prod active\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing extensions should produce findings")
	}
	for i, want := range []string{"no host silencer", "no host flaker", "no reservation inspector"} {
		if !strings.Contains(rep.Steps[i].Verdict, want) {
			t.Errorf("step %d verdict = %q, want %q", i, rep.Steps[i].Verdict, want)
		}
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
}
