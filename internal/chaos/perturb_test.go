package chaos

import (
	"strings"
	"testing"

	"autonetkit/internal/routing"
	"autonetkit/internal/verify"
)

func TestParsePerturbRules(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want routing.PerturbRule
	}{
		{"loss 30", routing.PerturbRule{Kind: routing.PerturbLoss, Pct: 30}},
		{"loss 100 on r1:r2", routing.PerturbRule{Kind: routing.PerturbLoss, Pct: 100, A: "r1", B: "r2"}},
		{"dup 50", routing.PerturbRule{Kind: routing.PerturbDup, Pct: 50}},
		{"delay 3 on r3:r5", routing.PerturbRule{Kind: routing.PerturbDelay, Rounds: 3, A: "r3", B: "r5"}},
		{"reorder", routing.PerturbRule{Kind: routing.PerturbReorder}},
		{"reorder on a:b", routing.PerturbRule{Kind: routing.PerturbReorder, A: "a", B: "b"}},
		{"flap r1:r2 every 4", routing.PerturbRule{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 4}},
		{"flap r1:r2 every 1 recover", routing.PerturbRule{Kind: routing.PerturbFlap, A: "r1", B: "r2", Every: 1, Recover: true}},
		{"corrupt at 0 for 3", routing.PerturbRule{Kind: routing.PerturbCorrupt, For: 3}},
		{"corrupt r3:r5 at 2 for 5", routing.PerturbRule{Kind: routing.PerturbCorrupt, A: "r3", B: "r5", At: 2, For: 5}},
	} {
		got, err := ParsePerturb(tc.in)
		if err != nil {
			t.Errorf("ParsePerturb(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePerturb(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Rendering and re-parsing is the identity (the golden drill and the
		// report format rely on this).
		again, err := ParsePerturb(strings.TrimPrefix(got.String(), "perturb "))
		if err != nil || again != got {
			t.Errorf("round-trip of %q via %q: %+v, %v", tc.in, got.String(), again, err)
		}
	}
}

func TestParsePerturbErrors(t *testing.T) {
	for _, bad := range []string{
		"",                          // no rule
		"melt 3",                    // unknown kind
		"loss",                      // missing pct
		"loss 0",                    // below bound
		"loss 200",                  // above bound
		"loss abc",                  // not a number
		"loss 30 r1:r2",             // missing "on"
		"loss 30 on r1",             // not a session
		"loss 30 on r1:r1",          // equal endpoints
		"loss 30 on r1:r2:r3",       // extra colon
		"delay 0",                   // below bound
		"delay 10000",               // absurd queue depth
		"flap r1:r2",                // missing every
		"flap every 2",              // missing session
		"flap r1:r2 every 0",        // zero period
		"flap r1:r2 every 2 loudly", // trailing junk
		"corrupt at 5",              // missing for
		"corrupt at -1 for 2",       // negative start
		"corrupt at 2 for 0",        // zero duration
	} {
		if _, err := ParsePerturb(bad); err == nil {
			t.Errorf("ParsePerturb(%q) accepted", bad)
		}
	}
}

func TestParseScenarioPerturbGrammar(t *testing.T) {
	sc := mustParse(t, `
name convergence drill
seed 1337
budget 60
perturb delay 2 on r1:r2
check converged within 50
perturb flap r3:r5 every 2 recover
perturb clear
check converged
check baseline
`)
	if !sc.Seeded || sc.Seed != 1337 {
		t.Fatalf("seed = %d (seeded %v)", sc.Seed, sc.Seeded)
	}
	if len(sc.Steps) != 6 {
		t.Fatalf("steps = %d: %+v", len(sc.Steps), sc.Steps)
	}
	if sc.Steps[0].Op != OpPerturb || sc.Steps[0].Rule == nil || sc.Steps[0].Rule.Kind != routing.PerturbDelay {
		t.Errorf("perturb step = %+v", sc.Steps[0])
	}
	if sc.Steps[0].MaxBGPRounds != 60 {
		t.Errorf("budget not applied to perturb step: %+v", sc.Steps[0])
	}
	if sc.Steps[1].Check != CheckConverged || sc.Steps[1].Within != 50 {
		t.Errorf("check converged step = %+v", sc.Steps[1])
	}
	if sc.Steps[3].Op != OpPerturb || sc.Steps[3].Rule != nil {
		t.Errorf("perturb clear step = %+v", sc.Steps[3])
	}
	if sc.Steps[4].Within != 0 {
		t.Errorf("unbounded check converged has Within = %d", sc.Steps[4].Within)
	}
	// Step.String round-trips the new directives in scenario syntax.
	for i, want := range []string{
		"perturb delay 2 on r1:r2",
		"check converged within 50",
		"perturb flap r3:r5 every 2 recover",
		"perturb clear",
		"check converged",
		"check baseline",
	} {
		if got := sc.Steps[i].String(); got != want {
			t.Errorf("step %d String = %q, want %q", i, got, want)
		}
	}
}

func TestParseScenarioPerturbErrors(t *testing.T) {
	for _, bad := range []string{
		"seed\ncheck\n",                     // seed needs a value
		"seed x\ncheck\n",                   // not an integer
		"seed -1\ncheck\n",                  // uint64 only
		"perturb\ncheck\n",                  // empty rule
		"perturb loss 200\ncheck\n",         // out of range
		"perturb flap a:a every 2\ncheck\n", // degenerate session
		"check converged within 0\n",        // zero bound
		"check converged within\n",          // missing bound
		"check converged soon\n",            // junk suffix
	} {
		_, diags := ParseScenario(strings.NewReader(bad))
		if !diags.HasErrors() {
			t.Errorf("script %q accepted", bad)
		}
	}
	// A seed alone contributes no step; the scenario must still have one.
	_, diags := ParseScenario(strings.NewReader("seed 7\n"))
	if !diags.HasErrors() {
		t.Error("seed-only scenario accepted")
	}
}

// A seeded scenario is supervised: the watchdog heals a recoverable flap,
// the ladder shows up on the step, and the report closes clean (warnings
// only) with the perturbation cleared.
func TestSeededScenarioSupervised(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	sc := mustParse(t, `
name supervised flap
seed 7
perturb flap r1:r2 every 1 recover
perturb clear
check baseline
`)
	eng := NewEngine(lab, client, addrOf, Options{})
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	flapStep := rep.Steps[0]
	if flapStep.Watchdog == nil {
		t.Fatalf("seeded perturb step has no supervision ladder:\n%s", rep)
	}
	if n := flapStep.Watchdog.Escalations(); n != 2 || !flapStep.Watchdog.Recovered {
		t.Fatalf("ladder = %d escalations, recovered %v:\n%s",
			n, flapStep.Watchdog.Recovered, flapStep.Watchdog.Describe())
	}
	if !strings.Contains(flapStep.Verdict, "[watchdog: 2 escalations, final converged]") {
		t.Errorf("verdict = %q", flapStep.Verdict)
	}
	var recovered bool
	for _, f := range rep.Findings() {
		if f.Check == "chaos-watchdog" && f.Severity == verify.Warning &&
			strings.Contains(f.Detail, "recovered after 2 escalations") {
			recovered = true
		}
	}
	if !recovered {
		t.Errorf("no recovery warning in findings:\n%s", rep)
	}
	// The report text shows the ladder rungs under the step line.
	text := rep.String()
	for _, want := range []string{
		"watchdog observe: oscillating",
		"watchdog escalate-budget: oscillating",
		"watchdog soft-reset [r1, r2]: converged",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if lab.Perturber() != nil {
		t.Error("perturber survived the scenario")
	}
	if !lab.BGPResult().Converged {
		t.Error("lab handed back unconverged")
	}
}

// Without a seed (and without Options.Supervise) a perturb step reports the
// raw engine verdict: an unhealed flap is an error finding, no ladder runs,
// and the deferred cleanup still hands the lab back clean.
func TestUnseededPerturbUnsupervised(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	sc := mustParse(t, `
name raw flap
budget 30
perturb flap r1:r2 every 1
`)
	eng := NewEngine(lab, client, addrOf, Options{})
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("oscillating lab reported OK:\n%s", rep)
	}
	step := rep.Steps[0]
	if step.Watchdog != nil {
		t.Errorf("unsupervised step grew a ladder: %+v", step.Watchdog)
	}
	if !strings.Contains(step.Verdict, "oscillating") {
		t.Errorf("verdict = %q", step.Verdict)
	}
	if lab.Perturber() != nil {
		t.Error("perturber survived the scenario")
	}
	if !lab.BGPResult().Converged {
		t.Error("cleanup did not reconverge the lab")
	}
}

// Options.Supervise turns the watchdog on for unseeded scenarios too, and a
// supervised healthy step carries a ladder of exactly one observation.
func TestOptionsSuperviseWithoutSeed(t *testing.T) {
	lab, client, addrOf := fig5Lab(t)
	sc := mustParse(t, "fail-link r1 r2\nrestore-link r1 r2\ncheck baseline\n")
	eng := NewEngine(lab, client, addrOf, Options{Supervise: true})
	rep, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	for _, s := range rep.Steps[:2] {
		if s.Watchdog == nil {
			t.Fatalf("supervised step %d has no ladder", s.Index)
		}
		if s.Watchdog.Escalations() != 0 || s.Watchdog.Final != "converged" {
			t.Errorf("healthy step %d ladder:\n%s", s.Index, s.Watchdog.Describe())
		}
	}
}
