// Package chaos executes declarative fault-injection scenarios against a
// booted emulated lab — the paper's §8 "what-if" experimentation made
// scriptable and verifiable. A scenario is an ordered list of steps
// (fail-link, fail-node, restore-link, restore-node, flap, partition,
// check); the engine runs each step under a bounded convergence budget,
// measures the resulting reachability matrix through the measurement
// client, diffs it against the pre-incident baseline, and accumulates a
// structured resilience report (reusing the verify package's
// severity/finding vocabulary). Non-converging steps terminate with a
// detected oscillation finding instead of hanging; a fully restored lab is
// asserted identical to its pre-incident state.
package chaos

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"autonetkit/internal/emul"
	"autonetkit/internal/routing"
)

// Op is one scenario step kind.
type Op string

// Scenario step operations.
const (
	OpFailLink    Op = "fail-link"
	OpFailNode    Op = "fail-node"
	OpRestoreLink Op = "restore-link"
	OpRestoreNode Op = "restore-node"
	OpFlap        Op = "flap"
	OpPartition   Op = "partition"
	OpCheck       Op = "check"
	// OpPerturb installs (or, with a nil Rule, clears) a control-plane
	// perturbation rule and re-converges under it.
	OpPerturb Op = "perturb"
	// OpFailHost hard-fails a substrate host through the attached host
	// controller: its VMs go dark, re-place onto surviving capacity, and
	// re-boot (a visible outage window).
	OpFailHost Op = "fail-host"
	// OpDrainHost live-drains a substrate host through the attached host
	// controller: its VMs move to surviving capacity with no outage.
	OpDrainHost Op = "drain-host"
	// OpCrashSched kills and recovers the durable scheduler through the
	// attached host controller (which must also be a SchedCrasher): the
	// journal closes mid-flight and a fresh scheduler replays it, asserting
	// byte-identical state. The lab itself never stops.
	OpCrashSched Op = "crash-sched"
	// OpSilenceHost makes a substrate host stop answering entirely (no
	// probe errors, just silence) through the attached host controller
	// (which must also be a HostSilencer): its lease expires, its VMs go
	// dark and re-place onto surviving capacity.
	OpSilenceHost Op = "silence-host"
	// OpFlakyHost sets a deterministic migration-failure rate for moves
	// onto a substrate host through the attached host controller (which
	// must also be a HostFlaker). Rate 0 clears it.
	OpFlakyHost Op = "flaky-host"
)

// CheckMode selects what a check step asserts.
type CheckMode string

// Check modes.
const (
	// CheckObserve records the matrix and reports drift from the baseline
	// as warnings (informational).
	CheckObserve CheckMode = "observe"
	// CheckBaseline asserts the matrix equals the pre-scenario baseline.
	CheckBaseline CheckMode = "baseline"
	// CheckReachable asserts A reaches B.
	CheckReachable CheckMode = "reachable"
	// CheckUnreachable asserts A does not reach B.
	CheckUnreachable CheckMode = "unreachable"
	// CheckConverged asserts the most recent convergence reached a fixed
	// point, optionally within Step.Within engine rounds.
	CheckConverged CheckMode = "converged"
	// CheckReservation asserts a scheduler reservation (Step.A) is in the
	// given state (Step.B): active, queued, degraded, or preempted. Needs
	// a host controller that is also a ReservationInspector.
	CheckReservation CheckMode = "reservation"
)

// Step is one scenario entry.
type Step struct {
	Op    Op
	A, B  string   // link endpoints / check pair
	Node  string   // fail-node, restore-node target
	Nodes []string // partition group
	Times int      // flap repetitions (>= 1)
	Check CheckMode
	// Within bounds a `check converged` assertion: the run must have
	// reached its fixed point within this many rounds (0 = any).
	Within int
	// Rate is a flaky-host step's scheduled migration-failure rate in
	// [0,1] (0 clears the schedule).
	Rate float64
	// Rule is the perturbation a perturb step adds; nil means clear all.
	Rule *routing.PerturbRule
	// MaxBGPRounds is this step's convergence budget (0 = the engine
	// default).
	MaxBGPRounds int
}

// String renders the step in scenario-file syntax.
func (s Step) String() string {
	switch s.Op {
	case OpFailLink, OpRestoreLink:
		return fmt.Sprintf("%s %s %s", s.Op, s.A, s.B)
	case OpFailNode, OpRestoreNode:
		return fmt.Sprintf("%s %s", s.Op, s.Node)
	case OpFailHost, OpDrainHost, OpSilenceHost:
		return fmt.Sprintf("%s %s", s.Op, s.Node)
	case OpFlakyHost:
		return fmt.Sprintf("%s %s %.2f", s.Op, s.Node, s.Rate)
	case OpFlap:
		return fmt.Sprintf("%s %s %s %d", s.Op, s.A, s.B, s.Times)
	case OpPartition:
		return fmt.Sprintf("%s %s", s.Op, strings.Join(s.Nodes, " "))
	case OpPerturb:
		if s.Rule == nil {
			return "perturb clear"
		}
		return s.Rule.String()
	case OpCheck:
		switch s.Check {
		case CheckReachable, CheckUnreachable:
			return fmt.Sprintf("check %s %s %s", s.Check, s.A, s.B)
		case CheckBaseline:
			return "check baseline"
		case CheckConverged:
			if s.Within > 0 {
				return fmt.Sprintf("check converged within %d", s.Within)
			}
			return "check converged"
		case CheckReservation:
			return fmt.Sprintf("check reservation %s %s", s.A, s.B)
		default:
			return "check"
		}
	}
	return string(s.Op)
}

// Scenario is an ordered fault-injection script.
type Scenario struct {
	Name  string
	Steps []Step
	// Seed drives the control-plane perturbation schedule; Seeded records
	// that the script set one (which also turns on watchdog supervision).
	Seed   uint64
	Seeded bool
}

// ParseScenario reads the line-oriented scenario format:
//
//	# comment
//	name <label>                # optional scenario name
//	budget <rounds>             # BGP budget for subsequent steps
//	seed <n>                    # perturbation seed; enables supervision
//	fail-link A B
//	fail-node N
//	restore-link A B
//	restore-node N
//	fail-host H                 # substrate host failure (host controller)
//	drain-host H                # live-drain a substrate host
//	silence-host H              # host goes silent; lease expiry re-places its VMs
//	flaky-host H <rate>         # scheduled migration-failure rate onto H (0..1)
//	crash-sched                 # kill + recover the durable scheduler
//	flap A B <times>
//	partition N1 [N2 ...]
//	perturb loss <pct> [on A:B] # control-plane rules; see ParsePerturb
//	perturb delay <rounds> [on A:B]
//	perturb flap A:B every <n> [recover]
//	perturb clear               # remove all perturbation rules
//	check                       # observe: warn on drift from baseline
//	check baseline              # assert matrix == pre-scenario baseline
//	check reachable A B
//	check unreachable A B
//	check converged [within <rounds>]
//	check reservation <name> <state>  # active, queued, degraded, preempted
//
// The parser runs in error-recovery mode: a malformed line is recorded as
// an emul.Diagnostic (with its line number and offending token) and
// parsing continues, so one pass reports every problem in the script. The
// scenario is runnable only when the diagnostics carry no errors
// (Diagnostics.HasErrors() == false).
func ParseScenario(r io.Reader) (Scenario, emul.Diagnostics) {
	return ParseScenarioFile(r, "scenario")
}

// ParseScenarioFile parses a scenario, attributing diagnostics to the
// given file name (shown in `file:line: message` reports).
func ParseScenarioFile(r io.Reader, file string) (Scenario, emul.Diagnostics) {
	var sc Scenario
	var diags emul.Diagnostics
	budget := 0
	scan := bufio.NewScanner(r)
	lineno := 0
	for scan.Scan() {
		lineno++
		line := strings.TrimSpace(scan.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op, args := fields[0], fields[1:]
		bad := func(format string, a ...any) {
			diags = append(diags, emul.Diagnostic{
				Severity: emul.SevError, File: file, Line: lineno,
				Message: fmt.Sprintf(format, a...),
			})
		}
		switch op {
		case "name":
			if len(args) == 0 {
				bad("name needs a label")
				continue
			}
			sc.Name = strings.Join(args, " ")
		case "budget":
			// A malformed budget is rejected outright (it must NOT silently
			// become zero — zero means "engine default", which would mask a
			// typo'd bound); subsequent steps keep the previous budget.
			if len(args) != 1 {
				bad("budget needs one integer, got %q", strings.Join(args, " "))
				continue
			}
			n, err := strconv.Atoi(args[0])
			if err != nil || n < 0 {
				bad("bad budget %q", args[0])
				continue
			}
			budget = n
		case "seed":
			if len(args) != 1 {
				bad("seed needs one integer, got %q", strings.Join(args, " "))
				continue
			}
			n, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				bad("bad seed %q", args[0])
				continue
			}
			sc.Seed, sc.Seeded = n, true
		case string(OpPerturb):
			if len(args) == 1 && args[0] == "clear" {
				sc.Steps = append(sc.Steps, Step{Op: OpPerturb, MaxBGPRounds: budget})
				continue
			}
			rule, err := ParsePerturb(strings.Join(args, " "))
			if err != nil {
				bad("%v", err)
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: OpPerturb, Rule: &rule, MaxBGPRounds: budget})
		case string(OpFailLink), string(OpRestoreLink):
			if len(args) != 2 {
				bad("%s needs two machine names, got %q", op, strings.Join(args, " "))
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: Op(op), A: args[0], B: args[1], MaxBGPRounds: budget})
		case string(OpFailNode), string(OpRestoreNode):
			if len(args) != 1 {
				bad("%s needs one machine name, got %q", op, strings.Join(args, " "))
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: Op(op), Node: args[0], MaxBGPRounds: budget})
		case string(OpFailHost), string(OpDrainHost), string(OpSilenceHost):
			if len(args) != 1 {
				bad("%s needs one substrate host name, got %q", op, strings.Join(args, " "))
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: Op(op), Node: args[0], MaxBGPRounds: budget})
		case string(OpFlakyHost):
			if len(args) != 2 {
				bad("flaky-host needs <host> <rate>, got %q", strings.Join(args, " "))
				continue
			}
			rate, err := strconv.ParseFloat(args[1], 64)
			if err != nil || rate < 0 || rate > 1 {
				bad("bad flaky-host rate %q (want 0..1)", args[1])
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: OpFlakyHost, Node: args[0], Rate: rate, MaxBGPRounds: budget})
		case string(OpCrashSched):
			if len(args) != 0 {
				bad("crash-sched takes no arguments, got %q", strings.Join(args, " "))
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: OpCrashSched, MaxBGPRounds: budget})
		case string(OpFlap):
			if len(args) != 3 {
				bad("flap needs A B <times>, got %q", strings.Join(args, " "))
				continue
			}
			n, err := strconv.Atoi(args[2])
			if err != nil || n < 1 {
				bad("bad flap count %q", args[2])
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: OpFlap, A: args[0], B: args[1], Times: n, MaxBGPRounds: budget})
		case string(OpPartition):
			if len(args) == 0 {
				bad("partition needs at least one machine name")
				continue
			}
			sc.Steps = append(sc.Steps, Step{Op: OpPartition, Nodes: args, MaxBGPRounds: budget})
		case string(OpCheck):
			st := Step{Op: OpCheck, Check: CheckObserve, MaxBGPRounds: budget}
			if len(args) > 0 {
				switch CheckMode(args[0]) {
				case CheckBaseline:
					if len(args) != 1 {
						bad("check baseline takes no arguments, got %q", strings.Join(args[1:], " "))
						continue
					}
					st.Check = CheckBaseline
				case CheckReachable, CheckUnreachable:
					if len(args) != 3 {
						bad("check %s needs two machine names, got %q", args[0], strings.Join(args[1:], " "))
						continue
					}
					st.Check = CheckMode(args[0])
					st.A, st.B = args[1], args[2]
				case CheckConverged:
					st.Check = CheckConverged
					switch {
					case len(args) == 1:
					case len(args) == 3 && args[1] == "within":
						n, err := strconv.Atoi(args[2])
						if err != nil || n < 1 {
							bad("bad converged bound %q", args[2])
							continue
						}
						st.Within = n
					default:
						bad("check converged takes [within <rounds>], got %q", strings.Join(args[1:], " "))
						continue
					}
				case CheckReservation:
					if len(args) != 3 {
						bad("check reservation needs <name> <state>, got %q", strings.Join(args[1:], " "))
						continue
					}
					switch args[2] {
					case "active", "queued", "degraded", "preempted":
					default:
						bad("unknown reservation state %q (want active, queued, degraded, or preempted)", args[2])
						continue
					}
					st.Check = CheckReservation
					st.A, st.B = args[1], args[2]
				default:
					bad("unknown check mode %q", args[0])
					continue
				}
			}
			sc.Steps = append(sc.Steps, st)
		default:
			bad("unknown operation %q", op)
		}
	}
	if err := scan.Err(); err != nil {
		diags = append(diags, emul.Diagnostic{
			Severity: emul.SevError, File: file, Message: fmt.Sprintf("reading scenario: %v", err),
		})
	}
	if len(sc.Steps) == 0 && !diags.HasErrors() {
		diags = append(diags, emul.Diagnostic{
			Severity: emul.SevError, File: file, Message: "scenario has no steps",
		})
	}
	return sc, diags
}
