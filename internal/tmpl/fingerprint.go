package tmpl

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
)

// Fingerprint returns a stable content hash of the template's identity:
// its name, its full source text and the sorted names of the helper
// functions currently registered on it. The incremental build cache folds
// fingerprints into render keys, so editing a template (or registering a
// new helper) invalidates exactly the devices rendered through it while a
// re-parse of identical source stays a cache hit.
//
// Function *bodies* are not hashed — Go closures have no canonical form —
// so swapping a helper's implementation under an unchanged name must be
// paired with a rename or a source edit to invalidate. The shipped
// template library never does this at runtime.
func (t *Template) Fingerprint() string {
	h := sha256.New()
	writeFrame(h, t.name)
	writeFrame(h, t.src)
	names := make([]string, 0, len(t.funcs))
	for name := range t.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeFrame(h, name)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeFrame length-prefixes s so adjacent fields cannot collide.
func writeFrame(w io.Writer, s string) {
	var n [4]byte
	for i := 0; i < 4; i++ {
		n[i] = byte(len(s) >> (8 * i))
	}
	w.Write(n[:])
	io.WriteString(w, s)
}
