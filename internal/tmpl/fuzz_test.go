package tmpl

import "testing"

// The template compiler must never panic: any source either parses or
// errors.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"plain text\n",
		"${x}\n",
		"% for x in xs:\n${x}\n% endfor\n",
		"% if a == 1:\nyes\n% endif\n",
		"% if a:\n% elif b:\n% else:\n% endif\n",
		"${'str' + 1}\n",
		"%% escaped\n",
		"## comment\n",
		"${a.b.c[0]('arg')}\n",
		"% for x in",
		"${unclosed",
		"% endfor\n",
		"${x[}\n",
		"${(1+2}\n",
		"${'\\n\\t\\\\'}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		// Executing with an empty context must also never panic.
		_, _ = tpl.Execute(map[string]any{})
	})
}

// Expressions must never panic either.
func FuzzExpr(f *testing.F) {
	seeds := []string{
		"1 + 2", "a.b", "x[0]", "f(1, 'two')", "not a and b or c",
		"1 < 2 <= 3", "'a' in xs", "-x", "((()))", "a..b", "1 ? 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		node, err := parseExpr(src)
		if err != nil {
			return
		}
		s := &scope{funcs: builtinFuncs()}
		s.frames = append(s.frames, map[string]any{})
		_, _ = node.eval(s)
	})
}
