package tmpl

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, src string, ctx map[string]any) string {
	t.Helper()
	tpl, err := Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := tpl.Execute(ctx)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return out
}

func TestPlainText(t *testing.T) {
	got := render(t, "hello\nworld\n", nil)
	if got != "hello\nworld\n" {
		t.Errorf("got %q", got)
	}
}

func TestNoTrailingNewlinePreserved(t *testing.T) {
	if got := render(t, "a\nb", nil); got != "a\nb" {
		t.Errorf("got %q", got)
	}
}

func TestSubstitution(t *testing.T) {
	ctx := map[string]any{"node": map[string]any{"hostname": "as100r1", "asn": 100}}
	got := render(t, "hostname ${node.hostname} in AS${node.asn}\n", ctx)
	if got != "hostname as100r1 in AS100\n" {
		t.Errorf("got %q", got)
	}
}

func TestMissingAttrErrors(t *testing.T) {
	tpl := MustParse("t", "x ${node.missing}\n")
	if _, err := tpl.Execute(map[string]any{"node": map[string]any{}}); err == nil {
		t.Error("missing attribute should be an error (strict mode)")
	}
	if _, err := tpl.Execute(map[string]any{}); err == nil {
		t.Error("undefined name should be an error")
	}
}

func TestForLoop(t *testing.T) {
	ctx := map[string]any{
		"ifaces": []any{
			map[string]any{"id": "eth0", "cost": 1},
			map[string]any{"id": "eth1", "cost": 10},
		},
	}
	src := "% for i in ifaces:\ninterface ${i.id} cost ${i.cost}\n% endfor\n"
	got := render(t, src, ctx)
	want := "interface eth0 cost 1\ninterface eth1 cost 10\n"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestNestedForAndIf(t *testing.T) {
	src := `% for n in nodes:
${n.name}
% for s in n.sessions:
% if s.up:
  neighbor ${s.peer} UP
% else:
  neighbor ${s.peer} DOWN
% endif
% endfor
% endfor
`
	ctx := map[string]any{"nodes": []any{
		map[string]any{"name": "r1", "sessions": []any{
			map[string]any{"peer": "10.0.0.2", "up": true},
			map[string]any{"peer": "10.0.0.3", "up": false},
		}},
	}}
	want := "r1\n  neighbor 10.0.0.2 UP\n  neighbor 10.0.0.3 DOWN\n"
	if got := render(t, src, ctx); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestElif(t *testing.T) {
	src := "% if x == 1:\none\n% elif x == 2:\ntwo\n% else:\nmany\n% endif\n"
	for _, c := range []struct {
		x    int
		want string
	}{{1, "one\n"}, {2, "two\n"}, {3, "many\n"}} {
		if got := render(t, src, map[string]any{"x": c.x}); got != c.want {
			t.Errorf("x=%d got %q", c.x, got)
		}
	}
}

func TestTupleUnpack(t *testing.T) {
	src := "% for k, v in m:\n${k}=${v}\n% endfor\n"
	got := render(t, src, map[string]any{"m": map[string]any{"b": 2, "a": 1}})
	if got != "a=1\nb=2\n" { // sorted key order
		t.Errorf("got %q", got)
	}
}

func TestComments(t *testing.T) {
	got := render(t, "## a comment\nreal line\n", nil)
	if got != "real line\n" {
		t.Errorf("got %q", got)
	}
}

func TestPercentEscape(t *testing.T) {
	got := render(t, "%% not a directive\n", nil)
	if got != "% not a directive\n" {
		t.Errorf("got %q", got)
	}
}

// The paper's §4.1 example template rendered against the §5.4 resource
// database subset must produce the §6.1 configuration.
func TestPaperSection41Template(t *testing.T) {
	src := `hostname ${node.zebra.hostname}
password ${node.zebra.password}
% for interface in node.interfaces:
interface ${interface.id}
  ip ospf cost ${interface.ospf_cost}
% endfor
router ospf
% for link in node.ospf.ospf_links:
  network ${link.network.cidr} area ${link.area}
% endfor
`
	ctx := map[string]any{"node": map[string]any{
		"zebra": map[string]any{"hostname": "as100r1", "password": "1234"},
		"interfaces": []any{
			map[string]any{"id": "eth1", "ospf_cost": 1},
			map[string]any{"id": "eth2", "ospf_cost": 1},
		},
		"ospf": map[string]any{"ospf_links": []any{
			map[string]any{"network": netip.MustParsePrefix("192.168.1.0/30"), "area": 0},
			map[string]any{"network": netip.MustParsePrefix("192.168.1.4/30"), "area": 0},
		}},
	}}
	want := `hostname as100r1
password 1234
interface eth1
  ip ospf cost 1
interface eth2
  ip ospf cost 1
router ospf
  network 192.168.1.0/30 area 0
  network 192.168.1.4/30 area 0
`
	if got := render(t, src, ctx); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrefixAttributes(t *testing.T) {
	p := netip.MustParsePrefix("192.168.1.0/24")
	ctx := map[string]any{"net": p}
	cases := []struct{ expr, want string }{
		{"${net.cidr}", "192.168.1.0/24"},
		{"${net.network}", "192.168.1.0"},
		{"${net.netmask}", "255.255.255.0"},
		{"${net.wildcard}", "0.0.0.255"},
		{"${net.prefixlen}", "24"},
		{"${net.broadcast}", "192.168.1.255"},
	}
	for _, c := range cases {
		if got := render(t, c.expr, ctx); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	if got := render(t, "${a.ip}", map[string]any{"a": netip.MustParseAddr("10.0.0.1")}); got != "10.0.0.1" {
		t.Errorf("addr.ip = %q", got)
	}
}

func TestOperators(t *testing.T) {
	cases := []struct {
		expr string
		ctx  map[string]any
		want string
	}{
		{"${1 + 2 * 3}", nil, "7"},
		{"${(1 + 2) * 3}", nil, "9"},
		{"${10 / 4}", nil, "2"},
		{"${10.0 / 4}", nil, "2.5"},
		{"${7 % 3}", nil, "1"},
		{"${-x}", map[string]any{"x": 5}, "-5"},
		{"${'a' + 'b'}", nil, "ab"},
		{"${1 == 1.0}", nil, "true"},
		{"${1 != 2}", nil, "true"},
		{"${2 < 10}", nil, "true"},
		{"${'abc' < 'abd'}", nil, "true"},
		{"${true and false}", nil, "false"},
		{"${true or false}", nil, "true"},
		{"${not false}", nil, "true"},
		{"${1 in items}", map[string]any{"items": []any{1, 2}}, "true"},
		{"${'x' in 'xyz'}", nil, "true"},
		{"${'k' in m}", map[string]any{"m": map[string]any{"k": 1}}, "true"},
		{"${none}", nil, ""},
		{"${x[1]}", map[string]any{"x": []any{"a", "b"}}, "b"},
		{"${x[-1]}", map[string]any{"x": []any{"a", "b"}}, "b"},
		{"${m['k']}", map[string]any{"m": map[string]any{"k": "v"}}, "v"},
		{"${s[0]}", map[string]any{"s": "hi"}, "h"},
	}
	for _, c := range cases {
		if got := render(t, c.expr, c.ctx); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right side would error (missing attr); short-circuit must avoid it.
	got := render(t, "${false and node.missing}", map[string]any{"node": map[string]any{}})
	if got != "false" {
		t.Errorf("got %q", got)
	}
	got = render(t, "${true or node.missing}", map[string]any{"node": map[string]any{}})
	if got != "true" {
		t.Errorf("got %q", got)
	}
}

func TestBuiltinFuncs(t *testing.T) {
	cases := []struct {
		expr string
		ctx  map[string]any
		want string
	}{
		{"${len(xs)}", map[string]any{"xs": []any{1, 2, 3}}, "3"},
		{"${len('word')}", nil, "4"},
		{"${upper('abc')}", nil, "ABC"},
		{"${lower('ABC')}", nil, "abc"},
		{"${strip('  x ')}", nil, "x"},
		{"${join(xs, ', ')}", map[string]any{"xs": []any{"a", "b"}}, "a, b"},
		{"${str(42)}", nil, "42"},
		{"${replace('a-b', '-', '_')}", nil, "a_b"},
		{"${first(xs)}", map[string]any{"xs": []any{"z", "y"}}, "z"},
		{"${default(x, 'fallback')}", map[string]any{"x": ""}, "fallback"},
		{"${default(x, 'fallback')}", map[string]any{"x": "set"}, "set"},
	}
	for _, c := range cases {
		if got := render(t, c.expr, c.ctx); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	// sorted + enumerate
	src := "% for i, v in enumerate(sorted(xs)):\n${i}:${v}\n% endfor\n"
	got := render(t, src, map[string]any{"xs": []any{"c", "a", "b"}})
	if got != "0:a\n1:b\n2:c\n" {
		t.Errorf("got %q", got)
	}
}

func TestCustomFuncs(t *testing.T) {
	tpl := MustParse("t", "${twice(x)}").Funcs(FuncMap{
		"twice": func(args ...any) (any, error) { return args[0].(int) * 2, nil },
	})
	out, err := tpl.Execute(map[string]any{"x": 21})
	if err != nil || out != "42" {
		t.Errorf("out=%q err=%v", out, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"% for x items:\n% endfor\n",  // missing 'in'
		"% for x in xs:\n",            // unterminated for
		"% if x:\n",                   // unterminated if
		"% endfor\n",                  // stray endfor
		"% frobnicate\n",              // unknown directive
		"${unclosed\n",                // unterminated substitution
		"${a ~ b}\n",                  // bad operator
		"${'unterminated}\n",          // unterminated string
		"% if x:\n% elif:\n% endif\n", // empty elif expression
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExecErrors(t *testing.T) {
	cases := []struct {
		src string
		ctx map[string]any
	}{
		{"${1/0}", nil},
		{"${1%0}", nil},
		{"${x[5]}", map[string]any{"x": []any{}}},
		{"${m['nope']}", map[string]any{"m": map[string]any{}}},
		{"${x < 'str'}", map[string]any{"x": 1}},
		{"${nosuchfn()}", nil},
		{"% for x in 42:\n% endfor\n", nil},
		{"% for a, b in xs:\n% endfor\n", map[string]any{"xs": []any{1}}},
		{"${5 in 42}", nil},
		{"${-'s'}", nil},
		{"${'a' * 'b'}", nil},
	}
	for _, c := range cases {
		tpl, err := Parse("t", c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed early: %v", c.src, err)
			continue
		}
		if _, err := tpl.Execute(c.ctx); err == nil {
			t.Errorf("Execute(%q) should fail", c.src)
		}
	}
}

func TestLoopScopeIsolation(t *testing.T) {
	// Loop variable must not leak into the outer scope.
	tpl := MustParse("t", "% for x in xs:\n${x}\n% endfor\n${x}\n")
	_, err := tpl.Execute(map[string]any{"xs": []any{1}})
	if err == nil {
		t.Error("loop variable leaked out of loop scope")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{nil, ""}, {"s", "s"}, {true, "true"}, {false, "false"},
		{3.0, "3"}, {3.25, "3.25"}, {42, "42"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: rendering is deterministic — same template + context twice
// yields identical output (ablation A3 depends on this).
func TestPropertyDeterministicRender(t *testing.T) {
	tpl := MustParse("t", "% for k, v in m:\n${k} ${v}\n% endfor\n")
	f := func(keys []string) bool {
		m := map[string]any{}
		lines := 0
		for i, k := range keys {
			if _, dup := m[k]; !dup {
				// Keys may themselves contain newlines; account for them
				// in the expected line count.
				lines += 1 + strings.Count(k, "\n")
			}
			m[k] = i
		}
		ctx := map[string]any{"m": m}
		a, err1 := tpl.Execute(ctx)
		b, err2 := tpl.Execute(ctx)
		return err1 == nil && err2 == nil && a == b && strings.Count(a, "\n") == lines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStructReflectionFallback(t *testing.T) {
	type dev struct{ Hostname string }
	got := render(t, "${d.hostname}", map[string]any{"d": dev{Hostname: "r9"}})
	if got != "r9" {
		t.Errorf("got %q", got)
	}
}

type fakeAttributer struct{}

func (fakeAttributer) TemplateAttr(name string) (any, bool) {
	if name == "magic" {
		return 99, true
	}
	return nil, false
}

func TestAttributerInterface(t *testing.T) {
	if got := render(t, "${a.magic}", map[string]any{"a": fakeAttributer{}}); got != "99" {
		t.Errorf("got %q", got)
	}
	tpl := MustParse("t", "${a.other}")
	if _, err := tpl.Execute(map[string]any{"a": fakeAttributer{}}); err == nil {
		t.Error("unknown Attributer attr should fail")
	}
}

func TestStringEscapes(t *testing.T) {
	cases := []struct{ expr, want string }{
		{`${'a\nb'}`, "a\nb"},
		{`${'a\tb'}`, "a\tb"},
		{`${'don\'t'}`, "don't"},
		{`${"say \"hi\""}`, `say "hi"`},
	}
	for _, c := range cases {
		if got := render(t, c.expr, nil); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestTruthiness(t *testing.T) {
	cases := []struct {
		val  any
		want string
	}{
		{nil, "no"}, {false, "no"}, {true, "yes"},
		{"", "no"}, {"x", "yes"},
		{0, "no"}, {3, "yes"},
		{int64(0), "no"}, {int64(1), "yes"},
		{0.0, "no"}, {0.5, "yes"},
		{[]any{}, "no"}, {[]any{1}, "yes"},
		{map[string]any{}, "no"}, {map[string]any{"k": 1}, "yes"},
		{struct{}{}, "yes"}, // unknown types are truthy
	}
	src := "% if v:\nyes\n% else:\nno\n% endif\n"
	for _, c := range cases {
		got := strings.TrimSpace(render(t, src, map[string]any{"v": c.val}))
		if got != c.want {
			t.Errorf("truthy(%#v) = %s, want %s", c.val, got, c.want)
		}
	}
}

func TestNumericCoercions(t *testing.T) {
	cases := []struct {
		expr string
		ctx  map[string]any
		want string
	}{
		{"${a + b}", map[string]any{"a": int64(2), "b": 3}, "5"},
		{"${a + b}", map[string]any{"a": uint32(2), "b": 3}, "5"},
		{"${a + 0.5}", map[string]any{"a": int64(2)}, "2.5"},
		{"${a < b}", map[string]any{"a": int64(1), "b": 2.5}, "true"},
		{"${a >= b}", map[string]any{"a": uint32(7), "b": 7}, "true"},
		{"${-a}", map[string]any{"a": 1.5}, "-1.5"},
		{"${xs[i]}", map[string]any{"xs": []any{"a", "b"}, "i": 1.0}, "b"},
	}
	for _, c := range cases {
		if got := render(t, c.expr, c.ctx); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	// Fractional float index fails.
	tpl := MustParse("t", "${xs[i]}")
	if _, err := tpl.Execute(map[string]any{"xs": []any{"a"}, "i": 0.5}); err == nil {
		t.Error("fractional index accepted")
	}
}

func TestIterateVariants(t *testing.T) {
	src := "% for x in xs:\n${x}\n% endfor\n"
	if got := render(t, src, map[string]any{"xs": []string{"p", "q"}}); got != "p\nq\n" {
		t.Errorf("[]string iterate = %q", got)
	}
	maps := []map[string]any{{"k": 1}, {"k": 2}}
	src2 := "% for m in xs:\n${m.k}\n% endfor\n"
	if got := render(t, src2, map[string]any{"xs": maps}); got != "1\n2\n" {
		t.Errorf("[]map iterate = %q", got)
	}
	// nil iterates as empty.
	if got := render(t, src, map[string]any{"xs": nil}); got != "" {
		t.Errorf("nil iterate = %q", got)
	}
}

func TestCompareErrors(t *testing.T) {
	tpl := MustParse("t", "${a < b}")
	bad := []map[string]any{
		{"a": 1, "b": "s"},
		{"a": "s", "b": 1},
		{"a": true, "b": false},
	}
	for _, ctx := range bad {
		if _, err := tpl.Execute(ctx); err == nil {
			t.Errorf("compare %v accepted", ctx)
		}
	}
}

func TestTemplateName(t *testing.T) {
	if MustParse("zebra.conf", "x").Name() != "zebra.conf" {
		t.Error("Name wrong")
	}
}

func TestMoreBuiltinErrors(t *testing.T) {
	bad := []string{
		"${len(1, 2)}", "${len(42)}",
		"${upper()}", "${join(xs)}", "${join(42, ',')}",
		"${sorted()}", "${sorted(42)}",
		"${str()}", "${replace('a', 'b')}",
		"${enumerate()}", "${enumerate(5)}",
		"${first(xs)}", "${first(9)}", "${default(1)}",
	}
	for _, src := range bad {
		tpl := MustParse("t", src)
		if _, err := tpl.Execute(map[string]any{"xs": []any{}}); err == nil {
			t.Errorf("%s accepted", src)
		}
	}
	// len(nil) is 0 by convention.
	if got := render(t, "${len(x)}", map[string]any{"x": nil}); got != "0" {
		t.Errorf("len(nil) = %q", got)
	}
}

func TestExportedNameEdge(t *testing.T) {
	if exportedName("") != "" {
		t.Error("empty name")
	}
	if exportedName("already") != "Already" {
		t.Error("capitalisation")
	}
}
