// Package tmpl implements the line-oriented, Mako-style template language
// the paper uses for device configuration (§4.1): lines whose first
// non-blank character is '%' carry control logic (for/if), and ${...}
// performs expression substitution. The expression language is deliberately
// small — dotted attribute paths, indexing, comparisons, boolean logic and a
// handful of helper functions — because, as the paper argues, complicated
// transformations belong in the compiler, not the templates.
package tmpl

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp      // operators and punctuation
	tokKeyword // and or not in
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexExpr(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t':
			l.pos++
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
}

var keywords = map[string]bool{"and": true, "or": true, "not": true, "in": true}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind, text, start})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{tokString, sb.String(), start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("tmpl: unterminated string at offset %d in %q", start, l.src)
}

var twoCharOps = map[string]bool{"==": true, "!=": true, "<=": true, ">=": true}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{tokOp, l.src[l.pos : l.pos+2], l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '(', ')', '[', ']', ',', '.', '<', '>':
		l.toks = append(l.toks, token{tokOp, string(c), l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("tmpl: unexpected character %q at offset %d in %q", c, l.pos, l.src)
}

// --- AST ---

type exprNode interface {
	eval(s *scope) (any, error)
}

type litNode struct{ v any }

func (n litNode) eval(*scope) (any, error) { return n.v, nil }

type varNode struct{ name string }

func (n varNode) eval(s *scope) (any, error) {
	if v, ok := s.lookup(n.name); ok {
		return v, nil
	}
	return nil, fmt.Errorf("tmpl: undefined name %q", n.name)
}

type attrNode struct {
	base exprNode
	name string
}

func (n attrNode) eval(s *scope) (any, error) {
	base, err := n.base.eval(s)
	if err != nil {
		return nil, err
	}
	v, ok := attrOf(base, n.name)
	if !ok {
		return nil, fmt.Errorf("tmpl: value %v (%T) has no attribute %q", base, base, n.name)
	}
	return v, nil
}

type indexNode struct {
	base exprNode
	idx  exprNode
}

func (n indexNode) eval(s *scope) (any, error) {
	base, err := n.base.eval(s)
	if err != nil {
		return nil, err
	}
	idx, err := n.idx.eval(s)
	if err != nil {
		return nil, err
	}
	switch b := base.(type) {
	case []any:
		i, ok := toInt(idx)
		if !ok {
			return nil, fmt.Errorf("tmpl: list index %v is not an integer", idx)
		}
		if i < 0 {
			i += len(b)
		}
		if i < 0 || i >= len(b) {
			return nil, fmt.Errorf("tmpl: list index %d out of range (len %d)", i, len(b))
		}
		return b[i], nil
	case map[string]any:
		k := fmt.Sprint(idx)
		v, ok := b[k]
		if !ok {
			return nil, fmt.Errorf("tmpl: map has no key %q", k)
		}
		return v, nil
	case string:
		i, ok := toInt(idx)
		if !ok || i < 0 || i >= len(b) {
			return nil, fmt.Errorf("tmpl: string index %v out of range", idx)
		}
		return string(b[i]), nil
	}
	return nil, fmt.Errorf("tmpl: cannot index %T", base)
}

type callNode struct {
	fn   string
	args []exprNode
}

func (n callNode) eval(s *scope) (any, error) {
	fn, ok := s.fn(n.fn)
	if !ok {
		return nil, fmt.Errorf("tmpl: undefined function %q", n.fn)
	}
	args := make([]any, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(s)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	out, err := fn(args...)
	if err != nil {
		return nil, fmt.Errorf("tmpl: %s(): %w", n.fn, err)
	}
	return out, nil
}

type unaryNode struct {
	op string
	x  exprNode
}

func (n unaryNode) eval(s *scope) (any, error) {
	v, err := n.x.eval(s)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "not":
		return !truthy(v), nil
	case "-":
		if f, ok := toFloat(v); ok {
			if i, ok2 := toInt(v); ok2 && float64(i) == f {
				return -i, nil
			}
			return -f, nil
		}
		return nil, fmt.Errorf("tmpl: cannot negate %T", v)
	}
	return nil, fmt.Errorf("tmpl: unknown unary op %q", n.op)
}

type binaryNode struct {
	op   string
	l, r exprNode
}

func (n binaryNode) eval(s *scope) (any, error) {
	// Short-circuit boolean operators.
	if n.op == "and" || n.op == "or" {
		lv, err := n.l.eval(s)
		if err != nil {
			return nil, err
		}
		if n.op == "and" && !truthy(lv) {
			return false, nil
		}
		if n.op == "or" && truthy(lv) {
			return true, nil
		}
		rv, err := n.r.eval(s)
		if err != nil {
			return nil, err
		}
		return truthy(rv), nil
	}
	lv, err := n.l.eval(s)
	if err != nil {
		return nil, err
	}
	rv, err := n.r.eval(s)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case "==":
		return looseEqual(lv, rv), nil
	case "!=":
		return !looseEqual(lv, rv), nil
	case "<", "<=", ">", ">=":
		return compare(n.op, lv, rv)
	case "in":
		return containsValue(rv, lv)
	case "+", "-", "*", "/", "%":
		return arithmetic(n.op, lv, rv)
	}
	return nil, fmt.Errorf("tmpl: unknown operator %q", n.op)
}

// --- parser (precedence climbing) ---

type parser struct {
	toks []token
	pos  int
	src  string
}

func parseExpr(src string) (exprNode, error) {
	toks, err := lexExpr(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("tmpl: trailing input %q in expression %q", p.cur().text, src)
	}
	return node, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) accept(kind tokKind, text string) bool {
	if p.cur().kind == kind && p.cur().text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseOr() (exprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binaryNode{"or", l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (exprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binaryNode{"and", l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (exprNode, error) {
	if p.accept(tokKeyword, "not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return unaryNode{"not", x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (exprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.cur().kind == tokOp && (p.cur().text == "==" || p.cur().text == "!=" ||
			p.cur().text == "<" || p.cur().text == "<=" || p.cur().text == ">" || p.cur().text == ">="):
			op = p.cur().text
			p.advance()
		case p.cur().kind == tokKeyword && p.cur().text == "in":
			op = "in"
			p.advance()
		default:
			return l, nil
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = binaryNode{op, l, r}
	}
}

func (p *parser) parseAdditive() (exprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = binaryNode{op, l, r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (exprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.cur().text
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binaryNode{op, l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (exprNode, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{"-", x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (exprNode, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "."):
			if p.cur().kind != tokIdent && p.cur().kind != tokKeyword {
				return nil, fmt.Errorf("tmpl: expected attribute name after '.' in %q", p.src)
			}
			base = attrNode{base, p.cur().text}
			p.advance()
		case p.accept(tokOp, "["):
			idx, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(tokOp, "]") {
				return nil, fmt.Errorf("tmpl: expected ']' in %q", p.src)
			}
			base = indexNode{base, idx}
		default:
			return base, nil
		}
	}
}

func (p *parser) parsePrimary() (exprNode, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("tmpl: bad number %q", t.text)
			}
			return litNode{f}, nil
		}
		i, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("tmpl: bad number %q", t.text)
		}
		return litNode{i}, nil
	case tokString:
		p.advance()
		return litNode{t.text}, nil
	case tokIdent:
		p.advance()
		switch t.text {
		case "True", "true":
			return litNode{true}, nil
		case "False", "false":
			return litNode{false}, nil
		case "None", "none", "nil":
			return litNode{nil}, nil
		}
		// Function call?
		if p.accept(tokOp, "(") {
			var args []exprNode
			if !p.accept(tokOp, ")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(tokOp, ")") {
						break
					}
					if !p.accept(tokOp, ",") {
						return nil, fmt.Errorf("tmpl: expected ',' or ')' in call to %s", t.text)
					}
				}
			}
			return callNode{t.text, args}, nil
		}
		return varNode{t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.advance()
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.accept(tokOp, ")") {
				return nil, fmt.Errorf("tmpl: expected ')' in %q", p.src)
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("tmpl: unexpected token %q in expression %q", t.text, p.src)
}

// --- value helpers ---

// Attributer lets arbitrary Go values expose template attributes. The NIDB
// device trees and netip types implement or are adapted to this.
type Attributer interface {
	TemplateAttr(name string) (any, bool)
}

func attrOf(v any, name string) (any, bool) {
	switch x := v.(type) {
	case nil:
		return nil, false
	case Attributer:
		return x.TemplateAttr(name)
	case map[string]any:
		out, ok := x[name]
		return out, ok
	case netip.Prefix:
		switch name {
		case "cidr":
			return x.String(), true
		case "network":
			return x.Masked().Addr().String(), true
		case "netmask":
			return prefixNetmask(x), true
		case "wildcard":
			return prefixWildcard(x), true
		case "prefixlen":
			return x.Bits(), true
		case "broadcast":
			return prefixBroadcast(x), true
		}
	case netip.Addr:
		switch name {
		case "ip", "address":
			return x.String(), true
		}
	}
	// Fall back to reflection over struct fields/methods for convenience.
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if rv.Kind() == reflect.Struct {
		f := rv.FieldByName(exportedName(name))
		if f.IsValid() && f.CanInterface() {
			return f.Interface(), true
		}
	}
	return nil, false
}

// exportedName upper-cases the first ASCII letter so template attribute
// names can address exported struct fields.
func exportedName(name string) string {
	if name == "" {
		return name
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

func prefixNetmask(p netip.Prefix) string {
	var m uint32
	if p.Bits() > 0 {
		m = ^uint32(0) << (32 - p.Bits())
	}
	return netip.AddrFrom4([4]byte{byte(m >> 24), byte(m >> 16), byte(m >> 8), byte(m)}).String()
}

func prefixWildcard(p netip.Prefix) string {
	var m uint32
	if p.Bits() > 0 {
		m = ^uint32(0) << (32 - p.Bits())
	}
	m = ^m
	return netip.AddrFrom4([4]byte{byte(m >> 24), byte(m >> 16), byte(m >> 8), byte(m)}).String()
}

func prefixBroadcast(p netip.Prefix) string {
	b := p.Masked().Addr().As4()
	base := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	size := uint32(1) << (32 - p.Bits())
	v := base + size - 1
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String()
}

func toInt(v any) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		if x == float64(int(x)) {
			return int(x), true
		}
	case uint32:
		return int(x), true
	}
	return 0, false
}

// strictInt accepts only genuinely integral types (not whole floats), so
// that 10.0/4 stays float division while 10/4 is integer division.
func strictInt(v any) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case uint32:
		return int(x), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case uint32:
		return float64(x), true
	}
	return 0, false
}

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case string:
		return x != ""
	case int:
		return x != 0
	case int64:
		return x != 0
	case float64:
		return x != 0
	case []any:
		return len(x) > 0
	case map[string]any:
		return len(x) > 0
	}
	return true
}

func looseEqual(a, b any) bool {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af == bf
		}
	}
	return reflect.DeepEqual(a, b) || fmt.Sprint(a) == fmt.Sprint(b)
}

func compare(op string, a, b any) (any, error) {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			switch op {
			case "<":
				return af < bf, nil
			case "<=":
				return af <= bf, nil
			case ">":
				return af > bf, nil
			case ">=":
				return af >= bf, nil
			}
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		switch op {
		case "<":
			return as < bs, nil
		case "<=":
			return as <= bs, nil
		case ">":
			return as > bs, nil
		case ">=":
			return as >= bs, nil
		}
	}
	return nil, fmt.Errorf("tmpl: cannot compare %T %s %T", a, op, b)
}

func containsValue(container, item any) (any, error) {
	switch c := container.(type) {
	case []any:
		for _, v := range c {
			if looseEqual(v, item) {
				return true, nil
			}
		}
		return false, nil
	case map[string]any:
		_, ok := c[fmt.Sprint(item)]
		return ok, nil
	case string:
		return strings.Contains(c, fmt.Sprint(item)), nil
	}
	return nil, fmt.Errorf("tmpl: 'in' not supported on %T", container)
}

func arithmetic(op string, a, b any) (any, error) {
	if op == "+" {
		if as, ok := a.(string); ok {
			return as + fmt.Sprint(b), nil
		}
	}
	ai, aok := strictInt(a)
	bi, bok := strictInt(b)
	if aok && bok {
		switch op {
		case "+":
			return ai + bi, nil
		case "-":
			return ai - bi, nil
		case "*":
			return ai * bi, nil
		case "/":
			if bi == 0 {
				return nil, fmt.Errorf("tmpl: division by zero")
			}
			return ai / bi, nil
		case "%":
			if bi == 0 {
				return nil, fmt.Errorf("tmpl: modulo by zero")
			}
			return ai % bi, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch op {
		case "+":
			return af + bf, nil
		case "-":
			return af - bf, nil
		case "*":
			return af * bf, nil
		case "/":
			if bf == 0 {
				return nil, fmt.Errorf("tmpl: division by zero")
			}
			return af / bf, nil
		}
	}
	return nil, fmt.Errorf("tmpl: cannot apply %q to %T and %T", op, a, b)
}

// iterate returns the elements of a value for '% for' loops, in
// deterministic order for maps (sorted keys, yielding [key, value] pairs).
func iterate(v any) ([]any, error) {
	switch x := v.(type) {
	case []any:
		return x, nil
	case []string:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out, nil
	case []map[string]any:
		out := make([]any, len(x))
		for i, m := range x {
			out[i] = m
		}
		return out, nil
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]any, len(keys))
		for i, k := range keys {
			out[i] = []any{k, x[k]}
		}
		return out, nil
	case nil:
		return nil, nil
	}
	return nil, fmt.Errorf("tmpl: cannot iterate over %T", v)
}
