package tmpl

import (
	"fmt"
	"sort"
	"strings"
)

// Template is a parsed template ready for repeated execution.
type Template struct {
	name  string
	src   string
	root  []stmtNode
	funcs FuncMap
}

// FuncMap maps helper-function names callable from expressions.
type FuncMap map[string]func(args ...any) (any, error)

// scope resolves names during execution: a chain of local frames over the
// context map, plus the function table.
type scope struct {
	frames []map[string]any
	funcs  FuncMap
}

func (s *scope) lookup(name string) (any, bool) {
	for i := len(s.frames) - 1; i >= 0; i-- {
		if v, ok := s.frames[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) fn(name string) (func(args ...any) (any, error), bool) {
	f, ok := s.funcs[name]
	return f, ok
}

func (s *scope) push() { s.frames = append(s.frames, map[string]any{}) }
func (s *scope) pop()  { s.frames = s.frames[:len(s.frames)-1] }
func (s *scope) set(name string, v any) {
	s.frames[len(s.frames)-1][name] = v
}

// --- statement nodes ---

type stmtNode interface {
	exec(sb *strings.Builder, s *scope) error
}

// textNode is one output line: literal segments interleaved with ${expr}
// substitutions, terminated by a newline unless final of a trailing-newline-
// free source.
type textNode struct {
	segs    []segment
	newline bool
	line    int
}

type segment struct {
	literal string
	expr    exprNode // nil for literal segments
	src     string
}

func (t textNode) exec(sb *strings.Builder, s *scope) error {
	for _, seg := range t.segs {
		if seg.expr == nil {
			sb.WriteString(seg.literal)
			continue
		}
		v, err := seg.expr.eval(s)
		if err != nil {
			return fmt.Errorf("line %d: ${%s}: %w", t.line, seg.src, err)
		}
		sb.WriteString(formatValue(v))
	}
	if t.newline {
		sb.WriteByte('\n')
	}
	return nil
}

type forNode struct {
	vars []string
	expr exprNode
	src  string
	body []stmtNode
	line int
}

func (f forNode) exec(sb *strings.Builder, s *scope) error {
	v, err := f.expr.eval(s)
	if err != nil {
		return fmt.Errorf("line %d: %% for ... in %s: %w", f.line, f.src, err)
	}
	items, err := iterate(v)
	if err != nil {
		return fmt.Errorf("line %d: %w", f.line, err)
	}
	s.push()
	defer s.pop()
	for _, item := range items {
		if len(f.vars) == 1 {
			s.set(f.vars[0], item)
		} else {
			tuple, ok := item.([]any)
			if !ok || len(tuple) != len(f.vars) {
				return fmt.Errorf("line %d: cannot unpack %v into %d variables", f.line, item, len(f.vars))
			}
			for i, name := range f.vars {
				s.set(name, tuple[i])
			}
		}
		for _, st := range f.body {
			if err := st.exec(sb, s); err != nil {
				return err
			}
		}
	}
	return nil
}

type ifNode struct {
	branches []ifBranch
	line     int
}

type ifBranch struct {
	cond exprNode // nil for else
	src  string
	body []stmtNode
}

func (n ifNode) exec(sb *strings.Builder, s *scope) error {
	for _, br := range n.branches {
		take := true
		if br.cond != nil {
			v, err := br.cond.eval(s)
			if err != nil {
				return fmt.Errorf("line %d: %% if %s: %w", n.line, br.src, err)
			}
			take = truthy(v)
		}
		if take {
			s.push()
			defer s.pop()
			for _, st := range br.body {
				if err := st.exec(sb, s); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return nil
}

// --- template parsing ---

// Parse compiles template source. Control lines start (after optional
// indentation) with '%'; '##' lines are comments; everything else is output
// with ${...} substitution.
func Parse(name, src string) (*Template, error) {
	t := &Template{name: name, src: src, funcs: builtinFuncs()}
	lines := strings.Split(src, "\n")
	trailingNewline := strings.HasSuffix(src, "\n")
	if trailingNewline {
		lines = lines[:len(lines)-1]
	}
	p := &tmplParser{lines: lines, trailing: trailingNewline, name: name}
	root, err := p.parseBlock(nil)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("tmpl %s: line %d: unexpected %q outside any block", name, p.pos+1, strings.TrimSpace(p.lines[p.pos]))
	}
	t.root = root
	return t, nil
}

// MustParse is Parse panicking on error, for the embedded template library.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the template's name.
func (t *Template) Name() string { return t.name }

// Funcs registers additional helper functions, overriding builtins on
// collision. It returns t for chaining.
func (t *Template) Funcs(fm FuncMap) *Template {
	for k, v := range fm {
		t.funcs[k] = v
	}
	return t
}

// Execute renders the template with the given context.
func (t *Template) Execute(ctx map[string]any) (string, error) {
	s := &scope{funcs: t.funcs}
	s.frames = append(s.frames, ctx)
	s.push()
	var sb strings.Builder
	for _, st := range t.root {
		if err := st.exec(&sb, s); err != nil {
			return "", fmt.Errorf("tmpl %s: %w", t.name, err)
		}
	}
	return sb.String(), nil
}

type tmplParser struct {
	lines    []string
	pos      int
	trailing bool
	name     string
}

// parseBlock parses statements until one of the terminator directives is
// seen (which is left un-consumed) or input ends. terminators==nil means
// parse to EOF.
func (p *tmplParser) parseBlock(terminators []string) ([]stmtNode, error) {
	var out []stmtNode
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "##") {
			p.pos++
			continue
		}
		if strings.HasPrefix(trimmed, "%") && !strings.HasPrefix(trimmed, "%%") {
			directive := strings.TrimSpace(trimmed[1:])
			word := firstWord(directive)
			for _, term := range terminators {
				if word == term {
					return out, nil
				}
			}
			switch word {
			case "for":
				node, err := p.parseFor(directive)
				if err != nil {
					return nil, err
				}
				out = append(out, node)
			case "if":
				node, err := p.parseIf(directive)
				if err != nil {
					return nil, err
				}
				out = append(out, node)
			default:
				return nil, fmt.Errorf("tmpl %s: line %d: unknown directive %q", p.name, p.pos+1, directive)
			}
			continue
		}
		node, err := p.parseTextLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, node)
		p.pos++
	}
	if terminators != nil {
		return nil, fmt.Errorf("tmpl %s: unexpected end of template, expected %% %s", p.name, strings.Join(terminators, " / "))
	}
	return out, nil
}

func firstWord(s string) string {
	if i := strings.IndexAny(s, " \t:"); i >= 0 {
		return s[:i]
	}
	return s
}

func (p *tmplParser) parseFor(directive string) (stmtNode, error) {
	lineNo := p.pos + 1
	body := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(directive, "for")), ":")
	idx := strings.Index(body, " in ")
	if idx < 0 {
		return nil, fmt.Errorf("tmpl %s: line %d: malformed for loop %q", p.name, lineNo, directive)
	}
	varPart := strings.TrimSpace(body[:idx])
	exprPart := strings.TrimSpace(body[idx+4:])
	var vars []string
	for _, v := range strings.Split(varPart, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			return nil, fmt.Errorf("tmpl %s: line %d: empty loop variable in %q", p.name, lineNo, directive)
		}
		vars = append(vars, v)
	}
	expr, err := parseExpr(exprPart)
	if err != nil {
		return nil, fmt.Errorf("tmpl %s: line %d: %w", p.name, lineNo, err)
	}
	p.pos++ // consume '% for'
	bodyNodes, err := p.parseBlock([]string{"endfor"})
	if err != nil {
		return nil, err
	}
	p.pos++ // consume '% endfor'
	return forNode{vars: vars, expr: expr, src: exprPart, body: bodyNodes, line: lineNo}, nil
}

func (p *tmplParser) parseIf(directive string) (stmtNode, error) {
	lineNo := p.pos + 1
	node := ifNode{line: lineNo}
	cond := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(directive, "if")), ":")
	expr, err := parseExpr(cond)
	if err != nil {
		return nil, fmt.Errorf("tmpl %s: line %d: %w", p.name, lineNo, err)
	}
	p.pos++
	body, err := p.parseBlock([]string{"endif", "elif", "else"})
	if err != nil {
		return nil, err
	}
	node.branches = append(node.branches, ifBranch{cond: expr, src: cond, body: body})
	for {
		directive := strings.TrimSpace(strings.TrimSpace(p.lines[p.pos])[1:])
		word := firstWord(directive)
		switch word {
		case "endif":
			p.pos++
			return node, nil
		case "elif":
			cond := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(directive, "elif")), ":")
			expr, err := parseExpr(cond)
			if err != nil {
				return nil, fmt.Errorf("tmpl %s: line %d: %w", p.name, p.pos+1, err)
			}
			p.pos++
			body, err := p.parseBlock([]string{"endif", "elif", "else"})
			if err != nil {
				return nil, err
			}
			node.branches = append(node.branches, ifBranch{cond: expr, src: cond, body: body})
		case "else":
			p.pos++
			body, err := p.parseBlock([]string{"endif"})
			if err != nil {
				return nil, err
			}
			node.branches = append(node.branches, ifBranch{cond: nil, body: body})
		default:
			return nil, fmt.Errorf("tmpl %s: line %d: unexpected directive %q in if block", p.name, p.pos+1, directive)
		}
	}
}

func (p *tmplParser) parseTextLine(line string) (stmtNode, error) {
	lineNo := p.pos + 1
	// '%%' at line start escapes a literal '%'.
	trimmed := strings.TrimLeft(line, " \t")
	if strings.HasPrefix(trimmed, "%%") {
		indent := line[:len(line)-len(trimmed)]
		line = indent + trimmed[1:]
	}
	node := textNode{line: lineNo, newline: true}
	if p.pos == len(p.lines)-1 && !p.trailing {
		node.newline = false
	}
	rest := line
	for {
		idx := strings.Index(rest, "${")
		if idx < 0 {
			if rest != "" {
				node.segs = append(node.segs, segment{literal: rest})
			}
			break
		}
		if idx > 0 {
			node.segs = append(node.segs, segment{literal: rest[:idx]})
		}
		end := strings.Index(rest[idx:], "}")
		if end < 0 {
			return textNode{}, fmt.Errorf("tmpl %s: line %d: unterminated ${ in %q", p.name, lineNo, line)
		}
		src := rest[idx+2 : idx+end]
		expr, err := parseExpr(src)
		if err != nil {
			return textNode{}, fmt.Errorf("tmpl %s: line %d: %w", p.name, lineNo, err)
		}
		node.segs = append(node.segs, segment{expr: expr, src: src})
		rest = rest[idx+end+1:]
	}
	return node, nil
}

// formatValue renders a value into output text.
func formatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	}
	return fmt.Sprint(v)
}

// builtinFuncs returns the default helper table.
func builtinFuncs() FuncMap {
	return FuncMap{
		"len": func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			switch x := args[0].(type) {
			case string:
				return len(x), nil
			case []any:
				return len(x), nil
			case map[string]any:
				return len(x), nil
			case nil:
				return 0, nil
			}
			return nil, fmt.Errorf("len of %T", args[0])
		},
		"upper": stringFn(strings.ToUpper),
		"lower": stringFn(strings.ToLower),
		"strip": stringFn(strings.TrimSpace),
		"join": func(args ...any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("want 2 args")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			sep := fmt.Sprint(args[1])
			parts := make([]string, len(items))
			for i, it := range items {
				parts[i] = formatValue(it)
			}
			return strings.Join(parts, sep), nil
		},
		"sorted": func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			out := make([]any, len(items))
			copy(out, items)
			sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
			return out, nil
		},
		"str": func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			return formatValue(args[0]), nil
		},
		"replace": func(args ...any) (any, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("want 3 args")
			}
			return strings.ReplaceAll(fmt.Sprint(args[0]), fmt.Sprint(args[1]), fmt.Sprint(args[2])), nil
		},
		"enumerate": func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			out := make([]any, len(items))
			for i, it := range items {
				out[i] = []any{i, it}
			}
			return out, nil
		},
		"first": func(args ...any) (any, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("want 1 arg")
			}
			items, err := iterate(args[0])
			if err != nil {
				return nil, err
			}
			if len(items) == 0 {
				return nil, fmt.Errorf("first of empty sequence")
			}
			return items[0], nil
		},
		"default": func(args ...any) (any, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("want 2 args")
			}
			if truthy(args[0]) {
				return args[0], nil
			}
			return args[1], nil
		},
	}
}

func stringFn(f func(string) string) func(args ...any) (any, error) {
	return func(args ...any) (any, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("want 1 arg")
		}
		return f(fmt.Sprint(args[0])), nil
	}
}
