package tmpl

import "testing"

func TestFingerprintStableAcrossReparse(t *testing.T) {
	const src = "hostname ${node.hostname}\n"
	a := MustParse("fp/test", src)
	b := MustParse("fp/test", src)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("re-parsing identical source changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := MustParse("fp/test", "line one\n").Fingerprint()
	if MustParse("fp/test", "line two\n").Fingerprint() == base {
		t.Error("source edit not reflected")
	}
	if MustParse("fp/other", "line one\n").Fingerprint() == base {
		t.Error("template rename not reflected")
	}
	withFn := MustParse("fp/test", "line one\n").Funcs(FuncMap{
		"custom": func(args ...any) (any, error) { return nil, nil },
	})
	if withFn.Fingerprint() == base {
		t.Error("registering a helper function not reflected")
	}
}
