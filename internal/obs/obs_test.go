package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock makes span durations deterministic: every read advances 1ms.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestSpanNesting(t *testing.T) {
	c := NewCollector()
	c.now = fakeClock()
	root := c.StartSpan("Compile")
	child := c.StartSpan("devices")
	child.End()
	root.End()
	other := c.StartSpan("Render")
	other.End()

	st := c.Snapshot()
	if len(st.Spans) != 2 {
		t.Fatalf("roots = %d, want 2", len(st.Spans))
	}
	compile, ok := st.Span("Compile")
	if !ok || len(compile.Children) != 1 || compile.Children[0].Name != "devices" {
		t.Fatalf("Compile span tree wrong: %+v", compile)
	}
	if compile.Duration <= 0 || compile.Children[0].Duration <= 0 {
		t.Errorf("durations not recorded: %+v", compile)
	}
	if compile.Running {
		t.Error("ended span reported running")
	}
}

func TestEndClosesOpenDescendants(t *testing.T) {
	c := NewCollector()
	c.now = fakeClock()
	root := c.StartSpan("stage")
	c.StartSpan("leaked") // never explicitly ended
	root.End()
	st := c.Snapshot()
	s, _ := st.Span("stage")
	if len(s.Children) != 1 || s.Children[0].Running {
		t.Fatalf("descendant not closed by parent End: %+v", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(CounterDevicesCompiled, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Counter(CounterDevicesCompiled); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	s := c.StartSpan("x")
	s.End()
	c.Add("n", 1)
	if c.Counter("n") != 0 {
		t.Error("nil counter non-zero")
	}
	st := c.Snapshot()
	if len(st.Spans) != 0 {
		t.Error("nil snapshot has spans")
	}
	var sb strings.Builder
	if err := c.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTrace(t *testing.T) {
	c := NewCollector()
	c.now = fakeClock()
	s := c.StartSpan("Render")
	ch := c.StartSpan("devices")
	ch.End()
	s.End()
	c.Add(CounterFilesRendered, 42)
	out := c.Snapshot().String()
	for _, want := range []string{"pipeline trace:", "Render", "devices", "counters:", "files_rendered", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
