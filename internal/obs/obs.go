// Package obs instruments the configuration pipeline: named, nestable
// timing spans for each stage (Design → Allocate → Compile → Render →
// Deploy) plus monotonic counters for the work the stages perform (devices
// compiled, templates executed, files rendered, bytes written). The paper's
// §3.2 scale experiment reports exactly these quantities; collecting them
// in-process lets every run regenerate that table and lets future
// optimisation PRs prove their wins against a recorded baseline.
//
// All methods are safe on a nil *Collector / nil *Span, so instrumented
// code never needs a guard: an un-instrumented run simply passes nil and
// pays only a nil check. All methods are also safe for concurrent use —
// worker pools bump counters from many goroutines.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Standard counter names reported by the pipeline. User code may add its
// own names freely; these are the ones the built-in stages maintain.
const (
	CounterDevicesCompiled   = "devices_compiled"
	CounterFilesRendered     = "files_rendered"
	CounterTemplatesExecuted = "templates_executed"
	CounterBytesWritten      = "bytes_written"
	CounterLabsFinalized     = "labs_finalized"
	// CounterDevicesQuarantined counts devices excluded from a lenient
	// boot because their configurations carried error diagnostics.
	CounterDevicesQuarantined = "devices_quarantined"

	// Incremental-build cache counters. The aggregate pair sums both
	// pipeline stages; the per-stage pairs let tests assert exactly which
	// devices recompiled vs re-rendered after an edit.
	CounterCacheHits          = "cache_hits"
	CounterCacheMisses        = "cache_misses"
	CounterCacheBytes         = "cache_bytes"
	CounterCompileCacheHits   = "compile_cache_hits"
	CounterCompileCacheMisses = "compile_cache_misses"
	CounterRenderCacheHits    = "render_cache_hits"
	CounterRenderCacheMisses  = "render_cache_misses"

	// Convergence-watchdog counters: one per rung of the supervision
	// escalation ladder (observe → bigger budget → soft reset → quarantine),
	// plus runs and recoveries, so the full ladder a lab climbed is readable
	// from Network.Stats().
	CounterWatchdogRuns              = "watchdog_runs"
	CounterWatchdogRecovered         = "watchdog_recovered"
	CounterWatchdogBudgetEscalations = "watchdog_budget_escalations"
	CounterWatchdogSoftResets        = "watchdog_soft_resets"
	CounterWatchdogQuarantines       = "watchdog_quarantines"

	// Incremental-convergence counters (delta SPF + BGP trajectory replay +
	// data-plane node reuse). Emitted by the lab's converge loop when a boot
	// opted into incremental mode; all zero under full recompute.
	CounterSPFDeltaRecomputes  = "spf_delta_recomputes"
	CounterSPFSourcesSkipped   = "spf_sources_skipped"
	CounterBGPDirtyPrefixes    = "bgp_dirty_prefixes"
	CounterBGPSpeakersRestored = "bgp_speakers_restored"
	CounterRoundsSkipped       = "rounds_skipped"
	CounterFIBNodesReused      = "fib_nodes_reused"

	// Sharded-convergence counters (internal/routing/shard.go): the number
	// of structural per-AS shards in the converged topology, rounds
	// evaluated by the parallel wavefront driver, and advertisements
	// delivered across shard boundaries (eBGP sessions). All zero when the
	// sequential sweep ran (shards knob <= 1).
	CounterBGPShards           = "bgp_shards"
	CounterShardRoundsParallel = "shard_rounds_parallel"
	CounterCrossShardAdverts   = "cross_shard_adverts"

	// Cluster-scheduler counters (internal/sched): cordon/drain lifecycle,
	// fair-share queueing, and live re-placement. drain_duration accumulates
	// milliseconds across drains.
	CounterHostCordoned       = "host_cordoned"
	CounterVMsReplaced        = "vms_replaced"
	CounterReservationsQueued = "reservations_queued"
	CounterDrainDuration      = "drain_duration"
	CounterHostsUnhealthy     = "hosts_unhealthy"

	// Liveness + preemption counters (internal/sched leases, retry
	// circuit breakers): lease state transitions, reservations evicted to
	// make room for higher-weight work, and retry attempts short-circuited
	// by an open per-host breaker.
	CounterLeasesSuspected      = "leases_suspected"
	CounterLeasesExpired        = "leases_expired"
	CounterLeasesRenewed        = "leases_renewed"
	CounterPreemptions          = "reservations_preempted"
	CounterBreakerOpened        = "breaker_opened"
	CounterBreakerShortCircuits = "breaker_short_circuits"

	// Durable-state counters (internal/journal + sched.Open): records
	// appended, snapshot compactions, recoveries performed, torn wal tails
	// truncated during recovery, and records replayed into a cluster.
	CounterJournalAppends        = "journal_appends"
	CounterJournalSnapshots      = "journal_snapshots"
	CounterJournalRecoveries     = "journal_recoveries"
	CounterJournalTruncatedTails = "journal_truncated_tails"
	CounterJournalReplayed       = "journal_replayed_records"
)

// Collector accumulates spans and counters for one pipeline run.
type Collector struct {
	mu       sync.Mutex
	roots    []*Span
	open     []*Span // innermost-last stack of un-ended spans
	counters map[string]int64
	now      func() time.Time // test seam; defaults to time.Now
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{counters: map[string]int64{}, now: time.Now}
}

// Span is one timed region of the pipeline. Spans started while another
// span is open nest under it, forming the trace tree that WriteTrace
// prints.
type Span struct {
	c        *Collector
	name     string
	start    time.Time
	duration time.Duration
	ended    bool
	children []*Span
}

// StartSpan opens a named span. If another span is currently open, the new
// span becomes its child; otherwise it is a root. Close it with End.
func (c *Collector) StartSpan(name string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Span{c: c, name: name, start: c.now()}
	if n := len(c.open); n > 0 {
		parent := c.open[n-1]
		parent.children = append(parent.children, s)
	} else {
		c.roots = append(c.roots, s)
	}
	c.open = append(c.open, s)
	return s
}

// End closes the span, fixing its duration. Ending a span also ends any
// still-open descendants (mis-nested instrumentation degrades gracefully
// instead of corrupting the tree).
func (s *Span) End() {
	if s == nil || s.c == nil {
		return
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.ended {
		return
	}
	end := c.now()
	// Pop the open stack down to (and including) this span, closing any
	// unclosed children on the way.
	for i := len(c.open) - 1; i >= 0; i-- {
		sp := c.open[i]
		if !sp.ended {
			sp.ended = true
			sp.duration = end.Sub(sp.start)
		}
		if sp == s {
			c.open = c.open[:i]
			return
		}
	}
	// Span was not on the stack (already popped by an ancestor's End); its
	// duration was fixed above.
}

// Add increments a named counter by delta.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Counter returns the current value of a named counter.
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// SpanStat is one node of a snapshot's span tree.
type SpanStat struct {
	Name     string
	Duration time.Duration
	Running  bool // true when the span had not ended at snapshot time
	Children []SpanStat
}

// Stats is an immutable snapshot of a collector.
type Stats struct {
	Spans    []SpanStat
	Counters map[string]int64
}

// Snapshot returns a copy of the collector's state. Still-open spans are
// reported with their duration so far and Running=true.
func (c *Collector) Snapshot() Stats {
	if c == nil {
		return Stats{Counters: map[string]int64{}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	st := Stats{Counters: make(map[string]int64, len(c.counters))}
	for k, v := range c.counters {
		st.Counters[k] = v
	}
	for _, s := range c.roots {
		st.Spans = append(st.Spans, snapshotSpan(s, now))
	}
	return st
}

func snapshotSpan(s *Span, now time.Time) SpanStat {
	out := SpanStat{Name: s.name, Duration: s.duration, Running: !s.ended}
	if !s.ended {
		out.Duration = now.Sub(s.start)
	}
	for _, ch := range s.children {
		out.Children = append(out.Children, snapshotSpan(ch, now))
	}
	return out
}

// Span returns the snapshot's span stat with the given root name, if any.
func (st Stats) Span(name string) (SpanStat, bool) {
	for _, s := range st.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanStat{}, false
}

// WriteTrace prints the snapshot as a human-readable trace: the span tree
// with durations, then the counters in sorted order. This is the output of
// `ankbuild -trace`.
func (st Stats) WriteTrace(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "pipeline trace:"); err != nil {
		return err
	}
	var walk func(s SpanStat, depth int) error
	walk = func(s SpanStat, depth int) error {
		suffix := ""
		if s.Running {
			suffix = " (running)"
		}
		pad := strings.Repeat("  ", depth+1)
		if _, err := fmt.Fprintf(w, "%s%-*s %10s%s\n", pad, 24-2*depth, s.Name, s.Duration.Round(time.Microsecond), suffix); err != nil {
			return err
		}
		for _, ch := range s.Children {
			if err := walk(ch, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range st.Spans {
		if err := walk(s, 0); err != nil {
			return err
		}
	}
	if len(st.Counters) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "counters:"); err != nil {
		return err
	}
	names := make([]string, 0, len(st.Counters))
	for k := range st.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "  %-24s %d\n", k, st.Counters[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrace snapshots the collector and prints it; see Stats.WriteTrace.
func (c *Collector) WriteTrace(w io.Writer) error { return c.Snapshot().WriteTrace(w) }

// String renders the trace to a string, for logs and tests.
func (st Stats) String() string {
	var sb strings.Builder
	_ = st.WriteTrace(&sb)
	return sb.String()
}
