package rpki

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/netaddr"
)

func hierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy("rir", netaddr.MustPrefix("10.0.0.0/8"), netaddr.MustPrefix("192.168.0.0/16"))
	if _, err := h.AddCA("as1", "rir", netaddr.MustPrefix("10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddCA("as2", "rir", netaddr.MustPrefix("10.2.0.0/16")); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCAHierarchy(t *testing.T) {
	h := hierarchy(t)
	if len(h.CAs()) != 3 {
		t.Errorf("CAs = %v", h.CAs())
	}
	for _, name := range h.CAs() {
		if err := h.VerifyChain(name); err != nil {
			t.Errorf("chain %s: %v", name, err)
		}
	}
	// Child of child.
	if _, err := h.AddCA("customer", "as1", netaddr.MustPrefix("10.1.5.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyChain("customer"); err != nil {
		t.Error(err)
	}
}

func TestResourceContainmentEnforced(t *testing.T) {
	h := hierarchy(t)
	if _, err := h.AddCA("rogue", "as1", netaddr.MustPrefix("10.2.0.0/16")); err == nil {
		t.Error("out-of-resources CA accepted")
	}
	if _, err := h.AddCA("dup", "ghost", netaddr.MustPrefix("10.1.0.0/24")); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := h.AddCA("as1", "rir"); err == nil {
		t.Error("duplicate CA accepted")
	}
}

func TestSignAndVerifyROA(t *testing.T) {
	h := hierarchy(t)
	roa, err := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.VerifyROA(roa); err != nil {
		t.Errorf("valid ROA rejected: %v", err)
	}
	// Tampered ROA fails.
	bad := roa
	bad.ASN = 666
	if err := h.VerifyROA(bad); err == nil {
		t.Error("tampered ROA verified")
	}
	// Out-of-resources signing rejected.
	if _, err := h.SignROA("as1", netaddr.MustPrefix("10.2.0.0/16"), 24, 1); err == nil {
		t.Error("out-of-resources ROA signed")
	}
	if _, err := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 8, 1); err == nil {
		t.Error("maxLength shorter than prefix accepted")
	}
	if _, err := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 0); err == nil {
		t.Error("zero ASN accepted")
	}
	if _, err := h.SignROA("ghost", netaddr.MustPrefix("10.1.0.0/16"), 24, 1); err == nil {
		t.Error("unknown CA signed")
	}
}

func TestValidateOrigin(t *testing.T) {
	h := hierarchy(t)
	roa, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 20, 1)
	roas := []ROA{roa}
	cases := []struct {
		prefix string
		asn    int
		want   Validity
	}{
		{"10.1.0.0/16", 1, Valid},
		{"10.1.16.0/20", 1, Valid},   // within maxLength
		{"10.1.0.0/24", 1, Invalid},  // too specific
		{"10.1.0.0/16", 2, Invalid},  // wrong origin (hijack)
		{"10.9.0.0/16", 7, NotFound}, // uncovered
	}
	for _, c := range cases {
		got := ValidateOrigin(roas, netaddr.MustPrefix(c.prefix), c.asn)
		if got != c.want {
			t.Errorf("ValidateOrigin(%s, AS%d) = %s, want %s", c.prefix, c.asn, got, c.want)
		}
	}
}

func TestValidWinsOverInvalidROA(t *testing.T) {
	// Two ROAs cover the prefix, one matching: Valid per RFC 6811.
	h := hierarchy(t)
	r1, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 16, 1)
	r2, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 16, 9)
	got := ValidateOrigin([]ROA{r1, r2}, netaddr.MustPrefix("10.1.0.0/16"), 9)
	if got != Valid {
		t.Errorf("got %s, want valid (any matching ROA suffices)", got)
	}
}

func TestDistributionPropagation(t *testing.T) {
	h := hierarchy(t)
	roa1, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 1)
	roa2, _ := h.SignROA("as2", netaddr.MustPrefix("10.2.0.0/16"), 24, 2)
	d := NewDistribution(h)
	p1, err := d.AddPublicationPoint("pp1")
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := d.AddPublicationPoint("pp2")
	p1.Publish(roa1)
	p2.Publish(roa2)
	// Two-level cache hierarchy: top fetches from points, leaves from top.
	if _, err := d.AddCache("top", "", "pp1", "pp2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddCache("leaf1", "top"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddCache("leaf2", "top"); err != nil {
		t.Fatal(err)
	}
	rounds, err := d.Propagate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatal("propagation incomplete")
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
	leaf, _ := d.Cache("leaf1")
	if len(leaf.Held()) != 2 {
		t.Errorf("leaf holds %d objects", len(leaf.Held()))
	}
}

func TestPropagationDropsTamperedObjects(t *testing.T) {
	h := hierarchy(t)
	roa, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 1)
	evil := roa
	evil.ASN = 666 // forged origin, stale signature
	d := NewDistribution(h)
	p, _ := d.AddPublicationPoint("pp")
	p.Publish(roa)
	p.Publish(evil)
	if _, err := d.AddCache("c", "", "pp"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Propagate(0); err != nil {
		t.Fatal(err)
	}
	c, _ := d.Cache("c")
	held := c.Held()
	if len(held) != 1 || held[0].ASN != 1 {
		t.Errorf("cache held %v, want only the genuine ROA", held)
	}
}

func TestDistributionErrors(t *testing.T) {
	h := hierarchy(t)
	d := NewDistribution(h)
	if _, err := d.AddCache("orphan", ""); err == nil {
		t.Error("sourceless cache accepted")
	}
	if _, err := d.AddCache("c", "ghost-parent"); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := d.AddCache("c", "", "ghost-point"); err == nil {
		t.Error("unknown point accepted")
	}
	if _, err := d.AddPublicationPoint("pp"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPublicationPoint("pp"); err == nil {
		t.Error("duplicate point accepted")
	}
	if _, err := d.AddCache("c", "", "pp"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddCache("c", "", "pp"); err == nil {
		t.Error("duplicate cache accepted")
	}
}

// Deep chains propagate one level per round — the propagation-depth
// behaviour the RPKI emulation study measures.
func TestPropagationDepthScalesWithChain(t *testing.T) {
	h := hierarchy(t)
	roa, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 1)
	d := NewDistribution(h)
	p, _ := d.AddPublicationPoint("pp")
	p.Publish(roa)
	const depth = 5
	prev := ""
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("c%d", i)
		var err error
		if i == 0 {
			_, err = d.AddCache(name, "", "pp")
		} else {
			_, err = d.AddCache(name, prev)
		}
		if err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	rounds, err := d.Propagate(0)
	if err != nil {
		t.Fatal(err)
	}
	// In-order sweeps move objects down the whole chain in one round when
	// caches are visited parent-first; our insertion order is parent-first,
	// so everything lands in one round — but the count must be exact and
	// the tail cache complete.
	tail, _ := d.Cache(prev)
	if len(tail.Held()) != 1 {
		t.Errorf("tail cache incomplete after %d rounds", rounds)
	}
	if !d.Complete() {
		t.Error("distribution incomplete")
	}
}

func TestConfigFiles(t *testing.T) {
	h := hierarchy(t)
	roa, _ := h.SignROA("as1", netaddr.MustPrefix("10.1.0.0/16"), 24, 1)
	d := NewDistribution(h)
	p, _ := d.AddPublicationPoint("pp1")
	p.Publish(roa)
	if _, err := d.AddCache("cache1", "", "pp1"); err != nil {
		t.Fatal(err)
	}
	files := d.ConfigFiles()
	if len(files) != 3+1+1 {
		t.Fatalf("files = %d: %v", len(files), files)
	}
	ca := files["ca/as1.conf"]
	if !strings.Contains(ca, "parent rir") || !strings.Contains(ca, "resource 10.1.0.0/16") {
		t.Errorf("ca config:\n%s", ca)
	}
	root := files["ca/rir.conf"]
	if !strings.Contains(root, "trust-anchor true") {
		t.Errorf("root config:\n%s", root)
	}
	pub := files["pub/pp1.conf"]
	if !strings.Contains(pub, "object roa 10.1.0.0/16-24 AS1") {
		t.Errorf("pub config:\n%s", pub)
	}
	cache := files["cache/cache1.conf"]
	if !strings.Contains(cache, "source pp1") {
		t.Errorf("cache config:\n%s", cache)
	}
}

func TestROAKeyStability(t *testing.T) {
	r := ROA{Prefix: netip.MustParsePrefix("10.0.0.0/8"), MaxLength: 24, ASN: 1, Issuer: "x"}
	if r.Key() != "10.0.0.0/8-24-1@x" {
		t.Errorf("key = %q", r.Key())
	}
}
