// Package rpki implements the Resource Public Key Infrastructure service
// network of §3.3: a hierarchy of certificate authorities with resources
// (address space) assigned down the tree, Route Origin Authorisations
// signed by the owning CA, publication points where signed objects are made
// available, and a distribution hierarchy of caches that fetch and
// cryptographically check objects before feeding them to routers.
//
// The paper's deployment used real RPKI daemons on 800+ KVM machines; here
// the cryptography is a hash-chain stand-in (object identity and tamper
// detection, not confidentiality) and the fetch protocol is simulated
// rounds, but the structure — CA tree validity, propagation depth, origin
// validation outcomes — is preserved, which is what the experiment
// measures.
package rpki

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"autonetkit/internal/netaddr"
)

// CA is one certificate authority in the hierarchy.
type CA struct {
	Name      string
	Parent    *CA // nil for the trust anchor
	Resources []netip.Prefix
	children  []*CA
	fp        string // certificate fingerprint (hash chain)
}

// ROA is a signed Route Origin Authorisation.
type ROA struct {
	Prefix    netip.Prefix
	MaxLength int
	ASN       int
	Issuer    string // CA name
	Signature string
}

// Key returns a stable identity for the object.
func (r ROA) Key() string {
	return fmt.Sprintf("%v-%d-%d@%s", r.Prefix, r.MaxLength, r.ASN, r.Issuer)
}

// Hierarchy is the CA tree plus issued objects.
type Hierarchy struct {
	root *CA
	cas  map[string]*CA
	roas []ROA
}

// NewHierarchy creates a trust anchor holding the given resources.
func NewHierarchy(rootName string, resources ...netip.Prefix) *Hierarchy {
	root := &CA{Name: rootName, Resources: resources}
	root.fp = fingerprint(rootName, "", resources)
	return &Hierarchy{root: root, cas: map[string]*CA{rootName: root}}
}

// Root returns the trust anchor.
func (h *Hierarchy) Root() *CA { return h.root }

// CAs returns all CA names, sorted.
func (h *Hierarchy) CAs() []string {
	out := make([]string, 0, len(h.cas))
	for name := range h.cas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CA returns a CA by name.
func (h *Hierarchy) CA(name string) (*CA, bool) {
	ca, ok := h.cas[name]
	return ca, ok
}

// AddCA creates a child CA under parent with a subset of its resources.
// Resource containment is enforced, as in real RPKI certification.
func (h *Hierarchy) AddCA(name, parentName string, resources ...netip.Prefix) (*CA, error) {
	if _, dup := h.cas[name]; dup {
		return nil, fmt.Errorf("rpki: CA %q already exists", name)
	}
	parent, ok := h.cas[parentName]
	if !ok {
		return nil, fmt.Errorf("rpki: parent CA %q unknown", parentName)
	}
	for _, r := range resources {
		if !coveredBy(r, parent.Resources) {
			return nil, fmt.Errorf("rpki: resource %v of %s not covered by parent %s", r, name, parentName)
		}
	}
	ca := &CA{Name: name, Parent: parent, Resources: resources}
	ca.fp = fingerprint(name, parent.fp, resources)
	parent.children = append(parent.children, ca)
	h.cas[name] = ca
	return ca, nil
}

// SignROA issues a ROA from the named CA; the prefix must be within the
// CA's resources and maxLength within [prefix length, 32].
func (h *Hierarchy) SignROA(caName string, prefix netip.Prefix, maxLength, asn int) (ROA, error) {
	ca, ok := h.cas[caName]
	if !ok {
		return ROA{}, fmt.Errorf("rpki: CA %q unknown", caName)
	}
	if !coveredBy(prefix, ca.Resources) {
		return ROA{}, fmt.Errorf("rpki: %s does not hold %v", caName, prefix)
	}
	if maxLength < prefix.Bits() || maxLength > 32 {
		return ROA{}, fmt.Errorf("rpki: maxLength %d invalid for %v", maxLength, prefix)
	}
	if asn <= 0 {
		return ROA{}, fmt.Errorf("rpki: invalid ASN %d", asn)
	}
	roa := ROA{Prefix: prefix.Masked(), MaxLength: maxLength, ASN: asn, Issuer: caName}
	roa.Signature = sign(ca.fp, roa.Key())
	h.roas = append(h.roas, roa)
	return roa, nil
}

// ROAs returns all issued ROAs.
func (h *Hierarchy) ROAs() []ROA {
	out := make([]ROA, len(h.roas))
	copy(out, h.roas)
	return out
}

// VerifyChain checks a CA's certificate chain up to the trust anchor.
func (h *Hierarchy) VerifyChain(caName string) error {
	ca, ok := h.cas[caName]
	if !ok {
		return fmt.Errorf("rpki: CA %q unknown", caName)
	}
	for ca.Parent != nil {
		want := fingerprint(ca.Name, ca.Parent.fp, ca.Resources)
		if ca.fp != want {
			return fmt.Errorf("rpki: certificate of %s fails verification", ca.Name)
		}
		for _, r := range ca.Resources {
			if !coveredBy(r, ca.Parent.Resources) {
				return fmt.Errorf("rpki: %s holds %v outside parent resources", ca.Name, r)
			}
		}
		ca = ca.Parent
	}
	if ca != h.root {
		return fmt.Errorf("rpki: chain of %s does not terminate at the trust anchor", caName)
	}
	return nil
}

// VerifyROA checks a ROA's signature against its issuer.
func (h *Hierarchy) VerifyROA(roa ROA) error {
	ca, ok := h.cas[roa.Issuer]
	if !ok {
		return fmt.Errorf("rpki: issuer %q unknown", roa.Issuer)
	}
	if roa.Signature != sign(ca.fp, roa.Key()) {
		return fmt.Errorf("rpki: ROA %s signature invalid", roa.Key())
	}
	if err := h.VerifyChain(roa.Issuer); err != nil {
		return err
	}
	if !coveredBy(roa.Prefix, ca.Resources) {
		return fmt.Errorf("rpki: ROA %s outside issuer resources", roa.Key())
	}
	return nil
}

func coveredBy(p netip.Prefix, resources []netip.Prefix) bool {
	for _, r := range resources {
		if netaddr.Contains(r, p) {
			return true
		}
	}
	return false
}

func fingerprint(name, parentFP string, resources []netip.Prefix) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s", name, parentFP, netaddr.FormatCIDRList(resources))
	return hex.EncodeToString(h.Sum(nil))
}

func sign(fp, payload string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s", fp, payload)
	return hex.EncodeToString(h.Sum(nil))
}

// Validity is the RFC 6811 origin-validation outcome.
type Validity string

// Outcomes.
const (
	Valid    Validity = "valid"
	Invalid  Validity = "invalid"
	NotFound Validity = "notfound"
)

// ValidateOrigin applies RFC 6811 semantics against a ROA set: NotFound
// when no ROA covers the prefix; Valid when a covering ROA matches the
// origin AS and the prefix length is within maxLength; Invalid otherwise.
func ValidateOrigin(roas []ROA, prefix netip.Prefix, originASN int) Validity {
	covered := false
	for _, r := range roas {
		if !netaddr.Contains(r.Prefix, prefix) {
			continue
		}
		covered = true
		if r.ASN == originASN && prefix.Bits() <= r.MaxLength {
			return Valid
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// --- distribution: publication points and caches ---

// PublicationPoint holds the signed objects a CA publishes.
type PublicationPoint struct {
	Name    string
	objects map[string]ROA
}

// Publish adds a ROA to the point.
func (p *PublicationPoint) Publish(roa ROA) {
	if p.objects == nil {
		p.objects = map[string]ROA{}
	}
	p.objects[roa.Key()] = roa
}

// Objects returns the published ROAs, sorted by key.
func (p *PublicationPoint) Objects() []ROA {
	keys := make([]string, 0, len(p.objects))
	for k := range p.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ROA, 0, len(keys))
	for _, k := range keys {
		out = append(out, p.objects[k])
	}
	return out
}

// Cache is one validating cache in the distribution hierarchy. A cache
// fetches either from publication points (top level) or from a parent
// cache, verifying every object before holding it.
type Cache struct {
	Name    string
	Parent  *Cache
	Sources []*PublicationPoint
	held    map[string]ROA
	// Rounds counts fetch rounds until the cache was complete.
	Rounds int
}

// Held returns the verified objects currently held.
func (c *Cache) Held() []ROA {
	keys := make([]string, 0, len(c.held))
	for k := range c.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ROA, 0, len(keys))
	for _, k := range keys {
		out = append(out, c.held[k])
	}
	return out
}

// Distribution is the cache hierarchy.
type Distribution struct {
	h      *Hierarchy
	points map[string]*PublicationPoint
	caches map[string]*Cache
	order  []string
}

// NewDistribution builds an empty distribution over a hierarchy.
func NewDistribution(h *Hierarchy) *Distribution {
	return &Distribution{h: h, points: map[string]*PublicationPoint{}, caches: map[string]*Cache{}}
}

// AddPublicationPoint creates a named point.
func (d *Distribution) AddPublicationPoint(name string) (*PublicationPoint, error) {
	if _, dup := d.points[name]; dup {
		return nil, fmt.Errorf("rpki: publication point %q exists", name)
	}
	p := &PublicationPoint{Name: name, objects: map[string]ROA{}}
	d.points[name] = p
	return p, nil
}

// AddCache creates a cache fetching from a parent cache (parentName != "")
// or from the named publication points.
func (d *Distribution) AddCache(name, parentName string, pointNames ...string) (*Cache, error) {
	if _, dup := d.caches[name]; dup {
		return nil, fmt.Errorf("rpki: cache %q exists", name)
	}
	c := &Cache{Name: name, held: map[string]ROA{}}
	if parentName != "" {
		parent, ok := d.caches[parentName]
		if !ok {
			return nil, fmt.Errorf("rpki: parent cache %q unknown", parentName)
		}
		c.Parent = parent
	}
	for _, pn := range pointNames {
		p, ok := d.points[pn]
		if !ok {
			return nil, fmt.Errorf("rpki: publication point %q unknown", pn)
		}
		c.Sources = append(c.Sources, p)
	}
	if c.Parent == nil && len(c.Sources) == 0 {
		return nil, fmt.Errorf("rpki: cache %q has no sources", name)
	}
	d.caches[name] = c
	d.order = append(d.order, name)
	return c, nil
}

// Cache returns a cache by name.
func (d *Distribution) Cache(name string) (*Cache, bool) {
	c, ok := d.caches[name]
	return c, ok
}

// Propagate runs fetch rounds until no cache learns anything new,
// returning the number of rounds (the propagation depth the RPKI
// measurement study [30] reports). Objects failing verification are
// dropped.
func (d *Distribution) Propagate(maxRounds int) (int, error) {
	if maxRounds <= 0 {
		maxRounds = 100
	}
	for round := 1; round <= maxRounds; round++ {
		changed := false
		for _, name := range d.order {
			c := d.caches[name]
			var incoming []ROA
			for _, p := range c.Sources {
				incoming = append(incoming, p.Objects()...)
			}
			if c.Parent != nil {
				incoming = append(incoming, c.Parent.Held()...)
			}
			for _, roa := range incoming {
				if _, have := c.held[roa.Key()]; have {
					continue
				}
				if err := d.h.VerifyROA(roa); err != nil {
					continue // tampered or unverifiable object: dropped
				}
				c.held[roa.Key()] = roa
				changed = true
				c.Rounds = round
			}
		}
		if !changed {
			return round - 1, nil
		}
	}
	return maxRounds, fmt.Errorf("rpki: propagation did not quiesce in %d rounds", maxRounds)
}

// Complete reports whether every cache holds every verifiable ROA.
func (d *Distribution) Complete() bool {
	want := 0
	for _, roa := range d.h.ROAs() {
		if d.h.VerifyROA(roa) == nil {
			want++
		}
	}
	for _, c := range d.caches {
		if len(c.held) != want {
			return false
		}
	}
	return true
}

// String summarises the distribution.
func (d *Distribution) String() string {
	return fmt.Sprintf("rpki-distribution(%d points, %d caches, %d roas)",
		len(d.points), len(d.caches), len(d.roas()))
}

func (d *Distribution) roas() []ROA { return d.h.ROAs() }

// ConfigFiles renders per-node configuration files for the service network
// (the §3.3 "set of configuration files for all the daemons"): one file per
// CA, publication point and cache, describing its parents/sources — the
// same shape the paper's extension fed into Linux VM images.
func (d *Distribution) ConfigFiles() map[string]string {
	out := map[string]string{}
	for _, name := range d.h.CAs() {
		ca, _ := d.h.cas[name], true
		var sb strings.Builder
		fmt.Fprintf(&sb, "# RPKI CA %s\nname %s\n", name, name)
		if ca.Parent != nil {
			fmt.Fprintf(&sb, "parent %s\n", ca.Parent.Name)
		} else {
			fmt.Fprintf(&sb, "trust-anchor true\n")
		}
		for _, r := range ca.Resources {
			fmt.Fprintf(&sb, "resource %v\n", r)
		}
		fmt.Fprintf(&sb, "certificate %s\n", ca.fp)
		out["ca/"+name+".conf"] = sb.String()
	}
	var pointNames []string
	for n := range d.points {
		pointNames = append(pointNames, n)
	}
	sort.Strings(pointNames)
	for _, n := range pointNames {
		var sb strings.Builder
		fmt.Fprintf(&sb, "# RPKI publication point %s\nname %s\n", n, n)
		for _, roa := range d.points[n].Objects() {
			fmt.Fprintf(&sb, "object roa %v-%d AS%d sig %s\n", roa.Prefix, roa.MaxLength, roa.ASN, roa.Signature[:16])
		}
		out["pub/"+n+".conf"] = sb.String()
	}
	for _, n := range d.order {
		c := d.caches[n]
		var sb strings.Builder
		fmt.Fprintf(&sb, "# RPKI cache %s\nname %s\n", n, n)
		if c.Parent != nil {
			fmt.Fprintf(&sb, "parent-cache %s\n", c.Parent.Name)
		}
		for _, s := range c.Sources {
			fmt.Fprintf(&sb, "source %s\n", s.Name)
		}
		out["cache/"+n+".conf"] = sb.String()
	}
	return out
}
