// Package dns implements the DNS service of §3.3: zone generation that is
// consistent-by-construction with the IP allocation (forward zones per AS,
// reverse in-addr.arpa zones for infrastructure and loopback blocks),
// BIND-style zone file rendering, and an in-memory resolver used by the
// measurement system to translate traceroute addresses into names.
package dns

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"autonetkit/internal/core"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/netaddr"
)

// Record is one resource record.
type Record struct {
	Name  string // fully qualified, without trailing dot
	Type  string // A, PTR, NS, SOA
	Value string
}

// Zone is one generated zone.
type Zone struct {
	Name    string // e.g. "as1.lab" or "1.168.192.in-addr.arpa"
	Reverse bool
	Records []Record
}

// Render writes the zone as a BIND-style zone file.
func (z Zone) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "$ORIGIN %s.\n$TTL 86400\n", z.Name)
	fmt.Fprintf(&sb, "@ IN SOA ns.%s. admin.%s. ( 1 3600 900 604800 86400 )\n", z.Name, z.Name)
	fmt.Fprintf(&sb, "@ IN NS ns.%s.\n", z.Name)
	for _, r := range z.Records {
		name := r.Name
		if strings.HasSuffix(name, "."+z.Name) {
			name = strings.TrimSuffix(name, "."+z.Name)
		}
		val := r.Value
		if r.Type == "PTR" && !strings.HasSuffix(val, ".") {
			val += "."
		}
		fmt.Fprintf(&sb, "%s IN %s %s\n", name, r.Type, val)
	}
	return sb.String()
}

// Config parameterises zone generation.
type Config struct {
	// Domain is the lab's base domain, default "lab".
	Domain string
}

// Zones is the complete generated DNS state.
type Zones struct {
	Forward []Zone
	Reverse []Zone
}

// All returns forward then reverse zones.
func (z Zones) All() []Zone {
	out := append([]Zone{}, z.Forward...)
	return append(out, z.Reverse...)
}

// Generate builds forward and reverse zones from the model and allocation.
// Forward zones are per-AS ("as<N>.<domain>"): each router's loopback under
// its hostname, plus one name per interface ("<host>-<cd>"). Reverse zones
// cover every allocated address with a PTR back to the forward name — this
// is the consistency the paper stresses ("configuration has to be
// consistent with the name and IP address allocations").
func Generate(anm *core.ANM, alloc *ipalloc.Result, cfg Config) (Zones, error) {
	if cfg.Domain == "" {
		cfg.Domain = "lab"
	}
	phy := anm.Overlay(core.OverlayPhy)
	if phy == nil || alloc == nil {
		return Zones{}, fmt.Errorf("dns: need phy overlay and allocation")
	}
	fwdByASN := map[int]*Zone{}
	var asns []int
	fwdZone := func(asn int) *Zone {
		z, ok := fwdByASN[asn]
		if !ok {
			z = &Zone{Name: fmt.Sprintf("as%d.%s", asn, cfg.Domain)}
			fwdByASN[asn] = z
			asns = append(asns, asn)
		}
		return z
	}
	revRecords := map[string][]Record{} // reverse zone name -> records
	addPTR := func(addr netip.Addr, fqdn string) {
		zoneName := netaddr.ReverseZone(netip.PrefixFrom(addr, 32))
		revRecords[zoneName] = append(revRecords[zoneName], Record{
			Name: netaddr.ReverseName(addr), Type: "PTR", Value: fqdn,
		})
	}

	for _, e := range alloc.Table.Entries() {
		node := alloc.Overlay.Node(e.Node)
		asn := node.ASN()
		z := fwdZone(asn)
		var fqdn string
		if e.Loopback {
			fqdn = fmt.Sprintf("%s.%s", e.Node, z.Name)
		} else {
			// Interface names keep the device as the first label so
			// traceroute reverse lookups display the router (§6.1), with
			// the collision domain as a sub-label.
			fqdn = fmt.Sprintf("%s.%s.%s", e.Node, sanitizeLabel(string(e.CD)), z.Name)
		}
		z.Records = append(z.Records, Record{Name: fqdn, Type: "A", Value: e.Addr.String()})
		addPTR(e.Addr, fqdn)
	}

	var out Zones
	sort.Ints(asns)
	for _, asn := range asns {
		z := fwdByASN[asn]
		sort.Slice(z.Records, func(i, j int) bool { return z.Records[i].Name < z.Records[j].Name })
		out.Forward = append(out.Forward, *z)
	}
	var revNames []string
	for name := range revRecords {
		revNames = append(revNames, name)
	}
	sort.Strings(revNames)
	for _, name := range revNames {
		recs := revRecords[name]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
		out.Reverse = append(out.Reverse, Zone{Name: name, Reverse: true, Records: recs})
	}
	return out, nil
}

func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == '_':
			return '-'
		default:
			return -1
		}
	}, s)
}

// Resolver answers forward and reverse queries over a set of zones — the
// emulated DNS server the measurement client can point at.
type Resolver struct {
	byName map[string]netip.Addr
	byAddr map[netip.Addr]string
}

// NewResolver indexes the zones.
func NewResolver(zones Zones) *Resolver {
	r := &Resolver{byName: map[string]netip.Addr{}, byAddr: map[netip.Addr]string{}}
	for _, z := range zones.All() {
		for _, rec := range z.Records {
			switch rec.Type {
			case "A":
				if a, err := netip.ParseAddr(rec.Value); err == nil {
					r.byName[rec.Name] = a
				}
			case "PTR":
				// rec.Name is the in-addr.arpa name.
				if a, ok := addrFromReverseName(rec.Name); ok {
					r.byAddr[a] = strings.TrimSuffix(rec.Value, ".")
				}
			}
		}
	}
	return r
}

// Lookup resolves a name to an address.
func (r *Resolver) Lookup(name string) (netip.Addr, bool) {
	a, ok := r.byName[name]
	return a, ok
}

// ReverseLookup resolves an address to its PTR name.
func (r *Resolver) ReverseLookup(a netip.Addr) (string, bool) {
	n, ok := r.byAddr[a]
	return n, ok
}

// HostPart returns the first label of the PTR name for an address —
// "as100r1" from "as100r1.as100.lab" — for traceroute display.
func (r *Resolver) HostPart(a netip.Addr) string {
	n, ok := r.byAddr[a]
	if !ok {
		return ""
	}
	if i := strings.Index(n, "."); i >= 0 {
		return n[:i]
	}
	return n
}

func addrFromReverseName(name string) (netip.Addr, bool) {
	rest, ok := strings.CutSuffix(name, ".in-addr.arpa")
	if !ok {
		return netip.Addr{}, false
	}
	parts := strings.Split(rest, ".")
	if len(parts) != 4 {
		return netip.Addr{}, false
	}
	// Reverse the octet order.
	flipped := parts[3] + "." + parts[2] + "." + parts[1] + "." + parts[0]
	a, err := netip.ParseAddr(flipped)
	if err != nil {
		return netip.Addr{}, false
	}
	return a, true
}
