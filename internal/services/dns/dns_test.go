package dns

import (
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
)

func model(t *testing.T) (*core.ANM, *ipalloc.Result) {
	t.Helper()
	anm := core.NewANM()
	phy := anm.Overlay(core.OverlayPhy)
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 2}} {
		phy.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	phy.AddEdge("r1", "r2")
	phy.AddEdge("r2", "r3")
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	return anm, alloc
}

func TestGenerateZones(t *testing.T) {
	anm, alloc := model(t)
	zones, err := Generate(anm, alloc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(zones.Forward) != 2 {
		t.Fatalf("forward zones = %d, want 2 (as1, as2)", len(zones.Forward))
	}
	if zones.Forward[0].Name != "as1.lab" || zones.Forward[1].Name != "as2.lab" {
		t.Errorf("zone names = %s, %s", zones.Forward[0].Name, zones.Forward[1].Name)
	}
	if len(zones.Reverse) == 0 {
		t.Fatal("no reverse zones")
	}
}

// E11: every allocated address has a PTR record and every PTR maps back to
// a forward A record — full consistency with the allocation.
func TestE11_ZoneConsistency(t *testing.T) {
	anm, alloc := model(t)
	zones, err := Generate(anm, alloc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewResolver(zones)
	for _, e := range alloc.Table.Entries() {
		name, ok := r.ReverseLookup(e.Addr)
		if !ok {
			t.Errorf("address %v has no PTR", e.Addr)
			continue
		}
		if !strings.HasPrefix(name, string(e.Node)) {
			t.Errorf("PTR for %v = %q, want prefix %q", e.Addr, name, e.Node)
		}
		back, ok := r.Lookup(name)
		if !ok || back != e.Addr {
			t.Errorf("A record for %q = %v, want %v", name, back, e.Addr)
		}
	}
	// Loopback gets the bare hostname.
	lb := alloc.Overlay.Node("r1").Get(ipalloc.AttrLoopback).(netip.Addr)
	if name, _ := r.ReverseLookup(lb); name != "r1.as1.lab" {
		t.Errorf("loopback PTR = %q", name)
	}
	if r.HostPart(lb) != "r1" {
		t.Errorf("host part = %q", r.HostPart(lb))
	}
}

func TestZoneRender(t *testing.T) {
	anm, alloc := model(t)
	zones, err := Generate(anm, alloc, Config{Domain: "example.test"})
	if err != nil {
		t.Fatal(err)
	}
	text := zones.Forward[0].Render()
	for _, want := range []string{"$ORIGIN as1.example.test.", "IN SOA", "IN NS", "IN A "} {
		if !strings.Contains(text, want) {
			t.Errorf("zone file missing %q:\n%s", want, text)
		}
	}
	rev := zones.Reverse[0].Render()
	if !strings.Contains(rev, "IN PTR ") || !strings.Contains(rev, "in-addr.arpa.") {
		t.Errorf("reverse zone:\n%s", rev)
	}
	// PTR targets are fully qualified.
	for _, line := range strings.Split(rev, "\n") {
		if strings.Contains(line, "IN PTR") && !strings.HasSuffix(line, ".") {
			t.Errorf("unqualified PTR target: %q", line)
		}
	}
}

func TestResolverMisses(t *testing.T) {
	r := NewResolver(Zones{})
	if _, ok := r.Lookup("nope.lab"); ok {
		t.Error("phantom forward hit")
	}
	if _, ok := r.ReverseLookup(netip.MustParseAddr("203.0.113.1")); ok {
		t.Error("phantom reverse hit")
	}
	if r.HostPart(netip.MustParseAddr("203.0.113.1")) != "" {
		t.Error("phantom host part")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(core.NewANM(), nil, Config{}); err == nil {
		t.Error("nil allocation accepted")
	}
}

func TestAddrFromReverseName(t *testing.T) {
	a, ok := addrFromReverseName("5.1.168.192.in-addr.arpa")
	if !ok || a != netip.MustParseAddr("192.168.1.5") {
		t.Errorf("got %v %v", a, ok)
	}
	if _, ok := addrFromReverseName("not-a-ptr"); ok {
		t.Error("garbage accepted")
	}
	if _, ok := addrFromReverseName("1.2.3.in-addr.arpa"); ok {
		t.Error("short name accepted")
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel("cd_r1_r2"); got != "cd-r1-r2" {
		t.Errorf("got %q", got)
	}
	if got := sanitizeLabel("UPPER.case!"); got != "uppercase" {
		t.Errorf("got %q", got)
	}
}
