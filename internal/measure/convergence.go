package measure

import (
	"fmt"
	"net/netip"
	"sort"

	"autonetkit/internal/routing"
)

// Convergence metrics (rounds-to-quiescence, per-prefix best-route churn):
// the control-plane counterpart of the reachability matrix. Experiments
// that degrade the control plane (loss sweeps, flap schedules) report
// these distributions instead of a single converged/not bit.

// ConvergenceSource is the lab-side view the metrics read; *emul.Lab
// implements it.
type ConvergenceSource interface {
	BGPResult() routing.BGPResult
	RouteChurn() map[netip.Prefix]int
	TotalChurn() int
}

// PrefixChurn is one prefix's best-route change count.
type PrefixChurn struct {
	Prefix  netip.Prefix
	Changes int
}

// Convergence is one convergence episode's metric set.
type Convergence struct {
	Converged   bool
	Oscillating bool
	Cancelled   bool
	// Rounds is rounds-to-quiescence: the engine's cumulative round count
	// when the episode ended.
	Rounds int
	// CycleLen is the detected oscillation period (-1: budget exhausted).
	CycleLen int
	// TotalChurn sums best-route changes across all prefixes and speakers.
	TotalChurn int
	// Churn lists the per-prefix change counts, sorted by prefix.
	Churn []PrefixChurn
}

// CollectConvergence snapshots the lab's most recent convergence episode.
func CollectConvergence(src ConvergenceSource) Convergence {
	res := src.BGPResult()
	c := Convergence{
		Converged:   res.Converged,
		Oscillating: res.Oscillating,
		Cancelled:   res.Cancelled,
		Rounds:      res.Rounds,
		CycleLen:    res.CycleLen,
		TotalChurn:  src.TotalChurn(),
	}
	for p, n := range src.RouteChurn() {
		c.Churn = append(c.Churn, PrefixChurn{Prefix: p, Changes: n})
	}
	sort.Slice(c.Churn, func(i, j int) bool {
		a, b := c.Churn[i].Prefix, c.Churn[j].Prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	return c
}

// Hottest returns the n prefixes with the most best-route changes (ties by
// prefix order), for churn summaries.
func (c Convergence) Hottest(n int) []PrefixChurn {
	out := append([]PrefixChurn(nil), c.Churn...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Changes > out[j].Changes })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// String renders the metrics as one deterministic line.
func (c Convergence) String() string {
	state := "converged"
	switch {
	case c.Cancelled:
		state = "cancelled"
	case c.Oscillating && c.CycleLen > 0:
		state = fmt.Sprintf("oscillating (cycle %d)", c.CycleLen)
	case c.Oscillating:
		state = "starved"
	}
	return fmt.Sprintf("%s after %d rounds, %d route changes over %d prefixes",
		state, c.Rounds, c.TotalChurn, len(c.Churn))
}
