// Package measure implements the measurement system (paper §5.7): a client
// that runs commands on emulated machines (in parallel across the lab),
// parses the textual output with TextFSM templates, maps addresses back to
// the hosts they belong to using the IP allocation, and reconstructs
// measured graphs that can be compared against the design-time overlays —
// the paper's automated validation loop (§8).
package measure

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"

	"autonetkit/internal/graph"
	"autonetkit/internal/measure/textfsm"
)

// Target is the measurement client's view of a running lab; *emul.Lab
// implements it.
type Target interface {
	Exec(machine, command string) (string, error)
	VMNames() []string
}

// Resolver maps an address back to the owning device, as the paper does
// with the IP allocation mapping (§6.1); ipalloc.Table.HostForIP adapts
// directly.
type Resolver func(netip.Addr) string

// Client drives measurements against one lab.
type Client struct {
	target  Target
	resolve Resolver
}

// NewClient returns a client. resolve may be nil (no name mapping).
func NewClient(target Target, resolve Resolver) *Client {
	if resolve == nil {
		resolve = func(netip.Addr) string { return "" }
	}
	return &Client{target: target, resolve: resolve}
}

// Run executes one command on one machine.
func (c *Client) Run(machine, command string) (string, error) {
	return c.target.Exec(machine, command)
}

// Result is one machine's output from a parallel run.
type Result struct {
	Machine string
	Output  string
	Err     error
}

// RunAll executes a command on many machines concurrently — the paper's
// "single measurement client ... speeding up data collection". Results are
// returned sorted by machine name.
func (c *Client) RunAll(machines []string, command string) []Result {
	out := make([]Result, len(machines))
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			text, err := c.target.Exec(m, command)
			out[i] = Result{Machine: m, Output: text, Err: err}
		}(i, m)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// tracerouteTemplate is the reference Linux-traceroute template the paper
// ships with TextFSM (§5.7).
var tracerouteTemplate = textfsm.MustParse(`Value HOP (\d+)
Value ADDRESS (\d+\.\d+\.\d+\.\d+)

Start
  ^\s*${HOP}\s+${ADDRESS} -> Record
`)

// Hop is one traceroute hop with its reverse-mapped host.
type Hop struct {
	Index int
	Addr  netip.Addr
	Host  string
}

// Traceroute is a parsed, reverse-mapped traceroute.
type Traceroute struct {
	Src     string
	Dst     netip.Addr
	Hops    []Hop
	Reached bool
}

// Path returns the hop hosts prefixed with the source — the paper's §6.1
// "[as300r2, as40r1, ...]" list of overlay nodes.
func (tr Traceroute) Path() []string {
	out := []string{tr.Src}
	for _, h := range tr.Hops {
		if h.Host != "" {
			out = append(out, h.Host)
		} else {
			out = append(out, h.Addr.String())
		}
	}
	return out
}

// ASPath collapses the hop path into the AS-level path — the paper's §6.1
// "this can then be easily and accurately translated into an AS path".
// asnOf maps a hostname to its AS number (0 = unknown, skipped);
// consecutive hops in the same AS collapse to one entry.
func (tr Traceroute) ASPath(asnOf func(host string) int) []int {
	var out []int
	for _, host := range tr.Path() {
		asn := asnOf(host)
		if asn <= 0 {
			continue
		}
		if len(out) == 0 || out[len(out)-1] != asn {
			out = append(out, asn)
		}
	}
	return out
}

// RunTraceroute executes and parses a traceroute from src to dst.
func (c *Client) RunTraceroute(src string, dst netip.Addr) (Traceroute, error) {
	cmd := fmt.Sprintf("traceroute -naU %s", dst)
	text, err := c.target.Exec(src, cmd)
	if err != nil {
		return Traceroute{}, err
	}
	return c.ParseTraceroute(src, dst, text)
}

// ParseTraceroute parses raw traceroute text (the same binary format as
// real Linux traceroute output).
func (c *Client) ParseTraceroute(src string, dst netip.Addr, text string) (Traceroute, error) {
	recs, err := tracerouteTemplate.ParseText(text)
	if err != nil {
		return Traceroute{}, err
	}
	tr := Traceroute{Src: src, Dst: dst}
	for _, r := range recs {
		idx, err := strconv.Atoi(fmt.Sprint(r["HOP"]))
		if err != nil {
			return Traceroute{}, fmt.Errorf("measure: bad hop index %v", r["HOP"])
		}
		addr, err := netip.ParseAddr(fmt.Sprint(r["ADDRESS"]))
		if err != nil {
			return Traceroute{}, fmt.Errorf("measure: bad hop address %v", r["ADDRESS"])
		}
		tr.Hops = append(tr.Hops, Hop{Index: idx, Addr: addr, Host: c.resolve(addr)})
	}
	if n := len(tr.Hops); n > 0 && tr.Hops[n-1].Addr == dst {
		tr.Reached = true
	}
	return tr, nil
}

// ospfNeighborTemplate parses Quagga's `show ip ospf neighbor` table.
var ospfNeighborTemplate = textfsm.MustParse(`Value NEIGHBOR_ID (\d+\.\d+\.\d+\.\d+)
Value ADDRESS (\d+\.\d+\.\d+\.\d+)
Value INTERFACE (\S+)

Start
  ^${NEIGHBOR_ID}\s+\d+\s+\S+\s+[\d:]+\s+${ADDRESS}\s+${INTERFACE} -> Record
`)

// OSPFAdjacency is one measured adjacency.
type OSPFAdjacency struct {
	Local, Remote string // hostnames (Remote resolved from the neighbor address)
	Interface     string
}

// OSPFAdjacencies measures a machine's OSPF neighbors.
func (c *Client) OSPFAdjacencies(machine string) ([]OSPFAdjacency, error) {
	text, err := c.target.Exec(machine, "show ip ospf neighbor")
	if err != nil {
		return nil, err
	}
	recs, err := ospfNeighborTemplate.ParseText(text)
	if err != nil {
		return nil, err
	}
	var out []OSPFAdjacency
	for _, r := range recs {
		addr, err := netip.ParseAddr(fmt.Sprint(r["ADDRESS"]))
		if err != nil {
			return nil, fmt.Errorf("measure: bad neighbor address %v", r["ADDRESS"])
		}
		out = append(out, OSPFAdjacency{
			Local:     machine,
			Remote:    c.resolve(addr),
			Interface: fmt.Sprint(r["INTERFACE"]),
		})
	}
	return out, nil
}

// MeasuredOSPFGraph reconstructs the OSPF adjacency graph of the running
// network by querying every machine — the measured counterpart of the
// design-time OSPF overlay.
func (c *Client) MeasuredOSPFGraph(machines []string) (*graph.Graph, error) {
	g := graph.New()
	sorted := make([]string, len(machines))
	copy(sorted, machines)
	sort.Strings(sorted)
	for _, m := range sorted {
		g.AddNode(graph.ID(m))
	}
	for _, m := range sorted {
		adjs, err := c.OSPFAdjacencies(m)
		if err != nil {
			return nil, fmt.Errorf("measure: %s: %w", m, err)
		}
		for _, a := range adjs {
			if a.Remote == "" {
				return nil, fmt.Errorf("measure: %s: neighbor address unresolvable", m)
			}
			g.AddEdge(graph.ID(a.Local), graph.ID(a.Remote))
		}
	}
	return g, nil
}

// isisNeighborTemplate parses Quagga's `show isis neighbor` table.
var isisNeighborTemplate = textfsm.MustParse(`Value SYSTEM_ID (\S+)
Value INTERFACE (\S+)

Start
  ^${SYSTEM_ID}\s+${INTERFACE}\s+Up\s+ -> Record
`)

// MeasuredISISGraph reconstructs the IS-IS adjacency graph of a running
// IS-IS lab (§7) — the IS-IS counterpart of MeasuredOSPFGraph. IS-IS
// reports neighbours by system id (hostname here), so no address
// resolution is needed.
func (c *Client) MeasuredISISGraph(machines []string) (*graph.Graph, error) {
	g := graph.New()
	sorted := make([]string, len(machines))
	copy(sorted, machines)
	sort.Strings(sorted)
	for _, m := range sorted {
		g.AddNode(graph.ID(m))
	}
	for _, m := range sorted {
		text, err := c.target.Exec(m, "show isis neighbor")
		if err != nil {
			return nil, fmt.Errorf("measure: %s: %w", m, err)
		}
		recs, err := isisNeighborTemplate.ParseText(text)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			g.AddEdge(graph.ID(m), graph.ID(fmt.Sprint(r["SYSTEM_ID"])))
		}
	}
	return g, nil
}

// bgpTableTemplate parses the `show ip bgp` table shape the emulated
// Quagga produces.
var bgpTableTemplate = textfsm.MustParse(`Value PREFIX (\S+/\d+)
Value NEXTHOP (\d+\.\d+\.\d+\.\d+)
Value MED (\d+)
Value LOCPRF (\d+)
Value PATH ([\d ]*?)

Start
  ^\*>\s+${PREFIX}\s+${NEXTHOP}\s+${MED}\s+${LOCPRF}\s+${PATH}\s*i$ -> Record
`)

// BGPEntry is one parsed `show ip bgp` row.
type BGPEntry struct {
	Prefix    netip.Prefix
	NextHop   netip.Addr
	MED       int
	LocalPref int
	ASPath    []int
}

// BGPTable runs `show ip bgp` on a machine and parses the result.
func (c *Client) BGPTable(machine string) ([]BGPEntry, error) {
	text, err := c.target.Exec(machine, "show ip bgp")
	if err != nil {
		return nil, err
	}
	recs, err := bgpTableTemplate.ParseText(text)
	if err != nil {
		return nil, err
	}
	var out []BGPEntry
	for _, r := range recs {
		p, err := netip.ParsePrefix(fmt.Sprint(r["PREFIX"]))
		if err != nil {
			return nil, fmt.Errorf("measure: bad prefix %v", r["PREFIX"])
		}
		nh, err := netip.ParseAddr(fmt.Sprint(r["NEXTHOP"]))
		if err != nil {
			return nil, fmt.Errorf("measure: bad next hop %v", r["NEXTHOP"])
		}
		med, _ := strconv.Atoi(fmt.Sprint(r["MED"]))
		lp, _ := strconv.Atoi(fmt.Sprint(r["LOCPRF"]))
		entry := BGPEntry{Prefix: p, NextHop: nh, MED: med, LocalPref: lp}
		for _, f := range strings.Fields(fmt.Sprint(r["PATH"])) {
			asn, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("measure: bad AS path element %q", f)
			}
			entry.ASPath = append(entry.ASPath, asn)
		}
		out = append(out, entry)
	}
	return out, nil
}

// MeasuredASGraph reconstructs the AS-level graph visible in the running
// network's BGP tables: each machine's AS (via asnOf) links to the first
// AS of every selected path, and consecutive path elements link onward —
// the §8 "capture ... router status ... compared to the created overlay
// graphs" loop at the AS level.
func (c *Client) MeasuredASGraph(machines []string, asnOf func(host string) int) (*graph.Graph, error) {
	g := graph.New()
	sorted := make([]string, len(machines))
	copy(sorted, machines)
	sort.Strings(sorted)
	for _, m := range sorted {
		if asn := asnOf(m); asn > 0 {
			g.AddNode(graph.ID(fmt.Sprint(asn)))
		}
	}
	for _, m := range sorted {
		local := asnOf(m)
		if local <= 0 {
			continue
		}
		entries, err := c.BGPTable(m)
		if err != nil {
			return nil, fmt.Errorf("measure: %s: %w", m, err)
		}
		for _, e := range entries {
			prev := local
			for _, asn := range e.ASPath {
				if asn != prev {
					g.AddEdge(graph.ID(fmt.Sprint(prev)), graph.ID(fmt.Sprint(asn)))
				}
				prev = asn
			}
		}
	}
	return g, nil
}

// Reachable probes dst from src with a single emulated ping and parses the
// loss line, exactly as the paper's measurement client would against a
// real lab.
func (c *Client) Reachable(src string, dst netip.Addr) (bool, error) {
	out, err := c.target.Exec(src, fmt.Sprintf("ping -c 1 %s", dst))
	if err != nil {
		return false, err
	}
	return strings.Contains(out, " 1 received"), nil
}

// Reachability is an N×N reachability matrix over named nodes: the
// post-incident ground truth a chaos scenario diffs against its baseline.
type Reachability struct {
	Nodes []string           // sorted probe sources/destinations
	Reach map[[2]string]bool // [src, dst] -> ping succeeded
}

// Pairs returns the number of probed (ordered) pairs.
func (m Reachability) Pairs() int { return len(m.Reach) }

// Reachable counts the pairs that answered.
func (m Reachability) Reachable() int {
	n := 0
	for _, ok := range m.Reach {
		if ok {
			n++
		}
	}
	return n
}

// ReachabilityDiff lists the ordered pairs whose reachability changed
// between two matrices.
type ReachabilityDiff struct {
	Lost   [][2]string // reachable before, not after
	Gained [][2]string // unreachable before, reachable after
}

// OK reports whether the matrices agree.
func (d ReachabilityDiff) OK() bool { return len(d.Lost) == 0 && len(d.Gained) == 0 }

// String summarises the diff.
func (d ReachabilityDiff) String() string {
	if d.OK() {
		return "reachability unchanged"
	}
	return fmt.Sprintf("reachability changed: %d pairs lost, %d pairs gained", len(d.Lost), len(d.Gained))
}

// DiffReachability compares two matrices probed over the same node set.
func DiffReachability(before, after Reachability) ReachabilityDiff {
	var d ReachabilityDiff
	for pair, was := range before.Reach {
		now := after.Reach[pair]
		switch {
		case was && !now:
			d.Lost = append(d.Lost, pair)
		case !was && now:
			d.Gained = append(d.Gained, pair)
		}
	}
	sortPairList(d.Lost)
	sortPairList(d.Gained)
	return d
}

func sortPairList(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// ReachabilityMatrix probes every ordered pair of the given nodes
// concurrently (addrOf supplies each destination's probe address; nodes
// whose address is invalid are skipped). Self-pairs are not probed.
func (c *Client) ReachabilityMatrix(nodes []string, addrOf func(string) netip.Addr) (Reachability, error) {
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if addrOf(n).IsValid() {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	m := Reachability{Nodes: sorted, Reach: map[[2]string]bool{}}
	type probe struct {
		pair [2]string
		ok   bool
		err  error
	}
	var wg sync.WaitGroup
	results := make(chan probe, len(sorted)*len(sorted))
	for _, src := range sorted {
		for _, dst := range sorted {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst string) {
				defer wg.Done()
				ok, err := c.Reachable(src, addrOf(dst))
				results <- probe{[2]string{src, dst}, ok, err}
			}(src, dst)
		}
	}
	wg.Wait()
	close(results)
	for p := range results {
		if p.err != nil {
			return Reachability{}, fmt.Errorf("measure: probing %s -> %s: %w", p.pair[0], p.pair[1], p.err)
		}
		m.Reach[p.pair] = p.ok
	}
	return m, nil
}

// Diff describes how a measured graph deviates from the designed one.
type Diff struct {
	MissingEdges [][2]graph.ID // designed but not measured
	ExtraEdges   [][2]graph.ID // measured but not designed
	MissingNodes []graph.ID
}

// OK reports whether the graphs agree.
func (d Diff) OK() bool {
	return len(d.MissingEdges) == 0 && len(d.ExtraEdges) == 0 && len(d.MissingNodes) == 0
}

// String summarises the diff.
func (d Diff) String() string {
	if d.OK() {
		return "measured topology matches design"
	}
	return fmt.Sprintf("diff: %d missing edges, %d extra edges, %d missing nodes",
		len(d.MissingEdges), len(d.ExtraEdges), len(d.MissingNodes))
}

// Compare checks a measured graph against the designed one (undirected
// edge-set equality over the designed node set) — the paper's automated
// "assert deployment success" (§8).
func Compare(designed, measured *graph.Graph) Diff {
	var d Diff
	for _, id := range designed.SortedNodeIDs() {
		if !measured.HasNode(id) {
			d.MissingNodes = append(d.MissingNodes, id)
		}
	}
	norm := func(a, b graph.ID) (graph.ID, graph.ID) {
		if b < a {
			return b, a
		}
		return a, b
	}
	want := map[[2]graph.ID]bool{}
	for _, e := range designed.Edges() {
		a, b := norm(e.Src(), e.Dst())
		want[[2]graph.ID{a, b}] = true
	}
	got := map[[2]graph.ID]bool{}
	for _, e := range measured.Edges() {
		a, b := norm(e.Src(), e.Dst())
		got[[2]graph.ID{a, b}] = true
	}
	for k := range want {
		if !got[k] {
			d.MissingEdges = append(d.MissingEdges, k)
		}
	}
	for k := range got {
		if !want[k] {
			d.ExtraEdges = append(d.ExtraEdges, k)
		}
	}
	sortPairs := func(ps [][2]graph.ID) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
	}
	sortPairs(d.MissingEdges)
	sortPairs(d.ExtraEdges)
	return d
}
