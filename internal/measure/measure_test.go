package measure

import (
	"net/netip"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"autonetkit/internal/compile"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/emul"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/render"
)

// lab builds and starts the Fig. 5 network, returning lab + allocation +
// the design-time ANM.
func lab(t *testing.T) (*emul.Lab, *ipalloc.Result, *core.ANM) {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	l, err := emul.Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	return l, alloc, anm
}

func client(t *testing.T) (*Client, *ipalloc.Result, *core.ANM, *emul.Lab) {
	t.Helper()
	l, alloc, anm := lab(t)
	c := NewClient(l, func(a netip.Addr) string { return string(alloc.Table.HostForIP(a)) })
	return c, alloc, anm, l
}

func TestRunAllParallel(t *testing.T) {
	c, _, _, l := client(t)
	results := c.RunAll(l.VMNames(), "show ip ospf neighbor")
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Machine, r.Err)
		}
	}
	// Sorted by machine.
	for i := 1; i < len(results); i++ {
		if results[i-1].Machine > results[i].Machine {
			t.Fatal("results not sorted")
		}
	}
}

// E6: the §6.1 measurement flow — run a traceroute, parse it, translate
// each hop back into router names.
func TestE6_TracerouteNameMapping(t *testing.T) {
	c, alloc, _, _ := client(t)
	var dst netip.Addr
	for _, e := range alloc.Table.Entries() {
		if e.Node == "r5" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	tr, err := c.RunTraceroute("r1", dst)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached {
		t.Fatalf("traceroute failed: %+v", tr)
	}
	path := tr.Path()
	if path[0] != "r1" {
		t.Errorf("path[0] = %s", path[0])
	}
	if path[len(path)-1] != "r5" {
		t.Errorf("path end = %s", path[len(path)-1])
	}
	// Every hop resolved to a hostname, not a raw address.
	for _, p := range path {
		if strings.Contains(p, ".") {
			t.Errorf("unresolved hop %q in %v", p, path)
		}
	}
}

// §6.1: the hop path collapses to the AS path.
func TestTracerouteASPath(t *testing.T) {
	c, alloc, anm, _ := client(t)
	phy := anm.Overlay(core.OverlayPhy)
	var dst netip.Addr
	for _, e := range alloc.Table.Entries() {
		if e.Node == "r5" && !e.Loopback {
			dst = e.Addr
			break
		}
	}
	tr, err := c.RunTraceroute("r1", dst)
	if err != nil || !tr.Reached {
		t.Fatalf("%v %+v", err, tr)
	}
	asPath := tr.ASPath(func(host string) int {
		return phy.Node(graph.ID(host)).ASN()
	})
	if !reflect.DeepEqual(asPath, []int{1, 2}) {
		t.Errorf("AS path = %v, want [1 2]", asPath)
	}
	// Unknown hosts are skipped.
	empty := tr.ASPath(func(string) int { return 0 })
	if len(empty) != 0 {
		t.Errorf("unknown-only AS path = %v", empty)
	}
}

func TestParseTracerouteText(t *testing.T) {
	c := NewClient(stubTarget{}, func(a netip.Addr) string {
		if a == netip.MustParseAddr("192.168.1.34") {
			return "as300r2"
		}
		return ""
	})
	// The paper's §6.1 output snippet shape.
	text := " 1  192.168.1.34  0 ms\n 2  192.168.1.25  0 ms\n"
	tr, err := c.ParseTraceroute("as300r3", netip.MustParseAddr("192.168.1.25"), text)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Hops) != 2 || !tr.Reached {
		t.Fatalf("tr = %+v", tr)
	}
	if tr.Hops[0].Host != "as300r2" {
		t.Errorf("hop host = %q", tr.Hops[0].Host)
	}
	if got := tr.Path(); !reflect.DeepEqual(got, []string{"as300r3", "as300r2", "192.168.1.25"}) {
		t.Errorf("path = %v", got)
	}
}

type stubTarget struct{}

func (stubTarget) Exec(machine, command string) (string, error) { return "", nil }
func (stubTarget) VMNames() []string                            { return nil }

func TestOSPFAdjacencies(t *testing.T) {
	c, _, _, _ := client(t)
	adjs, err := c.OSPFAdjacencies("r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 2 {
		t.Fatalf("adjacencies = %+v", adjs)
	}
	remotes := map[string]bool{}
	for _, a := range adjs {
		remotes[a.Remote] = true
		if a.Interface == "" {
			t.Error("interface missing")
		}
	}
	if !remotes["r2"] || !remotes["r3"] {
		t.Errorf("remotes = %v", remotes)
	}
}

// E12: design-vs-measured validation — the measured OSPF graph equals the
// design overlay; a sabotaged lab is detected.
func TestE12_Validation(t *testing.T) {
	c, _, anm, l := client(t)
	measured, err := c.MeasuredOSPFGraph(l.VMNames())
	if err != nil {
		t.Fatal(err)
	}
	designed := anm.Overlay(design.OverlayOSPF).Graph()
	diff := Compare(designed, measured)
	if !diff.OK() {
		t.Fatalf("validation failed: %v", diff)
	}
	if diff.String() != "measured topology matches design" {
		t.Errorf("diff string = %q", diff.String())
	}
}

func TestValidationDetectsMissingAdjacency(t *testing.T) {
	c, _, anm, l := client(t)
	measured, err := c.MeasuredOSPFGraph(l.VMNames())
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the measurement: drop one adjacency.
	measured.RemoveEdge("r1", "r2")
	measured.AddEdge("r1", "r4") // and add a phantom one
	diff := Compare(anm.Overlay(design.OverlayOSPF).Graph(), measured)
	if diff.OK() {
		t.Fatal("sabotage undetected")
	}
	if len(diff.MissingEdges) != 1 || diff.MissingEdges[0] != [2]graph.ID{"r1", "r2"} {
		t.Errorf("missing = %v", diff.MissingEdges)
	}
	if len(diff.ExtraEdges) != 1 || diff.ExtraEdges[0] != [2]graph.ID{"r1", "r4"} {
		t.Errorf("extra = %v", diff.ExtraEdges)
	}
	if !strings.Contains(diff.String(), "1 missing edges") {
		t.Errorf("diff string = %q", diff.String())
	}
}

func TestCompareMissingNodes(t *testing.T) {
	a := graph.New()
	a.AddEdge("x", "y")
	b := graph.New()
	b.AddNode("x")
	d := Compare(a, b)
	if len(d.MissingNodes) != 1 || d.MissingNodes[0] != "y" {
		t.Errorf("missing nodes = %v", d.MissingNodes)
	}
}

func TestNilResolver(t *testing.T) {
	c := NewClient(stubTarget{}, nil)
	tr, err := c.ParseTraceroute("src", netip.MustParseAddr("10.0.0.1"), " 1  10.0.0.1  0 ms\n")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops[0].Host != "" {
		t.Error("nil resolver should yield empty hosts")
	}
	if got := tr.Path(); got[1] != "10.0.0.1" {
		t.Errorf("path falls back to address: %v", got)
	}
}

func TestBGPTableParsing(t *testing.T) {
	c, _, _, _ := client(t)
	entries, err := c.BGPTable("r5")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	foundAS1 := false
	for _, e := range entries {
		if len(e.ASPath) == 1 && e.ASPath[0] == 1 {
			foundAS1 = true
			if !e.NextHop.IsValid() {
				t.Error("next hop missing")
			}
		}
	}
	if !foundAS1 {
		t.Errorf("AS1 routes missing from r5's table: %+v", entries)
	}
}

// AS-level validation: the measured AS graph (from BGP tables) is a
// subgraph of the designed eBGP AS adjacency, and covers the ASes that
// actually carry routes.
func TestMeasuredASGraph(t *testing.T) {
	c, _, anm, l := client(t)
	phy := anm.Overlay(core.OverlayPhy)
	asnOf := func(host string) int { return phy.Node(graph.ID(host)).ASN() }
	measured, err := c.MeasuredASGraph(l.VMNames(), asnOf)
	if err != nil {
		t.Fatal(err)
	}
	// Design-side AS adjacency from the ebgp overlay.
	designed := graph.New()
	for _, e := range anm.Overlay(design.OverlayEBGP).Edges() {
		designed.AddEdge(
			graph.ID(strconv.Itoa(e.Src().ASN())),
			graph.ID(strconv.Itoa(e.Dst().ASN())))
	}
	// Measured edges must be designed edges (no phantom AS adjacency).
	for _, e := range measured.Edges() {
		if !designed.HasEdge(e.Src(), e.Dst()) {
			t.Errorf("measured AS edge %v-%v not in design", e.Src(), e.Dst())
		}
	}
	// The single inter-AS link is used in both directions.
	if !measured.HasEdge("1", "2") {
		t.Errorf("AS1-AS2 adjacency missing: %v", measured)
	}
}

// IS-IS lab validation: measured IS-IS adjacencies equal the design
// IS-IS overlay (the §7 extension closed through the §8 loop).
func TestMeasuredISISGraph(t *testing.T) {
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	in.AddEdge("r1", "r2", graph.Attrs{"type": "physical"})
	in.AddEdge("r2", "r3", graph.Attrs{"type": "physical"})
	if err := design.BuildAll(anm, design.Options{IGP: design.IGPISIS}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := compile.Compile(anm, alloc, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := render.Render(db)
	if err != nil {
		t.Fatal(err)
	}
	l, err := emul.Load(fs, "localhost", "netkit")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(0); err != nil {
		t.Fatal(err)
	}
	c := NewClient(l, nil)
	measured, err := c.MeasuredISISGraph(l.VMNames())
	if err != nil {
		t.Fatal(err)
	}
	if measured.NumEdges() != 2 || !measured.HasEdge("r1", "r2") || !measured.HasEdge("r2", "r3") {
		t.Errorf("measured isis graph wrong: %v", measured)
	}
	// The design IS-IS overlay (directed, bidirected) agrees after
	// folding to undirected form.
	designed := graph.New()
	for _, e := range anm.Overlay(design.OverlayISIS).Edges() {
		designed.AddEdge(e.SrcID(), e.DstID())
	}
	if diff := Compare(designed, measured); !diff.OK() {
		t.Errorf("isis validation failed: %v", diff)
	}
}

func loopbacks(alloc *ipalloc.Result) func(string) netip.Addr {
	byNode := map[string]netip.Addr{}
	for _, e := range alloc.Table.Entries() {
		if e.Loopback {
			byNode[string(e.Node)] = e.Addr
		}
	}
	return func(name string) netip.Addr { return byNode[name] }
}

func TestReachable(t *testing.T) {
	c, alloc, _, l := client(t)
	addrOf := loopbacks(alloc)
	ok, err := c.Reachable("r1", addrOf("r5"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("r1 -> r5 unreachable in healthy lab")
	}
	if err := l.FailNode("r5"); err != nil {
		t.Fatal(err)
	}
	ok, err = c.Reachable("r1", addrOf("r5"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("r1 -> dead r5 reachable")
	}
	if _, err := c.Reachable("ghost", addrOf("r5")); err == nil {
		t.Error("probe from unknown machine accepted")
	}
}

func TestReachabilityMatrixAndDiff(t *testing.T) {
	c, alloc, _, l := client(t)
	addrOf := loopbacks(alloc)
	names := l.VMNames()
	before, err := c.ReachabilityMatrix(names, addrOf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(before.Nodes); got != 5 {
		t.Fatalf("nodes = %v", before.Nodes)
	}
	if before.Pairs() != 20 || before.Reachable() != 20 {
		t.Errorf("baseline %d/%d reachable", before.Reachable(), before.Pairs())
	}
	if !sort.StringsAreSorted(before.Nodes) {
		t.Errorf("nodes not sorted: %v", before.Nodes)
	}

	// Nodes without a probe address are excluded, not failed.
	partial, err := c.ReachabilityMatrix(names, func(name string) netip.Addr {
		if name == "r5" {
			return netip.Addr{}
		}
		return addrOf(name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Nodes) != 4 || partial.Pairs() != 12 {
		t.Errorf("partial matrix = %v (%d pairs)", partial.Nodes, partial.Pairs())
	}

	if err := l.FailNode("r5"); err != nil {
		t.Fatal(err)
	}
	after, err := c.ReachabilityMatrix(names, addrOf)
	if err != nil {
		t.Fatal(err)
	}
	diff := DiffReachability(before, after)
	if diff.OK() {
		t.Fatal("diff missed the outage")
	}
	// Every ordered pair touching r5 is lost: 4 sources + 4 destinations.
	if len(diff.Lost) != 8 || len(diff.Gained) != 0 {
		t.Errorf("diff = %+v", diff)
	}
	for _, p := range diff.Lost {
		if p[0] != "r5" && p[1] != "r5" {
			t.Errorf("lost pair %v does not involve r5", p)
		}
	}
	if !sort.SliceIsSorted(diff.Lost, func(i, j int) bool {
		if diff.Lost[i][0] != diff.Lost[j][0] {
			return diff.Lost[i][0] < diff.Lost[j][0]
		}
		return diff.Lost[i][1] < diff.Lost[j][1]
	}) {
		t.Errorf("lost pairs not sorted: %v", diff.Lost)
	}
	if s := diff.String(); !strings.Contains(s, "8 pairs lost") {
		t.Errorf("diff string = %q", s)
	}
	// Self-diff is clean and says so.
	if d := DiffReachability(after, after); !d.OK() || d.String() != "reachability unchanged" {
		t.Errorf("self diff = %+v (%q)", d, d.String())
	}
}
