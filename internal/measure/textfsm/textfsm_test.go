package textfsm

import (
	"reflect"
	"testing"
)

const tracerouteTemplate = `Value HOP (\d+)
Value ADDRESS (\d+\.\d+\.\d+\.\d+)

Start
  ^\s*${HOP}\s+${ADDRESS} -> Record
`

func TestTracerouteTemplate(t *testing.T) {
	tpl, err := Parse(tracerouteTemplate)
	if err != nil {
		t.Fatal(err)
	}
	input := `traceroute to 192.168.1.2, 30 hops max
 1  192.168.1.34  0 ms
 2  192.168.1.25  0 ms
 3  192.168.1.82  0 ms
`
	recs, err := tpl.ParseText(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d: %v", len(recs), recs)
	}
	if recs[0]["HOP"] != "1" || recs[0]["ADDRESS"] != "192.168.1.34" {
		t.Errorf("rec[0] = %v", recs[0])
	}
	if recs[2]["ADDRESS"] != "192.168.1.82" {
		t.Errorf("rec[2] = %v", recs[2])
	}
}

func TestValueOptions(t *testing.T) {
	src := `Value Filldown INTERFACE (\S+)
Value Required NEIGHBOR (\d+\.\d+\.\d+\.\d+)

Start
  ^Interface ${INTERFACE}
  ^\s+neighbor ${NEIGHBOR} -> Record
`
	tpl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	input := `Interface eth0
  neighbor 10.0.0.1
  neighbor 10.0.0.2
Interface eth1
  neighbor 10.0.0.3
  no neighbor here
`
	recs, err := tpl.ParseText(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %v", recs)
	}
	if recs[1]["INTERFACE"] != "eth0" {
		t.Errorf("filldown failed: %v", recs[1])
	}
	if recs[2]["INTERFACE"] != "eth1" {
		t.Errorf("filldown not updated: %v", recs[2])
	}
}

func TestRequiredSuppressesEmptyRecord(t *testing.T) {
	src := `Value Required X (\d+)

Start
  ^go -> Record
  ^x=${X}
`
	tpl := MustParse(src)
	recs, err := tpl.ParseText("go\nx=5\ngo\n")
	if err != nil {
		t.Fatal(err)
	}
	// First "go" has no X captured yet -> suppressed; second has X=5.
	if len(recs) != 1 || recs[0]["X"] != "5" {
		t.Errorf("records = %v", recs)
	}
}

func TestListValues(t *testing.T) {
	src := `Value List AS_PATH (\d+)
Value PREFIX (\S+/\d+)

Start
  ^prefix ${PREFIX}
  ^as ${AS_PATH}
  ^end -> Record
`
	tpl := MustParse(src)
	recs, err := tpl.ParseText("prefix 10.0.0.0/8\nas 100\nas 200\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %v", recs)
	}
	if !reflect.DeepEqual(recs[0]["AS_PATH"], []string{"100", "200"}) {
		t.Errorf("list = %v", recs[0]["AS_PATH"])
	}
}

func TestStateTransitions(t *testing.T) {
	src := `Value NAME (\S+)

Start
  ^BEGIN -> Body

Body
  ^item ${NAME} -> Record
  ^END -> Start
`
	tpl := MustParse(src)
	recs, err := tpl.ParseText("item skipped\nBEGIN\nitem one\nitem two\nEND\nitem alsoskipped\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0]["NAME"] != "one" || recs[1]["NAME"] != "two" {
		t.Errorf("records = %v", recs)
	}
}

func TestClearAction(t *testing.T) {
	src := `Value A (\d+)

Start
  ^a=${A}
  ^reset -> Clear
  ^emit -> Record
`
	tpl := MustParse(src)
	recs, err := tpl.ParseText("a=1\nreset\nemit\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0]["A"] != "" {
		t.Errorf("clear failed: %v", recs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"Value\n\nStart\n",                              // malformed Value
		"Value Bogus X (\\d+)\n\nStart\n",               // unknown option
		"Value X \\d+\n\nStart\n",                       // unparenthesised pattern
		"Value X (\\d+)\nValue X (\\d+)\n\nStart\n",     // duplicate
		"Value X (\\d+)\n\nBody\n  ^x\n",                // no Start state
		"  ^orphan rule\n",                              // rule before state
		"Value X (\\d+)\n\nStart\n  ^${Y} -> Record\n",  // undeclared value
		"Value X (\\d+)\n\nStart\n  ^${X}[ -> Record\n", // bad regexp
		"Value X (\\d+)\n\nStart\n  ^a\nStart\n  ^b\n",  // duplicate state
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuntimeUndefinedState(t *testing.T) {
	tpl := MustParse("Value X (\\d+)\n\nStart\n  ^go -> Elsewhere\n")
	if _, err := tpl.ParseText("go\n"); err == nil {
		t.Error("undefined state transition accepted")
	}
}

func TestValueNames(t *testing.T) {
	tpl := MustParse(tracerouteTemplate)
	if !reflect.DeepEqual(tpl.ValueNames(), []string{"HOP", "ADDRESS"}) {
		t.Errorf("names = %v", tpl.ValueNames())
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	src := `Value X (\S+)

Start
  ^stop -> Record
  ^${X}
`
	tpl := MustParse(src)
	recs, err := tpl.ParseText("word\nstop\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0]["X"] != "word" {
		t.Errorf("records = %v", recs)
	}
}

func TestValuePatternWithSpaces(t *testing.T) {
	src := "Value PATH ([\\d ]*?)\n\nStart\n  ^path ${PATH}$ -> Record\n"
	tpl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tpl.ParseText("path 1 2 3\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0]["PATH"] != "1 2 3" {
		t.Errorf("records = %v", recs)
	}
	// Options still recognised before a spaced pattern.
	src2 := "Value Required PATH ([\\d ]*)\n\nStart\n  ^p ${PATH}$ -> Record\n"
	if _, err := Parse(src2); err != nil {
		t.Errorf("option + spaced pattern rejected: %v", err)
	}
}
