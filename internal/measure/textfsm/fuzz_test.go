package textfsm

import "testing"

// FuzzTextFSM: template compilation and text parsing must never panic on
// arbitrary input — a malformed template fails Parse with an error, and
// any compiled template consumes any input text in bounded time (the rule
// loop advances one input line per iteration).
func FuzzTextFSM(f *testing.F) {
	f.Add("Value HOP (\\d+)\n\nStart\n  ^\\s*${HOP} -> Record\n",
		" 1 10.0.0.1\n 2 10.0.0.2\n")
	f.Add("Value Required ADDR (\\S+)\nValue List RTT (\\d+)\n\nStart\n  ^${ADDR} ${RTT} -> Record\n",
		"a 1\nb 2\n")
	f.Add("Value Filldown IFACE (\\S+)\n\nStart\n  ^iface ${IFACE}\n  ^up -> Record Done\n\nDone\n",
		"iface eth0\nup\n")
	f.Add("Value X ([\n\nStart\n  ^${X}\n", "anything")
	f.Add("", "")
	f.Add("Start\n  ^broken -> NoSuchState\n", "broken\n")
	f.Fuzz(func(t *testing.T, tmplSrc, input string) {
		tmpl, err := Parse(tmplSrc)
		if err != nil {
			return
		}
		_, _ = tmpl.ParseText(input)
	})
}
