// Package textfsm implements the subset of Google's TextFSM template
// language the paper's measurement system uses (§5.7) to parse command
// output back into structured records. A template declares typed values and
// a state machine of regular-expression rules:
//
//	Value HOP (\d+)
//	Value ADDRESS (\d+\.\d+\.\d+\.\d+)
//
//	Start
//	  ^\s*${HOP}\s+${ADDRESS} -> Record
//
// Supported Value options: Required, Filldown, List. Supported rule
// actions: Record, Clear, Next (default), and state transitions.
package textfsm

import (
	"fmt"
	"regexp"
	"strings"
)

// Value is one declared capture.
type Value struct {
	Name     string
	Pattern  string
	Required bool
	Filldown bool
	List     bool
}

type rule struct {
	re      *regexp.Regexp
	names   []string // value names captured by this rule
	record  bool
	clear   bool
	toState string
}

// Template is a compiled TextFSM template.
type Template struct {
	values map[string]Value
	order  []string
	states map[string][]rule
}

// Record is one emitted row: value name to captured string (or []string for
// List values).
type Record map[string]any

// Parse compiles template source.
func Parse(src string) (*Template, error) {
	t := &Template{values: map[string]Value{}, states: map[string][]rule{}}
	lines := strings.Split(src, "\n")
	i := 0
	// Value declarations.
	for ; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " \r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if trimmed != "Value" && !strings.HasPrefix(trimmed, "Value ") {
			break
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 3 {
			return nil, fmt.Errorf("textfsm: malformed Value line %d: %q", i+1, trimmed)
		}
		v := Value{}
		idx := 1
		// Options are the known keywords; the first other token is the
		// value name (patterns may contain spaces, so they cannot bound
		// the scan).
	optionScan:
		for ; idx < len(fields)-1; idx++ {
			switch fields[idx] {
			case "Required":
				v.Required = true
			case "Filldown":
				v.Filldown = true
			case "List":
				v.List = true
			default:
				break optionScan
			}
		}
		if idx > len(fields)-2 {
			return nil, fmt.Errorf("textfsm: malformed Value line %d: %q", i+1, trimmed)
		}
		v.Name = fields[idx]
		pat := strings.Join(fields[idx+1:], " ")
		if !strings.HasPrefix(pat, "(") || !strings.HasSuffix(pat, ")") {
			return nil, fmt.Errorf("textfsm: Value pattern must be parenthesised on line %d: %q", i+1, pat)
		}
		v.Pattern = pat
		if _, dup := t.values[v.Name]; dup {
			return nil, fmt.Errorf("textfsm: duplicate Value %q", v.Name)
		}
		t.values[v.Name] = v
		t.order = append(t.order, v.Name)
	}
	// States.
	curState := ""
	for ; i < len(lines); i++ {
		line := strings.TrimRight(lines[i], " \r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			curState = trimmed
			if _, dup := t.states[curState]; dup {
				return nil, fmt.Errorf("textfsm: duplicate state %q", curState)
			}
			t.states[curState] = nil
			continue
		}
		if curState == "" {
			return nil, fmt.Errorf("textfsm: rule before any state on line %d", i+1)
		}
		r, err := t.compileRule(trimmed)
		if err != nil {
			return nil, fmt.Errorf("textfsm: line %d: %w", i+1, err)
		}
		t.states[curState] = append(t.states[curState], r)
	}
	if _, ok := t.states["Start"]; !ok {
		return nil, fmt.Errorf("textfsm: template has no Start state")
	}
	return t, nil
}

// MustParse panics on error; for embedded reference templates.
func MustParse(src string) *Template {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Template) compileRule(src string) (rule, error) {
	pattern := src
	action := ""
	if idx := strings.LastIndex(src, "->"); idx >= 0 {
		pattern = strings.TrimSpace(src[:idx])
		action = strings.TrimSpace(src[idx+2:])
	}
	r := rule{}
	// Substitute ${NAME} with named capture groups.
	var names []string
	expanded := pattern
	for _, name := range t.order {
		placeholder := "${" + name + "}"
		if strings.Contains(expanded, placeholder) {
			v := t.values[name]
			group := fmt.Sprintf("(?P<%s>%s)", name, v.Pattern[1:len(v.Pattern)-1])
			expanded = strings.ReplaceAll(expanded, placeholder, group)
			names = append(names, name)
		}
	}
	if strings.Contains(expanded, "${") {
		return rule{}, fmt.Errorf("rule references undeclared value: %q", pattern)
	}
	re, err := regexp.Compile(expanded)
	if err != nil {
		return rule{}, fmt.Errorf("bad rule regexp %q: %w", expanded, err)
	}
	r.re = re
	r.names = names
	for _, a := range strings.Fields(action) {
		switch a {
		case "Record":
			r.record = true
		case "Clear":
			r.clear = true
		case "Next", "":
		default:
			r.toState = a
		}
	}
	if r.toState != "" {
		if _, ok := t.states[r.toState]; !ok {
			// Allow forward references; verified at run time instead.
			_ = r.toState
		}
	}
	return r, nil
}

// ParseText runs input through the state machine, returning the emitted
// records.
func (t *Template) ParseText(input string) ([]Record, error) {
	state := "Start"
	current := t.freshRow()
	var out []Record

	emit := func() {
		// Required values must be present.
		for _, name := range t.order {
			v := t.values[name]
			if v.Required {
				if val, ok := current[name]; !ok || val == "" {
					return
				}
			}
		}
		rec := Record{}
		for _, name := range t.order {
			if v, ok := current[name]; ok {
				rec[name] = v
			} else if t.values[name].List {
				rec[name] = []string{}
			} else {
				rec[name] = ""
			}
		}
		out = append(out, rec)
		next := t.freshRow()
		// Filldown values persist.
		for _, name := range t.order {
			if t.values[name].Filldown {
				if v, ok := current[name]; ok {
					next[name] = v
				}
			}
		}
		current = next
	}

	for _, line := range strings.Split(input, "\n") {
		rules, ok := t.states[state]
		if !ok {
			return nil, fmt.Errorf("textfsm: transition to undefined state %q", state)
		}
		for _, r := range rules {
			m := r.re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for gi, gname := range r.re.SubexpNames() {
				if gname == "" || gi >= len(m) {
					continue
				}
				if t.values[gname].List {
					lst, _ := current[gname].([]string)
					current[gname] = append(lst, m[gi])
				} else {
					current[gname] = m[gi]
				}
			}
			if r.clear {
				current = t.freshRow()
			}
			if r.record {
				emit()
			}
			if r.toState != "" {
				state = r.toState
			}
			break // first matching rule wins
		}
	}
	return out, nil
}

func (t *Template) freshRow() map[string]any {
	row := map[string]any{}
	for _, name := range t.order {
		if t.values[name].List {
			row[name] = []string{}
		}
	}
	return row
}

// ValueNames returns the declared value names in order.
func (t *Template) ValueNames() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}
