package compile

import (
	"bytes"
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/design"
	"autonetkit/internal/obs"
)

func TestModelDigestStableAndSelective(t *testing.T) {
	anm1, alloc1, _ := pipeline(t, nil, Options{}, design.Options{})
	anm2, alloc2, _ := pipeline(t, nil, Options{}, design.Options{})
	d1 := ModelDigest(anm1, alloc1, Options{})
	d2 := ModelDigest(anm2, alloc2, Options{})
	if d1 != d2 {
		t.Fatal("two identical pipelines produced different model digests")
	}

	// Any model edit — even one only a couple of devices depend on — must
	// move the whole-build digest.
	anm1.Overlay(design.OverlayOSPF).Edge("r1", "r2").Set(design.AttrCost, 42)
	if ModelDigest(anm1, alloc1, Options{}) == d2 {
		t.Error("OSPF edge edit did not move the model digest")
	}
	// Options that flow into records are part of the key.
	if ModelDigest(anm2, alloc2, Options{ZebraPassword: "sekrit"}) == d2 {
		t.Error("option change did not move the model digest")
	}
}

func TestBuildBlobRoundTrip(t *testing.T) {
	store := cache.NewMemory()
	_, _, db := pipeline(t, nil, Options{Cache: store}, design.Options{})

	blob, err := encodeDB(db)
	if err != nil {
		t.Fatalf("encodeDB: %v", err)
	}
	restored, err := decodeDB(blob)
	if err != nil {
		t.Fatalf("decodeDB: %v", err)
	}
	wantJSON, _ := db.MarshalJSON()
	gotJSON, _ := restored.MarshalJSON()
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Error("restored database serialises differently from the original")
	}
	if got, want := len(restored.Links()), len(db.Links()); got != want {
		t.Errorf("restored %d links, want %d", got, want)
	}
	for _, key := range db.LabKeys() {
		if len(restored.LabKeys()) == 0 {
			t.Fatalf("restored database lost lab data for %s", key)
		}
	}
	for _, d := range db.Devices() {
		r := restored.Device(d.ID)
		if r == nil {
			t.Fatalf("restored database lost device %s", d.ID)
		}
		if r.Digest != d.Digest {
			t.Errorf("device %s lost its compile digest across the round trip", d.ID)
		}
	}
}

func TestBuildCacheCorruptBlobFallsBackToDeviceTier(t *testing.T) {
	store := cache.NewMemory()
	anm, alloc, dbCold := pipeline(t, nil, Options{Cache: store}, design.Options{})

	// Poison only the whole-build blob; the per-device entries stay intact.
	dig := ModelDigest(anm, alloc, Options{})
	store.Put(buildCacheKey(dig), []byte("not a database"))

	col := obs.NewCollector()
	dbWarm, err := Compile(anm, alloc, Options{Cache: store, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	c := col.Snapshot().Counters
	if c[obs.CounterCompileCacheHits] != int64(dbWarm.Len()) || c[obs.CounterCompileCacheMisses] != 0 {
		t.Errorf("device-tier fallback hits/misses = %d/%d, want %d/0",
			c[obs.CounterCompileCacheHits], c[obs.CounterCompileCacheMisses], dbWarm.Len())
	}
	if c[obs.CounterDevicesCompiled] != 0 {
		t.Errorf("fallback compiled %d devices, want 0", c[obs.CounterDevicesCompiled])
	}
	wantJSON, _ := dbCold.MarshalJSON()
	gotJSON, _ := dbWarm.MarshalJSON()
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Error("fallback build serialises differently from the cold build")
	}

	// The fallback build re-stores a good blob: the next compile restores
	// the whole build in one step.
	col2 := obs.NewCollector()
	db3, err := Compile(anm, alloc, Options{Cache: store, Obs: col2})
	if err != nil {
		t.Fatal(err)
	}
	c2 := col2.Snapshot().Counters
	if c2[obs.CounterCompileCacheHits] != int64(db3.Len()) || c2[obs.CounterCompileCacheMisses] != 0 {
		t.Errorf("whole-build hits/misses = %d/%d, want %d/0",
			c2[obs.CounterCompileCacheHits], c2[obs.CounterCompileCacheMisses], db3.Len())
	}
}
