package compile

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/nidb"
)

// pipeline builds fig5 input -> overlays -> allocation -> NIDB.
func pipeline(t *testing.T, mutate func(in *core.Overlay), opts Options, dopts design.Options) (*core.ANM, *ipalloc.Result, *nidb.DB) {
	t.Helper()
	anm := core.NewANM()
	in, err := anm.AddOverlay(core.OverlayInput)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []struct {
		id  graph.ID
		asn int
	}{{"r1", 1}, {"r2", 1}, {"r3", 1}, {"r4", 1}, {"r5", 2}} {
		in.AddNode(n.id, graph.Attrs{core.AttrASN: n.asn, core.AttrDeviceType: core.DeviceRouter})
	}
	for _, e := range [][2]graph.ID{{"r1", "r2"}, {"r1", "r3"}, {"r2", "r4"}, {"r3", "r4"}, {"r3", "r5"}, {"r4", "r5"}} {
		in.AddEdge(e[0], e[1], graph.Attrs{"type": "physical"})
	}
	if mutate != nil {
		mutate(in)
	}
	if err := design.BuildAll(anm, dopts); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Compile(anm, alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return anm, alloc, db
}

func TestCompileBasics(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	if db.Len() != 5 {
		t.Fatalf("devices = %d", db.Len())
	}
	d := db.Device("r1")
	if d.GetString("hostname", "") != "r1" {
		t.Errorf("hostname = %q", d.GetString("hostname", ""))
	}
	if d.GetString("zebra.password", "") != "1234" {
		t.Errorf("password default wrong")
	}
	if d.GetInt("asn", 0) != 1 {
		t.Errorf("asn wrong")
	}
	if d.GetString("platform", "") != "netkit" || d.GetString("syntax", "") != "quagga" {
		t.Errorf("platform/syntax defaults wrong")
	}
	if d.GetString("render.base", "") != "templates/quagga" {
		t.Errorf("render.base = %q", d.GetString("render.base", ""))
	}
	if d.GetString("render.dst_folder", "") != "localhost/netkit/r1" {
		t.Errorf("dst_folder = %q", d.GetString("render.dst_folder", ""))
	}
}

func TestCompileInterfaces(t *testing.T) {
	_, alloc, db := pipeline(t, nil, Options{}, design.Options{})
	d := db.Device("r3") // r3 has 3 links
	ifaces, _ := d.Get("interfaces")
	list := ifaces.([]any)
	if len(list) != 3 {
		t.Fatalf("r3 interfaces = %d, want 3", len(list))
	}
	ids := map[string]bool{}
	for i, ifc := range list {
		m := ifc.(map[string]any)
		want := fmt.Sprintf("eth%d", i)
		if m["id"] != want {
			t.Errorf("iface %d id = %v, want %s", i, m["id"], want)
		}
		ids[fmt.Sprint(m["id"])] = true
		addr := m["ip_address"].(netip.Addr)
		network := m["network"].(netip.Prefix)
		if !network.Contains(addr) {
			t.Errorf("iface addr %v outside %v", addr, network)
		}
		if !strings.HasPrefix(fmt.Sprint(m["description"]), "r3 to ") {
			t.Errorf("description = %v", m["description"])
		}
	}
	if len(ids) != 3 {
		t.Error("duplicate interface names")
	}
	// Loopback present.
	lb, ok := d.Get("loopback.ip")
	if !ok {
		t.Fatal("no loopback")
	}
	if lb.(netip.Addr) != alloc.Overlay.Node("r3").Get(ipalloc.AttrLoopback).(netip.Addr) {
		t.Error("loopback mismatch with allocation")
	}
}

func TestCompileOSPF(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	d := db.Device("r1")
	if d.GetInt("ospf.process_id", 0) != 1 {
		t.Error("process id wrong")
	}
	links, _ := d.Get("ospf.ospf_links")
	list := links.([]any)
	// r1: two intra-AS attachments + loopback = 3 networks.
	if len(list) != 3 {
		t.Fatalf("r1 ospf links = %d, want 3", len(list))
	}
	last := list[len(list)-1].(map[string]any)
	if last["network"].(netip.Prefix).Bits() != 32 {
		t.Error("loopback stub network missing or not /32")
	}
	// r5 (AS2, only inter-AS links): 2 passive inter-AS stubs + loopback.
	d5 := db.Device("r5")
	links5, _ := d5.Get("ospf.ospf_links")
	if n := len(links5.([]any)); n != 3 {
		t.Errorf("r5 ospf links = %d, want 3", n)
	}
	for _, l := range links5.([]any) {
		m := l.(map[string]any)
		if m["network"].(netip.Prefix).Bits() != 32 && m["passive"] != true {
			t.Errorf("r5 inter-AS link not passive: %v", m)
		}
	}
}

func TestOSPFMarksInterASNetworksPassive(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	d := db.Device("r3")
	links, _ := d.Get("ospf.ospf_links")
	// r3 has 2 intra-AS cds + 1 inter-AS cd (passive stub) + loopback.
	if n := len(links.([]any)); n != 4 {
		t.Errorf("r3 ospf links = %d, want 4", n)
	}
	passives, _ := d.Get("ospf.passive_interfaces")
	if n := len(passives.([]any)); n != 1 {
		t.Errorf("r3 passive interfaces = %d, want 1 (the r5-facing one)", n)
	}
	npassive := 0
	for _, l := range links.([]any) {
		if l.(map[string]any)["passive"] == true {
			npassive++
		}
	}
	if npassive != 1 {
		t.Errorf("r3 passive links = %d, want 1", npassive)
	}
}

func TestCompileBGP(t *testing.T) {
	_, alloc, db := pipeline(t, nil, Options{}, design.Options{})
	d := db.Device("r3")
	if d.GetInt("bgp.asn", 0) != 1 {
		t.Error("bgp asn wrong")
	}
	// eBGP: r3 has one session to r5; neighbor IP is r5's address on the
	// shared collision domain.
	eNbrs, _ := d.Get("bgp.ebgp_neighbors")
	eList := eNbrs.([]any)
	if len(eList) != 1 {
		t.Fatalf("r3 ebgp neighbors = %d, want 1", len(eList))
	}
	nbr := eList[0].(map[string]any)
	if nbr["remote_asn"] != 2 {
		t.Errorf("remote asn = %v", nbr["remote_asn"])
	}
	addr := nbr["ip"].(netip.Addr)
	if alloc.Table.HostForIP(addr) != "r5" {
		t.Errorf("ebgp neighbor ip %v does not belong to r5", addr)
	}
	// iBGP: full mesh, 3 neighbors in AS1, sessions to loopbacks.
	iNbrs, _ := d.Get("bgp.ibgp_neighbors")
	iList := iNbrs.([]any)
	if len(iList) != 3 {
		t.Fatalf("r3 ibgp neighbors = %d, want 3", len(iList))
	}
	for _, x := range iList {
		m := x.(map[string]any)
		if m["remote_asn"] != 1 {
			t.Errorf("ibgp remote asn = %v", m["remote_asn"])
		}
		lb := m["ip"].(netip.Addr)
		e, ok := alloc.Table.Lookup(lb)
		if !ok || !e.Loopback {
			t.Errorf("ibgp neighbor %v is not a loopback", lb)
		}
		if m["rr_client"] != false {
			t.Error("full mesh should have no rr clients")
		}
	}
	// Advertised networks: AS1 block + own loopback.
	nets, _ := d.Get("bgp.networks")
	nList := nets.([]any)
	if len(nList) != 2 {
		t.Fatalf("bgp networks = %v", nList)
	}
	if nList[0].(netip.Prefix) != alloc.InfraBlocks[1] {
		t.Errorf("first network = %v, want AS block %v", nList[0], alloc.InfraBlocks[1])
	}
}

func TestCompileBGPRouteReflectors(t *testing.T) {
	_, _, db := pipeline(t, func(in *core.Overlay) {
		in.Node("r1").MustSet(design.AttrRR, true)
	}, Options{}, design.Options{RouteReflectors: true})
	d1 := db.Device("r1")
	if v, _ := d1.Get("bgp.route_reflector"); v != true {
		t.Error("r1 not marked route reflector")
	}
	iNbrs, _ := d1.Get("bgp.ibgp_neighbors")
	clients := 0
	for _, x := range iNbrs.([]any) {
		if x.(map[string]any)["rr_client"] == true {
			clients++
		}
	}
	if clients != 3 {
		t.Errorf("r1 rr clients = %d, want 3", clients)
	}
	d2 := db.Device("r2")
	if v, _ := d2.Get("bgp.route_reflector"); v == true {
		t.Error("client marked as rr")
	}
	iNbrs2, _ := d2.Get("bgp.ibgp_neighbors")
	if n := len(iNbrs2.([]any)); n != 1 {
		t.Errorf("client sessions = %d, want 1 (to the rr)", n)
	}
}

func TestCompileISIS(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{ISIS: true})
	d := db.Device("r1")
	net := d.GetString("isis.net", "")
	if !strings.HasPrefix(net, "49.0001.") || !strings.HasSuffix(net, ".00") {
		t.Errorf("isis net = %q", net)
	}
	ifaces, _ := d.Get("isis.interfaces")
	// r1's two intra-AS interfaces plus the loopback.
	if n := len(ifaces.([]any)); n != 3 {
		t.Errorf("isis interfaces = %d, want 3", n)
	}
	list := ifaces.([]any)
	if list[len(list)-1] != "lo" {
		t.Errorf("loopback not enabled in IS-IS: %v", list)
	}
	// Quagga daemons include isisd.
	daemons, _ := d.Get("quagga.daemons")
	names := []string{}
	for _, x := range daemons.([]any) {
		names = append(names, fmt.Sprint(x.(map[string]any)["name"]))
	}
	if !strings.Contains(strings.Join(names, ","), "isisd") {
		t.Errorf("daemons = %v", names)
	}
}

func TestQuaggaDaemons(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	d := db.Device("r1")
	daemons, _ := d.Get("quagga.daemons")
	list := daemons.([]any)
	if len(list) != 3 { // zebra, ospfd, bgpd
		t.Errorf("daemons = %v", list)
	}
}

func TestNetkitLab(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	lab := db.Lab("localhost", "netkit")
	machines := lab["machines"].([]any)
	if len(machines) != 5 {
		t.Fatalf("lab machines = %d", len(machines))
	}
	cds := lab["collision_domains"].([]any)
	if len(cds) != 6 {
		t.Errorf("lab collision domains = %d, want 6", len(cds))
	}
	if lab["tap_host"].(netip.Addr).String() != "172.16.0.1" {
		t.Errorf("tap host = %v", lab["tap_host"])
	}
	// Every machine has a distinct tap IP.
	seen := map[string]bool{}
	for _, m := range machines {
		tap := m.(map[string]any)["tap"].(map[string]any)
		ip := fmt.Sprint(tap["ip"])
		if seen[ip] {
			t.Errorf("tap ip %s duplicated", ip)
		}
		seen[ip] = true
	}
}

func TestLinksRecorded(t *testing.T) {
	_, _, db := pipeline(t, nil, Options{}, design.Options{})
	links := db.Links()
	if len(links) != 6 {
		t.Fatalf("links = %d, want 6", len(links))
	}
	for _, l := range links {
		if l.AIface == "" || l.BIface == "" {
			t.Errorf("link %v missing iface names", l)
		}
	}
}

func TestMultiPlatformCompile(t *testing.T) {
	for _, tc := range []struct{ platform, syntax, iface string }{
		{"dynagen", "ios", "f0/0"},
		{"junosphere", "junos", "em0"},
		{"cbgp", "cbgp", "if0"},
	} {
		_, _, db := pipeline(t, func(in *core.Overlay) {
			for _, n := range in.Nodes() {
				n.MustSet(core.AttrPlatform, tc.platform)
				n.MustSet(core.AttrSyntax, tc.syntax)
			}
		}, Options{}, design.Options{})
		d := db.Device("r1")
		ifaces, _ := d.Get("interfaces")
		if got := fmt.Sprint(ifaces.([]any)[0].(map[string]any)["id"]); got != tc.iface {
			t.Errorf("%s: first iface = %q, want %q", tc.platform, got, tc.iface)
		}
		if d.GetString("render.base", "") != "templates/"+tc.syntax {
			t.Errorf("%s: render base = %q", tc.syntax, d.GetString("render.base", ""))
		}
	}
}

func TestHostnameSanitization(t *testing.T) {
	cases := []struct {
		p    Platform
		in   string
		want string
	}{
		{NetkitPlatform{}, "AS100.R1 (core)", "as100r1core"},
		{DynagenPlatform{}, "r_1", "r-1"},
		{JunospherePlatform{}, "r1!", "r1"},
		{CBGPPlatform{}, "", "device"},
	}
	for _, c := range cases {
		if got := c.p.SanitizeHostname(c.in); got != c.want {
			t.Errorf("%s.Sanitize(%q) = %q, want %q", c.p.Name(), c.in, got, c.want)
		}
	}
}

func TestUnknownPlatformSyntax(t *testing.T) {
	anm := core.NewANM()
	in, _ := anm.AddOverlay(core.OverlayInput)
	in.AddNode("r1", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter, core.AttrPlatform: "exotic"})
	in.AddNode("r2", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceRouter})
	in.AddEdge("r1", "r2")
	if err := design.BuildAll(anm, design.Options{}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ipalloc.NewDefault().Allocate(anm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(anm, alloc, Options{}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := PlatformFor("exotic"); err == nil {
		t.Error("PlatformFor(exotic) should fail")
	}
	if _, err := SyntaxFor("exotic"); err == nil {
		t.Error("SyntaxFor(exotic) should fail")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(core.NewANM(), nil, Options{}); err == nil {
		t.Error("nil alloc accepted")
	}
	anm := core.NewANM()
	if _, err := Compile(anm, &ipalloc.Result{}, Options{}); err == nil {
		t.Error("empty phy accepted")
	}
}

func TestRegistries(t *testing.T) {
	if got := Platforms(); len(got) < 4 {
		t.Errorf("platforms = %v", got)
	}
	if got := Syntaxes(); len(got) < 4 {
		t.Errorf("syntaxes = %v", got)
	}
}

func TestIsisNET(t *testing.T) {
	got := isisNET(100, netip.MustParseAddr("10.0.0.3"))
	if got != "49.0064.0100.0000.0003.00" {
		t.Errorf("isisNET = %q", got)
	}
}

func TestServersCompiledWithoutProtocols(t *testing.T) {
	_, _, db := pipeline(t, func(in *core.Overlay) {
		in.AddNode("srv", graph.Attrs{core.AttrASN: 1, core.AttrDeviceType: core.DeviceServer})
		in.AddEdge("srv", "r1", graph.Attrs{"type": "physical"})
	}, Options{}, design.Options{})
	d := db.Device("srv")
	if d == nil {
		t.Fatal("server not compiled")
	}
	if _, ok := d.Get("ospf"); ok {
		t.Error("server has ospf block")
	}
	if _, ok := d.Get("bgp"); ok {
		t.Error("server has bgp block")
	}
	ifaces, _ := d.Get("interfaces")
	if len(ifaces.([]any)) != 1 {
		t.Error("server interface missing")
	}
}

// Compiling with one worker and with many yields the same Resource
// Database: same device order, same serialised trees, same links.
func TestCompileWorkersDeterministic(t *testing.T) {
	anm, alloc, _ := pipeline(t, nil, Options{}, design.Options{})
	serial, err := Compile(anm, alloc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Compile(anm, alloc, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := serial.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Error("Workers=1 and Workers=8 databases differ")
	}
}

// A cancelled context aborts the per-device fan-out.
func TestCompileContextCancelled(t *testing.T) {
	anm, alloc, _ := pipeline(t, nil, Options{}, design.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileContext(ctx, anm, alloc, Options{Workers: 4}); err == nil {
		t.Fatal("cancelled compile succeeded")
	}
}

// The first failing device cancels the rest and surfaces its error.
func TestCompileFirstErrorWins(t *testing.T) {
	anm, alloc, _ := pipeline(t, nil, Options{}, design.Options{})
	anm.Overlay(core.OverlayPhy).Node("r2").Set(core.AttrSyntax, "bogus")
	_, err := Compile(anm, alloc, Options{Workers: 8})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("got %v, want bogus-syntax error", err)
	}
}
