package compile

import (
	"autonetkit/internal/cache"
	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
)

// compileDigestTag versions the compile digest space. Bump it whenever
// compileDevice starts reading a model input this digest does not cover —
// stale entries then miss instead of resurrecting records built under the
// old dependency set.
const compileDigestTag = "ank/compile/v1"

// DeviceDigest returns the content address of every model input
// compileDevice reads for node id: the compile options, the device's
// AS infrastructure block, its node slice of every overlay (attributes
// plus incident edges, in deterministic order), its protocol peers'
// overlay attributes and loopbacks, and the two-hop collision-domain
// closure in the allocated ipv4 overlay (domain attributes, ordered
// member lists, member addresses and the protocol edges crossing each
// domain). Two builds whose digests agree for a device produce an
// identical Resource-Database record for it, so the record — and every
// file rendered from it — can be reused.
func DeviceDigest(anm *core.ANM, alloc *ipalloc.Result, opts Options, id graph.ID) cache.Digest {
	opts.fill()
	h := cache.NewHasher(compileDigestTag)

	// Compile options that flow into device records.
	h.Str(opts.ZebraPassword, opts.DefaultPlatform, opts.DefaultSyntax, opts.DefaultHost)
	h.Int(opts.OSPFProcessID)
	h.Str(string(id))

	// The AS infrastructure block feeds bgp.networks.
	phy := anm.Overlay(core.OverlayPhy)
	asn := phy.Node(id).ASN()
	h.Int(asn)
	if block, ok := alloc.InfraBlocks[asn]; ok {
		h.Str("infra")
		h.Value(block)
	}

	ipOverlay := alloc.Overlay
	ipg := ipOverlay.Graph()
	names := anm.OverlayNames()

	// Per-overlay node slice: overlay identity and shape, overlay-level
	// data, the node's own attributes and incident edges, and — for
	// protocol overlays — each peer's overlay attributes and loopback
	// (compileBGP reads peer ASN, session attributes and peer loopbacks).
	for _, name := range names {
		ov := anm.Overlay(name)
		g := ov.Graph()
		h.Str("overlay", name)
		h.Bool(g.Directed())
		h.Attrs(g.Attrs())
		graph.WriteNodeSignature(h, g, id)
		// Peer node state is only read through the directed session
		// overlays (compileBGP: peer ASN and loopback); undirected protocol
		// overlays contribute through edges and the CD closure alone, so
		// hashing their peers' attributes here would over-invalidate.
		if !g.Directed() {
			continue
		}
		for _, peer := range g.Neighbors(id) {
			h.Str("peer", string(peer))
			if pn := g.Node(peer); pn != nil {
				h.Attrs(pn.Attrs())
			}
			if lo := ipg.Node(peer); lo != nil {
				h.Str("peer-lo")
				h.Value(lo.Attrs()[ipalloc.AttrLoopback])
			}
		}
	}

	// The allocated ipv4 overlay may not be registered in the ANM's
	// overlay list; hash the node's slice of it explicitly (interface
	// order, addresses and loopback all come from here).
	h.Str("overlay", "ipv4-alloc")
	h.Attrs(ipg.Attrs())
	graph.WriteNodeSignature(h, ipg, id)

	// Two-hop collision-domain closure: compileInterfaces, the OSPF/ISIS
	// compilers and the eBGP session builder all read the members of each
	// attached domain — their order (interface descriptions), their
	// addresses on the domain (eBGP neighbor IPs), their ASN and device
	// type (intra-AS and gateway decisions) and the protocol edges between
	// this node and each co-member (OSPF cost and area).
	for _, cdID := range ipg.Neighbors(id) {
		cdNode := ipg.Node(cdID)
		if cdNode == nil {
			continue
		}
		if dt, _ := cdNode.Get(core.AttrDeviceType).(string); dt != core.DeviceCollisionDomain {
			continue
		}
		h.Str("cd", string(cdID))
		h.Attrs(cdNode.Attrs())
		for _, m := range ipg.Neighbors(cdID) {
			if m == id {
				continue
			}
			h.Str("member", string(m))
			if e := ipg.Edge(cdID, m); e != nil {
				h.Attrs(e.Attrs())
			}
			if mn := ipg.Node(m); mn != nil {
				h.Attrs(mn.Attrs())
			}
			if pn := phy.Graph().Node(m); pn != nil {
				h.Value(pn.Attrs()[core.AttrASN])
				h.Value(pn.Attrs()[core.AttrDeviceType])
			}
			for _, name := range names {
				og := anm.Overlay(name).Graph()
				if e := og.Edge(id, m); e != nil {
					h.Str("cd-edge", name)
					h.Attrs(e.Attrs())
				}
				if og.Directed() {
					if e := og.Edge(m, id); e != nil {
						h.Str("cd-edge-in", name)
						h.Attrs(e.Attrs())
					}
				}
			}
		}
	}
	return h.Sum()
}
