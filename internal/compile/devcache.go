package compile

import (
	"fmt"

	"autonetkit/internal/cache"
	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
)

// compileOrReuse compiles one device, consulting the incremental cache
// when configured: a stored record under the device's input digest is
// decoded and reused; otherwise the device compiles normally and its
// record is stored for the next build. Records are cached *before* lab
// finalisation mutates them (FinalizeLab assigns index-dependent state
// such as tap addresses and always reruns), so a reused record is exactly
// what a cold compile of the same inputs would have produced at this
// point in the pipeline.
func (c *compiler) compileOrReuse(n core.NodeView) (*nidb.Device, error) {
	store := c.opts.Cache
	if store == nil {
		d, err := c.compileDevice(n)
		if err == nil {
			c.opts.Obs.Add(obs.CounterDevicesCompiled, 1)
		}
		return d, err
	}
	dig := DeviceDigest(c.anm, c.alloc, c.opts, n.ID())
	if data, ok := store.Get(dig); ok {
		if d, err := decodeDevice(n.ID(), data); err == nil {
			d.Digest = dig
			c.opts.Obs.Add(obs.CounterCacheHits, 1)
			c.opts.Obs.Add(obs.CounterCompileCacheHits, 1)
			c.opts.Obs.Add(obs.CounterCacheBytes, int64(len(data)))
			return d, nil
		}
		// Undecodable entries (version skew, corruption past the store's
		// checksum) degrade to a recompile below.
	}
	c.opts.Obs.Add(obs.CounterCacheMisses, 1)
	c.opts.Obs.Add(obs.CounterCompileCacheMisses, 1)
	d, err := c.compileDevice(n)
	if err != nil {
		return nil, err
	}
	d.Digest = dig
	c.opts.Obs.Add(obs.CounterDevicesCompiled, 1)
	if data, err := encodeDevice(d); err == nil {
		// Encoding failures mean the record holds a value outside the
		// codec's closed type set: the device simply stays uncacheable.
		store.Put(dig, data)
	}
	return d, nil
}

// encodeDevice canonically serialises a device record for the cache. It
// is strict — any value the codec cannot round-trip exactly makes the
// device uncacheable rather than risking a lossy restore.
func encodeDevice(d *nidb.Device) ([]byte, error) {
	return cache.EncodeValue(d.Data)
}

// decodeDevice restores a cached record. Each call decodes fresh maps and
// slices, so reused records never alias between builds (FinalizeLab
// mutates them after installation).
func decodeDevice(id graph.ID, data []byte) (*nidb.Device, error) {
	v, err := cache.DecodeValue(data)
	if err != nil {
		return nil, err
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("compile: cached record for %s is %T, not a map", id, v)
	}
	return &nidb.Device{ID: id, Data: m}, nil
}
