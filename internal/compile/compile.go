// Package compile condenses the ANM's overlay graphs into the per-device
// Resource Database (paper §5.4): "the compiler combines both the inbuilt
// and user-defined overlay topology graphs into a single device-level
// topology, to push into the text-based templates". It is split, as in the
// paper, into platform compilers (interface naming, management addressing,
// lab files — see platform.go) and device-syntax compilers (per-language
// finalisation — see syntax.go), both user-extensible via registries.
package compile

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync"

	"autonetkit/internal/cache"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
)

// Options parameterises compilation.
type Options struct {
	// ZebraPassword is the telnet password written into Quagga configs
	// (paper listing: "1234").
	ZebraPassword string
	// OSPFProcessID is the OSPF process number (default 1).
	OSPFProcessID int
	// DefaultPlatform applies to nodes lacking a platform attribute.
	DefaultPlatform string
	// DefaultSyntax applies to nodes lacking a syntax attribute.
	DefaultSyntax string
	// DefaultHost applies to nodes lacking a host attribute.
	DefaultHost string
	// Workers bounds the per-device compile fan-out. 0 (the default) uses
	// GOMAXPROCS; 1 compiles serially. Output is byte-identical at every
	// setting: devices compile independently and are merged into the
	// Resource Database in physical-overlay node order.
	Workers int
	// Cache, when non-nil, is the incremental build store: devices whose
	// input digest (DeviceDigest) matches a stored entry reuse their prior
	// Resource-Database record instead of recompiling. Output is
	// byte-identical at every cache state; lab finalisation always reruns
	// because it depends on the full device set.
	Cache *cache.Store
	// Obs, when non-nil, receives timing spans and work counters.
	Obs *obs.Collector
}

func (o *Options) fill() {
	if o.ZebraPassword == "" {
		o.ZebraPassword = "1234"
	}
	if o.OSPFProcessID == 0 {
		o.OSPFProcessID = 1
	}
	if o.DefaultPlatform == "" {
		o.DefaultPlatform = "netkit"
	}
	if o.DefaultSyntax == "" {
		o.DefaultSyntax = "quagga"
	}
	if o.DefaultHost == "" {
		o.DefaultHost = "localhost"
	}
}

// Compile builds the Resource Database from the model's overlays and the IP
// allocation.
func Compile(anm *core.ANM, alloc *ipalloc.Result, opts Options) (*nidb.DB, error) {
	return CompileContext(context.Background(), anm, alloc, opts)
}

// CompileContext is Compile with cancellation: per-device compilation fans
// out across opts.Workers goroutines, and the first error (or ctx
// cancellation) cancels the remaining work.
func CompileContext(ctx context.Context, anm *core.ANM, alloc *ipalloc.Result, opts Options) (*nidb.DB, error) {
	opts.fill()
	phy := anm.Overlay(core.OverlayPhy)
	if phy == nil || phy.NumNodes() == 0 {
		return nil, fmt.Errorf("compile: physical overlay missing or empty")
	}
	if alloc == nil || alloc.Overlay == nil {
		return nil, fmt.Errorf("compile: IP allocation result required")
	}

	// Whole-build fast path: one linear hash of the entire model, and on a
	// hit the finished (post-finalisation) database is restored from a
	// single blob — no per-device digests, compilation or lab finalisation.
	// A miss falls through to the per-device incremental path below, which
	// still reuses every unchanged device, then stores the finished build.
	var modelDig cache.Digest
	if opts.Cache != nil {
		modelDig = ModelDigest(anm, alloc, opts)
		if db, ok := lookupBuild(opts.Cache, modelDig, opts.Obs); ok {
			return db, nil
		}
	}

	db := nidb.New()
	c := &compiler{anm: anm, alloc: alloc, opts: opts, db: db}
	if err := c.run(ctx); err != nil {
		return nil, err
	}
	if opts.Cache != nil {
		db.ModelDigest = modelDig
		storeBuild(opts.Cache, modelDig, db)
	}
	return db, nil
}

type compiler struct {
	anm   *core.ANM
	alloc *ipalloc.Result
	opts  Options
	db    *nidb.DB

	// neighborIP[a][b] is b's interface address on a collision domain
	// shared with a, used to form eBGP sessions.
	neighborIP map[graph.ID]map[graph.ID]netip.Addr
	// sharedCD[a][b] is that collision domain's id.
	sharedCD map[graph.ID]map[graph.ID]graph.ID
}

func (c *compiler) run(ctx context.Context) error {
	idxSpan := c.opts.Obs.StartSpan("index")
	c.indexCollisionDomains()
	idxSpan.End()
	phy := c.anm.Overlay(core.OverlayPhy)

	// Collect the compilable devices in physical-overlay order — this order
	// defines the Resource Database's (and so every downstream artifact's)
	// iteration order, regardless of worker count.
	var nodes []core.NodeView
	for _, n := range phy.Nodes() {
		dt := n.DeviceType()
		if dt == core.DeviceRouter || dt == core.DeviceServer {
			nodes = append(nodes, n)
		}
	}

	devSpan := c.opts.Obs.StartSpan("devices")
	devices, err := c.compileDevices(ctx, nodes)
	devSpan.End()
	if err != nil {
		return err
	}

	// Merge serially in node order and group devices per (host, platform)
	// for lab finalisation.
	type hostPlat struct{ host, platform string }
	placement := map[hostPlat][]*nidb.Device{}
	var placementOrder []hostPlat
	for _, d := range devices {
		c.db.InstallDevice(d)
		hp := hostPlat{d.GetString("host", ""), d.GetString("platform", "")}
		if _, ok := placement[hp]; !ok {
			placementOrder = append(placementOrder, hp)
		}
		placement[hp] = append(placement[hp], d)
	}

	c.recordLinks()

	labSpan := c.opts.Obs.StartSpan("labs")
	defer labSpan.End()
	sort.Slice(placementOrder, func(i, j int) bool {
		if placementOrder[i].host != placementOrder[j].host {
			return placementOrder[i].host < placementOrder[j].host
		}
		return placementOrder[i].platform < placementOrder[j].platform
	})
	for _, hp := range placementOrder {
		plat, err := PlatformFor(hp.platform)
		if err != nil {
			return err
		}
		if err := plat.FinalizeLab(c.db, hp.host, placement[hp]); err != nil {
			return fmt.Errorf("compile: lab for %s/%s: %w", hp.host, hp.platform, err)
		}
		c.opts.Obs.Add(obs.CounterLabsFinalized, 1)
	}
	return nil
}

// workerCount resolves a Workers option against the job count.
func workerCount(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// compileDevices fans the per-device compilation out across the worker
// pool. Results land in a slice indexed like nodes, so the caller merges
// them in deterministic order; the first error cancels the remaining work.
func (c *compiler) compileDevices(ctx context.Context, nodes []core.NodeView) ([]*nidb.Device, error) {
	out := make([]*nidb.Device, len(nodes))
	workers := workerCount(c.opts.Workers, len(nodes))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d, err := c.compileOrReuse(nodes[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = d
			}
		}()
	}
feed:
	for i := range nodes {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compileDevice builds one device's Resource-Database record. It only reads
// the shared model (overlays, allocation, collision-domain indexes) and
// writes the returned record, so many devices compile concurrently.
func (c *compiler) compileDevice(n core.NodeView) (*nidb.Device, error) {
	dt := n.DeviceType()
	platName := n.GetString(core.AttrPlatform, c.opts.DefaultPlatform)
	synName := n.GetString(core.AttrSyntax, c.opts.DefaultSyntax)
	host := n.GetString(core.AttrHost, c.opts.DefaultHost)
	plat, err := PlatformFor(platName)
	if err != nil {
		return nil, err
	}
	syn, err := SyntaxFor(synName)
	if err != nil {
		return nil, err
	}
	d := nidb.NewDevice(n.ID())
	hostname := plat.SanitizeHostname(n.Label())
	d.MustSet("hostname", hostname)
	d.MustSet("label", n.Label())
	d.MustSet("device_type", dt)
	d.MustSet("asn", n.ASN())
	d.MustSet("platform", platName)
	d.MustSet("syntax", synName)
	d.MustSet("host", host)

	if err := c.compileInterfaces(d, n, plat); err != nil {
		return nil, err
	}
	if dt == core.DeviceServer {
		if err := c.compileServerGateway(d, n); err != nil {
			return nil, err
		}
	}
	if dt == core.DeviceRouter {
		if err := c.compileZebra(d, hostname); err != nil {
			return nil, err
		}
		if err := c.compileOSPF(d, n); err != nil {
			return nil, err
		}
		if err := c.compileBGP(d, n); err != nil {
			return nil, err
		}
		if err := c.compileISIS(d, n); err != nil {
			return nil, err
		}
	}
	// Render metadata (§5.5).
	d.MustSet("render.base", syn.TemplateBase())
	d.MustSet("render.dst_folder", fmt.Sprintf("%s/%s/%s", host, platName, hostname))
	if err := syn.Finalize(d); err != nil {
		return nil, fmt.Errorf("compile: syntax %s on %s: %w", synName, n.ID(), err)
	}
	return d, nil
}

// indexCollisionDomains builds the neighbour-address and shared-domain maps
// from the ipv4 overlay.
func (c *compiler) indexCollisionDomains() {
	c.neighborIP = map[graph.ID]map[graph.ID]netip.Addr{}
	c.sharedCD = map[graph.ID]map[graph.ID]graph.ID{}
	ip := c.alloc.Overlay
	for _, cd := range ip.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain) {
		members := cd.Neighbors()
		for _, a := range members {
			for _, b := range members {
				if a.ID() == b.ID() {
					continue
				}
				if c.neighborIP[a.ID()] == nil {
					c.neighborIP[a.ID()] = map[graph.ID]netip.Addr{}
					c.sharedCD[a.ID()] = map[graph.ID]graph.ID{}
				}
				if addr, ok := c.memberIP(cd.ID(), b.ID()); ok {
					c.neighborIP[a.ID()][b.ID()] = addr
					c.sharedCD[a.ID()][b.ID()] = cd.ID()
				}
			}
		}
	}
}

// memberIP returns a device's interface address on a collision domain.
func (c *compiler) memberIP(cd, dev graph.ID) (netip.Addr, bool) {
	ip := c.alloc.Overlay
	e := ip.Edge(cd, dev)
	if !e.IsValid() {
		e = ip.Edge(dev, cd)
	}
	if !e.IsValid() {
		return netip.Addr{}, false
	}
	addr, ok := e.Get(ipalloc.AttrIP).(netip.Addr)
	return addr, ok
}

// compileInterfaces assigns platform interface names to the device's
// collision-domain attachments and builds the interfaces tree.
func (c *compiler) compileInterfaces(d *nidb.Device, n core.NodeView, plat Platform) error {
	ip := c.alloc.Overlay
	ipNode := ip.Node(n.ID())
	var ifaces []any
	idx := 0
	if !ipNode.IsValid() {
		d.MustSet("interfaces", ifaces)
		return nil
	}
	for _, cd := range ipNode.Neighbors() {
		if cd.DeviceType() != core.DeviceCollisionDomain {
			continue
		}
		addr, ok := c.memberIP(cd.ID(), n.ID())
		if !ok {
			return fmt.Errorf("compile: %s has no address on %s", n.ID(), cd.ID())
		}
		network, _ := cd.Get(ipalloc.AttrNetwork).(netip.Prefix)
		// Description lists the far ends, like the paper's
		// "as100r1 to as100r3".
		var peers []string
		for _, m := range cd.Neighbors() {
			if m.ID() != n.ID() {
				peers = append(peers, string(m.ID()))
			}
		}
		desc := fmt.Sprintf("%s to %s", n.ID(), strings.Join(peers, ", "))
		ifaces = append(ifaces, map[string]any{
			"id":          plat.InterfaceName(idx),
			"index":       idx,
			"description": desc,
			"ip_address":  addr,
			"prefixlen":   network.Bits(),
			"network":     network,
			"cd":          string(cd.ID()),
			"ospf_cost":   c.ospfCostFor(n, cd),
		})
		idx++
	}
	d.MustSet("interfaces", ifaces)
	// Loopback data for routers.
	if lb, ok := ipNode.Get(ipalloc.AttrLoopback).(netip.Addr); ok {
		d.MustSet("loopback.ip", lb)
		d.MustSet("loopback.id", plat.LoopbackName())
	}
	return nil
}

// ospfCostFor derives the interface cost from the OSPF overlay: the maximum
// cost among this node's OSPF edges to other members of the collision
// domain, defaulting to 1.
func (c *compiler) ospfCostFor(n core.NodeView, cd core.NodeView) int {
	ospf := c.anm.Overlay(design.OverlayOSPF)
	if ospf == nil {
		return 1
	}
	cost := 1
	for _, m := range cd.Neighbors() {
		if m.ID() == n.ID() {
			continue
		}
		e := ospf.Edge(n.ID(), m.ID())
		if !e.IsValid() {
			e = ospf.Edge(m.ID(), n.ID())
		}
		if e.IsValid() {
			if v := e.GetInt(design.AttrCost, 1); v > cost {
				cost = v
			}
		}
	}
	return cost
}

// compileServerGateway points a server's default route at the first
// router sharing one of its collision domains (servers run no routing
// protocols; real deployments configure a static default gateway).
func (c *compiler) compileServerGateway(d *nidb.Device, n core.NodeView) error {
	ip := c.alloc.Overlay
	ipNode := ip.Node(n.ID())
	if !ipNode.IsValid() {
		return nil
	}
	for _, cd := range ipNode.Neighbors() {
		if cd.DeviceType() != core.DeviceCollisionDomain {
			continue
		}
		for _, m := range cd.Neighbors() {
			if m.ID() == n.ID() || m.DeviceType() != core.DeviceRouter {
				continue
			}
			if gw, ok := c.memberIP(cd.ID(), m.ID()); ok {
				d.MustSet("gateway", gw)
				return nil
			}
		}
	}
	return nil
}

// compileZebra fills the zebra daemon header (hostname + telnet password).
func (c *compiler) compileZebra(d *nidb.Device, hostname string) error {
	d.MustSet("zebra.hostname", hostname)
	d.MustSet("zebra.password", c.opts.ZebraPassword)
	return nil
}

// compileOSPF condenses the ospf overlay into the device tree: process id
// plus one ospf_link per attached collision-domain network (the §5.4
// listing's ospf_links), and the loopback as a stub network.
func (c *compiler) compileOSPF(d *nidb.Device, n core.NodeView) error {
	ospf := c.anm.Overlay(design.OverlayOSPF)
	if ospf == nil || !ospf.HasNode(n.ID()) {
		return nil
	}
	var links []any
	var passive []any
	area := 0
	for _, ifc := range interfaceList(d) {
		m := ifc.(map[string]any)
		network, _ := m["network"].(netip.Prefix)
		cdID := graph.ID(fmt.Sprint(m["cd"]))
		cdArea := c.ospfAreaFor(n, cdID)
		cost := 1
		if v, ok := m["ospf_cost"].(int); ok {
			cost = v
		}
		// Inter-AS attachments are advertised as stubs via
		// passive-interface: the subnet is reachable intra-AS, but no
		// adjacency leaks across the AS boundary.
		isPassive := !c.cdIntraAS(n, cdID)
		if isPassive {
			passive = append(passive, m["id"])
		}
		links = append(links, map[string]any{"network": network, "area": cdArea, "cost": cost, "passive": isPassive})
		if !isPassive {
			area = cdArea
		}
	}
	if lb, ok := d.Get("loopback.ip"); ok {
		addr := lb.(netip.Addr)
		links = append(links, map[string]any{"network": netip.PrefixFrom(addr, 32), "area": area, "cost": 1, "passive": false})
	}
	d.MustSet("ospf.process_id", c.opts.OSPFProcessID)
	d.MustSet("ospf.ospf_links", links)
	d.MustSet("ospf.passive_interfaces", passive)
	d.MustSet("ospf.backbone", ospf.Node(n.ID()).GetBool(design.AttrBackbone))
	return nil
}

// cdIntraAS reports whether a collision domain connects this node to at
// least one same-AS router (or is a stub with only this node).
func (c *compiler) cdIntraAS(n core.NodeView, cdID graph.ID) bool {
	cd := c.alloc.Overlay.Node(cdID)
	others := 0
	for _, m := range cd.Neighbors() {
		if m.ID() == n.ID() {
			continue
		}
		others++
		if m.ASN() == n.ASN() {
			return true
		}
	}
	return others == 0
}

// ospfAreaFor reads the area from the OSPF overlay edges crossing cd.
func (c *compiler) ospfAreaFor(n core.NodeView, cdID graph.ID) int {
	ospf := c.anm.Overlay(design.OverlayOSPF)
	if ospf == nil {
		return 0
	}
	cd := c.alloc.Overlay.Node(cdID)
	for _, m := range cd.Neighbors() {
		if m.ID() == n.ID() {
			continue
		}
		e := ospf.Edge(n.ID(), m.ID())
		if !e.IsValid() {
			e = ospf.Edge(m.ID(), n.ID())
		}
		if e.IsValid() {
			return e.GetInt(design.AttrArea, 0)
		}
	}
	return 0
}

// compileBGP condenses the ebgp and ibgp overlays into the device tree.
func (c *compiler) compileBGP(d *nidb.Device, n core.NodeView) error {
	ebgp := c.anm.Overlay(design.OverlayEBGP)
	ibgp := c.anm.Overlay(design.OverlayIBGP)
	hasE := ebgp != nil && ebgp.HasNode(n.ID()) && len(ebgp.Node(n.ID()).Edges()) > 0
	hasI := ibgp != nil && ibgp.HasNode(n.ID()) && len(ibgp.Node(n.ID()).Edges()) > 0
	if !hasE && !hasI {
		return nil
	}
	asn := n.ASN()
	d.MustSet("bgp.asn", asn)
	if lb, ok := d.Get("loopback.ip"); ok {
		d.MustSet("bgp.router_id", lb.(netip.Addr))
	}
	// Advertised networks: the AS infrastructure block plus the router's
	// loopback, plus any extra prefixes the design assigned via the
	// bgp_networks node attribute (used by service and gadget scenarios).
	var networks []any
	if block, ok := c.alloc.InfraBlocks[asn]; ok {
		networks = append(networks, block)
	}
	if lb, ok := d.Get("loopback.ip"); ok {
		networks = append(networks, netip.PrefixFrom(lb.(netip.Addr), 32))
	}
	switch extra := n.Get("bgp_networks").(type) {
	case []netip.Prefix:
		for _, p := range extra {
			networks = append(networks, p)
		}
	case []string:
		for _, s := range extra {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return fmt.Errorf("compile: %s: bad bgp_networks entry %q: %w", n.ID(), s, err)
			}
			networks = append(networks, p.Masked())
		}
	case nil:
	default:
		return fmt.Errorf("compile: %s: bgp_networks must be []string or []netip.Prefix, got %T", n.ID(), extra)
	}
	d.MustSet("bgp.networks", networks)

	var eNbrs []any
	if hasE {
		for _, e := range ebgp.Node(n.ID()).Edges() {
			peer := e.Dst()
			addr, ok := c.neighborIP[n.ID()][peer.ID()]
			if !ok {
				return fmt.Errorf("compile: eBGP session %s->%s has no shared collision domain", n.ID(), peer.ID())
			}
			med := e.GetInt("med", 0)
			entry := map[string]any{
				"ip":          addr,
				"remote_asn":  peer.ASN(),
				"description": fmt.Sprintf("eBGP to %s (AS%d)", peer.ID(), peer.ASN()),
				"med":         med,
				"local_pref":  e.GetInt("local_pref", 0),
				// Raw routing-policy configlet (§7.3): external tools'
				// policy output stored on the session edge passes through
				// the compiler and templates verbatim.
				"policy": e.GetString("policy", ""),
			}
			// C-BGP identifies routers by loopback; record the peer's for
			// its lab script.
			if peerLB, ok := c.alloc.Overlay.Node(peer.ID()).Get(ipalloc.AttrLoopback).(netip.Addr); ok {
				entry["peer_lo"] = peerLB
			}
			eNbrs = append(eNbrs, entry)
		}
	}
	d.MustSet("bgp.ebgp_neighbors", eNbrs)

	var iNbrs []any
	if hasI {
		for _, e := range ibgp.Node(n.ID()).Edges() {
			peer := e.Dst()
			peerLB, ok := c.alloc.Overlay.Node(peer.ID()).Get(ipalloc.AttrLoopback).(netip.Addr)
			if !ok {
				return fmt.Errorf("compile: iBGP peer %s has no loopback", peer.ID())
			}
			sessType := e.GetString(design.AttrSessionType, design.SessionPeer)
			iNbrs = append(iNbrs, map[string]any{
				"ip":            peerLB,
				"remote_asn":    asn,
				"description":   fmt.Sprintf("iBGP to %s", peer.ID()),
				"update_source": d.GetString("loopback.id", "lo"),
				// The peer is my route-reflector client when my session to
				// it points "down" the hierarchy.
				"rr_client": sessType == design.SessionDown,
			})
		}
	}
	d.MustSet("bgp.ibgp_neighbors", iNbrs)
	d.MustSet("bgp.route_reflector", ibgpIsRR(ibgp, n))
	return nil
}

func ibgpIsRR(ibgp *core.Overlay, n core.NodeView) bool {
	if ibgp == nil || !ibgp.HasNode(n.ID()) {
		return false
	}
	return ibgp.Node(n.ID()).GetBool(design.AttrRR)
}

// compileISIS condenses the isis overlay (§7: the ~15 compiler lines).
func (c *compiler) compileISIS(d *nidb.Device, n core.NodeView) error {
	isis := c.anm.Overlay(design.OverlayISIS)
	if isis == nil || !isis.HasNode(n.ID()) {
		return nil
	}
	lb, ok := d.Get("loopback.ip")
	if !ok {
		return fmt.Errorf("compile: IS-IS on %s requires a loopback", n.ID())
	}
	d.MustSet("isis.net", isisNET(n.ASN(), lb.(netip.Addr)))
	d.MustSet("isis.process", "ank")
	var enabled []any
	for _, ifc := range interfaceList(d) {
		m := ifc.(map[string]any)
		if c.cdIntraAS(n, graph.ID(fmt.Sprint(m["cd"]))) {
			enabled = append(enabled, m["id"])
		}
	}
	// The loopback joins the IS-IS process so its /32 is advertised (the
	// OSPF compiler's stub-network equivalent).
	enabled = append(enabled, d.GetString("loopback.id", "lo"))
	d.MustSet("isis.interfaces", enabled)
	return nil
}

// isisNET builds an ISO NET: 49.<asn as 4 hex digits>.<loopback as 12
// digits>.00.
func isisNET(asn int, lb netip.Addr) string {
	b := lb.As4()
	// Pad each loopback octet to 3 digits, then group the 12 digits into
	// three 4-digit clusters (the conventional loopback-derived system id).
	digits := fmt.Sprintf("%03d%03d%03d%03d", b[0], b[1], b[2], b[3])
	sysID := digits[0:4] + "." + digits[4:8] + "." + digits[8:12]
	return fmt.Sprintf("49.%04x.%s.00", asn, sysID)
}

// recordLinks writes device-level adjacencies (device, iface, cd) pairs
// into the database for deployment and measurement.
func (c *compiler) recordLinks() {
	ip := c.alloc.Overlay
	for _, cd := range ip.NodesWhere(core.AttrDeviceType, core.DeviceCollisionDomain) {
		members := cd.Neighbors()
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i].ID(), members[j].ID()
				da, db := c.db.Device(a), c.db.Device(b)
				if da == nil || db == nil {
					continue
				}
				c.db.AddLink(nidb.Link{
					A: a, B: b,
					AIface: ifaceOnCD(da, cd.ID()),
					BIface: ifaceOnCD(db, cd.ID()),
					CD:     cd.ID(),
				})
			}
		}
	}
}

// ifaceOnCD finds the device's interface id attached to a collision domain.
func ifaceOnCD(d *nidb.Device, cd graph.ID) string {
	for _, ifc := range interfaceList(d) {
		m := ifc.(map[string]any)
		if fmt.Sprint(m["cd"]) == string(cd) {
			return fmt.Sprint(m["id"])
		}
	}
	return ""
}
