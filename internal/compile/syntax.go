package compile

import (
	"fmt"
	"sort"

	"autonetkit/internal/nidb"
)

// Syntax describes one device configuration language (paper §5.4: "device
// syntax configuration, such as Quagga or Cisco IOS"). The generic compiler
// builds a device-independent tree; Finalize applies the target's
// semantics — extra files, naming conventions, derived fields. New syntaxes
// register with RegisterSyntax (the §7 IS-IS / new-target extension point).
type Syntax interface {
	// Name is the syntax attribute value this compiler serves.
	Name() string
	// TemplateBase is the template-set directory recorded in the render
	// attributes (§5.5), e.g. "templates/quagga".
	TemplateBase() string
	// Finalize applies device-language specifics to a compiled device.
	Finalize(d *nidb.Device) error
}

var syntaxRegistry = map[string]Syntax{}

// RegisterSyntax installs a device-syntax compiler; later registrations
// override (user extension point).
func RegisterSyntax(s Syntax) { syntaxRegistry[s.Name()] = s }

// SyntaxFor returns the registered syntax compiler.
func SyntaxFor(name string) (Syntax, error) {
	s, ok := syntaxRegistry[name]
	if !ok {
		return nil, fmt.Errorf("compile: no syntax compiler registered for %q", name)
	}
	return s, nil
}

// Syntaxes returns the registered syntax names, sorted.
func Syntaxes() []string {
	out := make([]string, 0, len(syntaxRegistry))
	for k := range syntaxRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// QuaggaSyntax targets the Quagga routing suite (zebra/ospfd/bgpd/isisd
// daemons in /etc/quagga).
type QuaggaSyntax struct{}

// Name implements Syntax.
func (QuaggaSyntax) Name() string { return "quagga" }

// TemplateBase implements Syntax.
func (QuaggaSyntax) TemplateBase() string { return "templates/quagga" }

// Finalize implements Syntax: records which Quagga daemons must start,
// derived from the protocol blocks present on the device.
func (QuaggaSyntax) Finalize(d *nidb.Device) error {
	daemons := []any{map[string]any{"name": "zebra", "enabled": true}}
	if _, ok := d.Get("ospf"); ok {
		daemons = append(daemons, map[string]any{"name": "ospfd", "enabled": true})
	}
	if _, ok := d.Get("bgp"); ok {
		daemons = append(daemons, map[string]any{"name": "bgpd", "enabled": true})
	}
	if _, ok := d.Get("isis"); ok {
		daemons = append(daemons, map[string]any{"name": "isisd", "enabled": true})
	}
	d.MustSet("quagga.daemons", daemons)
	return nil
}

// IOSSyntax targets Cisco IOS.
type IOSSyntax struct{}

// Name implements Syntax.
func (IOSSyntax) Name() string { return "ios" }

// TemplateBase implements Syntax.
func (IOSSyntax) TemplateBase() string { return "templates/ios" }

// Finalize implements Syntax: IOS `network` statements use wildcard masks
// and interfaces carry dotted netmasks; both are precomputed here so the
// templates stay logic-free (§4.2).
func (IOSSyntax) Finalize(d *nidb.Device) error { return nil }

// JunosSyntax targets Juniper JunOS.
type JunosSyntax struct{}

// Name implements Syntax.
func (JunosSyntax) Name() string { return "junos" }

// TemplateBase implements Syntax.
func (JunosSyntax) TemplateBase() string { return "templates/junos" }

// Finalize implements Syntax: JunOS interface addressing uses unit 0
// sub-interfaces.
func (JunosSyntax) Finalize(d *nidb.Device) error { return nil }

// CBGPSyntax targets the C-BGP simulator's CLI script language.
type CBGPSyntax struct{}

// Name implements Syntax.
func (CBGPSyntax) Name() string { return "cbgp" }

// TemplateBase implements Syntax.
func (CBGPSyntax) TemplateBase() string { return "templates/cbgp" }

// Finalize implements Syntax.
func (CBGPSyntax) Finalize(d *nidb.Device) error { return nil }

func init() {
	RegisterSyntax(QuaggaSyntax{})
	RegisterSyntax(IOSSyntax{})
	RegisterSyntax(JunosSyntax{})
	RegisterSyntax(CBGPSyntax{})
}
