package compile

import (
	"fmt"
	"net/netip"
	"regexp"
	"sort"
	"strings"

	"autonetkit/internal/netaddr"
	"autonetkit/internal/nidb"
)

// Platform describes one emulation platform's conventions (paper §5.4: the
// platform compiler allocates interface names, management addresses and
// performs platform formatting). New targets register with
// RegisterPlatform.
type Platform interface {
	// Name is the platform attribute value this compiler serves.
	Name() string
	// InterfaceName formats the i-th data-plane interface (0-based).
	InterfaceName(i int) string
	// LoopbackName is the loopback interface identifier.
	LoopbackName() string
	// SanitizeHostname rewrites a node label into a hostname the platform
	// accepts.
	SanitizeHostname(label string) string
	// FinalizeLab builds the platform-wide lab data (e.g. Netkit lab.conf
	// machine/collision-domain table) for the devices placed on one host.
	FinalizeLab(db *nidb.DB, host string, devices []*nidb.Device) error
}

var platformRegistry = map[string]Platform{}

// RegisterPlatform installs a platform compiler; later registrations for
// the same name override earlier ones (user extension point).
func RegisterPlatform(p Platform) { platformRegistry[p.Name()] = p }

// PlatformFor returns the registered platform compiler.
func PlatformFor(name string) (Platform, error) {
	p, ok := platformRegistry[name]
	if !ok {
		return nil, fmt.Errorf("compile: no platform compiler registered for %q", name)
	}
	return p, nil
}

// Platforms returns the registered platform names, sorted.
func Platforms() []string {
	out := make([]string, 0, len(platformRegistry))
	for k := range platformRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var hostnameRe = regexp.MustCompile(`[^a-zA-Z0-9_-]`)

func sanitizeBasic(label string) string {
	s := hostnameRe.ReplaceAllString(label, "")
	if s == "" {
		s = "device"
	}
	return s
}

// NetkitPlatform implements the paper's primary target (§1, §6.1): Linux
// VMs, eth interfaces, a TAP management network, and a lab.conf describing
// machines and collision domains.
type NetkitPlatform struct {
	// TapSubnet is the management network; the host side takes the first
	// usable address. Defaults to 172.16.0.0/16.
	TapSubnet netip.Prefix
}

// Name implements Platform.
func (NetkitPlatform) Name() string { return "netkit" }

// InterfaceName implements Platform: eth0, eth1, ...
func (NetkitPlatform) InterfaceName(i int) string { return fmt.Sprintf("eth%d", i) }

// LoopbackName implements Platform.
func (NetkitPlatform) LoopbackName() string { return "lo" }

// SanitizeHostname implements Platform: Netkit machine names are lower-case
// alphanumerics, dashes and underscores.
func (NetkitPlatform) SanitizeHostname(label string) string {
	return strings.ToLower(sanitizeBasic(label))
}

// FinalizeLab implements Platform: allocates TAP management addresses and
// assembles the lab.conf data (machine -> interface -> collision domain).
func (p NetkitPlatform) FinalizeLab(db *nidb.DB, host string, devices []*nidb.Device) error {
	tap := p.TapSubnet
	if !tap.IsValid() {
		tap = netaddr.MustPrefix("172.16.0.0/16")
	}
	lab := db.Lab(host, p.Name())
	lab["tap_subnet"] = tap
	hostIP, err := netaddr.NthHost(tap, 0)
	if err != nil {
		return fmt.Errorf("compile: netkit tap host address: %w", err)
	}
	lab["tap_host"] = hostIP

	var machines []any
	cdSet := map[string]bool{}
	var cds []string
	for i, d := range devices {
		tapIP, err := netaddr.NthHost(tap, i+1)
		if err != nil {
			return fmt.Errorf("compile: tap address for %s: %w", d.ID, err)
		}
		d.MustSet("tap.ip", tapIP)
		d.MustSet("tap.interface", p.InterfaceName(interfaceCount(d)))

		var ifaces []any
		for _, ifc := range interfaceList(d) {
			m := ifc.(map[string]any)
			cd := fmt.Sprint(m["cd"])
			ifaces = append(ifaces, map[string]any{"id": m["id"], "cd": cd})
			if !cdSet[cd] {
				cdSet[cd] = true
				cds = append(cds, cd)
			}
		}
		machines = append(machines, map[string]any{
			"name":   d.Hostname(),
			"ifaces": ifaces,
			"tap":    map[string]any{"ip": tapIP, "interface": d.GetString("tap.interface", "")},
		})
	}
	lab["machines"] = machines
	sort.Strings(cds)
	cdList := make([]any, len(cds))
	for i, cd := range cds {
		cdList[i] = cd
	}
	lab["collision_domains"] = cdList
	lab["description"] = fmt.Sprintf("autonetkit generated lab (%d machines)", len(devices))
	return nil
}

// DynagenPlatform targets Dynagen/Dynamips (IOS images).
type DynagenPlatform struct{}

// Name implements Platform.
func (DynagenPlatform) Name() string { return "dynagen" }

// InterfaceName implements Platform: f0/0, f0/1, ...
func (DynagenPlatform) InterfaceName(i int) string { return fmt.Sprintf("f0/%d", i) }

// LoopbackName implements Platform.
func (DynagenPlatform) LoopbackName() string { return "Loopback0" }

// SanitizeHostname implements Platform: IOS hostnames must not contain
// underscores.
func (DynagenPlatform) SanitizeHostname(label string) string {
	return strings.ReplaceAll(sanitizeBasic(label), "_", "-")
}

// FinalizeLab implements Platform: assembles the lab.net data.
func (p DynagenPlatform) FinalizeLab(db *nidb.DB, host string, devices []*nidb.Device) error {
	lab := db.Lab(host, p.Name())
	var routers []any
	for _, d := range devices {
		var links []any
		for _, ifc := range interfaceList(d) {
			m := ifc.(map[string]any)
			links = append(links, map[string]any{"id": m["id"], "cd": m["cd"]})
		}
		routers = append(routers, map[string]any{
			"name":  d.Hostname(),
			"model": "7200",
			"links": links,
		})
	}
	lab["routers"] = routers
	return nil
}

// JunospherePlatform targets Juniper's Junosphere (§5.4 reference
// implementation list).
type JunospherePlatform struct{}

// Name implements Platform.
func (JunospherePlatform) Name() string { return "junosphere" }

// InterfaceName implements Platform: em0, em1, ...
func (JunospherePlatform) InterfaceName(i int) string { return fmt.Sprintf("em%d", i) }

// LoopbackName implements Platform.
func (JunospherePlatform) LoopbackName() string { return "lo0" }

// SanitizeHostname implements Platform.
func (JunospherePlatform) SanitizeHostname(label string) string { return sanitizeBasic(label) }

// FinalizeLab implements Platform: assembles the topology.vmm data.
func (p JunospherePlatform) FinalizeLab(db *nidb.DB, host string, devices []*nidb.Device) error {
	lab := db.Lab(host, p.Name())
	var vms []any
	for _, d := range devices {
		vms = append(vms, map[string]any{"name": d.Hostname()})
	}
	lab["vms"] = vms
	return nil
}

// CBGPPlatform targets the C-BGP route solver: no VMs, a single script, so
// lab finalisation only records the node list.
type CBGPPlatform struct{}

// Name implements Platform.
func (CBGPPlatform) Name() string { return "cbgp" }

// InterfaceName implements Platform (C-BGP is link-based; names are
// informational).
func (CBGPPlatform) InterfaceName(i int) string { return fmt.Sprintf("if%d", i) }

// LoopbackName implements Platform.
func (CBGPPlatform) LoopbackName() string { return "lo" }

// SanitizeHostname implements Platform.
func (CBGPPlatform) SanitizeHostname(label string) string { return sanitizeBasic(label) }

// FinalizeLab implements Platform: C-BGP scripts identify routers by
// loopback, so the lab records loopback-endpoint links with their IGP
// weights (max of the two attached interface costs, matching the OSPF
// compiler).
func (p CBGPPlatform) FinalizeLab(db *nidb.DB, host string, devices []*nidb.Device) error {
	lab := db.Lab(host, p.Name())
	var nodes []any
	onHost := map[string]*nidb.Device{}
	for _, d := range devices {
		nodes = append(nodes, d.Hostname())
		onHost[string(d.ID)] = d
	}
	lab["nodes"] = nodes
	var links []any
	for _, l := range db.Links() {
		da, db2 := onHost[string(l.A)], onHost[string(l.B)]
		if da == nil || db2 == nil {
			continue
		}
		loA, okA := da.Get("loopback.ip")
		loB, okB := db2.Get("loopback.ip")
		if !okA || !okB {
			continue
		}
		w := 1
		for _, dev := range []*nidb.Device{da, db2} {
			for _, ifc := range interfaceList(dev) {
				m := ifc.(map[string]any)
				if fmt.Sprint(m["cd"]) == string(l.CD) {
					if c, ok := m["ospf_cost"].(int); ok && c > w {
						w = c
					}
				}
			}
		}
		links = append(links, map[string]any{"src": loA, "dst": loB, "weight": w})
	}
	lab["links"] = links
	return nil
}

func init() {
	RegisterPlatform(NetkitPlatform{})
	RegisterPlatform(DynagenPlatform{})
	RegisterPlatform(JunospherePlatform{})
	RegisterPlatform(CBGPPlatform{})
}

// interfaceList returns the device's interfaces tree as a slice (empty when
// unset).
func interfaceList(d *nidb.Device) []any {
	v, ok := d.Get("interfaces")
	if !ok {
		return nil
	}
	l, _ := v.([]any)
	return l
}

func interfaceCount(d *nidb.Device) int { return len(interfaceList(d)) }
