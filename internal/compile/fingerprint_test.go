package compile

import (
	"testing"

	"autonetkit/internal/cache"
	"autonetkit/internal/core"
	"autonetkit/internal/design"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/obs"
)

// digestAll computes every device's compile digest for the fig5 pipeline.
func digestAll(t *testing.T, anm *core.ANM, alloc *ipalloc.Result) map[graph.ID]cache.Digest {
	t.Helper()
	out := map[graph.ID]cache.Digest{}
	for _, n := range anm.Overlay(core.OverlayPhy).Routers() {
		out[n.ID()] = DeviceDigest(anm, alloc, Options{}, n.ID())
	}
	return out
}

func TestDeviceDigestStableAcrossRebuilds(t *testing.T) {
	anm1, alloc1, _ := pipeline(t, nil, Options{}, design.Options{})
	anm2, alloc2, _ := pipeline(t, nil, Options{}, design.Options{})
	d1 := digestAll(t, anm1, alloc1)
	d2 := digestAll(t, anm2, alloc2)
	if len(d1) == 0 {
		t.Fatal("no devices digested")
	}
	for id, dig := range d1 {
		if d2[id] != dig {
			t.Errorf("digest of %s drifted between identical builds", id)
		}
	}
}

// changedSet diffs two digest maps into the set of moved devices.
func changedSet(a, b map[graph.ID]cache.Digest) map[graph.ID]bool {
	out := map[graph.ID]bool{}
	for id, dig := range a {
		if b[id] != dig {
			out[id] = true
		}
	}
	return out
}

func TestDeviceDigestSelectiveInvalidation(t *testing.T) {
	anm, alloc, _ := pipeline(t, nil, Options{}, design.Options{})
	base := digestAll(t, anm, alloc)

	// A post-design OSPF edge-cost edit moves exactly the two endpoints.
	ospf := anm.Overlay(design.OverlayOSPF)
	ospf.Edge("r1", "r2").Set(design.AttrCost, 42)
	after := digestAll(t, anm, alloc)
	changed := changedSet(base, after)
	if len(changed) != 2 || !changed["r1"] || !changed["r2"] {
		t.Errorf("ospf cost edit moved %v, want exactly {r1 r2}", changed)
	}

	// An OSPF node attribute moves exactly that device (flip the backbone
	// flag — design may already have set it either way).
	base = after
	ospf.Node("r3").Set(design.AttrBackbone, !ospf.Node("r3").GetBool(design.AttrBackbone))
	after = digestAll(t, anm, alloc)
	changed = changedSet(base, after)
	if len(changed) != 1 || !changed["r3"] {
		t.Errorf("ospf node edit moved %v, want exactly {r3}", changed)
	}

	// Different compile options move every device.
	for _, n := range anm.Overlay(core.OverlayPhy).Routers() {
		if DeviceDigest(anm, alloc, Options{ZebraPassword: "sekrit"}, n.ID()) == after[n.ID()] {
			t.Errorf("option change did not move %s", n.ID())
		}
	}
}

func TestCompileCacheHitProducesIdenticalDB(t *testing.T) {
	store := cache.NewMemory()
	colCold := obs.NewCollector()
	_, _, dbCold := pipeline(t, nil, Options{Cache: store, Obs: colCold}, design.Options{})
	cold := colCold.Snapshot().Counters
	if cold[obs.CounterCompileCacheMisses] != int64(dbCold.Len()) {
		t.Errorf("cold misses = %d, want %d", cold[obs.CounterCompileCacheMisses], dbCold.Len())
	}
	if cold[obs.CounterCompileCacheHits] != 0 {
		t.Errorf("cold hits = %d, want 0", cold[obs.CounterCompileCacheHits])
	}

	colWarm := obs.NewCollector()
	_, _, dbWarm := pipeline(t, nil, Options{Cache: store, Obs: colWarm}, design.Options{})
	warm := colWarm.Snapshot().Counters
	if warm[obs.CounterCompileCacheHits] != int64(dbWarm.Len()) {
		t.Errorf("warm hits = %d, want %d", warm[obs.CounterCompileCacheHits], dbWarm.Len())
	}
	if warm[obs.CounterCompileCacheMisses] != 0 {
		t.Errorf("warm misses = %d, want 0", warm[obs.CounterCompileCacheMisses])
	}
	if warm[obs.CounterDevicesCompiled] != 0 {
		t.Errorf("warm compiled %d devices, want 0", warm[obs.CounterDevicesCompiled])
	}

	jc, err := dbCold.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jw, err := dbWarm.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(jc) != string(jw) {
		t.Error("cached compile produced a different Resource Database")
	}
}
