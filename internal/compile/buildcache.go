package compile

import (
	"fmt"
	"sort"
	"strings"

	"autonetkit/internal/cache"
	"autonetkit/internal/core"
	"autonetkit/internal/graph"
	"autonetkit/internal/ipalloc"
	"autonetkit/internal/nidb"
	"autonetkit/internal/obs"
)

// buildCacheTag versions the whole-build cache: the blob stored under a
// model digest holds the complete post-finalisation Resource Database.
// Bump it whenever the blob layout or the set of inputs ModelDigest covers
// changes.
const buildCacheTag = "ank/compile-db/v1"

// ModelDigest returns the content address of the complete compile input:
// the compile options, every ANM overlay (graph-level attributes, all nodes
// and all edges in insertion order), the allocated ipv4 overlay and the
// per-AS infrastructure blocks. Insertion order is hashed deliberately —
// it defines device order, which lab finalisation turns into addresses.
//
// Unlike DeviceDigest, which hashes only the selective slice one device's
// compilation reads, this is a single linear pass over the whole model: it
// is the fast path's key. Equal model digests guarantee an identical
// database, so a stored build can be restored without touching any
// per-device machinery. Registry state (platforms, syntaxes) is not
// tracked, matching DeviceDigest's contract.
func ModelDigest(anm *core.ANM, alloc *ipalloc.Result, opts Options) cache.Digest {
	opts.fill()
	h := cache.NewHasher(buildCacheTag)
	h.Str(opts.ZebraPassword, opts.DefaultPlatform, opts.DefaultSyntax, opts.DefaultHost)
	h.Int(opts.OSPFProcessID)
	for _, name := range anm.OverlayNames() {
		h.Str("overlay", name)
		graph.WriteGraphSignature(h, anm.Overlay(name).Graph())
	}
	h.Str("overlay", "ipv4-alloc")
	graph.WriteGraphSignature(h, alloc.Overlay.Graph())
	asns := make([]int, 0, len(alloc.InfraBlocks))
	for asn := range alloc.InfraBlocks {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		h.Str("infra")
		h.Int(asn)
		h.Value(alloc.InfraBlocks[asn])
	}
	return h.Sum()
}

// buildCacheKey derives the store key for a model's database blob.
func buildCacheKey(modelDig cache.Digest) cache.Digest {
	h := cache.NewHasher(buildCacheTag + "/blob")
	h.Bytes(modelDig[:])
	return h.Sum()
}

// lookupBuild restores a complete database for the model digest, or
// reports a miss. A hit counts one cache hit per device, so the observable
// counter contract matches the per-device path exactly.
func lookupBuild(store *cache.Store, modelDig cache.Digest, col *obs.Collector) (*nidb.DB, bool) {
	blob, ok := store.Get(buildCacheKey(modelDig))
	if !ok {
		return nil, false
	}
	db, err := decodeDB(blob)
	if err != nil {
		// Corrupt or stale-layout blobs degrade to a normal build.
		return nil, false
	}
	db.ModelDigest = modelDig
	n := int64(db.Len())
	col.Add(obs.CounterCacheHits, n)
	col.Add(obs.CounterCompileCacheHits, n)
	col.Add(obs.CounterCacheBytes, int64(len(blob)))
	return db, true
}

// storeBuild saves the finished (post-finalisation) database under the
// model digest. Encoding failures — a record or lab map holding a value
// outside the codec's closed type set — simply leave the build uncacheable
// at this level; the per-device entries still serve the next build.
func storeBuild(store *cache.Store, modelDig cache.Digest, db *nidb.DB) {
	if blob, err := encodeDB(db); err == nil {
		store.Put(buildCacheKey(modelDig), blob)
	}
}

// encodeDB canonically serialises the whole database: devices (id, compile
// digest, attribute tree) in insertion order, device-level links in
// insertion order, and the per-(host, platform) lab maps.
func encodeDB(db *nidb.DB) ([]byte, error) {
	devs := make([]any, 0, 3*db.Len())
	for _, d := range db.Devices() {
		devs = append(devs, string(d.ID), string(d.Digest[:]), d.Data)
	}
	links := make([]any, 0, len(db.Links()))
	for _, l := range db.Links() {
		links = append(links, []string{string(l.A), string(l.B), l.AIface, l.BIface, string(l.CD)})
	}
	labs := map[string]any{}
	for _, key := range db.LabKeys() {
		host, platform, _ := strings.Cut(key, "/")
		labs[key] = db.Lab(host, platform)
	}
	return cache.EncodeValue(map[string]any{"devices": devs, "links": links, "labs": labs})
}

// decodeDB restores a database blob. Every map and slice is freshly
// decoded, so restored builds never alias the store or each other.
func decodeDB(blob []byte) (*nidb.DB, error) {
	v, err := cache.DecodeValue(blob)
	if err != nil {
		return nil, err
	}
	top, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("compile: build blob is %T, not a map", v)
	}
	db := nidb.New()
	devs, _ := top["devices"].([]any)
	if len(devs)%3 != 0 {
		return nil, fmt.Errorf("compile: build blob device list is malformed")
	}
	for i := 0; i < len(devs); i += 3 {
		id, iok := devs[i].(string)
		dig, gok := devs[i+1].(string)
		data, dok := devs[i+2].(map[string]any)
		if !iok || !gok || !dok || len(dig) != 32 {
			return nil, fmt.Errorf("compile: build blob device entry is malformed")
		}
		d := &nidb.Device{ID: graph.ID(id), Data: data}
		copy(d.Digest[:], dig)
		db.InstallDevice(d)
	}
	links, _ := top["links"].([]any)
	for _, lv := range links {
		f, ok := lv.([]string)
		if !ok || len(f) != 5 {
			return nil, fmt.Errorf("compile: build blob link entry is malformed")
		}
		db.AddLink(nidb.Link{A: graph.ID(f[0]), B: graph.ID(f[1]), AIface: f[2], BIface: f[3], CD: graph.ID(f[4])})
	}
	labs, _ := top["labs"].(map[string]any)
	for key, lv := range labs {
		lm, ok := lv.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("compile: build blob lab entry is malformed")
		}
		host, platform, _ := strings.Cut(key, "/")
		dst := db.Lab(host, platform)
		for k, v := range lm {
			dst[k] = v
		}
	}
	return db, nil
}
