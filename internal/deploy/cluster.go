package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"autonetkit/internal/emul"
	"autonetkit/internal/obs"
	"autonetkit/internal/render"
	"autonetkit/internal/retry"
	"autonetkit/internal/sched"
)

// ClusterOptions configures a scheduler-backed pool deployment: RunPool's
// stages with placement, health, and failure handling delegated to the
// internal/sched cluster scheduler.
type ClusterOptions struct {
	Platform string
	// MaxBGPRounds bounds control-plane convergence (0 = default).
	MaxBGPRounds int
	// Lenient boots in lenient mode (see PoolOptions.Lenient).
	Lenient bool
	// Retry governs per-host boot attempts AND per-VM migrations during
	// drains; its AttemptTimeout also bounds convergence runs.
	Retry retry.Policy
	// Supervise runs the convergence watchdog over the launched lab.
	Supervise bool
	// Boot, when set, is invoked per host boot attempt (fault-injection
	// seam; nil always succeeds).
	Boot BootFunc
	// OnEvent, when set, receives progress events as they happen
	// (scheduler events arrive with Stage "sched").
	OnEvent func(Event)
	// Obs, when set, collects deployment and scheduler spans/counters.
	Obs *obs.Collector

	// Seed keys the scheduler's deterministic placement tie-breaks.
	Seed uint64
	// Health configures the scheduler's probe thresholds.
	Health sched.HealthPolicy
	// Reservation names the lab's reservation ("lab" when empty).
	Reservation string
	// Tenant owns the reservation for fair-share accounting.
	Tenant string
	// Policy is the placement policy (sched.PolicyPack when empty).
	Policy sched.Policy
	// Spread caps the lab's VMs per host (0 = unbounded).
	Spread int
	// Weight is the tenant's fair-share weight (0 keeps the scheduler
	// default of 1). Under Preempt, higher-weight labs may evict
	// lower-weight reservations that block them.
	Weight int
	// Lease configures the scheduler's heartbeat leases: hosts silent past
	// the TTL are suspected, and past the grace window declared dead with
	// their VMs re-placed.
	Lease sched.LeasePolicy
	// Preempt lets reservations with strictly higher tenant weight evict
	// lower-weight ones when the cluster is otherwise full.
	Preempt bool

	// StateDir, when set, makes the scheduler durable: every mutation is
	// journaled under the directory and RunCluster recovers any prior
	// state before deploying (see internal/journal).
	StateDir string
	// SnapshotEvery compacts the journal after this many records
	// (0 = scheduler default).
	SnapshotEvery int
}

// ClusterDeployment is the outcome of RunCluster: a pool deployment whose
// placement lives in a cluster scheduler, so hosts can be cordoned,
// drained, and failed while the lab runs.
type ClusterDeployment struct {
	PoolDeployment
	// Cluster is the scheduler owning the deployment's placement.
	Cluster *sched.Cluster
	// Reservation is the lab's reservation name.
	Reservation string
	// Recovery describes what a durable deployment restored from its
	// state directory (zero for in-memory deployments).
	Recovery sched.RecoveryInfo
	backend  sched.Backend
	opts     ClusterOptions
}

// schedOptions builds the scheduler options for this deployment; emit
// bridges scheduler events into the deployment's stream.
func (opts ClusterOptions) schedOptions(emit func(Event)) sched.Options {
	return sched.Options{
		Seed:          opts.Seed,
		Health:        opts.Health,
		Retry:         opts.Retry,
		Lease:         opts.Lease,
		Preempt:       opts.Preempt,
		Obs:           opts.Obs,
		SnapshotEvery: opts.SnapshotEvery,
		OnEvent: func(ev sched.Event) {
			emit(Event{"sched", fmt.Sprintf("%s: %s", ev.Kind, ev.Detail)})
		},
	}
}

// newSchedCluster builds the deployment's scheduler: durable via
// sched.Open when StateDir is set, in-memory via sched.New otherwise.
func newSchedCluster(backend sched.Backend, opts ClusterOptions, emit func(Event)) (*sched.Cluster, sched.RecoveryInfo, error) {
	if opts.StateDir != "" {
		return sched.Open(opts.StateDir, backend, opts.schedOptions(emit))
	}
	c, err := sched.New(backend, opts.schedOptions(emit))
	return c, sched.RecoveryInfo{}, err
}

// RunCluster deploys a rendered lab across a substrate backend via the
// cluster scheduler: archive → transfer → extract → reserve (deterministic
// bin-packing) → boot each placed host (with retry, backoff + jitter) →
// launch. A host that exhausts its boot attempts is failed in the
// scheduler and its VMs re-place onto surviving capacity; if none remains,
// RunCluster returns the partial state wrapped in ErrDegraded. The
// returned deployment drains and fails hosts live via DrainHost/FailHost.
func RunCluster(fs *render.FileSet, backend sched.Backend, opts ClusterOptions) (*ClusterDeployment, error) {
	if opts.Platform == "" {
		opts.Platform = "netkit"
	}
	if opts.Reservation == "" {
		opts.Reservation = "lab"
	}
	span := opts.Obs.StartSpan("ClusterDeploy")
	defer span.End()
	d := &ClusterDeployment{Reservation: opts.Reservation, backend: backend, opts: opts}
	d.Platform = opts.Platform
	d.onEvent = opts.OnEvent

	cluster, rinfo, err := newSchedCluster(backend, opts, d.emit)
	if err != nil {
		return nil, err
	}
	d.Cluster = cluster
	d.Recovery = rinfo
	if rinfo.Recovered {
		d.emit(Event{"recover", rinfo.String()})
		// A prior run's reservation under the same name would collide (and
		// its VMs hold capacity the fresh lab needs); release it — this is
		// a new deployment of the lab, not a resumption of its processes.
		if _, ok := cluster.Reservation(opts.Reservation); ok {
			if rerr := cluster.Release(opts.Reservation); rerr != nil {
				return d, fmt.Errorf("deploy: releasing recovered reservation %s: %w", opts.Reservation, rerr)
			}
			d.emit(Event{"recover", fmt.Sprintf("released stale reservation %s from prior run", opts.Reservation)})
		}
	}

	bundle, err := Archive(fs)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"archive", fmt.Sprintf("%d files, %d bytes compressed", fs.Len(), len(bundle))})
	received := make([]byte, len(bundle))
	copy(received, bundle)
	d.emit(Event{"transfer", fmt.Sprintf("%d bytes to %d hosts", len(received), cluster.Capacity().Hosts)})
	extracted, err := Extract(received)
	if err != nil {
		return nil, err
	}
	d.emit(Event{"extract", fmt.Sprintf("%d files", extracted.Len())})

	lab, err := firstLab(extracted, opts.Platform)
	if err != nil {
		return nil, err
	}

	st, err := cluster.Reserve(sched.Spec{
		Name:   opts.Reservation,
		Tenant: opts.Tenant,
		VMs:    lab.VMNames(),
		Policy: opts.Policy,
		Spread: opts.Spread,
		Weight: opts.Weight,
	})
	if err != nil {
		return d, err
	}
	if st.State == sched.ResQueued {
		rep := cluster.Capacity()
		d.emit(Event{"degraded", fmt.Sprintf("reservation %s queued: %s", opts.Reservation, rep.Summary())})
		return d, fmt.Errorf("%w: %d VMs exceed cluster capacity (%s)", ErrDegraded, st.VMs, rep.Summary())
	}
	d.Placement = Placement{}
	for vm, host := range st.Placement {
		d.Placement[vm] = host
	}
	d.emit(Event{"place", fmt.Sprintf("%d VMs across %d hosts (seed %d)", len(st.Placement), len(st.Hosts), opts.Seed)})

	// Boot every host that holds VMs, in name order. A failed boot fails
	// the host in the scheduler; its VMs re-place onto survivors (a host
	// later in the boot order absorbs them before its own boot).
	booted := map[string]bool{}
	for {
		host := nextUnbooted(cluster, d.Placement, booted)
		if host == "" {
			break
		}
		booted[host] = true
		if err := d.bootClusterHost(cluster, host, opts); err == nil {
			continue
		}
		opts.Obs.Add(CounterHostsFailed, 1)
		d.FailedHosts = append(d.FailedHosts, host)
		res, ferr := cluster.FailHost(host)
		d.emit(Event{"host-failed", fmt.Sprintf("%s abandoned after %d attempts; re-placing %d VMs",
			host, opts.Retry.Attempts(), len(res.Moves)+len(res.Stranded))})
		d.applyMoves(res.Moves)
		if ferr != nil {
			d.StrandedVMs = append([]string(nil), res.Stranded...)
			d.emit(Event{"degraded", fmt.Sprintf("cannot re-place %d VMs (%s): %s",
				len(res.Stranded), strings.Join(res.Stranded, ", "), res.Report.Summary())})
			return d, fmt.Errorf("%w: %d VMs stranded after %s failed", ErrDegraded, len(res.Stranded), host)
		}
	}

	d.emit(Event{"lstart", fmt.Sprintf("launching %d machines", len(lab.VMNames()))})
	lspan := opts.Obs.StartSpan("Launch")
	err = lab.Boot(emul.BootOptions{
		MaxBGPRounds:    opts.MaxBGPRounds,
		ConvergeTimeout: opts.Retry.AttemptTimeout,
		Lenient:         opts.Lenient,
	})
	lspan.End()
	if err != nil && !errors.Is(err, emul.ErrPartialBoot) {
		return d, err
	}
	for _, ev := range lab.Events() {
		d.emit(Event{"machine", ev})
	}
	d.lab = lab
	if opts.Supervise {
		if serr := superviseBoot(lab, opts.Obs, d.emit); serr != nil {
			return d, serr
		}
	}
	if err != nil {
		q := lab.Quarantined()
		opts.Obs.Add(obs.CounterDevicesQuarantined, int64(len(q)))
		d.emit(Event{"quarantine", fmt.Sprintf("%d machines quarantined (%s)", len(q), strings.Join(q, ", "))})
		d.emit(Event{"done", "lab running (partial)"})
		return d, err
	}
	d.emit(Event{"done", "lab running"})
	return d, nil
}

// nextUnbooted returns the name-smallest host holding VMs that has not
// booted yet ("" when none remain).
func nextUnbooted(cluster *sched.Cluster, placement Placement, booted map[string]bool) string {
	hosts := map[string]bool{}
	for _, h := range placement {
		hosts[h] = true
	}
	var names []string
	for h := range hosts {
		if !booted[h] && len(cluster.VMsOn(h)) > 0 {
			names = append(names, h)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

// bootClusterHost attempts one host's boot under the retry policy. The
// attempt loop, backoff, and circuit breaker (shared with the
// scheduler's migrations when the policy carries one) live in
// retry.Policy.Do.
func (d *ClusterDeployment) bootClusterHost(cluster *sched.Cluster, host string, opts ClusterOptions) error {
	span := opts.Obs.StartSpan("boot " + host)
	defer span.End()
	vms := cluster.VMsOn(host)
	pol := opts.Retry
	pol.OnRetry = func(h string, attempt int, err error) {
		d.emit(Event{"retry", fmt.Sprintf("%s boot attempt %d failed: %v", h, attempt, err)})
		opts.Obs.Add(CounterBootRetries, 1)
	}
	return pol.Do(context.Background(), host, func(attempt int) error {
		err := attemptBoot(context.Background(), opts.Boot, host, vms, attempt, pol)
		if err == nil {
			d.emit(Event{"boot", fmt.Sprintf("%s up (%d VMs, attempt %d)", host, len(vms), attempt)})
		}
		return err
	})
}

// labOnly filters VM names down to machines the running lab actually
// booted. Reservations besides the lab's (batch work sharing the
// substrate) place VMs the emulation never knew; incident injection and
// re-boots must skip them or the lab rejects the batch.
func (d *ClusterDeployment) labOnly(names []string) []string {
	if d.lab == nil {
		return nil
	}
	known := map[string]bool{}
	for _, vm := range d.lab.VMNames() {
		known[vm] = true
	}
	var out []string
	for _, vm := range names {
		if known[vm] {
			out = append(out, vm)
		}
	}
	return out
}

// applyMoves folds scheduler moves into the deployment's placement map.
func (d *ClusterDeployment) applyMoves(moves []sched.Move) {
	for _, m := range moves {
		d.Placement[m.VM] = m.To
		d.emit(Event{"replace", fmt.Sprintf("%s re-placed onto %s", m.VM, m.To)})
	}
}

// DrainHost live-drains a substrate host: the scheduler cordons it and
// re-places its VMs onto surviving capacity, then the moved VMs re-boot
// their device configurations in the running lab (one batch, one
// re-convergence). Returns the moved and stranded VM names, sorted; a
// degraded drain (stranded VMs stay live on the cordoned source) returns
// them alongside an error wrapping sched.ErrDegraded.
func (d *ClusterDeployment) DrainHost(host string) (moved, stranded []string, err error) {
	res, derr := d.Cluster.Drain(host)
	if derr != nil && !errors.Is(derr, sched.ErrDegraded) {
		return nil, nil, derr
	}
	d.applyMoves(res.Moves)
	moved = moveNames(res.Moves)
	if reboot := d.labOnly(moved); len(reboot) > 0 {
		if rerr := d.lab.RebootVMs(reboot); rerr != nil {
			return moved, res.Stranded, fmt.Errorf("deploy: re-booting drained VMs: %w", rerr)
		}
	}
	d.emit(Event{"drain", fmt.Sprintf("%s drained: %d VMs moved, %d stranded", host, len(moved), len(res.Stranded))})
	return moved, res.Stranded, derr
}

// FailHost hard-fails a substrate host: every VM it carried goes dark in
// the lab (one batch, one re-convergence), the scheduler re-places the
// orphans, and the survivors re-boot on their new hosts (a second
// convergence — the outage window is visible to measurements, unlike
// DrainHost's live move). Stranded orphans stay dark and re-place
// automatically as capacity frees; the error then wraps sched.ErrDegraded.
func (d *ClusterDeployment) FailHost(host string) (moved, stranded []string, err error) {
	if victims := d.labOnly(d.Cluster.VMsOn(host)); len(victims) > 0 {
		if ferr := d.lab.FailNodes(victims); ferr != nil {
			return nil, nil, fmt.Errorf("deploy: failing %s's VMs: %w", host, ferr)
		}
	}
	res, ferr := d.Cluster.FailHost(host)
	if ferr != nil && !errors.Is(ferr, sched.ErrDegraded) {
		return nil, nil, ferr
	}
	d.FailedHosts = append(d.FailedHosts, host)
	d.applyMoves(res.Moves)
	moved = moveNames(res.Moves)
	if reboot := d.labOnly(moved); len(reboot) > 0 {
		if rerr := d.lab.RebootVMs(reboot); rerr != nil {
			return moved, res.Stranded, fmt.Errorf("deploy: re-booting re-placed VMs: %w", rerr)
		}
	}
	if len(res.Stranded) > 0 {
		d.StrandedVMs = append(d.StrandedVMs, res.Stranded...)
		sort.Strings(d.StrandedVMs)
	}
	d.emit(Event{"host-failed", fmt.Sprintf("%s failed: %d VMs re-placed, %d stranded dark", host, len(moved), len(res.Stranded))})
	return moved, res.Stranded, ferr
}

// SilenceHost models a substrate host going dark without a single error
// returned: the backend (which must be a sched.FlakyBackend) stops
// answering for the host, its VMs go dark in the lab, and the lease
// machinery's deterministic collapse (suspect → dead) re-places them
// onto surviving capacity, where they re-boot. Requires heartbeat
// leases (ClusterOptions.Lease.Enabled); stranded orphans return
// alongside an error wrapping sched.ErrDegraded.
func (d *ClusterDeployment) SilenceHost(host string) (moved, stranded []string, err error) {
	fb, ok := d.backend.(*sched.FlakyBackend)
	if !ok {
		return nil, nil, fmt.Errorf("deploy: silence-host needs a flaky backend (wrap the backend in sched.NewFlakyBackend)")
	}
	fb.Silence(host)
	if victims := d.labOnly(d.Cluster.VMsOn(host)); len(victims) > 0 {
		if ferr := d.lab.FailNodes(victims); ferr != nil {
			return nil, nil, fmt.Errorf("deploy: failing %s's VMs: %w", host, ferr)
		}
	}
	res, lerr := d.Cluster.ExpireLease(host)
	if lerr != nil && !errors.Is(lerr, sched.ErrDegraded) {
		return nil, nil, lerr
	}
	d.applyMoves(res.Moves)
	moved = moveNames(res.Moves)
	if reboot := d.labOnly(moved); len(reboot) > 0 {
		if rerr := d.lab.RebootVMs(reboot); rerr != nil {
			return moved, res.Stranded, fmt.Errorf("deploy: re-booting re-placed VMs: %w", rerr)
		}
	}
	if len(res.Stranded) > 0 {
		d.StrandedVMs = append(d.StrandedVMs, res.Stranded...)
		sort.Strings(d.StrandedVMs)
	}
	d.emit(Event{"silence", fmt.Sprintf("%s silenced: lease expired, %d VMs re-placed, %d stranded dark", host, len(moved), len(res.Stranded))})
	return moved, res.Stranded, lerr
}

// FlakyHost sets the scheduled migration-failure rate for moves onto the
// host (0 clears it). The backend must be a sched.FlakyBackend; faults
// are a pure function of (seed, vm, host, attempt), so drills reproduce
// byte-identically.
func (d *ClusterDeployment) FlakyHost(host string, rate float64) error {
	fb, ok := d.backend.(*sched.FlakyBackend)
	if !ok {
		return fmt.Errorf("deploy: flaky-host needs a flaky backend (wrap the backend in sched.NewFlakyBackend)")
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("deploy: flaky-host rate %v out of [0,1]", rate)
	}
	fb.SetMigrateFailRate(host, rate)
	d.emit(Event{"flaky", fmt.Sprintf("%s: migration failure rate set to %.2f", host, rate)})
	return nil
}

// ReservationState reports one reservation's scheduler state for chaos
// assertions: "active", "queued", "degraded", or "preempted" (a queued
// reservation evicted by a higher-weight one).
func (d *ClusterDeployment) ReservationState(name string) (string, error) {
	st, ok := d.Cluster.Reservation(name)
	if !ok {
		return "", fmt.Errorf("deploy: no reservation %s", name)
	}
	if st.Preempted {
		return "preempted", nil
	}
	return string(st.State), nil
}

// CrashSched kills and recovers the durable scheduler in place: the
// journal is closed mid-flight (as a crash would leave it), a fresh
// scheduler reopens from the state directory, and the recovered state is
// byte-compared against the pre-crash Status. The lab itself keeps
// running — only the control plane restarts — so this is the chaos-drill
// equivalent of the §3.3 manager process dying and coming back. Returns
// a deterministic summary (no paths) for golden comparison.
func (d *ClusterDeployment) CrashSched() (string, error) {
	if d.opts.StateDir == "" {
		return "", fmt.Errorf("deploy: crash-sched needs a durable scheduler (StateDir unset)")
	}
	before := d.Cluster.Status().JSON()
	if err := d.Cluster.Close(); err != nil {
		return "", fmt.Errorf("deploy: closing scheduler journal: %w", err)
	}
	cluster, rinfo, err := sched.Open(d.opts.StateDir, d.backend, d.opts.schedOptions(d.emit))
	if err != nil {
		return "", fmt.Errorf("deploy: recovering scheduler: %w", err)
	}
	after := cluster.Status().JSON()
	if before != after {
		cluster.Close()
		return "", fmt.Errorf("deploy: recovered scheduler state diverged from pre-crash state")
	}
	d.Cluster = cluster
	summary := fmt.Sprintf("scheduler crashed and %s; status byte-identical", rinfo)
	d.emit(Event{"crash-sched", summary})
	return summary, nil
}

// moveNames extracts the moved VM names, sorted.
func moveNames(moves []sched.Move) []string {
	out := make([]string, 0, len(moves))
	for _, m := range moves {
		out = append(out, m.VM)
	}
	sort.Strings(out)
	return out
}
